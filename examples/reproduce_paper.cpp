// reproduce_paper — the whole reproduction in one binary, self-verifying.
//
// Walks every headline claim of the paper in order, executes the relevant
// computation on the simulated machine or evaluates the relevant closed
// form, and prints a PASS/FAIL verdict per claim plus a final summary.
// Intended as the "does this repository actually reproduce the paper?"
// smoke test a reviewer can run in seconds.
//
//   $ ./reproduce_paper
#include <cmath>
#include <iostream>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "core/kkt.hpp"
#include "core/partition_audit.hpp"
#include "core/prior_bounds.hpp"
#include "matmul/runner.hpp"

using namespace camb;

namespace {

int checks_run = 0;
int checks_passed = 0;

void verdict(const std::string& claim, bool ok) {
  ++checks_run;
  checks_passed += ok ? 1 : 0;
  std::cout << (ok ? "  [PASS] " : "  [FAIL] ") << claim << "\n";
}

void claim_table1_constants() {
  std::cout << "\nClaim 1 (Table 1): Theorem 3's constants are 1, 2, 3 and "
               "strictly improve all prior work.\n";
  const auto ours = core::theorem3_2022();
  verdict("constants are (1, 2, 3)",
          ours.case1 == 1.0 && ours.case2 == 2.0 && ours.case3 == 3.0);
  bool strict = true;
  for (const auto& row : core::table1_rows()) {
    if (row.name == ours.name) continue;
    for (auto regime : {core::RegimeCase::kOneD, core::RegimeCase::kTwoD,
                        core::RegimeCase::kThreeD}) {
      const auto prior = row.constant(regime);
      if (prior.has_value() &&
          prior.value() >= ours.constant(regime).value()) {
        strict = false;
      }
    }
  }
  verdict("strict improvement over every prior constant", strict);
}

void claim_kkt_certificate() {
  std::cout << "\nClaim 2 (Lemma 2): the closed-form solution is optimal — "
               "certified by the paper's KKT dual variables.\n";
  bool all_ok = true;
  for (double P : {2.0, 36.0, 512.0, 1e5}) {
    const core::Lemma2Problem prob{9600, 2400, 600, P};
    const auto sol = core::solve_analytic(prob);
    all_ok &= core::verify_kkt(prob, sol.x, sol.mu, 1e-8).ok();
    // Cross-solver: exact active-set enumeration reaches the same optimum.
    const auto enumerated = core::solve_enumerate(prob);
    const double obj = enumerated[0] + enumerated[1] + enumerated[2];
    all_ok &= std::abs(obj - sol.objective) <= 1e-9 * sol.objective;
  }
  verdict("KKT conditions hold and solvers agree in all three regimes",
          all_ok);
}

void claim_theorem3_is_lower_bound() {
  std::cout << "\nClaim 3 (Theorem 3): no balanced execution beats the bound "
               "(exhaustively, on tiny instances).\n";
  verdict("exhaustive partition audit, 2x2x2 / P=2",
          core::partition_audit_confirms_bound(core::Shape{2, 2, 2}, 2));
  verdict("exhaustive partition audit, 4x2x2 / P=2",
          core::partition_audit_confirms_bound(core::Shape{4, 2, 2}, 2));
  verdict("exhaustive partition audit, 3x2x2 / P=3",
          core::partition_audit_confirms_bound(core::Shape{3, 2, 2}, 3));
}

void claim_algorithm1_attains() {
  std::cout << "\nClaim 4 (section 5): Algorithm 1 with the section-5.2 grid "
               "attains the bound exactly (executed, all regimes).\n";
  struct Case {
    const char* label;
    core::Shape shape;
    i64 P;
  };
  for (const Case& c : {Case{"1D regime, P=3", {384, 96, 24}, 3},
                        Case{"2D regime, P=16", {384, 96, 24}, 16},
                        Case{"3D regime, P=512", {1536, 384, 96}, 512}}) {
    const core::Grid3 grid = core::exact_optimal_grid(c.shape, c.P);
    const auto report = mm::run_grid3d(mm::Grid3dConfig{c.shape, grid}, true);
    const bool tight =
        std::abs(static_cast<double>(report.measured_critical_recv) -
                 report.lower_bound_words) <= 1e-9 * report.lower_bound_words;
    verdict(std::string(c.label) + ": measured == bound and result correct",
            tight && report.max_abs_error < 1e-10);
  }
}

void claim_figure2() {
  std::cout << "\nClaim 5 (Figure 2): optimal grids for 9600x2400x600 are "
               "3x1x1, 12x3x1, 32x8x2.\n";
  const core::Shape paper{9600, 2400, 600};
  verdict("P=3 -> 3x1x1",
          core::exact_optimal_grid(paper, 3) == core::Grid3{3, 1, 1});
  verdict("P=36 -> 12x3x1",
          core::exact_optimal_grid(paper, 36) == core::Grid3{12, 3, 1});
  verdict("P=512 -> 32x8x2",
          core::exact_optimal_grid(paper, 512) == core::Grid3{32, 8, 2});
  // And the figure's narrative: what moves in each panel.
  const auto b3 = core::alg1_comm_breakdown(paper, {3, 1, 1});
  const auto b36 = core::alg1_comm_breakdown(paper, {12, 3, 1});
  const auto b512 = core::alg1_comm_breakdown(paper, {32, 8, 2});
  verdict("P=3: only B communicated",
          b3.allgather_a == 0 && b3.allgather_b > 0 && b3.reduce_scatter_c == 0);
  verdict("P=36: B and C communicated, A not",
          b36.allgather_a == 0 && b36.allgather_b > 0 &&
              b36.reduce_scatter_c > 0);
  verdict("P=512: all three communicated",
          b512.allgather_a > 0 && b512.allgather_b > 0 &&
              b512.reduce_scatter_c > 0);
}

void claim_section62() {
  std::cout << "\nClaim 6 (section 6.2): memory-dependent bound dominates "
               "exactly on (mn/k^2, 8/27 mnk/M^1.5].\n";
  const double m = 4096, n = 4096, k = 4096, M = 65536;
  const double threshold = core::memory_dependent_dominance_threshold(m, n, k, M);
  const bool inside =
      core::tightest_bound(m, n, k, threshold * 0.5, M).mem_dependent_dominates;
  const bool outside =
      !core::tightest_bound(m, n, k, threshold * 2.0, M).mem_dependent_dominates;
  verdict("dominates below the threshold, not above", inside && outside);
  // Staged Alg. 1: bandwidth unchanged while temporary memory shrinks.
  const core::Shape shape{384, 96, 24};
  const core::Grid3 grid{8, 2, 1};
  const auto one = mm::run_grid3d_staged({shape, grid, 1}, false);
  const auto eight = mm::run_grid3d_staged({shape, grid, 8}, false);
  verdict("staging preserves bandwidth while shrinking memory",
          one.measured_critical_recv == eight.measured_critical_recv &&
              mm::grid3d_staged_peak_memory_words({shape, grid, 8}) <
                  mm::grid3d_staged_peak_memory_words({shape, grid, 1}));
}

void claim_section51_collectives() {
  std::cout << "\nClaim 7 (section 5.1): Reduce-Scatter replaces Agarwal'95's "
               "All-to-All with smaller latency at equal bandwidth.\n";
  const core::Shape shape{24, 32, 16};
  const core::Grid3 grid{2, 8, 2};
  const auto alg1 = mm::run_grid3d(mm::Grid3dConfig{shape, grid}, true);
  const auto agarwal =
      mm::run_grid3d_agarwal(mm::Grid3dAgarwalConfig{shape, grid}, true);
  verdict("equal received words, fewer messages for Alg. 1",
          alg1.measured_critical_recv == agarwal.measured_critical_recv &&
              alg1.measured_critical_messages <
                  agarwal.measured_critical_messages &&
              alg1.max_abs_error < 1e-10 && agarwal.max_abs_error < 1e-10);
}

}  // namespace

int main() {
  std::cout << "Reproducing: Al Daas, Ballard, Grigori, Kumar, Rouse —\n"
            << "\"Tight Memory-Independent Parallel Matrix Multiplication "
               "Communication Lower Bounds\" (SPAA 2022)\n";
  claim_table1_constants();
  claim_kkt_certificate();
  claim_theorem3_is_lower_bound();
  claim_algorithm1_attains();
  claim_figure2();
  claim_section62();
  claim_section51_collectives();
  std::cout << "\n" << checks_passed << "/" << checks_run
            << " checks passed.\n";
  return checks_passed == checks_run ? 0 : 1;
}
