// grid_explorer — rank every processor grid for a problem.
//
// Enumerates all factor triples of P, evaluates eq. 3 for each, and prints
// them ranked by communication cost next to the Theorem 3 bound.  Shows how
// expensive a wrong grid choice is (the §5.2 ablation, interactively).
//
//   $ ./grid_explorer --n1 9600 --n2 2400 --n3 600 --p 36 --top 10
#include <algorithm>
#include <iostream>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace camb;
  Cli cli;
  cli.add_flag("n1", "rows of A and C", "9600");
  cli.add_flag("n2", "cols of A / rows of B", "2400");
  cli.add_flag("n3", "cols of B and C", "600");
  cli.add_flag("p", "number of processors", "36");
  cli.add_flag("top", "how many grids to print (0 = all)", "10");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("grid_explorer");
    return 0;
  }

  const core::Shape shape{cli.get_int("n1"), cli.get_int("n2"),
                          cli.get_int("n3")};
  const i64 P = cli.get_int("p");
  const auto bound =
      core::memory_independent_bound(shape, static_cast<double>(P));

  struct Entry {
    core::Grid3 grid;
    double cost;
  };
  std::vector<Entry> entries;
  for (const core::Grid3& g : core::all_grids(P)) {
    entries.push_back({g, core::alg1_cost_words(shape, g)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.cost < b.cost; });

  std::cout << "shape " << shape.n1 << " x " << shape.n2 << " x " << shape.n3
            << ", P = " << P << ", Theorem 3 bound = " << bound.words
            << " words\n\n";

  Table table({"grid (p1 x p2 x p3)", "eq.3 words", "vs bound", "divides dims",
               "memory words"});
  i64 top = cli.get_int("top");
  if (top <= 0) top = static_cast<i64>(entries.size());
  for (i64 i = 0; i < std::min<i64>(top, static_cast<i64>(entries.size()));
       ++i) {
    const auto& e = entries[static_cast<std::size_t>(i)];
    table.add_row({std::to_string(e.grid.p1) + " x " + std::to_string(e.grid.p2) +
                       " x " + std::to_string(e.grid.p3),
                   Table::fmt(e.cost, 1),
                   Table::fmt(bound.words > 0 ? e.cost / bound.words : 1.0, 4),
                   core::grid_divides(shape, e.grid) ? "yes" : "no",
                   Table::fmt(core::alg1_memory_words(shape, e.grid), 1)});
  }
  table.print(std::cout);
  std::cout << "\nworst/best cost ratio: "
            << entries.back().cost / entries.front().cost << "\n";
  return 0;
}
