// strong_scaling_planner — the §6.2 analysis as a planning tool.
//
// Given a problem and the local memory per processor, sweep P and report for
// each point: the regime, the memory-independent and memory-dependent
// bounds, which one binds, and whether Algorithm 1's 3D footprint still fits
// in memory.  This is the picture behind "strong scaling stops paying off
// past P = mnk / M^{3/2}".
//
//   $ ./strong_scaling_planner --n1 8192 --n2 8192 --n3 8192 --mem 1e6
#include <cmath>
#include <iostream>

#include "core/cost_eq3.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace camb;
  Cli cli;
  cli.add_flag("n1", "rows of A and C", "8192");
  cli.add_flag("n2", "cols of A / rows of B", "8192");
  cli.add_flag("n3", "cols of B and C", "8192");
  cli.add_flag("mem", "local memory per processor (words)", "1e6");
  cli.add_flag("pmax", "largest processor count to consider", "1048576");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("strong_scaling_planner");
    return 0;
  }

  const core::Shape shape{cli.get_int("n1"), cli.get_int("n2"),
                          cli.get_int("n3")};
  const double M = cli.get_double("mem");
  const double pmax = static_cast<double>(cli.get_int("pmax"));
  const core::SortedDims d = core::sort_dims(shape);
  const auto m = static_cast<double>(d.m);
  const auto n = static_cast<double>(d.n);
  const auto k = static_cast<double>(d.k);

  std::cout << "problem " << shape.n1 << " x " << shape.n2 << " x " << shape.n3
            << ", M = " << M << " words/processor\n"
            << "regime boundaries: P = m/n = " << m / n
            << ", P = mn/k^2 = " << m * n / (k * k) << "\n"
            << "minimum P to fit the data: "
            << std::ceil((m * n + m * k + n * k) / M) << "\n"
            << "memory-dependent bound dominates up to P = "
            << core::memory_dependent_dominance_threshold(m, n, k, M)
            << " (8/27 mnk / M^1.5)\n\n";

  std::vector<double> Ps;
  for (double P = 1; P <= pmax; P *= 2) Ps.push_back(P);
  const auto points = core::scaling_sweep(m, n, k, M, Ps);

  Table table({"P", "regime", "mem-indep bound", "mem-dep bound", "binding",
               "fits in M"});
  const char* regime_names[] = {"", "1D", "2D", "3D"};
  for (const auto& pt : points) {
    table.add_row({Table::fmt_sci(pt.P, 0),
                   regime_names[static_cast<int>(pt.regime)],
                   Table::fmt_sci(pt.mem_independent, 3),
                   Table::fmt_sci(pt.mem_dependent, 3),
                   pt.mem_dependent > pt.mem_independent ? "mem-dep"
                                                         : "mem-indep",
                   pt.memory_limited ? "NO (limited)" : "yes"});
  }
  table.print(std::cout);
  std::cout << "\nReading: while 'mem-dep' binds, adding processors still "
               "reduces per-processor\ncommunication proportionally (perfect "
               "strong scaling); once 'mem-indep' binds,\ncommunication "
               "shrinks only as P^{-1/2} or P^{-2/3} (§6.2).\n";
  return 0;
}
