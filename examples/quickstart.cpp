// quickstart — the 60-second tour of the library.
//
// Given a matrix multiplication shape and a processor count, this example
//   1. classifies the regime and evaluates the Theorem 3 lower bound,
//   2. picks the communication-optimal processor grid (§5.2),
//   3. runs Algorithm 1 on the simulated machine,
//   4. compares measured communication against the bound, word for word.
//
//   $ ./quickstart --n1 384 --n2 96 --n3 24 --p 16
#include <iostream>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "matmul/runner.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace camb;
  Cli cli;
  cli.add_flag("n1", "rows of A and C", "384");
  cli.add_flag("n2", "cols of A / rows of B", "96");
  cli.add_flag("n3", "cols of B and C", "24");
  cli.add_flag("p", "number of processors", "16");
  cli.add_flag("verify", "check the result against the serial reference",
               "true");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("quickstart");
    return 0;
  }

  const core::Shape shape{cli.get_int("n1"), cli.get_int("n2"),
                          cli.get_int("n3")};
  const i64 P = cli.get_int("p");

  // 1. The lower bound.
  const auto bound =
      core::memory_independent_bound(shape, static_cast<double>(P));
  const char* regime_names[] = {"", "1D (P <= m/n)",
                                "2D (m/n <= P <= mn/k^2)",
                                "3D (mn/k^2 <= P)"};
  std::cout << "shape: " << shape.n1 << " x " << shape.n2 << " x " << shape.n3
            << ", P = " << P << "\n"
            << "regime: " << regime_names[static_cast<int>(bound.regime)]
            << "\n"
            << "Theorem 3 lower bound: " << bound.words
            << " words per processor (leading term " << bound.constant << " * "
            << bound.leading_term << ")\n";

  // 2. The optimal grid.
  const core::Grid3 grid = core::best_integer_grid(shape, P);
  std::cout << "optimal integer grid: " << grid.p1 << " x " << grid.p2 << " x "
            << grid.p3 << " (eq. 3 cost "
            << core::alg1_cost_words(shape, grid) << " words)\n";

  // 3. Run Algorithm 1 on the simulated machine.
  mm::Grid3dConfig cfg{shape, grid};
  const mm::RunReport report = mm::run_grid3d(cfg, cli.get_bool("verify"));

  // 4. Compare.
  std::cout << "executed on the simulated machine:\n"
            << "  measured communication (critical path): "
            << report.measured_critical_recv << " words\n"
            << "  analytic prediction:                    "
            << report.predicted_critical_recv << " words\n"
            << "  lower bound:                            "
            << report.lower_bound_words << " words\n"
            << "  measured / bound ratio:                 "
            << (report.lower_bound_words > 0
                    ? static_cast<double>(report.measured_critical_recv) /
                          report.lower_bound_words
                    : 1.0)
            << "\n";
  if (report.verified) {
    std::cout << "  max |C - C_ref|: " << report.max_abs_error << "\n";
  }
  return 0;
}
