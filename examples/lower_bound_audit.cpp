// lower_bound_audit — mechanical audit of the lower bound on tiny problems.
//
// Theorem 3's proof bounds the data any processor must access through the
// Loomis–Whitney inequality and Lemma 1.  This example audits that chain
// directly: for a tiny iteration space it enumerates (exactly, when feasible,
// otherwise by sampling) work subsets of size >= mnk/P, computes their true
// projections onto A, B, C, and confirms that no assignment of work beats
// the Lemma 2 optimum.
//
//   $ ./lower_bound_audit --n1 3 --n2 2 --n3 3 --p 2 --trials 2000
#include <iostream>

#include "core/bounds.hpp"
#include "core/loomis_whitney.hpp"
#include "core/optimization.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace camb;
  Cli cli;
  cli.add_flag("n1", "rows of A and C", "3");
  cli.add_flag("n2", "cols of A / rows of B", "2");
  cli.add_flag("n3", "cols of B and C", "3");
  cli.add_flag("p", "number of processors", "2");
  cli.add_flag("trials", "random subsets for the sampled audit", "2000");
  cli.add_flag("seed", "sampling seed", "42");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("lower_bound_audit");
    return 0;
  }

  const core::Shape shape{cli.get_int("n1"), cli.get_int("n2"),
                          cli.get_int("n3")};
  const i64 P = cli.get_int("p");
  const i64 total = shape.flops();
  const i64 subset = (total + P - 1) / P;  // at least 1/P of the work

  const core::SortedDims d = core::sort_dims(shape);
  const auto sol = core::solve_analytic({static_cast<double>(d.m),
                                         static_cast<double>(d.n),
                                         static_cast<double>(d.k),
                                         static_cast<double>(P)});
  std::cout << "iteration space " << shape.n1 << " x " << shape.n2 << " x "
            << shape.n3 << " (" << total << " multiplications), P = " << P
            << "\n"
            << "a processor doing 1/P of the work touches >= "
            << sol.objective
            << " matrix elements (Lemma 2 optimum; case "
            << static_cast<int>(sol.regime) << ")\n\n";

  if (total <= 24) {
    const i64 exact = core::min_projection_sum_exact(shape, subset);
    std::cout << "EXACT audit over all " << total << "-choose-" << subset
              << " subsets: min projection sum = " << exact << "\n"
              << (static_cast<double>(exact) + 1e-9 >= sol.objective
                      ? "  => no work assignment beats the bound. OK\n"
                      : "  => BOUND VIOLATED (bug!)\n");
  } else {
    std::cout << "iteration space too large for exact enumeration; sampling\n";
  }

  const int trials = static_cast<int>(cli.get_int("trials"));
  const i64 sampled = core::min_projection_sum_sampled(
      shape, subset, trials,
      static_cast<std::uint64_t>(cli.get_int("seed")));
  std::cout << "SAMPLED audit (" << trials
            << " random subsets): min projection sum = " << sampled << "\n"
            << (static_cast<double>(sampled) + 1e-9 >= sol.objective
                    ? "  => consistent with the bound. OK\n"
                    : "  => BOUND VIOLATED (bug!)\n");

  // The full-communication picture: subtract what a processor may own.
  const auto bound = core::memory_independent_bound(shape,
                                                    static_cast<double>(P));
  std::cout << "\nTheorem 3: at least " << bound.words
            << " words must be *communicated* per processor\n"
            << "(accessed data " << bound.D << " minus owned data "
            << bound.owned << ").\n";
  return 0;
}
