// gather_scatter.hpp — Gather and Scatter collectives (linear).
//
// Used by distribution builders and verification plumbing, where the
// root-centric data motion is inherent (collecting a distributed matrix for
// comparison against the serial reference).  Linear implementations: the
// root's bandwidth is (total − own) words either way, which is already
// optimal; only latency would improve with a tree.
#pragma once

#include <vector>

#include "collectives/comm.hpp"

namespace camb::coll {

/// Gather: member i's `local` (counts[i] elements) is concatenated on the
/// root in comm order.  Returns the concatenation on the root, empty
/// elsewhere.  Templated over the scalar type (CAMB_FOR_EACH_SCALAR set).
template <typename T>
std::vector<T> gather(const Comm& comm, int root_idx,
                      const std::vector<i64>& counts,
                      const std::vector<T>& local);

/// Scatter: the root's `full` buffer (counts_total elements, comm order) is
/// split; member i receives counts[i] elements.  `full` is ignored on
/// non-roots.
template <typename T>
std::vector<T> scatter(const Comm& comm, int root_idx,
                       const std::vector<i64>& counts,
                       const std::vector<T>& full);

}  // namespace camb::coll
