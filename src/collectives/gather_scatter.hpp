// gather_scatter.hpp — Gather and Scatter collectives (linear).
//
// Used by distribution builders and verification plumbing, where the
// root-centric data motion is inherent (collecting a distributed matrix for
// comparison against the serial reference).  Linear implementations: the
// root's bandwidth is (total − own) words either way, which is already
// optimal; only latency would improve with a tree.
#pragma once

#include <vector>

#include "collectives/group.hpp"

namespace camb::coll {

/// Gather: member i's `local` (counts[i] words) is concatenated on the root
/// in group order.  Returns the concatenation on the root, empty elsewhere.
std::vector<double> gather(RankCtx& ctx, const std::vector<int>& group,
                           int root_idx, const std::vector<i64>& counts,
                           const std::vector<double>& local, int tag_base);

/// Scatter: the root's `full` buffer (counts_total words, group order) is
/// split; member i receives counts[i] words.  `full` is ignored on non-roots.
std::vector<double> scatter(RankCtx& ctx, const std::vector<int>& group,
                            int root_idx, const std::vector<i64>& counts,
                            const std::vector<double>& full, int tag_base);

}  // namespace camb::coll
