#include "collectives/regrid.hpp"

#include <algorithm>
#include <limits>

#include "util/scalar.hpp"

namespace camb::coll {

void check_panel_set(const PanelSet& set) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    const PanelSpan& s = set[i];
    CAMB_CHECK_MSG(s.matrix == 0 || s.matrix == 1,
                   "panel span matrix must be 0 (A) or 1 (B)");
    CAMB_CHECK_MSG(s.len > 0, "panel spans must have positive length");
    CAMB_CHECK_MSG(s.start >= 0, "panel spans must start at a valid cell");
    if (i > 0) {
      const PanelSpan& prev = set[i - 1];
      const bool ordered = prev.matrix < s.matrix ||
                           (prev.matrix == s.matrix && prev.end() <= s.start);
      CAMB_CHECK_MSG(ordered,
                     "panel sets must be sorted by (matrix, start) and "
                     "pairwise disjoint");
    }
  }
}

i64 panels_elems(const PanelSet& set) {
  i64 total = 0;
  for (const PanelSpan& s : set) total += s.len;
  return total;
}

PanelSet intersect_panels(const PanelSet& a, const PanelSet& b) {
  PanelSet out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const PanelSpan& x = a[i];
    const PanelSpan& y = b[j];
    if (x.matrix != y.matrix) {
      (x.matrix < y.matrix) ? ++i : ++j;
      continue;
    }
    const i64 lo = std::max(x.start, y.start);
    const i64 hi = std::min(x.end(), y.end());
    if (lo < hi) out.push_back({x.matrix, lo, hi - lo});
    // Advance whichever span ends first; ties advance both.
    if (x.end() < y.end()) {
      ++i;
    } else if (y.end() < x.end()) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return out;
}

i64 regrid_recv_elems_exact(const RegridPlan& plan, int machine_rank) {
  const std::size_t me = static_cast<std::size_t>(machine_rank);
  CAMB_CHECK(me < plan.new_panels.size());
  const PanelSet& mine = plan.new_panels[me];
  i64 total = 0;
  for (std::size_t o = 0; o < plan.old_panels.size(); ++o) {
    if (static_cast<int>(o) == machine_rank || !plan.alive[o]) continue;
    total += panels_elems(intersect_panels(plan.old_panels[o], mine));
  }
  return total;
}

double regrid_recv_words_exact(const RegridPlan& plan, int machine_rank,
                               double width_words) {
  return static_cast<double>(regrid_recv_elems_exact(plan, machine_rank)) *
         width_words;
}

namespace {

/// Offset of `span` within the canonical per-matrix storage of `set`.
/// `span` must lie inside exactly one span of `set` (which intersection
/// output always does).
i64 locate(const PanelSet& set, const PanelSpan& span) {
  i64 off = 0;
  for (const PanelSpan& s : set) {
    if (s.matrix != span.matrix) continue;
    if (span.start >= s.start && span.end() <= s.end()) {
      return off + (span.start - s.start);
    }
    off += s.len;
  }
  throw Error("regrid: span not contained in the owner's panel set");
}

template <typename T>
std::vector<T> gather_values(const PanelSet& owner, const std::vector<T>& a,
                             const std::vector<T>& b, const PanelSet& want) {
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(panels_elems(want)));
  for (const PanelSpan& w : want) {
    const std::vector<T>& store = (w.matrix == 0) ? a : b;
    const i64 off = locate(owner, w);
    CAMB_CHECK(off + w.len <= static_cast<i64>(store.size()));
    out.insert(out.end(), store.begin() + off, store.begin() + off + w.len);
  }
  return out;
}

template <typename T>
void scatter_values(const PanelSet& target, std::vector<T>& a,
                    std::vector<T>& b, const PanelSet& got, const T* values) {
  for (const PanelSpan& g : got) {
    std::vector<T>& store = (g.matrix == 0) ? a : b;
    const i64 off = locate(target, g);
    CAMB_CHECK(off + g.len <= static_cast<i64>(store.size()));
    std::copy(values, values + g.len, store.begin() + off);
    values += g.len;
  }
}

template <typename T>
void regenerate_values(const PanelSet& target, std::vector<T>& a,
                       std::vector<T>& b, const PanelSet& spans,
                       const RegridFill<T>& fill) {
  for (const PanelSpan& s : spans) {
    std::vector<T>& store = (s.matrix == 0) ? a : b;
    const i64 off = locate(target, s);
    CAMB_CHECK(off + s.len <= static_cast<i64>(store.size()));
    fill(s.matrix, s.start, s.len, store.data() + off);
  }
}

}  // namespace

template <typename T>
RegridResult<T> regrid(const Comm& comm, const RegridPlan& plan,
                       const std::vector<T>& my_old_a,
                       const std::vector<T>& my_old_b,
                       const RegridFill<T>& fill) {
  CAMB_CHECK_MSG(comm.member(), "only members may call regrid");
  RankCtx& ctx = comm.ctx();
  const int nprocs = ctx.nprocs();
  const int me = ctx.rank();
  CAMB_CHECK_MSG(plan.old_panels.size() == static_cast<std::size_t>(nprocs) &&
                     plan.new_panels.size() == static_cast<std::size_t>(nprocs) &&
                     plan.alive.size() == static_cast<std::size_t>(nprocs),
                 "regrid plan vectors must be machine-sized");
  for (int r = 0; r < nprocs; ++r) {
    check_panel_set(plan.old_panels[static_cast<std::size_t>(r)]);
    check_panel_set(plan.new_panels[static_cast<std::size_t>(r)]);
  }
  CAMB_CHECK_MSG(plan.alive[static_cast<std::size_t>(me)],
                 "a regrid caller must be alive in its own plan");
  const PanelSet& my_old = plan.old_panels[static_cast<std::size_t>(me)];
  const PanelSet& my_new = plan.new_panels[static_cast<std::size_t>(me)];
  CAMB_CHECK(panels_elems(my_old) == static_cast<i64>(my_old_a.size()) +
                                         static_cast<i64>(my_old_b.size()));

  ctx.set_phase(kPhaseElasticRegrid);
  // One tag block, one tag: per-pair messages are distinguished by source.
  const int tag = comm.take_tag_block();

  // Sends first — buffered, so the exchange cannot deadlock.  Every alive
  // old owner ships each new owner its overlap, values concatenated in the
  // canonical order both sides derive from the shared plan.
  for (int d = 0; d < nprocs; ++d) {
    if (d == me) continue;
    const PanelSet& dst_new = plan.new_panels[static_cast<std::size_t>(d)];
    if (dst_new.empty()) continue;
    const PanelSet overlap = intersect_panels(my_old, dst_new);
    if (overlap.empty()) continue;
    comm.send(comm.index_of(d), tag,
              Buffer::adopt(gather_values(my_old, my_old_a, my_old_b,
                                          overlap)));
  }

  // Allocate the new holding (canonical per-matrix storage).
  RegridResult<T> result;
  i64 new_a_elems = 0, new_b_elems = 0;
  for (const PanelSpan& s : my_new) {
    (s.matrix == 0 ? new_a_elems : new_b_elems) += s.len;
  }
  result.a.resize(static_cast<std::size_t>(new_a_elems));
  result.b.resize(static_cast<std::size_t>(new_b_elems));

  // Receive (or regenerate) each old owner's piece, in rank order.  The old
  // placement partitions each matrix, so the pieces tile my new panels
  // exactly — checked below.
  i64 covered = 0;
  for (int o = 0; o < nprocs; ++o) {
    const PanelSet overlap =
        intersect_panels(plan.old_panels[static_cast<std::size_t>(o)], my_new);
    if (overlap.empty()) continue;
    const i64 elems = panels_elems(overlap);
    covered += elems;
    if (o == me) {
      // Self-overlap: a free local copy, never on the wire.
      scatter_values(my_new, result.a, result.b, overlap,
                     gather_values(my_old, my_old_a, my_old_b, overlap).data());
      result.local_elems += elems;
      continue;
    }
    if (!plan.alive[static_cast<std::size_t>(o)]) {
      regenerate_values(my_new, result.a, result.b, overlap, fill);
      result.regenerated_elems += elems;
      continue;
    }
    auto payload = ctx.recv_timed(o, tag,
                                  std::numeric_limits<double>::infinity());
    if (!payload.has_value()) {
      // The source died (or abandoned) mid-regrid before its send reached
      // us: regenerate the piece from the position-pure fill — the same
      // bits the wire would have carried.
      regenerate_values(my_new, result.a, result.b, overlap, fill);
      result.regenerated_elems += elems;
      continue;
    }
    CAMB_CHECK(payload->elems<T>() == elems);
    const std::vector<T> values = std::move(*payload).template take_as<T>();
    scatter_values(my_new, result.a, result.b, overlap, values.data());
    result.migrated_elems += elems;
  }
  CAMB_CHECK_MSG(covered == panels_elems(my_new),
                 "regrid: the old placement must partition each matrix "
                 "(every new cell needs exactly one old owner)");
  return result;
}

#define CAMB_INSTANTIATE(T)                                              \
  template RegridResult<T> regrid<T>(const Comm&, const RegridPlan&,     \
                                     const std::vector<T>&,              \
                                     const std::vector<T>&,              \
                                     const RegridFill<T>&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::coll
