#include "collectives/coll_cost.hpp"

#include "util/error.hpp"

namespace camb::coll {

namespace {
bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }
}  // namespace

int ceil_log2(int p) {
  CAMB_CHECK(p >= 1);
  int bits = 0;
  int v = 1;
  while (v < p) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

int allgather_rounds(int p, AllgatherAlgo algo) {
  CAMB_CHECK(p >= 1);
  if (p == 1) return 0;
  if (algo == AllgatherAlgo::kAuto) {
    algo = is_pow2(p) ? AllgatherAlgo::kRecursiveDoubling : AllgatherAlgo::kBruck;
  }
  switch (algo) {
    case AllgatherAlgo::kRing:
      return p - 1;
    case AllgatherAlgo::kRecursiveDoubling:
      CAMB_CHECK(is_pow2(p));
      return ceil_log2(p);
    case AllgatherAlgo::kBruck:
      return ceil_log2(p);
    case AllgatherAlgo::kAuto:
      break;
  }
  throw Error("unreachable");
}

int reduce_scatter_rounds(int p, ReduceScatterAlgo algo) {
  CAMB_CHECK(p >= 1);
  if (p == 1) return 0;
  if (algo == ReduceScatterAlgo::kAuto) {
    algo = is_pow2(p) ? ReduceScatterAlgo::kRecursiveHalving
                      : ReduceScatterAlgo::kRing;
  }
  switch (algo) {
    case ReduceScatterAlgo::kRing:
      return p - 1;
    case ReduceScatterAlgo::kRecursiveHalving:
      CAMB_CHECK(is_pow2(p));
      return ceil_log2(p);
    case ReduceScatterAlgo::kAuto:
      break;
  }
  throw Error("unreachable");
}

CollCost allgather_cost(int p, i64 total, AllgatherAlgo algo) {
  CAMB_CHECK(p >= 1 && total >= 0);
  CAMB_CHECK_MSG(total % p == 0, "allgather_cost assumes equal blocks");
  CollCost cost;
  if (p == 1) return cost;
  const i64 moved = total - total / p;  // (1 - 1/p) * total
  cost.recv_words = moved;
  cost.sent_words = moved;
  cost.messages = allgather_rounds(p, algo);
  return cost;
}

CollCost reduce_scatter_cost(int p, i64 total, ReduceScatterAlgo algo) {
  CAMB_CHECK(p >= 1 && total >= 0);
  CAMB_CHECK_MSG(total % p == 0, "reduce_scatter_cost assumes equal segments");
  CollCost cost;
  if (p == 1) return cost;
  const i64 moved = total - total / p;
  cost.recv_words = moved;
  cost.sent_words = moved;
  cost.messages = reduce_scatter_rounds(p, algo);
  cost.flops = moved;  // one addition per received word
  return cost;
}

CollCost bcast_cost(int p, i64 w) {
  CAMB_CHECK(p >= 1 && w >= 0);
  CollCost cost;
  if (p == 1) return cost;
  const int rounds = ceil_log2(p);
  cost.recv_words = w;               // every non-root receives once
  cost.sent_words = w * rounds;      // the root's serialized sends
  cost.messages = rounds;
  return cost;
}

CollCost reduce_cost(int p, i64 w) {
  CAMB_CHECK(p >= 1 && w >= 0);
  CollCost cost;
  if (p == 1) return cost;
  const int rounds = ceil_log2(p);
  cost.recv_words = w * rounds;  // the root's serialized receives
  cost.sent_words = w;
  cost.messages = rounds;
  cost.flops = w * rounds;
  return cost;
}

CollCost allreduce_cost(int p, i64 w) {
  CAMB_CHECK(p >= 1 && w >= 0);
  CollCost cost;
  if (p == 1) return cost;
  // Near-equal segmentation: the busiest rank moves at most
  // 2 * (w - floor(w / p)) words; for divisible w this is 2 (1 - 1/p) w.
  const i64 moved = w - w / p;
  cost.recv_words = 2 * moved;
  cost.sent_words = 2 * moved;
  cost.messages = reduce_scatter_rounds(p, ReduceScatterAlgo::kAuto) +
                  allgather_rounds(p, AllgatherAlgo::kAuto);
  cost.flops = moved;
  return cost;
}

i64 allgather_recv_words_exact(const std::vector<i64>& counts, int me,
                               AllgatherAlgo algo) {
  (void)algo;  // every variant delivers each foreign block exactly once
  const int p = static_cast<int>(counts.size());
  CAMB_CHECK(p >= 1 && me >= 0 && me < p);
  i64 total = 0;
  for (i64 c : counts) total += c;
  return total - counts[static_cast<std::size_t>(me)];
}

i64 reduce_scatter_recv_words_exact(const std::vector<i64>& counts, int me,
                                    ReduceScatterAlgo algo) {
  const int p = static_cast<int>(counts.size());
  CAMB_CHECK(p >= 1 && me >= 0 && me < p);
  if (p == 1) return 0;
  if (algo == ReduceScatterAlgo::kAuto) {
    algo = is_pow2(p) ? ReduceScatterAlgo::kRecursiveHalving
                      : ReduceScatterAlgo::kRing;
  }
  if (algo == ReduceScatterAlgo::kRing) {
    // Rounds r = 0..p-2 deliver segments (me - r - 2) mod p: everything
    // except segment (me - 1) mod p.
    i64 total = 0;
    for (i64 c : counts) total += c;
    return total - counts[static_cast<std::size_t>((me - 1 + p) % p)];
  }
  CAMB_CHECK(is_pow2(p));
  // Recursive halving: each round receives the half of the active range that
  // this member keeps.
  i64 received = 0;
  int lo = 0, hi = p;
  for (int dist = p / 2; dist >= 1; dist /= 2) {
    const int mid = lo + dist;
    const int keep_lo = me < mid ? lo : mid;
    const int keep_hi = me < mid ? mid : hi;
    for (int s = keep_lo; s < keep_hi; ++s) {
      received += counts[static_cast<std::size_t>(s)];
    }
    lo = keep_lo;
    hi = keep_hi;
  }
  return received;
}

CollCost alltoall_cost(int p, i64 block) {
  CAMB_CHECK(p >= 1 && block >= 0);
  CollCost cost;
  if (p == 1) return cost;
  cost.recv_words = (p - 1) * block;
  cost.sent_words = (p - 1) * block;
  cost.messages = p - 1;
  return cost;
}

i64 reduce_recv_words_exact(int p, int v, i64 w) {
  CAMB_CHECK(p >= 1 && v >= 0 && v < p && w >= 0);
  int top = 1;
  while (top < p) top <<= 1;
  i64 recvs = 0;
  for (int dist = top >> 1; dist >= 1; dist >>= 1) {
    if (v < dist && v + dist < p) ++recvs;
  }
  return recvs * w;
}

i64 allreduce_recv_words_exact(int p, int me, i64 w) {
  CAMB_CHECK(p >= 1 && me >= 0 && me < p && w >= 0);
  if (p == 1) return 0;
  std::vector<i64> counts(static_cast<std::size_t>(p), w / p);
  for (i64 j = 0; j < w % p; ++j) counts[static_cast<std::size_t>(j)] += 1;
  return reduce_scatter_recv_words_exact(counts, me) +
         allgather_recv_words_exact(counts, me);
}

CollCost allgather_cost(const Comm& comm, i64 total, AllgatherAlgo algo) {
  return allgather_cost(comm.size(), total, algo);
}

CollCost reduce_scatter_cost(const Comm& comm, i64 total,
                             ReduceScatterAlgo algo) {
  return reduce_scatter_cost(comm.size(), total, algo);
}

CollCost bcast_cost(const Comm& comm, i64 w) {
  return bcast_cost(comm.size(), w);
}

CollCost reduce_cost(const Comm& comm, i64 w) {
  return reduce_cost(comm.size(), w);
}

CollCost allreduce_cost(const Comm& comm, i64 w) {
  return allreduce_cost(comm.size(), w);
}

CollCost alltoall_cost(const Comm& comm, i64 block) {
  return alltoall_cost(comm.size(), block);
}

i64 allgather_recv_words_exact(const Comm& comm, const std::vector<i64>& counts,
                               AllgatherAlgo algo) {
  CAMB_CHECK_MSG(comm.member(), "predictor needs this rank's member index");
  CAMB_CHECK(static_cast<int>(counts.size()) == comm.size());
  return allgather_recv_words_exact(counts, comm.my_index(), algo);
}

i64 reduce_scatter_recv_words_exact(const Comm& comm,
                                    const std::vector<i64>& counts,
                                    ReduceScatterAlgo algo) {
  CAMB_CHECK_MSG(comm.member(), "predictor needs this rank's member index");
  CAMB_CHECK(static_cast<int>(counts.size()) == comm.size());
  return reduce_scatter_recv_words_exact(counts, comm.my_index(), algo);
}

i64 allreduce_recv_words_exact(const Comm& comm, i64 w) {
  CAMB_CHECK_MSG(comm.member(), "predictor needs this rank's member index");
  return allreduce_recv_words_exact(comm.size(), comm.my_index(), w);
}

std::vector<PhaseCounters> predicted_transport_phase(
    const FaultProfile& profile, std::uint64_t fault_seed,
    std::uint64_t sdc_seed, int nprocs,
    const std::vector<MessageEvent>& sends) {
  CAMB_CHECK(nprocs >= 1);
  std::vector<PhaseCounters> tax(static_cast<std::size_t>(nprocs));
  // A fresh plan with the same seeds re-issues the exact decision stream the
  // run consumed: decide_send(src) per counted send, in each source's
  // program order — which is the trace's per-source seq order.
  FaultPlan plan(profile, fault_seed, nprocs, sdc_seed);
  for (const MessageEvent& e : sends) {
    CAMB_CHECK(e.src >= 0 && e.src < nprocs && e.dst >= 0 && e.dst < nprocs);
    const SendFaults f = plan.decide_send(e.src);
    const int failed = f.dropped_copies + f.corrupt_copies;
    const int extra = failed + (f.duplicated ? 1 : 0);
    auto& src = tax[static_cast<std::size_t>(e.src)];
    auto& dst = tax[static_cast<std::size_t>(e.dst)];
    if (f.transport_exhausted) {
      // The run would have surfaced TransportError here; only the wasted
      // copies hit the wire.
      src.bytes_sent += e.bytes * failed;
      src.messages_sent += failed;
      continue;
    }
    src.bytes_sent += e.bytes * extra;
    src.messages_sent += extra;
    dst.bytes_received += e.bytes * f.corrupt_copies;
    dst.messages_received += f.corrupt_copies;
    dst.messages_sent += f.corrupt_copies;  // nacks carry zero words
  }
  return tax;
}

}  // namespace camb::coll
