// alltoall.hpp — All-to-All (personalized exchange).
//
// Member i sends block (i, j) to member j.  Included because Agarwal et al.
// (1995) used All-to-All where Algorithm 1 uses Reduce-Scatter; the
// collectives ablation bench quantifies the difference.  Implemented as a
// p − 1 round shifted pairwise exchange (any comm size); bandwidth per rank
// is (total − own block), same as Reduce-Scatter, but the reduction work then
// has to happen after the exchange and the latency is p − 1 rounds always.
#pragma once

#include <vector>

#include "collectives/comm.hpp"

namespace camb::coll {

enum class AlltoallAlgo {
  /// p − 1 rounds of paired exchange; bandwidth-optimal (total − own words).
  kPairwise,
  /// Bruck's ⌈log2 p⌉-round algorithm (equal block sizes required): blocks
  /// hop along binary displacements, so each rank moves ~ (p/2)·log2(p)
  /// blocks instead of p − 1 — less latency bought with more bandwidth.
  kBruck,
};

/// blocks[j] is this member's block destined for comm member j.  Returns
/// received blocks: result[j] is the block member j sent to this member.
/// Templated over the scalar type; defined for the CAMB_FOR_EACH_SCALAR set.
template <typename T>
std::vector<std::vector<T>> alltoall(
    const Comm& comm, const std::vector<std::vector<T>>& blocks,
    AlltoallAlgo algo = AlltoallAlgo::kPairwise);

/// Exact per-rank received element count of the Bruck variant with equal
/// blocks: block * sum over rounds t of |{d in [0, p) : bit t of d is set}|.
i64 alltoall_bruck_recv_words(int p, i64 block);

}  // namespace camb::coll
