#include "collectives/bcast.hpp"

#include <algorithm>

#include "util/scalar.hpp"

namespace camb::coll {

namespace {

template <typename T>
void bcast_binomial(const Comm& comm, int root_idx, std::vector<T>& data,
                    i64 payload_elems, int tag_base) {
  const int p = comm.size();
  const int me = comm.my_index();
  // Virtual index: root becomes 0, everything else rotates.
  const int v = (me - root_idx + p) % p;
  if (v == 0) {
    CAMB_CHECK_MSG(static_cast<i64>(data.size()) == payload_elems,
                   "bcast root payload size mismatch");
  }
  bool have_data = (v == 0);
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    if (have_data) {
      const int dst_v = v + dist;
      if (v < dist && dst_v < p) {
        // The root line sends the same payload to several children; each
        // send gets its own pooled copy.
        comm.send((dst_v + root_idx) % p, tag_base + round,
                  Buffer::pack<T>(data));
      }
    } else if (v >= dist && v < 2 * dist) {
      const int src_v = v - dist;
      Buffer incoming = comm.recv((src_v + root_idx) % p, tag_base + round);
      CAMB_CHECK(incoming.elems<T>() == payload_elems);
      data = std::move(incoming).take_as<T>();
      have_data = true;
    }
  }
  CAMB_CHECK_MSG(have_data, "bcast finished without receiving payload");
}

/// Pipelined ring: the root cuts the payload into segments and streams them
/// to its successor; every other member forwards each segment on as soon as
/// it arrives.  Segment s travels with tag tag_base + s, so forwarding can
/// proceed without per-hop synchronization.
template <typename T>
void bcast_pipelined_ring(const Comm& comm, int root_idx, std::vector<T>& data,
                          i64 payload_elems, int tag_base, i64 segments) {
  const int p = comm.size();
  const int me = comm.my_index();
  const int v = (me - root_idx + p) % p;  // position along the ring
  segments =
      std::max<i64>(1, std::min(segments, std::max<i64>(payload_elems, 1)));
  CAMB_CHECK_MSG(segments < kTagBlockWidth,
                 "too many segments for the tag block");
  const i64 base = payload_elems / segments;
  const i64 extra = payload_elems % segments;
  const int next = (me + 1) % p;
  const int prev = (me + p - 1) % p;
  const bool is_root = (v == 0);
  const bool is_tail = (v == p - 1);
  if (is_root) {
    CAMB_CHECK_MSG(static_cast<i64>(data.size()) == payload_elems,
                   "bcast root payload size mismatch");
    i64 offset = 0;
    for (i64 s = 0; s < segments; ++s) {
      const i64 len = base + (s < extra ? 1 : 0);
      comm.send(next, tag_base + static_cast<int>(s),
                Buffer::pack<T>(data.data() + offset, len));
      offset += len;
    }
    return;
  }
  data.assign(static_cast<std::size_t>(payload_elems), ScalarTraits<T>::zero());
  i64 offset = 0;
  for (i64 s = 0; s < segments; ++s) {
    Buffer segment = comm.recv(prev, tag_base + static_cast<int>(s));
    const i64 len = base + (s < extra ? 1 : 0);
    CAMB_CHECK(segment.elems<T>() == len);
    segment.unpack_into<T>(data.data() + offset);
    offset += len;
    if (!is_tail) {
      comm.send(next, tag_base + static_cast<int>(s), std::move(segment));
    }
  }
}

}  // namespace

template <typename T>
void bcast(const Comm& comm, int root_idx, std::vector<T>& data,
           i64 payload_elems, BcastAlgo algo, i64 segments) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  const int p = comm.size();
  CAMB_CHECK_MSG(root_idx >= 0 && root_idx < p, "bcast root out of range");
  if (p == 1) {
    CAMB_CHECK(static_cast<i64>(data.size()) == payload_elems);
    return;
  }
  const int tag_base = comm.take_tag_block();
  switch (algo) {
    case BcastAlgo::kBinomial:
      bcast_binomial<T>(comm, root_idx, data, payload_elems, tag_base);
      return;
    case BcastAlgo::kPipelinedRing:
      bcast_pipelined_ring<T>(comm, root_idx, data, payload_elems, tag_base,
                              segments);
      return;
  }
  throw Error("unreachable bcast algo");
}

#define CAMB_INSTANTIATE(T)                                      \
  template void bcast<T>(const Comm&, int, std::vector<T>&, i64, \
                         BcastAlgo, i64);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::coll
