#include "collectives/allreduce.hpp"

namespace camb::coll {

std::vector<double> allreduce(RankCtx& ctx, const std::vector<int>& group,
                              std::vector<double> data, int tag_base) {
  validate_group(group, ctx.nprocs());
  const int p = static_cast<int>(group.size());
  if (p == 1) return data;
  // Near-equal segmentation (first w mod p segments get one extra word) so
  // the composition works for any payload size, including w < p.
  const auto w = static_cast<i64>(data.size());
  std::vector<i64> counts(static_cast<std::size_t>(p), w / p);
  for (i64 j = 0; j < w % p; ++j) counts[static_cast<std::size_t>(j)] += 1;
  std::vector<double> segment =
      reduce_scatter(ctx, group, counts, data, tag_base);
  return allgather(ctx, group, counts, segment, tag_base + kTagStride / 2);
}

}  // namespace camb::coll
