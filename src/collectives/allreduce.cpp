#include "collectives/allreduce.hpp"

namespace camb::coll {

std::vector<double> allreduce(const Comm& comm, std::vector<double> data) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  const int p = comm.size();
  if (p == 1) return data;
  // Near-equal segmentation (first w mod p segments get one extra word) so
  // the composition works for any payload size, including w < p.  The two
  // stages each draw their own tag block from the comm.
  const auto w = static_cast<i64>(data.size());
  std::vector<i64> counts(static_cast<std::size_t>(p), w / p);
  for (i64 j = 0; j < w % p; ++j) counts[static_cast<std::size_t>(j)] += 1;
  std::vector<double> segment = reduce_scatter(comm, counts, data);
  return allgather(comm, counts, segment);
}

}  // namespace camb::coll
