#include "collectives/allreduce.hpp"

#include "util/scalar.hpp"

namespace camb::coll {

template <typename T>
std::vector<T> allreduce(const Comm& comm, std::vector<T> data) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  const int p = comm.size();
  if (p == 1) return data;
  // Near-equal segmentation (first w mod p segments get one extra element) so
  // the composition works for any payload size, including w < p.  The two
  // stages each draw their own tag block from the comm.
  const auto w = static_cast<i64>(data.size());
  std::vector<i64> counts(static_cast<std::size_t>(p), w / p);
  for (i64 j = 0; j < w % p; ++j) counts[static_cast<std::size_t>(j)] += 1;
  std::vector<T> segment = reduce_scatter(comm, counts, data);
  return allgather(comm, counts, segment);
}

#define CAMB_INSTANTIATE(T) \
  template std::vector<T> allreduce<T>(const Comm&, std::vector<T>);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::coll
