// reduce_scatter.hpp — Reduce-Scatter collective (used by Algorithm 1, line 8).
//
// Every member contributes a full-length vector; the element-wise sum is
// computed and scattered so member i ends with segment i.  Both variants are
// bandwidth optimal — each rank receives exactly (total − own segment) words,
// i.e. (1 − 1/p)·w for equal segments, matching §5.1 — and each rank performs
// (total − own) additions, the flop count noted in §5.1.
//
//   ring               p − 1 rounds     any comm size, any segment sizes
//   recursive halving  ⌈log2 p⌉ rounds  power-of-two comm size
#pragma once

#include <vector>

#include "collectives/comm.hpp"

namespace camb::coll {

enum class ReduceScatterAlgo {
  kRing,
  kRecursiveHalving,
  /// recursive halving when the comm size is a power of two, otherwise ring.
  kAuto,
};

/// Runs the Reduce-Scatter.  `full` is this rank's contribution (size
/// counts_total(counts), counted in elements); segment i (size counts[i]) of
/// the element-wise sum is returned to comm member i.  Templated over the
/// scalar type (sum via operator+=); defined for CAMB_FOR_EACH_SCALAR.
template <typename T>
std::vector<T> reduce_scatter(const Comm& comm, const std::vector<i64>& counts,
                              const std::vector<T>& full,
                              ReduceScatterAlgo algo = ReduceScatterAlgo::kAuto);

/// Equal-segment convenience wrapper: splits full.size() into comm-size
/// equal segments (full.size() must be divisible by the comm size).
template <typename T>
std::vector<T> reduce_scatter_equal(
    const Comm& comm, const std::vector<T>& full,
    ReduceScatterAlgo algo = ReduceScatterAlgo::kAuto);

}  // namespace camb::coll
