// reduce_scatter.hpp — Reduce-Scatter collective (used by Algorithm 1, line 8).
//
// Every member contributes a full-length vector; the element-wise sum is
// computed and scattered so member i ends with segment i.  Both variants are
// bandwidth optimal — each rank receives exactly (total − own segment) words,
// i.e. (1 − 1/p)·w for equal segments, matching §5.1 — and each rank performs
// (total − own) additions, the flop count noted in §5.1.
//
//   ring               p − 1 rounds     any group size, any segment sizes
//   recursive halving  ⌈log2 p⌉ rounds  power-of-two group size
#pragma once

#include <vector>

#include "collectives/group.hpp"

namespace camb::coll {

enum class ReduceScatterAlgo {
  kRing,
  kRecursiveHalving,
  /// recursive halving when |group| is a power of two, otherwise ring.
  kAuto,
};

/// Runs the Reduce-Scatter.  `full` is this rank's contribution (size
/// counts_total(counts)); segment i (size counts[i]) of the element-wise sum
/// is returned to group member i.
std::vector<double> reduce_scatter(RankCtx& ctx, const std::vector<int>& group,
                                   const std::vector<i64>& counts,
                                   const std::vector<double>& full,
                                   int tag_base,
                                   ReduceScatterAlgo algo = ReduceScatterAlgo::kAuto);

/// Equal-segment convenience wrapper: splits full.size() into |group| equal
/// segments (full.size() must be divisible by |group|).
std::vector<double> reduce_scatter_equal(
    RankCtx& ctx, const std::vector<int>& group, const std::vector<double>& full,
    int tag_base, ReduceScatterAlgo algo = ReduceScatterAlgo::kAuto);

}  // namespace camb::coll
