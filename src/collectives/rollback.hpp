// rollback.hpp — coordinated checkpoint/rollback recovery for the matmul
// algorithms.
//
// The machine runs P logical ranks on P + S physical ranks (S spares).  The
// run proceeds in *rounds*; each round is one attempted execution of the
// algorithm followed by one synchronization.  The recovery tag region is
// carved into per-round bands so aborted rounds can be abandoned wholesale:
//
//   exec band of round k:  [exec_band(k), sync_band(k))   — algorithm
//       traffic and buddy checkpoint commits (phase "checkpoint");
//   sync band of round k:  [sync_band(k), exec_band(k+1)) — the agreement
//       flood (phase "ckpt_shrink") and snapshot restreams to fresh
//       recruits (phase "ckpt_rollback").
//
// All execution runs on recovery-region tags: ranks that abort at different
// points lease different numbers of blocks, and resetting every cursor to
// the agreed band base (TagAllocator::set_recovery_cursor) is what keeps
// the SPMD lease sequences aligned across re-executions.
//
// The synchronization is one (S+1)-sub-round view flood over the *full*
// physical machine, modeled on coll::shrink but carrying values, not just
// suspicion masks:
//
//   view = [crash mask: M words][known mask: M words][payload: T x 4]
//   payload(r) = [vote, own_committed, ward_lo, ward_hi]
//
// where T = P + S, M = ceil(T / 32), vote = hosted logical + 1 if rank r's
// execution completed this round (its output is stored), else 0.  The
// crash-mask contribution of each rank is frozen at flood start, and
// payloads originate from single sources, so both are *relayed values*: the
// classic f+1-round flooding argument makes the final crash mask, known
// set, and payloads identical across every rank that completes the flood
// (failures observed mid-flood only join the next round's contribution).
// Everything decided afterwards — termination, the hosts map, the rollback
// epoch E, the restream plan — is a pure function of that agreed view, so
// no two survivors can disagree:
//
//   done   <=>  every logical rank is claimed by a success vote;
//   hosts  =    logical L on physical L unless crashed, else on the next
//               ascending surviving spare (throws when spares run out);
//   E      =    min own_committed over established hosts, forced to 0 when
//               any fresh recruit's buddy cannot restream epoch E (epoch 0
//               = regenerate from scratch; inputs are pure functions of
//               logical position).
//
// A failure during the sync itself (a restream peer dying) aborts the sync:
// the rank abandons everything below the *next* sync band and rejoins
// there, skipping one execution — failure-during-recovery degrades to one
// extra round, never to deadlock.
#pragma once

#include <mutex>
#include <optional>
#include <vector>

#include "collectives/comm.hpp"
#include "machine/checkpoint.hpp"
#include "machine/faults.hpp"

namespace camb::ckpt {

inline constexpr const char* kPhaseCheckpoint = "checkpoint";
inline constexpr const char* kPhaseCkptShrink = "ckpt_shrink";
inline constexpr const char* kPhaseCkptRollback = "ckpt_rollback";

/// Tag blocks per band: 2^13 blocks = 2^25 tags, 15 full rounds in the
/// recovery region.
inline constexpr int kBandBlocks = 1 << 13;
inline constexpr int kBandWidth = kBandBlocks * kTagBlockWidth;
inline constexpr int kMaxRounds = 15;

inline int exec_band(int round) {
  return kRecoveryTagBase + 2 * round * kBandWidth;
}
inline int sync_band(int round) {
  return kRecoveryTagBase + (2 * round + 1) * kBandWidth;
}

/// Words of one flood view for physical machine size T.
inline i64 ckpt_flood_view_words(int T) {
  return 2 * ((T + 31) / 32) + 4 * static_cast<i64>(T);
}

/// Per-rank received words of one full flood with no failures: every rank
/// receives T-1 views in each of the spares+1 sub-rounds.
inline i64 ckpt_flood_recv_words_exact(int T, int spares) {
  return static_cast<i64>(spares + 1) * (T - 1) * ckpt_flood_view_words(T);
}

struct ResilientConfig {
  int nprocs = 0;      ///< logical ranks P; physical machine is P + spares
  int spares = 0;      ///< S
  i64 interval = 1;    ///< commit every `interval` boundary steps
  int buddy_stride = 1;
};

/// One agreed synchronization round, identical on every completing rank.
struct RoundRecord {
  int round = 0;
  bool done = false;
  i64 epoch = 0;            ///< agreed rollback epoch E (0 = from scratch)
  int claims = 0;           ///< logicals claimed by success votes
  std::vector<int> failed;  ///< agreed crashed physical ranks
  std::vector<int> fresh;   ///< logicals re-hosted onto a new physical rank
};
using RunLog = std::vector<RoundRecord>;

template <typename T>
class SessionT;

/// Per-physical-rank driver state for the round loop.  Templated over the
/// run's scalar: the agreement flood is dtype-independent control traffic
/// (fixed 8-byte words), but the snapshot store and restream wires carry
/// the algorithm's scalar T.
template <typename T>
class RollbackStateT {
 public:
  RollbackStateT(RankCtx& ctx, const ResilientConfig& cfg);

  int round() const { return round_; }
  /// Logical rank this physical rank currently hosts; -1 = idle spare.
  int hosted_logical() const;
  /// Agreed rollback epoch for the current execution round.
  i64 resume_epoch() const { return epoch_; }
  const std::vector<int>& hosts() const { return hosts_; }
  const ResilientConfig& config() const { return cfg_; }
  RankCtx& ctx() const { return ctx_; }
  CheckpointStoreT<T>& store() { return store_; }
  const RunLog& log() const { return log_; }

  /// Enter this round's exec band (cursor re-alignment).
  void begin_exec();
  /// Abandon an aborted execution: peers blocked on this round's exec-band
  /// tags fail over; the sync band still flows.
  void abort_exec();
  /// Record a ground-truth crash learned from a PeerFailedError.
  void note_failure(const PeerFailedError& err);
  /// One agreement flood + restream.  Returns true when the run is done.
  /// Throws PeerFailedError if a restream source dies mid-stream — the
  /// caller aborts the sync and rejoins one round later.
  bool round_sync(bool exec_success);
  /// Abandon an aborted sync and advance to the next round's sync.
  void abort_sync();

 private:
  std::vector<int> compute_hosts(const std::vector<char>& failed) const;

  RankCtx& ctx_;
  ResilientConfig cfg_;
  int T_;
  int round_ = 0;
  i64 epoch_ = 0;
  std::vector<char> known_dead_;
  std::vector<int> hosts_;
  CheckpointStoreT<T> store_;
  RunLog log_;
};
using RollbackState = RollbackStateT<double>;

/// The per-execution-attempt face the algorithm twins program against:
/// logical-rank geometry, recovery-region communicators translated through
/// the hosts map, and epoch-boundary commits.  Constructed fresh for every
/// execution round (its construction leases the round's commit tag block).
template <typename T>
class SessionT {
 public:
  explicit SessionT(RollbackStateT<T>& rb);

  /// Logical rank / logical machine size.
  int rank() const { return logical_; }
  int nprocs() const { return rb_.config().nprocs; }
  RankCtx& ctx() const { return rb_.ctx(); }
  i64 interval() const { return rb_.config().interval; }

  /// Rollback target: resume after boundary step resume_step().
  i64 resume_epoch() const { return rb_.resume_epoch(); }
  i64 resume_step() const { return rb_.resume_epoch() * interval(); }
  bool restored() const { return rb_.resume_epoch() >= 1; }
  /// The snapshot to restore from (valid when restored()).
  const SnapshotT<T>& snapshot() const;

  /// Recovery communicator over *logical* members, translated to physical
  /// ranks through the agreed hosts map.  Twins make the identical sequence
  /// of comm() calls on every hosting rank (the SPMD lease contract).
  coll::Comm comm(const std::vector<int>& logical_members,
                  int tag_blocks = coll::Comm::kDefaultTagBlocks) const;

  /// Epoch-boundary hook: commits a snapshot (built by `make`) when `step`
  /// is a multiple of the interval — replicates it to the buddy's host and
  /// stores the ward copy received from the ward's host, all in the
  /// dedicated "checkpoint" phase.  The twin must set its own phase after
  /// the call.  Throws PeerFailedError if a commit peer died.
  void boundary(i64 step, const std::function<SnapshotT<T>()>& make);

 private:
  RollbackStateT<T>& rb_;
  int logical_;
  int commit_base_;
};
using Session = SessionT<double>;

/// The round loop run by every physical rank: attempt the body, store its
/// output under the results mutex, synchronize, repeat until every logical
/// rank's output is claimed.  Crashed ranks simply stop participating;
/// spares idle until the hosts map drafts them.  T is the run's scalar —
/// the snapshot wires the body commits through SessionT<T>::boundary.
template <typename T, typename Output, typename Body>
void run_resilient(RankCtx& ctx, const ResilientConfig& cfg, Body&& body,
                   std::vector<std::optional<Output>>* results,
                   std::mutex* results_mu, RunLog* log_out) {
  RollbackStateT<T> rb(ctx, cfg);
  bool skip_exec = false;
  while (true) {
    const int logical = rb.hosted_logical();
    bool success = false;
    if (!skip_exec && logical >= 0) {
      rb.begin_exec();
      try {
        SessionT<T> session(rb);
        Output out = body(session);
        {
          std::lock_guard<std::mutex> lock(*results_mu);
          // Re-executions overwrite bit-identical outputs (determinism).
          (*results)[static_cast<std::size_t>(logical)] = std::move(out);
        }
        success = true;
      } catch (const PeerFailedError& err) {
        rb.note_failure(err);
        rb.abort_exec();
      }
    }
    skip_exec = false;
    try {
      if (rb.round_sync(success)) break;
    } catch (const PeerFailedError& err) {
      rb.note_failure(err);
      rb.abort_sync();
      skip_exec = true;
    }
  }
  if (log_out != nullptr) *log_out = rb.log();
}

}  // namespace camb::ckpt
