// allgather.hpp — All-Gather collective (used by Algorithm 1, lines 3–4).
//
// Every comm member contributes a block; everyone ends with the
// concatenation of all blocks in comm order.  All implemented variants are
// bandwidth optimal: each rank receives exactly (total − own) words, which for
// equal blocks is the (1 − 1/p)·w of §5.1.  They differ in latency:
//
//   ring               p − 1 rounds   any comm size, any block sizes
//   recursive doubling ⌈log2 p⌉ rounds  power-of-two comm size
//   bruck              ⌈log2 p⌉ rounds  any comm size
#pragma once

#include <vector>

#include "collectives/comm.hpp"

namespace camb::coll {

enum class AllgatherAlgo {
  kRing,
  kRecursiveDoubling,
  kBruck,
  /// recursive doubling when the comm size is a power of two, else Bruck.
  kAuto,
};

/// Runs the All-Gather.  `counts[i]` is the block size (in elements) of comm
/// member i; `local` is this rank's own block (size counts[my index]).
/// Returns the concatenated blocks (size counts_total(counts)).  Templated
/// over the scalar type; defined for the CAMB_FOR_EACH_SCALAR set
/// (util/scalar.hpp) via explicit instantiation.
template <typename T>
std::vector<T> allgather(const Comm& comm, const std::vector<i64>& counts,
                         const std::vector<T>& local,
                         AllgatherAlgo algo = AllgatherAlgo::kAuto);

/// Equal-block convenience wrapper: every member contributes local.size().
template <typename T>
std::vector<T> allgather_equal(const Comm& comm, const std::vector<T>& local,
                               AllgatherAlgo algo = AllgatherAlgo::kAuto);

}  // namespace camb::coll
