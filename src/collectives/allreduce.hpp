// allreduce.hpp — All-Reduce built as Reduce-Scatter + All-Gather.
//
// The bandwidth-optimal composition (Thakur et al. 2005): 2(1 − 1/p)·w words
// per rank instead of the 2·w of naive reduce+bcast.
#pragma once

#include <vector>

#include "collectives/allgather.hpp"
#include "collectives/reduce_scatter.hpp"

namespace camb::coll {

/// Element-wise sum across the comm; every member receives the full result.
std::vector<double> allreduce(const Comm& comm, std::vector<double> data);

}  // namespace camb::coll
