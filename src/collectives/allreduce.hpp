// allreduce.hpp — All-Reduce built as Reduce-Scatter + All-Gather.
//
// The bandwidth-optimal composition (Thakur et al. 2005): 2(1 − 1/p)·w words
// per rank instead of the 2·w of naive reduce+bcast.
#pragma once

#include <vector>

#include "collectives/allgather.hpp"
#include "collectives/reduce_scatter.hpp"

namespace camb::coll {

/// Element-wise sum across the comm; every member receives the full result.
/// Templated over the scalar type; defined for the CAMB_FOR_EACH_SCALAR set.
template <typename T>
std::vector<T> allreduce(const Comm& comm, std::vector<T> data);

}  // namespace camb::coll
