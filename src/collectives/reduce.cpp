#include "collectives/reduce.hpp"

namespace camb::coll {

std::vector<double> reduce(RankCtx& ctx, const std::vector<int>& group,
                           int root_idx, std::vector<double> data,
                           int tag_base) {
  validate_group(group, ctx.nprocs());
  const int p = static_cast<int>(group.size());
  CAMB_CHECK_MSG(root_idx >= 0 && root_idx < p, "reduce root out of range");
  const int me = group_index(group, ctx.rank());
  const int v = (me - root_idx + p) % p;
  // Mirror image of binomial bcast: distances shrink from the top.
  int top = 1;
  while (top < p) top <<= 1;
  for (int dist = top >> 1; dist >= 1; dist >>= 1) {
    const int round = [&] {  // stable per-distance tag
      int t = 0, d = top >> 1;
      while (d != dist) { d >>= 1; ++t; }
      return t;
    }();
    if (v >= dist && v < 2 * dist) {
      const int dst = group[static_cast<std::size_t>(((v - dist) + root_idx) % p)];
      ctx.send(dst, tag_base + round, std::move(data));
      data.clear();
    } else if (v < dist && v + dist < p) {
      const int src = group[static_cast<std::size_t>(((v + dist) + root_idx) % p)];
      std::vector<double> incoming = ctx.recv(src, tag_base + round);
      CAMB_CHECK(incoming.size() == data.size());
      for (std::size_t j = 0; j < data.size(); ++j) data[j] += incoming[j];
    }
  }
  if (v != 0) data.clear();
  return data;
}

}  // namespace camb::coll
