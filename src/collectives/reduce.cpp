#include "collectives/reduce.hpp"

#include "util/scalar.hpp"

namespace camb::coll {

template <typename T>
std::vector<T> reduce(const Comm& comm, int root_idx, std::vector<T> data) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  const int p = comm.size();
  CAMB_CHECK_MSG(root_idx >= 0 && root_idx < p, "reduce root out of range");
  if (p == 1) return data;
  const int tag_base = comm.take_tag_block();
  const int me = comm.my_index();
  const int v = (me - root_idx + p) % p;
  // Mirror image of binomial bcast: distances shrink from the top.
  int top = 1;
  while (top < p) top <<= 1;
  for (int dist = top >> 1; dist >= 1; dist >>= 1) {
    const int round = [&] {  // stable per-distance tag
      int t = 0, d = top >> 1;
      while (d != dist) { d >>= 1; ++t; }
      return t;
    }();
    if (v >= dist && v < 2 * dist) {
      comm.send(((v - dist) + root_idx) % p, tag_base + round,
                Buffer::adopt(std::move(data)));
      data.clear();
    } else if (v < dist && v + dist < p) {
      Buffer incoming = comm.recv(((v + dist) + root_idx) % p,
                                  tag_base + round);
      CAMB_CHECK(incoming.elems<T>() == static_cast<i64>(data.size()));
      const TypedView<T> in(incoming);
      for (std::size_t j = 0; j < data.size(); ++j) {
        data[j] += in[static_cast<i64>(j)];
      }
    }
  }
  if (v != 0) data.clear();
  return data;
}

#define CAMB_INSTANTIATE(T) \
  template std::vector<T> reduce<T>(const Comm&, int, std::vector<T>);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::coll
