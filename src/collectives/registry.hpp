// registry.hpp — named variants of All-Gather / Reduce-Scatter.
//
// Tests and the collectives ablation bench sweep every variant by name; this
// registry is the single source of truth for which variants exist and which
// group sizes each supports.
#pragma once

#include <string>
#include <vector>

#include "collectives/allgather.hpp"
#include "collectives/reduce_scatter.hpp"

namespace camb::coll {

struct AllgatherVariant {
  std::string name;
  AllgatherAlgo algo;
  /// True if this variant supports a group of size p.
  bool supports(int p) const;
};

struct ReduceScatterVariant {
  std::string name;
  ReduceScatterAlgo algo;
  bool supports(int p) const;
};

const std::vector<AllgatherVariant>& allgather_variants();
const std::vector<ReduceScatterVariant>& reduce_scatter_variants();

}  // namespace camb::coll
