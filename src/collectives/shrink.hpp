// shrink.hpp — survivor-group agreement after crash faults.
//
// After a rank failure, the survivors of a group must agree on (a) exactly
// which members are gone and (b) whether any survivor abandoned the
// algorithm mid-flight (which decides between cheap checksum recovery and
// degraded re-execution in the ABFT layer).  This is the classic synchronous
// crash-consensus problem; with the machine's *perfect* failure detection
// (a rank is suspected only when it is genuinely dead — see mailbox.hpp),
// `max_failures + 1` rounds of view flooding guarantee agreement: at least
// one round sees no new failure, and in that round every alive member's
// view reaches every other alive member.
//
// Views are bitmasks packed 32 flags per payload word, so one round costs
// each member (alive − 1) messages of 2·⌈|group|/32⌉ words — accounted in
// α-β through the normal network path, like every other collective.
//
// Contract: every *surviving* member of `group` must call shrink (ranks
// that completed the algorithm cleanly included — the ABFT wrappers funnel
// everyone here), with identical group / tag_base / max_failures.  Tags
// must lie in the recovery range (>= kRecoveryTagBase) so that abandoned
// members can still participate.
#pragma once

#include <vector>

#include "collectives/group.hpp"

namespace camb::coll {

/// Agreement outcome, identical across all surviving callers.
struct ShrinkResult {
  std::vector<int> survivors;  ///< machine ranks, in group order
  std::vector<int> failed;     ///< machine ranks found crashed, group order
  bool any_abandoned = false;  ///< did any member flag i_abandoned?

  /// Index of `rank` within survivors; -1 if absent.
  int survivor_index(int rank) const {
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      if (survivors[i] == rank) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Flood-based crash agreement over `group`, tolerating up to `max_failures`
/// crashed members (including crashes that strike during the protocol
/// itself).  `i_abandoned` is this caller's own flag; the result's
/// any_abandoned is the OR over every view that reached the survivors.
ShrinkResult shrink(RankCtx& ctx, const std::vector<int>& group,
                    int max_failures, int tag_base, bool i_abandoned);

/// Fault-free per-member received words of shrink on a p-member group:
/// (max_failures + 1) rounds × (p − 1) peers × 2·⌈p/32⌉ mask words.
inline camb::i64 shrink_recv_words_exact(int p, int max_failures) {
  if (p <= 1) return 0;
  return static_cast<camb::i64>(max_failures + 1) * (p - 1) * 2 *
         ((p + 31) / 32);
}

}  // namespace camb::coll
