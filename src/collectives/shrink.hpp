// shrink.hpp — survivor-comm agreement after crash faults.
//
// After a rank failure, the survivors of a comm must agree on (a) exactly
// which members are gone and (b) whether any survivor abandoned the
// algorithm mid-flight (which decides between cheap checksum recovery and
// degraded re-execution in the ABFT layer).  This is the classic synchronous
// crash-consensus problem; with the machine's *perfect* failure detection
// (a rank is suspected only when it is genuinely dead — see mailbox.hpp),
// `max_failures + 1` rounds of view flooding guarantee agreement: at least
// one round sees no new failure, and in that round every alive member's
// view reaches every other alive member.
//
// Views are bitmasks packed 32 flags per payload word, so one round costs
// each member (alive − 1) messages of 2·⌈p/32⌉ words — accounted in α-β
// through the normal network path, like every other collective.
//
// Contract: every *surviving* member of `comm` must call shrink (ranks that
// completed the algorithm cleanly included — the ABFT wrappers funnel
// everyone here), with identical max_failures.  The comm must be a recovery
// comm (Comm::recovery) so that abandoned members can still participate —
// and so the survivor comm the result carries is leased in agreement by
// every surviving caller.
#pragma once

#include <vector>

#include "collectives/comm.hpp"

namespace camb::coll {

/// Agreement outcome, identical across all surviving callers.
struct ShrinkResult {
  /// Recovery comm over the agreed survivor set (parent-comm order); every
  /// surviving caller constructs it at the same point, so subsequent
  /// recovery collectives run directly on it.
  Comm survivors;
  std::vector<int> failed;     ///< machine ranks found crashed, comm order
  bool any_abandoned = false;  ///< did any member flag i_abandoned?

  /// Index of `rank` within survivors; -1 if absent.
  int survivor_index(int rank) const {
    const std::vector<int>& s = survivors.ranks();
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == rank) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Flood-based crash agreement over `comm`, tolerating up to `max_failures`
/// crashed members (including crashes that strike during the protocol
/// itself).  `i_abandoned` is this caller's own flag; the result's
/// any_abandoned is the OR over every view that reached the survivors.
ShrinkResult shrink(const Comm& comm, int max_failures, bool i_abandoned);

/// Fault-free per-member received words of shrink on a p-member comm:
/// (max_failures + 1) rounds × (p − 1) peers × 2·⌈p/32⌉ mask words.
inline camb::i64 shrink_recv_words_exact(int p, int max_failures) {
  if (p <= 1) return 0;
  return static_cast<camb::i64>(max_failures + 1) * (p - 1) * 2 *
         ((p + 31) / 32);
}

}  // namespace camb::coll
