#include "collectives/registry.hpp"

namespace camb::coll {

namespace {
bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }
}  // namespace

bool AllgatherVariant::supports(int p) const {
  if (algo == AllgatherAlgo::kRecursiveDoubling) return is_pow2(p);
  return p >= 1;
}

bool ReduceScatterVariant::supports(int p) const {
  if (algo == ReduceScatterAlgo::kRecursiveHalving) return is_pow2(p);
  return p >= 1;
}

const std::vector<AllgatherVariant>& allgather_variants() {
  static const std::vector<AllgatherVariant> variants = {
      {"ring", AllgatherAlgo::kRing},
      {"recursive_doubling", AllgatherAlgo::kRecursiveDoubling},
      {"bruck", AllgatherAlgo::kBruck},
  };
  return variants;
}

const std::vector<ReduceScatterVariant>& reduce_scatter_variants() {
  static const std::vector<ReduceScatterVariant> variants = {
      {"ring", ReduceScatterAlgo::kRing},
      {"recursive_halving", ReduceScatterAlgo::kRecursiveHalving},
  };
  return variants;
}

}  // namespace camb::coll
