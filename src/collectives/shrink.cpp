#include "collectives/shrink.hpp"

#include <cstdint>
#include <limits>

#include "machine/faults.hpp"

namespace camb::coll {

namespace {

bool test_bit(const std::vector<std::uint32_t>& mask, int i) {
  return (mask[static_cast<std::size_t>(i / 32)] >>
          static_cast<unsigned>(i % 32)) & 1u;
}

void set_bit(std::vector<std::uint32_t>& mask, int i) {
  mask[static_cast<std::size_t>(i / 32)] |= 1u << static_cast<unsigned>(i % 32);
}

}  // namespace

ShrinkResult shrink(RankCtx& ctx, const std::vector<int>& group,
                    int max_failures, int tag_base, bool i_abandoned) {
  validate_group(group, ctx.nprocs());
  CAMB_CHECK_MSG(tag_base >= kRecoveryTagBase,
                 "shrink must run on recovery tags");
  CAMB_CHECK_MSG(max_failures >= 0, "max_failures must be non-negative");
  const int p = static_cast<int>(group.size());
  const int rounds = max_failures + 1;
  CAMB_CHECK_MSG(rounds < kTagStride, "too many shrink rounds for tag range");
  const int me = group_index(group, ctx.rank());
  const int words = (p + 31) / 32;

  std::vector<std::uint32_t> failed_mask(static_cast<std::size_t>(words), 0);
  std::vector<std::uint32_t> abandoned_mask(static_cast<std::size_t>(words), 0);
  if (i_abandoned) set_bit(abandoned_mask, me);

  for (int round = 0; round < rounds; ++round) {
    // Snapshot who I believe alive: the send and receive sets of one round
    // must match, even though the receive loop may add new suspicions.
    std::vector<char> alive(static_cast<std::size_t>(p), 0);
    for (int j = 0; j < p; ++j) {
      alive[static_cast<std::size_t>(j)] = !test_bit(failed_mask, j);
    }
    // Flood my full view (both masks, 32 flags per word — exact in doubles).
    std::vector<double> view(static_cast<std::size_t>(2 * words));
    for (int w = 0; w < words; ++w) {
      view[static_cast<std::size_t>(w)] =
          static_cast<double>(failed_mask[static_cast<std::size_t>(w)]);
      view[static_cast<std::size_t>(words + w)] =
          static_cast<double>(abandoned_mask[static_cast<std::size_t>(w)]);
    }
    for (int j = 0; j < p; ++j) {
      if (j == me || !alive[static_cast<std::size_t>(j)]) continue;
      ctx.send(group[static_cast<std::size_t>(j)], tag_base + round, view);
    }
    for (int j = 0; j < p; ++j) {
      if (j == me || !alive[static_cast<std::size_t>(j)]) continue;
      auto peer_view = ctx.recv_timed(
          group[static_cast<std::size_t>(j)], tag_base + round,
          std::numeric_limits<double>::infinity());
      if (!peer_view) {
        // Perfect detection: nullopt on a recovery tag means j is dead.
        set_bit(failed_mask, j);
        continue;
      }
      CAMB_CHECK(static_cast<int>(peer_view->size()) == 2 * words);
      for (int w = 0; w < words; ++w) {
        failed_mask[static_cast<std::size_t>(w)] |= static_cast<std::uint32_t>(
            (*peer_view)[static_cast<std::size_t>(w)]);
        abandoned_mask[static_cast<std::size_t>(w)] |=
            static_cast<std::uint32_t>(
                (*peer_view)[static_cast<std::size_t>(words + w)]);
      }
    }
  }

  ShrinkResult result;
  for (int j = 0; j < p; ++j) {
    if (test_bit(failed_mask, j)) {
      result.failed.push_back(group[static_cast<std::size_t>(j)]);
    } else {
      result.survivors.push_back(group[static_cast<std::size_t>(j)]);
    }
    if (test_bit(abandoned_mask, j)) result.any_abandoned = true;
  }
  return result;
}

}  // namespace camb::coll
