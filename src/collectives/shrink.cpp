#include "collectives/shrink.hpp"

#include <cstdint>
#include <limits>

#include "machine/faults.hpp"

namespace camb::coll {

namespace {

bool test_bit(const std::vector<std::uint32_t>& mask, int i) {
  return (mask[static_cast<std::size_t>(i / 32)] >>
          static_cast<unsigned>(i % 32)) & 1u;
}

void set_bit(std::vector<std::uint32_t>& mask, int i) {
  mask[static_cast<std::size_t>(i / 32)] |= 1u << static_cast<unsigned>(i % 32);
}

}  // namespace

ShrinkResult shrink(const Comm& comm, int max_failures, bool i_abandoned) {
  CAMB_CHECK_MSG(comm.member(), "only members may call shrink");
  CAMB_CHECK_MSG(comm.is_recovery(), "shrink must run on a recovery comm");
  CAMB_CHECK_MSG(max_failures >= 0, "max_failures must be non-negative");
  const int p = comm.size();
  const int rounds = max_failures + 1;
  CAMB_CHECK_MSG(rounds < kTagBlockWidth,
                 "too many shrink rounds for the tag block");
  const int tag_base = comm.take_tag_block();
  const int me = comm.my_index();
  const int words = (p + 31) / 32;

  std::vector<std::uint32_t> failed_mask(static_cast<std::size_t>(words), 0);
  std::vector<std::uint32_t> abandoned_mask(static_cast<std::size_t>(words), 0);
  if (i_abandoned) set_bit(abandoned_mask, me);

  for (int round = 0; round < rounds; ++round) {
    // Snapshot who I believe alive: the send and receive sets of one round
    // must match, even though the receive loop may add new suspicions.
    std::vector<char> alive(static_cast<std::size_t>(p), 0);
    for (int j = 0; j < p; ++j) {
      alive[static_cast<std::size_t>(j)] = !test_bit(failed_mask, j);
    }
    // Flood my full view (both masks, 32 flags per word — exact in doubles).
    std::vector<double> view(static_cast<std::size_t>(2 * words));
    for (int w = 0; w < words; ++w) {
      view[static_cast<std::size_t>(w)] =
          static_cast<double>(failed_mask[static_cast<std::size_t>(w)]);
      view[static_cast<std::size_t>(words + w)] =
          static_cast<double>(abandoned_mask[static_cast<std::size_t>(w)]);
    }
    for (int j = 0; j < p; ++j) {
      if (j == me || !alive[static_cast<std::size_t>(j)]) continue;
      comm.send(j, tag_base + round, Buffer::copy_of(view));
    }
    for (int j = 0; j < p; ++j) {
      if (j == me || !alive[static_cast<std::size_t>(j)]) continue;
      auto peer_view =
          comm.ctx().recv_timed(comm.rank_at(j), tag_base + round,
                                std::numeric_limits<double>::infinity());
      if (!peer_view) {
        // Perfect detection: nullopt on a recovery tag means j is dead.
        set_bit(failed_mask, j);
        continue;
      }
      CAMB_CHECK(static_cast<int>(peer_view->size()) == 2 * words);
      for (int w = 0; w < words; ++w) {
        failed_mask[static_cast<std::size_t>(w)] |= static_cast<std::uint32_t>(
            (*peer_view)[static_cast<std::size_t>(w)]);
        abandoned_mask[static_cast<std::size_t>(w)] |=
            static_cast<std::uint32_t>(
                (*peer_view)[static_cast<std::size_t>(words + w)]);
      }
    }
  }

  std::vector<int> survivors;
  std::vector<int> failed;
  bool any_abandoned = false;
  for (int j = 0; j < p; ++j) {
    if (test_bit(failed_mask, j)) {
      failed.push_back(comm.rank_at(j));
    } else {
      survivors.push_back(comm.rank_at(j));
    }
    if (test_bit(abandoned_mask, j)) any_abandoned = true;
  }
  // Every surviving caller reaches this point with the same survivor set,
  // so the recovery lease below lines up across all of them.
  return ShrinkResult{Comm::recovery(comm.ctx(), std::move(survivors)),
                      std::move(failed), any_abandoned};
}

}  // namespace camb::coll
