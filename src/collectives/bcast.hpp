// bcast.hpp — Broadcast collective.
//
// Two variants with the classic small/large-message trade-off:
//
//   binomial tree     ⌈log2 p⌉ rounds; time ~ ⌈log2 p⌉ (α + βw).  Best for
//                     small payloads (latency-bound).
//   pipelined ring    the payload is cut into segments that stream down the
//                     ring 0→1→…→p−1; time ~ (p − 1 + segments)(α + βw/s),
//                     which approaches βw for large payloads — the
//                     bandwidth-optimal broadcast (up to the 2x of
//                     scatter+allgather schemes).  Only the logical-clock
//                     simulation can see this win: both variants deliver
//                     exactly w words to every non-root.
#pragma once

#include <vector>

#include "collectives/comm.hpp"

namespace camb::coll {

enum class BcastAlgo {
  kBinomial,
  kPipelinedRing,
};

/// Broadcast `data` from comm member `root_idx` (an index into the comm, not
/// a machine rank) to all members.  On non-roots, `data` is resized and
/// overwritten; `payload_elems` (an element count — words scale by the
/// scalar's width) must be passed consistently by every member.  `segments`
/// applies to the pipelined ring only (clamped to [1, w]).  Templated over
/// the scalar type; defined for the CAMB_FOR_EACH_SCALAR set.
template <typename T>
void bcast(const Comm& comm, int root_idx, std::vector<T>& data,
           i64 payload_elems, BcastAlgo algo = BcastAlgo::kBinomial,
           i64 segments = 16);

}  // namespace camb::coll
