// comm.hpp — first-class communicators for collectives.
//
// A Comm is an immutable ordered set of machine ranks with this rank's
// index cached at construction, plus an owned tag-space lease
// (machine/tags.hpp).  It replaces the old (group vector, hand-numbered
// tag_base) convention: collectives take `const Comm&` and draw a fresh tag
// block per invocation, so no call site ever reasons about tags again.
//
// SPMD contract (the same one MPI imposes on communicator creation):
//
//   * every rank of the machine performs the identical *sequence* of Comm
//     constructions — then the k-th lease has the same base everywhere,
//     even though the member lists may differ per rank (each rank builds
//     the fiber it belongs to);
//   * every member of a comm invokes the same collectives on it in the
//     same order — then the per-invocation tag cursors agree.
//
// Comms built at the same program point on different ranks (the row fibers
// of a grid, say) share a lease base; that is safe precisely because their
// (src, dst) pairs are disjoint, and message matching is exact on
// (src, tag).  Construction is purely local — no messages, no cost.
//
// Recovery comms lease from the independent recovery region
// (>= kRecoveryTagBase), whose cursor survives algorithm-phase divergence:
// a rank that abandoned mid-collective still agrees with clean survivors on
// every subsequent recovery lease.  A rank may construct a recovery comm it
// is not a member of (keeping the lease sequence uniform across survivors);
// only members may communicate on it.
#pragma once

#include <functional>
#include <vector>

#include "machine/machine.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace camb::coll {

class Comm {
 public:
  /// Tag blocks a comm leases by default: one block per collective
  /// invocation, so this caps the invocations a comm can serve.
  static constexpr int kDefaultTagBlocks = 256;

  /// Algorithm-region communicator over an explicit ordered rank set.
  /// Validates the set (non-empty, in range, distinct — one O(p) bitmask
  /// pass) and caches this rank's index (-1 when not a member).
  Comm(RankCtx& ctx, std::vector<int> ranks,
       int tag_blocks = kDefaultTagBlocks);

  /// The whole machine, ranks in order.
  static Comm world(RankCtx& ctx, int tag_blocks = kDefaultTagBlocks);

  /// Recovery-region communicator: same validation, lease taken from the
  /// recovery cursor so abandoned and clean ranks stay in agreement.
  static Comm recovery(RankCtx& ctx, std::vector<int> ranks,
                       int tag_blocks = kDefaultTagBlocks);

  /// Sub-communicator: the members whose color (a pure function of member
  /// index, evaluated locally — no communication) equals this rank's,
  /// ordered by parent index.  Every member of the parent must call split
  /// with the same function; each gets the comm of its own color class.
  Comm split(const std::function<int(int)>& color_of_index,
             int tag_blocks = kDefaultTagBlocks) const;

  int size() const { return static_cast<int>(ranks_.size()); }
  const std::vector<int>& ranks() const { return ranks_; }
  /// This rank's index within the comm; -1 when not a member.
  int my_index() const { return my_index_; }
  bool member() const { return my_index_ >= 0; }
  /// Machine rank of member `index`.
  int rank_at(int index) const {
    CAMB_CHECK_MSG(index >= 0 && index < size(), "comm index out of range");
    return ranks_[static_cast<std::size_t>(index)];
  }
  /// Index of machine rank `rank`; throws if absent.
  int index_of(int rank) const;

  RankCtx& ctx() const { return *ctx_; }
  const TagLease& lease() const { return lease_; }
  bool is_recovery() const { return lease_.base >= kRecoveryTagBase; }

  /// A fresh tag block for one collective invocation.  Members call this in
  /// lockstep (one call per collective, inside the collective), so the
  /// mutable cursor agrees across members.  Throws when the lease is
  /// exhausted — construct the comm with more tag_blocks instead.
  int take_tag_block() const;

  /// Index-addressed point-to-point on this comm's tag space.  `tag` must
  /// come from take_tag_block() (+ an offset within the block); these are
  /// the building blocks for shift/skew algorithms (Cannon, 2.5D, CARMA).
  /// Payloads are pooled move-only Buffers (vectors convert by move).
  void send(int dst_index, int tag, Buffer payload) const;
  Buffer recv(int src_index, int tag) const;
  Buffer sendrecv(int peer_index, int tag, Buffer payload) const;

 private:
  Comm(RankCtx& ctx, std::vector<int> ranks, TagLease tag_lease);

  void check_member_op(int peer_index, int tag) const;

  RankCtx* ctx_;
  std::vector<int> ranks_;
  int my_index_ = -1;
  TagLease lease_;
  mutable int next_block_ = 0;
};

/// Sum of a count vector (payload sizes per member).
inline i64 counts_total(const std::vector<i64>& counts) {
  i64 total = 0;
  for (i64 c : counts) {
    CAMB_CHECK_MSG(c >= 0, "counts must be non-negative");
    total += c;
  }
  return total;
}

/// Offset of member `idx`'s block within the concatenated buffer.
inline i64 counts_offset(const std::vector<i64>& counts, int idx) {
  CAMB_CHECK(idx >= 0 && static_cast<std::size_t>(idx) <= counts.size());
  i64 offset = 0;
  for (int i = 0; i < idx; ++i) offset += counts[static_cast<std::size_t>(i)];
  return offset;
}

}  // namespace camb::coll
