#include "collectives/allgather.hpp"

#include "util/scalar.hpp"

#include <bit>
#include <cstring>

namespace camb::coll {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Ring All-Gather: member i forwards blocks to (i+1) mod p, receiving from
/// (i-1) mod p.  In round r, member i sends block (i - r) mod p and receives
/// block (i - r - 1) mod p, so after p-1 rounds every member has every block.
template <typename T>
std::vector<T> allgather_ring(const Comm& comm, const std::vector<i64>& counts,
                              const std::vector<T>& local, int tag_base) {
  const int p = comm.size();
  const int me = comm.my_index();
  const i64 total = counts_total(counts);
  std::vector<T> out(static_cast<std::size_t>(total));
  std::copy(local.begin(), local.end(),
            out.begin() + counts_offset(counts, me));
  const int next = (me + 1) % p;
  const int prev = (me + p - 1) % p;
  for (int r = 0; r < p - 1; ++r) {
    const int send_block = (me - r + p) % p;
    const int recv_block = (me - r - 1 + 2 * p) % p;
    const i64 send_off = counts_offset(counts, send_block);
    const i64 send_len = counts[static_cast<std::size_t>(send_block)];
    comm.send(next, tag_base + r,
              Buffer::pack<T>(out.data() + send_off, send_len));
    Buffer incoming = comm.recv(prev, tag_base + r);
    CAMB_CHECK(incoming.elems<T>() ==
               counts[static_cast<std::size_t>(recv_block)]);
    incoming.unpack_into<T>(out.data() + counts_offset(counts, recv_block));
  }
  return out;
}

/// Recursive-doubling All-Gather (power-of-two comm size).  Before round t
/// (distance 2^t) member i holds the blocks of all members sharing its index
/// bits above bit t; exchanging with partner i ^ 2^t doubles the held span.
template <typename T>
std::vector<T> allgather_recursive_doubling(const Comm& comm,
                                            const std::vector<i64>& counts,
                                            const std::vector<T>& local,
                                            int tag_base) {
  const int p = comm.size();
  const int me = comm.my_index();
  const i64 total = counts_total(counts);
  std::vector<T> out(static_cast<std::size_t>(total));
  std::copy(local.begin(), local.end(),
            out.begin() + counts_offset(counts, me));
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    const int partner_idx = me ^ dist;
    // Blocks currently held: indices with the same bits >= dist as me.
    const int my_span_lo = (me / dist) * dist;
    const int partner_span_lo = (partner_idx / dist) * dist;
    const i64 send_off = counts_offset(counts, my_span_lo);
    i64 send_len = 0;
    for (int b = my_span_lo; b < my_span_lo + dist; ++b) {
      send_len += counts[static_cast<std::size_t>(b)];
    }
    Buffer incoming = comm.sendrecv(
        partner_idx, tag_base + round,
        Buffer::pack<T>(out.data() + send_off, send_len));
    i64 recv_len = 0;
    for (int b = partner_span_lo; b < partner_span_lo + dist; ++b) {
      recv_len += counts[static_cast<std::size_t>(b)];
    }
    CAMB_CHECK(incoming.elems<T>() == recv_len);
    incoming.unpack_into<T>(out.data() +
                            counts_offset(counts, partner_span_lo));
  }
  return out;
}

/// Bruck All-Gather (any comm size, ⌈log2 p⌉ rounds).  Works on a virtual
/// rotation: member i accumulates the blocks of members i, i+1, … (mod p);
/// in round t it receives 2^t more blocks from member (i + 2^t) mod p.
template <typename T>
std::vector<T> allgather_bruck(const Comm& comm,
                               const std::vector<i64>& counts,
                               const std::vector<T>& local, int tag_base) {
  const int p = comm.size();
  const int me = comm.my_index();
  // held[j] is the block of member (me + j) mod p, for j < held_count.
  std::vector<std::vector<T>> held;
  held.reserve(static_cast<std::size_t>(p));
  held.push_back(local);
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    const int have = static_cast<int>(held.size());
    const int want = std::min(dist, p - have);
    if (want <= 0) break;
    const int src = (me + dist) % p;
    const int dst = (me - dist % p + p) % p;
    // Send my first `want` held blocks to dst (they are the blocks dst is
    // missing), receive the same count from src.  Flatten with length
    // prefix-free framing: sizes are derivable from counts on both sides.
    std::vector<T> outbuf;
    for (int j = 0; j < want; ++j) {
      outbuf.insert(outbuf.end(), held[static_cast<std::size_t>(j)].begin(),
                    held[static_cast<std::size_t>(j)].end());
    }
    comm.send(dst, tag_base + round, Buffer::adopt(std::move(outbuf)));
    Buffer inbuf = comm.recv(src, tag_base + round);
    // Unpack: incoming blocks are those of members (me + have + j) mod p.
    const TypedView<T> in(inbuf);
    i64 cursor = 0;
    for (int j = 0; j < want; ++j) {
      const int owner = (me + have + j) % p;
      const i64 len = counts[static_cast<std::size_t>(owner)];
      CAMB_CHECK(cursor + len <= in.size());
      held.emplace_back(in.begin() + cursor, in.begin() + cursor + len);
      cursor += len;
    }
    CAMB_CHECK(cursor == in.size());
  }
  CAMB_CHECK(static_cast<int>(held.size()) == p);
  // Un-rotate: held[j] belongs to member (me + j) mod p.
  const i64 total = counts_total(counts);
  std::vector<T> out(static_cast<std::size_t>(total));
  for (int j = 0; j < p; ++j) {
    const int owner = (me + j) % p;
    std::copy(held[static_cast<std::size_t>(j)].begin(),
              held[static_cast<std::size_t>(j)].end(),
              out.begin() + counts_offset(counts, owner));
  }
  return out;
}

}  // namespace

template <typename T>
std::vector<T> allgather(const Comm& comm, const std::vector<i64>& counts,
                         const std::vector<T>& local, AllgatherAlgo algo) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  CAMB_CHECK_MSG(static_cast<int>(counts.size()) == comm.size(),
                 "counts arity must match comm size");
  CAMB_CHECK_MSG(static_cast<i64>(local.size()) ==
                     counts[static_cast<std::size_t>(comm.my_index())],
                 "local block size must match counts[my index]");
  if (comm.size() == 1) return local;
  const int tag_base = comm.take_tag_block();

  if (algo == AllgatherAlgo::kAuto) {
    algo = is_pow2(static_cast<std::size_t>(comm.size()))
               ? AllgatherAlgo::kRecursiveDoubling
               : AllgatherAlgo::kBruck;
  }
  switch (algo) {
    case AllgatherAlgo::kRing:
      return allgather_ring(comm, counts, local, tag_base);
    case AllgatherAlgo::kRecursiveDoubling:
      CAMB_CHECK_MSG(is_pow2(static_cast<std::size_t>(comm.size())),
                     "recursive doubling requires power-of-two comm");
      return allgather_recursive_doubling(comm, counts, local, tag_base);
    case AllgatherAlgo::kBruck:
      return allgather_bruck(comm, counts, local, tag_base);
    case AllgatherAlgo::kAuto:
      break;
  }
  throw Error("unreachable allgather algo");
}

template <typename T>
std::vector<T> allgather_equal(const Comm& comm, const std::vector<T>& local,
                               AllgatherAlgo algo) {
  std::vector<i64> counts(static_cast<std::size_t>(comm.size()),
                          static_cast<i64>(local.size()));
  return allgather(comm, counts, local, algo);
}

#define CAMB_INSTANTIATE(T)                                                  \
  template std::vector<T> allgather<T>(const Comm&, const std::vector<i64>&, \
                                       const std::vector<T>&, AllgatherAlgo); \
  template std::vector<T> allgather_equal<T>(const Comm&,                    \
                                             const std::vector<T>&,          \
                                             AllgatherAlgo);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::coll
