// coll_cost.hpp — analytic α-β-γ costs of the implemented collectives.
//
// These closed forms are the per-rank critical-path costs of the concrete
// implementations in this directory, and they are what the paper's §5.1 cost
// analysis assumes ("bandwidth-optimal algorithms, such as bidirectional
// exchange or recursive doubling/halving … cost (1 − 1/p)·w").  The
// integration tests assert that the executed machine reproduces these counts
// exactly, which is what licenses using the analytic engine at arbitrary P.
#pragma once

#include "collectives/allgather.hpp"
#include "collectives/reduce_scatter.hpp"
#include "machine/comm_stats.hpp"
#include "machine/faults.hpp"
#include "machine/trace.hpp"
#include "util/math.hpp"

namespace camb::coll {

/// Per-rank critical-path cost of one collective invocation.
struct CollCost {
  i64 recv_words = 0;  ///< words received by the busiest rank
  i64 sent_words = 0;  ///< words sent by the busiest rank
  i64 messages = 0;    ///< messages sent by the busiest rank (latency term)
  i64 flops = 0;       ///< reduction flops performed by the busiest rank

  double alpha_beta_cost(double alpha, double beta) const {
    return alpha * static_cast<double>(messages) +
           beta * static_cast<double>(std::max(recv_words, sent_words));
  }
};

/// Number of exchange rounds of each algorithm on a group of size p.
int allgather_rounds(int p, AllgatherAlgo algo);
int reduce_scatter_rounds(int p, ReduceScatterAlgo algo);

/// All-Gather of `total` words split in equal blocks of total/p words
/// (total divisible by p): every variant receives (1 - 1/p) * total words.
CollCost allgather_cost(int p, i64 total, AllgatherAlgo algo = AllgatherAlgo::kAuto);

/// Reduce-Scatter of `total` words into p equal segments: every variant
/// receives (1 - 1/p) * total words and performs as many additions.
CollCost reduce_scatter_cost(int p, i64 total,
                             ReduceScatterAlgo algo = ReduceScatterAlgo::kAuto);

/// Binomial broadcast of w words to p ranks: the root sends w * ceil(log2 p).
CollCost bcast_cost(int p, i64 w);

/// Binomial reduce of w words from p ranks.
CollCost reduce_cost(int p, i64 w);

/// All-Reduce (RS + AG) of w words on p ranks: 2 (1 - 1/p) w.
CollCost allreduce_cost(int p, i64 w);

/// Pairwise All-to-All with equal blocks of `block` words: (p - 1) * block.
CollCost alltoall_cost(int p, i64 block);

/// ceil(log2 p) for p >= 1.
int ceil_log2(int p);

// ---------------------------------------------------------------------------
// Exact per-rank predictions for arbitrary (possibly unequal) block counts.
// These replicate the round structure of the concrete implementations and are
// asserted against executed runs by the integration tests.
// ---------------------------------------------------------------------------

/// Words member `me` receives in an All-Gather with the given block counts.
/// Every implemented variant delivers each foreign block exactly once:
/// total − counts[me].
i64 allgather_recv_words_exact(const std::vector<i64>& counts, int me,
                               AllgatherAlgo algo = AllgatherAlgo::kAuto);

/// Words member `me` receives in a Reduce-Scatter with the given segment
/// counts.  Ring: every segment except (me − 1 mod p) passes through once.
/// Recursive halving: the sum of the kept-half sizes over the rounds.
i64 reduce_scatter_recv_words_exact(
    const std::vector<i64>& counts, int me,
    ReduceScatterAlgo algo = ReduceScatterAlgo::kAuto);

/// Words the member at root-relative index `v` receives in the binomial
/// reduce (reduce.cpp) of `w` words on `p` members: one full payload per
/// distance d = 2^k < 2^ceil(log2 p) with v < d and v + d < p.
i64 reduce_recv_words_exact(int p, int v, i64 w);

/// Words member `me` receives in the RS+AG All-Reduce (allreduce.cpp) of `w`
/// words on `p` members, replicating its near-equal segmentation.
i64 allreduce_recv_words_exact(int p, int me, i64 w);

// ---------------------------------------------------------------------------
// Comm-level predictors: the same closed forms, parameterized by the
// communicator the collective would actually run on (size and this rank's
// member index come from the comm), so call sites predict against exactly
// the comm they execute on.
// ---------------------------------------------------------------------------

CollCost allgather_cost(const Comm& comm, i64 total,
                        AllgatherAlgo algo = AllgatherAlgo::kAuto);
CollCost reduce_scatter_cost(const Comm& comm, i64 total,
                             ReduceScatterAlgo algo = ReduceScatterAlgo::kAuto);
CollCost bcast_cost(const Comm& comm, i64 w);
CollCost reduce_cost(const Comm& comm, i64 w);
CollCost allreduce_cost(const Comm& comm, i64 w);
CollCost alltoall_cost(const Comm& comm, i64 block);

/// Exact words this rank receives from the collective on `comm` (member
/// index taken from the comm; this rank must be a member).
i64 allgather_recv_words_exact(const Comm& comm, const std::vector<i64>& counts,
                               AllgatherAlgo algo = AllgatherAlgo::kAuto);
i64 reduce_scatter_recv_words_exact(
    const Comm& comm, const std::vector<i64>& counts,
    ReduceScatterAlgo algo = ReduceScatterAlgo::kAuto);
i64 allreduce_recv_words_exact(const Comm& comm, i64 w);

// ---------------------------------------------------------------------------
// Reliable-transport tax predictor (the closed form behind the SDC tests).
// ---------------------------------------------------------------------------

/// Exact per-rank "transport"-phase counters a run will accrue under the
/// reliable transport, computed without executing anything: replay the
/// fault plan's SDC decision stream against the run's counted-send log
/// (Trace::events() of a traced run — per-source subsequences are program
/// order, which is exactly the order decide_send consumed draws in).
///
/// Per counted send of w words whose decision drew d dropped copies,
/// c corrupt copies, and u ∈ {0, 1} duplicates:
///   sender:    words_sent += w (d + c + u), messages_sent += d + c + u
///   receiver:  words_received += w c, messages_received += c,
///              messages_sent += c        (the zero-word nacks)
/// Duplicate discards and implicit acks cost the receiver nothing.  A
/// faulted run's total per-rank counters are therefore pinned to the
/// fault-free run's plus exactly this tax — the property the chaos tests
/// assert rank-for-rank.
std::vector<PhaseCounters> predicted_transport_phase(
    const FaultProfile& profile, std::uint64_t fault_seed,
    std::uint64_t sdc_seed, int nprocs, const std::vector<MessageEvent>& sends);

}  // namespace camb::coll
