#include "collectives/comm.hpp"

#include <numeric>

namespace camb::coll {

namespace {

/// Single-pass validation: range check plus a seen-bitmask for duplicates
/// (O(p), replacing the old validate_group's O(p^2) pairwise scan).
int validate_and_find(const std::vector<int>& ranks, int nprocs, int me) {
  CAMB_CHECK_MSG(!ranks.empty(), "comm must have at least one member");
  std::vector<char> seen(static_cast<std::size_t>(nprocs), 0);
  int my_index = -1;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const int r = ranks[i];
    CAMB_CHECK_MSG(r >= 0 && r < nprocs, "comm rank out of range");
    CAMB_CHECK_MSG(!seen[static_cast<std::size_t>(r)],
                   "comm ranks must be distinct");
    seen[static_cast<std::size_t>(r)] = 1;
    if (r == me) my_index = static_cast<int>(i);
  }
  return my_index;
}

}  // namespace

Comm::Comm(RankCtx& ctx, std::vector<int> ranks, TagLease tag_lease)
    : ctx_(&ctx), ranks_(std::move(ranks)), lease_(tag_lease) {
  my_index_ = validate_and_find(ranks_, ctx.nprocs(), ctx.rank());
}

Comm::Comm(RankCtx& ctx, std::vector<int> ranks, int tag_blocks)
    : Comm(ctx, std::move(ranks), ctx.tags().lease(tag_blocks)) {
  CAMB_CHECK_MSG(member(),
                 "rank must be a member of the comms it creates "
                 "(use Comm::recovery for survivor bookkeeping)");
}

Comm Comm::world(RankCtx& ctx, int tag_blocks) {
  std::vector<int> ranks(static_cast<std::size_t>(ctx.nprocs()));
  std::iota(ranks.begin(), ranks.end(), 0);
  return Comm(ctx, std::move(ranks), tag_blocks);
}

Comm Comm::recovery(RankCtx& ctx, std::vector<int> ranks, int tag_blocks) {
  return Comm(ctx, std::move(ranks), ctx.tags().lease_recovery(tag_blocks));
}

Comm Comm::split(const std::function<int(int)>& color_of_index,
                 int tag_blocks) const {
  CAMB_CHECK_MSG(member(), "only members can split a comm");
  const int my_color = color_of_index(my_index_);
  std::vector<int> mine;
  for (int i = 0; i < size(); ++i) {
    if (color_of_index(i) == my_color) {
      mine.push_back(ranks_[static_cast<std::size_t>(i)]);
    }
  }
  return is_recovery() ? recovery(*ctx_, std::move(mine), tag_blocks)
                       : Comm(*ctx_, std::move(mine), tag_blocks);
}

int Comm::index_of(int rank) const {
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    if (ranks_[i] == rank) return static_cast<int>(i);
  }
  throw Error("rank " + std::to_string(rank) + " not in comm");
}

int Comm::take_tag_block() const {
  CAMB_CHECK_MSG(member(), "only members may communicate on a comm");
  CAMB_CHECK_MSG(next_block_ < lease_.blocks,
                 "comm tag lease exhausted — construct with more tag_blocks");
  return lease_.base + (next_block_++) * kTagBlockWidth;
}

void Comm::check_member_op(int peer_index, int tag) const {
  CAMB_CHECK_MSG(member(), "only members may communicate on a comm");
  CAMB_CHECK_MSG(peer_index >= 0 && peer_index < size(),
                 "comm index out of range");
  CAMB_CHECK_MSG(tag >= lease_.base && tag < lease_.limit(),
                 "tag outside this comm's lease");
}

void Comm::send(int dst_index, int tag, Buffer payload) const {
  check_member_op(dst_index, tag);
  ctx_->send(rank_at(dst_index), tag, std::move(payload));
}

Buffer Comm::recv(int src_index, int tag) const {
  check_member_op(src_index, tag);
  return ctx_->recv(rank_at(src_index), tag);
}

Buffer Comm::sendrecv(int peer_index, int tag, Buffer payload) const {
  check_member_op(peer_index, tag);
  return ctx_->sendrecv(rank_at(peer_index), tag, std::move(payload));
}

}  // namespace camb::coll
