// group.hpp — process groups and shared conventions for collectives.
//
// A collective operates over a *group*: an ordered list of distinct machine
// ranks.  Every member calls the collective with an identical group vector
// (this mirrors a communicator).  Groups are typically fibers of the logical
// processor grid (§5), and disjoint groups run their collectives
// concurrently — exactly the "simultaneous All-Gathers" of Algorithm 1.
//
// Tag discipline: each collective *call site* passes a distinct `tag_base`;
// a collective may use tags in [tag_base, tag_base + kTagStride).  Since a
// rank participates in at most one collective per call site at a time and
// message matching is exact on (src, tag), this rules out cross-talk.
#pragma once

#include <vector>

#include "machine/machine.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace camb::coll {

/// Tags available to a single collective invocation.
inline constexpr int kTagStride = 1 << 12;

/// Index of `rank` within `group`; throws if absent.
inline int group_index(const std::vector<int>& group, int rank) {
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i] == rank) return static_cast<int>(i);
  }
  throw Error("rank " + std::to_string(rank) + " not in group");
}

/// Validates a group: non-empty, distinct members, all in range.
inline void validate_group(const std::vector<int>& group, int nprocs) {
  CAMB_CHECK_MSG(!group.empty(), "group must be non-empty");
  for (std::size_t i = 0; i < group.size(); ++i) {
    CAMB_CHECK_MSG(group[i] >= 0 && group[i] < nprocs, "group rank out of range");
    for (std::size_t j = i + 1; j < group.size(); ++j) {
      CAMB_CHECK_MSG(group[i] != group[j], "group ranks must be distinct");
    }
  }
}

/// Sum of a count vector (payload sizes per member).
inline i64 counts_total(const std::vector<i64>& counts) {
  i64 total = 0;
  for (i64 c : counts) {
    CAMB_CHECK_MSG(c >= 0, "counts must be non-negative");
    total += c;
  }
  return total;
}

/// Offset of member `idx`'s block within the concatenated buffer.
inline i64 counts_offset(const std::vector<i64>& counts, int idx) {
  CAMB_CHECK(idx >= 0 && static_cast<std::size_t>(idx) <= counts.size());
  i64 offset = 0;
  for (int i = 0; i < idx; ++i) offset += counts[static_cast<std::size_t>(i)];
  return offset;
}

}  // namespace camb::coll
