#include "collectives/tuning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace camb::coll {

namespace {
bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }
}  // namespace

double allgather_model_time(int p, i64 total_words, AllgatherAlgo algo,
                            const TuningParams& params) {
  const CollCost cost = allgather_cost(p, total_words, algo);
  return params.alpha * static_cast<double>(cost.messages) +
         params.beta * static_cast<double>(cost.recv_words);
}

double reduce_scatter_model_time(int p, i64 total_words,
                                 ReduceScatterAlgo algo,
                                 const TuningParams& params) {
  const CollCost cost = reduce_scatter_cost(p, total_words, algo);
  return params.alpha * static_cast<double>(cost.messages) +
         params.beta * static_cast<double>(cost.recv_words);
}

double alltoall_model_time(int p, i64 block_words, AlltoallAlgo algo,
                           const TuningParams& params) {
  CAMB_CHECK(p >= 1 && block_words >= 0);
  if (p == 1) return 0.0;
  switch (algo) {
    case AlltoallAlgo::kPairwise:
      return params.alpha * (p - 1) +
             params.beta * static_cast<double>((p - 1) * block_words);
    case AlltoallAlgo::kBruck:
      return params.alpha * ceil_log2(p) +
             params.beta *
                 static_cast<double>(alltoall_bruck_recv_words(p, block_words));
  }
  throw Error("unreachable alltoall algo");
}

AllgatherAlgo choose_allgather(int p, i64 total_words,
                               const TuningParams& params) {
  CAMB_CHECK(p >= 1);
  if (p == 1) return AllgatherAlgo::kRing;  // degenerate, free either way
  // Same bandwidth everywhere; the log-round variants win or tie on rounds.
  AllgatherAlgo best = AllgatherAlgo::kRing;
  double best_time = allgather_model_time(p, total_words, best, params);
  for (AllgatherAlgo algo : {AllgatherAlgo::kRecursiveDoubling,
                             AllgatherAlgo::kBruck}) {
    if (algo == AllgatherAlgo::kRecursiveDoubling && !is_pow2(p)) continue;
    const double time = allgather_model_time(p, total_words, algo, params);
    if (time < best_time) {
      best_time = time;
      best = algo;
    }
  }
  return best;
}

ReduceScatterAlgo choose_reduce_scatter(int p, i64 total_words,
                                        const TuningParams& params) {
  CAMB_CHECK(p >= 1);
  if (p == 1 || !is_pow2(p)) return ReduceScatterAlgo::kRing;
  const double ring =
      reduce_scatter_model_time(p, total_words, ReduceScatterAlgo::kRing, params);
  const double halving = reduce_scatter_model_time(
      p, total_words, ReduceScatterAlgo::kRecursiveHalving, params);
  return halving <= ring ? ReduceScatterAlgo::kRecursiveHalving
                         : ReduceScatterAlgo::kRing;
}

AlltoallAlgo choose_alltoall(int p, i64 block_words,
                             const TuningParams& params) {
  CAMB_CHECK(p >= 1);
  if (p == 1) return AlltoallAlgo::kPairwise;
  const double pairwise =
      alltoall_model_time(p, block_words, AlltoallAlgo::kPairwise, params);
  const double bruck =
      alltoall_model_time(p, block_words, AlltoallAlgo::kBruck, params);
  return bruck < pairwise ? AlltoallAlgo::kBruck : AlltoallAlgo::kPairwise;
}

double bcast_model_time(int p, i64 w, BcastAlgo algo, i64 segments,
                        const TuningParams& params) {
  CAMB_CHECK(p >= 1 && w >= 0);
  if (p == 1) return 0.0;
  switch (algo) {
    case BcastAlgo::kBinomial:
      return ceil_log2(p) *
             (params.alpha + params.beta * static_cast<double>(w));
    case BcastAlgo::kPipelinedRing: {
      segments = std::max<i64>(1, std::min(segments, std::max<i64>(w, 1)));
      const double seg_words = static_cast<double>(w) /
                               static_cast<double>(segments);
      // The last rank finishes after p - 2 fill hops plus `segments` drains.
      return static_cast<double>(p - 2 + segments) *
             (params.alpha + params.beta * seg_words);
    }
  }
  throw Error("unreachable bcast algo");
}

i64 optimal_bcast_segments(int p, i64 w, const TuningParams& params) {
  CAMB_CHECK(p >= 1 && w >= 0);
  if (p <= 2 || w <= 1 || params.alpha <= 0) return std::max<i64>(1, w > 0);
  const double s_star = std::sqrt(params.beta * static_cast<double>(w) *
                                  static_cast<double>(p - 2) / params.alpha);
  const auto clamped = static_cast<i64>(std::llround(std::max(1.0, s_star)));
  return std::min<i64>(std::max<i64>(1, clamped), w);
}

BcastAlgo choose_bcast(int p, i64 w, const TuningParams& params) {
  CAMB_CHECK(p >= 1);
  if (p == 1) return BcastAlgo::kBinomial;
  const i64 segments = optimal_bcast_segments(p, w, params);
  const double ring =
      bcast_model_time(p, w, BcastAlgo::kPipelinedRing, segments, params);
  const double binomial =
      bcast_model_time(p, w, BcastAlgo::kBinomial, 1, params);
  return ring < binomial ? BcastAlgo::kPipelinedRing : BcastAlgo::kBinomial;
}

double alltoall_bruck_crossover_block(int p, const TuningParams& params) {
  CAMB_CHECK(p >= 1);
  const double saved_messages =
      static_cast<double>(p - 1 - ceil_log2(p));
  const double extra_words_per_block =
      static_cast<double>(alltoall_bruck_recv_words(p, 1) - (p - 1));
  if (extra_words_per_block <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  if (saved_messages <= 0) return 0.0;
  return params.alpha * saved_messages /
         (params.beta * extra_words_per_block);
}

}  // namespace camb::coll
