#include "collectives/grid_comm.hpp"

namespace camb::coll {

GridComm::GridComm(RankCtx& ctx, core::Grid3 grid, int tag_blocks_per_fiber)
    : ctx_(&ctx), grid_(grid) {
  CAMB_CHECK_MSG(grid_.total() == ctx.nprocs(),
                 "grid size must match the machine");
  const i64 rank = ctx.rank();
  q1_ = rank / (grid_.p2 * grid_.p3);
  q2_ = (rank / grid_.p3) % grid_.p2;
  q3_ = rank % grid_.p3;
  fibers_.reserve(3);
  for (int axis = 0; axis < 3; ++axis) {
    const i64 extent = axis == 0 ? grid_.p1 : axis == 1 ? grid_.p2 : grid_.p3;
    std::vector<int> members;
    members.reserve(static_cast<std::size_t>(extent));
    for (i64 v = 0; v < extent; ++v) {
      members.push_back(rank_of(axis == 0 ? v : q1_, axis == 1 ? v : q2_,
                                axis == 2 ? v : q3_));
    }
    fibers_.emplace_back(ctx, std::move(members), tag_blocks_per_fiber);
  }
}

int GridComm::rank_of(i64 q1, i64 q2, i64 q3) const {
  CAMB_CHECK(q1 >= 0 && q1 < grid_.p1 && q2 >= 0 && q2 < grid_.p2 && q3 >= 0 &&
             q3 < grid_.p3);
  return static_cast<int>((q1 * grid_.p2 + q2) * grid_.p3 + q3);
}

const Comm& GridComm::fiber(int axis) const {
  CAMB_CHECK_MSG(axis >= 0 && axis < 3, "fiber axis out of range");
  return fibers_[static_cast<std::size_t>(axis)];
}

}  // namespace camb::coll
