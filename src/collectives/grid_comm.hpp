// grid_comm.hpp — the fiber communicators of a logical processor grid.
//
// Algorithm 1 and its relatives are defined by *simultaneous collectives
// over grid fibers* (§5): rank (q1, q2, q3) of a p1 x p2 x p3 grid
// all-gathers A along its axis-2 fiber, B along axis-0, and reduce-scatters
// C along axis-1.  GridComm materializes, once per run, this rank's fiber
// comm along each axis — collectively, all p1·p2 + p1·p3 + p2·p3 fibers of
// the grid.  Every rank constructs its three fibers in the same order, so
// the leases line up under the SPMD contract of comm.hpp, and ranks in the
// same fiber land on the same lease base.
//
// Ranks are laid out row-major — rank(q1, q2, q3) = (q1·p2 + q2)·p3 + q3,
// matching mm::GridMap — which also covers the 2D and 2.5D layouts:
//
//   g x g SUMMA/Cannon grid  = Grid3{g, g, 1}:   fiber(1) is the row comm
//                              (fixed row q1), fiber(0) the column comm;
//   g x g x c 2.5D grid      = Grid3{c, g, g} with coords (layer, i, j):
//                              fiber(0) is the depth fiber, fiber(2) the
//                              in-layer row comm, fiber(1) the column comm.
#pragma once

#include "collectives/comm.hpp"
#include "core/grid.hpp"

namespace camb::coll {

class GridComm {
 public:
  GridComm(RankCtx& ctx, core::Grid3 grid,
           int tag_blocks_per_fiber = Comm::kDefaultTagBlocks);

  const core::Grid3& grid() const { return grid_; }
  RankCtx& ctx() const { return *ctx_; }

  /// This rank's grid coordinates.
  i64 q1() const { return q1_; }
  i64 q2() const { return q2_; }
  i64 q3() const { return q3_; }

  /// Machine rank at explicit coordinates (row-major, as mm::GridMap).
  int rank_of(i64 q1, i64 q2, i64 q3) const;

  /// This rank's fiber comm along `axis`: the ranks sharing its other two
  /// coordinates, ordered by the coordinate that varies.  This rank's index
  /// within fiber(a) is its own a-th coordinate.
  const Comm& fiber(int axis) const;

 private:
  RankCtx* ctx_;
  core::Grid3 grid_;
  i64 q1_, q2_, q3_;
  std::vector<Comm> fibers_;  ///< one per axis, constructed in axis order
};

}  // namespace camb::coll
