// tuning.hpp — model-driven collective algorithm selection.
//
// Given machine parameters (α per message, β per word), pick the variant
// minimizing the modeled critical-path time α·rounds + β·words.  Within this
// model the log-round All-Gather / Reduce-Scatter variants dominate the ring
// outright (identical bandwidth-optimal words, fewer rounds); the ring
// remains in the library because on real networks its single-neighbour,
// equal-sized messages pipeline better — a consideration outside the α-β
// model, documented here so nobody mistakes the model's verdict for a
// general one.  The interesting in-model trade-off is All-to-All: Bruck's
// ⌈log2 p⌉ rounds move strictly more words than pairwise exchange's p − 1
// rounds, so the winner flips with the block size at a predictable
// crossover.
#pragma once

#include "collectives/alltoall.hpp"
#include "collectives/bcast.hpp"
#include "collectives/coll_cost.hpp"

namespace camb::coll {

struct TuningParams {
  double alpha = 1e-6;  ///< seconds per message
  double beta = 1e-9;   ///< seconds per word
};

/// Modeled critical-path time of one collective invocation.
double allgather_model_time(int p, i64 total_words, AllgatherAlgo algo,
                            const TuningParams& params);
double reduce_scatter_model_time(int p, i64 total_words, ReduceScatterAlgo algo,
                                 const TuningParams& params);
double alltoall_model_time(int p, i64 block_words, AlltoallAlgo algo,
                           const TuningParams& params);

/// Variant minimizing the modeled time (ties broken toward fewer messages).
AllgatherAlgo choose_allgather(int p, i64 total_words,
                               const TuningParams& params);
ReduceScatterAlgo choose_reduce_scatter(int p, i64 total_words,
                                        const TuningParams& params);
AlltoallAlgo choose_alltoall(int p, i64 block_words,
                             const TuningParams& params);

/// The block size below which Bruck beats pairwise All-to-All on this
/// machine: solves α(p−1−⌈log2 p⌉) = β·(bruck_words − pairwise_words).
/// Returns +inf when Bruck always wins (p <= 2) and 0 when it never does.
double alltoall_bruck_crossover_block(int p, const TuningParams& params);

// ---------------------------------------------------------------------------
// Broadcast: binomial vs pipelined ring.
// ---------------------------------------------------------------------------

/// Modeled time of a broadcast of w words on p ranks.
///   binomial:        ⌈log2 p⌉ · (α + βw)
///   pipelined ring:  (p − 2 + s) · (α + βw/s)   (s = segments)
double bcast_model_time(int p, i64 w, BcastAlgo algo, i64 segments,
                        const TuningParams& params);

/// The segment count minimizing the pipelined ring's modeled time:
/// s* = sqrt(βw(p − 2)/α), clamped to [1, w].
i64 optimal_bcast_segments(int p, i64 w, const TuningParams& params);

/// Variant minimizing the modeled time (ring evaluated at s*).
BcastAlgo choose_bcast(int p, i64 w, const TuningParams& params);

}  // namespace camb::coll
