#include "collectives/alltoall.hpp"

#include "util/scalar.hpp"

namespace camb::coll {

namespace {

template <typename T>
std::vector<std::vector<T>> alltoall_pairwise(
    const Comm& comm, const std::vector<std::vector<T>>& blocks,
    int tag_base) {
  const int p = comm.size();
  const int me = comm.my_index();
  std::vector<std::vector<T>> received(static_cast<std::size_t>(p));
  received[static_cast<std::size_t>(me)] = blocks[static_cast<std::size_t>(me)];
  for (int r = 1; r < p; ++r) {
    const int dst_idx = (me + r) % p;
    const int src_idx = (me - r + p) % p;
    comm.send(dst_idx, tag_base + r,
              Buffer::pack<T>(blocks[static_cast<std::size_t>(dst_idx)]));
    received[static_cast<std::size_t>(src_idx)] =
        std::move(comm.recv(src_idx, tag_base + r)).take_as<T>();
  }
  return received;
}

/// Bruck all-to-all (equal blocks).  Rotated index d holds the block for
/// destination (me + d) mod p; in round t, positions with bit t set hop
/// +2^t ranks, so every block accumulates exactly its required displacement.
template <typename T>
std::vector<std::vector<T>> alltoall_bruck(
    const Comm& comm, const std::vector<std::vector<T>>& blocks,
    int tag_base) {
  const int p = comm.size();
  const int me = comm.my_index();
  const i64 block_elems = static_cast<i64>(blocks[0].size());
  for (const auto& block : blocks) {
    CAMB_CHECK_MSG(static_cast<i64>(block.size()) == block_elems,
                   "Bruck all-to-all requires equal block sizes");
  }
  // Phase 1: local rotation — buf[d] = block destined for (me + d) mod p.
  std::vector<std::vector<T>> buf(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    buf[static_cast<std::size_t>(d)] =
        blocks[static_cast<std::size_t>((me + d) % p)];
  }
  // Phase 2: log rounds of displaced hops.
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    const int dst = (me + dist) % p;
    const int src = (me - dist + p) % p;
    std::vector<T> outbuf;
    for (int d = 0; d < p; ++d) {
      if (d & dist) {
        outbuf.insert(outbuf.end(), buf[static_cast<std::size_t>(d)].begin(),
                      buf[static_cast<std::size_t>(d)].end());
      }
    }
    comm.send(dst, tag_base + round, Buffer::adopt(std::move(outbuf)));
    Buffer inbuf = comm.recv(src, tag_base + round);
    const TypedView<T> in(inbuf);
    i64 cursor = 0;
    for (int d = 0; d < p; ++d) {
      if (d & dist) {
        CAMB_CHECK(cursor + block_elems <= in.size());
        buf[static_cast<std::size_t>(d)].assign(
            in.begin() + cursor, in.begin() + cursor + block_elems);
        cursor += block_elems;
      }
    }
    CAMB_CHECK(cursor == in.size());
  }
  // Phase 3: after the hops, buf[d] holds the block sent by (me - d) mod p.
  std::vector<std::vector<T>> received(static_cast<std::size_t>(p));
  for (int src_idx = 0; src_idx < p; ++src_idx) {
    received[static_cast<std::size_t>(src_idx)] =
        std::move(buf[static_cast<std::size_t>((me - src_idx + p) % p)]);
  }
  return received;
}

}  // namespace

template <typename T>
std::vector<std::vector<T>> alltoall(const Comm& comm,
                                     const std::vector<std::vector<T>>& blocks,
                                     AlltoallAlgo algo) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  const int p = comm.size();
  CAMB_CHECK_MSG(static_cast<int>(blocks.size()) == p,
                 "alltoall needs one block per comm member");
  if (p == 1) return {blocks[0]};
  const int tag_base = comm.take_tag_block();
  switch (algo) {
    case AlltoallAlgo::kPairwise:
      return alltoall_pairwise<T>(comm, blocks, tag_base);
    case AlltoallAlgo::kBruck:
      return alltoall_bruck<T>(comm, blocks, tag_base);
  }
  throw Error("unreachable alltoall algo");
}

i64 alltoall_bruck_recv_words(int p, i64 block) {
  CAMB_CHECK(p >= 1 && block >= 0);
  i64 positions = 0;
  for (int dist = 1; dist < p; dist <<= 1) {
    for (int d = 0; d < p; ++d) {
      if (d & dist) ++positions;
    }
  }
  return positions * block;
}

#define CAMB_INSTANTIATE(T)                     \
  template std::vector<std::vector<T>> alltoall<T>( \
      const Comm&, const std::vector<std::vector<T>>&, AlltoallAlgo);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::coll
