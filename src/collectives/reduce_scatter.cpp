#include "collectives/reduce_scatter.hpp"

#include "util/scalar.hpp"

namespace camb::coll {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

template <typename T>
void add_into(std::vector<T>& acc, i64 offset, const Buffer& values) {
  const TypedView<T> in(values);
  CAMB_CHECK(offset + in.size() <= static_cast<i64>(acc.size()));
  for (i64 j = 0; j < in.size(); ++j) {
    acc[static_cast<std::size_t>(offset + j)] += in[j];
  }
}

/// Ring Reduce-Scatter: partial sums travel around the ring, with member i
/// sending segment (i - r - 1) mod p in round r and accumulating the incoming
/// segment; after p - 1 rounds member i holds the complete sum of segment i.
template <typename T>
std::vector<T> reduce_scatter_ring(const Comm& comm,
                                   const std::vector<i64>& counts,
                                   std::vector<T> acc, int tag_base) {
  const int p = comm.size();
  const int me = comm.my_index();
  const int next = (me + 1) % p;
  const int prev = (me + p - 1) % p;
  for (int r = 0; r < p - 1; ++r) {
    const int send_seg = (me - r - 1 + 2 * p) % p;
    const int recv_seg = (me - r - 2 + 2 * p) % p;
    const i64 send_off = counts_offset(counts, send_seg);
    const i64 send_len = counts[static_cast<std::size_t>(send_seg)];
    comm.send(next, tag_base + r,
              Buffer::pack<T>(acc.data() + send_off, send_len));
    Buffer incoming = comm.recv(prev, tag_base + r);
    CAMB_CHECK(incoming.elems<T>() ==
               counts[static_cast<std::size_t>(recv_seg)]);
    add_into(acc, counts_offset(counts, recv_seg), incoming);
  }
  const i64 my_off = counts_offset(counts, me);
  const i64 my_len = counts[static_cast<std::size_t>(me)];
  return std::vector<T>(acc.begin() + my_off, acc.begin() + my_off + my_len);
}

/// Recursive-halving Reduce-Scatter (power-of-two comm size).  The active
/// segment range halves each round: each member ships the half belonging to
/// its partner's side of the comm and accumulates the half it keeps.
template <typename T>
std::vector<T> reduce_scatter_recursive_halving(const Comm& comm,
                                                const std::vector<i64>& counts,
                                                std::vector<T> acc,
                                                int tag_base) {
  const int p = comm.size();
  const int me = comm.my_index();
  int lo = 0, hi = p;  // active segment-index range, always contains `me`
  int round = 0;
  for (int dist = p / 2; dist >= 1; dist /= 2, ++round) {
    const int mid = lo + dist;
    const bool lower_half = me < mid;
    const int partner_idx = lower_half ? me + dist : me - dist;
    const int send_lo = lower_half ? mid : lo;
    const int send_hi = lower_half ? hi : mid;
    const i64 send_off = counts_offset(counts, send_lo);
    const i64 send_end = counts_offset(counts, send_hi);
    Buffer incoming = comm.sendrecv(
        partner_idx, tag_base + round,
        Buffer::pack<T>(acc.data() + send_off, send_end - send_off));
    const int keep_lo = lower_half ? lo : mid;
    const int keep_hi = lower_half ? mid : hi;
    CAMB_CHECK(incoming.elems<T>() ==
               counts_offset(counts, keep_hi) - counts_offset(counts, keep_lo));
    add_into(acc, counts_offset(counts, keep_lo), incoming);
    lo = keep_lo;
    hi = keep_hi;
  }
  CAMB_CHECK(lo == me && hi == me + 1);
  const i64 my_off = counts_offset(counts, me);
  const i64 my_len = counts[static_cast<std::size_t>(me)];
  return std::vector<T>(acc.begin() + my_off, acc.begin() + my_off + my_len);
}

}  // namespace

template <typename T>
std::vector<T> reduce_scatter(const Comm& comm, const std::vector<i64>& counts,
                              const std::vector<T>& full,
                              ReduceScatterAlgo algo) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  CAMB_CHECK_MSG(static_cast<int>(counts.size()) == comm.size(),
                 "counts arity must match comm size");
  CAMB_CHECK_MSG(static_cast<i64>(full.size()) == counts_total(counts),
                 "input size must equal counts total");
  if (comm.size() == 1) return full;
  const int tag_base = comm.take_tag_block();

  if (algo == ReduceScatterAlgo::kAuto) {
    algo = is_pow2(static_cast<std::size_t>(comm.size()))
               ? ReduceScatterAlgo::kRecursiveHalving
               : ReduceScatterAlgo::kRing;
  }
  switch (algo) {
    case ReduceScatterAlgo::kRing:
      return reduce_scatter_ring<T>(comm, counts, full, tag_base);
    case ReduceScatterAlgo::kRecursiveHalving:
      CAMB_CHECK_MSG(is_pow2(static_cast<std::size_t>(comm.size())),
                     "recursive halving requires power-of-two comm");
      return reduce_scatter_recursive_halving<T>(comm, counts, full, tag_base);
    case ReduceScatterAlgo::kAuto:
      break;
  }
  throw Error("unreachable reduce_scatter algo");
}

template <typename T>
std::vector<T> reduce_scatter_equal(const Comm& comm,
                                    const std::vector<T>& full,
                                    ReduceScatterAlgo algo) {
  const auto p = static_cast<i64>(comm.size());
  CAMB_CHECK_MSG(static_cast<i64>(full.size()) % p == 0,
                 "reduce_scatter_equal requires |full| divisible by comm size");
  std::vector<i64> counts(static_cast<std::size_t>(comm.size()),
                          static_cast<i64>(full.size()) / p);
  return reduce_scatter(comm, counts, full, algo);
}

#define CAMB_INSTANTIATE(T)                                     \
  template std::vector<T> reduce_scatter<T>(                    \
      const Comm&, const std::vector<i64>&, const std::vector<T>&, \
      ReduceScatterAlgo);                                       \
  template std::vector<T> reduce_scatter_equal<T>(              \
      const Comm&, const std::vector<T>&, ReduceScatterAlgo);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::coll
