// regrid.hpp — the elastic data-redistribution collective.
//
// When crashes shrink the machine from P to P′ ranks, the elastic layer
// re-plans the processor grid for P′ (core/grid.hpp
// best_integer_grid_at_most) and must move every live A/B panel from the old
// distribution to the new one before the multiplication can resume.  This
// module is that move, phrased distribution-agnostically:
//
//   * a rank's holding is a PanelSet — sorted, non-overlapping spans in the
//     GLOBAL row-major cell-index space of each input matrix (A is n1×n2,
//     B is n2×n3).  Every distribution in this library (SUMMA tiles, the
//     Grid3d fiber chunks, the 2.5D layer-0 blocks) flattens to exactly this
//     form, because their local storage order coincides with global
//     row-major order restricted to the span;
//   * a RegridPlan lists, per machine rank, the old panels, the new panels,
//     and whether the old owner is still alive to send them.  Both sides of
//     every transfer compute the same plan from the same shrink agreement,
//     so payload layouts need no framing: values travel concatenated in
//     canonical (matrix, global index) order of the overlap;
//   * one message per (old owner → new owner) pair with a non-empty
//     overlap.  Pieces whose old owner died — or that a source's mid-regrid
//     death left undelivered (recv_timed returns nullopt; never a hang) —
//     are regenerated locally from the position-pure fill, bit-identical to
//     what the wire would have carried;
//   * the exact per-rank receive bill is regrid_recv_elems_exact — the
//     interval arithmetic of the plan, nothing measured — which the elastic
//     report and tests pin measured words against with zero tolerance.
//
// The old placement must partition each matrix (every cell exactly one old
// owner, dead or alive): the coverage CAMB_CHECK in regrid() enforces it.
#pragma once

#include <functional>
#include <vector>

#include "collectives/comm.hpp"

namespace camb::coll {

/// Phase label for all regrid traffic (words land here, not in the
/// algorithm phases, so the migration tax is separately observable).
inline constexpr const char* kPhaseElasticRegrid = "elastic_regrid";

/// One contiguous span of an input matrix in global row-major cell-index
/// space: cells [start, start + len) of matrix 0 (= A) or 1 (= B).
struct PanelSpan {
  int matrix = 0;
  i64 start = 0;
  i64 len = 0;

  i64 end() const { return start + len; }
  bool operator==(const PanelSpan&) const = default;
};

/// A rank's holding: spans sorted by (matrix, start), pairwise disjoint.
using PanelSet = std::vector<PanelSpan>;

/// Throws camb::Error unless `set` is sorted by (matrix, start) with
/// positive-length, pairwise-disjoint spans.
void check_panel_set(const PanelSet& set);

/// Total cells in a panel set.
i64 panels_elems(const PanelSet& set);

/// Interval intersection of two panel sets, in canonical order.
PanelSet intersect_panels(const PanelSet& a, const PanelSet& b);

/// The old→new redistribution, agreed identically by every participant
/// (all vectors are indexed by MACHINE rank, size nprocs).
struct RegridPlan {
  /// Attempt-0 placement: old_panels[r] is what rank r originally filled.
  /// Must partition each matrix across ranks.
  std::vector<PanelSet> old_panels;
  /// Target placement: new_panels[r] is what rank r needs on the new grid
  /// (empty for idle survivors and for non-survivors).
  std::vector<PanelSet> new_panels;
  /// alive[r]: rank r survived and still holds old_panels[r] (failed and
  /// retired ranks are not alive; their pieces are regenerated).
  std::vector<char> alive;
};

/// The exact number of cells rank `machine_rank` receives over the wire in a
/// death-free regrid: the overlap of its new panels with every *alive* old
/// owner other than itself.  Purely interval arithmetic on the plan.
i64 regrid_recv_elems_exact(const RegridPlan& plan, int machine_rank);

/// The same bill in (possibly half-integer) 8-byte words for a scalar of
/// width `width_words` (util/scalar.hpp dtype_width_words).
double regrid_recv_words_exact(const RegridPlan& plan, int machine_rank,
                               double width_words);

template <typename T>
struct RegridResult {
  /// The values of this rank's new panels, concatenated in canonical order
  /// (a = matrix-0 spans, b = matrix-1 spans).
  std::vector<T> a;
  std::vector<T> b;
  /// Cells that arrived over the wire (== regrid_recv_elems_exact when no
  /// source died mid-regrid).
  i64 migrated_elems = 0;
  /// Cells refilled locally: dead old owners' pieces plus any piece a
  /// mid-regrid death left undelivered.
  i64 regenerated_elems = 0;
  /// Cells copied from this rank's own old panels (free, self-overlap).
  i64 local_elems = 0;
};

/// Regenerator: writes the values of global cells [start, start + len) of
/// `matrix` (0 = A, 1 = B) into out[0..len).  Must be position-pure — the
/// same cell yields the same value on every rank — which is exactly the
/// fill_chunk_indexed* contract (matmul/distribution.hpp); the elastic layer
/// passes the algorithm's own fill so regenerated cells are bit-identical
/// to migrated ones.
template <typename T>
using RegridFill = std::function<void(int matrix, i64 start, i64 len, T* out)>;

/// Runs the redistribution on `comm` (the survivors' recovery comm; every
/// member calls, including idle survivors with empty new panels — the
/// take_tag_block draw is part of the SPMD lease contract).  `my_old_a` /
/// `my_old_b` hold the values of plan.old_panels[my rank] in canonical
/// order.  Sends never block; receives use an infinite-deadline recv_timed,
/// so a source's death yields regeneration, never a hang.  Defined for the
/// CAMB_FOR_EACH_SCALAR set via explicit instantiation.
template <typename T>
RegridResult<T> regrid(const Comm& comm, const RegridPlan& plan,
                       const std::vector<T>& my_old_a,
                       const std::vector<T>& my_old_b,
                       const RegridFill<T>& fill);

}  // namespace camb::coll
