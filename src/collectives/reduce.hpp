// reduce.hpp — Reduce collective (binomial tree, sum).
//
// Element-wise sum of every member's contribution lands on the root.
// ⌈log2 p⌉ rounds; each non-root sends its partial exactly once.
#pragma once

#include <vector>

#include "collectives/comm.hpp"

namespace camb::coll {

/// Reduces (element-wise sum) `data` across the comm onto member `root_idx`.
/// Returns the sum on the root; returns an empty vector on other members.
std::vector<double> reduce(const Comm& comm, int root_idx,
                           std::vector<double> data);

}  // namespace camb::coll
