// reduce.hpp — Reduce collective (binomial tree, sum).
//
// Element-wise sum of every member's contribution lands on the root.
// ⌈log2 p⌉ rounds; each non-root sends its partial exactly once.
#pragma once

#include <vector>

#include "collectives/comm.hpp"

namespace camb::coll {

/// Reduces (element-wise sum) `data` across the comm onto member `root_idx`.
/// Returns the sum on the root; returns an empty vector on other members.
/// Templated over the scalar type (sum via operator+=, so i64 is exact and
/// kahan is compensated); defined for the CAMB_FOR_EACH_SCALAR set.
template <typename T>
std::vector<T> reduce(const Comm& comm, int root_idx, std::vector<T> data);

}  // namespace camb::coll
