// reduce.hpp — Reduce collective (binomial tree, sum).
//
// Element-wise sum of every member's contribution lands on the root.
// ⌈log2 p⌉ rounds; each non-root sends its partial exactly once.
#pragma once

#include <vector>

#include "collectives/group.hpp"

namespace camb::coll {

/// Reduces (element-wise sum) `data` across the group onto member `root_idx`.
/// Returns the sum on the root; returns an empty vector on other members.
std::vector<double> reduce(RankCtx& ctx, const std::vector<int>& group,
                           int root_idx, std::vector<double> data,
                           int tag_base);

}  // namespace camb::coll
