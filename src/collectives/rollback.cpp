#include "collectives/rollback.hpp"

#include <array>
#include <cstdint>
#include <limits>
#include <numeric>

namespace camb::ckpt {

namespace {

bool test_bit(const std::vector<std::uint32_t>& mask, int i) {
  return (mask[static_cast<std::size_t>(i / 32)] >>
          static_cast<unsigned>(i % 32)) &
         1u;
}

void set_bit(std::vector<std::uint32_t>& mask, int i) {
  mask[static_cast<std::size_t>(i / 32)] |= 1u << static_cast<unsigned>(i % 32);
}

}  // namespace

template <typename T>
RollbackStateT<T>::RollbackStateT(RankCtx& ctx, const ResilientConfig& cfg)
    : ctx_(ctx), cfg_(cfg), T_(cfg.nprocs + cfg.spares) {
  CAMB_CHECK_MSG(cfg_.nprocs >= 1, "need at least one logical rank");
  CAMB_CHECK_MSG(cfg_.spares >= 0, "spares must be non-negative");
  CAMB_CHECK_MSG(cfg_.interval >= 1, "checkpoint interval must be >= 1");
  CAMB_CHECK_MSG(cfg_.buddy_stride >= 1, "buddy stride must be >= 1");
  CAMB_CHECK_MSG(ctx.nprocs() == T_,
                 "machine size must be logical ranks + spares");
  known_dead_.assign(static_cast<std::size_t>(T_), 0);
  hosts_.resize(static_cast<std::size_t>(cfg_.nprocs));
  std::iota(hosts_.begin(), hosts_.end(), 0);
}

template <typename T>
int RollbackStateT<T>::hosted_logical() const {
  for (int logical = 0; logical < cfg_.nprocs; ++logical) {
    if (hosts_[static_cast<std::size_t>(logical)] == ctx_.rank()) {
      return logical;
    }
  }
  return -1;
}

template <typename T>
void RollbackStateT<T>::begin_exec() {
  CAMB_CHECK_MSG(round_ < kMaxRounds, "rollback rounds exhausted tag space");
  ctx_.tags().set_recovery_cursor(exec_band(round_));
}

template <typename T>
void RollbackStateT<T>::abort_exec() { ctx_.abandon_below(sync_band(round_)); }

template <typename T>
void RollbackStateT<T>::note_failure(const PeerFailedError& err) {
  if (err.peer_crashed() && err.failed_rank() >= 0 && err.failed_rank() < T_) {
    known_dead_[static_cast<std::size_t>(err.failed_rank())] = 1;
  }
}

template <typename T>
void RollbackStateT<T>::abort_sync() {
  ctx_.abandon_below(sync_band(round_ + 1));
  ++round_;
}

template <typename T>
std::vector<int> RollbackStateT<T>::compute_hosts(
    const std::vector<char>& failed) const {
  std::vector<int> hosts(static_cast<std::size_t>(cfg_.nprocs));
  int spare = cfg_.nprocs;
  for (int logical = 0; logical < cfg_.nprocs; ++logical) {
    if (!failed[static_cast<std::size_t>(logical)]) {
      hosts[static_cast<std::size_t>(logical)] = logical;
      continue;
    }
    while (spare < T_ && failed[static_cast<std::size_t>(spare)]) ++spare;
    CAMB_CHECK_MSG(spare < T_, "spare ranks exhausted");
    hosts[static_cast<std::size_t>(logical)] = spare++;
  }
  return hosts;
}

template <typename T>
bool RollbackStateT<T>::round_sync(bool exec_success) {
  CAMB_CHECK_MSG(round_ < kMaxRounds, "rollback rounds exhausted tag space");
  const int P = cfg_.nprocs;
  const int me = ctx_.rank();
  ctx_.set_phase(kPhaseCkptShrink);
  ctx_.tags().set_recovery_cursor(sync_band(round_));

  // Flood comm over the full physical machine (membership is never in
  // dispute) plus one block reserved for restreams, leased by every rank in
  // the same order so the bases agree.
  std::vector<int> everyone(static_cast<std::size_t>(T_));
  std::iota(everyone.begin(), everyone.end(), 0);
  const coll::Comm flood = coll::Comm::recovery(ctx_, everyone, 1);
  const int flood_base = flood.take_tag_block();
  const int restream_base = ctx_.tags().lease_recovery(1).base;

  const int M = (T_ + 31) / 32;
  const i64 view_words = ckpt_flood_view_words(T_);
  // My crash-mask contribution is frozen now: deaths observed *during* the
  // flood go to known_dead_ (next round's contribution) but not into the
  // relayed union — that is what makes the union a relayed value set, and
  // therefore agreed by the classic f+1-round flooding argument.
  std::vector<std::uint32_t> crash_union(static_cast<std::size_t>(M), 0);
  std::vector<std::uint32_t> known(static_cast<std::size_t>(M), 0);
  std::vector<std::array<i64, 4>> payload(static_cast<std::size_t>(T_),
                                          {0, 0, 0, 0});
  for (int r = 0; r < T_; ++r) {
    if (known_dead_[static_cast<std::size_t>(r)]) set_bit(crash_union, r);
  }
  set_bit(known, me);
  const int my_logical = hosted_logical();
  payload[static_cast<std::size_t>(me)] = {
      exec_success && my_logical >= 0 ? static_cast<i64>(my_logical) + 1 : 0,
      store_.own_committed(), store_.ward_lo(), store_.ward_hi()};

  for (int sub = 0; sub <= cfg_.spares; ++sub) {
    // Snapshot who I believe alive: one sub-round's send and receive sets
    // must match even though receiving may add new suspicions.
    std::vector<char> alive(static_cast<std::size_t>(T_));
    for (int j = 0; j < T_; ++j) {
      alive[static_cast<std::size_t>(j)] =
          !known_dead_[static_cast<std::size_t>(j)];
    }
    std::vector<double> view(static_cast<std::size_t>(view_words));
    for (int w = 0; w < M; ++w) {
      view[static_cast<std::size_t>(w)] =
          static_cast<double>(crash_union[static_cast<std::size_t>(w)]);
      view[static_cast<std::size_t>(M + w)] =
          static_cast<double>(known[static_cast<std::size_t>(w)]);
    }
    for (int r = 0; r < T_; ++r) {
      for (int v = 0; v < 4; ++v) {
        view[static_cast<std::size_t>(2 * M + 4 * r + v)] = static_cast<double>(
            payload[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)]);
      }
    }
    for (int j = 0; j < T_; ++j) {
      if (j == me || !alive[static_cast<std::size_t>(j)]) continue;
      flood.send(j, flood_base + sub, Buffer::copy_of(view));
    }
    for (int j = 0; j < T_; ++j) {
      if (j == me || !alive[static_cast<std::size_t>(j)]) continue;
      auto peer = ctx_.recv_timed(j, flood_base + sub,
                                  std::numeric_limits<double>::infinity());
      if (!peer) {
        // Perfect detection: nullopt on a recovery tag means j is dead.
        known_dead_[static_cast<std::size_t>(j)] = 1;
        continue;
      }
      CAMB_CHECK(static_cast<i64>(peer->size()) == view_words);
      for (int w = 0; w < M; ++w) {
        crash_union[static_cast<std::size_t>(w)] |=
            static_cast<std::uint32_t>((*peer)[static_cast<std::size_t>(w)]);
      }
      for (int r = 0; r < T_; ++r) {
        const auto incoming_known = static_cast<std::uint32_t>(
            (*peer)[static_cast<std::size_t>(M + r / 32)]);
        if (!((incoming_known >> static_cast<unsigned>(r % 32)) & 1u) ||
            test_bit(known, r)) {
          continue;
        }
        set_bit(known, r);
        for (int v = 0; v < 4; ++v) {
          payload[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)] =
              static_cast<i64>(
                  (*peer)[static_cast<std::size_t>(2 * M + 4 * r + v)]);
        }
      }
    }
  }

  // Everything below is a pure function of the agreed flood result, so all
  // completing ranks take identical decisions.
  std::vector<char> failed(static_cast<std::size_t>(T_), 0);
  for (int r = 0; r < T_; ++r) {
    if (test_bit(crash_union, r)) {
      failed[static_cast<std::size_t>(r)] = 1;
      known_dead_[static_cast<std::size_t>(r)] = 1;
    }
  }

  std::vector<char> claimed(static_cast<std::size_t>(P), 0);
  int claims = 0;
  for (int r = 0; r < T_; ++r) {
    const i64 vote = payload[static_cast<std::size_t>(r)][0];
    if (!test_bit(known, r) || vote < 1) continue;
    CAMB_CHECK(vote <= P);
    if (!claimed[static_cast<std::size_t>(vote - 1)]) {
      claimed[static_cast<std::size_t>(vote - 1)] = 1;
      ++claims;
    }
  }
  const bool done = claims == P;

  RoundRecord record;
  record.round = round_;
  record.done = done;
  record.claims = claims;
  for (int r = 0; r < T_; ++r) {
    if (failed[static_cast<std::size_t>(r)]) record.failed.push_back(r);
  }
  if (done) {
    log_.push_back(std::move(record));
    ++round_;
    return true;
  }

  const std::vector<int> prev_hosts = hosts_;
  hosts_ = compute_hosts(failed);
  const int old_logical = my_logical;
  const int new_logical = hosted_logical();
  if (new_logical != old_logical) {
    // Identity change (spare drafted, or re-shuffled onto another logical):
    // the stored epochs describe someone else's state.
    store_.reset();
  }

  // Agreed rollback epoch: the newest epoch every established host has
  // committed, forced to 0 unless every fresh recruit's buddy host can
  // restream exactly that epoch from its ward copies.
  i64 epoch = std::numeric_limits<i64>::max();
  for (int logical = 0; logical < P; ++logical) {
    const int host = hosts_[static_cast<std::size_t>(logical)];
    if (host != prev_hosts[static_cast<std::size_t>(logical)]) continue;
    const i64 committed =
        test_bit(known, host) ? payload[static_cast<std::size_t>(host)][1] : 0;
    epoch = std::min(epoch, committed);
  }
  if (epoch == std::numeric_limits<i64>::max()) epoch = 0;
  std::vector<int> fresh;
  for (int logical = 0; logical < P; ++logical) {
    if (hosts_[static_cast<std::size_t>(logical)] !=
        prev_hosts[static_cast<std::size_t>(logical)]) {
      fresh.push_back(logical);
    }
  }
  for (int logical : fresh) {
    if (epoch < 1) break;
    const int buddy = ckpt_buddy(logical, P, cfg_.buddy_stride);
    const int holder = hosts_[static_cast<std::size_t>(buddy)];
    const bool holder_established =
        holder == prev_hosts[static_cast<std::size_t>(buddy)];
    const bool holder_has_epoch =
        test_bit(known, holder) &&
        payload[static_cast<std::size_t>(holder)][2] >= 1 &&
        payload[static_cast<std::size_t>(holder)][2] <= epoch &&
        payload[static_cast<std::size_t>(holder)][3] >= epoch;
    if (!holder_established || !holder_has_epoch) epoch = 0;
  }
  epoch_ = epoch;
  record.epoch = epoch;
  record.fresh = fresh;
  log_.push_back(std::move(record));

  // Restream: each fresh recruit receives its logical's epoch-E snapshot
  // from the buddy's host.  Blocking receives here may throw — the caller
  // aborts the sync and rejoins one round later.
  if (epoch >= 1) {
    for (int logical : fresh) {
      const int holder =
          hosts_[static_cast<std::size_t>(ckpt_buddy(logical, P,
                                                     cfg_.buddy_stride))];
      const int recruit = hosts_[static_cast<std::size_t>(logical)];
      const int tag = restream_base + logical;
      if (me == holder) {
        const SnapshotT<T>* snap = store_.ward(epoch);
        CAMB_CHECK_MSG(snap != nullptr, "agreed ward epoch missing");
        ctx_.set_phase(kPhaseCkptRollback);
        ctx_.send(recruit, tag, Buffer::adopt(snapshot_to_wire(*snap)));
        ctx_.set_phase(kPhaseCkptShrink);
      }
      if (me == recruit) {
        ctx_.set_phase(kPhaseCkptRollback);
        SnapshotT<T> snap = snapshot_from_wire(
            std::move(ctx_.recv(holder, tag)).template take_as<T>());
        ctx_.set_phase(kPhaseCkptShrink);
        CAMB_CHECK(snap.epoch == epoch);
        store_.put_own(std::move(snap));
      }
    }
  }
  ++round_;
  return false;
}

template <typename T>
SessionT<T>::SessionT(RollbackStateT<T>& rb)
    : rb_(rb),
      logical_(rb.hosted_logical()),
      commit_base_(rb.ctx().tags().lease_recovery(1).base) {
  CAMB_CHECK_MSG(logical_ >= 0, "idle spares do not execute");
}

template <typename T>
const SnapshotT<T>& SessionT<T>::snapshot() const {
  const SnapshotT<T>* snap = rb_.store().own(rb_.resume_epoch());
  CAMB_CHECK_MSG(snap != nullptr, "agreed resume epoch missing from store");
  return *snap;
}

template <typename T>
coll::Comm SessionT<T>::comm(const std::vector<int>& logical_members,
                             int tag_blocks) const {
  std::vector<int> physical;
  physical.reserve(logical_members.size());
  for (int logical : logical_members) {
    CAMB_CHECK(logical >= 0 && logical < this->nprocs());
    physical.push_back(rb_.hosts()[static_cast<std::size_t>(logical)]);
  }
  return coll::Comm::recovery(this->ctx(), std::move(physical), tag_blocks);
}

template <typename T>
void SessionT<T>::boundary(i64 step,
                           const std::function<SnapshotT<T>()>& make) {
  const i64 interval = rb_.config().interval;
  CAMB_CHECK(step >= 1);
  if (step % interval != 0) return;
  const i64 epoch = step / interval;
  if (epoch <= rb_.resume_epoch()) return;  // restored, not re-committed
  CAMB_CHECK_MSG(epoch < kTagBlockWidth, "too many epochs for one tag block");
  const int P = this->nprocs();
  const int stride = rb_.config().buddy_stride;
  const int buddy_host =
      rb_.hosts()[static_cast<std::size_t>(ckpt_buddy(logical_, P, stride))];
  const int ward_host =
      rb_.hosts()[static_cast<std::size_t>(ckpt_ward(logical_, P, stride))];
  SnapshotT<T> snap = make();
  snap.epoch = epoch;
  this->ctx().set_phase(kPhaseCheckpoint);
  // Pairwise ring: buffered send to the buddy's host first, then the
  // blocking receive of the ward copy — deadlock-free by construction.
  const int tag = commit_base_ + static_cast<int>(epoch);
  this->ctx().send(buddy_host, tag, Buffer::adopt(snapshot_to_wire(snap)));
  SnapshotT<T> ward = snapshot_from_wire(
      std::move(this->ctx().recv(ward_host, tag)).template take_as<T>());
  CAMB_CHECK(ward.epoch == epoch);
  rb_.store().put_own(std::move(snap));
  rb_.store().put_ward(std::move(ward));
}

#define CAMB_INSTANTIATE(T)          \
  template class RollbackStateT<T>;  \
  template class SessionT<T>;
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::ckpt
