#include "collectives/gather_scatter.hpp"

namespace camb::coll {

std::vector<double> gather(RankCtx& ctx, const std::vector<int>& group,
                           int root_idx, const std::vector<i64>& counts,
                           const std::vector<double>& local, int tag_base) {
  validate_group(group, ctx.nprocs());
  const int p = static_cast<int>(group.size());
  CAMB_CHECK_MSG(root_idx >= 0 && root_idx < p, "gather root out of range");
  CAMB_CHECK_MSG(counts.size() == group.size(), "counts arity mismatch");
  const int me = group_index(group, ctx.rank());
  CAMB_CHECK(static_cast<i64>(local.size()) ==
             counts[static_cast<std::size_t>(me)]);
  if (me != root_idx) {
    ctx.send(group[static_cast<std::size_t>(root_idx)], tag_base + me, local);
    return {};
  }
  std::vector<double> out(static_cast<std::size_t>(counts_total(counts)));
  std::copy(local.begin(), local.end(), out.begin() + counts_offset(counts, me));
  for (int i = 0; i < p; ++i) {
    if (i == root_idx) continue;
    std::vector<double> chunk =
        ctx.recv(group[static_cast<std::size_t>(i)], tag_base + i);
    CAMB_CHECK(static_cast<i64>(chunk.size()) ==
               counts[static_cast<std::size_t>(i)]);
    std::copy(chunk.begin(), chunk.end(), out.begin() + counts_offset(counts, i));
  }
  return out;
}

std::vector<double> scatter(RankCtx& ctx, const std::vector<int>& group,
                            int root_idx, const std::vector<i64>& counts,
                            const std::vector<double>& full, int tag_base) {
  validate_group(group, ctx.nprocs());
  const int p = static_cast<int>(group.size());
  CAMB_CHECK_MSG(root_idx >= 0 && root_idx < p, "scatter root out of range");
  CAMB_CHECK_MSG(counts.size() == group.size(), "counts arity mismatch");
  const int me = group_index(group, ctx.rank());
  if (me == root_idx) {
    CAMB_CHECK_MSG(static_cast<i64>(full.size()) == counts_total(counts),
                   "scatter root buffer size mismatch");
    for (int i = 0; i < p; ++i) {
      if (i == root_idx) continue;
      const i64 off = counts_offset(counts, i);
      const i64 len = counts[static_cast<std::size_t>(i)];
      ctx.send(group[static_cast<std::size_t>(i)], tag_base + i,
               std::vector<double>(full.begin() + off, full.begin() + off + len));
    }
    const i64 off = counts_offset(counts, me);
    const i64 len = counts[static_cast<std::size_t>(me)];
    return std::vector<double>(full.begin() + off, full.begin() + off + len);
  }
  std::vector<double> chunk =
      ctx.recv(group[static_cast<std::size_t>(root_idx)], tag_base + me);
  CAMB_CHECK(static_cast<i64>(chunk.size()) ==
             counts[static_cast<std::size_t>(me)]);
  return chunk;
}

}  // namespace camb::coll
