#include "collectives/gather_scatter.hpp"

#include <algorithm>

namespace camb::coll {

std::vector<double> gather(const Comm& comm, int root_idx,
                           const std::vector<i64>& counts,
                           const std::vector<double>& local) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  const int p = comm.size();
  CAMB_CHECK_MSG(root_idx >= 0 && root_idx < p, "gather root out of range");
  CAMB_CHECK_MSG(static_cast<int>(counts.size()) == p, "counts arity mismatch");
  const int me = comm.my_index();
  CAMB_CHECK(static_cast<i64>(local.size()) ==
             counts[static_cast<std::size_t>(me)]);
  if (p == 1) return local;
  const int tag_base = comm.take_tag_block();
  if (me != root_idx) {
    comm.send(root_idx, tag_base + me, Buffer::copy_of(local));
    return {};
  }
  std::vector<double> out(static_cast<std::size_t>(counts_total(counts)));
  std::copy(local.begin(), local.end(), out.begin() + counts_offset(counts, me));
  for (int i = 0; i < p; ++i) {
    if (i == root_idx) continue;
    Buffer chunk = comm.recv(i, tag_base + i);
    CAMB_CHECK(static_cast<i64>(chunk.size()) ==
               counts[static_cast<std::size_t>(i)]);
    std::copy(chunk.begin(), chunk.end(), out.begin() + counts_offset(counts, i));
  }
  return out;
}

std::vector<double> scatter(const Comm& comm, int root_idx,
                            const std::vector<i64>& counts,
                            const std::vector<double>& full) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  const int p = comm.size();
  CAMB_CHECK_MSG(root_idx >= 0 && root_idx < p, "scatter root out of range");
  CAMB_CHECK_MSG(static_cast<int>(counts.size()) == p, "counts arity mismatch");
  const int me = comm.my_index();
  if (p == 1) {
    CAMB_CHECK_MSG(static_cast<i64>(full.size()) == counts_total(counts),
                   "scatter root buffer size mismatch");
    return full;
  }
  const int tag_base = comm.take_tag_block();
  if (me == root_idx) {
    CAMB_CHECK_MSG(static_cast<i64>(full.size()) == counts_total(counts),
                   "scatter root buffer size mismatch");
    for (int i = 0; i < p; ++i) {
      if (i == root_idx) continue;
      const i64 off = counts_offset(counts, i);
      const i64 len = counts[static_cast<std::size_t>(i)];
      comm.send(i, tag_base + i,
                Buffer::copy_of(full.data() + off,
                                static_cast<std::size_t>(len)));
    }
    const i64 off = counts_offset(counts, me);
    const i64 len = counts[static_cast<std::size_t>(me)];
    return std::vector<double>(full.begin() + off, full.begin() + off + len);
  }
  std::vector<double> chunk = comm.recv(root_idx, tag_base + me);
  CAMB_CHECK(static_cast<i64>(chunk.size()) ==
             counts[static_cast<std::size_t>(me)]);
  return chunk;
}

}  // namespace camb::coll
