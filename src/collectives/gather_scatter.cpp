#include "collectives/gather_scatter.hpp"

#include <algorithm>

#include "util/scalar.hpp"

namespace camb::coll {

template <typename T>
std::vector<T> gather(const Comm& comm, int root_idx,
                      const std::vector<i64>& counts,
                      const std::vector<T>& local) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  const int p = comm.size();
  CAMB_CHECK_MSG(root_idx >= 0 && root_idx < p, "gather root out of range");
  CAMB_CHECK_MSG(static_cast<int>(counts.size()) == p, "counts arity mismatch");
  const int me = comm.my_index();
  CAMB_CHECK(static_cast<i64>(local.size()) ==
             counts[static_cast<std::size_t>(me)]);
  if (p == 1) return local;
  const int tag_base = comm.take_tag_block();
  if (me != root_idx) {
    comm.send(root_idx, tag_base + me, Buffer::pack<T>(local));
    return {};
  }
  std::vector<T> out(static_cast<std::size_t>(counts_total(counts)));
  std::copy(local.begin(), local.end(), out.begin() + counts_offset(counts, me));
  for (int i = 0; i < p; ++i) {
    if (i == root_idx) continue;
    Buffer chunk = comm.recv(i, tag_base + i);
    CAMB_CHECK(chunk.elems<T>() == counts[static_cast<std::size_t>(i)]);
    chunk.unpack_into<T>(out.data() + counts_offset(counts, i));
  }
  return out;
}

template <typename T>
std::vector<T> scatter(const Comm& comm, int root_idx,
                       const std::vector<i64>& counts,
                       const std::vector<T>& full) {
  CAMB_CHECK_MSG(comm.member(), "only members may call collectives");
  const int p = comm.size();
  CAMB_CHECK_MSG(root_idx >= 0 && root_idx < p, "scatter root out of range");
  CAMB_CHECK_MSG(static_cast<int>(counts.size()) == p, "counts arity mismatch");
  const int me = comm.my_index();
  if (p == 1) {
    CAMB_CHECK_MSG(static_cast<i64>(full.size()) == counts_total(counts),
                   "scatter root buffer size mismatch");
    return full;
  }
  const int tag_base = comm.take_tag_block();
  if (me == root_idx) {
    CAMB_CHECK_MSG(static_cast<i64>(full.size()) == counts_total(counts),
                   "scatter root buffer size mismatch");
    for (int i = 0; i < p; ++i) {
      if (i == root_idx) continue;
      const i64 off = counts_offset(counts, i);
      const i64 len = counts[static_cast<std::size_t>(i)];
      comm.send(i, tag_base + i, Buffer::pack<T>(full.data() + off, len));
    }
    const i64 off = counts_offset(counts, me);
    const i64 len = counts[static_cast<std::size_t>(me)];
    return std::vector<T>(full.begin() + off, full.begin() + off + len);
  }
  Buffer incoming = comm.recv(root_idx, tag_base + me);
  CAMB_CHECK(incoming.elems<T>() == counts[static_cast<std::size_t>(me)]);
  return std::move(incoming).take_as<T>();
}

#define CAMB_INSTANTIATE(T)                                                \
  template std::vector<T> gather<T>(const Comm&, int,                      \
                                    const std::vector<i64>&,               \
                                    const std::vector<T>&);                \
  template std::vector<T> scatter<T>(const Comm&, int,                     \
                                     const std::vector<i64>&,              \
                                     const std::vector<T>&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::coll
