#include "machine/comm_stats.hpp"

#include "util/error.hpp"

namespace camb {

CommStats::CommStats(int nprocs) : nprocs_(nprocs), slots_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "machine needs at least one processor");
}

void CommStats::set_phase(int rank, std::string phase) {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  note_phase_name(phase);
  slots_[rank].active_phase = std::move(phase);
}

const std::string& CommStats::phase(int rank) const {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  return slots_[rank].active_phase;
}

void CommStats::record_send(int src, i64 bytes) {
  CAMB_CHECK(src >= 0 && src < nprocs_);
  auto& counters = slots_[src].by_phase[slots_[src].active_phase];
  counters.bytes_sent += bytes;
  counters.messages_sent += 1;
}

void CommStats::record_receive(int dst, i64 bytes) {
  CAMB_CHECK(dst >= 0 && dst < nprocs_);
  auto& counters = slots_[dst].by_phase[slots_[dst].active_phase];
  counters.bytes_received += bytes;
  counters.messages_received += 1;
}

PhaseCounters CommStats::rank_total(int rank) const {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  PhaseCounters total;
  for (const auto& [name, counters] : slots_[rank].by_phase) total += counters;
  return total;
}

PhaseCounters CommStats::rank_phase(int rank, const std::string& phase) const {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  auto it = slots_[rank].by_phase.find(phase);
  return it == slots_[rank].by_phase.end() ? PhaseCounters{} : it->second;
}

double CommStats::critical_path_received_words() const {
  i64 worst = 0;
  for (int r = 0; r < nprocs_; ++r) {
    worst = std::max(worst, rank_total(r).bytes_received);
  }
  return static_cast<double>(worst) / 8.0;
}

double CommStats::critical_path_sent_words() const {
  i64 worst = 0;
  for (int r = 0; r < nprocs_; ++r) {
    worst = std::max(worst, rank_total(r).bytes_sent);
  }
  return static_cast<double>(worst) / 8.0;
}

double CommStats::critical_path_cost(const AlphaBeta& machine) const {
  double worst = 0.0;
  for (int r = 0; r < nprocs_; ++r) {
    worst = std::max(worst, machine.cost(rank_total(r)));
  }
  return worst;
}

double CommStats::total_words_sent() const {
  i64 total = 0;
  for (int r = 0; r < nprocs_; ++r) total += rank_total(r).bytes_sent;
  return static_cast<double>(total) / 8.0;
}

double CommStats::phase_critical_path_received_words(
    const std::string& phase) const {
  i64 worst = 0;
  for (int r = 0; r < nprocs_; ++r) {
    worst = std::max(worst, rank_phase(r, phase).bytes_received);
  }
  return static_cast<double>(worst) / 8.0;
}

std::vector<std::string> CommStats::phases() const {
  std::lock_guard<std::mutex> lock(phase_mutex_);
  return phase_order_;
}

TransportCounters& CommStats::transport_mut(int rank) {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  return slots_[rank].transport;
}

const TransportCounters& CommStats::transport(int rank) const {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  return slots_[rank].transport;
}

TransportCounters CommStats::transport_total() const {
  TransportCounters total;
  for (int r = 0; r < nprocs_; ++r) total += slots_[r].transport;
  return total;
}

void CommStats::reset() {
  for (auto& slot : slots_) {
    slot.by_phase.clear();
    slot.transport = TransportCounters{};
  }
}

void CommStats::note_phase_name(const std::string& phase) {
  std::lock_guard<std::mutex> lock(phase_mutex_);
  for (const auto& existing : phase_order_) {
    if (existing == phase) return;
  }
  phase_order_.push_back(phase);
}

}  // namespace camb
