// checkpoint.hpp — per-rank in-memory checkpoint store for rollback
// recovery.
//
// A Snapshot is an epoch-stamped capture of a rank's live algorithm buffers
// at an outer-loop boundary (a SUMMA panel, a Cannon shift, a recursion
// level).  Each *logical* rank commits its snapshot locally and replicates
// it to a deterministic buddy (logical (L + stride) mod P), so any single
// failure leaves at least one copy of every epoch reachable: the rank's own
// copy, or the buddy's ward copy.  The store is keyed by (logical rank,
// epoch) because spare substitution can re-host a logical rank on a
// different physical rank mid-run.
//
// Epoch numbering: epoch e >= 1 means "state after completing the first
// e * interval boundary steps".  Epoch 0 is the virtual initial state —
// never stored, always recoverable, because every algorithm's inputs are
// pure functions of logical position (fill_chunk_indexed and friends).
#pragma once

#include <map>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/scalar.hpp"

namespace camb {

/// One epoch-stamped capture of a rank's live buffers, in the run's scalar.
template <typename T>
struct SnapshotT {
  i64 epoch = 0;
  std::vector<std::vector<T>> bufs;
};
using Snapshot = SnapshotT<double>;

/// Wire format: [epoch, nbufs, size_0 .. size_{n-1}, buf_0 .. buf_{n-1}].
/// Exact element count: 2 + nbufs + sum of sizes.  The header values travel
/// as scalars of T so the whole wire is one homogeneous payload; epochs and
/// buffer sizes at simulated scales are small integers, exact in every
/// supported scalar (f32 holds integers exactly up to 2^24).
template <typename T>
std::vector<T> snapshot_to_wire(const SnapshotT<T>& snap);
template <typename T>
SnapshotT<T> snapshot_from_wire(const std::vector<T>& wire);

/// Elements snapshot_to_wire would produce for buffer sizes `sizes` (scale
/// by the dtype width to land in 8-byte words).
inline i64 snapshot_wire_words(const std::vector<i64>& sizes) {
  i64 total = 2 + static_cast<i64>(sizes.size());
  for (i64 s : sizes) total += s;
  return total;
}

/// Buddy placement on logical ranks: L's snapshots replicate to buddy(L);
/// symmetrically L wards (holds copies for) ward(L).  stride is reduced mod
/// P, so P == 1 degenerates to self-buddying (self-sends are free).
inline int ckpt_buddy(int logical, int nprocs, int stride) {
  CAMB_CHECK(nprocs >= 1 && logical >= 0 && logical < nprocs && stride >= 1);
  return (logical + stride % nprocs) % nprocs;
}
inline int ckpt_ward(int logical, int nprocs, int stride) {
  CAMB_CHECK(nprocs >= 1 && logical >= 0 && logical < nprocs && stride >= 1);
  return (logical - stride % nprocs + nprocs) % nprocs;
}

/// The per-physical-rank store: this rank's own snapshots (for the logical
/// rank it currently hosts) plus the ward copies it holds for its buddy's
/// ward.  reset() clears everything — called when spare substitution
/// changes which logical rank this physical rank hosts, because the stored
/// epochs describe a different identity's state.
template <typename T>
class CheckpointStoreT {
 public:
  void put_own(SnapshotT<T> snap) {
    CAMB_CHECK(snap.epoch >= 1);
    const i64 e = snap.epoch;
    own_[e] = std::move(snap);
    if (own_lo_ == 0) own_lo_ = e;
    own_committed_ = std::max(own_committed_, e);
  }

  void put_ward(SnapshotT<T> snap) {
    CAMB_CHECK(snap.epoch >= 1);
    const i64 e = snap.epoch;
    ward_[e] = std::move(snap);
    if (ward_lo_ == 0) ward_lo_ = e;
    ward_hi_ = std::max(ward_hi_, e);
  }

  /// nullptr when the epoch is absent.
  const SnapshotT<T>* own(i64 epoch) const {
    auto it = own_.find(epoch);
    return it == own_.end() ? nullptr : &it->second;
  }
  const SnapshotT<T>* ward(i64 epoch) const {
    auto it = ward_.find(epoch);
    return it == ward_.end() ? nullptr : &it->second;
  }

  /// Newest own epoch committed (0 = none); lowest own epoch held.
  i64 own_committed() const { return own_committed_; }
  i64 own_lo() const { return own_lo_; }
  /// Contiguity is guaranteed by the commit protocol (epochs arrive in
  /// order), so [ward_lo, ward_hi] describes exactly what is restorable.
  i64 ward_lo() const { return ward_lo_; }
  i64 ward_hi() const { return ward_hi_; }

  void reset() {
    own_.clear();
    ward_.clear();
    own_committed_ = own_lo_ = ward_lo_ = ward_hi_ = 0;
  }

 private:
  std::map<i64, SnapshotT<T>> own_;
  std::map<i64, SnapshotT<T>> ward_;
  i64 own_committed_ = 0;
  i64 own_lo_ = 0;
  i64 ward_lo_ = 0;
  i64 ward_hi_ = 0;
};
using CheckpointStore = CheckpointStoreT<double>;

}  // namespace camb
