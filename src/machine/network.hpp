// network.hpp — the fully connected, bidirectional network of §3.1.
//
// The network owns one mailbox per processor and is the single point through
// which every message flows, so communication accounting is exact by
// construction: a word cannot move between ranks without being counted.
#pragma once

#include <memory>
#include <vector>

#include "machine/comm_stats.hpp"
#include "machine/faults.hpp"
#include "machine/mailbox.hpp"
#include "machine/trace.hpp"

namespace camb {

class Network {
 public:
  explicit Network(int nprocs);

  int nprocs() const { return nprocs_; }
  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// Attach (or detach with nullptr) an event trace; every subsequent
  /// counted send is recorded there.  Not owned.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Attach (or detach with nullptr) a fault plan; every subsequent counted
  /// send through send_timed consults it.  Not owned.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() { return fault_plan_; }

  /// Send `payload` from rank `src` to rank `dst` with tag `tag`.
  /// Buffered: returns as soon as the message is deposited. Self-sends are
  /// permitted and delivered but are NOT counted as communication (data that
  /// stays in a processor's local memory is free in the model).
  /// `depart_time` stamps the sender's logical clock onto the message.
  void send(int src, int dst, int tag, std::vector<double> payload,
            double depart_time = 0.0);

  /// The clocked (and fault-injecting) send used by RankCtx: charges the
  /// sender's logical clock for the send under `params`, consults the
  /// attached fault plan (transient failures retried with exponential
  /// backoff — words and the message counted once, latency charged per
  /// attempt; delivery delays inflate the arrival stamp only; stragglers
  /// scale the sender's charge), and returns the sender's new clock.
  /// With no fault plan attached this is exactly the historical behaviour:
  /// clock + alpha + beta * words for counted sends, clock for self-sends.
  double send_timed(int src, int dst, int tag, std::vector<double> payload,
                    double clock, const AlphaBeta& params);

  /// Blocking receive at rank `dst` of the message (src, tag).
  /// `arrival_time`, when non-null, receives the message's departure stamp.
  std::vector<double> recv(int dst, int src, int tag,
                           double* arrival_time = nullptr);

  /// Count of undelivered messages across all mailboxes; a correct algorithm
  /// leaves zero behind.
  std::size_t pending_messages() const;

 private:
  int nprocs_;
  CommStats stats_;
  Trace* trace_ = nullptr;
  FaultPlan* fault_plan_ = nullptr;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace camb
