// network.hpp — the fully connected, bidirectional network of §3.1.
//
// The network owns one mailbox per processor and is the single point through
// which every message flows, so communication accounting is exact by
// construction: a word cannot move between ranks without being counted.
//
// It also owns one BufferPool per processor: payloads are move-only pooled
// Buffers, packed once on the sender, moved through the mailbox, and moved
// out to the receiver — the words of a message are never copied in transit.
// Self-sends (which the model does not count) likewise deliver by move: the
// payload's storage travels from the send call to the matching receive
// without touching the allocator or the word counters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "machine/buffer_pool.hpp"
#include "machine/comm_stats.hpp"
#include "machine/faults.hpp"
#include "machine/mailbox.hpp"
#include "machine/trace.hpp"

namespace camb {

class ReliableTransport;

class Network {
 public:
  explicit Network(int nprocs);

  int nprocs() const { return nprocs_; }
  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// The payload pool of rank `rank`; the rank's thread installs it as its
  /// current pool (BufferPool::Scope) for the duration of an SPMD program.
  BufferPool& pool(int rank);

  /// Attach (or detach with nullptr) an event trace; every subsequent
  /// counted send is recorded there.  Not owned.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Attach (or detach with nullptr) a fault plan; every subsequent counted
  /// send through send_timed consults it.  Not owned.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() { return fault_plan_; }

  /// Attach (or detach with nullptr) a crash plan; every subsequent counted
  /// send through send_timed consults it *before* the fault plan — a rank
  /// whose planned crash triggers throws RankCrashed instead of sending.
  void set_crash_plan(CrashPlan* plan) { crash_plan_ = plan; }
  CrashPlan* crash_plan() { return crash_plan_; }

  /// Attach (or detach with nullptr) the reliable transport
  /// (machine/reliable.hpp).  With a transport attached every counted send
  /// carries a checksummed envelope, the fault plan's SDC events (drops,
  /// bit-flips, duplicates) are physically injected — extra copies on the
  /// wire, corrupt copies nacked and retransmitted, duplicates discarded —
  /// and a send that exhausts its retransmit budget throws TransportError.
  /// All repair tax is accounted in the "transport" phase; algorithm phases
  /// stay word-exact to the fault-free run.  Not owned.
  void set_reliable(ReliableTransport* transport) { reliable_ = transport; }
  ReliableTransport* reliable() { return reliable_; }

  /// Send `payload` from rank `src` to rank `dst` with tag `tag`.
  /// Buffered: returns as soon as the message is deposited. Self-sends are
  /// permitted and delivered but are NOT counted as communication (data that
  /// stays in a processor's local memory is free in the model); their
  /// payload is delivered by move, storage intact.
  /// `depart_time` stamps the sender's logical clock onto the message.
  void send(int src, int dst, int tag, Buffer payload,
            double depart_time = 0.0);

  /// The clocked (and fault-injecting) send used by RankCtx: charges the
  /// sender's logical clock for the send under `params`, consults the
  /// attached crash plan (throwing RankCrashed when the sender's planned
  /// death triggers) and fault plan (transient failures retried with
  /// exponential backoff — words and the message counted once, latency
  /// charged per attempt; delivery delays inflate the arrival stamp only;
  /// stragglers scale the sender's charge), and returns the sender's new
  /// clock.  With no plans attached this is exactly the historical
  /// behaviour: clock + alpha + beta * words for counted sends, clock for
  /// self-sends.
  double send_timed(int src, int dst, int tag, Buffer payload, double clock,
                    const AlphaBeta& params);

  /// Blocking receive at rank `dst` of the message (src, tag).
  /// `arrival_time`, when non-null, receives the message's departure stamp.
  /// Oblivious to failure marking — callers that must survive crashed peers
  /// use recv_or_failed.
  Buffer recv(int dst, int src, int tag, double* arrival_time = nullptr);

  /// Failure-aware receive: blocks until a matching message with arrival
  /// stamp <= `deadline` is delivered, a matching message past the deadline
  /// is observed (kTimedOut — the message stays queued), or the source is
  /// marked failed with nothing matching buffered (kSrcDead / kSrcDeviated;
  /// the latter only for tags below kRecoveryTagBase).  On a failure
  /// outcome a zero-word suspicion probe is accounted to `dst` in the
  /// dedicated "heartbeat" phase — detection costs latency/messages, never
  /// words, and never pollutes algorithm phases.
  RecvStatus recv_or_failed(int dst, int src, int tag, double deadline,
                            Buffer* payload, double* arrival_time = nullptr);

  /// Mark `rank` as crashed in every mailbox: pending receives targeting it
  /// fail over (after draining anything it buffered before dying).
  void mark_rank_dead(int rank);

  /// Mark `rank` as having abandoned the algorithm phase: receives of tags
  /// below kRecoveryTagBase fail over; recovery-protocol tags still work.
  void mark_rank_deviated(int rank);

  /// Generalized deviation marking for the checkpoint/rollback protocol:
  /// receives from `rank` of tags below `tag_limit` fail over.  Rollback
  /// rounds carve the recovery region into bands, so an aborted round is
  /// abandoned by raising the limit to the next band's base.
  void mark_rank_deviated(int rank, int tag_limit);

  /// Count of undelivered messages across all mailboxes; a correct algorithm
  /// leaves zero behind.
  std::size_t pending_messages() const;

  /// Sweep every mailbox in one pass — one lock acquisition per mailbox —
  /// and return the envelopes left behind (leak forensics after a clean
  /// run, crash debris after a faulted one).  Clears the mailboxes.
  std::vector<UndeliveredMessage> undelivered();

 private:
  /// Reliable-transport acceptance of one popped message: true for a real
  /// delivery, false for debris (dup discarded silently, corrupt copy
  /// nacked) that the receive loop must pop past.
  bool transport_accept(int dst, Message& msg);

  int nprocs_;
  CommStats stats_;
  Trace* trace_ = nullptr;
  FaultPlan* fault_plan_ = nullptr;
  CrashPlan* crash_plan_ = nullptr;
  ReliableTransport* reliable_ = nullptr;
  // Pools are declared before mailboxes and so outlive them during
  // destruction: a queued Buffer destroyed by ~Mailbox can always reach its
  // origin pool.
  std::vector<std::unique_ptr<BufferPool>> pools_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace camb
