// mailbox.hpp — per-processor message queue with (source, tag) matching.
//
// Sends are buffered (never block), so any schedule of matching sends and
// receives is deadlock-free; receives block until a matching message arrives.
// This mirrors the eager-protocol semantics message-passing programs rely on
// for small and medium messages, and keeps collective implementations simple.
//
// Failure awareness (crash-fault support): a source rank may be marked *dead*
// (it crashed — no further message from it will ever arrive) or *deviated*
// (it abandoned the algorithm but still participates in the recovery
// protocol, i.e. in tags >= kRecoveryTagBase).  Receives targeting such a
// source deliver any message the source buffered *before* failing — those are
// real, the eager protocol already holds them — and only fail over once the
// queue holds nothing matching.  Because message presence is a fact of the
// sender's program order (it either reached that send before dying or it did
// not, deterministically under CrashPlan), the deliver-then-fail outcome is
// identical across OS schedules.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace camb {

/// A message in flight: the payload plus its envelope, the logical time at
/// which it left the sender (see machine.hpp's clock model), and the sender's
/// phase label at send time (for leak-report forensics).
struct Message {
  int src = -1;
  int tag = 0;
  double depart_time = 0.0;
  std::vector<double> payload;
  std::string phase;
};

/// How a blocking receive concluded under failure marking.
enum class RecvStatus {
  kDelivered,     ///< a matching message was returned
  kSrcDead,       ///< source crashed and nothing matching is buffered
  kSrcDeviated,   ///< source abandoned this tag range, nothing buffered
  kTimedOut,      ///< a match exists but its arrival stamp exceeds the
                  ///< deadline; the message stays queued
};

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message (called by the sender's thread). Never blocks.
  /// `reorder_skip` > 0 lets the message jump ahead of up to that many
  /// already-queued messages bearing a *different* (src, tag) envelope —
  /// the legal reorderings of the fault-injection layer.  Messages with the
  /// same envelope are never passed, so per-envelope FIFO order (the only
  /// order tag-matched receives can observe) is preserved.
  void push(Message msg, int reorder_skip = 0);

  /// Block until a message with envelope (src, tag) is available and return
  /// it.  Matching is exact on both fields; use wildcards via recv_any.
  Message pop_matching(int src, int tag);

  /// Failure-aware, deadline-aware variant: blocks until a matching message
  /// arrives OR the source can no longer produce one (dead for any tag;
  /// deviated for tags below the recovery base).  Buffered matches always
  /// win over failure marking.  A match whose arrival stamp exceeds
  /// `max_stamp` yields kTimedOut and is left queued (the logical-clock
  /// receive timeout: the message is still "in flight" at the deadline).
  RecvStatus pop_matching_or_failed(int src, int tag, double max_stamp,
                                    Message* out);

  /// Block until any message is available and return the oldest one.
  Message pop_any();

  /// Mark `src` as crashed: receives from it fail over once drained.
  void mark_dead(int src);

  /// Mark `src` as having abandoned the algorithm: receives of tags below
  /// `tag_base` fail over once drained; recovery tags still block normally.
  void mark_deviated(int src, int tag_base);

  /// Number of queued messages (for tests / leak detection).
  std::size_t pending() const;

  /// Remove and return every queued message (leak forensics / crash debris).
  std::vector<Message> drain();

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::vector<int> dead_;
  std::vector<std::pair<int, int>> deviated_;  ///< (src, tag_base)
};

}  // namespace camb
