// mailbox.hpp — per-processor message queue with (source, tag) matching.
//
// Sends are buffered (never block), so any schedule of matching sends and
// receives is deadlock-free; receives block until a matching message arrives.
// This mirrors the eager-protocol semantics message-passing programs rely on
// for small and medium messages, and keeps collective implementations simple.
//
// Storage layout (the hot-path redesign): messages live in *per-source
// envelope buckets*, so pop_matching(src, tag) scans only the messages
// `src` currently has in flight — O(match) — instead of the whole queue.
// Buckets are keyed sparsely (a hash map over the sources this rank has
// actually met, each bucket a small FIFO vector): a rank talks to O(grid
// dimension) peers, so dense per-source storage would cost O(P) per mailbox
// — O(P^2) per machine — and P = 65,536 mailboxes must stay cheap.
// A separate *any-queue index* (`order_`) records global arrival order
// (including the fault layer's legal reorderings) as lightweight
// (src, tag, seq) entries, giving pop_any and drain exactly the order the
// old single-deque implementation exposed without ever moving a payload to
// reorder.  Entries whose message was matched out of a bucket are skipped
// lazily via a stale-sequence set; because matching is FIFO per envelope,
// the earliest live entry of an envelope always corresponds to the earliest
// queued message of that envelope.
//
// Failure awareness (crash-fault support): a source rank may be marked *dead*
// (it crashed — no further message from it will ever arrive) or *deviated*
// (it abandoned the algorithm but still participates in the recovery
// protocol, i.e. in tags >= kRecoveryTagBase).  Receives targeting such a
// source deliver any message the source buffered *before* failing — those are
// real, the eager protocol already holds them — and only fail over once the
// queue holds nothing matching.  Because message presence is a fact of the
// sender's program order (it either reached that send before dying or it did
// not, deterministically under CrashPlan), the deliver-then-fail outcome is
// identical across OS schedules.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "machine/buffer_pool.hpp"
#include "machine/fiber.hpp"
#include "util/math.hpp"

namespace camb {

/// A message in flight: the payload plus its envelope, the logical time at
/// which it left the sender (see machine.hpp's clock model), and the sender's
/// phase label at send time (for leak-report forensics).  Payloads are
/// pooled move-only Buffers: a message is moved into the mailbox and moved
/// out to the receiver; its words are never copied in between.
struct Message {
  int src = -1;
  int tag = 0;
  double depart_time = 0.0;
  Buffer payload;
  std::string phase;
  std::uint64_t seq = 0;  ///< arrival sequence, assigned by the mailbox
  // Reliable-transport envelope fields (machine/reliable.hpp).  The checksum
  // is metadata, not payload — it adds no words to any count.  A copy marked
  // transport_dup is an injected duplicate of an already-delivered message:
  // the receive path discards it silently, and one still parked here at run
  // end is transport debris, not a program leak.
  std::uint64_t checksum = 0;
  bool transport_dup = false;
};

/// One message left in a mailbox after a run — the leak / crash-debris
/// report entry (name the envelope, not just the count).
struct UndeliveredMessage {
  int src = -1;
  int dst = -1;
  int tag = 0;
  i64 bytes = 0;
  std::string phase;
  bool transport_dup = false;  ///< injected duplicate — benign debris

  double words() const { return static_cast<double>(bytes) / 8.0; }
};

/// How a blocking receive concluded under failure marking.
enum class RecvStatus {
  kDelivered,     ///< a matching message was returned
  kSrcDead,       ///< source crashed and nothing matching is buffered
  kSrcDeviated,   ///< source abandoned this tag range, nothing buffered
  kTimedOut,      ///< a match exists but its arrival stamp exceeds the
                  ///< deadline; the message stays queued
};

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message (called by the sender's thread). Never blocks.
  /// `reorder_skip` > 0 lets the message jump ahead of up to that many
  /// already-queued messages bearing a *different* (src, tag) envelope —
  /// the legal reorderings of the fault-injection layer.  Messages with the
  /// same envelope are never passed, so per-envelope FIFO order (the only
  /// order tag-matched receives can observe) is preserved.  Reordering
  /// swaps index entries, never payloads.
  void push(Message msg, int reorder_skip = 0);

  /// Block until a message with envelope (src, tag) is available and return
  /// it.  Matching is exact on both fields; use wildcards via recv_any.
  Message pop_matching(int src, int tag);

  /// Failure-aware, deadline-aware variant: blocks until a matching message
  /// arrives OR the source can no longer produce one (dead for any tag;
  /// deviated for tags below the recovery base).  Buffered matches always
  /// win over failure marking.  A match whose arrival stamp exceeds
  /// `max_stamp` yields kTimedOut and is left queued (the logical-clock
  /// receive timeout: the message is still "in flight" at the deadline).
  RecvStatus pop_matching_or_failed(int src, int tag, double max_stamp,
                                    Message* out);

  /// Block until any message is available and return the oldest one (in
  /// arrival order, as perturbed by legal reorderings).
  Message pop_any();

  /// Mark `src` as crashed: receives from it fail over once drained.
  void mark_dead(int src);

  /// Mark `src` as having abandoned the algorithm: receives of tags below
  /// `tag_base` fail over once drained; recovery tags still block normally.
  void mark_deviated(int src, int tag_base);

  /// Number of queued messages (for tests / leak detection).
  std::size_t pending() const;

  /// Number of per-source buckets materialized (for tests: the sparse
  /// footprint contract — only sources that actually pushed have buckets;
  /// receives polling a silent source must not create one).
  std::size_t bucket_count() const;

  /// Remove and return every queued message (oldest first), for tests.
  std::vector<Message> drain();

  /// Single-lock leak/debris sweep: append one envelope record per queued
  /// message (oldest first) to `out` and clear the mailbox.  This is the
  /// call Network::undelivered makes so the post-run leak report takes one
  /// lock per mailbox instead of a pending()+drain() pair per call site.
  void drain_undelivered(int dst, std::vector<UndeliveredMessage>& out);

 private:
  /// One any-queue index entry: the envelope plus the arrival sequence of
  /// the message it stands for.
  struct Entry {
    int src = -1;
    int tag = 0;
    std::uint64_t seq = 0;
  };

  /// The bucket for `src`, created on demand — called by push() only, so
  /// buckets exist exactly for the sources that have actually sent here
  /// (mailboxes are constructed without knowing the machine size, and most
  /// sources never write here).  A bucket is a FIFO: push_back on arrival,
  /// erase(begin()+i) on match — buckets are shallow (a handful of
  /// in-flight messages), so the shift is cheaper than a deque's chunked
  /// storage.
  std::vector<Message>& bucket(int src);

  /// The bucket for `src`, or nullptr if that source has never pushed here.
  /// All pop paths use this so a blocked receive does not grow the map.
  std::vector<Message>* find_bucket(int src);

  /// Block until this mailbox is notified again: parks when called on a
  /// fiber, waits on the condition variable otherwise.  Callers loop.
  void wait_for_mail(std::unique_lock<std::mutex>& lock);

  /// Drop index-front entries whose messages were already matched out.
  void trim_order_front();

  /// Rebuild the index without stale entries once they outnumber the live
  /// ones (stale entries buried behind long-lived live entries are
  /// unreachable by trim_order_front).  Amortized O(1) per matching pop;
  /// bounds the index at ~2x the pending-message count.
  void compact_if_sparse();

  /// Remove and return the oldest queued message with envelope (src, tag).
  /// Precondition: one exists.  `indexed` says whether its index entry is
  /// still in order_ (true for matching pops, which then mark the entry's
  /// seq stale; false for pop_any, which removed the entry itself).
  Message take_oldest(int src, int tag, bool indexed);

  /// Extract the message at `it` from its bucket and retire its index entry
  /// (directly if it is the index front, else via the stale set).
  Message take_at(std::vector<Message>& q, std::vector<Message>::iterator it,
                  bool indexed);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  FiberWaitList waiters_;
  std::unordered_map<int, std::vector<Message>> buckets_;  ///< by source
  std::deque<Entry> order_;                       ///< any-queue index
  std::unordered_set<std::uint64_t> stale_;       ///< matched-out entry seqs
  std::uint64_t next_seq_ = 1;
  std::size_t size_ = 0;
  std::vector<int> dead_;
  std::vector<std::pair<int, int>> deviated_;  ///< (src, tag_base)
};

}  // namespace camb
