// mailbox.hpp — per-processor message queue with (source, tag) matching.
//
// Sends are buffered (never block), so any schedule of matching sends and
// receives is deadlock-free; receives block until a matching message arrives.
// This mirrors the eager-protocol semantics message-passing programs rely on
// for small and medium messages, and keeps collective implementations simple.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "util/math.hpp"

namespace camb {

/// A message in flight: the payload plus its envelope and the logical time
/// at which it left the sender (see machine.hpp's clock model).
struct Message {
  int src = -1;
  int tag = 0;
  double depart_time = 0.0;
  std::vector<double> payload;
};

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message (called by the sender's thread). Never blocks.
  void push(Message msg);

  /// Block until a message with envelope (src, tag) is available and return
  /// it.  Matching is exact on both fields; use wildcards via recv_any.
  Message pop_matching(int src, int tag);

  /// Block until any message is available and return the oldest one.
  Message pop_any();

  /// Number of queued messages (for tests / leak detection).
  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace camb
