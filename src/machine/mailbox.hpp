// mailbox.hpp — per-processor message queue with (source, tag) matching.
//
// Sends are buffered (never block), so any schedule of matching sends and
// receives is deadlock-free; receives block until a matching message arrives.
// This mirrors the eager-protocol semantics message-passing programs rely on
// for small and medium messages, and keeps collective implementations simple.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "util/math.hpp"

namespace camb {

/// A message in flight: the payload plus its envelope and the logical time
/// at which it left the sender (see machine.hpp's clock model).
struct Message {
  int src = -1;
  int tag = 0;
  double depart_time = 0.0;
  std::vector<double> payload;
};

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposit a message (called by the sender's thread). Never blocks.
  /// `reorder_skip` > 0 lets the message jump ahead of up to that many
  /// already-queued messages bearing a *different* (src, tag) envelope —
  /// the legal reorderings of the fault-injection layer.  Messages with the
  /// same envelope are never passed, so per-envelope FIFO order (the only
  /// order tag-matched receives can observe) is preserved.
  void push(Message msg, int reorder_skip = 0);

  /// Block until a message with envelope (src, tag) is available and return
  /// it.  Matching is exact on both fields; use wildcards via recv_any.
  Message pop_matching(int src, int tag);

  /// Block until any message is available and return the oldest one.
  Message pop_any();

  /// Number of queued messages (for tests / leak detection).
  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace camb
