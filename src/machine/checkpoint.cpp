#include "machine/checkpoint.hpp"

namespace camb {

namespace {

/// Header values (epoch, counts, sizes) ride the wire as scalars of T; the
/// round trip through T is exact for every supported scalar at simulated
/// sizes (small non-negative integers).
template <typename T>
T encode_header(i64 value) {
  return T(static_cast<double>(value));
}

template <typename T>
i64 decode_header(const T& value) {
  return static_cast<i64>(ScalarTraits<T>::to_double(value));
}

}  // namespace

template <typename T>
std::vector<T> snapshot_to_wire(const SnapshotT<T>& snap) {
  CAMB_CHECK(snap.epoch >= 0);
  std::vector<T> wire;
  std::size_t total = 2 + snap.bufs.size();
  for (const auto& buf : snap.bufs) total += buf.size();
  wire.reserve(total);
  wire.push_back(encode_header<T>(snap.epoch));
  wire.push_back(encode_header<T>(static_cast<i64>(snap.bufs.size())));
  for (const auto& buf : snap.bufs) {
    wire.push_back(encode_header<T>(static_cast<i64>(buf.size())));
  }
  for (const auto& buf : snap.bufs) {
    wire.insert(wire.end(), buf.begin(), buf.end());
  }
  return wire;
}

template <typename T>
SnapshotT<T> snapshot_from_wire(const std::vector<T>& wire) {
  CAMB_CHECK_MSG(wire.size() >= 2, "snapshot wire truncated");
  SnapshotT<T> snap;
  snap.epoch = decode_header(wire[0]);
  const auto nbufs = static_cast<std::size_t>(decode_header(wire[1]));
  CAMB_CHECK_MSG(wire.size() >= 2 + nbufs, "snapshot wire truncated");
  std::size_t off = 2 + nbufs;
  snap.bufs.reserve(nbufs);
  for (std::size_t b = 0; b < nbufs; ++b) {
    const auto size = static_cast<std::size_t>(decode_header(wire[2 + b]));
    CAMB_CHECK_MSG(off + size <= wire.size(), "snapshot wire truncated");
    snap.bufs.emplace_back(wire.begin() + static_cast<std::ptrdiff_t>(off),
                           wire.begin() + static_cast<std::ptrdiff_t>(off + size));
    off += size;
  }
  CAMB_CHECK_MSG(off == wire.size(), "snapshot wire has trailing words");
  return snap;
}

#define CAMB_INSTANTIATE(T)                                          \
  template std::vector<T> snapshot_to_wire<T>(const SnapshotT<T>&);  \
  template SnapshotT<T> snapshot_from_wire<T>(const std::vector<T>&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb
