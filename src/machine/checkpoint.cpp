#include "machine/checkpoint.hpp"

namespace camb {

std::vector<double> snapshot_to_wire(const Snapshot& snap) {
  CAMB_CHECK(snap.epoch >= 0);
  std::vector<double> wire;
  std::size_t total = 2 + snap.bufs.size();
  for (const auto& buf : snap.bufs) total += buf.size();
  wire.reserve(total);
  wire.push_back(static_cast<double>(snap.epoch));
  wire.push_back(static_cast<double>(snap.bufs.size()));
  for (const auto& buf : snap.bufs) {
    wire.push_back(static_cast<double>(buf.size()));
  }
  for (const auto& buf : snap.bufs) {
    wire.insert(wire.end(), buf.begin(), buf.end());
  }
  return wire;
}

Snapshot snapshot_from_wire(const std::vector<double>& wire) {
  CAMB_CHECK_MSG(wire.size() >= 2, "snapshot wire truncated");
  Snapshot snap;
  snap.epoch = static_cast<i64>(wire[0]);
  const auto nbufs = static_cast<std::size_t>(wire[1]);
  CAMB_CHECK_MSG(wire.size() >= 2 + nbufs, "snapshot wire truncated");
  std::size_t off = 2 + nbufs;
  snap.bufs.reserve(nbufs);
  for (std::size_t b = 0; b < nbufs; ++b) {
    const auto size = static_cast<std::size_t>(wire[2 + b]);
    CAMB_CHECK_MSG(off + size <= wire.size(), "snapshot wire truncated");
    snap.bufs.emplace_back(wire.begin() + static_cast<std::ptrdiff_t>(off),
                           wire.begin() + static_cast<std::ptrdiff_t>(off + size));
    off += size;
  }
  CAMB_CHECK_MSG(off == wire.size(), "snapshot wire has trailing words");
  return snap;
}

}  // namespace camb
