#include "machine/topology.hpp"

#include "util/error.hpp"

namespace camb {

i64 Topology::hops(int src, int dst) const {
  return static_cast<i64>(route(src, dst).size());
}

// ---------------------------------------------------------------------------
// FullyConnected
// ---------------------------------------------------------------------------

FullyConnected::FullyConnected(int nprocs) : nprocs_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "topology needs at least one node");
}

std::vector<Link> FullyConnected::route(int src, int dst) const {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  if (src == dst) return {};
  return {Link{src, dst}};
}

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

Ring::Ring(int nprocs) : nprocs_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "topology needs at least one node");
}

std::vector<Link> Ring::route(int src, int dst) const {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  std::vector<Link> links;
  if (src == dst) return links;
  const int forward = (dst - src + nprocs_) % nprocs_;
  const int backward = nprocs_ - forward;
  const int step = forward <= backward ? 1 : nprocs_ - 1;  // +1 or -1 mod p
  int node = src;
  while (node != dst) {
    const int next = (node + step) % nprocs_;
    links.push_back({node, next});
    node = next;
  }
  return links;
}

// ---------------------------------------------------------------------------
// Torus2D
// ---------------------------------------------------------------------------

Torus2D::Torus2D(int rows, int cols) : rows_(rows), cols_(cols) {
  CAMB_CHECK_MSG(rows >= 1 && cols >= 1, "torus dims must be >= 1");
}

std::string Torus2D::name() const {
  return "torus_" + std::to_string(rows_) + "x" + std::to_string(cols_);
}

std::vector<Link> Torus2D::route(int src, int dst) const {
  CAMB_CHECK(src >= 0 && src < nprocs() && dst >= 0 && dst < nprocs());
  std::vector<Link> links;
  int row = src / cols_, col = src % cols_;
  const int drow = dst / cols_, dcol = dst % cols_;
  auto step_toward = [&](int from, int to, int extent) {
    const int forward = (to - from + extent) % extent;
    const int backward = extent - forward;
    return forward <= backward ? 1 : extent - 1;
  };
  // X (column) dimension first, then Y (rows): dimension-ordered routing.
  while (col != dcol) {
    const int next_col = (col + step_toward(col, dcol, cols_)) % cols_;
    links.push_back({row * cols_ + col, row * cols_ + next_col});
    col = next_col;
  }
  while (row != drow) {
    const int next_row = (row + step_toward(row, drow, rows_)) % rows_;
    links.push_back({row * cols_ + col, next_row * cols_ + col});
    row = next_row;
  }
  return links;
}

// ---------------------------------------------------------------------------
// Hypercube
// ---------------------------------------------------------------------------

Hypercube::Hypercube(int nprocs) : nprocs_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1 && (nprocs & (nprocs - 1)) == 0,
                 "hypercube size must be a power of two");
}

std::vector<Link> Hypercube::route(int src, int dst) const {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  std::vector<Link> links;
  int node = src;
  for (int bit = 1; bit < nprocs_; bit <<= 1) {
    if ((node & bit) != (dst & bit)) {
      const int next = node ^ bit;
      links.push_back({node, next});
      node = next;
    }
  }
  return links;
}

// ---------------------------------------------------------------------------
// Contention analysis
// ---------------------------------------------------------------------------

ContentionReport analyze_contention(const Trace& trace, const Topology& topo) {
  CAMB_CHECK_MSG(trace.nprocs() == topo.nprocs(),
                 "trace and topology sizes must agree");
  ContentionReport report;
  for (const auto& event : trace.events()) {
    report.total_words += event.words();
    const auto links = trace.nprocs() == 1
                           ? std::vector<Link>{}
                           : topo.route(event.src, event.dst);
    report.hop_words += static_cast<double>(links.size()) * event.words();
    for (const Link& link : links) {
      report.link_words[link] += event.words();
    }
  }
  for (const auto& [link, words] : report.link_words) {
    if (words > report.max_link_words) {
      report.max_link_words = words;
      report.max_link = link;
    }
  }
  report.mean_hops =
      report.total_words > 0 ? report.hop_words / report.total_words : 0.0;
  return report;
}

}  // namespace camb
