#include "machine/network.hpp"

#include "machine/reliable.hpp"
#include "util/error.hpp"

namespace camb {

Network::Network(int nprocs) : nprocs_(nprocs), stats_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "network needs at least one processor");
  pools_.reserve(nprocs);
  mailboxes_.reserve(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    pools_.push_back(std::make_unique<BufferPool>());
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

BufferPool& Network::pool(int rank) {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  return *pools_[static_cast<std::size_t>(rank)];
}

void Network::send(int src, int dst, int tag, Buffer payload,
                   double depart_time) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  const bool counted = (src != dst);
  if (counted) {
    stats_.record_send(src, payload.byte_size());
    if (trace_ != nullptr) {
      trace_->record(src, dst, tag, payload.byte_size(), stats_.phase(src));
    }
  }
  // Counted or not, delivery is a move of the payload's storage into the
  // destination mailbox; a self-send in particular costs zero copies.
  Message msg{src, tag, depart_time, std::move(payload), stats_.phase(src)};
  if (counted && reliable_ != nullptr) {
    // The plain (unclocked) path injects no SDC events, but its envelopes
    // still need valid checksums or the transport-aware receive would nack
    // them forever.
    msg.checksum = reliable_->checksum(msg.payload);
  }
  mailboxes_[dst]->push(std::move(msg));
}

double Network::send_timed(int src, int dst, int tag, Buffer payload,
                           double clock, const AlphaBeta& params) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  if (src == dst) {
    // Self-sends are free and fault-exempt: the data never leaves local
    // memory, so there is nothing for the network to perturb — and nothing
    // for a crash to interrupt.  The payload is delivered by move.
    mailboxes_[dst]->push(Message{src, tag, clock, std::move(payload),
                                  stats_.phase(src)});
    return clock;
  }
  // The crash plan rules first: a rank that dies at this send performs no
  // part of it (no fault decision is consumed, nothing is counted, nothing
  // is delivered).  The per-sender send index advances either way, so the
  // death position is a pure program-order fact of the sender.
  if (crash_plan_ != nullptr && crash_plan_->should_crash(src)) {
    throw RankCrashed(src, clock);
  }
  SendFaults faults;
  double slowdown = 1.0;
  if (fault_plan_ != nullptr) {
    faults = fault_plan_->decide_send(src);
    slowdown = fault_plan_->straggler_factor(src);
  }
  const int attempts = 1 + faults.failed_attempts;
  const i64 bytes = payload.byte_size();
  // β is charged per 8-byte word; exact halves for 4-byte scalars.
  const double words = static_cast<double>(bytes) / 8.0;
  // SDC events are physical only under the reliable transport; Machine::run
  // rejects SDC profiles without one, so this guard is belt-and-braces.
  const bool sdc_active = reliable_ != nullptr;
  const int failed_copies =
      sdc_active ? faults.dropped_copies + faults.corrupt_copies : 0;
  const bool duplicated = sdc_active && faults.duplicated;

  if (sdc_active && faults.transport_exhausted) {
    // Every copy in the budget dropped or arrived corrupt: the transport
    // gives up.  The wasted wire words and backoff latency are still real —
    // account them in the transport phase, then surface the named error.
    clock += slowdown *
             (params.alpha *
                  FaultPlan::retry_alpha_units(faults.failed_attempts +
                                               failed_copies) +
              params.beta * (words * failed_copies));
    const std::string active = stats_.phase(src);
    stats_.set_phase(src, kPhaseTransport);
    for (int k = 0; k < failed_copies; ++k) stats_.record_send(src, bytes);
    stats_.set_phase(src, active);
    auto& tc = stats_.transport_mut(src);
    tc.retransmits += failed_copies;
    tc.retransmitted_bytes += bytes * failed_copies;
    if (trace_ != nullptr) {
      trace_->record_transport(src, dst, tag, bytes, faults.dropped_copies,
                               faults.corrupt_copies, false);
    }
    throw TransportError(src, dst, tag, failed_copies,
                         fault_plan_->profile().max_transport_retries);
  }

  // Latency charged per attempt (with backoff), payload words exactly once
  // in the algorithm phase; every failed transport copy costs one more
  // backoff round and its wire words, the duplicate one more plain send.
  clock += slowdown *
           (params.alpha *
                FaultPlan::retry_alpha_units(attempts + failed_copies) +
            params.beta * (words * (1 + failed_copies)) +
            (duplicated ? params.alpha + params.beta * words : 0.0));
  stats_.record_send(src, bytes);
  if (trace_ != nullptr) {
    trace_->record(src, dst, tag, bytes, stats_.phase(src));
    if (attempts > 1 || faults.delay > 0) {
      trace_->record_fault(src, dst, tag, faults.failed_attempts, faults.delay,
                           faults.reorder_skip);
    }
  }
  const int extra_copies = failed_copies + (duplicated ? 1 : 0);
  if (extra_copies > 0) {
    // Sender-side transport tax: one counted send per extra on-wire copy
    // (dropped, corrupted, or duplicated), in the dedicated phase so the
    // algorithm phases stay word-exact to the fault-free run.
    const std::string active = stats_.phase(src);
    stats_.set_phase(src, kPhaseTransport);
    for (int k = 0; k < extra_copies; ++k) stats_.record_send(src, bytes);
    stats_.set_phase(src, active);
    auto& tc = stats_.transport_mut(src);
    tc.retransmits += failed_copies;
    tc.retransmitted_bytes += bytes * failed_copies;
    if (duplicated) ++tc.dup_copies;
    if (trace_ != nullptr) {
      trace_->record_transport(src, dst, tag, bytes, faults.dropped_copies,
                               faults.corrupt_copies, duplicated);
    }
  }

  const double stamp = clock + faults.delay;
  const std::string& phase = stats_.phase(src);
  if (sdc_active) {
    // Corrupt copies are deposited *before* the clean one: per-envelope
    // FIFO order guarantees the receiver sees (and nacks) them first, which
    // is exactly the drop-discard-retransmit schedule of a real ARQ.
    // Dropped copies never reach the mailbox at all.
    const std::uint64_t clean_checksum = reliable_->checksum(payload);
    for (int k = 0; k < faults.corrupt_copies; ++k) {
      Message corrupt;
      corrupt.src = src;
      corrupt.tag = tag;
      corrupt.depart_time = stamp;
      corrupt.payload = reliable_->forge_corrupt_copy(
          payload, faults.flip_entropy, k, &corrupt.checksum);
      corrupt.phase = phase;
      mailboxes_[dst]->push(std::move(corrupt), faults.reorder_skip);
    }
    Buffer dup_payload = duplicated ? payload.clone() : Buffer();
    Message clean;
    clean.src = src;
    clean.tag = tag;
    clean.depart_time = stamp;
    clean.payload = std::move(payload);
    clean.phase = phase;
    clean.checksum = clean_checksum;
    mailboxes_[dst]->push(std::move(clean), faults.reorder_skip);
    if (duplicated) {
      Message dup;
      dup.src = src;
      dup.tag = tag;
      dup.depart_time = stamp;
      dup.payload = std::move(dup_payload);
      dup.phase = phase;
      dup.checksum = clean_checksum;
      dup.transport_dup = true;
      mailboxes_[dst]->push(std::move(dup), faults.reorder_skip);
    }
  } else {
    mailboxes_[dst]->push(Message{src, tag, stamp, std::move(payload), phase},
                          faults.reorder_skip);
  }
  return clock;
}

// Transport-side acceptance check, shared by both receive paths.  Returns
// true when `msg` is a real delivery; false when it was transport debris
// (an injected duplicate, discarded silently, or a corrupt copy, nacked and
// charged to the receiver's transport phase) and the caller must pop again.
bool Network::transport_accept(int dst, Message& msg) {
  if (msg.src == dst || reliable_ == nullptr) return true;
  if (msg.transport_dup) {
    // A duplicate of an envelope already delivered: the wire words were
    // charged to the sender, the receiver drops it for free.
    ++stats_.transport_mut(dst).dup_discards;
    return false;
  }
  if (msg.checksum != reliable_->checksum(msg.payload)) {
    // Corrupt copy: the words did arrive (and are charged to the receiver's
    // transport phase), the zero-word nack goes back, and the retransmit is
    // already queued behind it in the same envelope.
    auto& tc = stats_.transport_mut(dst);
    ++tc.corrupt_discards;
    ++tc.nacks;
    const std::string active = stats_.phase(dst);
    stats_.set_phase(dst, kPhaseTransport);
    stats_.record_receive(dst, msg.payload.byte_size());
    stats_.record_send(dst, 0);  // the nack
    stats_.set_phase(dst, active);
    return false;
  }
  ++stats_.transport_mut(dst).acks;
  return true;
}

Buffer Network::recv(int dst, int src, int tag, double* arrival_time) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  for (;;) {
    Message msg = mailboxes_[dst]->pop_matching(src, tag);
    if (!transport_accept(dst, msg)) continue;
    if (src != dst) {
      stats_.record_receive(dst, msg.payload.byte_size());
    }
    if (arrival_time != nullptr) *arrival_time = msg.depart_time;
    return std::move(msg.payload);
  }
}

RecvStatus Network::recv_or_failed(int dst, int src, int tag, double deadline,
                                   Buffer* payload, double* arrival_time) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  Message msg;
  RecvStatus status;
  for (;;) {
    status = mailboxes_[dst]->pop_matching_or_failed(src, tag, deadline, &msg);
    if (status == RecvStatus::kDelivered && !transport_accept(dst, msg)) {
      continue;  // transport debris — the real delivery is still queued
    }
    break;
  }
  if (status == RecvStatus::kDelivered) {
    if (src != dst) {
      stats_.record_receive(dst, msg.payload.byte_size());
    }
    if (arrival_time != nullptr) *arrival_time = msg.depart_time;
    *payload = std::move(msg.payload);
    return status;
  }
  // Failure / timeout: account the suspicion probe that "detected" it — one
  // zero-word message in the dedicated heartbeat phase.  Words stay zero and
  // the rank's active algorithm phase is untouched, so detection can never
  // perturb the paper's word counts.
  const std::string active = stats_.phase(dst);
  stats_.set_phase(dst, "heartbeat");
  stats_.record_send(dst, 0);
  stats_.set_phase(dst, active);
  return status;
}

void Network::mark_rank_dead(int rank) {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  for (auto& mailbox : mailboxes_) mailbox->mark_dead(rank);
}

void Network::mark_rank_deviated(int rank) {
  mark_rank_deviated(rank, kRecoveryTagBase);
}

void Network::mark_rank_deviated(int rank, int tag_limit) {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  for (auto& mailbox : mailboxes_) mailbox->mark_deviated(rank, tag_limit);
}

std::size_t Network::pending_messages() const {
  std::size_t total = 0;
  for (const auto& mailbox : mailboxes_) total += mailbox->pending();
  return total;
}

std::vector<UndeliveredMessage> Network::undelivered() {
  std::vector<UndeliveredMessage> out;
  for (int dst = 0; dst < nprocs_; ++dst) {
    mailboxes_[static_cast<std::size_t>(dst)]->drain_undelivered(dst, out);
  }
  return out;
}

}  // namespace camb
