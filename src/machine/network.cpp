#include "machine/network.hpp"

#include "util/error.hpp"

namespace camb {

Network::Network(int nprocs) : nprocs_(nprocs), stats_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "network needs at least one processor");
  pools_.reserve(nprocs);
  mailboxes_.reserve(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    pools_.push_back(std::make_unique<BufferPool>());
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

BufferPool& Network::pool(int rank) {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  return *pools_[static_cast<std::size_t>(rank)];
}

void Network::send(int src, int dst, int tag, Buffer payload,
                   double depart_time) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  const bool counted = (src != dst);
  if (counted) {
    stats_.record_send(src, static_cast<i64>(payload.size()));
    if (trace_ != nullptr) {
      trace_->record(src, dst, tag, static_cast<i64>(payload.size()),
                     stats_.phase(src));
    }
  }
  // Counted or not, delivery is a move of the payload's storage into the
  // destination mailbox; a self-send in particular costs zero copies.
  mailboxes_[dst]->push(Message{src, tag, depart_time, std::move(payload),
                                stats_.phase(src)});
}

double Network::send_timed(int src, int dst, int tag, Buffer payload,
                           double clock, const AlphaBeta& params) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  if (src == dst) {
    // Self-sends are free and fault-exempt: the data never leaves local
    // memory, so there is nothing for the network to perturb — and nothing
    // for a crash to interrupt.  The payload is delivered by move.
    mailboxes_[dst]->push(Message{src, tag, clock, std::move(payload),
                                  stats_.phase(src)});
    return clock;
  }
  // The crash plan rules first: a rank that dies at this send performs no
  // part of it (no fault decision is consumed, nothing is counted, nothing
  // is delivered).  The per-sender send index advances either way, so the
  // death position is a pure program-order fact of the sender.
  if (crash_plan_ != nullptr && crash_plan_->should_crash(src)) {
    throw RankCrashed(src, clock);
  }
  SendFaults faults;
  double slowdown = 1.0;
  if (fault_plan_ != nullptr) {
    faults = fault_plan_->decide_send(src);
    slowdown = fault_plan_->straggler_factor(src);
  }
  const int attempts = 1 + faults.failed_attempts;
  const auto words = static_cast<i64>(payload.size());
  // Latency charged per attempt (with backoff), payload words exactly once.
  clock += slowdown * (params.alpha * FaultPlan::retry_alpha_units(attempts) +
                       params.beta * static_cast<double>(words));
  stats_.record_send(src, words);
  if (trace_ != nullptr) {
    trace_->record(src, dst, tag, words, stats_.phase(src));
    if (attempts > 1 || faults.delay > 0) {
      trace_->record_fault(src, dst, tag, faults.failed_attempts, faults.delay,
                           faults.reorder_skip);
    }
  }
  mailboxes_[dst]->push(
      Message{src, tag, clock + faults.delay, std::move(payload),
              stats_.phase(src)},
      faults.reorder_skip);
  return clock;
}

Buffer Network::recv(int dst, int src, int tag, double* arrival_time) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  Message msg = mailboxes_[dst]->pop_matching(src, tag);
  if (src != dst) {
    stats_.record_receive(dst, static_cast<i64>(msg.payload.size()));
  }
  if (arrival_time != nullptr) *arrival_time = msg.depart_time;
  return std::move(msg.payload);
}

RecvStatus Network::recv_or_failed(int dst, int src, int tag, double deadline,
                                   Buffer* payload, double* arrival_time) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  Message msg;
  const RecvStatus status =
      mailboxes_[dst]->pop_matching_or_failed(src, tag, deadline, &msg);
  if (status == RecvStatus::kDelivered) {
    if (src != dst) {
      stats_.record_receive(dst, static_cast<i64>(msg.payload.size()));
    }
    if (arrival_time != nullptr) *arrival_time = msg.depart_time;
    *payload = std::move(msg.payload);
    return status;
  }
  // Failure / timeout: account the suspicion probe that "detected" it — one
  // zero-word message in the dedicated heartbeat phase.  Words stay zero and
  // the rank's active algorithm phase is untouched, so detection can never
  // perturb the paper's word counts.
  const std::string active = stats_.phase(dst);
  stats_.set_phase(dst, "heartbeat");
  stats_.record_send(dst, 0);
  stats_.set_phase(dst, active);
  return status;
}

void Network::mark_rank_dead(int rank) {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  for (auto& mailbox : mailboxes_) mailbox->mark_dead(rank);
}

void Network::mark_rank_deviated(int rank) {
  mark_rank_deviated(rank, kRecoveryTagBase);
}

void Network::mark_rank_deviated(int rank, int tag_limit) {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  for (auto& mailbox : mailboxes_) mailbox->mark_deviated(rank, tag_limit);
}

std::size_t Network::pending_messages() const {
  std::size_t total = 0;
  for (const auto& mailbox : mailboxes_) total += mailbox->pending();
  return total;
}

std::vector<UndeliveredMessage> Network::undelivered() {
  std::vector<UndeliveredMessage> out;
  for (int dst = 0; dst < nprocs_; ++dst) {
    mailboxes_[static_cast<std::size_t>(dst)]->drain_undelivered(dst, out);
  }
  return out;
}

}  // namespace camb
