#include "machine/network.hpp"

#include "util/error.hpp"

namespace camb {

Network::Network(int nprocs) : nprocs_(nprocs), stats_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "network needs at least one processor");
  mailboxes_.reserve(nprocs);
  for (int r = 0; r < nprocs; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Network::send(int src, int dst, int tag, std::vector<double> payload,
                   double depart_time) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  const bool counted = (src != dst);
  if (counted) {
    stats_.record_send(src, static_cast<i64>(payload.size()));
    if (trace_ != nullptr) {
      trace_->record(src, dst, tag, static_cast<i64>(payload.size()),
                     stats_.phase(src));
    }
  }
  mailboxes_[dst]->push(Message{src, tag, depart_time, std::move(payload)});
}

double Network::send_timed(int src, int dst, int tag,
                           std::vector<double> payload, double clock,
                           const AlphaBeta& params) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  if (src == dst) {
    // Self-sends are free and fault-exempt: the data never leaves local
    // memory, so there is nothing for the network to perturb.
    mailboxes_[dst]->push(Message{src, tag, clock, std::move(payload)});
    return clock;
  }
  SendFaults faults;
  double slowdown = 1.0;
  if (fault_plan_ != nullptr) {
    faults = fault_plan_->decide_send(src);
    slowdown = fault_plan_->straggler_factor(src);
  }
  const int attempts = 1 + faults.failed_attempts;
  const auto words = static_cast<i64>(payload.size());
  // Latency charged per attempt (with backoff), payload words exactly once.
  clock += slowdown * (params.alpha * FaultPlan::retry_alpha_units(attempts) +
                       params.beta * static_cast<double>(words));
  stats_.record_send(src, words);
  if (trace_ != nullptr) {
    trace_->record(src, dst, tag, words, stats_.phase(src));
    if (attempts > 1 || faults.delay > 0) {
      trace_->record_fault(src, dst, tag, faults.failed_attempts, faults.delay,
                           faults.reorder_skip);
    }
  }
  mailboxes_[dst]->push(
      Message{src, tag, clock + faults.delay, std::move(payload)},
      faults.reorder_skip);
  return clock;
}

std::vector<double> Network::recv(int dst, int src, int tag,
                                  double* arrival_time) {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  Message msg = mailboxes_[dst]->pop_matching(src, tag);
  if (src != dst) {
    stats_.record_receive(dst, static_cast<i64>(msg.payload.size()));
  }
  if (arrival_time != nullptr) *arrival_time = msg.depart_time;
  return std::move(msg.payload);
}

std::size_t Network::pending_messages() const {
  std::size_t total = 0;
  for (const auto& mailbox : mailboxes_) total += mailbox->pending();
  return total;
}

}  // namespace camb
