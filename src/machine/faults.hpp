// faults.hpp — deterministic fault injection & schedule perturbation.
//
// The paper's claims are schedule-independent: the words an algorithm moves
// per processor (Theorem 3, eq. 3) do not depend on message timing.  This
// layer makes that a *tested* property instead of an assumed one.  A seeded
// FaultPlan is consulted by the Network on every counted send and injects
//
//   * bounded delivery delays (the message's logical arrival stamp is pushed
//     into the future, so the receiver's clock synchronizes later),
//   * legal reorderings within tag-match semantics (a message may jump ahead
//     of queued messages with a *different* (src, tag) envelope; per-envelope
//     FIFO order — the order receives can actually observe — is preserved),
//   * transient send failures, absorbed by a retry-with-exponential-backoff
//     path in Network::send_timed (each attempt is charged latency, the
//     payload words are counted exactly once),
//   * per-rank straggler slowdowns (a factor >= 1 multiplying every clock
//     charge of that rank — sends, receives of local work via advance_clock).
//
// Determinism: every decision is a pure function of (fault seed, sender
// rank, per-sender send index).  Send indices are maintained per rank and
// each rank's sends are issued in program order by its own thread, so the
// injected event sequence is identical across runs regardless of OS thread
// scheduling — any stress failure is reproducible from its seed alone.
//
// Cost-accounting rules (what the invariants rely on):
//   * delivery delays and reorderings never touch CommStats — word and
//     message counts are schedule facts, not timing facts;
//   * a send that fails n times before succeeding still records its words
//     and its one message exactly once; the sender's clock is charged
//     alpha * (2^(n+1) - 1) + beta * w in total (attempt k costs alpha *
//     2^(k-1): the attempt itself plus the backoff wait before it doubles
//     each round), so retries show up in simulated time only;
//   * straggler factors scale clock charges, never counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/tags.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace camb {

/// Knobs for one perturbation regime.  All probabilities are per counted
/// send; delays are in the machine's logical-clock units.
struct FaultProfile {
  double delay_prob = 0.0;      ///< chance a send's arrival stamp is delayed
  double max_delay = 0.0;       ///< delay drawn uniformly from (0, max_delay]
  int max_reorder_skip = 0;     ///< queue positions a delayed message may jump
  double fail_prob = 0.0;       ///< chance a send needs at least one retry
  int max_retries = 0;          ///< bound on failed attempts per send
  double straggler_prob = 0.0;  ///< chance a rank is a straggler
  double max_slowdown = 0.0;    ///< extra slowdown factor drawn from (0, max]
  // Silent-data-corruption events (require the reliable transport,
  // machine/reliable.hpp — without it a dropped copy would hang the
  // receiver, so Machine::run rejects SDC profiles with no transport).
  // Each probability rules on one *transmitted copy*: a send keeps
  // retransmitting until a copy neither drops nor flips, bounded by
  // max_transport_retries failed copies.
  double drop_prob = 0.0;          ///< chance a transmitted copy is lost
  double flip_prob = 0.0;          ///< chance a copy arrives bit-flipped
  double dup_prob = 0.0;           ///< chance the clean copy arrives twice
  int max_transport_retries = 12;  ///< retransmit budget per counted send

  bool any_message_sdc() const {
    return drop_prob > 0 || flip_prob > 0 || dup_prob > 0;
  }
  bool any_faults() const {
    return delay_prob > 0 || fail_prob > 0 || straggler_prob > 0 ||
           any_message_sdc();
  }
};

/// Named profiles for CLI / test use: "none", "delays", "drops",
/// "stragglers", "light", "heavy", "sdc".  Throws camb::Error on unknown
/// names.
FaultProfile fault_profile_by_name(const std::string& name);
/// All names accepted by fault_profile_by_name, stable order.
std::vector<std::string> fault_profile_names();

/// CLI-facing profile parser: accepts either a named profile or a custom
/// "key=value,key=value" spec (keys: delay_prob, max_delay, max_reorder_skip,
/// fail_prob, max_retries, straggler_prob, max_slowdown, drop_prob,
/// flip_prob, dup_prob, max_transport_retries).  Every value is
/// range-checked — probabilities in [0, 1], magnitudes non-negative — and a
/// malformed spec throws camb::Error with a one-line message, so bad knobs
/// never flow silently into a FaultPlan.
FaultProfile fault_profile_from_spec(const std::string& spec);

/// What the plan injects into one counted send.
struct SendFaults {
  int failed_attempts = 0;  ///< transient failures before the send succeeds
  double delay = 0.0;       ///< added to the message's arrival stamp
  int reorder_skip = 0;     ///< legal queue-jump distance for the mailbox
  // Silent-data-corruption events for this send (reliable-transport model):
  // the transport transmits copies until one survives; each dropped copy
  // vanishes in flight, each corrupt copy reaches the receiver and is
  // discarded on checksum mismatch (nack), and the surviving copy may be
  // duplicated in delivery.
  int dropped_copies = 0;   ///< copies lost before one got through
  int corrupt_copies = 0;   ///< copies delivered corrupted and nacked
  bool duplicated = false;  ///< the clean copy is delivered twice
  bool transport_exhausted = false;  ///< retransmit budget ran out
  std::uint64_t flip_entropy = 0;    ///< seeds the injected bit positions
};

/// Aggregated injection counts (exact, summed over ranks after a run).
struct FaultCounts {
  i64 decisions = 0;         ///< counted sends the plan ruled on
  i64 delayed_messages = 0;  ///< sends with delay > 0
  i64 total_retries = 0;     ///< failed attempts summed over sends
  i64 failed_sends = 0;      ///< sends with >= 1 failed attempt
  i64 reordered_messages = 0;
  int stragglers = 0;        ///< ranks with slowdown factor > 1
  i64 dropped_copies = 0;    ///< SDC: copies lost in flight
  i64 corrupt_copies = 0;    ///< SDC: copies delivered corrupted
  i64 duplicated_messages = 0;  ///< SDC: sends whose clean copy doubled
  i64 exhausted_sends = 0;   ///< SDC: sends that ran out their budget
};

/// The seeded, deterministic fault oracle for one machine run.
///
/// Thread contract: decide_send(src) must be called only from rank src's
/// thread (per-rank slots are plain cache-line-padded fields, the same
/// discipline CommStats uses); straggler_factor and the profile are
/// immutable after construction; counts() is for after Machine::run.
class FaultPlan {
 public:
  /// `sdc_seed` drives the drop/dup/flip decision streams independently of
  /// the timing-fault streams (so --sdc-seed replays SDC events alone);
  /// 0 derives one from `seed` (util/rng.hpp kSeedDomainSdc).
  FaultPlan(const FaultProfile& profile, std::uint64_t seed, int nprocs,
            std::uint64_t sdc_seed = 0);

  const FaultProfile& profile() const { return profile_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t sdc_seed() const { return sdc_seed_; }
  int nprocs() const { return nprocs_; }

  /// Rule on rank src's next counted send (advances src's send index).
  SendFaults decide_send(int src);

  /// Clock multiplier for a rank, >= 1 (1 for non-stragglers).  Fixed at
  /// construction, derived from (seed, rank) only.
  double straggler_factor(int rank) const;

  /// Latency units charged for a send that took `attempts` tries under the
  /// exponential-backoff schedule: sum of 2^(k-1) for k = 1..attempts,
  /// i.e. 2^attempts - 1.  Equals `attempts` (= 1) on the fault-free path.
  static double retry_alpha_units(int attempts);

  FaultCounts counts() const;

 private:
  struct alignas(64) RankSlot {
    std::uint64_t send_index = 0;
    i64 delayed = 0;
    i64 retries = 0;
    i64 failed_sends = 0;
    i64 reordered = 0;
    i64 dropped = 0;
    i64 corrupted = 0;
    i64 duplicated = 0;
    i64 exhausted = 0;
  };

  FaultProfile profile_;
  std::uint64_t seed_;
  std::uint64_t sdc_seed_ = 0;
  int nprocs_;
  std::vector<RankSlot> slots_;
  std::vector<double> straggler_;
};

// ---------------------------------------------------------------------------
// Crash faults (permanent, fail-stop).
// ---------------------------------------------------------------------------

// Tag-space split for failure handling: tags at or above kRecoveryTagBase
// (machine/tags.hpp) belong to the recovery protocol (shrink agreement, ABFT
// reconstruction).  A rank that *abandons* the algorithm mid-flight
// (RankCtx::abandon) stops consuming algorithm-phase tags but keeps
// participating below-the-line in recovery, so receives from it fail over
// only for tags below that base.  Crashed ranks fail over for every tag.

/// Thrown inside a rank's thread when its planned crash triggers.  Not a
/// camb::Error: a crash is an injected event, not a contract violation —
/// Machine::run absorbs it (the thread exits cleanly) instead of rethrowing.
class RankCrashed {
 public:
  RankCrashed(int rank, double clock) : rank_(rank), clock_(clock) {}
  int rank() const { return rank_; }
  /// The rank's logical clock at the moment of death.
  double clock() const { return clock_; }

 private:
  int rank_;
  double clock_;
};

/// Thrown by a blocking receive when the awaited peer can no longer deliver:
/// it crashed, or it abandoned the algorithm phase the tag belongs to.  This
/// is the *structured* failure-detection error: it names the failed rank, so
/// survivors (or the harness) can act on it instead of deadlocking.
class PeerFailedError : public Error {
 public:
  PeerFailedError(int failed_rank, int receiver, int tag, bool crashed)
      : Error("rank " + std::to_string(receiver) + " detected failure of rank " +
              std::to_string(failed_rank) + " while receiving tag " +
              std::to_string(tag) +
              (crashed ? " (peer crashed)" : " (peer abandoned the phase)")),
        failed_rank_(failed_rank), receiver_(receiver), tag_(tag),
        crashed_(crashed) {}

  int failed_rank() const { return failed_rank_; }
  int receiver() const { return receiver_; }
  int tag() const { return tag_; }
  bool peer_crashed() const { return crashed_; }

 private:
  int failed_rank_;
  int receiver_;
  int tag_;
  bool crashed_;
};

/// One planned permanent failure: `rank` dies immediately before issuing its
/// `at_send`-th counted send (0-indexed).  A rank whose program performs fewer
/// counted sends than `at_send` never crashes.
struct CrashEvent {
  int rank = -1;
  i64 at_send = 0;
};

/// The deterministic crash oracle: which ranks die, and when.  Like FaultPlan,
/// should_crash(src) is called only from rank src's thread (per-rank slots),
/// so the injected deaths are a pure function of the plan regardless of OS
/// scheduling.
class CrashPlan {
 public:
  /// Explicit positions.  Ranks must be distinct and in [0, nprocs);
  /// positions must be non-negative.  Throws camb::Error otherwise.
  CrashPlan(std::vector<CrashEvent> events, int nprocs);

  /// Seed-derived positions: each listed rank dies at a send index drawn
  /// deterministically from (seed, rank) in [0, max_send_position].
  static CrashPlan derived(const std::vector<int>& ranks, std::uint64_t seed,
                           int nprocs, i64 max_send_position);

  int nprocs() const { return nprocs_; }
  const std::vector<CrashEvent>& events() const { return events_; }

  /// Rule on rank src's next counted send (advances src's send counter);
  /// true means src dies *instead of* performing this send.
  bool should_crash(int src);

  /// Whether / when the plan schedules a death for `rank` (-1 if never).
  i64 planned_position(int rank) const;

  /// Ranks whose planned crash actually fired during the run, ascending.
  std::vector<int> triggered() const;

 private:
  struct alignas(64) RankSlot {
    i64 send_index = 0;
    bool fired = false;
  };

  std::vector<CrashEvent> events_;
  int nprocs_ = 0;
  std::vector<i64> position_;  ///< per rank, -1 = never dies
  std::vector<RankSlot> slots_;
};

}  // namespace camb
