// topology.hpp — physical network topologies and contention analysis.
//
// The §3.1 machine model assumes a fully connected, contention-free network;
// real machines have rings, tori, and fat-trees.  This module maps a
// recorded message trace (trace.hpp) onto a physical topology with
// deterministic shortest-path / dimension-ordered routing and reports what
// the model abstracts away: per-link loads, the most congested link, and
// hop-weighted traffic.  The topology bench uses it to show how the choice
// of collective variant and processor grid interacts with the physical
// network — e.g. a ring All-Gather maps perfectly onto a physical ring while
// recursive doubling's long-range partners pile onto the same links.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "machine/trace.hpp"

namespace camb {

/// A directed physical link between neighbouring nodes.
using Link = std::pair<int, int>;

class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::string name() const = 0;
  virtual int nprocs() const = 0;

  /// Deterministic route from a to b as a sequence of directed links
  /// (empty for a == b).  Routes are shortest paths under the topology's
  /// canonical routing (minimal-direction for rings, dimension-ordered for
  /// tori and hypercubes).
  virtual std::vector<Link> route(int src, int dst) const = 0;

  /// Number of hops from src to dst (== route(src, dst).size()).
  i64 hops(int src, int dst) const;
};

/// Every pair one hop apart — the paper's model.
class FullyConnected final : public Topology {
 public:
  explicit FullyConnected(int nprocs);
  std::string name() const override { return "fully_connected"; }
  int nprocs() const override { return nprocs_; }
  std::vector<Link> route(int src, int dst) const override;

 private:
  int nprocs_;
};

/// Bidirectional ring; routes take the shorter direction (ties go up).
class Ring final : public Topology {
 public:
  explicit Ring(int nprocs);
  std::string name() const override { return "ring"; }
  int nprocs() const override { return nprocs_; }
  std::vector<Link> route(int src, int dst) const override;

 private:
  int nprocs_;
};

/// rows × cols torus with X-then-Y dimension-ordered routing, each dimension
/// taking its shorter direction.
class Torus2D final : public Topology {
 public:
  Torus2D(int rows, int cols);
  std::string name() const override;
  int nprocs() const override { return rows_ * cols_; }
  std::vector<Link> route(int src, int dst) const override;

 private:
  int rows_, cols_;
};

/// Hypercube on 2^d nodes with ascending bit-fixing routes.
class Hypercube final : public Topology {
 public:
  explicit Hypercube(int nprocs);  // nprocs must be a power of two
  std::string name() const override { return "hypercube"; }
  int nprocs() const override { return nprocs_; }
  std::vector<Link> route(int src, int dst) const override;

 private:
  int nprocs_;
};

/// What the fully-connected abstraction hides on a given topology.
struct ContentionReport {
  double total_words = 0;    ///< words in the trace (topology-independent)
  double hop_words = 0;      ///< sum over messages of words × hops
  double mean_hops = 0;      ///< hop_words / total_words (0 if no traffic)
  double max_link_words = 0; ///< load on the most congested directed link
  Link max_link = {-1, -1};
  std::map<Link, double> link_words;  ///< full per-link load map
};

/// Route every traced message over the topology and aggregate link loads.
ContentionReport analyze_contention(const Trace& trace, const Topology& topo);

}  // namespace camb
