#include "machine/trace.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "util/error.hpp"

namespace camb {

Trace::Trace(int nprocs) : nprocs_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "trace needs at least one processor");
}

void Trace::record(int src, int dst, int tag, i64 bytes,
                   const std::string& phase) {
  MessageEvent event;
  event.seq = next_seq_.fetch_add(1);
  event.src = src;
  event.dst = dst;
  event.tag = tag;
  event.bytes = bytes;
  event.phase = phase;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Trace::record_fault(int src, int dst, int tag, int failed_attempts,
                         double delay, int reorder_skip) {
  FaultEvent event;
  event.seq = next_seq_.fetch_add(1);
  event.src = src;
  event.dst = dst;
  event.tag = tag;
  event.failed_attempts = failed_attempts;
  event.delay = delay;
  event.reorder_skip = reorder_skip;
  std::lock_guard<std::mutex> lock(mutex_);
  fault_events_.push_back(event);
}

void Trace::record_transport(int src, int dst, int tag, i64 bytes,
                             int dropped_copies, int corrupt_copies,
                             bool duplicated) {
  TransportEvent event;
  event.seq = next_seq_.fetch_add(1);
  event.src = src;
  event.dst = dst;
  event.tag = tag;
  event.bytes = bytes;
  event.dropped_copies = dropped_copies;
  event.corrupt_copies = corrupt_copies;
  event.duplicated = duplicated;
  std::lock_guard<std::mutex> lock(mutex_);
  transport_events_.push_back(event);
}

std::vector<TransportEvent> Trace::transport_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TransportEvent> snapshot = transport_events_;
  std::sort(snapshot.begin(), snapshot.end(),
            [](const TransportEvent& a, const TransportEvent& b) {
              return a.seq < b.seq;
            });
  return snapshot;
}

std::size_t Trace::transport_event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transport_events_.size();
}

std::vector<FaultEvent> Trace::fault_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultEvent> snapshot = fault_events_;
  std::sort(snapshot.begin(), snapshot.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.seq < b.seq;
            });
  return snapshot;
}

std::size_t Trace::fault_event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_events_.size();
}

std::vector<MessageEvent> Trace::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MessageEvent> snapshot = events_;
  std::sort(snapshot.begin(), snapshot.end(),
            [](const MessageEvent& a, const MessageEvent& b) {
              return a.seq < b.seq;
            });
  return snapshot;
}

std::size_t Trace::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<std::vector<double>> Trace::traffic_matrix() const {
  std::vector<std::vector<i64>> bytes(
      static_cast<std::size_t>(nprocs_),
      std::vector<i64>(static_cast<std::size_t>(nprocs_), 0));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& event : events_) {
      bytes[static_cast<std::size_t>(event.src)]
           [static_cast<std::size_t>(event.dst)] += event.bytes;
    }
  }
  std::vector<std::vector<double>> matrix(
      static_cast<std::size_t>(nprocs_),
      std::vector<double>(static_cast<std::size_t>(nprocs_), 0.0));
  for (std::size_t s = 0; s < bytes.size(); ++s) {
    for (std::size_t d = 0; d < bytes[s].size(); ++d) {
      matrix[s][d] = static_cast<double>(bytes[s][d]) / 8.0;
    }
  }
  return matrix;
}

double Trace::words_between(int src, int dst) const {
  CAMB_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  i64 total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& event : events_) {
    if (event.src == src && event.dst == dst) total += event.bytes;
  }
  return static_cast<double>(total) / 8.0;
}

std::vector<MessageEvent> Trace::events_in_phase(
    const std::string& phase) const {
  std::vector<MessageEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& event : events_) {
    if (event.phase == phase) out.push_back(event);
  }
  std::sort(out.begin(), out.end(),
            [](const MessageEvent& a, const MessageEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<int> Trace::partners_of(int rank) const {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  std::set<int> partners;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& event : events_) {
    if (event.src == rank) partners.insert(event.dst);
    if (event.dst == rank) partners.insert(event.src);
  }
  return std::vector<int>(partners.begin(), partners.end());
}

void Trace::write_csv(const std::string& path) const {
  std::ofstream file(path);
  CAMB_CHECK_MSG(file.good(), "cannot open trace CSV: " + path);
  file << "seq,src,dst,tag,bytes,phase\n";
  for (const auto& event : events()) {
    file << event.seq << ',' << event.src << ',' << event.dst << ','
         << event.tag << ',' << event.bytes << ',' << event.phase << '\n';
  }
  CAMB_CHECK_MSG(file.good(), "error writing trace CSV: " + path);
}

}  // namespace camb
