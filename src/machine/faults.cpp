#include "machine/faults.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace camb {

namespace {

/// Uniform double in [0, 1) from one splitmix64 output.
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Decision stream for (seed, domain, index): a splitmix64 chain keyed so
/// that neighbouring ranks and neighbouring send indices are uncorrelated.
std::uint64_t stream_state(std::uint64_t seed, std::uint64_t domain,
                           std::uint64_t index) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (domain + 1));
  s ^= splitmix64(s);
  s += 0xBF58476D1CE4E5B9ULL * (index + 1);
  return s;
}

}  // namespace

FaultProfile fault_profile_by_name(const std::string& name) {
  if (name == "none") return FaultProfile{};
  if (name == "delays") {
    FaultProfile p;
    p.delay_prob = 0.35;
    p.max_delay = 8.0;
    p.max_reorder_skip = 4;
    return p;
  }
  if (name == "drops") {
    FaultProfile p;
    p.fail_prob = 0.25;
    p.max_retries = 3;
    return p;
  }
  if (name == "stragglers") {
    FaultProfile p;
    p.straggler_prob = 0.3;
    p.max_slowdown = 3.0;
    return p;
  }
  if (name == "light") {
    FaultProfile p;
    p.delay_prob = 0.1;
    p.max_delay = 2.0;
    p.max_reorder_skip = 2;
    p.fail_prob = 0.05;
    p.max_retries = 1;
    p.straggler_prob = 0.1;
    p.max_slowdown = 0.5;
    return p;
  }
  if (name == "heavy") {
    FaultProfile p;
    p.delay_prob = 0.5;
    p.max_delay = 16.0;
    p.max_reorder_skip = 8;
    p.fail_prob = 0.3;
    p.max_retries = 4;
    p.straggler_prob = 0.4;
    p.max_slowdown = 4.0;
    return p;
  }
  if (name == "sdc") {
    FaultProfile p;
    p.drop_prob = 0.05;
    p.flip_prob = 0.05;
    p.dup_prob = 0.05;
    return p;
  }
  throw Error("unknown fault profile: " + name);
}

std::vector<std::string> fault_profile_names() {
  return {"none", "delays", "drops", "stragglers", "light", "heavy", "sdc"};
}

namespace {

double parse_spec_number(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used == 0 || used != text.size()) {
    throw Error("fault profile spec: value for '" + key +
                "' is not a number: '" + text + "'");
  }
  return value;
}

}  // namespace

FaultProfile fault_profile_from_spec(const std::string& spec) {
  if (spec.find('=') == std::string::npos) return fault_profile_by_name(spec);
  FaultProfile p;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      throw Error("fault profile spec: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const double value = parse_spec_number(key, item.substr(eq + 1));
    const bool is_prob = key == "delay_prob" || key == "fail_prob" ||
                         key == "straggler_prob" || key == "drop_prob" ||
                         key == "flip_prob" || key == "dup_prob";
    if (is_prob && (value < 0.0 || value > 1.0)) {
      throw Error("fault profile spec: " + key + " must lie in [0, 1], got " +
                  item.substr(eq + 1));
    }
    if (!is_prob && value < 0.0) {
      throw Error("fault profile spec: " + key + " must be non-negative, got " +
                  item.substr(eq + 1));
    }
    if (key == "delay_prob") {
      p.delay_prob = value;
    } else if (key == "max_delay") {
      p.max_delay = value;
    } else if (key == "max_reorder_skip") {
      p.max_reorder_skip = static_cast<int>(value);
    } else if (key == "fail_prob") {
      p.fail_prob = value;
    } else if (key == "max_retries") {
      p.max_retries = static_cast<int>(value);
    } else if (key == "straggler_prob") {
      p.straggler_prob = value;
    } else if (key == "max_slowdown") {
      p.max_slowdown = value;
    } else if (key == "drop_prob") {
      p.drop_prob = value;
    } else if (key == "flip_prob") {
      p.flip_prob = value;
    } else if (key == "dup_prob") {
      p.dup_prob = value;
    } else if (key == "max_transport_retries") {
      p.max_transport_retries = static_cast<int>(value);
    } else {
      throw Error("fault profile spec: unknown key '" + key + "'");
    }
  }
  return p;
}

CrashPlan::CrashPlan(std::vector<CrashEvent> events, int nprocs)
    : events_(std::move(events)), nprocs_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "crash plan needs at least one processor");
  position_.assign(static_cast<std::size_t>(nprocs), -1);
  slots_.resize(static_cast<std::size_t>(nprocs));
  for (const CrashEvent& ev : events_) {
    if (ev.rank < 0 || ev.rank >= nprocs) {
      throw Error("crash plan: rank " + std::to_string(ev.rank) +
                  " out of range for P = " + std::to_string(nprocs));
    }
    if (ev.at_send < 0) {
      throw Error("crash plan: crash position must be non-negative, got " +
                  std::to_string(ev.at_send));
    }
    if (position_[static_cast<std::size_t>(ev.rank)] >= 0) {
      throw Error("crash plan: rank " + std::to_string(ev.rank) +
                  " listed more than once");
    }
    position_[static_cast<std::size_t>(ev.rank)] = ev.at_send;
  }
}

CrashPlan CrashPlan::derived(const std::vector<int>& ranks, std::uint64_t seed,
                             int nprocs, i64 max_send_position) {
  CAMB_CHECK_MSG(max_send_position >= 0,
                 "crash plan: max send position must be non-negative");
  std::vector<CrashEvent> events;
  events.reserve(ranks.size());
  // Domain layout mirrors FaultPlan: one draw per rank, keyed by the rank
  // itself so the crash position is a pure function of (seed, rank).
  for (int r : ranks) {
    std::uint64_t s = stream_state(seed, 0, static_cast<std::uint64_t>(r));
    const double draw = to_unit(splitmix64(s));
    const i64 at = static_cast<i64>(
        draw * static_cast<double>(max_send_position + 1));
    events.push_back({r, std::min(at, max_send_position)});
  }
  return CrashPlan(std::move(events), nprocs);
}

bool CrashPlan::should_crash(int src) {
  CAMB_CHECK(src >= 0 && src < nprocs_);
  RankSlot& slot = slots_[static_cast<std::size_t>(src)];
  const i64 planned = position_[static_cast<std::size_t>(src)];
  const i64 index = slot.send_index++;
  if (planned < 0 || slot.fired) return false;
  if (index == planned) {
    slot.fired = true;
    return true;
  }
  return false;
}

i64 CrashPlan::planned_position(int rank) const {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  return position_[static_cast<std::size_t>(rank)];
}

std::vector<int> CrashPlan::triggered() const {
  std::vector<int> out;
  for (int r = 0; r < nprocs_; ++r) {
    if (slots_[static_cast<std::size_t>(r)].fired) out.push_back(r);
  }
  return out;
}

FaultPlan::FaultPlan(const FaultProfile& profile, std::uint64_t seed,
                     int nprocs, std::uint64_t sdc_seed)
    : profile_(profile), seed_(seed),
      sdc_seed_(sdc_seed != 0 ? sdc_seed : derive_seed(seed, kSeedDomainSdc)),
      nprocs_(nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "fault plan needs at least one processor");
  CAMB_CHECK_MSG(profile.delay_prob >= 0 && profile.delay_prob <= 1 &&
                     profile.fail_prob >= 0 && profile.fail_prob <= 1 &&
                     profile.straggler_prob >= 0 &&
                     profile.straggler_prob <= 1,
                 "fault probabilities must lie in [0, 1]");
  CAMB_CHECK_MSG(profile.drop_prob >= 0 && profile.drop_prob <= 1 &&
                     profile.flip_prob >= 0 && profile.flip_prob <= 1 &&
                     profile.dup_prob >= 0 && profile.dup_prob <= 1,
                 "SDC probabilities must lie in [0, 1]");
  CAMB_CHECK_MSG(profile.max_delay >= 0 && profile.max_retries >= 0 &&
                     profile.max_reorder_skip >= 0 &&
                     profile.max_slowdown >= 0,
                 "fault magnitudes must be non-negative");
  CAMB_CHECK_MSG(!profile.any_message_sdc() ||
                     profile.max_transport_retries >= 1,
                 "SDC injection needs a retransmit budget of at least one");
  slots_.resize(static_cast<std::size_t>(nprocs));
  straggler_.assign(static_cast<std::size_t>(nprocs), 1.0);
  // Straggler factors are fixed per run: domain 0 of the decision space,
  // one draw pair per rank.
  for (int r = 0; r < nprocs; ++r) {
    std::uint64_t s = stream_state(seed_, 0, static_cast<std::uint64_t>(r));
    const double coin = to_unit(splitmix64(s));
    const double magnitude = to_unit(splitmix64(s));
    if (profile_.straggler_prob > 0 && coin < profile_.straggler_prob) {
      straggler_[static_cast<std::size_t>(r)] =
          1.0 + magnitude * profile_.max_slowdown;
    }
  }
}

SendFaults FaultPlan::decide_send(int src) {
  CAMB_CHECK(src >= 0 && src < nprocs_);
  RankSlot& slot = slots_[static_cast<std::size_t>(src)];
  const std::uint64_t index = slot.send_index++;
  SendFaults out;
  if (!profile_.any_faults()) return out;
  // Domain 1 + src separates each sender's send-indexed decision stream
  // from every other sender's and from the straggler draws.
  std::uint64_t s = stream_state(
      seed_, 1 + static_cast<std::uint64_t>(src), index);
  const double delay_coin = to_unit(splitmix64(s));
  const double delay_mag = to_unit(splitmix64(s));
  const double skip_draw = to_unit(splitmix64(s));
  const double fail_coin = to_unit(splitmix64(s));
  const double fail_mag = to_unit(splitmix64(s));
  if (profile_.delay_prob > 0 && delay_coin < profile_.delay_prob) {
    out.delay = (1.0 - delay_mag) * profile_.max_delay;  // in (0, max_delay]
    out.reorder_skip = static_cast<int>(
        skip_draw * (profile_.max_reorder_skip + 1));
    ++slot.delayed;
    if (out.reorder_skip > 0) ++slot.reordered;
  }
  if (profile_.fail_prob > 0 && profile_.max_retries > 0 &&
      fail_coin < profile_.fail_prob) {
    // fail_mag in [0, 1) maps onto 1..max_retries failed attempts.
    out.failed_attempts =
        1 + static_cast<int>(fail_mag * profile_.max_retries);
    if (out.failed_attempts > profile_.max_retries) {
      out.failed_attempts = profile_.max_retries;
    }
    slot.retries += out.failed_attempts;
    ++slot.failed_sends;
  }
  if (profile_.any_message_sdc()) {
    // SDC decisions run on their own seed and their own splitmix chain, so
    // (a) adding them never perturbs the timing-fault draws above (the
    // pre-SDC golden sweeps stay bit-identical) and (b) --sdc-seed replays
    // the drop/dup/flip sequence independently of the fault seed.  Each
    // transmitted copy draws a drop coin then a flip coin; the transport
    // keeps retransmitting until a copy survives both or the budget is out.
    std::uint64_t t = stream_state(
        sdc_seed_, 1 + static_cast<std::uint64_t>(src), index);
    for (;;) {
      if (out.dropped_copies + out.corrupt_copies >=
          profile_.max_transport_retries) {
        out.transport_exhausted = true;
        break;
      }
      const double drop_coin = to_unit(splitmix64(t));
      if (profile_.drop_prob > 0 && drop_coin < profile_.drop_prob) {
        ++out.dropped_copies;
        continue;
      }
      const double flip_coin = to_unit(splitmix64(t));
      if (profile_.flip_prob > 0 && flip_coin < profile_.flip_prob) {
        ++out.corrupt_copies;
        continue;
      }
      break;
    }
    if (!out.transport_exhausted) {
      const double dup_coin = to_unit(splitmix64(t));
      out.duplicated = profile_.dup_prob > 0 && dup_coin < profile_.dup_prob;
    }
    out.flip_entropy = splitmix64(t);
    slot.dropped += out.dropped_copies;
    slot.corrupted += out.corrupt_copies;
    if (out.duplicated) ++slot.duplicated;
    if (out.transport_exhausted) ++slot.exhausted;
  }
  return out;
}

double FaultPlan::straggler_factor(int rank) const {
  CAMB_CHECK(rank >= 0 && rank < nprocs_);
  return straggler_[static_cast<std::size_t>(rank)];
}

double FaultPlan::retry_alpha_units(int attempts) {
  CAMB_CHECK_MSG(attempts >= 1, "a successful send has at least one attempt");
  return std::ldexp(1.0, attempts) - 1.0;  // 2^attempts - 1
}

FaultCounts FaultPlan::counts() const {
  FaultCounts total;
  for (const RankSlot& slot : slots_) {
    total.decisions += static_cast<i64>(slot.send_index);
    total.delayed_messages += slot.delayed;
    total.total_retries += slot.retries;
    total.failed_sends += slot.failed_sends;
    total.reordered_messages += slot.reordered;
    total.dropped_copies += slot.dropped;
    total.corrupt_copies += slot.corrupted;
    total.duplicated_messages += slot.duplicated;
    total.exhausted_sends += slot.exhausted;
  }
  for (double f : straggler_) {
    if (f > 1.0) ++total.stragglers;
  }
  return total;
}

}  // namespace camb
