#include "machine/machine.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/error.hpp"

namespace camb {

RankCtx::RankCtx(Machine& machine, int rank)
    : machine_(machine), rank_(rank),
      rng_(machine.seed(), static_cast<std::uint64_t>(rank)) {
  if (FaultPlan* plan = machine.fault_plan()) {
    straggler_ = plan->straggler_factor(rank);
  }
}

int RankCtx::nprocs() const { return machine_.nprocs(); }

void RankCtx::send(int dst, int tag, std::vector<double> payload) {
  clock_ = machine_.network().send_timed(rank_, dst, tag, std::move(payload),
                                         clock_, machine_.time_params());
}

std::vector<double> RankCtx::recv(int src, int tag) {
  double arrival = 0.0;
  std::vector<double> payload =
      machine_.network().recv(rank_, src, tag, &arrival);
  if (src != rank_) clock_ = std::max(clock_, arrival);
  return payload;
}

std::vector<double> RankCtx::sendrecv(int peer, int tag,
                                      std::vector<double> payload) {
  send(peer, tag, std::move(payload));
  return recv(peer, tag);
}

void RankCtx::barrier() {
  clock_ = machine_.sync_clock_at_barrier(rank_, clock_);
}

void RankCtx::advance_clock(double seconds) {
  CAMB_CHECK_MSG(seconds >= 0, "clocks only move forward");
  clock_ += straggler_ * seconds;
}

void RankCtx::acquire_words(i64 words) {
  CAMB_CHECK_MSG(words >= 0, "working-set sizes are non-negative");
  current_words_ += words;
  peak_words_ = std::max(peak_words_, current_words_);
}

void RankCtx::release_words(i64 words) {
  CAMB_CHECK_MSG(words >= 0 && words <= current_words_,
                 "unbalanced working-set release");
  current_words_ -= words;
}

void RankCtx::set_phase(const std::string& phase) {
  machine_.stats().set_phase(rank_, phase);
}

Network& RankCtx::network() { return machine_.network(); }

Machine::Machine(int nprocs, std::uint64_t seed)
    : network_(nprocs), barrier_(nprocs), seed_(seed) {}

Trace& Machine::enable_trace() {
  if (!trace_) {
    trace_ = std::make_unique<Trace>(nprocs());
    network_.set_trace(trace_.get());
  }
  return *trace_;
}

FaultPlan& Machine::enable_faults(const FaultProfile& profile,
                                  std::uint64_t fault_seed) {
  fault_plan_ = std::make_unique<FaultPlan>(profile, fault_seed, nprocs());
  network_.set_fault_plan(fault_plan_.get());
  return *fault_plan_;
}

void Machine::run(const std::function<void(RankCtx&)>& program) {
  const int p = nprocs();
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  final_clocks_.assign(static_cast<std::size_t>(p), 0.0);
  barrier_clocks_.assign(static_cast<std::size_t>(p), 0.0);
  peak_memory_.assign(static_cast<std::size_t>(p), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      try {
        RankCtx ctx(*this, r);
        program(ctx);
        final_clocks_[static_cast<std::size_t>(r)] = ctx.clock();
        peak_memory_[static_cast<std::size_t>(r)] = ctx.peak_words();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  CAMB_CHECK_MSG(network_.pending_messages() == 0,
                 "program finished with undelivered messages");
}

double Machine::critical_path_time() const {
  double worst = 0.0;
  for (double clock : final_clocks_) worst = std::max(worst, clock);
  return worst;
}

i64 Machine::max_peak_memory_words() const {
  i64 worst = 0;
  for (i64 peak : peak_memory_) worst = std::max(worst, peak);
  return worst;
}

double Machine::sync_clock_at_barrier(int rank, double clock) {
  barrier_clocks_[static_cast<std::size_t>(rank)] = clock;
  barrier_.arrive_and_wait();
  double worst = 0.0;
  for (double c : barrier_clocks_) worst = std::max(worst, c);
  barrier_.arrive_and_wait();  // keep slots stable until everyone has read
  return worst;
}

}  // namespace camb
