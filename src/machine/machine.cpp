#include "machine/machine.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <sstream>

#include "machine/worker_pool.hpp"
#include "util/error.hpp"

namespace camb {

RankCtx::RankCtx(Machine& machine, int rank)
    : machine_(machine), rank_(rank),
      rng_(machine.seed(), static_cast<std::uint64_t>(rank)) {
  if (FaultPlan* plan = machine.fault_plan()) {
    straggler_ = plan->straggler_factor(rank);
  }
}

int RankCtx::nprocs() const { return machine_.nprocs(); }

void RankCtx::send(int dst, int tag, Buffer payload) {
  clock_ = machine_.network().send_timed(rank_, dst, tag, std::move(payload),
                                         clock_, machine_.time_params());
  // Chaos-mode fuzz hook (no-op otherwise): yield after every communication
  // call so seeded schedules explore interleavings that natural blocking
  // points would never produce.
  Fiber::maybe_preempt();
}

Buffer RankCtx::recv(int src, int tag) {
  double arrival = 0.0;
  Buffer payload;
  const RecvStatus status = machine_.network().recv_or_failed(
      rank_, src, tag, std::numeric_limits<double>::infinity(), &payload,
      &arrival);
  if (status == RecvStatus::kDelivered) {
    if (src != rank_) clock_ = std::max(clock_, arrival);
    Fiber::maybe_preempt();
    return payload;
  }
  const bool crashed = (status == RecvStatus::kSrcDead);
  machine_.note_detection(DetectionEvent{rank_, src, tag, clock_, crashed});
  throw PeerFailedError(src, rank_, tag, crashed);
}

std::optional<Buffer> RankCtx::recv_timed(int src, int tag, double deadline,
                                          RecvStatus* status) {
  double arrival = 0.0;
  Buffer payload;
  const RecvStatus st =
      machine_.network().recv_or_failed(rank_, src, tag, deadline, &payload,
                                        &arrival);
  if (status != nullptr) *status = st;
  switch (st) {
    case RecvStatus::kDelivered:
      if (src != rank_) clock_ = std::max(clock_, arrival);
      Fiber::maybe_preempt();
      return std::optional<Buffer>(std::move(payload));
    case RecvStatus::kTimedOut:
      // The receiver waited out its deadline; the matching message is still
      // "in flight" past it.
      clock_ = std::max(clock_, deadline);
      return std::nullopt;
    case RecvStatus::kSrcDead:
    case RecvStatus::kSrcDeviated:
      machine_.note_detection(DetectionEvent{
          rank_, src, tag, clock_, st == RecvStatus::kSrcDead});
      return std::nullopt;
  }
  return std::nullopt;
}

void RankCtx::abandon() {
  machine_.network().mark_rank_deviated(rank_);
  machine_.note_abandon(rank_);
}

void RankCtx::abandon_below(int tag_limit) {
  machine_.network().mark_rank_deviated(rank_, tag_limit);
  machine_.note_abandon(rank_);
}

Buffer RankCtx::sendrecv(int peer, int tag, Buffer payload) {
  send(peer, tag, std::move(payload));
  return recv(peer, tag);
}

void RankCtx::barrier() {
  clock_ = machine_.sync_clock_at_barrier(rank_, clock_);
}

void RankCtx::advance_clock(double seconds) {
  CAMB_CHECK_MSG(seconds >= 0, "clocks only move forward");
  clock_ += straggler_ * seconds;
}

void RankCtx::acquire_bytes(i64 bytes) {
  CAMB_CHECK_MSG(bytes >= 0, "working-set sizes are non-negative");
  current_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, current_bytes_);
}

void RankCtx::release_bytes(i64 bytes) {
  CAMB_CHECK_MSG(bytes >= 0 && bytes <= current_bytes_,
                 "unbalanced working-set release");
  current_bytes_ -= bytes;
}

void RankCtx::set_phase(const std::string& phase) {
  machine_.stats().set_phase(rank_, phase);
}

Network& RankCtx::network() { return machine_.network(); }

BufferPool& RankCtx::pool() { return machine_.network().pool(rank_); }

Machine::Machine(int nprocs, std::uint64_t seed)
    : network_(nprocs), barrier_(nprocs), seed_(seed) {
  // Reduce the barrier clocks to their max once per release (by the
  // releasing participant, under the barrier mutex) instead of once per
  // rank: sync_clock_at_barrier would otherwise read O(P) slots on each of
  // P ranks — O(P^2) per barrier, real seconds at P = 65,536.
  barrier_.set_on_release([this] {
    double worst = 0.0;
    for (double c : barrier_clocks_) worst = std::max(worst, c);
    barrier_max_ = worst;
  });
}

Trace& Machine::enable_trace() {
  if (!trace_) {
    trace_ = std::make_unique<Trace>(nprocs());
    network_.set_trace(trace_.get());
  }
  return *trace_;
}

FaultPlan& Machine::enable_faults(const FaultProfile& profile,
                                  std::uint64_t fault_seed,
                                  std::uint64_t sdc_seed) {
  fault_plan_ =
      std::make_unique<FaultPlan>(profile, fault_seed, nprocs(), sdc_seed);
  network_.set_fault_plan(fault_plan_.get());
  return *fault_plan_;
}

ReliableTransport& Machine::enable_reliable_transport(
    std::uint64_t checksum_seed) {
  reliable_ = std::make_unique<ReliableTransport>(checksum_seed);
  network_.set_reliable(reliable_.get());
  return *reliable_;
}

CrashPlan& Machine::enable_crashes(const std::vector<int>& ranks,
                                   std::uint64_t crash_seed,
                                   i64 max_send_position) {
  crash_plan_ = std::make_unique<CrashPlan>(
      CrashPlan::derived(ranks, crash_seed, nprocs(), max_send_position));
  network_.set_crash_plan(crash_plan_.get());
  return *crash_plan_;
}

CrashPlan& Machine::enable_crashes(std::vector<CrashEvent> events) {
  crash_plan_ = std::make_unique<CrashPlan>(std::move(events), nprocs());
  network_.set_crash_plan(crash_plan_.get());
  return *crash_plan_;
}

void Machine::note_detection(DetectionEvent event) {
  std::lock_guard<std::mutex> lock(outcome_mutex_);
  outcome_.detections.push_back(event);
}

void Machine::note_abandon(int rank) {
  std::lock_guard<std::mutex> lock(outcome_mutex_);
  outcome_.abandoned.push_back(rank);
}

void Machine::handle_rank_failure(int r) {
  network_.mark_rank_dead(r);
  barrier_.drop_participant();
}

void Machine::run(const std::function<void(RankCtx&)>& program) {
  if (fault_plan_ != nullptr && fault_plan_->profile().any_message_sdc() &&
      network_.reliable() == nullptr) {
    throw Error(
        "fault profile injects message drop/flip/dup events but no reliable "
        "transport is attached — a dropped copy would hang its receiver; "
        "call enable_reliable_transport (CLI: --reliable)");
  }
  const int p = nprocs();
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<char> crashed(static_cast<std::size_t>(p), 0);
  std::vector<double> crash_clock(static_cast<std::size_t>(p), 0.0);
  final_clocks_.assign(static_cast<std::size_t>(p), 0.0);
  barrier_clocks_.assign(static_cast<std::size_t>(p), 0.0);
  peak_memory_.assign(static_cast<std::size_t>(p), 0);
  outcome_ = CrashOutcome{};
  transport_debris_.clear();
  // Under the threads scheduler, rank bodies run on the process-wide worker
  // pool — real OS threads, reused across Machine runs so small programs
  // don't pay P thread create/join pairs each.  Under the fiber scheduler,
  // the same bodies run as cooperatively scheduled fibers multiplexed onto
  // pool-width threads (fiber.hpp) — the mode that reaches P in the tens of
  // thousands.  The task catches everything; it never throws.
  const std::function<void(int)> task = [&](int r) {
    // Every payload this rank packs draws from — and returns to — its own
    // free-list pool for the duration of the program.
    BufferPool::Scope pool_scope(&network_.pool(r));
    RankCtx ctx(*this, r);
    try {
      program(ctx);
      final_clocks_[static_cast<std::size_t>(r)] = ctx.clock();
      peak_memory_[static_cast<std::size_t>(r)] = ctx.peak_bytes();
    } catch (const RankCrashed& rc) {
      // The planned crash: the rank dies cleanly, drains nothing, and its
      // rank body exits.  Survivors learn of it through the dead-marking.
      crashed[static_cast<std::size_t>(r)] = 1;
      crash_clock[static_cast<std::size_t>(r)] = rc.clock();
      final_clocks_[static_cast<std::size_t>(r)] = rc.clock();
      peak_memory_[static_cast<std::size_t>(r)] = ctx.peak_bytes();
      handle_rank_failure(r);
    } catch (...) {
      // Any other failure gets the same liveness treatment so peers
      // blocked on this rank fail over instead of deadlocking the join.
      errors[static_cast<std::size_t>(r)] = std::current_exception();
      final_clocks_[static_cast<std::size_t>(r)] = ctx.clock();
      handle_rank_failure(r);
    }
  };
  if (resolve_scheduler_kind(scheduler_.kind) == SchedulerKind::kFibers) {
    FiberScheduler::Options fopts;
    fopts.workers = scheduler_.workers;
    fopts.stack_bytes = scheduler_.stack_bytes;
    fopts.interleave_seed = scheduler_.interleave_seed;
    FiberScheduler::run(p, task, fopts);
  } else {
    WorkerPool::instance().run(p, task);
  }

  for (int r = 0; r < p; ++r) {
    if (crashed[static_cast<std::size_t>(r)]) {
      outcome_.crashed.push_back(r);
      outcome_.crash_clocks.push_back(crash_clock[static_cast<std::size_t>(r)]);
    }
  }
  // A rank may abandon several rollback rounds in one run; report it once.
  std::sort(outcome_.abandoned.begin(), outcome_.abandoned.end());
  outcome_.abandoned.erase(
      std::unique(outcome_.abandoned.begin(), outcome_.abandoned.end()),
      outcome_.abandoned.end());
  std::sort(outcome_.detections.begin(), outcome_.detections.end(),
            [](const DetectionEvent& a, const DetectionEvent& b) {
              if (a.detector != b.detector) return a.detector < b.detector;
              if (a.failed != b.failed) return a.failed < b.failed;
              return a.tag < b.tag;
            });

  // Rethrow priority: a substantive error beats the detection errors it
  // caused; among detections, one naming an actually-crashed rank beats the
  // cascade variants.  Within a class, lowest rank wins (deterministic).
  std::exception_ptr first_other;
  std::exception_ptr first_peer_crashed;
  std::exception_ptr first_peer;
  for (int r = 0; r < p; ++r) {
    const auto& err = errors[static_cast<std::size_t>(r)];
    if (!err) continue;
    outcome_.errored.push_back(r);
    try {
      std::rethrow_exception(err);
    } catch (const PeerFailedError& e) {
      if (!first_peer) first_peer = err;
      if (!first_peer_crashed && e.failed_rank() >= 0 && e.failed_rank() < p &&
          crashed[static_cast<std::size_t>(e.failed_rank())]) {
        first_peer_crashed = err;
      }
    } catch (...) {
      if (!first_other) first_other = err;
    }
  }

  const bool any_failures =
      !outcome_.crashed.empty() || !outcome_.errored.empty();
  if (any_failures) {
    // Undelivered mail after a failure is crash debris, not a program leak:
    // record it for forensics and clear the mailboxes.
    outcome_.debris = network_.undelivered();
  }
  if (first_other) std::rethrow_exception(first_other);
  if (first_peer_crashed) std::rethrow_exception(first_peer_crashed);
  if (first_peer) std::rethrow_exception(first_peer);
  if (!any_failures) {
    std::vector<UndeliveredMessage> leaked = network_.undelivered();
    // Injected duplicates whose originals were delivered are transport
    // debris, not program leaks: every word of them was charged to the
    // sender's transport phase, and the program's own envelopes all
    // matched.  Keep them inspectable, but out of the leak report.
    auto debris_begin = std::partition(
        leaked.begin(), leaked.end(),
        [](const UndeliveredMessage& m) { return !m.transport_dup; });
    transport_debris_.assign(debris_begin, leaked.end());
    leaked.erase(debris_begin, leaked.end());
    if (!leaked.empty()) {
      std::ostringstream msg;
      msg << "program finished with " << leaked.size()
          << " undelivered message" << (leaked.size() == 1 ? "" : "s") << ":";
      constexpr std::size_t kMaxListed = 20;
      for (std::size_t i = 0; i < leaked.size() && i < kMaxListed; ++i) {
        const UndeliveredMessage& m = leaked[i];
        msg << "\n  src " << m.src << " -> dst " << m.dst << " tag " << m.tag
            << " bytes " << m.bytes << " phase \"" << m.phase << "\"";
      }
      if (leaked.size() > kMaxListed) {
        msg << "\n  ... and " << (leaked.size() - kMaxListed) << " more";
      }
      throw Error(msg.str());
    }
  }
}

double Machine::critical_path_time() const {
  double worst = 0.0;
  for (double clock : final_clocks_) worst = std::max(worst, clock);
  return worst;
}

double Machine::max_peak_memory_words() const {
  i64 worst = 0;
  for (i64 bytes : peak_memory_) worst = std::max(worst, bytes);
  return static_cast<double>(worst) / 8.0;
}

double Machine::sync_clock_at_barrier(int rank, double clock) {
  barrier_clocks_[static_cast<std::size_t>(rank)] = clock;
  barrier_.arrive_and_wait();
  // The releasing participant reduced the slots to barrier_max_ (under the
  // barrier mutex, which every arrival passes through — so the value is
  // ordered with respect to each rank's slot write and this read).
  const double worst = barrier_max_;
  barrier_.arrive_and_wait();  // keep slots stable until everyone has read
  return worst;
}

}  // namespace camb
