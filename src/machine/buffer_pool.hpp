// buffer_pool.hpp — pooled, move-only message payloads.
//
// Every message the simulator carries used to be a freshly heap-allocated
// std::vector<double>; a stress sweep sends millions of them, so allocation
// was a first-order cost of the hot path.  A Buffer is a move-only payload
// whose storage is recycled through a per-rank free-list pool: destroying a
// Buffer returns its storage to the pool it was drawn from, and the next
// acquisition on that rank reuses it instead of touching the allocator.
//
// Ownership and hand-off rules:
//
//   * A Buffer drawn from (or adopted into) pool X returns its storage to X
//     when destroyed, *no matter which thread destroys it*.  This is the
//     cross-thread hand-off of the message path — rank A packs a payload,
//     rank B consumes and destroys it — and is why the pool's free list is
//     mutex-guarded even though acquisition is single-threaded per rank.
//   * Adopting a std::vector<double> (the implicit converting constructor)
//     is a move of the vector's storage, never a copy; the storage joins the
//     current thread's pool cycle.  Moving a Buffer out into a vector
//     (`take()` / the rvalue conversion) detaches the storage from the pool.
//   * Buffers are value-identical to the vectors they wrap: zeros(n) has
//     exactly the contents of std::vector<double>(n), so switching payload
//     types cannot move a single bit of any computed result.
//
// None of this is visible to communication accounting: a Buffer's size() is
// the word count, and words are counted exactly as before.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <mutex>
#include <vector>

#include "util/math.hpp"

namespace camb {

class BufferPool;

/// A move-only message payload backed by pooled storage.
class Buffer {
 public:
  using value_type = double;

  Buffer() = default;

  /// Adopt a vector's storage (a move, never a copy).  The storage joins the
  /// calling thread's current pool cycle, if one is installed.
  Buffer(std::vector<double> v);  // NOLINT(google-explicit-constructor)

  /// Literal payloads (`send(dst, tag, {1.0, 2.0})`).
  Buffer(std::initializer_list<double> init)
      : Buffer(std::vector<double>(init)) {}

  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(Buffer&& other) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer();

  /// A zero-filled n-word buffer from the current thread's pool (heap when
  /// no pool is installed).  Contents identical to std::vector<double>(n).
  static Buffer zeros(std::size_t words);

  /// A pooled copy of `words` doubles starting at `src` — the replacement
  /// for the pack-site idiom std::vector<double>(first, last).
  static Buffer copy_of(const double* src, std::size_t words);
  static Buffer copy_of(const std::vector<double>& v);

  /// Move the storage out, detaching it from the pool.  The Buffer is left
  /// empty.
  std::vector<double> take() &&;

  /// Rvalue-only conversion so `std::vector<double> v = ctx.recv(...)`
  /// stays a one-move assignment at every legacy call site.
  operator std::vector<double>() && { return std::move(*this).take(); }

  /// Read-only view of the storage as a vector (for APIs that want one).
  const std::vector<double>& vec() const { return storage_; }

  std::size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  double* data() { return storage_.data(); }
  const double* data() const { return storage_.data(); }
  double& operator[](std::size_t i) { return storage_[i]; }
  const double& operator[](std::size_t i) const { return storage_[i]; }
  double* begin() { return storage_.data(); }
  double* end() { return storage_.data() + storage_.size(); }
  const double* begin() const { return storage_.data(); }
  const double* end() const { return storage_.data() + storage_.size(); }

  friend bool operator==(const Buffer& a, const std::vector<double>& b) {
    return a.storage_ == b;
  }
  friend bool operator==(const std::vector<double>& a, const Buffer& b) {
    return b.storage_ == a;
  }
  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.storage_ == b.storage_;
  }

 private:
  friend class BufferPool;
  void release();

  std::vector<double> storage_;
  BufferPool* pool_ = nullptr;
};

/// A free list of payload storages.  One pool per rank (owned by the
/// Network); the rank's thread installs it as the thread's current pool for
/// the duration of the SPMD program (BufferPool::Scope), so every payload
/// packed on that rank draws from — and eventually returns to — its pool.
class BufferPool {
 public:
  /// Reuse / return accounting (for tests and the hot-path bench).
  struct Stats {
    i64 acquires = 0;      ///< zeros/copy_of acquisitions served
    i64 reuses = 0;        ///< acquisitions served from the free list
    i64 returns = 0;       ///< storages returned by ~Buffer
    i64 drops = 0;         ///< returns discarded because the list was full
    std::size_t free = 0;  ///< storages currently on the free list
  };

  /// Free-list cap: bounds idle memory per rank; overflow returns are
  /// simply freed.
  static constexpr std::size_t kMaxFree = 64;

  /// Payloads below this word count bypass the pool entirely (the static
  /// Buffer helpers go straight to the heap and ~Buffer frees rather than
  /// gives back).  For tiny payloads the allocator's thread-local fast path
  /// beats a shared free list plus its cross-thread mutex; the pool's win —
  /// dodging page faults on fresh large blocks — only exists for payloads
  /// of real size.  (2 KiB: measured crossover on the perturbed stress
  /// sweep, whose payloads sit just below it, vs the compute sweep, whose
  /// block payloads sit far above.)
  static constexpr std::size_t kMinPooledWords = 256;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A zero-filled n-word buffer owned by this pool.
  Buffer zeros(std::size_t words);
  /// A copy of `words` doubles owned by this pool.
  Buffer copy_of(const double* src, std::size_t words);

  /// Return a storage to the free list (called by ~Buffer, possibly from a
  /// different thread than the one that acquired it).
  void give(std::vector<double>&& storage);

  Stats stats() const;
  /// Drop every free storage (tests that want a cold pool).
  void trim();

  /// The calling thread's current pool (nullptr outside an SPMD program).
  static BufferPool* current();

  /// RAII installation of a thread's current pool.
  class Scope {
   public:
    explicit Scope(BufferPool* pool);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    BufferPool* prev_;
  };

 private:
  /// Pop a free storage, or an empty vector on a miss.  Lock held briefly;
  /// the (potentially large) fill happens outside the critical section.
  std::vector<double> pop_free();

  mutable std::mutex mutex_;
  std::vector<std::vector<double>> free_;
  Stats stats_;
};

}  // namespace camb
