// buffer_pool.hpp — pooled, move-only, width-tagged message payloads.
//
// Every message the simulator carries used to be a freshly heap-allocated
// std::vector<double>; a stress sweep sends millions of them, so allocation
// was a first-order cost of the hot path.  A Buffer is a move-only payload
// whose storage is recycled through a per-rank free-list pool: destroying a
// Buffer returns its storage to the pool it was drawn from, and the next
// acquisition on that rank reuses it instead of touching the allocator.
//
// Since the scalar-substrate refactor a Buffer additionally carries the
// element width of its payload.  Storage stays a vector of 8-byte words
// (double-sized slots — the pool recycles raw capacity, not types); typed
// payloads are packed into it by memcpy with the trailing word zero-padded,
// and the pair (elems_, elem_bytes_) records what the bytes mean.  The
// accounting quantity is byte_size() = elems · elem_bytes: exact for every
// dtype, including half-word f32 payloads.  For double payloads
// elems == size() and byte_size() == 8 · size(), so the f64 path — and every
// committed golden record — is bit- and count-identical to before.
//
// Ownership and hand-off rules:
//
//   * A Buffer drawn from (or adopted into) pool X returns its storage to X
//     when destroyed, *no matter which thread destroys it*.  This is the
//     cross-thread hand-off of the message path — rank A packs a payload,
//     rank B consumes and destroys it — and is why the pool's free lists are
//     mutex-guarded even though acquisition is single-threaded per rank.
//   * Adopting a std::vector<double> (the implicit converting constructor)
//     is a move of the vector's storage, never a copy; the storage joins the
//     current thread's pool cycle.  Moving a Buffer out into a vector
//     (`take()` / the rvalue conversion) detaches the storage from the pool.
//   * Buffers are value-identical to the vectors they wrap: zeros(n) has
//     exactly the contents of std::vector<double>(n), so switching payload
//     types cannot move a single bit of any computed result.
//
// The pool's free lists are bucketed by byte-size class (bit-ceil of the
// storage capacity in bytes), so a rank juggling small control messages and
// large block panels reuses like-for-like capacity instead of thrashing one
// list.  A reused storage may still be resized by the fill (assign/resize
// handle that), so a class hit is an optimization, never a correctness
// requirement.
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <mutex>
#include <type_traits>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace camb {

class BufferPool;

/// A move-only message payload backed by pooled storage, tagged with the
/// element width of its contents.
class Buffer {
 public:
  using value_type = double;

  Buffer() = default;

  /// Adopt a vector's storage (a move, never a copy).  The storage joins the
  /// calling thread's current pool cycle, if one is installed.
  Buffer(std::vector<double> v);  // NOLINT(google-explicit-constructor)

  /// Literal payloads (`send(dst, tag, {1.0, 2.0})`).
  Buffer(std::initializer_list<double> init)
      : Buffer(std::vector<double>(init)) {}

  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(Buffer&& other) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer();

  /// A zero-filled n-word buffer from the current thread's pool (heap when
  /// no pool is installed).  Contents identical to std::vector<double>(n).
  static Buffer zeros(std::size_t words);

  /// A pooled copy of `words` doubles starting at `src` — the replacement
  /// for the pack-site idiom std::vector<double>(first, last).
  static Buffer copy_of(const double* src, std::size_t words);
  static Buffer copy_of(const std::vector<double>& v);

  /// A pooled copy of n elements of scalar T, packed by memcpy into word
  /// storage with the trailing word zero-padded (so storage contents — and
  /// therefore transport checksums — are a deterministic function of the
  /// payload).  For T = double this is exactly copy_of.
  template <typename T>
  static Buffer pack(const T* src, i64 n);
  template <typename T>
  static Buffer pack(const std::vector<T>& v) {
    return pack<T>(v.data(), static_cast<i64>(v.size()));
  }

  /// A zero-filled buffer of n elements of scalar T (additive identity for
  /// every supported scalar is all-zero bytes).
  template <typename T>
  static Buffer pack_zeros(i64 n);

  /// A pooled copy of this buffer, width tags included (the dup/corrupt
  /// transport paths must forward the tags or receiver-side accounting and
  /// unpacking would misread the copy).
  Buffer clone() const;

  /// Move the storage out, detaching it from the pool.  The Buffer is left
  /// empty.
  std::vector<double> take() &&;

  /// Rvalue-only conversion so `std::vector<double> v = ctx.recv(...)`
  /// stays a one-move assignment at every legacy call site.
  operator std::vector<double>() && { return std::move(*this).take(); }

  /// Typed take: move the storage out for double (zero copy), unpack by
  /// memcpy for every other scalar.  Width tag is checked either way.
  template <typename T>
  std::vector<T> take_as() && {
    if constexpr (std::is_same_v<T, double>) {
      CAMB_CHECK_MSG(elem_bytes_ == 8,
                     "buffer width tag does not match requested scalar");
      return std::move(*this).take();
    } else {
      return unpack<T>();
    }
  }

  /// Adopt a typed vector as a payload.  For double this is the classic
  /// storage move (zero copy); other scalars are packed by memcpy.
  template <typename T>
  static Buffer adopt(std::vector<T>&& v) {
    if constexpr (std::is_same_v<T, double>) {
      return Buffer(std::move(v));
    } else {
      return pack<T>(v.data(), static_cast<i64>(v.size()));
    }
  }

  /// Copy the payload out into `dst` (must hold elems<T>() elements) with a
  /// single memcpy — the typed replacement for std::copy out of a buffer.
  template <typename T>
  void unpack_into(T* dst) const {
    CAMB_CHECK_MSG(elem_bytes_ == static_cast<i64>(sizeof(T)),
                   "buffer width tag does not match requested scalar");
    std::memcpy(dst, storage_.data(),
                static_cast<std::size_t>(elems_) * sizeof(T));
  }

  /// Copy the payload out as n elements of T (memcpy — no aliasing games).
  /// Requires the buffer's width tag to match sizeof(T).
  template <typename T>
  std::vector<T> unpack() const {
    CAMB_CHECK_MSG(elem_bytes_ == static_cast<i64>(sizeof(T)),
                   "buffer width tag does not match requested scalar");
    std::vector<T> out(static_cast<std::size_t>(elems_));
    std::memcpy(out.data(), storage_.data(),
                static_cast<std::size_t>(elems_) * sizeof(T));
    return out;
  }

  /// Element count, checked against the expected scalar width.
  template <typename T>
  i64 elems() const {
    CAMB_CHECK_MSG(elem_bytes_ == static_cast<i64>(sizeof(T)),
                   "buffer width tag does not match requested scalar");
    return elems_;
  }

  /// Read-only view of the storage as a vector (for APIs that want one).
  const std::vector<double>& vec() const { return storage_; }

  /// Storage size in 8-byte words (== element count for double payloads).
  std::size_t size() const { return storage_.size(); }
  /// Exact payload size in bytes: elems · elem_bytes.  This is the quantity
  /// the communication accounting records.
  i64 byte_size() const { return elems_ * elem_bytes_; }
  i64 elem_count() const { return elems_; }
  i64 elem_bytes() const { return elem_bytes_; }

  bool empty() const { return storage_.empty(); }
  double* data() { return storage_.data(); }
  const double* data() const { return storage_.data(); }
  double& operator[](std::size_t i) { return storage_[i]; }
  const double& operator[](std::size_t i) const { return storage_[i]; }
  double* begin() { return storage_.data(); }
  double* end() { return storage_.data() + storage_.size(); }
  const double* begin() const { return storage_.data(); }
  const double* end() const { return storage_.data() + storage_.size(); }

  friend bool operator==(const Buffer& a, const std::vector<double>& b) {
    return a.storage_ == b;
  }
  friend bool operator==(const std::vector<double>& a, const Buffer& b) {
    return b.storage_ == a;
  }
  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.storage_ == b.storage_;
  }

 private:
  friend class BufferPool;
  void release();

  std::vector<double> storage_;
  BufferPool* pool_ = nullptr;
  i64 elems_ = 0;
  i64 elem_bytes_ = 8;
};

/// Free lists of payload storages, bucketed by byte-size class.  One pool
/// per rank (owned by the Network); the rank's thread installs it as the
/// thread's current pool for the duration of the SPMD program
/// (BufferPool::Scope), so every payload packed on that rank draws from —
/// and eventually returns to — its pool.
class BufferPool {
 public:
  /// Reuse / return accounting (for tests and the hot-path bench).
  struct Stats {
    i64 acquires = 0;      ///< zeros/copy_of/pack acquisitions served
    i64 reuses = 0;        ///< acquisitions served from a free list
    i64 returns = 0;       ///< storages returned by ~Buffer
    i64 drops = 0;         ///< returns discarded because the bucket was full
    std::size_t free = 0;  ///< storages currently across all free lists
  };

  /// Per-bucket free-list cap: bounds idle memory per rank per size class;
  /// overflow returns are simply freed.
  static constexpr std::size_t kMaxFree = 64;

  /// Payloads below this word count bypass the pool entirely (the static
  /// Buffer helpers go straight to the heap and ~Buffer frees rather than
  /// gives back).  For tiny payloads the allocator's thread-local fast path
  /// beats a shared free list plus its cross-thread mutex; the pool's win —
  /// dodging page faults on fresh large blocks — only exists for payloads
  /// of real size.  (2 KiB: measured crossover on the perturbed stress
  /// sweep, whose payloads sit just below it, vs the compute sweep, whose
  /// block payloads sit far above.)
  static constexpr std::size_t kMinPooledWords = 256;
  static constexpr std::size_t kMinPooledBytes = kMinPooledWords * 8;

  /// Bucket classes: class c holds storages whose capacity's bit-ceil is
  /// 2^c words.  Class 8 (2 KiB) is the pooling threshold; everything at or
  /// beyond class 24 (128 MiB) shares the top bucket.
  static constexpr int kMinClass = 8;
  static constexpr int kMaxClass = 24;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A zero-filled n-word buffer owned by this pool.
  Buffer zeros(std::size_t words);
  /// A copy of `words` doubles owned by this pool.
  Buffer copy_of(const double* src, std::size_t words);
  /// A packed copy of `nbytes` raw payload bytes owned by this pool; the
  /// trailing storage word is zero-padded before the copy.
  Buffer bytes_copy(const void* src, i64 nbytes);
  /// Zero-filled storage covering `nbytes` payload bytes.
  Buffer bytes_zeros(i64 nbytes);

  /// Return a storage to its size class (called by ~Buffer, possibly from a
  /// different thread than the one that acquired it).
  void give(std::vector<double>&& storage);

  Stats stats() const;
  /// Drop every free storage (tests that want a cold pool).
  void trim();

  /// The calling thread's current pool (nullptr outside an SPMD program).
  static BufferPool* current();

  /// RAII installation of a thread's current pool.
  class Scope {
   public:
    explicit Scope(BufferPool* pool);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    BufferPool* prev_;
  };

 private:
  /// Bucket index for a storage of `words` capacity (clamped to the range).
  static int size_class(std::size_t words);

  /// Pop a free storage from the class serving `words`, or an empty vector
  /// on a miss.  Lock held briefly; the (potentially large) fill happens
  /// outside the critical section.
  std::vector<double> pop_free(std::size_t words);

  mutable std::mutex mutex_;
  std::array<std::vector<std::vector<double>>, kMaxClass - kMinClass + 1>
      free_;
  Stats stats_;
};

/// Read-only typed view of a received payload.  For double it aliases the
/// buffer's storage directly (storage *is* double — the zero-copy hot path);
/// for other scalars it unpacks once by memcpy and owns the copy.
template <typename T>
class TypedView {
 public:
  explicit TypedView(const Buffer& b) {
    if constexpr (std::is_same_v<T, double>) {
      ptr_ = b.data();
      n_ = b.elems<double>();
    } else {
      copy_ = b.unpack<T>();
      ptr_ = copy_.data();
      n_ = static_cast<i64>(copy_.size());
    }
  }
  const T* data() const { return ptr_; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + n_; }
  i64 size() const { return n_; }
  const T& operator[](i64 i) const { return ptr_[static_cast<std::size_t>(i)]; }

 private:
  std::vector<T> copy_;
  const T* ptr_ = nullptr;
  i64 n_ = 0;
};

template <typename T>
Buffer Buffer::pack(const T* src, i64 n) {
  static_assert(std::is_trivially_copyable_v<T>,
                "Buffer payloads are raw bytes");
  CAMB_CHECK(n >= 0);
  if constexpr (sizeof(T) == sizeof(double) && std::is_same_v<T, double>) {
    return copy_of(src, static_cast<std::size_t>(n));
  } else {
    const i64 nbytes = n * static_cast<i64>(sizeof(T));
    if (static_cast<std::size_t>(nbytes) >= BufferPool::kMinPooledBytes) {
      if (BufferPool* pool = BufferPool::current()) {
        Buffer out = pool->bytes_copy(src, nbytes);
        out.elems_ = n;
        out.elem_bytes_ = static_cast<i64>(sizeof(T));
        return out;
      }
    }
    std::vector<double> storage(
        static_cast<std::size_t>(ceil_div(nbytes, 8)), 0.0);
    std::memcpy(storage.data(), src, static_cast<std::size_t>(nbytes));
    Buffer out(std::move(storage));
    out.elems_ = n;
    out.elem_bytes_ = static_cast<i64>(sizeof(T));
    return out;
  }
}

template <typename T>
Buffer Buffer::pack_zeros(i64 n) {
  static_assert(std::is_trivially_copyable_v<T>,
                "Buffer payloads are raw bytes");
  CAMB_CHECK(n >= 0);
  if constexpr (sizeof(T) == sizeof(double) && std::is_same_v<T, double>) {
    return zeros(static_cast<std::size_t>(n));
  } else {
    const i64 nbytes = n * static_cast<i64>(sizeof(T));
    Buffer out = zeros(static_cast<std::size_t>(ceil_div(nbytes, 8)));
    out.elems_ = n;
    out.elem_bytes_ = static_cast<i64>(sizeof(T));
    return out;
  }
}

}  // namespace camb
