#include "machine/worker_pool.hpp"

namespace camb {

namespace {
// Set while a pool worker runs a task, so a nested Machine::run on this
// thread knows the pool is not available to it.
thread_local bool tl_is_pool_worker = false;
}  // namespace

WorkerPool& WorkerPool::instance() {
  static WorkerPool pool;
  return pool;
}

bool WorkerPool::on_pool_worker() { return tl_is_pool_worker; }

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    exit_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkerPool::ensure_workers(int p) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (workers_.size() < static_cast<std::size_t>(p)) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void WorkerPool::worker_loop() {
  tl_is_pool_worker = true;
  for (;;) {
    int arg = -1;
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return exit_ || (task_ != nullptr && next_arg_ < total_);
      });
      if (exit_) return;
      arg = next_arg_++;
      task = task_;
    }
    (*task)(arg);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(int p, const std::function<void(int)>& task) {
  if (p <= 0) return;
  // A pool worker (nested run) or a concurrent run cannot borrow the pool;
  // plain threads are always correct.
  if (tl_is_pool_worker || !serial_mutex_.try_lock()) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) threads.emplace_back([&task, r] { task(r); });
    for (auto& t : threads) t.join();
    return;
  }
  std::lock_guard<std::mutex> serial(serial_mutex_, std::adopt_lock);
  ensure_workers(p);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    total_ = p;
    next_arg_ = 0;
    remaining_ = p;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    task_ = nullptr;
    total_ = 0;
  }
}

}  // namespace camb
