// comm_stats.hpp — exact communication accounting for the simulated machine.
//
// The paper's claims are statements about *words of data communicated per
// processor along the critical path* in the α-β-γ model (§3.1).  Every send
// through the network is recorded here, per rank and per named phase, so that
// the benchmark harness can compare measured communication of an executed
// algorithm against the analytic lower bound word-for-word.
//
// Conventions:
//  * one "word" = one element of the payload (double);
//  * per-rank counters are only ever written by that rank's thread, so they
//    are plain (cache-line padded) fields, not atomics;
//  * the bandwidth cost of an algorithm in the α-β model is reported as the
//    maximum over ranks of received words (for the symmetric, bidirectional-
//    exchange collectives used here, sent == received per rank, matching the
//    (1 - 1/p)w accounting of §5.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace camb {

/// Counters for one rank within one phase.
///
/// Since the scalar-substrate refactor the canonical stored unit is *bytes*:
/// every payload size is an exact integer of bytes regardless of element
/// width, so the counters never round.  Words (the paper's unit, normalized
/// to 8 bytes) are exposed as derived accessors returning double — exact for
/// every supported dtype because all byte totals are multiples of 4, and
/// halves are exactly representable.  For pure-f64 runs words_sent() etc.
/// are integer-valued and bit-compare equal to the pre-refactor counts.
struct PhaseCounters {
  i64 bytes_sent = 0;
  i64 bytes_received = 0;
  i64 messages_sent = 0;
  i64 messages_received = 0;

  double words_sent() const { return static_cast<double>(bytes_sent) / 8.0; }
  double words_received() const {
    return static_cast<double>(bytes_received) / 8.0;
  }

  PhaseCounters& operator+=(const PhaseCounters& other) {
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    messages_sent += other.messages_sent;
    messages_received += other.messages_received;
    return *this;
  }
};

/// α-β cost of a set of counters: latency α per message plus bandwidth β per
/// word, using the max(sent, received) convention for bidirectional links.
struct AlphaBeta {
  double alpha = 1.0;  ///< per-message latency cost
  double beta = 1.0;   ///< per-word bandwidth cost

  double cost(const PhaseCounters& c) const {
    const double msgs =
        static_cast<double>(std::max(c.messages_sent, c.messages_received));
    const double words = std::max(c.words_sent(), c.words_received());
    return alpha * msgs + beta * words;
  }
};

/// Reliable-transport event counters for one rank (machine/reliable.hpp).
/// These are *event* counts, not word counts — the word tax of retransmits
/// already lands in the "transport" phase counters — so recovery summaries
/// can print them without re-deriving from the trace.  Sender-side fields
/// (retransmits, retransmitted_words, dup_copies) are written by the
/// sending rank's thread; receiver-side fields (corrupt_discards,
/// dup_discards, nacks, acks) by the receiving rank's; corrections by the
/// runner after the machine stops — the same single-writer discipline as
/// the phase counters.
struct TransportCounters {
  i64 retransmits = 0;         ///< extra on-wire copies (dropped + corrupt)
  i64 retransmitted_bytes = 0; ///< bytes those extra copies carried
  i64 dup_copies = 0;          ///< injected duplicates put on the wire
  i64 corrupt_discards = 0;    ///< copies this rank rejected on checksum
  i64 dup_discards = 0;        ///< duplicates this rank discarded silently
  i64 nacks = 0;               ///< zero-word rejections this rank sent back
  i64 acks = 0;                ///< clean deliveries this rank acknowledged
  i64 corrections = 0;         ///< ABFT single-error corrections applied

  TransportCounters& operator+=(const TransportCounters& other) {
    retransmits += other.retransmits;
    retransmitted_bytes += other.retransmitted_bytes;
    dup_copies += other.dup_copies;
    corrupt_discards += other.corrupt_discards;
    dup_discards += other.dup_discards;
    nacks += other.nacks;
    acks += other.acks;
    corrections += other.corrections;
    return *this;
  }
};

/// Per-rank, per-phase communication statistics for one machine run.
class CommStats {
 public:
  explicit CommStats(int nprocs);

  int nprocs() const { return nprocs_; }

  /// Set the active phase label for a rank (e.g. "allgather_A").  Subsequent
  /// traffic by that rank is attributed to this phase.  Called by the rank's
  /// own thread only.
  void set_phase(int rank, std::string phase);
  const std::string& phase(int rank) const;

  /// Record a message. Called from the sender's thread; the receive half is
  /// attributed to the receiver's currently active phase at receive time via
  /// record_receive (mailbox bookkeeping keeps both ends exact).
  void record_send(int src, i64 bytes);
  void record_receive(int dst, i64 bytes);

  /// Totals across all phases for one rank.
  PhaseCounters rank_total(int rank) const;

  /// Counters for one rank in one phase (zero if the phase never ran).
  PhaseCounters rank_phase(int rank, const std::string& phase) const;

  /// Max over ranks of received words — the bandwidth-cost word count used to
  /// compare against the lower bounds.  Exact (integer or half-integer) for
  /// every supported dtype.
  double critical_path_received_words() const;

  /// Max over ranks of sent words.
  double critical_path_sent_words() const;

  /// Max over ranks of α-β cost of the rank's total counters.
  double critical_path_cost(const AlphaBeta& machine) const;

  /// Sum over ranks of words sent (total traffic volume on the network).
  double total_words_sent() const;

  /// Max over ranks of received words within a single named phase.
  double phase_critical_path_received_words(const std::string& phase) const;

  /// All phase names that recorded any traffic, in first-use order.
  std::vector<std::string> phases() const;

  /// Reliable-transport counters for one rank.  The mutable accessor follows
  /// the single-writer rules documented on TransportCounters.
  TransportCounters& transport_mut(int rank);
  const TransportCounters& transport(int rank) const;

  /// Sum of transport counters over all ranks (after the run).
  TransportCounters transport_total() const;

  /// Reset all counters (phases keep their labels).
  void reset();

 private:
  struct alignas(64) RankSlot {
    std::string active_phase = "default";
    std::map<std::string, PhaseCounters> by_phase;
    TransportCounters transport;
  };
  int nprocs_;
  std::vector<RankSlot> slots_;
  std::vector<std::string> phase_order_;  // guarded by phase_mutex_
  mutable std::mutex phase_mutex_;

  void note_phase_name(const std::string& phase);
};

}  // namespace camb
