// worker_pool.hpp — reusable OS threads for SPMD rank execution.
//
// A stress sweep constructs thousands of Machines, and every run used to pay
// P pthread create/join pairs — the dominant cost of small runs.  The pool
// keeps rank workers alive across Machine::run calls: a run dispatches its
// P rank bodies to idle workers (growing the pool to P on demand) and
// blocks until all of them finish.  Worker threads are real OS threads, so
// every concurrency property of the simulator (mailbox blocking, barrier
// waits, TSan analysis) is unchanged — only thread *creation* is amortized.
//
// Deadlock-freedom: rank bodies synchronize with each other, so all P tasks
// of a run must be able to execute concurrently.  ensure_workers(P)
// guarantees at least P workers exist before any task is claimed; a free
// worker always remains for every unclaimed task (workers ≥ P ≥ running +
// unclaimed), so every rank eventually runs.
//
// Reentrancy: a rank body that itself runs a nested Machine (or a second
// thread racing into Machine::run) cannot use the pool — the outer run
// holds it.  Those callers fall back to plain std::thread spawning, which
// is always correct, just slower.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace camb {

class WorkerPool {
 public:
  /// The process-wide pool (workers are shared by every Machine).
  static WorkerPool& instance();

  /// Run task(0) .. task(p-1), each on its own worker thread, and block
  /// until all have returned.  Tasks must not throw (Machine::run's rank
  /// lambda catches everything).  Falls back to plain threads when the pool
  /// is unavailable (nested or concurrent call).
  void run(int p, const std::function<void(int)>& task);

  /// True on a thread owned by the pool (i.e. inside a pooled task).  Lets
  /// tests observe whether a run used the pool or the plain-thread fallback.
  static bool on_pool_worker();

  ~WorkerPool();

 private:
  WorkerPool() = default;

  void ensure_workers(int p);
  void worker_loop();

  /// Serializes whole runs; try-locked so a nested/concurrent run degrades
  /// to plain threads instead of deadlocking.
  std::mutex serial_mutex_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(int)>* task_ = nullptr;  ///< current run's task
  int total_ = 0;      ///< ranks in the current run
  int next_arg_ = 0;   ///< next unclaimed rank
  int remaining_ = 0;  ///< tasks not yet finished
  bool exit_ = false;
};

}  // namespace camb
