// fiber.hpp — cooperatively scheduled stackful fibers for rank execution.
//
// Thread-per-rank execution caps executed validation at P ≈ 512: beyond
// that, OS thread creation and kernel scheduling dominate, and the regimes
// where the paper's bounds bite (P in the tens of thousands) stay out of
// reach.  A Fiber is a stackful execution context — its own mmap'd,
// guard-paged stack plus a saved register frame — that costs a context
// *switch* instead of a context *thread*: a FiberScheduler multiplexes all
// P rank bodies onto a handful of worker threads drawn from the process
// WorkerPool, so a run at P = 65,536 needs pool-width OS threads.
//
// Yield points: the only places a rank body can block are the mailbox waits
// (recv / recv_timed), the machine barrier, and everything built on them
// (collective rounds, checkpoint commits, rollback sync).  Each of those
// sites calls fiber_aware_wait / Fiber::park_on: on a fiber it parks the
// fiber and switches back to the scheduler; on a plain thread it falls back
// to the original condition-variable wait.  Nothing else in a rank body
// yields, so code between communication calls runs exactly as it does under
// threads.
//
// Determinism contract: simulation results (per-rank word/message counts,
// logical clocks, output bits) are invariant to the interleaving of rank
// bodies by construction — mailbox matching is FIFO per (src, tag) envelope,
// crash positions are program-order facts, and all "time" is the logical
// α-β clock, never wall clock.  The fiber scheduler therefore does not need
// a deterministic schedule to reproduce results; the interleave_seed knob
// exists to *fuzz* that contract (seeded random run-queue picks plus forced
// yields after each send/receive) and is pinned by test_fiber_scheduler.
//
// Parking protocol (lost-wakeup freedom): a parking fiber publishes
// kWakeParking and enlists itself on the wait list *while still holding the
// condition's mutex*; notifiers take the wait list and exchange each entry
// to kWakeNotified; the scheduler, after switching away from the fiber,
// exchanges to kWakeParked.  Whichever side observes the other's value
// requeues the fiber — exactly one of them does, no matter how the two
// exchanges interleave.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace camb {

class BufferPool;
class Fiber;
class FiberScheduler;
class FiberWaitList;

/// Which execution substrate Machine::run puts under the rank bodies.
enum class SchedulerKind {
  kDefault,  ///< resolve via set_default_scheduler_kind / $CAMB_SCHEDULER
  kThreads,  ///< one WorkerPool OS thread per rank (the original mode)
  kFibers,   ///< P fibers multiplexed on pool-width threads
};

/// The process default used when a spec says kDefault: an explicit
/// set_default_scheduler_kind wins, else $CAMB_SCHEDULER ("threads" /
/// "fibers"), else kThreads.
SchedulerKind default_scheduler_kind();
/// Override the process default (pass kDefault to fall back to the env).
void set_default_scheduler_kind(SchedulerKind kind);
/// kDefault -> default_scheduler_kind(), anything else unchanged.
SchedulerKind resolve_scheduler_kind(SchedulerKind kind);
/// Parse "threads" / "fibers" (throws Error on anything else).
SchedulerKind scheduler_kind_from_name(const std::string& name);
const char* scheduler_kind_name(SchedulerKind kind);

/// How to run a Machine's rank bodies.  workers / stack_bytes of 0 mean
/// "pick a default" (hardware concurrency capped at the fiber count;
/// $CAMB_FIBER_STACK_KB or 256 KiB).  A non-zero interleave_seed turns on
/// chaos mode: one worker, seeded random run-queue picks, and a forced
/// yield after every send and receive.
struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kDefault;
  int workers = 0;
  std::size_t stack_bytes = 0;
  std::uint64_t interleave_seed = 0;
};

/// The low-level saved state of one execution context (a fiber, or the
/// worker-thread frame the fiber switches back to).
struct FiberContext {
  void* sp = nullptr;            ///< saved stack pointer (asm backend)
  void* uctx = nullptr;          ///< ucontext_t* (portable backend)
  void* stack_base = nullptr;    ///< lowest usable stack address
  std::size_t stack_size = 0;
  void* asan_fake = nullptr;     ///< ASan fake-stack handle across switches
  void* tsan_fiber = nullptr;    ///< TSan fiber identity
  /// The C++ runtime's per-thread exception globals (__cxa_eh_globals: the
  /// caught-exception stack + uncaught count).  Rank bodies communicate —
  /// and therefore park — inside catch blocks (rollback's round_sync), so
  /// this state must travel with the fiber, not the OS thread.
  unsigned char eh_save[16] = {};
};

/// Fibers a notifier may need to wake.  Every blocking site owns one next
/// to its condition_variable; add() must be called with the site's mutex
/// held (park_on does), which is what makes the maybe_waiters_ fast path
/// race-free for notifiers that notify after releasing that mutex.
class FiberWaitList {
 public:
  void add(Fiber* fiber);
  void notify_all();

 private:
  std::mutex mutex_;
  std::vector<Fiber*> waiters_;
  std::atomic<bool> maybe_waiters_{false};
};

/// One fiber's stack placement, handed out by the scheduler.  Below the
/// packed-stack threshold every fiber gets a dedicated mapping with its own
/// guard page (owned — munmapped as soon as the fiber finishes).  Above it,
/// per-fiber mappings would exhaust the kernel's VMA budget
/// (vm.max_map_count ≈ 64 Ki, two VMAs per guarded stack), so stacks are
/// packed into shared slabs guarded only at the slab base; a slab lives
/// until the scheduler is destroyed, and finished fibers return their pages
/// with madvise instead of munmap.  In lieu of per-stack guard pages each
/// packed stack carries a canary word at its base, checked at completion,
/// so an overflow into a neighbor is detected rather than silent.
struct FiberStack {
  void* base = nullptr;        ///< lowest usable address
  std::size_t size = 0;        ///< usable bytes
  void* alloc_base = nullptr;  ///< mapping to munmap when owned
  std::size_t alloc_size = 0;
  bool owned = false;
};

/// One cooperatively scheduled rank body.  Construction and scheduling are
/// FiberScheduler internals; rank-side code only meets the static calls.
class Fiber {
 public:
  /// The fiber running on this thread, or nullptr on a plain thread.
  static Fiber* current();

  /// Chaos-mode yield point (no-op on plain threads and outside chaos
  /// mode).  Called by RankCtx after every send and receive.
  static void maybe_preempt();

  int index() const { return index_; }

  /// Per-fiber slot behind BufferPool::current(): the installed pool must
  /// follow the fiber across worker threads, not stay with the thread.
  BufferPool*& pool_slot() { return pool_; }

  /// Park this fiber on `waiters` until notified.  `lock` (the blocking
  /// site's mutex, currently held) is released while parked and reacquired
  /// before returning.  Callers re-check their predicate in a loop, exactly
  /// as with condition_variable::wait.
  void park_on(FiberWaitList& waiters, std::unique_lock<std::mutex>& lock);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

 private:
  friend class FiberScheduler;
  friend class FiberWaitList;

  enum WakeState : int {
    kWakeRunning = 0,  ///< not parked, nothing pending
    kWakeParking,      ///< announced intent to park, switch still in flight
    kWakeParked,       ///< scheduler finished the switch; safe to requeue
    kWakeNotified,     ///< a notifier fired; whoever saw it requeues
  };

  enum class Phase { kRunnable, kRunning, kParking, kParked, kYielded, kDone };

  Fiber(FiberScheduler& sched, int index, const FiberStack& stack, bool chaos);

  void preempt();
  void run_body();
  void yield_to_scheduler(Phase why);
  void release_stack();
  /// Packed-slab stacks only: verify the canary word at the stack base is
  /// intact and record an Error into error_ if not.  Called when the fiber
  /// completes, before its pages are returned to the kernel.
  void check_stack_canary();

  FiberScheduler& sched_;
  int index_;
  bool chaos_;
  std::atomic<int> wake_{kWakeRunning};
  Phase phase_ = Phase::kRunnable;
  BufferPool* pool_ = nullptr;
  FiberContext ctx_;
  FiberContext* ret_ = nullptr;  ///< worker frame to switch back to
  std::exception_ptr error_;
  void* stack_alloc_ = nullptr;  ///< mmap base (guard page + stack)
  std::size_t stack_alloc_size_ = 0;
  bool stack_owned_ = true;  ///< false for packed slab slices

  friend void camb_fiber_start(Fiber* fiber);
};

/// Runs n rank bodies as fibers on WorkerPool threads and blocks until all
/// finish.  Unlike thread-per-rank execution — which silently hangs — a run
/// where every live fiber is parked with nothing runnable is detected and
/// reported as an Error naming the parked ranks.
class FiberScheduler {
 public:
  struct Options {
    int workers = 0;
    std::size_t stack_bytes = 0;
    std::uint64_t interleave_seed = 0;
  };

  static void run(int nfibers, const std::function<void(int)>& body,
                  const Options& opts);
  static void run(int nfibers, const std::function<void(int)>& body);

 private:
  friend class Fiber;
  friend class FiberWaitList;

  FiberScheduler(int nfibers, const std::function<void(int)>& body,
                 const Options& opts);
  ~FiberScheduler();

  void execute();
  void worker_loop();
  void enqueue(Fiber* fiber);
  Fiber* take_next();  // under mutex_; seeded random pick in chaos mode

  /// Carve out one fiber stack (construction-time, serial).  Dedicated
  /// guarded mapping below the packed threshold, slab slice above it.
  FiberStack allocate_stack(std::size_t stack_bytes);

  const std::function<void(int)>& body_;
  Options opts_;
  bool chaos_ = false;
  std::vector<Fiber*> fibers_;

  bool packed_stacks_ = false;  ///< huge-P mode: slab-packed stacks
  std::vector<std::pair<void*, std::size_t>> slabs_;  ///< (base, bytes)
  unsigned char* slab_cursor_ = nullptr;
  std::size_t slab_left_ = 0;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Fiber*> runq_;
  int running_ = 0;   ///< fibers currently on a worker
  int live_ = 0;      ///< fibers not yet done
  bool deadlock_ = false;
  std::uint64_t pick_state_ = 0;  ///< chaos-mode splitmix64 stream
};

/// The shape every blocking site uses: wait until pred() holds, yielding to
/// the fiber scheduler when called on a fiber and falling back to the plain
/// condition-variable wait on an OS thread.  `lock` holds the mutex that
/// guards pred's state; `waiters` is the site's FiberWaitList, notified by
/// the same code paths that notify `cv`.
template <typename Pred>
void fiber_aware_wait(std::unique_lock<std::mutex>& lock,
                      std::condition_variable& cv, FiberWaitList& waiters,
                      Pred pred) {
  Fiber* fiber = Fiber::current();
  if (fiber == nullptr) {
    cv.wait(lock, pred);
    return;
  }
  while (!pred()) fiber->park_on(waiters, lock);
}

}  // namespace camb
