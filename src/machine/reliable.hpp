// reliable.hpp — the opt-in reliable transport over the counted network.
//
// The SDC fault class (faults.hpp: seeded message drop, duplication, and
// payload bit-flip events) models a network that is no longer trustworthy at
// the word level.  This layer restores exactly-once, uncorrupted delivery on
// top of it, the way real interconnects and MPI layers do — checksummed
// envelopes, acknowledgements, and timeout-driven retransmission — while
// keeping every cost observable and every decision deterministic:
//
//   * every counted send carries a seeded 64-bit checksum over its payload;
//   * a dropped copy is retransmitted after a timeout that doubles per
//     attempt (the same exponential-backoff latency schedule the transient-
//     retry path uses, charged to the sender's logical clock);
//   * a corrupted copy reaches the receiver, fails checksum verification,
//     and is discarded with a zero-word nack (accounted like the heartbeat
//     probes: messages, never words, in the dedicated "transport" phase);
//     the retransmit follows in the same envelope, so per-envelope FIFO
//     order — the only order tag matching can observe — is preserved;
//   * a duplicated copy is flagged in its envelope and discarded free of
//     charge at the receiver (the wire words were already charged to the
//     sender); a duplicate still parked in a mailbox at run end is benign
//     transport debris, not a program leak;
//   * positive acks are implicit in the synchronous model (the sender's
//     timeout window closing without a nack *is* the ack), so healing adds
//     words only for copies that actually hit the wire.
//
// Accounting invariant: all transport tax lands in the "transport" phase
// (kPhaseTransport), so the algorithm phases of a faulted run stay word-
// exact to the fault-free run, and the tax itself is pinned exactly by
// coll::predicted_transport_phase replaying the plan against the send log.
// When the retransmit budget runs out the send surfaces as a TransportError
// naming the envelope — never a hang, never a silently wrong answer.
#pragma once

#include <cstdint>
#include <string>

#include "machine/buffer_pool.hpp"
#include "util/error.hpp"

namespace camb {

/// Phase label under which all retransmit/discard/nack tax is accounted.
inline constexpr const char* kPhaseTransport = "transport";

/// Thrown by the transport when a send exhausts its retransmit budget
/// (faults.hpp max_transport_retries): the named, structured give-up path.
/// The message reports the configured budget and the exponential-backoff
/// schedule the copies actually waited through, so an exhaustion report is
/// actionable (raise max_transport_retries, or fix the loss rate).
class TransportError : public Error {
 public:
  TransportError(int src, int dst, int tag, int failed_copies,
                 int max_transport_retries)
      : Error("reliable transport gave up on send " + std::to_string(src) +
              " -> " + std::to_string(dst) + " tag " + std::to_string(tag) +
              " after " + std::to_string(failed_copies) +
              " dropped/corrupted copies (retransmit budget "
              "max_transport_retries=" +
              std::to_string(max_transport_retries) +
              " exhausted; backoff schedule waited " +
              backoff_schedule(failed_copies) + " alpha units)"),
        src_(src), dst_(dst), tag_(tag), failed_copies_(failed_copies),
        max_transport_retries_(max_transport_retries) {}

  int src() const { return src_; }
  int dst() const { return dst_; }
  int tag() const { return tag_; }
  int failed_copies() const { return failed_copies_; }
  int max_transport_retries() const { return max_transport_retries_; }

  /// The per-copy backoff waits actually paid: copy k waits 2^(k-1) alpha
  /// units (faults.hpp FaultPlan::retry_alpha_units), so `copies` failed
  /// copies cost "1+2+4+..." = 2^copies - 1 units in total.
  static std::string backoff_schedule(int copies) {
    std::string schedule;
    long long total = 0;
    for (int k = 0; k < copies; ++k) {
      const long long wait = 1ll << k;
      total += wait;
      if (!schedule.empty()) schedule += "+";
      schedule += std::to_string(wait);
    }
    if (schedule.empty()) schedule = "0";
    return schedule + " = " + std::to_string(total);
  }

 private:
  int src_;
  int dst_;
  int tag_;
  int failed_copies_;
  int max_transport_retries_;
};

/// Seeded 64-bit payload checksum (splitmix64-mixed over the words' bit
/// patterns).  Deterministic across platforms; the seed keys the hash so
/// distinct transports disagree about what "valid" looks like.
std::uint64_t checksum64(const double* data, std::size_t words,
                         std::uint64_t seed);

/// The per-machine transport state: the checksum key plus the corrupt-copy
/// forge used by the injection path.  Attached to the Network (not owned);
/// per-copy counters live in CommStats so they follow the same per-rank
/// thread-confinement discipline as every other counter.
class ReliableTransport {
 public:
  explicit ReliableTransport(std::uint64_t checksum_seed)
      : checksum_seed_(checksum_seed) {}

  std::uint64_t checksum_seed() const { return checksum_seed_; }

  /// The checksum a clean copy of `payload` carries.
  std::uint64_t checksum(const Buffer& payload) const {
    return checksum64(payload.data(), payload.size(), checksum_seed_);
  }

  /// Forge the `copy_index`-th corrupted copy of `payload` for injection: a
  /// real bit is flipped at a position drawn from `entropy` (the plan's
  /// per-send SDC entropy), so detection happens the honest way — the
  /// receiver recomputes the checksum and it disagrees.  For empty payloads
  /// the corruption hits the checksum itself instead.  `checksum_out`
  /// receives the checksum of the *original* payload (what the sender
  /// stamped before the wire corrupted the copy).
  Buffer forge_corrupt_copy(const Buffer& payload, std::uint64_t entropy,
                            int copy_index, std::uint64_t* checksum_out) const;

 private:
  std::uint64_t checksum_seed_;
};

}  // namespace camb
