#include "machine/mailbox.hpp"

#include <algorithm>
#include <iterator>

namespace camb {

void Mailbox::push(Message msg, int reorder_skip) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
    auto pos = std::prev(queue_.end());
    while (reorder_skip > 0 && pos != queue_.begin()) {
      auto prev = std::prev(pos);
      if (prev->src == pos->src && prev->tag == pos->tag) break;
      std::iter_swap(prev, pos);
      pos = prev;
      --reorder_skip;
    }
  }
  cv_.notify_all();
}

Message Mailbox::pop_matching(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        Message out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    cv_.wait(lock);
  }
}

RecvStatus Mailbox::pop_matching_or_failed(int src, int tag, double max_stamp,
                                           Message* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        if (it->depart_time > max_stamp) return RecvStatus::kTimedOut;
        *out = std::move(*it);
        queue_.erase(it);
        return RecvStatus::kDelivered;
      }
    }
    // Nothing buffered: only now may the failure marking decide the outcome.
    // A message buffered before the source died is a program-order fact of
    // the sender and is always delivered first (loop above).
    if (std::find(dead_.begin(), dead_.end(), src) != dead_.end()) {
      return RecvStatus::kSrcDead;
    }
    for (const auto& [r, base] : deviated_) {
      if (r == src && tag < base) return RecvStatus::kSrcDeviated;
    }
    cv_.wait(lock);
  }
}

Message Mailbox::pop_any() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !queue_.empty(); });
  Message out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

void Mailbox::mark_dead(int src) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::find(dead_.begin(), dead_.end(), src) == dead_.end()) {
      dead_.push_back(src);
    }
  }
  cv_.notify_all();
}

void Mailbox::mark_deviated(int src, int tag_base) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    deviated_.emplace_back(src, tag_base);
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<Message> Mailbox::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out(std::make_move_iterator(queue_.begin()),
                           std::make_move_iterator(queue_.end()));
  queue_.clear();
  return out;
}

}  // namespace camb
