#include "machine/mailbox.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace camb {

std::vector<Message>& Mailbox::bucket(int src) { return buckets_[src]; }

std::vector<Message>* Mailbox::find_bucket(int src) {
  auto it = buckets_.find(src);
  return it == buckets_.end() ? nullptr : &it->second;
}

void Mailbox::wait_for_mail(std::unique_lock<std::mutex>& lock) {
  if (Fiber* fiber = Fiber::current()) {
    fiber->park_on(waiters_, lock);
  } else {
    cv_.wait(lock);
  }
}

void Mailbox::trim_order_front() {
  while (!stale_.empty() && !order_.empty()) {
    auto it = stale_.find(order_.front().seq);
    if (it == stale_.end()) break;
    stale_.erase(it);
    order_.pop_front();
  }
}

Message Mailbox::take_oldest(int src, int tag, bool indexed) {
  std::vector<Message>* q = find_bucket(src);
  assert(q != nullptr);
  auto it = std::find_if(q->begin(), q->end(),
                         [tag](const Message& m) { return m.tag == tag; });
  assert(it != q->end());
  return take_at(*q, it, indexed);
}

Message Mailbox::take_at(std::vector<Message>& q,
                         std::vector<Message>::iterator it, bool indexed) {
  Message out = std::move(*it);
  q.erase(it);
  if (indexed) {
    // Fast path: the matched message is the globally oldest (the common
    // case — most receives find an empty or shallow queue), so its index
    // entry can be dropped directly instead of lazily via the stale set.
    if (!order_.empty() && order_.front().seq == out.seq) {
      order_.pop_front();
    } else {
      stale_.insert(out.seq);
      compact_if_sparse();
    }
  }
  --size_;
  return out;
}

void Mailbox::compact_if_sparse() {
  // Stale entries buried behind long-lived live entries can't be trimmed
  // from the front; once they outnumber the live entries, rebuild the index
  // without them.  The rebuild costs O(live + stale) and needs at least
  // `live` further matches to trigger again, so it is amortized O(1) and
  // bounds the index at twice the pending-message count (plus slack).
  if (stale_.size() <= 64 || stale_.size() <= size_) return;
  std::deque<Entry> live;
  for (const Entry& e : order_) {
    if (stale_.count(e.seq) == 0) live.push_back(e);
  }
  order_.swap(live);
  stale_.clear();
}

void Mailbox::push(Message msg, int reorder_skip) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    msg.seq = next_seq_++;
    order_.push_back(Entry{msg.src, msg.tag, msg.seq});
    bucket(msg.src).push_back(std::move(msg));
    ++size_;
    // The legal-reordering swap walks the lightweight index only; stale
    // entries (whose message is already gone) are passed for free, exactly
    // as if they were not there.  Position relative to stale entries is
    // unobservable (every reader skips them), so once the skip budget is
    // spent the walk stops immediately — even mid-run of stale entries.
    auto pos = std::prev(order_.end());
    while (reorder_skip > 0 && pos != order_.begin()) {
      auto prev = std::prev(pos);
      if (stale_.count(prev->seq) != 0) {
        std::iter_swap(prev, pos);
        pos = prev;
        continue;
      }
      if (prev->src == pos->src && prev->tag == pos->tag) break;
      std::iter_swap(prev, pos);
      pos = prev;
      --reorder_skip;
    }
  }
  cv_.notify_all();
  waiters_.notify_all();
}

Message Mailbox::pop_matching(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // find, not operator[]: a receive polling a source that has never sent
    // (common while blocked on a slow or dead peer) must not materialize an
    // empty bucket — buckets exist only for sources that actually pushed.
    if (std::vector<Message>* q = find_bucket(src)) {
      auto it = std::find_if(q->begin(), q->end(),
                             [tag](const Message& m) { return m.tag == tag; });
      if (it != q->end()) {
        Message out = take_at(*q, it, /*indexed=*/true);
        trim_order_front();
        return out;
      }
    }
    wait_for_mail(lock);
  }
}

RecvStatus Mailbox::pop_matching_or_failed(int src, int tag, double max_stamp,
                                           Message* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (std::vector<Message>* q = find_bucket(src)) {
      auto it = std::find_if(q->begin(), q->end(),
                             [tag](const Message& m) { return m.tag == tag; });
      if (it != q->end()) {
        if (it->depart_time > max_stamp) return RecvStatus::kTimedOut;
        *out = take_at(*q, it, /*indexed=*/true);
        trim_order_front();
        return RecvStatus::kDelivered;
      }
    }
    // Nothing buffered: only now may the failure marking decide the outcome.
    // A message buffered before the source died is a program-order fact of
    // the sender and is always delivered first (match above).
    if (std::find(dead_.begin(), dead_.end(), src) != dead_.end()) {
      return RecvStatus::kSrcDead;
    }
    for (const auto& [r, base] : deviated_) {
      if (r == src && tag < base) return RecvStatus::kSrcDeviated;
    }
    wait_for_mail(lock);
  }
}

Message Mailbox::pop_any() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (size_ == 0) wait_for_mail(lock);
  trim_order_front();
  // The front index entry is the earliest live entry of its envelope, so
  // the oldest queued message of that envelope *is* its message.
  const Entry e = order_.front();
  order_.pop_front();
  Message out = take_oldest(e.src, e.tag, /*indexed=*/false);
  assert(out.seq == e.seq);
  return out;
}

void Mailbox::mark_dead(int src) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::find(dead_.begin(), dead_.end(), src) == dead_.end()) {
      dead_.push_back(src);
    }
  }
  cv_.notify_all();
  waiters_.notify_all();
}

void Mailbox::mark_deviated(int src, int tag_base) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    deviated_.emplace_back(src, tag_base);
  }
  cv_.notify_all();
  waiters_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

std::size_t Mailbox::bucket_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.size();
}

std::vector<Message> Mailbox::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Message> out;
  out.reserve(size_);
  while (!order_.empty()) {
    const Entry e = order_.front();
    order_.pop_front();
    auto it = stale_.find(e.seq);
    if (it != stale_.end()) {
      stale_.erase(it);
      continue;
    }
    out.push_back(take_oldest(e.src, e.tag, /*indexed=*/false));
  }
  buckets_.clear();
  stale_.clear();
  size_ = 0;
  return out;
}

void Mailbox::drain_undelivered(int dst, std::vector<UndeliveredMessage>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!order_.empty()) {
    const Entry e = order_.front();
    order_.pop_front();
    auto it = stale_.find(e.seq);
    if (it != stale_.end()) {
      stale_.erase(it);
      continue;
    }
    Message msg = take_oldest(e.src, e.tag, /*indexed=*/false);
    out.push_back(UndeliveredMessage{msg.src, dst, msg.tag,
                                     msg.payload.byte_size(),
                                     std::move(msg.phase), msg.transport_dup});
  }
  buckets_.clear();
  stale_.clear();
  size_ = 0;
}

}  // namespace camb
