#include "machine/mailbox.hpp"

#include <algorithm>
#include <iterator>

namespace camb {

void Mailbox::push(Message msg, int reorder_skip) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
    auto pos = std::prev(queue_.end());
    while (reorder_skip > 0 && pos != queue_.begin()) {
      auto prev = std::prev(pos);
      if (prev->src == pos->src && prev->tag == pos->tag) break;
      std::iter_swap(prev, pos);
      pos = prev;
      --reorder_skip;
    }
  }
  cv_.notify_all();
}

Message Mailbox::pop_matching(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        Message out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    cv_.wait(lock);
  }
}

Message Mailbox::pop_any() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !queue_.empty(); });
  Message out = std::move(queue_.front());
  queue_.pop_front();
  return out;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace camb
