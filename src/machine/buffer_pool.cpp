#include "machine/buffer_pool.hpp"

#include "machine/fiber.hpp"

namespace camb {

namespace {
thread_local BufferPool* tl_current_pool = nullptr;

/// The slot behind BufferPool::current(): per-fiber when running on a fiber
/// (the installed pool must migrate with the rank, not stay behind on a
/// worker thread that picks up a different rank next), per-thread otherwise.
BufferPool*& current_pool_slot() {
  if (Fiber* fiber = Fiber::current()) return fiber->pool_slot();
  return tl_current_pool;
}
}  // namespace

Buffer::Buffer(std::vector<double> v)
    : storage_(std::move(v)),
      pool_(BufferPool::current()),
      elems_(static_cast<i64>(storage_.size())) {}

Buffer::Buffer(Buffer&& other) noexcept
    : storage_(std::move(other.storage_)),
      pool_(other.pool_),
      elems_(other.elems_),
      elem_bytes_(other.elem_bytes_) {
  other.storage_.clear();
  other.pool_ = nullptr;
  other.elems_ = 0;
  other.elem_bytes_ = 8;
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    release();
    storage_ = std::move(other.storage_);
    pool_ = other.pool_;
    elems_ = other.elems_;
    elem_bytes_ = other.elem_bytes_;
    other.storage_.clear();
    other.pool_ = nullptr;
    other.elems_ = 0;
    other.elem_bytes_ = 8;
  }
  return *this;
}

Buffer::~Buffer() { release(); }

void Buffer::release() {
  // Small storages are cheaper to free than to hand back across threads.
  if (pool_ != nullptr &&
      storage_.capacity() >= BufferPool::kMinPooledWords) {
    pool_->give(std::move(storage_));
  }
  storage_.clear();
  pool_ = nullptr;
  elems_ = 0;
  elem_bytes_ = 8;
}

Buffer Buffer::zeros(std::size_t words) {
  if (words >= BufferPool::kMinPooledWords) {
    if (BufferPool* pool = BufferPool::current()) return pool->zeros(words);
  }
  return Buffer(std::vector<double>(words));
}

Buffer Buffer::copy_of(const double* src, std::size_t words) {
  if (words >= BufferPool::kMinPooledWords) {
    if (BufferPool* pool = BufferPool::current()) {
      return pool->copy_of(src, words);
    }
  }
  return Buffer(std::vector<double>(src, src + words));
}

Buffer Buffer::copy_of(const std::vector<double>& v) {
  return copy_of(v.data(), v.size());
}

Buffer Buffer::clone() const {
  Buffer out = copy_of(storage_.data(), storage_.size());
  out.elems_ = elems_;
  out.elem_bytes_ = elem_bytes_;
  return out;
}

std::vector<double> Buffer::take() && {
  std::vector<double> out = std::move(storage_);
  storage_.clear();
  pool_ = nullptr;
  elems_ = 0;
  elem_bytes_ = 8;
  return out;
}

Buffer BufferPool::zeros(std::size_t words) {
  std::vector<double> storage = pop_free(words);
  storage.assign(words, 0.0);
  Buffer out;
  out.storage_ = std::move(storage);
  out.pool_ = this;
  out.elems_ = static_cast<i64>(words);
  return out;
}

Buffer BufferPool::copy_of(const double* src, std::size_t words) {
  std::vector<double> storage = pop_free(words);
  storage.assign(src, src + words);
  Buffer out;
  out.storage_ = std::move(storage);
  out.pool_ = this;
  out.elems_ = static_cast<i64>(words);
  return out;
}

Buffer BufferPool::bytes_copy(const void* src, i64 nbytes) {
  CAMB_CHECK(nbytes >= 0);
  const std::size_t words = static_cast<std::size_t>(ceil_div(nbytes, 8));
  std::vector<double> storage = pop_free(words);
  storage.resize(words);
  // Zero the tail word before the copy so pad bytes beyond nbytes are a
  // deterministic 0 (transport checksums read whole storage words).
  if (words > 0) storage[words - 1] = 0.0;
  std::memcpy(storage.data(), src, static_cast<std::size_t>(nbytes));
  Buffer out;
  out.storage_ = std::move(storage);
  out.pool_ = this;
  out.elems_ = static_cast<i64>(words);
  return out;
}

Buffer BufferPool::bytes_zeros(i64 nbytes) {
  CAMB_CHECK(nbytes >= 0);
  return zeros(static_cast<std::size_t>(ceil_div(nbytes, 8)));
}

int BufferPool::size_class(std::size_t words) {
  int cls = 0;
  std::size_t v = 1;
  while (v < words && cls < kMaxClass) {
    v <<= 1;
    ++cls;
  }
  return cls < kMinClass ? kMinClass : cls;
}

std::vector<double> BufferPool::pop_free(std::size_t words) {
  const std::size_t bucket =
      static_cast<std::size_t>(size_class(words) - kMinClass);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.acquires;
  auto& list = free_[bucket];
  if (list.empty()) return {};
  ++stats_.reuses;
  std::vector<double> storage = std::move(list.back());
  list.pop_back();
  return storage;
}

void BufferPool::give(std::vector<double>&& storage) {
  const std::size_t bucket =
      static_cast<std::size_t>(size_class(storage.capacity()) - kMinClass);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.returns;
  auto& list = free_[bucket];
  if (list.size() >= kMaxFree) {
    ++stats_.drops;
    return;  // storage freed on scope exit
  }
  list.push_back(std::move(storage));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.free = 0;
  for (const auto& list : free_) out.free += list.size();
  return out;
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& list : free_) list.clear();
}

BufferPool* BufferPool::current() { return current_pool_slot(); }

BufferPool::Scope::Scope(BufferPool* pool) {
  BufferPool*& slot = current_pool_slot();
  prev_ = slot;
  slot = pool;
}

BufferPool::Scope::~Scope() { current_pool_slot() = prev_; }

}  // namespace camb
