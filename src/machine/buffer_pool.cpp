#include "machine/buffer_pool.hpp"

#include "machine/fiber.hpp"

namespace camb {

namespace {
thread_local BufferPool* tl_current_pool = nullptr;

/// The slot behind BufferPool::current(): per-fiber when running on a fiber
/// (the installed pool must migrate with the rank, not stay behind on a
/// worker thread that picks up a different rank next), per-thread otherwise.
BufferPool*& current_pool_slot() {
  if (Fiber* fiber = Fiber::current()) return fiber->pool_slot();
  return tl_current_pool;
}
}  // namespace

Buffer::Buffer(std::vector<double> v)
    : storage_(std::move(v)), pool_(BufferPool::current()) {}

Buffer::Buffer(Buffer&& other) noexcept
    : storage_(std::move(other.storage_)), pool_(other.pool_) {
  other.storage_.clear();
  other.pool_ = nullptr;
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    release();
    storage_ = std::move(other.storage_);
    pool_ = other.pool_;
    other.storage_.clear();
    other.pool_ = nullptr;
  }
  return *this;
}

Buffer::~Buffer() { release(); }

void Buffer::release() {
  // Small storages are cheaper to free than to hand back across threads.
  if (pool_ != nullptr &&
      storage_.capacity() >= BufferPool::kMinPooledWords) {
    pool_->give(std::move(storage_));
  }
  storage_.clear();
  pool_ = nullptr;
}

Buffer Buffer::zeros(std::size_t words) {
  if (words >= BufferPool::kMinPooledWords) {
    if (BufferPool* pool = BufferPool::current()) return pool->zeros(words);
  }
  return Buffer(std::vector<double>(words));
}

Buffer Buffer::copy_of(const double* src, std::size_t words) {
  if (words >= BufferPool::kMinPooledWords) {
    if (BufferPool* pool = BufferPool::current()) {
      return pool->copy_of(src, words);
    }
  }
  return Buffer(std::vector<double>(src, src + words));
}

Buffer Buffer::copy_of(const std::vector<double>& v) {
  return copy_of(v.data(), v.size());
}

std::vector<double> Buffer::take() && {
  std::vector<double> out = std::move(storage_);
  storage_.clear();
  pool_ = nullptr;
  return out;
}

Buffer BufferPool::zeros(std::size_t words) {
  std::vector<double> storage = pop_free();
  storage.assign(words, 0.0);
  Buffer out;
  out.storage_ = std::move(storage);
  out.pool_ = this;
  return out;
}

Buffer BufferPool::copy_of(const double* src, std::size_t words) {
  std::vector<double> storage = pop_free();
  storage.assign(src, src + words);
  Buffer out;
  out.storage_ = std::move(storage);
  out.pool_ = this;
  return out;
}

std::vector<double> BufferPool::pop_free() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.acquires;
  if (free_.empty()) return {};
  ++stats_.reuses;
  std::vector<double> storage = std::move(free_.back());
  free_.pop_back();
  return storage;
}

void BufferPool::give(std::vector<double>&& storage) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.returns;
  if (free_.size() >= kMaxFree) {
    ++stats_.drops;
    return;  // storage freed on scope exit
  }
  free_.push_back(std::move(storage));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.free = free_.size();
  return out;
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.clear();
}

BufferPool* BufferPool::current() { return current_pool_slot(); }

BufferPool::Scope::Scope(BufferPool* pool) {
  BufferPool*& slot = current_pool_slot();
  prev_ = slot;
  slot = pool;
}

BufferPool::Scope::~Scope() { current_pool_slot() = prev_; }

}  // namespace camb
