#include "machine/hierarchy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace camb {

NodeMapping::NodeMapping(std::vector<int> node_of, int nodes)
    : node_of_(std::move(node_of)), nodes_(nodes) {
  CAMB_CHECK_MSG(nodes >= 1, "need at least one node");
  for (int node : node_of_) {
    CAMB_CHECK_MSG(node >= 0 && node < nodes, "node index out of range");
  }
}

NodeMapping NodeMapping::blocked(int nprocs, int nodes) {
  CAMB_CHECK_MSG(nprocs >= 1 && nodes >= 1 && nprocs % nodes == 0,
                 "blocked mapping requires nodes | nprocs");
  const int per_node = nprocs / nodes;
  std::vector<int> node_of(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    node_of[static_cast<std::size_t>(r)] = r / per_node;
  }
  return NodeMapping(std::move(node_of), nodes);
}

NodeMapping NodeMapping::round_robin(int nprocs, int nodes) {
  CAMB_CHECK_MSG(nprocs >= 1 && nodes >= 1, "bad mapping sizes");
  std::vector<int> node_of(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    node_of[static_cast<std::size_t>(r)] = r % nodes;
  }
  return NodeMapping(std::move(node_of), nodes);
}

NodeMapping NodeMapping::custom(std::vector<int> node_of, int nodes) {
  CAMB_CHECK_MSG(!node_of.empty(), "mapping must cover at least one rank");
  return NodeMapping(std::move(node_of), nodes);
}

int NodeMapping::node_of(int rank) const {
  CAMB_CHECK(rank >= 0 && rank < nprocs());
  return node_of_[static_cast<std::size_t>(rank)];
}

HierarchyReport analyze_hierarchy(const Trace& trace,
                                  const NodeMapping& mapping) {
  CAMB_CHECK_MSG(trace.nprocs() == mapping.nprocs(),
                 "trace and mapping sizes must agree");
  HierarchyReport report;
  std::vector<double> ingress(static_cast<std::size_t>(mapping.nodes()), 0.0);
  std::vector<double> egress(static_cast<std::size_t>(mapping.nodes()), 0.0);
  for (const auto& event : trace.events()) {
    report.total_words += event.words();
    const int src_node = mapping.node_of(event.src);
    const int dst_node = mapping.node_of(event.dst);
    if (src_node == dst_node) {
      report.intra_node_words += event.words();
    } else {
      report.inter_node_words += event.words();
      egress[static_cast<std::size_t>(src_node)] += event.words();
      ingress[static_cast<std::size_t>(dst_node)] += event.words();
    }
  }
  for (double words : ingress) {
    report.max_node_ingress_words =
        std::max(report.max_node_ingress_words, words);
  }
  for (double words : egress) {
    report.max_node_egress_words =
        std::max(report.max_node_egress_words, words);
  }
  return report;
}

}  // namespace camb
