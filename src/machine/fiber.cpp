// fiber.cpp — stackful context switching and the fiber scheduler.
//
// Backend: on x86-64 the switch is ~30 instructions of inline assembly
// (callee-saved registers + mxcsr/x87 control words, per the SysV ABI);
// everywhere else it falls back to ucontext.  Both backends run under the
// same sanitizer discipline: every switch tells ASan which stack it is
// moving to (__sanitizer_start/finish_switch_fiber) and TSan which logical
// thread is now running (__tsan_switch_to_fiber), so the fiber build is
// fully analyzable by both.
//
// The one piece of per-OS-thread C++ runtime state that must migrate with
// a fiber is __cxa_eh_globals (the caught-exception stack): rollback code
// performs communication — and therefore parks — inside catch blocks, and
// two fibers interleaving their catch blocks on one worker thread would
// otherwise corrupt the thread's LIFO handler state.  Each switch swaps the
// 16-byte globals image through the context records.
#include "machine/fiber.hpp"

#include <pthread.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>

#include "machine/worker_pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define CAMB_FIBER_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define CAMB_FIBER_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(CAMB_FIBER_ASAN)
#define CAMB_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer) && !defined(CAMB_FIBER_TSAN)
#define CAMB_FIBER_TSAN 1
#endif
#endif

#ifdef CAMB_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef CAMB_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

// CAMB_FORCE_UCONTEXT (a CMake option) builds the portable backend on
// x86-64 too, so CI can exercise the fallback path real non-x86 hosts take.
#if defined(__x86_64__) && !defined(CAMB_FORCE_UCONTEXT)
#define CAMB_FIBER_X86_64 1
#else
#include <ucontext.h>
#endif

namespace camb {

void camb_fiber_start(Fiber* fiber);

namespace {

thread_local Fiber* tl_current_fiber = nullptr;

std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

std::size_t default_stack_bytes() {
  static const std::size_t bytes = [] {
    if (const char* env = std::getenv("CAMB_FIBER_STACK_KB")) {
      const long kb = std::atol(env);
      if (kb > 0) return static_cast<std::size_t>(kb) * 1024;
    }
    return std::size_t{256 * 1024};
  }();
  return bytes;
}

// Per-fiber guarded mappings cost two kernel VMAs each (guard + stack);
// vm.max_map_count defaults to ~64 Ki, so beyond this many fibers stacks
// are packed into shared slabs instead (see FiberStack in the header).
constexpr int kPackedStackThreshold = 16384;
constexpr std::size_t kStacksPerSlab = 512;

// Planted at the base (lowest address) of every packed-slab stack, where a
// dedicated guard page would otherwise sit.  An overflow deep enough to
// cross into the neighboring fiber's slice clobbers a canary on the way, so
// the corruption is reported (at fiber completion) instead of silent.
constexpr std::uint64_t kStackCanary = 0x5ca1ab1e0ddba11eULL;

}  // namespace

// The Itanium ABI's per-thread exception bookkeeping: a pointer to the
// caught-exception stack plus the uncaught count.  Declared locally (the
// real declaration lives in cxxabi.h under __cxxabiv1) so the 16-byte image
// can be swapped without dragging in the full ABI header.
struct CxaEhGlobals {
  void* caught_exceptions;
  unsigned int uncaught_exceptions;
};

extern "C" CxaEhGlobals* __cxa_get_globals() noexcept;

// ---------------------------------------------------------------------------
// Context switch backends.

#ifdef CAMB_FIBER_X86_64

extern "C" {
void camb_ctx_swap(void** save_sp, void* load_sp);
void camb_fiber_entry();
void camb_fiber_main(void* arg);
}

// camb_ctx_swap(save_sp, load_sp): save the SysV callee-saved state on the
// current stack, publish the resulting stack pointer through *save_sp, then
// adopt load_sp and restore.  The frame layout (ascending from the saved
// rsp) is: mxcsr(4) fcw(2) pad(2) | r15 r14 r13 r12 rbx rbp | return addr.
//
// camb_fiber_entry is the return address planted in a *fresh* fiber frame:
// it receives the Fiber* in r12 (a callee-saved slot of that frame) and
// calls camb_fiber_main, which never returns.  At entry rsp is 16-byte
// aligned, so the call leaves the ABI-required rsp % 16 == 8.
asm(R"(
.text
.globl camb_ctx_swap
.type camb_ctx_swap,@function
.align 16
camb_ctx_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq $8, %rsp
    stmxcsr (%rsp)
    fnstcw 4(%rsp)
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    ldmxcsr (%rsp)
    fldcw 4(%rsp)
    addq $8, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    retq
.size camb_ctx_swap,.-camb_ctx_swap

.globl camb_fiber_entry
.type camb_fiber_entry,@function
.align 16
camb_fiber_entry:
    movq %r12, %rdi
    callq camb_fiber_main
    ud2
.size camb_fiber_entry,.-camb_fiber_entry
)");

extern "C" void camb_fiber_main(void* arg) {
  camb::camb_fiber_start(static_cast<camb::Fiber*>(arg));
}

#endif  // CAMB_FIBER_X86_64

namespace {

#ifdef CAMB_FIBER_X86_64

/// Plant the initial frame for a fresh fiber at the top of its stack, so
/// the first camb_ctx_swap into it "returns" into camb_fiber_entry.
void* make_fiber_frame(void* stack_top, Fiber* self) {
  auto* top = static_cast<unsigned char*>(stack_top);  // page-aligned
  unsigned char* sp = top - 64;
  std::memset(sp, 0, 64);
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  std::memcpy(sp, &mxcsr, sizeof(mxcsr));
  std::memcpy(sp + 4, &fcw, sizeof(fcw));
  void* r12 = self;
  std::memcpy(sp + 32, &r12, sizeof(r12));
  void* entry = reinterpret_cast<void*>(&camb_fiber_entry);
  std::memcpy(sp + 56, &entry, sizeof(entry));
  return sp;
}

#else  // ucontext fallback

void fiber_entry_uctx(unsigned int hi, unsigned int lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  camb::camb_fiber_start(reinterpret_cast<camb::Fiber*>(bits));
}

#endif  // CAMB_FIBER_X86_64

/// Switch from `from` to `to`, carrying the sanitizer bookkeeping and the
/// C++ exception globals across.  When `from_dying` the source context never
/// resumes (its ASan fake stack is released rather than saved).
void switch_context(FiberContext& from, FiberContext& to, bool from_dying) {
  CxaEhGlobals* globals = __cxa_get_globals();
  std::memcpy(from.eh_save, globals, sizeof(from.eh_save));
  std::memcpy(globals, to.eh_save, sizeof(from.eh_save));
#ifdef CAMB_FIBER_TSAN
  __tsan_switch_to_fiber(to.tsan_fiber, 0);
#endif
#ifdef CAMB_FIBER_ASAN
  __sanitizer_start_switch_fiber(from_dying ? nullptr : &from.asan_fake,
                                 to.stack_base, to.stack_size);
#else
  (void)from_dying;
#endif
#ifdef CAMB_FIBER_X86_64
  camb_ctx_swap(&from.sp, to.sp);
#else
  swapcontext(static_cast<ucontext_t*>(from.uctx),
              static_cast<ucontext_t*>(to.uctx));
#endif
  // Back on `from` (possibly on a different worker thread).
#ifdef CAMB_FIBER_ASAN
  __sanitizer_finish_switch_fiber(from.asan_fake, nullptr, nullptr);
#endif
}

/// Fill in a worker thread's own context record: the scheduler needs the
/// thread's stack bounds (for ASan) and TSan identity to switch back to it.
void init_worker_context(FiberContext& ctx) {
#ifdef CAMB_FIBER_TSAN
  ctx.tsan_fiber = __tsan_get_current_fiber();
#endif
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* base = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &base, &size) == 0) {
      ctx.stack_base = base;
      ctx.stack_size = size;
    }
    pthread_attr_destroy(&attr);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SchedulerKind plumbing.

namespace {
std::atomic<SchedulerKind> g_default_kind{SchedulerKind::kDefault};
}  // namespace

SchedulerKind scheduler_kind_from_name(const std::string& name) {
  if (name == "default") return SchedulerKind::kDefault;
  if (name == "threads") return SchedulerKind::kThreads;
  if (name == "fibers") return SchedulerKind::kFibers;
  throw Error("unknown scheduler \"" + name +
              "\" (want default|threads|fibers)");
}

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDefault:
      return "default";
    case SchedulerKind::kThreads:
      return "threads";
    case SchedulerKind::kFibers:
      return "fibers";
  }
  return "?";
}

SchedulerKind default_scheduler_kind() {
  const SchedulerKind forced = g_default_kind.load(std::memory_order_relaxed);
  if (forced != SchedulerKind::kDefault) return forced;
  static const SchedulerKind env_kind = [] {
    const char* env = std::getenv("CAMB_SCHEDULER");
    if (env == nullptr || *env == '\0') return SchedulerKind::kThreads;
    return scheduler_kind_from_name(env);
  }();
  return env_kind;
}

void set_default_scheduler_kind(SchedulerKind kind) {
  g_default_kind.store(kind, std::memory_order_relaxed);
}

SchedulerKind resolve_scheduler_kind(SchedulerKind kind) {
  return kind == SchedulerKind::kDefault ? default_scheduler_kind() : kind;
}

// ---------------------------------------------------------------------------
// FiberWaitList.

void FiberWaitList::add(Fiber* fiber) {
  std::lock_guard<std::mutex> guard(mutex_);
  waiters_.push_back(fiber);
  maybe_waiters_.store(true, std::memory_order_release);
}

void FiberWaitList::notify_all() {
  // Fast path for the threads scheduler and uncontended mailboxes.  A
  // parking fiber publishes maybe_waiters_ before releasing the blocking
  // site's mutex, and notifiers run after acquiring that mutex, so a false
  // negative here is impossible for a fiber that observed the pre-notify
  // state.
  if (!maybe_waiters_.load(std::memory_order_acquire)) return;
  std::vector<Fiber*> taken;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    taken.swap(waiters_);
    maybe_waiters_.store(false, std::memory_order_relaxed);
  }
  for (Fiber* fiber : taken) {
    const int prev = fiber->wake_.exchange(Fiber::kWakeNotified,
                                           std::memory_order_acq_rel);
    // kWakeParking: the scheduler's exchange is still in flight and will
    // observe kWakeNotified — it requeues.  kWakeParked: it already ran —
    // we requeue.
    if (prev == Fiber::kWakeParked) fiber->sched_.enqueue(fiber);
  }
}

// ---------------------------------------------------------------------------
// Fiber.

Fiber* Fiber::current() { return tl_current_fiber; }

void Fiber::maybe_preempt() {
  Fiber* fiber = tl_current_fiber;
  if (fiber != nullptr && fiber->chaos_) fiber->preempt();
}

Fiber::Fiber(FiberScheduler& sched, int index, const FiberStack& stack,
             bool chaos)
    : sched_(sched), index_(index), chaos_(chaos) {
  stack_alloc_ = stack.alloc_base;
  stack_alloc_size_ = stack.alloc_size;
  stack_owned_ = stack.owned;
  ctx_.stack_base = stack.base;
  ctx_.stack_size = stack.size;
#ifdef CAMB_FIBER_TSAN
  ctx_.tsan_fiber = __tsan_create_fiber(0);
#endif
  if (!stack_owned_) {
    // Packed slabs have no per-stack guard page; the canary substitutes for
    // it, turning a silent cross-fiber scribble into a named error (checked
    // by check_stack_canary when the fiber completes).
    std::memcpy(ctx_.stack_base, &kStackCanary, sizeof(kStackCanary));
  }
#ifdef CAMB_FIBER_X86_64
  ctx_.sp = make_fiber_frame(
      static_cast<unsigned char*>(ctx_.stack_base) + ctx_.stack_size, this);
#else
  auto* uctx = new ucontext_t();
  getcontext(uctx);
  uctx->uc_stack.ss_sp = ctx_.stack_base;
  uctx->uc_stack.ss_size = ctx_.stack_size;
  uctx->uc_link = nullptr;
  const auto bits = reinterpret_cast<std::uintptr_t>(this);
  makecontext(uctx, reinterpret_cast<void (*)()>(fiber_entry_uctx), 2,
              static_cast<unsigned int>(bits >> 32),
              static_cast<unsigned int>(bits & 0xffffffffu));
  ctx_.uctx = uctx;
#endif
}

Fiber::~Fiber() { release_stack(); }

void Fiber::release_stack() {
#ifdef CAMB_FIBER_TSAN
  if (ctx_.tsan_fiber != nullptr) {
    __tsan_destroy_fiber(ctx_.tsan_fiber);
    ctx_.tsan_fiber = nullptr;
  }
#endif
#ifndef CAMB_FIBER_X86_64
  delete static_cast<ucontext_t*>(ctx_.uctx);
  ctx_.uctx = nullptr;
#endif
  if (stack_alloc_ != nullptr) {
    munmap(stack_alloc_, stack_alloc_size_);
    stack_alloc_ = nullptr;
  } else if (!stack_owned_ && ctx_.stack_base != nullptr) {
    // Packed slab slice: the mapping outlives the fiber, but the pages can
    // go back to the kernel now (bounds resident memory at huge P).
    madvise(ctx_.stack_base, ctx_.stack_size, MADV_DONTNEED);
    ctx_.stack_base = nullptr;
  }
}

void Fiber::check_stack_canary() {
  if (stack_owned_ || ctx_.stack_base == nullptr) return;
  std::uint64_t word = 0;
  std::memcpy(&word, ctx_.stack_base, sizeof(word));
  if (word != kStackCanary && !error_) {
    error_ = std::make_exception_ptr(
        Error("fiber stack overflow: rank " + std::to_string(index_) +
              " overran its packed " + std::to_string(ctx_.stack_size / 1024) +
              " KiB stack (base canary clobbered); raise CAMB_FIBER_STACK_KB"));
  }
}

void camb_fiber_start(Fiber* fiber) { fiber->run_body(); }

void Fiber::run_body() {
#ifdef CAMB_FIBER_ASAN
  // First entry arrives via the planted frame, not switch_context, so the
  // pending start_switch is finished here (no fake stack to restore yet).
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  try {
    sched_.body_(index_);
  } catch (...) {
    error_ = std::current_exception();
  }
  yield_to_scheduler(Phase::kDone);
  std::abort();  // a completed fiber is never resumed
}

void Fiber::yield_to_scheduler(Phase why) {
  phase_ = why;
  switch_context(ctx_, *ret_, why == Phase::kDone);
  phase_ = Phase::kRunning;
}

void Fiber::preempt() { yield_to_scheduler(Phase::kYielded); }

void Fiber::park_on(FiberWaitList& waiters, std::unique_lock<std::mutex>& lock) {
  // Order matters: the wake state must read kWakeParking before this fiber
  // is visible on the wait list, else a fast notifier's kWakeNotified could
  // be overwritten.
  wake_.store(kWakeParking, std::memory_order_release);
  waiters.add(this);
  lock.unlock();
  yield_to_scheduler(Phase::kParking);
  wake_.store(kWakeRunning, std::memory_order_relaxed);
  lock.lock();
}

// ---------------------------------------------------------------------------
// FiberScheduler.

void FiberScheduler::run(int nfibers, const std::function<void(int)>& body,
                         const Options& opts) {
  if (nfibers <= 0) return;
  FiberScheduler sched(nfibers, body, opts);
  sched.execute();
}

void FiberScheduler::run(int nfibers, const std::function<void(int)>& body) {
  run(nfibers, body, Options());
}

FiberScheduler::FiberScheduler(int nfibers,
                               const std::function<void(int)>& body,
                               const Options& opts)
    : body_(body), opts_(opts), chaos_(opts.interleave_seed != 0),
      pick_state_(opts.interleave_seed) {
  const std::size_t stack =
      opts_.stack_bytes != 0 ? opts_.stack_bytes : default_stack_bytes();
  packed_stacks_ = nfibers > kPackedStackThreshold;
  fibers_.reserve(static_cast<std::size_t>(nfibers));
  for (int i = 0; i < nfibers; ++i) {
    fibers_.push_back(new Fiber(*this, i, allocate_stack(stack), chaos_));
  }
}

FiberScheduler::~FiberScheduler() {
  for (Fiber* fiber : fibers_) delete fiber;
  for (const auto& [base, bytes] : slabs_) munmap(base, bytes);
}

FiberStack FiberScheduler::allocate_stack(std::size_t stack_bytes) {
  const std::size_t page = page_size();
  const std::size_t stack = ((stack_bytes + page - 1) / page) * page;
  FiberStack out;
  out.size = stack;
  if (!packed_stacks_) {
    out.alloc_size = stack + page;
    void* base = mmap(nullptr, out.alloc_size, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    CAMB_CHECK_MSG(base != MAP_FAILED, "fiber stack mmap failed");
    // Guard page below the stack: overflow faults instead of corrupting
    // the neighboring fiber's stack.
    mprotect(base, page, PROT_NONE);
    out.alloc_base = base;
    out.base = static_cast<unsigned char*>(base) + page;
    out.owned = true;
    return out;
  }
  if (slab_left_ < stack) {
    const std::size_t bytes = page + kStacksPerSlab * stack;
    void* slab = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    CAMB_CHECK_MSG(slab != MAP_FAILED, "fiber stack slab mmap failed");
    mprotect(slab, page, PROT_NONE);  // guard below the slab's lowest stack
    slabs_.emplace_back(slab, bytes);
    slab_cursor_ = static_cast<unsigned char*>(slab) + page;
    slab_left_ = kStacksPerSlab * stack;
  }
  out.base = slab_cursor_;
  out.owned = false;
  slab_cursor_ += stack;
  slab_left_ -= stack;
  return out;
}

void FiberScheduler::enqueue(Fiber* fiber) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    fiber->phase_ = Fiber::Phase::kRunnable;
    runq_.push_back(fiber);
  }
  cv_.notify_one();
}

Fiber* FiberScheduler::take_next() {
  std::size_t idx = 0;
  if (chaos_ && runq_.size() > 1) {
    idx = static_cast<std::size_t>(splitmix64(pick_state_) % runq_.size());
  }
  Fiber* fiber = runq_[idx];
  runq_.erase(runq_.begin() + static_cast<std::ptrdiff_t>(idx));
  return fiber;
}

void FiberScheduler::execute() {
  const int n = static_cast<int>(fibers_.size());
  live_ = n;
  for (Fiber* fiber : fibers_) runq_.push_back(fiber);
  int workers = opts_.workers;
  if (chaos_) {
    workers = 1;  // one worker makes a seeded schedule fully reproducible
  } else if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  workers = std::max(1, std::min(workers, n));
  WorkerPool::instance().run(workers, [this](int) { worker_loop(); });
  if (deadlock_) {
    std::ostringstream msg;
    msg << "fiber scheduler deadlock: " << live_ << " of " << fibers_.size()
        << " ranks parked with nothing runnable; parked ranks:";
    int listed = 0;
    for (Fiber* fiber : fibers_) {
      if (fiber->phase_ == Fiber::Phase::kDone) continue;
      if (++listed > 16) {
        msg << " ...";
        break;
      }
      msg << ' ' << fiber->index_;
    }
    throw Error(msg.str());
  }
  for (Fiber* fiber : fibers_) {
    if (fiber->error_) std::rethrow_exception(fiber->error_);
  }
}

void FiberScheduler::worker_loop() {
  FiberContext wctx;
  init_worker_context(wctx);
#ifndef CAMB_FIBER_X86_64
  // swapcontext saves the worker frame into this record before adopting a
  // fiber; getcontext-style init is not needed for a save target, but the
  // ucontext_t storage is (a null uctx would segfault on the first switch).
  const auto worker_uctx = std::make_unique<ucontext_t>();
  wctx.uctx = worker_uctx.get();
#endif
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return !runq_.empty() || live_ == 0 || deadlock_; });
    if (live_ == 0 || deadlock_) return;
    Fiber* fiber = take_next();
    ++running_;
    lock.unlock();

    fiber->ret_ = &wctx;
    fiber->phase_ = Fiber::Phase::kRunning;
    tl_current_fiber = fiber;
    switch_context(wctx, fiber->ctx_, /*from_dying=*/false);
    tl_current_fiber = nullptr;
    const Fiber::Phase phase = fiber->phase_;

    lock.lock();
    if (phase == Fiber::Phase::kDone) {
      --running_;
      --live_;
      lock.unlock();
      fiber->check_stack_canary();
      fiber->release_stack();  // bound resident memory during huge runs
      lock.lock();
      if (live_ == 0) cv_.notify_all();
    } else if (phase == Fiber::Phase::kYielded) {
      --running_;
      runq_.push_back(fiber);
      cv_.notify_one();
    } else {  // Phase::kParking — finish the park handshake off the lock
      // The phase must be written before the exchange below: the instant
      // the exchange publishes kWakeParked, a notifier may requeue the
      // fiber and another worker may resume it.  running_ stays elevated
      // until the whole handshake (exchange + possible requeue) is done, so
      // no other worker can observe "queue empty, nothing running, fibers
      // live" while a notified fiber is still in flight between the unlock
      // and the exchange — that window used to read as a false deadlock.
      fiber->phase_ = Fiber::Phase::kParked;
      lock.unlock();
      const int prev = fiber->wake_.exchange(Fiber::kWakeParked,
                                             std::memory_order_acq_rel);
      lock.lock();
      if (prev == Fiber::kWakeNotified) {
        // The notifier fired mid-switch; requeue now (inline — mutex_ is
        // already held, so enqueue() would self-deadlock).
        fiber->phase_ = Fiber::Phase::kRunnable;
        runq_.push_back(fiber);
        cv_.notify_one();
      }
      --running_;
    }
    // Every wakeup originates from a running fiber (notify paths) or from
    // this worker's own post-processing (just finished), so an empty run
    // queue with nothing running and fibers still live is a genuine
    // deadlock — report it instead of hanging like thread-per-rank does.
    if (runq_.empty() && running_ == 0 && live_ > 0) {
      deadlock_ = true;
      cv_.notify_all();
      return;
    }
  }
}

}  // namespace camb
