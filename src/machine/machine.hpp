// machine.hpp — the simulated distributed-memory machine (§3.1).
//
// A Machine runs an SPMD program: P logical processors, each backed by an OS
// thread with its own local data, communicating only through the counted
// Network.  This is the substrate on which all parallel matrix multiplication
// algorithms in this library execute, replacing the MPI cluster of the
// paper's setting with an instrumented equivalent (see DESIGN.md §1).
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "machine/barrier.hpp"
#include "machine/fiber.hpp"
#include "machine/network.hpp"
#include "machine/reliable.hpp"
#include "machine/tags.hpp"
#include "util/rng.hpp"

namespace camb {

class Machine;

/// One failure-detection event: `detector` concluded `failed` cannot deliver
/// tag `tag` (because it crashed, or abandoned the algorithm phase), at the
/// detector's logical clock.  The matching zero-word suspicion probe is
/// accounted in the "heartbeat" phase by the network.
struct DetectionEvent {
  int detector = -1;
  int failed = -1;
  int tag = 0;
  double clock = 0.0;
  bool peer_crashed = false;
};

/// What the crash-fault machinery observed during one run.  Populated by
/// Machine::run; empty when no rank failed.
struct CrashOutcome {
  std::vector<int> crashed;          ///< ranks whose planned crash fired
  std::vector<double> crash_clocks;  ///< their clocks at death (parallel)
  std::vector<int> errored;          ///< ranks that threw (not crashes)
  std::vector<int> abandoned;        ///< ranks that called abandon()
  std::vector<DetectionEvent> detections;  ///< sorted for determinism
  std::vector<UndeliveredMessage> debris;  ///< undelivered mail after failures

  bool any_crashed() const { return !crashed.empty(); }
};

/// Per-rank handle passed to the SPMD program. All communication and
/// synchronization a rank performs goes through its RankCtx.
///
/// Logical clock model (a LogP-style schedule on top of the α-β costs):
/// every counted send advances the sender's clock by α + β·w and stamps the
/// message; every counted receive synchronizes the receiver's clock to at
/// least the stamp.  The maximum final clock over ranks is the simulated
/// critical-path *time* of the program — it captures pipelining and
/// imbalance that the aggregate word/message counters cannot (e.g. a
/// binomial broadcast's root serializing its log p sends).
class RankCtx {
 public:
  RankCtx(Machine& machine, int rank);

  int rank() const { return rank_; }
  int nprocs() const;

  /// Point-to-point primitives (buffered send, blocking receive).
  /// Payloads are pooled move-only Buffers; std::vector<double> arguments
  /// convert implicitly (adopting their storage — a move, never a copy), and
  /// a received Buffer moves back into a vector on assignment, so call sites
  /// written against the vector API compile and behave identically.
  /// `recv` throws PeerFailedError (naming the failed rank) when `src` has
  /// been marked crashed — or marked abandoned, for tags below
  /// kRecoveryTagBase — and nothing matching remains buffered.
  void send(int dst, int tag, Buffer payload);
  Buffer recv(int src, int tag);

  /// Receive with a logical-clock deadline: returns the payload if a
  /// matching message with arrival stamp <= `deadline` is (or becomes)
  /// available; returns nullopt if the source failed (kSrcDead /
  /// kSrcDeviated, reported via `status` when non-null) or a matching
  /// message exists whose stamp exceeds the deadline (kTimedOut; the
  /// message stays queued and the caller's clock advances to the deadline).
  /// Pass an infinite deadline to wait out everything except failure —
  /// the shape the shrink collective is built on.
  std::optional<Buffer> recv_timed(int src, int tag, double deadline,
                                   RecvStatus* status = nullptr);

  /// Declare that this rank abandons the algorithm phase (typically after
  /// catching PeerFailedError mid-collective): peers blocked on its
  /// algorithm-tag messages (< kRecoveryTagBase) fail over with
  /// PeerFailedError instead of hanging, while recovery-tag traffic from
  /// this rank still flows.  The cascade this triggers is what funnels
  /// every survivor into the recovery protocol.
  void abandon();

  /// Banded abandon for the checkpoint/rollback protocol: peers blocked on
  /// this rank's messages with tags below `tag_limit` fail over, while tags
  /// at or above it (the next rollback round's band) still flow.  Plain
  /// abandon() is the special case tag_limit == kRecoveryTagBase.
  void abandon_below(int tag_limit);

  /// Simultaneous exchange with a peer: send `payload`, receive the peer's.
  /// Models one use of a bidirectional link; deadlock-free because sends are
  /// buffered.
  Buffer sendrecv(int peer, int tag, Buffer payload);

  /// Whole-machine barrier (synchronizes all logical clocks to the max).
  /// Crashed and errored ranks are dropped from the barrier automatically.
  void barrier();

  /// Label subsequent traffic of this rank for per-phase accounting.
  void set_phase(const std::string& phase);

  /// This rank's logical clock (seconds under the machine's α-β params).
  double clock() const { return clock_; }
  /// Advance the clock by local work (e.g. γ · flops), never backwards.
  /// Scaled by this rank's straggler factor when a fault plan is active.
  void advance_clock(double seconds);

  /// This rank's straggler slowdown (1 unless a fault plan marks it).
  double straggler_factor() const { return straggler_; }

  /// Working-set accounting: algorithms report the buffers they hold so the
  /// per-rank peak can be *measured* (the §6.2 memory claims).  Balanced
  /// acquire/release is the caller's contract; WorkingSet below is the RAII
  /// helper.  Canonical unit is bytes (exact for every element width); the
  /// word-denominated wrappers assume 8-byte elements and the word accessors
  /// return exact (possibly half-integer) words.
  void acquire_bytes(i64 bytes);
  void release_bytes(i64 bytes);
  void acquire_words(i64 words) { acquire_bytes(words * 8); }
  void release_words(i64 words) { release_bytes(words * 8); }
  i64 current_bytes() const { return current_bytes_; }
  i64 peak_bytes() const { return peak_bytes_; }
  double current_words() const {
    return static_cast<double>(current_bytes_) / 8.0;
  }
  double peak_words() const { return static_cast<double>(peak_bytes_) / 8.0; }

  /// Deterministic per-rank RNG stream.
  Rng& rng() { return rng_; }

  /// This rank's tag-lease cursor (machine/tags.hpp): communicators draw
  /// their tag blocks here.  Per-rank by design — determinism comes from
  /// every rank performing the same sequence of lease requests.
  TagAllocator& tags() { return tags_; }

  Network& network();

  /// This rank's payload pool (owned by the network; installed as the
  /// thread's current pool while the SPMD program runs).
  BufferPool& pool();

 private:
  Machine& machine_;
  int rank_;
  double clock_ = 0.0;
  double straggler_ = 1.0;
  i64 current_bytes_ = 0;
  i64 peak_bytes_ = 0;
  Rng rng_;
  TagAllocator tags_;
};

/// RAII working-set registration: holds a buffer's footprint against the
/// rank's memory accounting for the lifetime of the guard.  The two-argument
/// form is word-denominated (8-byte elements, the historical default); the
/// three-argument form takes an element count and width for typed buffers.
class WorkingSet {
 public:
  WorkingSet(RankCtx& ctx, i64 words) : ctx_(ctx), bytes_(words * 8) {
    ctx_.acquire_bytes(bytes_);
  }
  WorkingSet(RankCtx& ctx, i64 elems, i64 elem_bytes)
      : ctx_(ctx), bytes_(elems * elem_bytes) {
    ctx_.acquire_bytes(bytes_);
  }
  ~WorkingSet() { ctx_.release_bytes(bytes_); }
  WorkingSet(const WorkingSet&) = delete;
  WorkingSet& operator=(const WorkingSet&) = delete;

 private:
  RankCtx& ctx_;
  i64 bytes_;
};

/// The machine itself: owns the network and runs SPMD programs.
class Machine {
 public:
  /// Creates a machine with `nprocs` logical processors.  `seed` drives the
  /// per-rank RNG streams.
  explicit Machine(int nprocs, std::uint64_t seed = 42);

  int nprocs() const { return network_.nprocs(); }
  std::uint64_t seed() const { return seed_; }

  Network& network() { return network_; }
  const CommStats& stats() const { return network_.stats(); }
  CommStats& stats() { return network_.stats(); }

  /// Run `program` as an SPMD computation: one execution context per rank
  /// (an OS thread or a fiber, per set_scheduler), all started together,
  /// joined before returning.
  ///
  /// Failure semantics: a rank whose planned crash fires (RankCrashed) exits
  /// cleanly — it is marked dead in every mailbox and dropped from the
  /// barrier, so blocked peers detect the failure (PeerFailedError) instead
  /// of hanging.  A rank that throws any other exception is treated the same
  /// way for liveness, and its exception is rethrown here after the join —
  /// non-detection errors first (by rank order), then a PeerFailedError
  /// naming an actually-crashed rank, then any remaining error.  A run where
  /// ranks crashed but every survivor completed returns normally; consult
  /// crash_outcome().  After a fully clean run, verifies no undelivered
  /// messages remain, listing the leaked envelopes in the failure message.
  void run(const std::function<void(RankCtx&)>& program);

  /// Choose the execution substrate for run(): thread-per-rank (the
  /// default) or fibers multiplexed on pool-width worker threads (the only
  /// mode that reaches P in the tens of thousands).  kDefault defers to
  /// set_default_scheduler_kind / $CAMB_SCHEDULER.  Must be set before
  /// run(); simulation results are identical across schedulers.
  void set_scheduler(const SchedulerSpec& spec) { scheduler_ = spec; }
  const SchedulerSpec& scheduler() const { return scheduler_; }

  Barrier& barrier() { return barrier_; }

  /// Turn on per-message event tracing; returns the trace (owned by the
  /// machine, valid for its lifetime).  Idempotent.
  Trace& enable_trace();
  /// The active trace, or nullptr when tracing is off.
  Trace* trace() { return trace_.get(); }

  /// Turn on deterministic fault injection: every subsequent counted send
  /// consults the plan (see faults.hpp for the model and cost-accounting
  /// rules).  `fault_seed` alone determines the injected timing-event
  /// sequence; `sdc_seed` independently drives the drop/dup/flip streams
  /// (0 derives one from fault_seed, kSeedDomainSdc).  Must be called
  /// before run(); replaces any previously attached plan.
  FaultPlan& enable_faults(const FaultProfile& profile,
                           std::uint64_t fault_seed,
                           std::uint64_t sdc_seed = 0);
  /// The active fault plan, or nullptr when fault injection is off.
  FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// Turn on the reliable transport (machine/reliable.hpp): every counted
  /// send carries a checksummed envelope, the fault plan's SDC events are
  /// physically injected and healed (or surface as TransportError), and the
  /// repair tax is accounted in the "transport" phase.  Required whenever
  /// the fault profile has any drop/flip/dup probability — run() fails fast
  /// otherwise, because a dropped copy without retransmission would hang
  /// the receiver.  Must be called before run().
  ReliableTransport& enable_reliable_transport(std::uint64_t checksum_seed);
  /// The active transport, or nullptr when the network is trusted.
  ReliableTransport* reliable_transport() { return reliable_.get(); }

  /// After a clean run under SDC injection: injected duplicates still parked
  /// in mailboxes at exit (their originals were delivered — this is benign
  /// transport debris, excluded from the leak check).
  const std::vector<UndeliveredMessage>& transport_debris() const {
    return transport_debris_;
  }

  /// Turn on deterministic crash injection: each listed rank dies at a send
  /// position drawn from (crash_seed, rank) in [0, max_send_position].
  /// Must be called before run(); replaces any previously attached plan.
  CrashPlan& enable_crashes(const std::vector<int>& ranks,
                            std::uint64_t crash_seed, i64 max_send_position);
  /// Crash injection at explicit send positions.
  CrashPlan& enable_crashes(std::vector<CrashEvent> events);
  /// The active crash plan, or nullptr when crash injection is off.
  CrashPlan* crash_plan() { return crash_plan_.get(); }

  /// After run(): what the crash machinery observed (empty on a clean run).
  const CrashOutcome& crash_outcome() const { return outcome_; }

  /// Record a failure-detection event (called by RankCtx from the detecting
  /// rank's thread; the zero-word heartbeat probe is accounted separately by
  /// the network).
  void note_detection(DetectionEvent event);
  /// Record that `rank` abandoned the algorithm phase.
  void note_abandon(int rank);

  /// α-β parameters driving the logical clocks (default α = β = 1, i.e. the
  /// clock counts messages + words directly).
  void set_time_params(const AlphaBeta& params) { time_params_ = params; }
  const AlphaBeta& time_params() const { return time_params_; }

  /// After run(): each rank's final logical clock, and the max over ranks —
  /// the simulated critical-path execution time.  A crashed rank's entry is
  /// its clock at death.
  const std::vector<double>& final_clocks() const { return final_clocks_; }
  double critical_path_time() const;

  /// After run(): each rank's peak registered working set in bytes, and the
  /// word-denominated max — meaningful only for programs that register
  /// buffers (WorkingSet).
  const std::vector<i64>& peak_memory_bytes() const { return peak_memory_; }
  double max_peak_memory_words() const;

  /// Barrier clock synchronization support (used by RankCtx::barrier).
  double sync_clock_at_barrier(int rank, double clock);

 private:
  /// Liveness bookkeeping when rank `r` stops participating: mark it dead in
  /// every mailbox and shrink the barrier so survivors cannot hang on it.
  void handle_rank_failure(int r);

  Network network_;
  Barrier barrier_;
  std::uint64_t seed_;
  std::unique_ptr<Trace> trace_;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::unique_ptr<CrashPlan> crash_plan_;
  std::unique_ptr<ReliableTransport> reliable_;
  std::vector<UndeliveredMessage> transport_debris_;
  AlphaBeta time_params_{1.0, 1.0};
  SchedulerSpec scheduler_;
  std::vector<double> final_clocks_;
  std::vector<double> barrier_clocks_;
  /// Max over barrier_clocks_, reduced once per barrier release by the
  /// barrier's on_release hook (written and read under the barrier mutex).
  double barrier_max_ = 0.0;
  std::vector<i64> peak_memory_;
  CrashOutcome outcome_;
  std::mutex outcome_mutex_;
};

}  // namespace camb
