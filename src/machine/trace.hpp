// trace.hpp — optional per-message event tracing for the simulated machine.
//
// When enabled, every network send is recorded with its envelope, size, the
// sender's active phase, and a global sequence number.  Traces answer the
// questions aggregate counters cannot: which *pairs* of ranks exchange how
// much (the traffic matrix — e.g. showing Algorithm 1's fiber structure),
// what a collective's round schedule actually looked like, and whether two
// phases overlapped traffic.  Off by default: tracing allocates per message.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace camb {

/// One recorded message.
struct MessageEvent {
  std::uint64_t seq = 0;  ///< global order of sends (atomic counter)
  int src = -1;
  int dst = -1;
  int tag = 0;
  i64 bytes = 0;      ///< exact payload size (elems x elem width)
  std::string phase;  ///< sender's active phase at send time

  /// Payload size in 8-byte words (exact halves for 4-byte scalars).
  double words() const { return static_cast<double>(bytes) / 8.0; }
};

/// One recorded fault injection (delay, retry burst, or reordering applied
/// to a send by the fault layer).  Shares the sequence counter with
/// MessageEvent, so fault events interleave with the message log.
struct FaultEvent {
  std::uint64_t seq = 0;
  int src = -1;
  int dst = -1;
  int tag = 0;
  int failed_attempts = 0;  ///< transient failures absorbed by retries
  double delay = 0.0;       ///< injected delivery delay (clock units)
  int reorder_skip = 0;     ///< queue positions the message jumped
};

/// One recorded reliable-transport repair (machine/reliable.hpp): a send
/// whose copies were dropped, corrupted, or duplicated on the wire.  Shares
/// the sequence counter with MessageEvent, so transport events interleave
/// with the message log and a phase-trace reader sees retransmits in send
/// order.
struct TransportEvent {
  std::uint64_t seq = 0;
  int src = -1;
  int dst = -1;
  int tag = 0;
  i64 bytes = 0;            ///< payload bytes per copy
  int dropped_copies = 0;   ///< copies lost in flight
  int corrupt_copies = 0;   ///< copies delivered corrupted and nacked
  bool duplicated = false;  ///< the clean copy was delivered twice
};

class Trace {
 public:
  explicit Trace(int nprocs);

  int nprocs() const { return nprocs_; }

  /// Record one send (thread-safe; called by the network).
  void record(int src, int dst, int tag, i64 bytes, const std::string& phase);

  /// Record one fault injection (thread-safe; called by the network when a
  /// fault plan perturbed the matching send).
  void record_fault(int src, int dst, int tag, int failed_attempts,
                    double delay, int reorder_skip);

  /// Record one reliable-transport repair (thread-safe; called by the
  /// network when SDC injection touched the matching send).
  void record_transport(int src, int dst, int tag, i64 bytes,
                        int dropped_copies, int corrupt_copies,
                        bool duplicated);

  /// Snapshot of all fault events in sequence order.
  std::vector<FaultEvent> fault_events() const;

  std::size_t fault_event_count() const;

  /// Snapshot of all transport events in sequence order.
  std::vector<TransportEvent> transport_events() const;

  std::size_t transport_event_count() const;

  /// Snapshot of all events in sequence order.
  std::vector<MessageEvent> events() const;

  std::size_t event_count() const;

  /// words[src][dst] — total words sent from src to dst (exact halves for
  /// 4-byte scalars; integer-valued for f64 traffic).
  std::vector<std::vector<double>> traffic_matrix() const;

  /// Total words from a to b (directed).
  double words_between(int src, int dst) const;

  /// Events recorded under one phase label.
  std::vector<MessageEvent> events_in_phase(const std::string& phase) const;

  /// Distinct communication partners of a rank (union of in and out).
  std::vector<int> partners_of(int rank) const;

  /// Write the full event log as CSV (seq,src,dst,tag,bytes,phase).
  void write_csv(const std::string& path) const;

 private:
  int nprocs_;
  mutable std::mutex mutex_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::vector<MessageEvent> events_;
  std::vector<FaultEvent> fault_events_;
  std::vector<TransportEvent> transport_events_;
};

}  // namespace camb
