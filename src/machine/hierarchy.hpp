// hierarchy.hpp — two-level (node / core) analysis of message traces.
//
// Real machines group cores into nodes: intra-node words are cheap,
// inter-node words are the scarce resource.  The §3.1 model is flat, but its
// bounds still govern the node level — treat each node as one "processor"
// with its cores' combined memory, and Theorem 3 applies to the inter-node
// traffic with P' = node count.  This module classifies a trace's messages
// by a rank→node mapping and reports the quantities that matter at that
// level, so the benches can show how much the *mapping* of the logical grid
// onto nodes changes inter-node communication (fiber-aligned placement keeps
// whole collectives inside nodes).
#pragma once

#include <functional>
#include <vector>

#include "machine/trace.hpp"

namespace camb {

/// A rank→node assignment over `nprocs` ranks and `nodes` nodes.
class NodeMapping {
 public:
  /// Blocked: ranks [k·c, (k+1)·c) on node k (c = nprocs/nodes).
  static NodeMapping blocked(int nprocs, int nodes);
  /// Round-robin: rank r on node r mod nodes.
  static NodeMapping round_robin(int nprocs, int nodes);
  /// Arbitrary assignment (size nprocs, values in [0, nodes)).
  static NodeMapping custom(std::vector<int> node_of, int nodes);

  int nprocs() const { return static_cast<int>(node_of_.size()); }
  int nodes() const { return nodes_; }
  int node_of(int rank) const;

 private:
  NodeMapping(std::vector<int> node_of, int nodes);
  std::vector<int> node_of_;
  int nodes_;
};

/// Inter-/intra-node traffic split of a trace under a mapping.
struct HierarchyReport {
  double total_words = 0;
  double intra_node_words = 0;
  double inter_node_words = 0;
  /// Max over nodes of words entering the node from other nodes — the
  /// node-level analog of the per-processor critical-path count that
  /// Theorem 3 (with P' = nodes) lower-bounds.
  double max_node_ingress_words = 0;
  /// Max over nodes of words leaving the node.
  double max_node_egress_words = 0;
};

HierarchyReport analyze_hierarchy(const Trace& trace,
                                  const NodeMapping& mapping);

}  // namespace camb
