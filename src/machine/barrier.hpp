// barrier.hpp — reusable sense-reversing barrier for the simulated machine.
//
// We implement our own rather than use std::barrier so the machine can keep
// full control over synchronization semantics (participants can be dropped
// mid-run when ranks crash) and so the barrier can be reused an unbounded
// number of times by exactly `count` participants.
//
// Fiber awareness: a participant running on a fiber parks instead of
// blocking its worker thread (see fiber.hpp), so a 65,536-rank barrier
// occupies pool-width OS threads, not 65,536.
//
// The optional on_release hook runs exactly once per release — by the last
// arriver (or the drop that released the survivors), under the barrier
// mutex, before anyone is woken.  Machine uses it to reduce the barrier
// clocks to their max once per barrier instead of once per rank, turning
// the whole-machine clock sync from O(P^2) reads into O(P).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>

#include "machine/fiber.hpp"
#include "util/error.hpp"

namespace camb {

class Barrier {
 public:
  explicit Barrier(int count) : count_(count), waiting_(0), sense_(false) {
    CAMB_CHECK_MSG(count >= 1, "barrier needs at least one participant");
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Hook run by the releasing participant, under the barrier mutex, each
  /// time the barrier trips (including a release via drop_participant).
  void set_on_release(std::function<void()> fn) { on_release_ = std::move(fn); }

  /// Block until all current participants have arrived.
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool my_sense = sense_;
    if (++waiting_ >= count_) {
      release();
    } else {
      fiber_aware_wait(lock, cv_, waiters_,
                       [&] { return sense_ != my_sense; });
    }
  }

  /// Permanently remove one participant (a crashed or errored rank).  If the
  /// remaining waiters now satisfy the reduced count, the barrier releases
  /// them — this is what keeps survivors from hanging on a dead peer.
  void drop_participant() {
    std::lock_guard<std::mutex> lock(mutex_);
    --count_;
    CAMB_CHECK_MSG(count_ >= 0, "barrier lost more participants than it had");
    if (waiting_ >= count_ && count_ > 0) {
      release();
    } else {
      cv_.notify_all();
      waiters_.notify_all();
    }
  }

 private:
  /// Trip the barrier (mutex held): run the hook, flip the sense, wake
  /// every waiter — parked fibers and blocked threads alike.
  void release() {
    waiting_ = 0;
    if (on_release_) on_release_();
    sense_ = !sense_;
    cv_.notify_all();
    waiters_.notify_all();
  }

  int count_;
  int waiting_;
  bool sense_;
  std::mutex mutex_;
  std::condition_variable cv_;
  FiberWaitList waiters_;
  std::function<void()> on_release_;
};

}  // namespace camb
