// barrier.hpp — reusable sense-reversing barrier for the simulated machine.
//
// We implement our own rather than use std::barrier so the machine can keep
// full control over synchronization semantics (no completion function, no
// arrival tokens) and so the barrier can be reused an unbounded number of
// times by exactly `count` participants.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/error.hpp"

namespace camb {

class Barrier {
 public:
  explicit Barrier(int count) : count_(count), waiting_(0), sense_(false) {
    CAMB_CHECK_MSG(count >= 1, "barrier needs at least one participant");
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all current participants have arrived.
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool my_sense = sense_;
    if (++waiting_ >= count_) {
      waiting_ = 0;
      sense_ = !sense_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return sense_ != my_sense; });
    }
  }

  /// Permanently remove one participant (a crashed or errored rank).  If the
  /// remaining waiters now satisfy the reduced count, the barrier releases
  /// them — this is what keeps survivors from hanging on a dead peer.
  void drop_participant() {
    std::lock_guard<std::mutex> lock(mutex_);
    --count_;
    CAMB_CHECK_MSG(count_ >= 0, "barrier lost more participants than it had");
    if (waiting_ >= count_ && count_ > 0) {
      waiting_ = 0;
      sense_ = !sense_;
    }
    cv_.notify_all();
  }

 private:
  int count_;
  int waiting_;
  bool sense_;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace camb
