#include "machine/reliable.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace camb {

std::uint64_t checksum64(const double* data, std::size_t words,
                         std::uint64_t seed) {
  // Seeded splitmix64 chain over the payload's bit patterns.  Length is
  // folded in so a truncated payload can't collide with its prefix, and the
  // final mix makes single-bit payload differences avalanche through the
  // whole digest — a one-bit flip is always detected.
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (words + 1));
  std::uint64_t acc = splitmix64(state);
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &data[i], sizeof(bits));
    state ^= bits;
    acc ^= splitmix64(state);
  }
  return acc;
}

Buffer ReliableTransport::forge_corrupt_copy(
    const Buffer& payload, std::uint64_t entropy, int copy_index,
    std::uint64_t* checksum_out) const {
  const std::uint64_t original = checksum(payload);
  std::uint64_t state =
      entropy ^ (0xA0761D6478BD642FULL *
                 (static_cast<std::uint64_t>(copy_index) + 1));
  const std::uint64_t draw = splitmix64(state);
  if (payload.size() == 0) {
    // Nothing on the wire to flip but the envelope itself: corrupt the
    // checksum field, so verification against the empty payload still fails.
    *checksum_out = original ^ (1ULL << (draw & 63));
    return Buffer::zeros(0);
  }
  Buffer copy = Buffer::copy_of(payload.data(), payload.size());
  const std::size_t word = static_cast<std::size_t>(draw % payload.size());
  const int bit = static_cast<int>((draw >> 32) & 63);
  std::uint64_t bits;
  std::memcpy(&bits, &copy.data()[word], sizeof(bits));
  bits ^= 1ULL << bit;
  std::memcpy(&copy.data()[word], &bits, sizeof(bits));
  *checksum_out = original;  // the sender stamped the clean payload's digest
  return copy;
}

}  // namespace camb
