// tags.hpp — the machine's tag space and its per-rank allocator.
//
// Message matching is exact on (src, tag), so correctness of concurrent
// collectives rests entirely on tag discipline.  Instead of hand-numbered
// constants, every communicator (collectives/comm.hpp) owns a *lease*: a
// contiguous run of tag blocks obtained from this allocator.  Each rank
// holds its own allocator (there is no cross-thread state to race on); the
// SPMD contract is that every rank performs the identical sequence of lease
// requests, so the k-th lease has the same base on every rank — the same
// discipline MPI imposes on communicator-creation order.  Communicators
// whose members differ (the row fibers of a grid, say) may then share a
// base, which is safe exactly because their (src, dst) pairs are disjoint.
//
// The space is split in two independently-cursored regions so that ranks
// whose *algorithm-phase* histories diverged (a survivor that abandoned
// mid-collective has stopped creating algorithm comms) still agree on
// recovery leases:
//
//   algorithm region  [0, kRecoveryTagBase)
//   recovery region   [kRecoveryTagBase, kTagSpaceLimit)
//
// Tags at or above kRecoveryTagBase survive RankCtx::abandon() — see
// faults.hpp for the failure-detection semantics built on that split.
#pragma once

#include "util/error.hpp"
#include "util/math.hpp"

namespace camb {

/// Tags available to a single collective invocation (one *block*).
inline constexpr int kTagBlockWidth = 1 << 12;

/// Start of the recovery region (shrink agreement, ABFT reconstruction).
/// Kept here — next to the allocator that enforces it — and re-exported by
/// faults.hpp, whose abandon() semantics key off it.
inline constexpr int kRecoveryTagBase = 1 << 24;

/// One past the last usable tag.
inline constexpr int kTagSpaceLimit = 1 << 30;

/// A contiguous run of `blocks` tag blocks starting at tag `base`.
struct TagLease {
  int base = 0;
  int blocks = 0;

  /// One past the last tag covered by this lease.
  int limit() const { return base + blocks * kTagBlockWidth; }
};

/// Per-rank lease cursor over the two tag regions.  Deliberately not
/// shared between ranks: determinism comes from uniform request order, not
/// from synchronization.  Throws camb::Error when a region is exhausted —
/// silent wraparound would alias live tags and corrupt message matching.
class TagAllocator {
 public:
  /// Lease `blocks` tag blocks from the algorithm region.
  TagLease lease(int blocks) {
    return take(next_, kRecoveryTagBase, "algorithm", blocks);
  }

  /// Lease `blocks` tag blocks from the recovery region.  Its cursor is
  /// independent of the algorithm region's, so ranks that stopped creating
  /// algorithm communicators mid-run still agree on recovery leases.
  TagLease lease_recovery(int blocks) {
    return take(next_recovery_, kTagSpaceLimit, "recovery", blocks);
  }

  /// Advance the recovery cursor to an agreed base (checkpoint/rollback
  /// round bands).  Monotone only: rewinding would re-lease live tags.  All
  /// ranks call this with the same agreed base at the same protocol point,
  /// which re-aligns their recovery cursors even when the preceding band was
  /// consumed unevenly (a rank that aborted mid-round leased fewer blocks).
  void set_recovery_cursor(int base) {
    CAMB_CHECK_MSG(base >= next_recovery_,
                   "recovery cursor may only move forward");
    CAMB_CHECK_MSG(base < kTagSpaceLimit, "recovery tag region exhausted");
    next_recovery_ = base;
  }

  /// Remaining whole blocks in each region (introspection for tests).
  int algorithm_blocks_left() const {
    return (kRecoveryTagBase - next_) / kTagBlockWidth;
  }
  int recovery_blocks_left() const {
    return (kTagSpaceLimit - next_recovery_) / kTagBlockWidth;
  }

 private:
  TagLease take(int& cursor, int region_limit, const char* region,
                int blocks) {
    CAMB_CHECK_MSG(blocks > 0, "tag lease must cover at least one block");
    const i64 width = static_cast<i64>(blocks) * kTagBlockWidth;
    CAMB_CHECK_MSG(static_cast<i64>(cursor) + width <= region_limit,
                   std::string(region) + " tag region exhausted");
    const TagLease lease{cursor, blocks};
    cursor += static_cast<int>(width);
    return lease;
  }

  int next_ = 0;
  int next_recovery_ = kRecoveryTagBase;
};

}  // namespace camb
