// error.hpp — error handling and contract-checking primitives.
//
// The library is used both as a research harness (where a violated invariant
// should stop the experiment loudly) and inside gtest (where we want a
// catchable exception type).  All internal contract violations throw
// camb::Error carrying file/line context.
#pragma once

#include <stdexcept>
#include <string>

namespace camb {

/// Exception thrown on any violated precondition or internal invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace camb

/// Contract check: always evaluated (also in release builds).  The cost model
/// and bound code is arithmetic-heavy and cheap; silent UB from a bad grid or
/// a zero dimension would poison every downstream number, so we always check.
#define CAMB_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::camb::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
    }                                                                        \
  } while (0)

/// Contract check with a contextual message (anything streamable to string).
#define CAMB_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::camb::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (0)
