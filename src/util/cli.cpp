#include "util/cli.hpp"

#include <sstream>

#include "util/error.hpp"

namespace camb {

void Cli::add_flag(const std::string& name, const std::string& doc,
                   const std::string& default_value) {
  CAMB_CHECK_MSG(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{doc, default_value};
  order_.push_back(name);
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    CAMB_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    std::string name, value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      CAMB_CHECK_MSG(i + 1 < argc, "flag --" + name + " missing value");
      value = argv[++i];
    }
    auto it = flags_.find(name);
    CAMB_CHECK_MSG(it != flags_.end(), "unknown flag: --" + name);
    it->second.value = value;
  }
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  CAMB_CHECK_MSG(it != flags_.end(), "flag not registered: " + name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  std::int64_t out = std::stoll(v, &pos);
  CAMB_CHECK_MSG(pos == v.size(), "flag --" + name + " is not an integer: " + v);
  return out;
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  double out = std::stod(v, &pos);
  CAMB_CHECK_MSG(pos == v.size(), "flag --" + name + " is not a number: " + v);
  return out;
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw Error("flag --" + name + " is not a boolean: " + v);
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " <value>   " << f.doc << " (default: " << f.value
       << ")\n";
  }
  return os.str();
}

}  // namespace camb
