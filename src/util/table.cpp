#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace camb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CAMB_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  CAMB_CHECK_MSG(cells.size() == headers_.size(),
                 "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c]
         << (c + 1 == row.size() ? " |\n" : " | ");
    }
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << (c + 1 == widths.size() ? "|\n" : "+");
  }
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  CAMB_CHECK_MSG(file.good(), "cannot open CSV output file: " + path);
  print_csv(file);
  CAMB_CHECK_MSG(file.good(), "error writing CSV output file: " + path);
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::fmt_int(long long value) { return std::to_string(value); }

std::string Table::fmt_sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace camb
