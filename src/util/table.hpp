// table.hpp — console table and CSV writer used by every benchmark binary.
//
// Benches print paper-shaped rows (aligned, human-readable) and optionally a
// CSV copy so experiments can be recorded mechanically in EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace camb {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  std::size_t num_rows() const { return rows_.size(); }

  /// Render an aligned console table.
  void print(std::ostream& os) const;

  /// Render CSV (RFC-4180-ish quoting: cells containing comma/quote/newline
  /// are quoted, embedded quotes doubled).
  void print_csv(std::ostream& os) const;

  /// Write CSV to a file path; throws camb::Error on I/O failure.
  void write_csv(const std::string& path) const;

  /// Format helpers used pervasively by benches.
  static std::string fmt(double value, int precision = 4);
  static std::string fmt_int(long long value);
  /// Human-scaled word count: "1.23e+09" style scientific for big numbers.
  static std::string fmt_sci(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace camb
