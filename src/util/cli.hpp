// cli.hpp — minimal command-line flag parser for examples and benches.
//
// Supports `--name value` and `--name=value` forms, typed lookups with
// defaults, and a generated usage string.  Unknown flags are an error so that
// typos in experiment scripts fail loudly instead of silently using defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace camb {

class Cli {
 public:
  /// Register a flag before parsing.  `doc` appears in usage().
  void add_flag(const std::string& name, const std::string& doc,
                const std::string& default_value);

  /// Parse argv; throws camb::Error on unknown or malformed flags.
  /// Recognizes --help by setting help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_; }

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string doc;
    std::string value;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_ = false;
};

}  // namespace camb
