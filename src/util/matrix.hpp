// matrix.hpp — dense row-major matrix container used by the distributed
// matrix multiplication algorithms and the reference kernels.
//
// This is deliberately simple: owning storage, row-major layout, submatrix
// copy-in/copy-out (the distributed algorithms move rectangular blocks), and
// comparison helpers for verification.  BLAS-style kernels live in
// matmul/local_gemm.hpp.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/scalar.hpp"

namespace camb {

template <typename T>
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(i64 rows, i64 cols, T init = T{})
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(checked_mul(rows, cols)), init) {
    CAMB_CHECK_MSG(rows >= 0 && cols >= 0, "matrix dimensions must be >= 0");
  }

  i64 rows() const { return rows_; }
  i64 cols() const { return cols_; }
  /// Element count through the same overflow-checked product the constructor
  /// uses (a raw rows_ * cols_ would silently wrap where construction threw).
  i64 size() const { return checked_mul(rows_, cols_); }
  bool empty() const { return data_.empty(); }

  T& operator()(i64 i, i64 j) {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  const T& operator()(i64 i, i64 j) const {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Copy the rows x cols block at (r0, c0) of this matrix into a new matrix.
  Matrix block(i64 r0, i64 c0, i64 rows, i64 cols) const {
    CAMB_CHECK_MSG(r0 >= 0 && c0 >= 0 && r0 + rows <= rows_ && c0 + cols <= cols_,
                   "block out of range");
    Matrix out(rows, cols);
    for (i64 i = 0; i < rows; ++i) {
      for (i64 j = 0; j < cols; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
    }
    return out;
  }

  /// Copy `src` into this matrix with its top-left corner at (r0, c0).
  void set_block(i64 r0, i64 c0, const Matrix& src) {
    CAMB_CHECK_MSG(r0 >= 0 && c0 >= 0 && r0 + src.rows() <= rows_ &&
                       c0 + src.cols() <= cols_,
                   "set_block out of range");
    for (i64 i = 0; i < src.rows(); ++i) {
      for (i64 j = 0; j < src.cols(); ++j) (*this)(r0 + i, c0 + j) = src(i, j);
    }
  }

  /// Add `src` into this matrix at (r0, c0).
  void add_block(i64 r0, i64 c0, const Matrix& src) {
    CAMB_CHECK_MSG(r0 >= 0 && c0 >= 0 && r0 + src.rows() <= rows_ &&
                       c0 + src.cols() <= cols_,
                   "add_block out of range");
    for (i64 i = 0; i < src.rows(); ++i) {
      for (i64 j = 0; j < src.cols(); ++j) (*this)(r0 + i, c0 + j) += src(i, j);
    }
  }

  /// Fill with deterministic pseudo-random values through the scalar's
  /// traits.  Floating scalars keep the historical [-1, 1) draw (for double
  /// the stream is bit-identical to the pre-traits behaviour); exact
  /// (integer) scalars map the unit draw onto their full fill range instead
  /// of truncating every draw to 0 through a unit-magnitude cast.
  void fill_random(Rng& rng) {
    for (auto& value : data_) {
      const double u = rng.uniform(-1.0, 1.0);
      if constexpr (ScalarTraits<T>::exact) {
        value = ScalarTraits<T>::from_unit(u / 2.0);
      } else {
        value = ScalarTraits<T>::from_unit(u);
      }
    }
  }

  /// Fill element (i, j) with a deterministic function of the *global* index
  /// (gr0 + i, gc0 + j).  Used to build a distributed matrix whose contents
  /// are identical to a reference matrix built serially.
  void fill_indexed(i64 gr0, i64 gc0) {
    for (i64 i = 0; i < rows_; ++i) {
      for (i64 j = 0; j < cols_; ++j) {
        std::uint64_t s =
            static_cast<std::uint64_t>((gr0 + i) * 0x1000003 + (gc0 + j));
        const double u =
            static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53 - 0.5;
        (*this)(i, j) = ScalarTraits<T>::from_unit(u);
      }
    }
  }

  /// Integer-valued variant of fill_indexed: small integers in [-8, 7].
  /// Every sum-of-products over such entries is exact in double arithmetic
  /// (far below 2^53), hence independent of summation order — the property
  /// the ABFT checksum reconstruction relies on for bit-identical recovery.
  void fill_indexed_int(i64 gr0, i64 gc0) {
    for (i64 i = 0; i < rows_; ++i) {
      for (i64 j = 0; j < cols_; ++j) {
        std::uint64_t s =
            static_cast<std::uint64_t>((gr0 + i) * 0x1000003 + (gc0 + j));
        (*this)(i, j) =
            static_cast<T>(static_cast<double>(splitmix64(s) >> 60) - 8.0);
      }
    }
  }

  /// Max absolute element-wise difference with another matrix of equal shape.
  double max_abs_diff(const Matrix& other) const {
    CAMB_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
    double worst = 0.0;
    for (std::size_t idx = 0; idx < data_.size(); ++idx) {
      worst = std::max(
          worst, std::abs(ScalarTraits<T>::to_double(data_[idx]) -
                          ScalarTraits<T>::to_double(other.data_[idx])));
    }
    return worst;
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  i64 rows_, cols_;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;

/// Serial reference multiplication C = A * B (triple loop, ikj order).
template <typename T>
Matrix<T> matmul_reference(const Matrix<T>& a, const Matrix<T>& b) {
  CAMB_CHECK_MSG(a.cols() == b.rows(), "inner dimensions must agree");
  Matrix<T> c(a.rows(), b.cols());
  for (i64 i = 0; i < a.rows(); ++i) {
    for (i64 k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      for (i64 j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

}  // namespace camb
