// math.hpp — integer and floating utilities used throughout the library.
//
// The bound formulas (Theorem 3, eq. 3) mix exact integer quantities
// (dimensions, processor counts, word counts) with real-valued optima
// (fractional grids, 2/3 powers).  Integer quantities use std::int64_t and
// overflow-checked products; real quantities use double.
#pragma once

#include <cstdint>
#include <vector>

namespace camb {

using i64 = std::int64_t;

/// ceil(a / b) for positive integers.
i64 ceil_div(i64 a, i64 b);

/// Overflow-checked product of two non-negative i64; throws camb::Error on
/// overflow.  Dimensions up to ~1e6 cubed fit comfortably in i64; this guards
/// against misuse at larger scales.
i64 checked_mul(i64 a, i64 b);

/// Overflow-checked triple product a*b*c.
i64 checked_mul3(i64 a, i64 b, i64 c);

/// True if `d` divides `n` exactly (n >= 0, d > 0).
bool divides(i64 d, i64 n);

/// All positive divisors of n (n >= 1), ascending.
std::vector<i64> divisors(i64 n);

/// divisors() into a caller-owned vector (cleared first): the allocation-free
/// form for hot loops that enumerate many n with one scratch buffer.
void divisors_into(i64 n, std::vector<i64>& out);

/// Number of positive divisors of n (the divisor function d(n)).
i64 divisor_count(i64 n);

/// All ordered factor triples (a, b, c) with a*b*c == p (p >= 1), in
/// lexicographic order.  Size grows as d(p)^2-ish; fine for p up to millions.
struct FactorTriple {
  i64 a, b, c;

  bool operator==(const FactorTriple&) const = default;
};
std::vector<FactorTriple> factor_triples(i64 p);

/// Exact count of ordered factor triples of p without materializing them:
/// the 3-dimensional divisor function d_3(p) = prod (e_i+1)(e_i+2)/2 over
/// the prime factorization p = prod q_i^{e_i}.  factor_triples_into reserves
/// from (and asserts against) this closed form.
i64 factor_triple_count(i64 p);

/// Reusable divisor scratch for factor_triples_into, so repeated enumeration
/// (e.g. the at-most grid search walking every p <= P) allocates nothing
/// after warm-up.
struct FactorScratch {
  std::vector<i64> outer, inner;
};

/// factor_triples() into a caller-owned vector (cleared first), reserved
/// exactly from the d_3 closed form.  The overload without scratch owns a
/// temporary one.
void factor_triples_into(i64 p, std::vector<FactorTriple>& out,
                         FactorScratch& scratch);
void factor_triples_into(i64 p, std::vector<FactorTriple>& out);

/// Largest integer r with r*r <= n.
i64 isqrt(i64 n);

/// Largest integer r with r*r*r <= n.
i64 icbrt(i64 n);

/// Integer power base^exp with overflow check (exp >= 0).
i64 ipow(i64 base, int exp);

/// True if x is within `rel` relative tolerance (or `abs_tol` absolute, for
/// values near zero) of y.
bool approx_eq(double x, double y, double rel = 1e-9, double abs_tol = 1e-12);

/// Median of three values.
double median3(double a, double b, double c);
i64 median3(i64 a, i64 b, i64 c);

}  // namespace camb
