#include "util/math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace camb {

i64 ceil_div(i64 a, i64 b) {
  CAMB_CHECK_MSG(a >= 0 && b > 0, "ceil_div requires a >= 0, b > 0");
  return (a + b - 1) / b;
}

i64 checked_mul(i64 a, i64 b) {
  CAMB_CHECK_MSG(a >= 0 && b >= 0, "checked_mul requires non-negative inputs");
  if (a == 0 || b == 0) return 0;
  CAMB_CHECK_MSG(a <= std::numeric_limits<i64>::max() / b,
                 "integer overflow in checked_mul");
  return a * b;
}

i64 checked_mul3(i64 a, i64 b, i64 c) { return checked_mul(checked_mul(a, b), c); }

bool divides(i64 d, i64 n) {
  CAMB_CHECK(d > 0 && n >= 0);
  return n % d == 0;
}

std::vector<i64> divisors(i64 n) {
  CAMB_CHECK_MSG(n >= 1, "divisors requires n >= 1");
  std::vector<i64> small, large;
  for (i64 d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      small.push_back(d);
      if (d != n / d) large.push_back(n / d);
    }
  }
  small.insert(small.end(), large.rbegin(), large.rend());
  return small;
}

std::vector<FactorTriple> factor_triples(i64 p) {
  CAMB_CHECK_MSG(p >= 1, "factor_triples requires p >= 1");
  std::vector<FactorTriple> out;
  for (i64 a : divisors(p)) {
    const i64 rest = p / a;
    for (i64 b : divisors(rest)) {
      out.push_back({a, b, rest / b});
    }
  }
  return out;
}

i64 isqrt(i64 n) {
  CAMB_CHECK(n >= 0);
  auto r = static_cast<i64>(std::sqrt(static_cast<double>(n)));
  while (r > 0 && r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

i64 icbrt(i64 n) {
  CAMB_CHECK(n >= 0);
  auto r = static_cast<i64>(std::cbrt(static_cast<double>(n)));
  while (r > 0 && r * r * r > n) --r;
  while ((r + 1) * (r + 1) * (r + 1) <= n) ++r;
  return r;
}

i64 ipow(i64 base, int exp) {
  CAMB_CHECK(exp >= 0);
  i64 r = 1;
  for (int i = 0; i < exp; ++i) r = checked_mul(r, base);
  return r;
}

bool approx_eq(double x, double y, double rel, double abs_tol) {
  const double diff = std::abs(x - y);
  if (diff <= abs_tol) return true;
  return diff <= rel * std::max(std::abs(x), std::abs(y));
}

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

i64 median3(i64 a, i64 b, i64 c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace camb
