#include "util/math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace camb {

i64 ceil_div(i64 a, i64 b) {
  CAMB_CHECK_MSG(a >= 0 && b > 0, "ceil_div requires a >= 0, b > 0");
  return (a + b - 1) / b;
}

i64 checked_mul(i64 a, i64 b) {
  CAMB_CHECK_MSG(a >= 0 && b >= 0, "checked_mul requires non-negative inputs");
  if (a == 0 || b == 0) return 0;
  CAMB_CHECK_MSG(a <= std::numeric_limits<i64>::max() / b,
                 "integer overflow in checked_mul");
  return a * b;
}

i64 checked_mul3(i64 a, i64 b, i64 c) { return checked_mul(checked_mul(a, b), c); }

bool divides(i64 d, i64 n) {
  CAMB_CHECK(d > 0 && n >= 0);
  return n % d == 0;
}

void divisors_into(i64 n, std::vector<i64>& out) {
  CAMB_CHECK_MSG(n >= 1, "divisors requires n >= 1");
  out.clear();
  // Small divisors ascending, then their cofactors walked backwards: one
  // buffer, same ascending order the two-vector form produced.
  for (i64 d = 1; d * d <= n; ++d) {
    if (n % d == 0) out.push_back(d);
  }
  for (auto i = static_cast<i64>(out.size()) - 1; i >= 0; --i) {
    const i64 d = out[static_cast<std::size_t>(i)];
    if (d != n / d) out.push_back(n / d);
  }
}

std::vector<i64> divisors(i64 n) {
  std::vector<i64> out;
  divisors_into(n, out);
  return out;
}

i64 divisor_count(i64 n) {
  CAMB_CHECK_MSG(n >= 1, "divisor_count requires n >= 1");
  i64 count = 1;
  i64 rest = n;
  for (i64 q = 2; q * q <= rest; ++q) {
    if (rest % q != 0) continue;
    i64 e = 0;
    while (rest % q == 0) {
      rest /= q;
      ++e;
    }
    count *= e + 1;
  }
  if (rest > 1) count *= 2;
  return count;
}

i64 factor_triple_count(i64 p) {
  CAMB_CHECK_MSG(p >= 1, "factor_triple_count requires p >= 1");
  i64 count = 1;
  i64 rest = p;
  for (i64 q = 2; q * q <= rest; ++q) {
    if (rest % q != 0) continue;
    i64 e = 0;
    while (rest % q == 0) {
      rest /= q;
      ++e;
    }
    count *= (e + 1) * (e + 2) / 2;
  }
  if (rest > 1) count *= 3;  // one leftover prime: e = 1, (e+1)(e+2)/2 = 3
  return count;
}

void factor_triples_into(i64 p, std::vector<FactorTriple>& out,
                         FactorScratch& scratch) {
  CAMB_CHECK_MSG(p >= 1, "factor_triples requires p >= 1");
  out.clear();
  const i64 expected = factor_triple_count(p);
  out.reserve(static_cast<std::size_t>(expected));
  divisors_into(p, scratch.outer);
  for (i64 a : scratch.outer) {
    const i64 rest = p / a;
    divisors_into(rest, scratch.inner);
    for (i64 b : scratch.inner) {
      out.push_back({a, b, rest / b});
    }
  }
  // Micro-assert: the enumeration must match the d_3 divisor-function
  // closed form exactly (and the reserve above must have been exact).
  CAMB_CHECK_MSG(static_cast<i64>(out.size()) == expected,
                 "factor-triple enumeration diverged from the d_3 closed form");
}

void factor_triples_into(i64 p, std::vector<FactorTriple>& out) {
  FactorScratch scratch;
  factor_triples_into(p, out, scratch);
}

std::vector<FactorTriple> factor_triples(i64 p) {
  std::vector<FactorTriple> out;
  factor_triples_into(p, out);
  return out;
}

i64 isqrt(i64 n) {
  CAMB_CHECK(n >= 0);
  auto r = static_cast<i64>(std::sqrt(static_cast<double>(n)));
  while (r > 0 && r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

i64 icbrt(i64 n) {
  CAMB_CHECK(n >= 0);
  auto r = static_cast<i64>(std::cbrt(static_cast<double>(n)));
  while (r > 0 && r * r * r > n) --r;
  while ((r + 1) * (r + 1) * (r + 1) <= n) ++r;
  return r;
}

i64 ipow(i64 base, int exp) {
  CAMB_CHECK(exp >= 0);
  i64 r = 1;
  for (int i = 0; i < exp; ++i) r = checked_mul(r, base);
  return r;
}

bool approx_eq(double x, double y, double rel, double abs_tol) {
  const double diff = std::abs(x - y);
  if (diff <= abs_tol) return true;
  return diff <= rel * std::max(std::abs(x), std::abs(y));
}

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

i64 median3(i64 a, i64 b, i64 c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace camb
