// rng.hpp — deterministic, splittable random number generation.
//
// Every simulated rank gets its own stream derived from (seed, rank) so that
// results are reproducible regardless of thread scheduling.  We use
// splitmix64 for stream derivation and xoshiro256** for generation — both
// public-domain algorithms implemented here from the reference descriptions.
#pragma once

#include <cstdint>

namespace camb {

/// splitmix64 step; used to seed streams and as a cheap standalone generator.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Domain-separated sub-seed derivation: one CLI-level master seed fans out
/// into independent seeds for each consumer (rank RNG streams, the fault
/// plan, …) so that a single logged value reproduces an entire run, and
/// changing one consumer's draws never perturbs another's.
/// Stable across platforms (pure integer arithmetic).
inline std::uint64_t derive_seed(std::uint64_t master, std::uint64_t domain) {
  std::uint64_t s = master ^ (0xA0761D6478BD642FULL * (domain + 1));
  return splitmix64(s);
}

/// Fixed domains for derive_seed used by the run harness.
inline constexpr std::uint64_t kSeedDomainRankRng = 0;  ///< Machine rank streams
inline constexpr std::uint64_t kSeedDomainFaults = 1;   ///< FaultPlan decisions
inline constexpr std::uint64_t kSeedDomainCrashes = 2;  ///< CrashPlan positions
inline constexpr std::uint64_t kSeedDomainSdc = 3;      ///< message drop/dup/flip draws
inline constexpr std::uint64_t kSeedDomainMemSdc = 4;   ///< output-tile bit-flip draws

/// xoshiro256** generator with a splitmix64-derived state.
/// Satisfies UniformRandomBitGenerator, so it plugs into <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u, std::uint64_t stream = 0) {
    std::uint64_t sm = seed + 0x632be59bd9b4e019ULL * (stream + 1);
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) for n >= 1, via rejection-free Lemire trick
  /// simplified to modulo (bias negligible for our n << 2^64 use).
  std::uint64_t below(std::uint64_t n) { return operator()() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace camb
