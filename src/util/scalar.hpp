// scalar.hpp — the scalar substrate: every type the data path can carry.
//
// The paper's Theorem 3 counts *words* moved, and the machine counts bytes
// exactly; the bridge between them is the element width declared here.  A
// "word" is normalized to sizeof(double) = 8 bytes throughout the repo, so
// an element of type T costs sizeof(T)/8 words on the wire — 1 for double
// and int64, 1/2 for float, 2 for the compensated kahan accumulator.  The
// ScalarTraits below are everything the templated layers (Buffer packing,
// collectives, distribution fills, GEMM, ABFT, Freivalds) need to know
// about a scalar: its wire width, its additive identity, how to derive a
// deterministic fill value from the index-hash unit draw, and whether its
// arithmetic is exact (integers) or rounded (floating point).
//
// The supported set is fixed at four explicit instantiations — double,
// float, std::int64_t, and kahan — selected at runtime by the DType enum
// (`--dtype {f64,f32,i64,kahan}`).  Adding a scalar means: a traits
// specialization here, a DType member, and one line in each layer's
// CAMB_FOR_EACH_SCALAR instantiation list.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "util/error.hpp"
#include "util/math.hpp"

namespace camb {

/// Compensated (Kahan–Neumaier) double accumulator.  Wire format is the
/// pair {hi, c}; the represented value is hi + c.  Addition compensates the
/// rounding of every += so long summations lose far less than plain double;
/// multiplication (GEMM products) rounds once through double and restarts
/// the compensation, which is the standard compensated-GEMM formulation.
struct kahan {
  double hi = 0.0;
  double c = 0.0;

  kahan() = default;
  explicit kahan(double v) : hi(v) {}

  double value() const { return hi + c; }

  /// Neumaier update: exact error of hi + v is captured in c.
  void add(double v) {
    const double t = hi + v;
    if (std::abs(hi) >= std::abs(v)) {
      c += (hi - t) + v;
    } else {
      c += (v - t) + hi;
    }
    hi = t;
  }

  kahan& operator+=(const kahan& o) {
    add(o.hi);
    add(o.c);
    return *this;
  }
  kahan operator*(const kahan& o) const { return kahan(value() * o.value()); }
  kahan operator+(const kahan& o) const {
    kahan r = *this;
    r += o;
    return r;
  }
  kahan& operator-=(const kahan& o) { return *this += -o; }
  kahan operator-(const kahan& o) const {
    kahan r = *this;
    r -= o;
    return r;
  }
  kahan operator-() const {
    kahan r;
    r.hi = -hi;
    r.c = -c;
    return r;
  }
  friend bool operator==(const kahan& a, const kahan& b) {
    return a.hi == b.hi && a.c == b.c;
  }
  friend bool operator!=(const kahan& a, const kahan& b) { return !(a == b); }
};

/// Per-scalar knowledge used by every templated layer.  The primary
/// template is intentionally undefined: instantiating the data path over an
/// unsupported scalar is a compile error, not a silent guess.
template <typename T>
struct ScalarTraits;

template <>
struct ScalarTraits<double> {
  static constexpr const char* name = "f64";
  static constexpr i64 elem_bytes = 8;
  static constexpr bool exact = false;  // rounded arithmetic
  static double zero() { return 0.0; }
  static double to_double(double v) { return v; }
  /// Deterministic fill value from the index-hash unit draw u ∈ [-0.5, 0.5).
  /// For double this is the identity, so existing f64 streams (and the
  /// committed golden records) are bit-unchanged.
  static double from_unit(double u) { return u; }
};

template <>
struct ScalarTraits<float> {
  static constexpr const char* name = "f32";
  static constexpr i64 elem_bytes = 4;
  static constexpr bool exact = false;
  static float zero() { return 0.0f; }
  static double to_double(float v) { return static_cast<double>(v); }
  static float from_unit(double u) { return static_cast<float>(u); }
};

template <>
struct ScalarTraits<std::int64_t> {
  static constexpr const char* name = "i64";
  static constexpr i64 elem_bytes = 8;
  static constexpr bool exact = true;  // integer arithmetic never rounds
  /// Fill magnitude bound: inputs drawn from [-kFillMax, kFillMax] keep the
  /// ABFT checksum sums (over ≤ ~10^5-element panels) far inside i64 range,
  /// so checksum reconstruction is bit-exact by construction.
  static constexpr std::int64_t kFillMax = 8;
  static std::int64_t zero() { return 0; }
  static double to_double(std::int64_t v) { return static_cast<double>(v); }
  /// Exact-range fill: u ∈ [-0.5, 0.5) maps affinely onto the integer range
  /// [-kFillMax, kFillMax] — no truncation through a unit cast (which would
  /// collapse every draw to 0).
  static std::int64_t from_unit(double u) {
    const double scaled = (u + 0.5) * (2.0 * kFillMax + 1.0);
    std::int64_t v = static_cast<std::int64_t>(scaled) - kFillMax;
    if (v > kFillMax) v = kFillMax;  // guard u == 0.5 - eps edge
    return v;
  }
};

template <>
struct ScalarTraits<kahan> {
  static constexpr const char* name = "kahan";
  static constexpr i64 elem_bytes = 16;
  static constexpr bool exact = false;
  static kahan zero() { return kahan(); }
  static double to_double(kahan v) { return v.value(); }
  static kahan from_unit(double u) { return kahan(u); }
};

static_assert(sizeof(kahan) == 16, "kahan wire format is the {hi, c} pair");

/// Instantiation list for the templated layers: X(T) for each supported
/// scalar.  Every layer's explicit instantiations expand this one macro, so
/// the supported set cannot drift between layers.
#define CAMB_FOR_EACH_SCALAR(X) \
  X(double)                     \
  X(float)                      \
  X(::camb::i64)                \
  X(::camb::kahan)

/// Runtime scalar selector carried by RunOptions / the CLI.
enum class DType { kF64, kF32, kI64, kKahan };

inline const char* dtype_name(DType d) {
  switch (d) {
    case DType::kF64:
      return "f64";
    case DType::kF32:
      return "f32";
    case DType::kI64:
      return "i64";
    case DType::kKahan:
      return "kahan";
  }
  throw Error("unreachable dtype");
}

inline i64 dtype_elem_bytes(DType d) {
  switch (d) {
    case DType::kF64:
      return 8;
    case DType::kF32:
      return 4;
    case DType::kI64:
      return 8;
    case DType::kKahan:
      return 16;
  }
  throw Error("unreachable dtype");
}

/// Width of one element in 8-byte words — the factor that scales every
/// element-count predictor into measured words (exact halves for f32).
inline double dtype_width_words(DType d) {
  return static_cast<double>(dtype_elem_bytes(d)) / 8.0;
}

/// Parse a --dtype spec; unknown names fail fast listing the valid set.
inline DType parse_dtype(const std::string& s) {
  if (s == "f64") return DType::kF64;
  if (s == "f32") return DType::kF32;
  if (s == "i64") return DType::kI64;
  if (s == "kahan") return DType::kKahan;
  throw Error("unknown dtype '" + s + "' (valid: f64, f32, i64, kahan)");
}

}  // namespace camb
