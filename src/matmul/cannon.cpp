#include "matmul/cannon.hpp"

#include "collectives/grid_comm.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

namespace {

BlockChunk full_block(const BlockDist1D& rows, i64 ri, const BlockDist1D& cols,
                      i64 ci) {
  BlockChunk chunk;
  chunk.row0 = rows.start(ri);
  chunk.col0 = cols.start(ci);
  chunk.rows = rows.size(ri);
  chunk.cols = cols.size(ci);
  chunk.flat_start = 0;
  chunk.flat_size = chunk.rows * chunk.cols;
  return chunk;
}

}  // namespace

template <typename T>
Block2DOutputT<T> cannon_rank(RankCtx& ctx, const CannonConfig& cfg) {
  const i64 g = cfg.g;
  CAMB_CHECK_MSG(g * g == ctx.nprocs(), "Cannon machine size must be g*g");
  const i64 i = ctx.rank() / g;
  const i64 j = ctx.rank() % g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);

  // Owned blocks.
  std::vector<T> a_held = fill_chunk_indexed<T>(full_block(d1, i, d2, j));
  std::vector<T> b_held = fill_chunk_indexed<T>(full_block(d2, i, d3, j));

  // A moves along this rank's row fiber (indices there are column numbers),
  // B along its column fiber.  One tag block per fiber covers the skew plus
  // every shift round: 2g tags, far below the block width.
  const coll::GridComm grid(ctx, Grid3{g, g, 1});
  const coll::Comm& my_row = grid.fiber(1);
  const coll::Comm& my_col = grid.fiber(0);
  const int row_tags = g > 1 ? my_row.take_tag_block() : 0;
  const int col_tags = g > 1 ? my_col.take_tag_block() : 0;
  CAMB_CHECK_MSG(2 * g < kTagBlockWidth, "grid too large for one tag block");

  // Initial skew: A_{ij} moves to (i, j - i); afterwards rank (i, j) holds
  // A_{i, (i + j) mod g}.  Likewise B_{ij} moves to (i - j, j).
  ctx.set_phase(kPhaseCannonSkew);
  if (g > 1) {
    my_row.send(static_cast<int>((j - i % g + g) % g), row_tags,
                Buffer::adopt(std::move(a_held)));
    a_held = std::move(my_row.recv(static_cast<int>((j + i) % g), row_tags))
                 .take_as<T>();
    my_col.send(static_cast<int>((i - j % g + g) % g), col_tags,
                Buffer::adopt(std::move(b_held)));
    b_held = std::move(my_col.recv(static_cast<int>((i + j) % g), col_tags))
                 .take_as<T>();
  }

  Block2DOutputT<T> out;
  out.row0 = d1.start(i);
  out.col0 = d3.start(j);
  out.block = Matrix<T>(d1.size(i), d3.size(j));

  for (i64 t = 0; t < g; ++t) {
    // After the skew and t shifts, the held k-block index is (i + j + t).
    const i64 s = (i + j + t) % g;
    ctx.set_phase(kPhaseCannonGemm);
    Matrix<T> a_mat(d1.size(i), d2.size(s));
    CAMB_CHECK(static_cast<i64>(a_held.size()) == a_mat.size());
    std::copy(a_held.begin(), a_held.end(), a_mat.data());
    Matrix<T> b_mat(d2.size(s), d3.size(j));
    CAMB_CHECK(static_cast<i64>(b_held.size()) == b_mat.size());
    std::copy(b_held.begin(), b_held.end(), b_mat.data());
    gemm_accumulate(a_mat, b_mat, out.block);

    if (t + 1 < g && g > 1) {
      ctx.set_phase(kPhaseCannonShift);
      const int off = static_cast<int>(t + 1);
      // Shift A left by one (to column j-1), B up by one (to row i-1).
      my_row.send(static_cast<int>((j - 1 + g) % g), row_tags + off,
                  Buffer::adopt(std::move(a_held)));
      a_held = std::move(
                   my_row.recv(static_cast<int>((j + 1) % g), row_tags + off))
                   .take_as<T>();
      my_col.send(static_cast<int>((i - 1 + g) % g), col_tags + off,
                  Buffer::adopt(std::move(b_held)));
      b_held = std::move(
                   my_col.recv(static_cast<int>((i + 1) % g), col_tags + off))
                   .take_as<T>();
    }
  }
  return out;
}

#define CAMB_INSTANTIATE(T) \
  template Block2DOutputT<T> cannon_rank<T>(RankCtx&, const CannonConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
Block2DOutputT<T> cannon_ckpt_rank(ckpt::SessionT<T>& session,
                                   const CannonConfig& cfg) {
  RankCtx& ctx = session.ctx();
  const i64 g = cfg.g;
  CAMB_CHECK_MSG(g * g == session.nprocs(), "Cannon machine size must be g*g");
  const i64 i = session.rank() / g;
  const i64 j = session.rank() % g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);

  std::vector<T> a_held = fill_chunk_indexed<T>(full_block(d1, i, d2, j));
  std::vector<T> b_held = fill_chunk_indexed<T>(full_block(d2, i, d3, j));

  // Fiber comms by logical rank, one tag block each for skew + shifts.
  std::vector<int> row_members, col_members;
  for (i64 v = 0; v < g; ++v) {
    row_members.push_back(static_cast<int>(i * g + v));
    col_members.push_back(static_cast<int>(v * g + j));
  }
  const coll::Comm my_row = session.comm(row_members);
  const coll::Comm my_col = session.comm(col_members);
  const int row_tags = g > 1 ? my_row.take_tag_block() : 0;
  const int col_tags = g > 1 ? my_col.take_tag_block() : 0;
  CAMB_CHECK_MSG(2 * g < kTagBlockWidth, "grid too large for one tag block");

  Block2DOutputT<T> out;
  out.row0 = d1.start(i);
  out.col0 = d3.start(j);
  out.block = Matrix<T>(d1.size(i), d3.size(j));

  const i64 t0 = session.resume_step();
  if (session.restored()) {
    // The snapshot at boundary t0 was taken after shift t0, so the held
    // blocks are exactly the operands of step t0.
    const SnapshotT<T>& snap = session.snapshot();
    CAMB_CHECK(snap.bufs.size() == 3);
    a_held = snap.bufs[0];
    b_held = snap.bufs[1];
    CAMB_CHECK(static_cast<i64>(snap.bufs[2].size()) == out.block.size());
    std::copy(snap.bufs[2].begin(), snap.bufs[2].end(), out.block.data());
  } else {
    ctx.set_phase(kPhaseCannonSkew);
    if (g > 1) {
      my_row.send(static_cast<int>((j - i % g + g) % g), row_tags,
                  Buffer::adopt(std::move(a_held)));
      a_held = std::move(my_row.recv(static_cast<int>((j + i) % g), row_tags))
                   .template take_as<T>();
      my_col.send(static_cast<int>((i - j % g + g) % g), col_tags,
                  Buffer::adopt(std::move(b_held)));
      b_held = std::move(my_col.recv(static_cast<int>((i + j) % g), col_tags))
                   .template take_as<T>();
    }
  }

  for (i64 t = t0; t < g; ++t) {
    const i64 s = (i + j + t) % g;
    ctx.set_phase(kPhaseCannonGemm);
    Matrix<T> a_mat(d1.size(i), d2.size(s));
    CAMB_CHECK(static_cast<i64>(a_held.size()) == a_mat.size());
    std::copy(a_held.begin(), a_held.end(), a_mat.data());
    Matrix<T> b_mat(d2.size(s), d3.size(j));
    CAMB_CHECK(static_cast<i64>(b_held.size()) == b_mat.size());
    std::copy(b_held.begin(), b_held.end(), b_mat.data());
    gemm_accumulate(a_mat, b_mat, out.block);

    if (t + 1 < g && g > 1) {
      ctx.set_phase(kPhaseCannonShift);
      const int off = static_cast<int>(t + 1);
      my_row.send(static_cast<int>((j - 1 + g) % g), row_tags + off,
                  Buffer::adopt(std::move(a_held)));
      a_held = std::move(
                   my_row.recv(static_cast<int>((j + 1) % g), row_tags + off))
                   .template take_as<T>();
      my_col.send(static_cast<int>((i - 1 + g) % g), col_tags + off,
                  Buffer::adopt(std::move(b_held)));
      b_held = std::move(
                   my_col.recv(static_cast<int>((i + 1) % g), col_tags + off))
                   .template take_as<T>();
    }

    session.boundary(t + 1, [&] {
      SnapshotT<T> snap;
      snap.bufs = {a_held, b_held,
                   std::vector<T>(out.block.data(),
                                  out.block.data() + out.block.size())};
      return snap;
    });
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                       \
  template Block2DOutputT<T> cannon_ckpt_rank<T>( \
      ckpt::SessionT<T>&, const CannonConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 cannon_ckpt_steps(const CannonConfig& cfg) { return cfg.g; }

i64 cannon_ckpt_snapshot_words(const CannonConfig& cfg, int logical,
                               i64 step) {
  const i64 g = cfg.g;
  const i64 i = logical / g;
  const i64 j = logical % g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);
  // At boundary `step` the held k-block index is (i + j + step) mod g after
  // a shift, except the last step, which does not shift.
  const i64 s = step < g ? (i + j + step) % g : (i + j + g - 1) % g;
  return snapshot_wire_words({d1.size(i) * d2.size(s),
                              d2.size(s) * d3.size(j),
                              d1.size(i) * d3.size(j)});
}

i64 cannon_predicted_recv_words(const CannonConfig& cfg, int rank) {
  const i64 g = cfg.g;
  const i64 i = rank / g;
  const i64 j = rank % g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);
  if (g == 1) return 0;
  i64 words = 0;
  // Skew: receive A_{i,(i+j) mod g} from (i, (j+i) mod g) unless that is
  // self (i.e. i == 0 for A, j == 0 for B; self-moves are free).
  if (i % g != 0) words += d1.size(i) * d2.size((i + j) % g);
  if (j % g != 0) words += d2.size((i + j) % g) * d3.size(j);
  // Shifts t = 1..g-1: after shift t the held A block is A_{i,(i+j+t) mod g},
  // received from the right neighbour (never self for g > 1).
  for (i64 t = 1; t < g; ++t) {
    words += d1.size(i) * d2.size((i + j + t) % g);   // A from (i, j+1)
    words += d2.size((i + j + t) % g) * d3.size(j);   // B from (i+1, j)
  }
  return words;
}

}  // namespace camb::mm
