#include "matmul/naive_bcast.hpp"

#include "collectives/bcast.hpp"
#include "collectives/coll_cost.hpp"
#include "collectives/comm.hpp"
#include "collectives/gather_scatter.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

template <typename T>
Block2DOutputT<T> naive_bcast_rank(RankCtx& ctx, const NaiveBcastConfig& cfg) {
  const int p = ctx.nprocs();
  const int me = ctx.rank();
  const coll::Comm world = coll::Comm::world(ctx);
  const Shape& s = cfg.shape;

  // Rank 0 materializes both inputs; everyone receives full copies.
  ctx.set_phase(kPhaseNaiveBcast);
  std::vector<T> a_flat, b_flat;
  if (me == 0) {
    BlockChunk a_all{0, 0, s.n1, s.n2, 0, s.size_a()};
    BlockChunk b_all{0, 0, s.n2, s.n3, 0, s.size_b()};
    a_flat = fill_chunk_indexed<T>(a_all);
    b_flat = fill_chunk_indexed<T>(b_all);
  }
  coll::bcast(world, 0, a_flat, s.size_a());
  coll::bcast(world, 0, b_flat, s.size_b());

  // Each rank computes its row slice of C.
  ctx.set_phase(kPhaseNaiveGemm);
  const BlockDist1D rows(s.n1, p);
  Matrix<T> a_mine(rows.size(me), s.n2);
  std::copy(a_flat.begin() + rows.start(me) * s.n2,
            a_flat.begin() + rows.end(me) * s.n2, a_mine.data());
  Matrix<T> b_full(s.n2, s.n3);
  std::copy(b_flat.begin(), b_flat.end(), b_full.data());
  Matrix<T> c_slice = gemm(a_mine, b_full);

  // Gather the slices onto rank 0 (the "one copy of the output" finale).
  ctx.set_phase(kPhaseNaiveGather);
  std::vector<i64> counts(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    counts[static_cast<std::size_t>(r)] = rows.size(r) * s.n3;
  }
  std::vector<T> c_flat(c_slice.data(), c_slice.data() + c_slice.size());
  coll::gather(world, 0, counts, c_flat);

  Block2DOutputT<T> out;
  out.row0 = rows.start(me);
  out.col0 = 0;
  out.block = std::move(c_slice);
  return out;
}

#define CAMB_INSTANTIATE(T)                  \
  template Block2DOutputT<T> naive_bcast_rank<T>(RankCtx&, \
                                                 const NaiveBcastConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
Block2DOutputT<T> naive_bcast_ckpt_rank(ckpt::SessionT<T>& session,
                                        const NaiveBcastConfig& cfg) {
  RankCtx& ctx = session.ctx();
  const int p = session.nprocs();
  const int me = session.rank();
  std::vector<int> everyone(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) everyone[static_cast<std::size_t>(r)] = r;
  const coll::Comm world = session.comm(everyone);
  const Shape& s = cfg.shape;
  const BlockDist1D rows(s.n1, p);

  std::vector<T> a_flat, b_flat, c_flat;
  const i64 t0 = session.resume_step();
  if (session.restored()) {
    const SnapshotT<T>& snap = session.snapshot();
    if (t0 == 1) {
      a_flat = snap.bufs.at(0);
    } else if (t0 == 2) {
      a_flat = snap.bufs.at(0);
      b_flat = snap.bufs.at(1);
    } else {
      CAMB_CHECK(t0 == 3);
      c_flat = snap.bufs.at(0);
    }
  }

  for (i64 step = t0; step < 3; ++step) {
    if (step == 0) {
      ctx.set_phase(kPhaseNaiveBcast);
      if (me == 0) {
        BlockChunk a_all{0, 0, s.n1, s.n2, 0, s.size_a()};
        a_flat = fill_chunk_indexed<T>(a_all);
      }
      coll::bcast(world, 0, a_flat, s.size_a());
    } else if (step == 1) {
      ctx.set_phase(kPhaseNaiveBcast);
      if (me == 0) {
        BlockChunk b_all{0, 0, s.n2, s.n3, 0, s.size_b()};
        b_flat = fill_chunk_indexed<T>(b_all);
      }
      coll::bcast(world, 0, b_flat, s.size_b());
    } else {
      ctx.set_phase(kPhaseNaiveGemm);
      Matrix<T> a_mine(rows.size(me), s.n2);
      std::copy(a_flat.begin() + rows.start(me) * s.n2,
                a_flat.begin() + rows.end(me) * s.n2, a_mine.data());
      Matrix<T> b_full(s.n2, s.n3);
      std::copy(b_flat.begin(), b_flat.end(), b_full.data());
      Matrix<T> c_slice = gemm(a_mine, b_full);
      c_flat.assign(c_slice.data(), c_slice.data() + c_slice.size());
    }
    session.boundary(step + 1, [&] {
      SnapshotT<T> snap;
      if (step == 0) {
        snap.bufs = {a_flat};
      } else if (step == 1) {
        snap.bufs = {a_flat, b_flat};
      } else {
        snap.bufs = {c_flat};
      }
      return snap;
    });
  }

  Block2DOutputT<T> out;
  out.row0 = rows.start(me);
  out.col0 = 0;
  out.block = Matrix<T>(rows.size(me), s.n3);
  CAMB_CHECK(static_cast<i64>(c_flat.size()) == out.block.size());
  std::copy(c_flat.begin(), c_flat.end(), out.block.data());

  ctx.set_phase(kPhaseNaiveGather);
  std::vector<i64> counts(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    counts[static_cast<std::size_t>(r)] = rows.size(r) * s.n3;
  }
  coll::gather(world, 0, counts, c_flat);
  return out;
}

#define CAMB_INSTANTIATE(T)                            \
  template Block2DOutputT<T> naive_bcast_ckpt_rank<T>( \
      ckpt::SessionT<T>&, const NaiveBcastConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 naive_bcast_ckpt_steps(const NaiveBcastConfig& cfg) {
  (void)cfg;
  return 3;
}

i64 naive_bcast_ckpt_snapshot_words(const NaiveBcastConfig& cfg, int logical,
                                    int nprocs, i64 step) {
  const Shape& s = cfg.shape;
  if (step == 1) return snapshot_wire_words({s.size_a()});
  if (step == 2) return snapshot_wire_words({s.size_a(), s.size_b()});
  const BlockDist1D rows(s.n1, nprocs);
  return snapshot_wire_words({rows.size(logical) * s.n3});
}

i64 naive_bcast_predicted_recv_words(const NaiveBcastConfig& cfg, int rank,
                                     int nprocs) {
  const Shape& s = cfg.shape;
  if (nprocs == 1) return 0;
  const BlockDist1D rows(s.n1, nprocs);
  if (rank == 0) {
    // Root receives every other rank's C slice.
    return (s.n1 - rows.size(0)) * s.n3;
  }
  return s.size_a() + s.size_b();
}

}  // namespace camb::mm
