// elastic.hpp — elastic shrink-and-regrid: graceful degradation onto the
// optimal grid for the surviving P′.
//
// When crashes strike mid-multiplication, the survivors agree on who is gone
// (collectives/shrink.hpp), re-plan the processor grid for P′ with the cost
// engine (core/grid.hpp best_integer_grid_at_most and the per-algorithm
// searches below), redistribute every live A/B panel old → new distribution
// (collectives/regrid.hpp), and complete the multiplication on the new grid
// — never hanging, never answering wrong, never silently over-communicating.
//
// The protocol, per rank:
//
//   enlistment   two zero-word probe rounds over the whole machine.  A rank
//                that dies during round A sends no round-B OK, so every
//                survivor reads at least one nullopt in round B and entry
//                into recovery is unanimous with ZERO data words moved —
//                the scenario the word-exact acceptance sweep pins.
//   attempt 0    the unmodified base algorithm on the world grid (the comm-
//                parameterized cores of summa/grid3d/alg25d, so a clean
//                elastic run is word-identical to the base run), followed by
//                a zero-word completion-confirm round.  All delivered →
//                retire (abandon every tag; finished tiles stand).  Any
//                failure → abandon() and enter recovery.
//   round r ≥ 1  realign the recovery tag cursor to band r; shrink over the
//                original membership (retired and crashed ranks both read
//                as gone); re-plan the grid for the survivor count; regrid
//                the ORIGINAL panels (survivors keep their attempt-0 fills
//                across rounds, so the migration bill is a closed form of
//                the failed set alone); the first active_ranks survivors
//                rerun the core on recovery comms; zero-word confirm round
//                among all survivors.  Failure → abandon below band r+1 and
//                repeat; rounds are bounded by max_failures + 1 because
//                every extra round is rooted in a new death.
//
// Elastic inputs are always integer-valued for rounded scalars (exact,
// order-independent sums), so C is bit-identical whichever grid — or mix of
// attempt-0 retiree tiles and recovery-round tiles — produced it.
#pragma once

#include "collectives/regrid.hpp"
#include "collectives/shrink.hpp"
#include "matmul/alg25d.hpp"
#include "matmul/grid3d.hpp"
#include "matmul/summa.hpp"

namespace camb::mm {

/// Elastic-mode switches (carried inside RunOptions).
struct ElasticConfig {
  bool enabled = false;  ///< runner switch: run the elastic twin
  /// Crash budget the shrink agreement is provisioned for; also bounds the
  /// recovery rounds (each extra round needs a fresh death).
  int max_failures = 1;
};

inline constexpr const char* kPhaseElasticEnlist = "elastic_enlist";
inline constexpr const char* kPhaseElasticShrink = "elastic_shrink";
inline constexpr const char* kPhaseElasticConfirm = "elastic_confirm";

/// Recovery-region tag bands, one per recovery round (the rollback protocol
/// uses the same banding discipline): round r's leases start at
/// elastic_band_base(r), and a failed round abandons below band r+1.
inline constexpr int kElasticBandBlocks = 1 << 13;
inline constexpr int elastic_band_base(int round) {
  return kRecoveryTagBase + (round - 1) * kElasticBandBlocks * kTagBlockWidth;
}

/// Exact per-survivor received control words of the round-1 shrink agreement
/// when `pre_failures` members were already gone before the flood started:
/// (max_failures + 1) rounds × (alive − 1) delivering peers × 2⌈P/32⌉ mask
/// words.  These are f64 control words — never scaled by the data dtype.
i64 elastic_shrink_recv_words_exact(int nprocs, int max_failures,
                                    int pre_failures);

/// Deterministic re-plan at survivor count `max_procs` (every survivor
/// computes the same plan from the agreed failed set):
///   summa   g′ = ⌊√P′⌋ (largest square at most P′);
///   grid3d  core::best_integer_grid_at_most(shape, P′) — the eq. 3 search
///           down the divisor lattice;
///   alg25d  exhaustive (g′, c′) with c′ | g′, g′²c′ ≤ P′ minimizing the
///           2.5D cost, ties to more ranks then smaller (g′, c′).
SummaConfig summa_plan_at(const SummaConfig& base, i64 max_procs);
Grid3dConfig grid3d_plan_at(const Grid3dConfig& base, i64 max_procs);
Alg25dConfig alg25d_plan_at(const Alg25dConfig& base, i64 max_procs);

/// The input panels (global row-major spans of A and B — regrid.hpp's
/// canonical form) that logical rank `logical` owns under each algorithm's
/// initial distribution.  Off-grid ranks (logical >= active count) and
/// non-layer-0 2.5D ranks own nothing.
coll::PanelSet summa_panels(const SummaConfig& cfg, int logical);
coll::PanelSet grid3d_panels(const Grid3dConfig& cfg, int logical);
coll::PanelSet alg25d_panels(const Alg25dConfig& cfg, int logical);

/// What one rank hands back from an elastic run: the C tiles it is
/// responsible for (attempt-0 tiles for retirees, new-grid tiles for
/// recovery actives, none for idle survivors), plus the agreed outcome.
template <typename T>
struct ElasticRankOutputT {
  std::vector<BlockChunk> c_chunks;
  std::vector<std::vector<T>> c_data;
  int rounds = 0;            ///< recovery rounds taken (0 = clean attempt 0)
  bool idle = false;         ///< survived but not active on the final grid
  std::vector<int> failed;   ///< agreed failed machine ranks (final round)
  i64 survivors = 0;         ///< P′ of the final round (P when clean)
  i64 active_ranks = 0;      ///< ranks used by the final grid
  core::Grid3 final_grid;    ///< summa {g,g,1}; grid3d grid; alg25d {c,g,g}
  i64 migrated_elems = 0;    ///< regrid cells received over the wire
  i64 regenerated_elems = 0; ///< regrid cells refilled locally (dead owners)
  i64 local_elems = 0;       ///< regrid cells kept in place (self-overlap)
};

/// SPMD bodies of the elastic twins.  Attempt 0 must cover the machine
/// (active_ranks(cfg) == nprocs).  For rounded scalars the integer-valued
/// input pattern is forced on, whatever cfg says.  Templated over the
/// CAMB_FOR_EACH_SCALAR set via explicit instantiation.
template <typename T = double>
ElasticRankOutputT<T> summa_elastic_rank(RankCtx& ctx, const SummaConfig& cfg,
                                         const ElasticConfig& ecfg);
template <typename T = double>
ElasticRankOutputT<T> grid3d_elastic_rank(RankCtx& ctx,
                                          const Grid3dConfig& cfg,
                                          const ElasticConfig& ecfg);
template <typename T = double>
ElasticRankOutputT<T> alg25d_elastic_rank(RankCtx& ctx,
                                          const Alg25dConfig& cfg,
                                          const ElasticConfig& ecfg);

/// The offline mirror of what the survivors agree on when exactly `failed`
/// are gone — everything the runner report, the acceptance sweep, and the
/// bench pin measured words against, with zero tolerance.
struct ElasticPrediction {
  i64 survivors = 0;                   ///< P′
  i64 active_ranks = 0;                ///< ranks the new grid uses
  core::Grid3 grid;                    ///< the re-planned grid
  /// Exact per-machine-rank received words: 0 for the failed; shrink
  /// control + width × (regrid + new-grid exec elements) for survivors.
  std::vector<double> rank_recv_words;
  /// The regrid component alone (the migration tax), per machine rank.
  std::vector<double> rank_migration_words;
  /// The new-grid execution component alone, per machine rank.
  std::vector<double> rank_exec_words;
  /// Per-survivor shrink agreement control words (uniform over survivors).
  double shrink_words = 0;
};

/// Predictions for the enlistment-crash scenario: every rank in `failed`
/// dies before any attempt-0 data moved, and recovery completes in one
/// round.  With `failed` empty this degenerates to the clean elastic run —
/// base-algorithm words exactly, no shrink, no migration.
ElasticPrediction summa_elastic_prediction(const SummaConfig& base,
                                           const ElasticConfig& ecfg,
                                           const std::vector<int>& failed,
                                           int nprocs, double width_words);
ElasticPrediction grid3d_elastic_prediction(const Grid3dConfig& base,
                                            const ElasticConfig& ecfg,
                                            const std::vector<int>& failed,
                                            int nprocs, double width_words);
ElasticPrediction alg25d_elastic_prediction(const Alg25dConfig& base,
                                            const ElasticConfig& ecfg,
                                            const std::vector<int>& failed,
                                            int nprocs, double width_words);

}  // namespace camb::mm
