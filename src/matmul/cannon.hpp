// cannon.hpp — Cannon's algorithm baseline: the classical 2D shift-based
// algorithm on a g×g torus.  Included as a second distinct 2D baseline: its
// bandwidth is similar to SUMMA's but it pays an extra initial skew and uses
// only point-to-point shifts (no collectives), exercising a different
// communication pattern on the machine substrate.
//
// Rank (i, j) starts with blocks A_{ij}, B_{ij} (near-equal splits); after
// the initial skew it holds A_{i,(i+j) mod g} and B_{(i+j) mod g,j}, and each
// of the g steps multiplies the held blocks and shifts A left / B up by one.
#pragma once

#include "matmul/distribution.hpp"
#include "matmul/summa.hpp"

namespace camb::mm {

struct CannonConfig {
  Shape shape;
  i64 g = 1;  ///< grid edge; machine size must be g*g
};

/// SPMD body for one rank; returns the rank's full C block.  Templated over
/// the scalar (CAMB_FOR_EACH_SCALAR set); the default keeps legacy double
/// call sites source-compatible.
template <typename T = double>
Block2DOutputT<T> cannon_rank(RankCtx& ctx, const CannonConfig& cfg);

/// Exact predicted received words for `rank` (skew + 2(g−1) shifts; moves to
/// self are free, matching the machine's accounting).
i64 cannon_predicted_recv_words(const CannonConfig& cfg, int rank);

/// Checkpointable twin of cannon_rank: epoch boundaries after every shift
/// step; snapshots carry the held A/B blocks plus the C accumulator so a
/// restored rank rejoins the torus mid-rotation.
template <typename T>
Block2DOutputT<T> cannon_ckpt_rank(ckpt::SessionT<T>& session,
                                   const CannonConfig& cfg);

/// Boundary steps the twin announces (one per torus step).
i64 cannon_ckpt_steps(const CannonConfig& cfg);
/// Wire words of logical rank `logical`'s snapshot at boundary `step`.
i64 cannon_ckpt_snapshot_words(const CannonConfig& cfg, int logical, i64 step);

inline constexpr const char* kPhaseCannonSkew = "cannon_skew";
inline constexpr const char* kPhaseCannonShift = "cannon_shift";
inline constexpr const char* kPhaseCannonGemm = "cannon_gemm";

}  // namespace camb::mm
