#include "matmul/grid3d_staged.hpp"

#include "collectives/coll_cost.hpp"
#include "collectives/grid_comm.hpp"
#include "core/cost_eq3.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

namespace {

/// Per-fiber-member counts for gathering the flat sub-range [lo, hi) of a
/// block whose full flat extent is split near-equally across the fiber.
std::vector<i64> overlap_counts(const BlockDist1D& fiber_split, i64 lo, i64 hi) {
  std::vector<i64> counts(static_cast<std::size_t>(fiber_split.parts()));
  for (i64 t = 0; t < fiber_split.parts(); ++t) {
    const i64 a = std::max(lo, fiber_split.start(t));
    const i64 b = std::min(hi, fiber_split.end(t));
    counts[static_cast<std::size_t>(t)] = std::max<i64>(0, b - a);
  }
  return counts;
}

}  // namespace

template <typename T>
Grid3dStagedRankOutputT<T> grid3d_staged_rank(RankCtx& ctx,
                                              const Grid3dStagedConfig& cfg) {
  CAMB_CHECK_MSG(cfg.stages >= 1, "stages must be >= 1");
  CAMB_CHECK_MSG(cfg.grid.total() == ctx.nprocs(),
                 "grid size must equal the machine size");
  const GridMap map(cfg.grid);
  const auto [q1, q2, q3] = map.coords_of(ctx.rank());
  (void)q1;
  const Grid3dConfig base{cfg.shape, cfg.grid, cfg.allgather,
                          cfg.reduce_scatter};
  const Grid3dLayout layout = grid3d_layout(base, ctx.rank());
  // Every stage runs one collective per fiber; size the fiber leases to the
  // stage count so deep stagings never exhaust them.
  const int fiber_blocks =
      std::max(coll::Comm::kDefaultTagBlocks, static_cast<int>(cfg.stages) + 1);
  const coll::GridComm grid(ctx, cfg.grid, fiber_blocks);

  // B is gathered once, up front, exactly as in the unstaged algorithm.
  ctx.set_phase(kPhaseAllgatherB);
  const camb::WorkingSet b_ws(ctx, layout.b.block_size(),
                              ScalarTraits<T>::elem_bytes);
  std::vector<T> b_flat = coll::allgather(
      grid.fiber(0), layout.b_counts, fill_chunk_indexed<T>(layout.b),
      cfg.allgather);
  Matrix<T> b_block(layout.b.rows, layout.b.cols);
  std::copy(b_flat.begin(), b_flat.end(), b_block.data());

  const BlockDist1D a_fiber_split(layout.a.block_size(), cfg.grid.p3);
  const BlockDist1D strips(layout.a.rows, cfg.stages);

  Grid3dStagedRankOutputT<T> out;
  out.c_chunks.reserve(static_cast<std::size_t>(cfg.stages));
  out.c_data.reserve(static_cast<std::size_t>(cfg.stages));

  for (i64 stage = 0; stage < cfg.stages; ++stage) {
    // Stage strip: rows [r0, r1) of the local A block (and of D).
    const i64 r0 = strips.start(stage);
    const i64 r1 = strips.end(stage);
    const i64 lo = r0 * layout.a.cols;
    const i64 hi = r1 * layout.a.cols;

    // All-Gather only this strip of A (+ its strip of D below): the staged
    // working set this variant exists to shrink.
    ctx.set_phase(kPhaseAllgatherA);
    const camb::WorkingSet strip_ws(
        ctx, (hi - lo) + (r1 - r0) * layout.c.cols,
        ScalarTraits<T>::elem_bytes);
    const std::vector<i64> counts = overlap_counts(a_fiber_split, lo, hi);
    BlockChunk my_piece = layout.a;
    my_piece.flat_start = std::max(lo, a_fiber_split.start(q3));
    my_piece.flat_size = counts[static_cast<std::size_t>(q3)];
    std::vector<T> strip_flat = coll::allgather(
        grid.fiber(2), counts, fill_chunk_indexed<T>(my_piece), cfg.allgather);
    CAMB_CHECK(static_cast<i64>(strip_flat.size()) == hi - lo);

    // Multiply the strip against the full B block.
    ctx.set_phase(kPhaseLocalGemm);
    Matrix<T> a_strip(r1 - r0, layout.a.cols);
    std::copy(strip_flat.begin(), strip_flat.end(), a_strip.data());
    const Matrix<T> d_strip = gemm(a_strip, b_block);

    // Reduce-Scatter this strip of D across the p2 fiber immediately.
    ctx.set_phase(kPhaseReduceScatterC);
    const BlockDist1D seg(d_strip.size(), cfg.grid.p2);
    std::vector<T> d_flat(d_strip.data(),
                          d_strip.data() + d_strip.size());
    std::vector<T> owned = coll::reduce_scatter(
        grid.fiber(1), seg.counts(), d_flat, cfg.reduce_scatter);

    BlockChunk c_chunk;
    c_chunk.row0 = layout.c.row0;
    c_chunk.col0 = layout.c.col0;
    c_chunk.rows = layout.c.rows;
    c_chunk.cols = layout.c.cols;
    c_chunk.flat_start = r0 * layout.c.cols + seg.start(q2);
    c_chunk.flat_size = seg.size(q2);
    out.c_chunks.push_back(c_chunk);
    out.c_data.push_back(std::move(owned));
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                          \
  template Grid3dStagedRankOutputT<T> grid3d_staged_rank<T>( \
      RankCtx&, const Grid3dStagedConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
Grid3dStagedRankOutputT<T> grid3d_staged_ckpt_rank(
    ckpt::SessionT<T>& session, const Grid3dStagedConfig& cfg) {
  RankCtx& ctx = session.ctx();
  CAMB_CHECK_MSG(cfg.stages >= 1, "stages must be >= 1");
  CAMB_CHECK_MSG(cfg.grid.total() == session.nprocs(),
                 "grid size must equal the logical machine size");
  const int me = session.rank();
  const GridMap map(cfg.grid);
  const auto [q1, q2, q3] = map.coords_of(me);
  const Grid3dConfig base{cfg.shape, cfg.grid, cfg.allgather,
                          cfg.reduce_scatter};
  const Grid3dLayout layout = grid3d_layout(base, me);
  const int fiber_blocks =
      std::max(coll::Comm::kDefaultTagBlocks, static_cast<int>(cfg.stages) + 1);
  const coll::Comm fiber_b =
      session.comm(map.fiber(0, q1, q2, q3), fiber_blocks);
  const coll::Comm fiber_c =
      session.comm(map.fiber(1, q1, q2, q3), fiber_blocks);
  const coll::Comm fiber_a =
      session.comm(map.fiber(2, q1, q2, q3), fiber_blocks);

  const BlockDist1D a_fiber_split(layout.a.block_size(), cfg.grid.p3);
  const BlockDist1D strips(layout.a.rows, cfg.stages);

  std::vector<T> b_flat;
  Matrix<T> b_block(layout.b.rows, layout.b.cols);
  Grid3dStagedRankOutputT<T> out;

  auto chunk_of_stage = [&](i64 stage) {
    const i64 r0 = strips.start(stage);
    const BlockDist1D seg((strips.end(stage) - r0) * layout.c.cols,
                          cfg.grid.p2);
    BlockChunk c_chunk;
    c_chunk.row0 = layout.c.row0;
    c_chunk.col0 = layout.c.col0;
    c_chunk.rows = layout.c.rows;
    c_chunk.cols = layout.c.cols;
    c_chunk.flat_start = r0 * layout.c.cols + seg.start(q2);
    c_chunk.flat_size = seg.size(q2);
    return c_chunk;
  };

  const i64 t0 = session.resume_step();
  if (session.restored()) {
    const SnapshotT<T>& snap = session.snapshot();
    CAMB_CHECK(static_cast<i64>(snap.bufs.size()) == t0);
    b_flat = snap.bufs.at(0);
    std::copy(b_flat.begin(), b_flat.end(), b_block.data());
    for (i64 stage = 0; stage + 1 < t0; ++stage) {
      out.c_chunks.push_back(chunk_of_stage(stage));
      out.c_data.push_back(snap.bufs.at(static_cast<std::size_t>(stage + 1)));
    }
  }

  for (i64 step = t0; step < cfg.stages + 1; ++step) {
    if (step == 0) {
      ctx.set_phase(kPhaseAllgatherB);
      const camb::WorkingSet b_ws(ctx, layout.b.block_size());
      b_flat = coll::allgather(fiber_b, layout.b_counts,
                               fill_chunk_indexed<T>(layout.b),
                               cfg.allgather);
      std::copy(b_flat.begin(), b_flat.end(), b_block.data());
    } else {
      const i64 stage = step - 1;
      const i64 r0 = strips.start(stage);
      const i64 r1 = strips.end(stage);
      const i64 lo = r0 * layout.a.cols;
      const i64 hi = r1 * layout.a.cols;

      ctx.set_phase(kPhaseAllgatherA);
      const camb::WorkingSet strip_ws(
          ctx, (hi - lo) + (r1 - r0) * layout.c.cols);
      const std::vector<i64> counts = overlap_counts(a_fiber_split, lo, hi);
      BlockChunk my_piece = layout.a;
      my_piece.flat_start = std::max(lo, a_fiber_split.start(q3));
      my_piece.flat_size = counts[static_cast<std::size_t>(q3)];
      std::vector<T> strip_flat = coll::allgather(
          fiber_a, counts, fill_chunk_indexed<T>(my_piece), cfg.allgather);
      CAMB_CHECK(static_cast<i64>(strip_flat.size()) == hi - lo);

      ctx.set_phase(kPhaseLocalGemm);
      Matrix<T> a_strip(r1 - r0, layout.a.cols);
      std::copy(strip_flat.begin(), strip_flat.end(), a_strip.data());
      const Matrix<T> d_strip = gemm(a_strip, b_block);

      ctx.set_phase(kPhaseReduceScatterC);
      const BlockDist1D seg(d_strip.size(), cfg.grid.p2);
      std::vector<T> d_flat(d_strip.data(), d_strip.data() + d_strip.size());
      std::vector<T> owned = coll::reduce_scatter(
          fiber_c, seg.counts(), d_flat, cfg.reduce_scatter);
      out.c_chunks.push_back(chunk_of_stage(stage));
      out.c_data.push_back(std::move(owned));
    }
    session.boundary(step + 1, [&] {
      SnapshotT<T> snap;
      snap.bufs.push_back(b_flat);
      for (const auto& owned : out.c_data) snap.bufs.push_back(owned);
      return snap;
    });
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                                      \
  template Grid3dStagedRankOutputT<T> grid3d_staged_ckpt_rank<T>( \
      ckpt::SessionT<T>&, const Grid3dStagedConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 grid3d_staged_ckpt_steps(const Grid3dStagedConfig& cfg) {
  return cfg.stages + 1;
}

i64 grid3d_staged_ckpt_snapshot_words(const Grid3dStagedConfig& cfg,
                                      int logical, i64 step) {
  const GridMap map(cfg.grid);
  const auto [q1, q2, q3] = map.coords_of(logical);
  (void)q1;
  (void)q3;
  const Grid3dConfig base{cfg.shape, cfg.grid, cfg.allgather,
                          cfg.reduce_scatter};
  const Grid3dLayout layout = grid3d_layout(base, logical);
  const BlockDist1D strips(layout.a.rows, cfg.stages);
  std::vector<i64> sizes{layout.b.block_size()};
  for (i64 stage = 0; stage + 1 < step; ++stage) {
    const i64 strip_words =
        (strips.end(stage) - strips.start(stage)) * layout.c.cols;
    sizes.push_back(BlockDist1D(strip_words, cfg.grid.p2).size(q2));
  }
  return snapshot_wire_words(sizes);
}

i64 grid3d_staged_predicted_recv_words(const Grid3dStagedConfig& cfg,
                                       int rank) {
  const GridMap map(cfg.grid);
  const auto [q1, q2, q3] = map.coords_of(rank);
  const Grid3dConfig base{cfg.shape, cfg.grid, cfg.allgather,
                          cfg.reduce_scatter};
  const Grid3dLayout layout = grid3d_layout(base, rank);
  i64 words = coll::allgather_recv_words_exact(layout.b_counts,
                                               static_cast<int>(q1),
                                               cfg.allgather);
  const BlockDist1D a_fiber_split(layout.a.block_size(), cfg.grid.p3);
  const BlockDist1D strips(layout.a.rows, cfg.stages);
  for (i64 stage = 0; stage < cfg.stages; ++stage) {
    const i64 lo = strips.start(stage) * layout.a.cols;
    const i64 hi = strips.end(stage) * layout.a.cols;
    const std::vector<i64> counts = overlap_counts(a_fiber_split, lo, hi);
    words += coll::allgather_recv_words_exact(counts, static_cast<int>(q3),
                                              cfg.allgather);
    const i64 strip_words = (hi - lo) / layout.a.cols * layout.c.cols;
    const BlockDist1D seg(strip_words, cfg.grid.p2);
    words += coll::reduce_scatter_recv_words_exact(
        seg.counts(), static_cast<int>(q2), cfg.reduce_scatter);
  }
  return words;
}

double grid3d_staged_peak_memory_words(const Grid3dStagedConfig& cfg) {
  const auto terms = camb::core::alg1_positive_terms(cfg.shape, cfg.grid);
  const auto s = static_cast<double>(cfg.stages);
  // Full B, one A strip, one D strip.
  return terms.b_words + terms.a_words / s + terms.c_words / s;
}

i64 grid3d_staged_messages(const Grid3dStagedConfig& cfg, int rank) {
  (void)rank;  // every rank sends the same round counts
  const int p1 = static_cast<int>(cfg.grid.p1);
  const int p2 = static_cast<int>(cfg.grid.p2);
  const int p3 = static_cast<int>(cfg.grid.p3);
  return coll::allgather_rounds(p1, cfg.allgather) +
         cfg.stages * (coll::allgather_rounds(p3, cfg.allgather) +
                       coll::reduce_scatter_rounds(p2, cfg.reduce_scatter));
}

}  // namespace camb::mm
