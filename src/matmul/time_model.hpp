// time_model.hpp — the full α-β-γ running-time model (§3.1).
//
// The paper's bounds govern the bandwidth (β) term; this module adds the
// latency (α) and compute (γ) terms so the benches can show *when* the
// bandwidth-optimal choices matter: per-algorithm closed-form estimates,
// per-collective round counts, and time estimates from measured runs.
//
//   time = α · (messages on the critical path)
//        + β · (words on the critical path)
//        + γ · (flops per processor)
#pragma once

#include "collectives/coll_cost.hpp"
#include "core/cost_eq3.hpp"
#include "matmul/runner.hpp"

namespace camb::mm {

/// Machine parameters: seconds per message, per word, per flop.
struct MachineParams {
  double alpha = 1e-6;
  double beta = 1e-9;
  double gamma = 1e-11;
};

/// A time estimate split by term.
struct TimeBreakdown {
  double latency = 0;    ///< α · messages
  double bandwidth = 0;  ///< β · words
  double compute = 0;    ///< γ · flops

  double total() const { return latency + bandwidth + compute; }
};

/// Closed-form estimate for Algorithm 1 on a grid.
TimeBreakdown alg1_time(const Shape& shape, const Grid3& grid,
                        const MachineParams& params,
                        coll::AllgatherAlgo ag = coll::AllgatherAlgo::kAuto,
                        coll::ReduceScatterAlgo rs = coll::ReduceScatterAlgo::kAuto);

/// Closed-form estimate for the §6.2 staged variant: identical bandwidth and
/// compute, latency multiplied by the stage count on the A/D collectives.
TimeBreakdown alg1_staged_time(const Shape& shape, const Grid3& grid,
                               i64 stages, const MachineParams& params,
                               coll::AllgatherAlgo ag = coll::AllgatherAlgo::kAuto,
                               coll::ReduceScatterAlgo rs = coll::ReduceScatterAlgo::kAuto);

/// Closed-form estimate for square-grid SUMMA (binomial broadcasts).
TimeBreakdown summa_time(const Shape& shape, i64 g, const MachineParams& params);

/// Closed-form estimate for Cannon (skew + 2(g-1) shifts).
TimeBreakdown cannon_time(const Shape& shape, i64 g, const MachineParams& params);

/// Time estimate from a measured run (bandwidth and latency terms only; the
/// simulated machine measures communication, compute is added analytically).
double measured_time(const RunReport& report, double flops_per_rank,
                     const MachineParams& params);

}  // namespace camb::mm
