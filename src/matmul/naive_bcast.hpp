// naive_bcast.hpp — deliberately communication-naive baseline.
//
// Rank 0 owns both inputs, broadcasts all of A and B to every rank, each
// rank computes a row-slice of C, and the slices are gathered back to rank 0.
// It satisfies the lower bound's assumptions (one copy of inputs at start,
// one copy of the output at the end, computation load balanced), so Theorem 3
// applies — and the baselines bench shows how far from optimal it is
// (every rank receives the full inputs, independent of P).
#pragma once

#include "matmul/distribution.hpp"
#include "matmul/summa.hpp"

namespace camb::mm {

struct NaiveBcastConfig {
  Shape shape;
};

/// SPMD body; returns rank's C row-slice (all ranks return their slice; the
/// runner reassembles, mirroring the final gather onto rank 0).  Templated
/// over the scalar (CAMB_FOR_EACH_SCALAR set).
template <typename T = double>
Block2DOutputT<T> naive_bcast_rank(RankCtx& ctx, const NaiveBcastConfig& cfg);

/// Exact predicted received words for `rank`.
i64 naive_bcast_predicted_recv_words(const NaiveBcastConfig& cfg, int rank,
                                     int nprocs);

/// Checkpointable twin: three boundary steps (A broadcast, B broadcast,
/// local gemm) followed by the un-checkpointed gather epilogue.
template <typename T>
Block2DOutputT<T> naive_bcast_ckpt_rank(ckpt::SessionT<T>& session,
                                    const NaiveBcastConfig& cfg);

i64 naive_bcast_ckpt_steps(const NaiveBcastConfig& cfg);
i64 naive_bcast_ckpt_snapshot_words(const NaiveBcastConfig& cfg, int logical,
                                    int nprocs, i64 step);

inline constexpr const char* kPhaseNaiveBcast = "naive_bcast";
inline constexpr const char* kPhaseNaiveGemm = "naive_gemm";
inline constexpr const char* kPhaseNaiveGather = "naive_gather";

}  // namespace camb::mm
