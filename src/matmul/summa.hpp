// summa.hpp — SUMMA baseline: the classical 2D broadcast-based algorithm
// (van de Geijn & Watts).  Included as a distinct-implementation baseline
// for the comparison benches (§2.4 context): on a g×g grid it moves
// ~(1 − 1/g)(n1n2 + n2n3)/g words per rank, which is optimal only in the 2D
// regime and only for nearly-square problems.
//
// Grid: g×g over (n1, n3); rank (i, j) owns blocks A_{ij}, B_{ij}, C_{ij}
// under near-equal splits.  Stage t broadcasts A block-column t along rows
// and B block-row t along columns, accumulating C += A_t · B_t.
#pragma once

#include "collectives/bcast.hpp"
#include "collectives/rollback.hpp"
#include "machine/machine.hpp"
#include "matmul/distribution.hpp"
#include "util/matrix.hpp"

namespace camb::mm {

struct SummaConfig {
  Shape shape;
  i64 g = 1;  ///< grid edge; machine size must be g*g
  /// Panel broadcast algorithm: binomial for small panels, pipelined ring
  /// for bandwidth-bound panels (word counts are identical either way).
  coll::BcastAlgo bcast = coll::BcastAlgo::kBinomial;
  i64 bcast_segments = 16;  ///< pipelined ring segmentation
  /// Generate inputs with the integer-valued indexed pattern (exact,
  /// order-independent sums).  The ABFT wrapper forces this on.
  bool integer_inputs = false;
};

/// A rank's full C block with its global origin.
template <typename T>
struct Block2DOutputT {
  i64 row0 = 0, col0 = 0;
  Matrix<T> block;
};
using Block2DOutput = Block2DOutputT<double>;

/// SPMD body for one rank; inputs generated with the indexed pattern.
/// Templated over the scalar (CAMB_FOR_EACH_SCALAR set); the default keeps
/// legacy double call sites source-compatible.
template <typename T = double>
Block2DOutputT<T> summa_rank(RankCtx& ctx, const SummaConfig& cfg);

/// The g-stage broadcast loop, parameterized by the fiber comms so the same
/// code runs on the world grid (summa_rank) and on a survivors' recovery
/// grid (the elastic twin).  (i, j) is this rank's logical grid position,
/// a_own / b_own its owned blocks; C accumulates into `c_block`.
template <typename T>
void summa_stage_loop(RankCtx& ctx, const SummaConfig& cfg,
                      const coll::Comm& my_row, const coll::Comm& my_col,
                      i64 i, i64 j, const std::vector<T>& a_own,
                      const std::vector<T>& b_own, Matrix<T>& c_block);

/// Exact predicted received words for `rank` (binomial broadcasts: every
/// non-root of a stage receives the panel once).
i64 summa_predicted_recv_words(const SummaConfig& cfg, int rank);

/// Checkpointable twin of summa_rank: same math and word counts, but runs
/// under a rollback session — recovery-region comms, epoch boundaries after
/// every stage, and restore-from-snapshot on re-execution.
template <typename T>
Block2DOutputT<T> summa_ckpt_rank(ckpt::SessionT<T>& session,
                                  const SummaConfig& cfg);

/// Boundary steps the twin announces (one per SUMMA stage).
i64 summa_ckpt_steps(const SummaConfig& cfg);
/// Wire words of logical rank `logical`'s snapshot at boundary `step`.
i64 summa_ckpt_snapshot_words(const SummaConfig& cfg, int logical, i64 step);

inline constexpr const char* kPhaseSummaBcastA = "summa_bcast_A";
inline constexpr const char* kPhaseSummaBcastB = "summa_bcast_B";
inline constexpr const char* kPhaseSummaGemm = "summa_gemm";

}  // namespace camb::mm
