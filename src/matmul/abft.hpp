// abft.hpp — algorithm-based fault tolerance for the matmul algorithms.
//
// Huang–Abraham checksum encoding (ACM TC'84) generalized to the processor
// grid: alongside the normal algorithm, the ranks maintain redundant
// checksums of the output blocks, so that when a rank crash-fails
// (faults.hpp) the survivors can *reconstruct* the dead rank's output tile
// instead of recomputing the whole product.  The protocol has four parts:
//
//   1. Encode — extra cost-accounted collectives interleaved with the
//      algorithm accumulate block-sum checksums on designated ranks.
//   2. Degraded completion — a survivor that detects a failure mid-flight
//      (PeerFailedError) abandons the communication schedule (the deviation
//      cascades, so *every* survivor lands here or completes cleanly) and
//      finishes its own tile locally: all inputs are pure functions of their
//      global position (fill_chunk_indexed_int), so nothing is lost.
//   3. Shrink — one crash-agreement collective over the whole machine
//      (collectives/shrink.hpp) gives every survivor the same failed set.
//   4. Reconstruct — the survivors subtract their own tiles from a checksum
//      (one cost-accounted reduce) to recover each dead rank's tile.
//
// Exactness: the ABFT variants force the integer-valued input pattern, so
// every distributed sum is exact in double arithmetic and independent of
// summation order.  The reconstructed tile is therefore *bit-identical* to
// what the dead rank would have produced in a fault-free run — which the
// tests assert.
#pragma once

#include <functional>
#include <type_traits>

#include "matmul/grid3d.hpp"
#include "matmul/summa.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

/// Checksum-augmented SUMMA (2D grid).  Tolerates one crashed rank.
struct SummaAbftConfig {
  SummaConfig base;
  int max_failures = 1;  ///< shrink rounds = max_failures + 1
};

/// Checksum-augmented Algorithm 1 (3D grid).  Tolerates one crashed rank
/// per C fiber (needs p2 >= 2 on any fiber that loses a member).
struct Grid3dAbftConfig {
  Grid3dConfig base;
  int max_failures = 1;
};

/// A dead rank's output tile, reconstructed on a surviving host rank.
template <typename T>
struct RecoveredBlock2DT {
  int rank = -1;  ///< the crashed rank whose tile this is
  Block2DOutputT<T> out;
};
using RecoveredBlock2D = RecoveredBlock2DT<double>;

template <typename T>
struct SummaAbftOutputT {
  Block2DOutputT<T> own;  ///< this rank's (completed) tile
  std::vector<RecoveredBlock2DT<T>> recovered;  ///< tiles reconstructed here
  bool abandoned = false;  ///< did this rank take the degraded-local path?
  std::vector<int> failed;  ///< agreed failed ranks (same on all survivors)
  // Exported checksum state for post-run error correction (empty on
  // non-holders): S_j = sum_i pad_rows(C_ij) on rank (0, j), R_i =
  // sum_j pad_cols(C_ij) on rank (i, 0), T = sum_ij pad(C_ij) on the
  // corner.  summa_abft_correct intersects the row/column syndromes these
  // induce to locate and repair a single corrupted output cell.
  Matrix<T> s_sum;
  Matrix<T> r_sum;
  Matrix<T> t_sum;
};
using SummaAbftOutput = SummaAbftOutputT<double>;

template <typename T>
struct RecoveredChunk3DT {
  int rank = -1;
  BlockChunk c_chunk;
  std::vector<T> c_data;
};
using RecoveredChunk3D = RecoveredChunk3DT<double>;

template <typename T>
struct Grid3dAbftOutputT {
  Grid3dRankOutputT<T> own;
  std::vector<RecoveredChunk3DT<T>> recovered;
  bool abandoned = false;
  std::vector<int> failed;
  /// Exported C-fiber parity X = sum_q2 pad(c_chunk) (every fiber member
  /// holds a copy after the encode All-Reduce); grid3d_abft_correct checks
  /// each fiber's chunks against it to detect and repair corrupted cells.
  std::vector<T> parity;
};
using Grid3dAbftOutput = Grid3dAbftOutputT<double>;

/// SPMD body of checksum-augmented SUMMA for one rank.  Requires g >= 2.
///
/// Encoding (per stage t): the column groups reduce row-padded A panels to
/// row 0 and the row groups reduce column-padded B panels to column 0;
/// ranks (0, j) accumulate S_j = sum_i pad(C_ij), ranks (i, 0) accumulate
/// R_i = sum_j pad(C_ij), and the corner (g-1, g-1) accumulates the total
/// T = sum_ij pad(C_ij) from forwarded panel sums.  A single dead rank
/// (di, dj) is then reconstructed from S_dj (di != 0), from R_0 (di == 0,
/// dj != 0), or from T (the (0,0) corner itself), by subtracting the
/// survivors' tiles.
/// Templated over the scalar (CAMB_FOR_EACH_SCALAR set).  Exact scalars
/// (i64) use the plain indexed fill — their arithmetic never rounds, so the
/// checksums are bit-exact without the integer-valued input workaround the
/// floating-point instantiations still require.
template <typename T = double>
SummaAbftOutputT<T> summa_abft_rank(RankCtx& ctx, const SummaAbftConfig& cfg);

/// SPMD body of checksum-augmented Algorithm 1 for one rank.
///
/// Encoding: after the Reduce-Scatter, each C fiber (q1, :, q3) All-Reduces
/// the parity X = sum_q2 pad(c_chunk) of its members' chunks, so every
/// member holds X (f = 1 redundancy per fiber).  A dead rank's chunk is
/// X minus the surviving members' chunks; dead ranks on distinct fibers are
/// recovered independently.
template <typename T = double>
Grid3dAbftOutputT<T> grid3d_abft_rank(RankCtx& ctx,
                                      const Grid3dAbftConfig& cfg);

/// Exact fault-free received words for `rank` (base algorithm + encode +
/// shrink).  Asserted equal to the executed machine when no crash fires;
/// the measured excess over the base algorithm is the fault-tolerance tax
/// tabled by bench_abft_overhead.
i64 summa_abft_predicted_recv_words(const SummaAbftConfig& cfg, int rank);
i64 grid3d_abft_predicted_recv_words(const Grid3dAbftConfig& cfg, int rank);

/// Checkpointable twins: the base loop plus the checksum encode, with epoch
/// boundaries — but no shrink/degraded path.  Under rollback recovery a
/// failure aborts the round and the harness re-executes, so the ABFT
/// reconstruction machinery is never entered (recovered stays empty).
template <typename T>
SummaAbftOutputT<T> summa_abft_ckpt_rank(ckpt::SessionT<T>& session,
                                         const SummaAbftConfig& cfg);
template <typename T>
Grid3dAbftOutputT<T> grid3d_abft_ckpt_rank(ckpt::SessionT<T>& session,
                                       const Grid3dAbftConfig& cfg);

i64 summa_abft_ckpt_steps(const SummaAbftConfig& cfg);
i64 summa_abft_ckpt_snapshot_words(const SummaAbftConfig& cfg, int logical,
                                   i64 step);
i64 grid3d_abft_ckpt_steps(const Grid3dAbftConfig& cfg);
i64 grid3d_abft_ckpt_snapshot_words(const Grid3dAbftConfig& cfg, int logical,
                                    i64 step);

/// The twins' fault-free prediction: the ABFT prediction without the shrink
/// agreement (rollback replaces it with its own flood, costed separately).
i64 summa_abft_ckpt_base_recv_words(const SummaAbftConfig& cfg, int rank);
i64 grid3d_abft_ckpt_base_recv_words(const Grid3dAbftConfig& cfg, int rank);

// ---------------------------------------------------------------------------
// Single-error detection and correction (the SDC upgrade: the same checksums
// that reconstruct a *missing* tile after a crash also locate and repair a
// *corrupted* cell — the original Huang–Abraham use of the encoding).
// ---------------------------------------------------------------------------

/// What a post-run correction pass observed.  `detected` counts corrupted
/// cells the checksum syndromes flagged; `corrected` of them were localized
/// and repaired in place; `uncorrected` could not be disambiguated (more
/// simultaneous errors than the single-error code covers) and are left for
/// the Freivalds backstop.
struct AbftCorrection {
  int detected = 0;
  int corrected = 0;
  int uncorrected = 0;
  std::vector<int> corrected_ranks;  ///< ranks whose tiles were repaired

  bool clean() const { return detected == 0; }
};

/// Check every rank's output tile against the exported S/R checksums and
/// repair a single corrupted cell in place.  The column syndrome
/// D_j = sum_i pad_rows(C_ij) - S_j localizes the block column, local cell,
/// and error magnitude; the row syndrome E_i = sum_j pad_cols(C_ij) - R_i
/// localizes the block row; a unique, consistent intersection identifies
/// the tile and the repair is exact (integer-valued arithmetic).  Outputs
/// must come from a crash-free run (every rank's checksums present).
template <typename T = double>
AbftCorrection summa_abft_correct(const SummaAbftConfig& cfg,
                                  std::vector<SummaAbftOutputT<T>>& outputs);

/// Grid3d analogue over the C-fiber parities.  The parity syndrome gives
/// the corrupted local element and magnitude but not *which* fiber member
/// holds it (the members' chunks overlap elementwise in the parity);
/// `expected_entry(row, col)` — one exact dot product of the global inputs
/// per candidate — disambiguates.  Errors the intersection cannot pin down
/// are reported uncorrected for the Freivalds backstop.
/// `expected_entry` computes one exact reference entry in T; its type is a
/// non-deduced context so callers may pass a plain lambda.
template <typename T = double>
AbftCorrection grid3d_abft_correct(
    const Grid3dAbftConfig& cfg, std::vector<Grid3dAbftOutputT<T>>& outputs,
    const std::type_identity_t<std::function<T(i64, i64)>>& expected_entry);

/// Phase labels (encode/shrink/recover traffic is accounted separately from
/// the base algorithm's phases; failure-detection probes land in the
/// network's "heartbeat" phase).
inline constexpr const char* kPhaseAbftEncode = "abft_encode";
inline constexpr const char* kPhaseAbftShrink = "abft_shrink";
inline constexpr const char* kPhaseAbftRecover = "abft_recover";

}  // namespace camb::mm
