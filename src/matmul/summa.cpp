#include "matmul/summa.hpp"

#include "collectives/bcast.hpp"
#include "collectives/grid_comm.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

namespace {

BlockChunk full_block(const BlockDist1D& rows, i64 ri, const BlockDist1D& cols,
                      i64 ci) {
  BlockChunk chunk;
  chunk.row0 = rows.start(ri);
  chunk.col0 = cols.start(ci);
  chunk.rows = rows.size(ri);
  chunk.cols = cols.size(ci);
  chunk.flat_start = 0;
  chunk.flat_size = chunk.rows * chunk.cols;
  return chunk;
}

}  // namespace

template <typename T>
void summa_stage_loop(RankCtx& ctx, const SummaConfig& cfg,
                      const coll::Comm& my_row, const coll::Comm& my_col,
                      i64 i, i64 j, const std::vector<T>& a_own,
                      const std::vector<T>& b_own, Matrix<T>& c_block) {
  const i64 g = cfg.g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);
  for (i64 t = 0; t < g; ++t) {
    // A block-column t travels along each row; B block-row t along columns.
    ctx.set_phase(kPhaseSummaBcastA);
    std::vector<T> a_panel = (t == j) ? a_own : std::vector<T>{};
    const i64 a_elems = d1.size(i) * d2.size(t);
    coll::bcast(my_row, static_cast<int>(t), a_panel, a_elems, cfg.bcast,
                cfg.bcast_segments);

    ctx.set_phase(kPhaseSummaBcastB);
    std::vector<T> b_panel = (t == i) ? b_own : std::vector<T>{};
    const i64 b_elems = d2.size(t) * d3.size(j);
    coll::bcast(my_col, static_cast<int>(t), b_panel, b_elems, cfg.bcast,
                cfg.bcast_segments);

    ctx.set_phase(kPhaseSummaGemm);
    Matrix<T> a_mat(d1.size(i), d2.size(t));
    std::copy(a_panel.begin(), a_panel.end(), a_mat.data());
    Matrix<T> b_mat(d2.size(t), d3.size(j));
    std::copy(b_panel.begin(), b_panel.end(), b_mat.data());
    gemm_accumulate(a_mat, b_mat, c_block);
  }
}

template <typename T>
Block2DOutputT<T> summa_rank(RankCtx& ctx, const SummaConfig& cfg) {
  const i64 g = cfg.g;
  CAMB_CHECK_MSG(g * g == ctx.nprocs(), "SUMMA machine size must be g*g");
  const i64 i = ctx.rank() / g;
  const i64 j = ctx.rank() % g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);

  // Owned blocks, generated in place.
  const BlockChunk a_chunk = full_block(d1, i, d2, j);
  const BlockChunk b_chunk = full_block(d2, i, d3, j);
  const auto fill = [&](const BlockChunk& chunk) {
    return cfg.integer_inputs ? fill_chunk_indexed_int<T>(chunk)
                              : fill_chunk_indexed<T>(chunk);
  };
  std::vector<T> a_own = fill(a_chunk);
  std::vector<T> b_own = fill(b_chunk);

  Block2DOutputT<T> out;
  out.row0 = d1.start(i);
  out.col0 = d3.start(j);
  out.block = Matrix<T>(d1.size(i), d3.size(j));

  // g x g grid as Grid3{g, g, 1}: fiber(1) is this rank's row comm (its
  // index there is j), fiber(0) its column comm (index i).
  const coll::GridComm grid(ctx, Grid3{g, g, 1});
  summa_stage_loop(ctx, cfg, grid.fiber(1), grid.fiber(0), i, j, a_own, b_own,
                   out.block);
  return out;
}

#define CAMB_INSTANTIATE(T)                                                 \
  template void summa_stage_loop<T>(RankCtx&, const SummaConfig&,           \
                                    const coll::Comm&, const coll::Comm&,   \
                                    i64, i64, const std::vector<T>&,        \
                                    const std::vector<T>&, Matrix<T>&);     \
  template Block2DOutputT<T> summa_rank<T>(RankCtx&, const SummaConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
Block2DOutputT<T> summa_ckpt_rank(ckpt::SessionT<T>& session,
                                  const SummaConfig& cfg) {
  RankCtx& ctx = session.ctx();
  const i64 g = cfg.g;
  CAMB_CHECK_MSG(g * g == session.nprocs(), "SUMMA machine size must be g*g");
  const i64 i = session.rank() / g;
  const i64 j = session.rank() % g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);

  const BlockChunk a_chunk = full_block(d1, i, d2, j);
  const BlockChunk b_chunk = full_block(d2, i, d3, j);
  const auto fill = [&](const BlockChunk& chunk) {
    return cfg.integer_inputs ? fill_chunk_indexed_int<T>(chunk)
                              : fill_chunk_indexed<T>(chunk);
  };
  std::vector<T> a_own = fill(a_chunk);
  std::vector<T> b_own = fill(b_chunk);

  Block2DOutputT<T> out;
  out.row0 = d1.start(i);
  out.col0 = d3.start(j);
  out.block = Matrix<T>(d1.size(i), d3.size(j));

  // Fiber comms by logical rank: the row of (i, .) and the column of (., j).
  std::vector<int> row_members, col_members;
  for (i64 v = 0; v < g; ++v) {
    row_members.push_back(static_cast<int>(i * g + v));
    col_members.push_back(static_cast<int>(v * g + j));
  }
  const coll::Comm my_row = session.comm(row_members);
  const coll::Comm my_col = session.comm(col_members);

  if (session.restored()) {
    const SnapshotT<T>& snap = session.snapshot();
    CAMB_CHECK(snap.bufs.size() == 1 &&
               static_cast<i64>(snap.bufs[0].size()) == out.block.size());
    std::copy(snap.bufs[0].begin(), snap.bufs[0].end(), out.block.data());
  }

  for (i64 t = session.resume_step(); t < g; ++t) {
    ctx.set_phase(kPhaseSummaBcastA);
    std::vector<T> a_panel = (t == j) ? a_own : std::vector<T>{};
    const i64 a_elems = d1.size(i) * d2.size(t);
    coll::bcast(my_row, static_cast<int>(t), a_panel, a_elems, cfg.bcast,
                cfg.bcast_segments);

    ctx.set_phase(kPhaseSummaBcastB);
    std::vector<T> b_panel = (t == i) ? b_own : std::vector<T>{};
    const i64 b_elems = d2.size(t) * d3.size(j);
    coll::bcast(my_col, static_cast<int>(t), b_panel, b_elems, cfg.bcast,
                cfg.bcast_segments);

    ctx.set_phase(kPhaseSummaGemm);
    Matrix<T> a_mat(d1.size(i), d2.size(t));
    std::copy(a_panel.begin(), a_panel.end(), a_mat.data());
    Matrix<T> b_mat(d2.size(t), d3.size(j));
    std::copy(b_panel.begin(), b_panel.end(), b_mat.data());
    gemm_accumulate(a_mat, b_mat, out.block);

    session.boundary(t + 1, [&] {
      SnapshotT<T> snap;
      snap.bufs = {std::vector<T>(out.block.data(),
                                  out.block.data() + out.block.size())};
      return snap;
    });
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                              \
  template Block2DOutputT<T> summa_ckpt_rank<T>(         \
      ckpt::SessionT<T>&, const SummaConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 summa_ckpt_steps(const SummaConfig& cfg) { return cfg.g; }

i64 summa_ckpt_snapshot_words(const SummaConfig& cfg, int logical, i64 step) {
  (void)step;  // the C block is the whole snapshot at every stage
  const i64 g = cfg.g;
  const BlockDist1D d1(cfg.shape.n1, g), d3(cfg.shape.n3, g);
  return snapshot_wire_words({d1.size(logical / g) * d3.size(logical % g)});
}

i64 summa_predicted_recv_words(const SummaConfig& cfg, int rank) {
  const i64 g = cfg.g;
  const i64 i = rank / g;
  const i64 j = rank % g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);
  i64 words = 0;
  for (i64 t = 0; t < g; ++t) {
    if (t != j && g > 1) words += d1.size(i) * d2.size(t);  // A panel
    if (t != i && g > 1) words += d2.size(t) * d3.size(j);  // B panel
  }
  return words;
}

}  // namespace camb::mm
