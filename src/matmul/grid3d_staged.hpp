// grid3d_staged.hpp — §6.2: the limited-memory adaptation of Algorithm 1.
//
// "Alg. 1 can be adapted to reduce the temporary memory required … at the
//  expense of higher latency cost but without affecting the bandwidth cost."
//
// The adaptation: split the rows of the local A block (and hence of the
// local product D) into `stages` strips.  Stage σ All-Gathers only strip σ
// of A, multiplies it against the (once-gathered) B block, and immediately
// Reduce-Scatters the resulting strip of D.  Across all stages every word of
// A and D still moves exactly once — the bandwidth is identical to the
// unstaged algorithm — but each collective now runs `stages` times, so the
// message (latency) count grows by that factor, and the peak temporary
// memory for the A strip and D strip shrinks by it.
//
// The B block is gathered once and kept: shrinking it too would require
// re-gathering pieces of B once per A strip, multiplying B's bandwidth by
// the stage count — the §6.2 observation that for 3D grids, memory below the
// gathered-input footprint necessarily costs extra communication.
#pragma once

#include "matmul/grid3d.hpp"

namespace camb::mm {

struct Grid3dStagedConfig {
  Shape shape;
  Grid3 grid;
  i64 stages = 1;  ///< strips of the local A/D rows (>= 1)
  coll::AllgatherAlgo allgather = coll::AllgatherAlgo::kAuto;
  coll::ReduceScatterAlgo reduce_scatter = coll::ReduceScatterAlgo::kAuto;
};

/// A rank's output: one owned C piece per stage (the staged ownership layout
/// differs from the unstaged one: each stage's strip is split across the
/// p2 fiber independently).
template <typename T>
struct Grid3dStagedRankOutputT {
  std::vector<BlockChunk> c_chunks;
  std::vector<std::vector<T>> c_data;
};
using Grid3dStagedRankOutput = Grid3dStagedRankOutputT<double>;

/// SPMD body for one rank.  Templated over the scalar
/// (CAMB_FOR_EACH_SCALAR set).
template <typename T = double>
Grid3dStagedRankOutputT<T> grid3d_staged_rank(RankCtx& ctx,
                                              const Grid3dStagedConfig& cfg);

/// Exact predicted received words for `rank` (equals the unstaged total up
/// to the near-equal rounding of strip boundaries).
i64 grid3d_staged_predicted_recv_words(const Grid3dStagedConfig& cfg,
                                       int rank);

/// Peak temporary memory words per rank under this staging: full B block +
/// one A strip + one D strip (+ owned chunks, which are output, not temp).
double grid3d_staged_peak_memory_words(const Grid3dStagedConfig& cfg);

/// Message count per rank along the critical path (the latency price).
i64 grid3d_staged_messages(const Grid3dStagedConfig& cfg, int rank);

/// Checkpointable twin: one boundary after the up-front B all-gather, then
/// one per stage (snapshots carry B plus every completed stage's C piece).
template <typename T>
Grid3dStagedRankOutputT<T> grid3d_staged_ckpt_rank(ckpt::SessionT<T>& session,
                                               const Grid3dStagedConfig& cfg);

i64 grid3d_staged_ckpt_steps(const Grid3dStagedConfig& cfg);
i64 grid3d_staged_ckpt_snapshot_words(const Grid3dStagedConfig& cfg,
                                      int logical, i64 step);

}  // namespace camb::mm
