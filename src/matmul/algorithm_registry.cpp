#include "matmul/algorithm_registry.hpp"

#include "core/grid.hpp"
#include "planner/planner.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace camb::mm {

namespace {

/// The eq. 3 optimal grid via the planner service (bit-identical to
/// core::best_integer_grid; sweeps re-planning the same (shape, P) hit the
/// process-wide memo instead of re-enumerating factor triples).
core::Grid3 planned_grid(const Shape& shape, i64 nprocs) {
  return planner::GridPlanner::instance().plan({shape, nprocs}).grid;
}

bool is_square_p(i64 nprocs) {
  const i64 g = isqrt(nprocs);
  return g * g == nprocs;
}

/// Largest replication depth c with c | g, g*g*c = P, c > 1; 0 if none.
i64 best_25d_depth(i64 nprocs) {
  for (i64 c = 8; c >= 2; --c) {
    if (nprocs % c != 0) continue;
    const i64 gsq = nprocs / c;
    const i64 g = isqrt(gsq);
    if (g * g == gsq && g % c == 0) return c;
  }
  return 0;
}

/// Assemble an entry from its options-taking runner: the legacy bool-verify
/// `run` is derived from `run_opts` so the two can never diverge.
AlgorithmInfo make_algorithm(
    std::string name,
    std::function<bool(const Shape&, i64)> supports,
    std::function<RunReport(const Shape&, i64, const RunOptions&)> run_opts,
    bool bandwidth_optimal) {
  AlgorithmInfo info;
  info.name = std::move(name);
  info.supports = std::move(supports);
  info.run_opts = std::move(run_opts);
  info.run = [run = info.run_opts](const Shape& shape, i64 nprocs,
                                   bool verify) {
    return run(shape, nprocs,
               RunOptions::verified(verify ? VerifyMode::kReference
                                           : VerifyMode::kNone));
  };
  info.bandwidth_optimal = bandwidth_optimal;
  return info;
}

std::vector<AlgorithmInfo> build_registry() {
  std::vector<AlgorithmInfo> algorithms;

  algorithms.push_back(make_algorithm(
      "grid3d_optimal",
      [](const Shape&, i64) { return true; },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        const core::Grid3 grid = planned_grid(shape, nprocs);
        return run_grid3d(Grid3dConfig{shape, grid}, opts);
      },
      /*bandwidth_optimal=*/true));

  algorithms.push_back(make_algorithm(
      "grid3d_agarwal95",
      [](const Shape&, i64) { return true; },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        const core::Grid3 grid = planned_grid(shape, nprocs);
        return run_grid3d_agarwal(Grid3dAgarwalConfig{shape, grid}, opts);
      },
      /*bandwidth_optimal=*/true));

  algorithms.push_back(make_algorithm(
      "grid3d_staged4",
      [](const Shape&, i64) { return true; },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        const core::Grid3 grid = planned_grid(shape, nprocs);
        return run_grid3d_staged(Grid3dStagedConfig{shape, grid, 4}, opts);
      },
      /*bandwidth_optimal=*/true));

  algorithms.push_back(make_algorithm(
      "carma",
      [](const Shape& shape, i64 nprocs) {
        int levels = 0;
        while ((i64{1} << levels) < nprocs) ++levels;
        return (i64{1} << levels) == nprocs &&
               carma_supported(shape, levels);
      },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        int levels = 0;
        while ((i64{1} << levels) < nprocs) ++levels;
        return run_carma(CarmaConfig{shape, levels}, opts);
      },
      /*bandwidth_optimal=*/false));

  algorithms.push_back(make_algorithm(
      "summa",
      [](const Shape&, i64 nprocs) { return is_square_p(nprocs); },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        return run_summa(SummaConfig{shape, isqrt(nprocs)}, opts);
      },
      /*bandwidth_optimal=*/false));

  algorithms.push_back(make_algorithm(
      "summa_abft",
      [](const Shape&, i64 nprocs) {
        return is_square_p(nprocs) && isqrt(nprocs) >= 2;
      },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        return run_summa_abft(SummaAbftConfig{SummaConfig{shape, isqrt(nprocs)}},
                              opts);
      },
      /*bandwidth_optimal=*/false));

  algorithms.push_back(make_algorithm(
      "grid3d_abft",
      [](const Shape& shape, i64 nprocs) {
        // The parity fiber needs at least two members to tolerate a loss.
        return planned_grid(shape, nprocs).p2 >= 2;
      },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        const core::Grid3 grid = planned_grid(shape, nprocs);
        return run_grid3d_abft(Grid3dAbftConfig{Grid3dConfig{shape, grid}},
                               opts);
      },
      /*bandwidth_optimal=*/false));

  algorithms.push_back(make_algorithm(
      "cannon",
      [](const Shape&, i64 nprocs) { return is_square_p(nprocs); },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        return run_cannon(CannonConfig{shape, isqrt(nprocs)}, opts);
      },
      /*bandwidth_optimal=*/false));

  algorithms.push_back(make_algorithm(
      "alg25d",
      [](const Shape&, i64 nprocs) { return best_25d_depth(nprocs) > 0; },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        const i64 c = best_25d_depth(nprocs);
        return run_alg25d(Alg25dConfig{shape, isqrt(nprocs / c), c}, opts);
      },
      /*bandwidth_optimal=*/false));

  // The elastic twins run the base algorithm through the shrink-and-regrid
  // envelope (matmul/elastic.hpp).  Registered so the golden equivalence
  // sweep and the chaos matrix pick them up: a clean elastic run is
  // word-identical to the base entry (the enlist/confirm probes are
  // zero-word), though its output hash pins the integer-valued input
  // pattern that keeps C bit-stable across regrids.
  algorithms.push_back(make_algorithm(
      "summa_elastic",
      [](const Shape&, i64 nprocs) { return is_square_p(nprocs); },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        RunOptions eopts = opts;
        eopts.elastic.enabled = true;
        return run_summa_elastic(SummaConfig{shape, isqrt(nprocs)}, eopts);
      },
      /*bandwidth_optimal=*/false));

  algorithms.push_back(make_algorithm(
      "grid3d_elastic",
      [](const Shape&, i64) { return true; },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        const core::Grid3 grid = planned_grid(shape, nprocs);
        RunOptions eopts = opts;
        eopts.elastic.enabled = true;
        return run_grid3d_elastic(Grid3dConfig{shape, grid}, eopts);
      },
      /*bandwidth_optimal=*/true));

  algorithms.push_back(make_algorithm(
      "alg25d_elastic",
      [](const Shape&, i64 nprocs) { return best_25d_depth(nprocs) > 0; },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        const i64 c = best_25d_depth(nprocs);
        RunOptions eopts = opts;
        eopts.elastic.enabled = true;
        return run_alg25d_elastic(Alg25dConfig{shape, isqrt(nprocs / c), c},
                                  eopts);
      },
      /*bandwidth_optimal=*/false));

  algorithms.push_back(make_algorithm(
      "naive_bcast",
      [](const Shape&, i64) { return true; },
      [](const Shape& shape, i64 nprocs, const RunOptions& opts) {
        return run_naive_bcast(NaiveBcastConfig{shape}, nprocs, opts);
      },
      /*bandwidth_optimal=*/false));

  return algorithms;
}

}  // namespace

const std::vector<AlgorithmInfo>& algorithm_registry() {
  static const std::vector<AlgorithmInfo> registry = build_registry();
  return registry;
}

const AlgorithmInfo& algorithm_by_name(const std::string& name) {
  for (const auto& algorithm : algorithm_registry()) {
    if (algorithm.name == name) return algorithm;
  }
  throw Error("unknown algorithm: " + name);
}

}  // namespace camb::mm
