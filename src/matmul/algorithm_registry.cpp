#include "matmul/algorithm_registry.hpp"

#include "core/grid.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace camb::mm {

namespace {

bool is_square_p(i64 nprocs) {
  const i64 g = isqrt(nprocs);
  return g * g == nprocs;
}

/// Largest replication depth c with c | g, g*g*c = P, c > 1; 0 if none.
i64 best_25d_depth(i64 nprocs) {
  for (i64 c = 8; c >= 2; --c) {
    if (nprocs % c != 0) continue;
    const i64 gsq = nprocs / c;
    const i64 g = isqrt(gsq);
    if (g * g == gsq && g % c == 0) return c;
  }
  return 0;
}

std::vector<AlgorithmInfo> build_registry() {
  std::vector<AlgorithmInfo> algorithms;

  algorithms.push_back(AlgorithmInfo{
      "grid3d_optimal",
      [](const Shape&, i64) { return true; },
      [](const Shape& shape, i64 nprocs, bool verify) {
        const core::Grid3 grid = core::best_integer_grid(shape, nprocs);
        return run_grid3d(Grid3dConfig{shape, grid}, verify);
      },
      /*bandwidth_optimal=*/true});

  algorithms.push_back(AlgorithmInfo{
      "grid3d_agarwal95",
      [](const Shape&, i64) { return true; },
      [](const Shape& shape, i64 nprocs, bool verify) {
        const core::Grid3 grid = core::best_integer_grid(shape, nprocs);
        return run_grid3d_agarwal(Grid3dAgarwalConfig{shape, grid}, verify);
      },
      /*bandwidth_optimal=*/true});

  algorithms.push_back(AlgorithmInfo{
      "grid3d_staged4",
      [](const Shape&, i64) { return true; },
      [](const Shape& shape, i64 nprocs, bool verify) {
        const core::Grid3 grid = core::best_integer_grid(shape, nprocs);
        return run_grid3d_staged(Grid3dStagedConfig{shape, grid, 4}, verify);
      },
      /*bandwidth_optimal=*/true});

  algorithms.push_back(AlgorithmInfo{
      "carma",
      [](const Shape& shape, i64 nprocs) {
        int levels = 0;
        while ((i64{1} << levels) < nprocs) ++levels;
        return (i64{1} << levels) == nprocs &&
               carma_supported(shape, levels);
      },
      [](const Shape& shape, i64 nprocs, bool verify) {
        int levels = 0;
        while ((i64{1} << levels) < nprocs) ++levels;
        return run_carma(CarmaConfig{shape, levels}, verify);
      },
      /*bandwidth_optimal=*/false});

  algorithms.push_back(AlgorithmInfo{
      "summa",
      [](const Shape&, i64 nprocs) { return is_square_p(nprocs); },
      [](const Shape& shape, i64 nprocs, bool verify) {
        return run_summa(SummaConfig{shape, isqrt(nprocs)}, verify);
      },
      /*bandwidth_optimal=*/false});

  algorithms.push_back(AlgorithmInfo{
      "cannon",
      [](const Shape&, i64 nprocs) { return is_square_p(nprocs); },
      [](const Shape& shape, i64 nprocs, bool verify) {
        return run_cannon(CannonConfig{shape, isqrt(nprocs)}, verify);
      },
      /*bandwidth_optimal=*/false});

  algorithms.push_back(AlgorithmInfo{
      "alg25d",
      [](const Shape&, i64 nprocs) { return best_25d_depth(nprocs) > 0; },
      [](const Shape& shape, i64 nprocs, bool verify) {
        const i64 c = best_25d_depth(nprocs);
        return run_alg25d(Alg25dConfig{shape, isqrt(nprocs / c), c}, verify);
      },
      /*bandwidth_optimal=*/false});

  algorithms.push_back(AlgorithmInfo{
      "naive_bcast",
      [](const Shape&, i64) { return true; },
      [](const Shape& shape, i64 nprocs, bool verify) {
        return run_naive_bcast(NaiveBcastConfig{shape}, nprocs, verify);
      },
      /*bandwidth_optimal=*/false});

  return algorithms;
}

}  // namespace

const std::vector<AlgorithmInfo>& algorithm_registry() {
  static const std::vector<AlgorithmInfo> registry = build_registry();
  return registry;
}

const AlgorithmInfo& algorithm_by_name(const std::string& name) {
  for (const auto& algorithm : algorithm_registry()) {
    if (algorithm.name == name) return algorithm;
  }
  throw Error("unknown algorithm: " + name);
}

}  // namespace camb::mm
