#include "matmul/grid3d_agarwal.hpp"

#include "collectives/alltoall.hpp"
#include "collectives/coll_cost.hpp"
#include "collectives/grid_comm.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

template <typename T>
Grid3dRankOutputT<T> grid3d_agarwal_rank(RankCtx& ctx,
                                         const Grid3dAgarwalConfig& cfg) {
  CAMB_CHECK_MSG(cfg.grid.total() == ctx.nprocs(),
                 "grid size must equal the machine size");
  const Grid3dConfig base{cfg.shape, cfg.grid, cfg.allgather,
                          coll::ReduceScatterAlgo::kAuto};
  const Grid3dLayout layout = grid3d_layout(base, ctx.rank());
  const coll::GridComm grid(ctx, cfg.grid);

  // Lines 3-4: identical to Algorithm 1.
  ctx.set_phase(kPhaseAllgatherA);
  std::vector<T> a_flat = coll::allgather(
      grid.fiber(2), layout.a_counts, fill_chunk_indexed<T>(layout.a),
      cfg.allgather);
  ctx.set_phase(kPhaseAllgatherB);
  std::vector<T> b_flat = coll::allgather(
      grid.fiber(0), layout.b_counts, fill_chunk_indexed<T>(layout.b),
      cfg.allgather);

  ctx.set_phase(kPhaseLocalGemm);
  Matrix<T> a_block(layout.a.rows, layout.a.cols);
  std::copy(a_flat.begin(), a_flat.end(), a_block.data());
  Matrix<T> b_block(layout.b.rows, layout.b.cols);
  std::copy(b_flat.begin(), b_flat.end(), b_block.data());
  const Matrix<T> d_block = gemm(a_block, b_block);

  // Line 8 the 1995 way: All-to-All the personalized D segments, sum after.
  ctx.set_phase(kPhaseAlltoallC);
  const int p2 = static_cast<int>(cfg.grid.p2);
  std::vector<std::vector<T>> pieces(static_cast<std::size_t>(p2));
  // Bruck requires equal blocks; pairwise handles the near-equal counts.
  // For Bruck with ragged counts we pad... instead: Bruck only when counts
  // are uniform (checked), pairwise otherwise.
  for (int t = 0; t < p2; ++t) {
    const i64 off = coll::counts_offset(layout.c_counts, t);
    const i64 len = layout.c_counts[static_cast<std::size_t>(t)];
    pieces[static_cast<std::size_t>(t)].assign(
        d_block.data() + off, d_block.data() + off + len);
  }
  const std::vector<std::vector<T>> received =
      coll::alltoall(grid.fiber(1), pieces, cfg.alltoall);

  Grid3dRankOutputT<T> out;
  out.c_chunk = layout.c;
  out.c_data.assign(static_cast<std::size_t>(layout.c.flat_size),
                    ScalarTraits<T>::zero());
  for (const auto& piece : received) {
    CAMB_CHECK(static_cast<i64>(piece.size()) == layout.c.flat_size);
    for (std::size_t j = 0; j < piece.size(); ++j) out.c_data[j] += piece[j];
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                      \
  template Grid3dRankOutputT<T> grid3d_agarwal_rank<T>( \
      RankCtx&, const Grid3dAgarwalConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
Grid3dRankOutputT<T> grid3d_agarwal_ckpt_rank(ckpt::SessionT<T>& session,
                                              const Grid3dAgarwalConfig& cfg) {
  RankCtx& ctx = session.ctx();
  CAMB_CHECK_MSG(cfg.grid.total() == session.nprocs(),
                 "grid size must equal the logical machine size");
  const int me = session.rank();
  const Grid3dConfig base{cfg.shape, cfg.grid, cfg.allgather,
                          coll::ReduceScatterAlgo::kAuto};
  const Grid3dLayout layout = grid3d_layout(base, me);
  const GridMap map(cfg.grid);
  const auto [q1, q2, q3] = map.coords_of(me);
  const coll::Comm fiber_b = session.comm(map.fiber(0, q1, q2, q3));
  const coll::Comm fiber_c = session.comm(map.fiber(1, q1, q2, q3));
  const coll::Comm fiber_a = session.comm(map.fiber(2, q1, q2, q3));

  const i64 t0 = session.resume_step();
  std::vector<T> a_flat, b_flat;
  Grid3dRankOutputT<T> out;
  out.c_chunk = layout.c;
  if (session.restored()) {
    const SnapshotT<T>& snap = session.snapshot();
    if (t0 == 1) {
      a_flat = snap.bufs.at(0);
    } else if (t0 == 2) {
      a_flat = snap.bufs.at(0);
      b_flat = snap.bufs.at(1);
    } else {
      CAMB_CHECK(t0 == 3);
      out.c_data = snap.bufs.at(0);
    }
  }

  for (i64 step = t0; step < 3; ++step) {
    if (step == 0) {
      ctx.set_phase(kPhaseAllgatherA);
      a_flat = coll::allgather(fiber_a, layout.a_counts,
                               fill_chunk_indexed<T>(layout.a),
                               cfg.allgather);
    } else if (step == 1) {
      ctx.set_phase(kPhaseAllgatherB);
      b_flat = coll::allgather(fiber_b, layout.b_counts,
                               fill_chunk_indexed<T>(layout.b),
                               cfg.allgather);
    } else {
      ctx.set_phase(kPhaseLocalGemm);
      Matrix<T> a_block(layout.a.rows, layout.a.cols);
      std::copy(a_flat.begin(), a_flat.end(), a_block.data());
      Matrix<T> b_block(layout.b.rows, layout.b.cols);
      std::copy(b_flat.begin(), b_flat.end(), b_block.data());
      const Matrix<T> d_block = gemm(a_block, b_block);

      ctx.set_phase(kPhaseAlltoallC);
      const int p2 = static_cast<int>(cfg.grid.p2);
      std::vector<std::vector<T>> pieces(static_cast<std::size_t>(p2));
      for (int t = 0; t < p2; ++t) {
        const i64 off = coll::counts_offset(layout.c_counts, t);
        const i64 len = layout.c_counts[static_cast<std::size_t>(t)];
        pieces[static_cast<std::size_t>(t)].assign(
            d_block.data() + off, d_block.data() + off + len);
      }
      const std::vector<std::vector<T>> received =
          coll::alltoall(fiber_c, pieces, cfg.alltoall);
      out.c_data.assign(static_cast<std::size_t>(layout.c.flat_size),
                        ScalarTraits<T>::zero());
      for (const auto& piece : received) {
        CAMB_CHECK(static_cast<i64>(piece.size()) == layout.c.flat_size);
        for (std::size_t j = 0; j < piece.size(); ++j) {
          out.c_data[j] += piece[j];
        }
      }
    }
    session.boundary(step + 1, [&] {
      SnapshotT<T> snap;
      if (step == 0) {
        snap.bufs = {a_flat};
      } else if (step == 1) {
        snap.bufs = {a_flat, b_flat};
      } else {
        snap.bufs = {out.c_data};
      }
      return snap;
    });
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                                  \
  template Grid3dRankOutputT<T> grid3d_agarwal_ckpt_rank<T>( \
      ckpt::SessionT<T>&, const Grid3dAgarwalConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 grid3d_agarwal_ckpt_steps(const Grid3dAgarwalConfig& cfg) {
  (void)cfg;
  return 3;
}

i64 grid3d_agarwal_ckpt_snapshot_words(const Grid3dAgarwalConfig& cfg,
                                       int logical, i64 step) {
  const Grid3dConfig base{cfg.shape, cfg.grid, cfg.allgather,
                          coll::ReduceScatterAlgo::kAuto};
  const Grid3dLayout layout = grid3d_layout(base, logical);
  if (step == 1) return snapshot_wire_words({layout.a.block_size()});
  if (step == 2) {
    return snapshot_wire_words(
        {layout.a.block_size(), layout.b.block_size()});
  }
  return snapshot_wire_words({layout.c.flat_size});
}

i64 grid3d_agarwal_predicted_recv_words(const Grid3dAgarwalConfig& cfg,
                                        int rank) {
  const GridMap map(cfg.grid);
  const auto [q1, q2, q3] = map.coords_of(rank);
  const Grid3dConfig base{cfg.shape, cfg.grid, cfg.allgather,
                          coll::ReduceScatterAlgo::kAuto};
  const Grid3dLayout layout = grid3d_layout(base, rank);
  i64 words = 0;
  words += coll::allgather_recv_words_exact(layout.a_counts,
                                            static_cast<int>(q3), cfg.allgather);
  words += coll::allgather_recv_words_exact(layout.b_counts,
                                            static_cast<int>(q1), cfg.allgather);
  // All-to-All of the rank's own segment size from every fiber peer.
  const i64 own = layout.c_counts[static_cast<std::size_t>(q2)];
  if (cfg.alltoall == coll::AlltoallAlgo::kPairwise) {
    words += (cfg.grid.p2 - 1) * own;
  } else {
    words += coll::alltoall_bruck_recv_words(static_cast<int>(cfg.grid.p2), own);
  }
  return words;
}

}  // namespace camb::mm
