// local_gemm.hpp — the local (per-processor) dense multiplication kernel,
// i.e. the γ part of the α-β-γ model.
//
// A register/cache-blocked triple loop: not a vendor BLAS, but an honest
// kernel with the right loop order (i-k-j, unit-stride inner loop) and cache
// tiling, so the kernel microbenchmarks in bench_kernels measure something
// meaningful.  Numerically it computes the same sums as the reference
// implementation (floating-point addition order per output element is
// identical: ascending k), which keeps distributed results bit-comparable
// paths short in tests.
#pragma once

#include "util/matrix.hpp"

namespace camb::mm {

using camb::i64;
using camb::MatrixD;

/// C += A * B with cache tiling.  Shapes: A is r×c, B is c×s, C is r×s.
void gemm_accumulate(const MatrixD& a, const MatrixD& b, MatrixD& c);

/// C = A * B (allocates C).
MatrixD gemm(const MatrixD& a, const MatrixD& b);

/// Tile edge used by the blocked kernel (exposed for the kernel bench).
inline constexpr i64 kGemmTile = 64;

}  // namespace camb::mm
