// local_gemm.hpp — the local (per-processor) dense multiplication kernel,
// i.e. the γ part of the α-β-γ model.
//
// A register-blocked, panel-packed kernel: not a vendor BLAS, but an honest
// kernel with the structure of one (packed B panel for unit-stride reuse,
// an mr×nr register micro-tile, k innermost).  On x86-64 the full micro-tile
// additionally has AVX2 variants for double (4×8 over paired 4-wide pd
// registers) and float (4×8 over single 8-wide ps registers) selected at
// runtime (per-function target attribute + cpuid check), so the build stays
// portable; i64 and kahan always take the scalar micro-tile.  Numerically
// every path computes the same sums as the reference implementation —
// addition order per output element is identical (ascending k), and the
// AVX2 paths use separate vmul/vadd, which round exactly like scalar
// mul+add and cannot be fused (their target lacks FMA) — which keeps
// distributed results bit-comparable across schedulers and kernels for
// every scalar.  (That equivalence holds at the default target arch;
// building with CAMB_NATIVE may let the compiler contract the *scalar*
// kernels' mul+add into FMAs, which changes low-order bits.)
#pragma once

#include "util/matrix.hpp"

namespace camb::mm {

using camb::i64;
using camb::MatrixD;

/// C += A * B, register-blocked.  Shapes: A is r×c, B is c×s, C is r×s.
/// Templated over the scalar; defined for the CAMB_FOR_EACH_SCALAR set
/// (util/scalar.hpp) via explicit instantiation.
template <typename T>
void gemm_accumulate(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c);

/// C += A * B as a plain tiled triple loop (the pre-blocking kernel).  The
/// bit-exactness oracle: gemm_accumulate must produce exactly these bits on
/// every shape.  Also the "before" side of the kernel benchmark.
template <typename T>
void gemm_accumulate_reference(const Matrix<T>& a, const Matrix<T>& b,
                               Matrix<T>& c);

/// C = A * B (allocates C).
template <typename T>
Matrix<T> gemm(const Matrix<T>& a, const Matrix<T>& b);

/// Tile edge used by the reference kernel (exposed for the kernel bench).
inline constexpr i64 kGemmTile = 64;

/// Blocking parameters of the register-blocked kernel (exposed so the
/// bit-exactness test can probe tile-boundary ±1 shapes deliberately).
inline constexpr i64 kGemmMr = 4;    ///< micro-tile rows
inline constexpr i64 kGemmNr = 8;    ///< micro-tile cols
inline constexpr i64 kGemmKc = 192;  ///< packed-panel depth
inline constexpr i64 kGemmNc = 256;  ///< packed-panel width

}  // namespace camb::mm
