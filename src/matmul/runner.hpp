// runner.hpp — drives a parallel algorithm on the simulated machine:
// builds the machine, runs the SPMD body, reassembles the distributed
// output, verifies it against the serial reference, and packages the
// measured communication next to the exact analytic prediction.
//
// This is the harness every integration test and benchmark goes through, so
// "measured == predicted" is checked at one well-tested choke point.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "collectives/rollback.hpp"
#include "util/scalar.hpp"
#include "core/bounds.hpp"
#include "machine/faults.hpp"
#include "machine/fiber.hpp"
#include "machine/trace.hpp"
#include "util/rng.hpp"
#include "matmul/abft.hpp"
#include "matmul/alg25d.hpp"
#include "matmul/cannon.hpp"
#include "matmul/carma.hpp"
#include "matmul/grid3d.hpp"
#include "matmul/grid3d_agarwal.hpp"
#include "matmul/elastic.hpp"
#include "matmul/grid3d_staged.hpp"
#include "matmul/naive_bcast.hpp"
#include "matmul/summa.hpp"

namespace camb::mm {

/// How a run's result is checked.
enum class VerifyMode {
  kNone,       ///< no verification (pure communication measurement)
  kReference,  ///< assemble C, compare to the cubic-time serial reference
  kFreivalds,  ///< assemble C, probabilistic O(n^2) Freivalds check
  kAuto,       ///< reference for small shapes, Freivalds for large ones
};

/// Schedule-perturbation request for a run (model in machine/faults.hpp).
/// One CLI-level master seed reproduces everything: the machine's rank RNG
/// streams and the fault plan's decisions derive from it through independent
/// domains (util/rng.hpp derive_seed), so logging `master_seed` alone makes
/// any stress failure replayable.
struct PerturbConfig {
  std::string profile = "none";    ///< fault_profile_by_name key
  std::uint64_t master_seed = 42;  ///< drives every derived seed below
  /// Nonzero: use this fault seed directly instead of deriving it (the CLI's
  /// --fault-seed override); rank RNG streams still derive from master_seed.
  std::uint64_t fault_seed_override = 0;

  bool enabled() const { return profile != "none"; }
  std::uint64_t machine_seed() const {
    return derive_seed(master_seed, kSeedDomainRankRng);
  }
  std::uint64_t fault_seed() const {
    return fault_seed_override != 0 ? fault_seed_override
                                    : derive_seed(master_seed, kSeedDomainFaults);
  }
};

/// What the fault layer injected into one run, plus the seeds to replay it.
struct FaultReport {
  bool enabled = false;
  std::string profile = "none";
  std::uint64_t master_seed = 42;
  std::uint64_t fault_seed = 0;
  i64 injected_delays = 0;
  i64 injected_failures = 0;  ///< sends that needed at least one retry
  i64 total_retries = 0;      ///< failed attempts summed over sends
  i64 reordered_messages = 0;
  int stragglers = 0;
  /// One-line reproducibility record (profile, seeds, injected counts) for
  /// logs and test failure messages.
  std::string summary() const;
};

/// Crash-injection request for a run: each listed rank dies at a send
/// position drawn deterministically from the crash seed (machine/faults.hpp).
/// Like the fault seed, the crash seed derives from the one master seed, so
/// a crash scenario replays from `--master-seed` alone.
struct CrashConfig {
  std::vector<int> ranks;        ///< ranks armed to crash
  i64 max_send_position = 64;    ///< positions drawn from [0, this]
  /// Nonzero: use this crash seed directly instead of deriving it.
  std::uint64_t crash_seed_override = 0;

  bool enabled() const { return !ranks.empty(); }
  std::uint64_t crash_seed(std::uint64_t master_seed) const {
    return crash_seed_override != 0
               ? crash_seed_override
               : derive_seed(master_seed, kSeedDomainCrashes);
  }
};

/// What the crash-fault machinery observed in one run, and what the
/// fault tolerance cost: populated whenever crash injection is armed or an
/// ABFT algorithm ran (enabled=false otherwise).
struct RecoveryReport {
  bool enabled = false;  ///< crash injection was armed
  bool abft = false;     ///< the run used a checksum-augmented algorithm
  std::uint64_t crash_seed = 0;
  std::vector<int> planned;    ///< ranks armed to crash
  std::vector<int> crashed;    ///< ranks whose crash actually fired
  std::vector<int> abandoned;  ///< survivors that took the degraded path
  i64 detection_events = 0;    ///< failure detections recorded by survivors
  double first_detection_clock = 0;  ///< earliest detection (logical clock)
  double last_detection_clock = 0;
  /// Zero-word suspicion probes (messages in the "heartbeat" phase: failure
  /// detection adds messages but zero words to the algorithm phases).
  i64 heartbeat_probes = 0;
  /// Max over ranks of words received in the shrink + recover + heartbeat
  /// phases — what the recovery protocol itself moved.  Words are exact
  /// (possibly half-integer) for every dtype; see PhaseCounters.
  double recovery_recv_words = 0;
  /// Max over ranks of words received in the ABFT encode phase — the
  /// fault-tolerance tax paid even on fault-free runs.
  double encode_recv_words = 0;
  /// measured_critical_recv ÷ the Theorem 3 bound (0 when the bound is 0):
  /// the fault-tolerance overhead ratio tabled by bench_abft_overhead.
  double overhead_ratio = 0;
  /// Crash debris: envelopes (and their words) that were already deposited
  /// in mailboxes when the machine stopped and never consumed — sends the
  /// dead rank got out the door plus traffic addressed to it.
  i64 debris_envelopes = 0;
  double debris_words = 0;
  /// One-line reproducibility record for logs and failure messages.
  std::string summary() const;
};

/// Silent-data-corruption request for a run: per-copy message drop /
/// payload-bit-flip / duplication draws at the network layer (healed by the
/// reliable transport, machine/reliable.hpp) and post-run bit-flips in
/// output tiles (healed by the ABFT checksum correction).  Both draw streams
/// derive from the master seed through their own domains (kSeedDomainSdc,
/// kSeedDomainMemSdc), so existing fault profiles replay bit-identically
/// and one logged seed reproduces every corruption event.
struct SdcConfig {
  /// Per-copy probability applied to message drop, payload bit-flip, and
  /// duplication alike (merged into the run's fault profile as drop_prob /
  /// flip_prob / dup_prob).  Requires `reliable`: a dropped copy with no
  /// retransmission would hang its receiver, so the machine rejects the
  /// combination up front.
  double message_rate = 0;
  /// Per-rank probability of one integer bit-flip in the rank's output
  /// tile, injected after the machine stops and before assembly.  Requires
  /// a checksum-augmented (ABFT) algorithm — the correction pass is the
  /// healing layer — and a crash-free, non-checkpointed run.
  double mem_rate = 0;
  /// Nonzero: use this SDC seed directly instead of deriving it (the CLI's
  /// --sdc-seed override).
  std::uint64_t sdc_seed_override = 0;
  /// Attach the reliable transport: checksummed envelopes, ack/nack, and
  /// deterministic retransmit with bounded backoff on the logical clock.
  bool reliable = false;

  bool enabled() const { return message_rate > 0 || mem_rate > 0 || reliable; }
  bool message_sdc() const { return message_rate > 0; }
  std::uint64_t sdc_seed(std::uint64_t master_seed) const {
    return sdc_seed_override != 0 ? sdc_seed_override
                                  : derive_seed(master_seed, kSeedDomainSdc);
  }
  std::uint64_t mem_seed(std::uint64_t master_seed) const {
    return sdc_seed_override != 0
               ? derive_seed(sdc_seed_override, kSeedDomainMemSdc)
               : derive_seed(master_seed, kSeedDomainMemSdc);
  }
};

/// What the corruption layers injected into one run and which defense caught
/// each event (enabled=false when no SDC was requested).  The invariant the
/// chaos tests pin: every injected event is healed at the transport (drops
/// and flips retransmitted, dups discarded) or corrected by the ABFT
/// checksums; `escaped` counts detections the single-error code could not
/// localize — the Freivalds backstop's territory, zero in a single-error run.
struct CorruptionReport {
  bool enabled = false;
  std::uint64_t sdc_seed = 0;
  i64 injected_drops = 0;       ///< message copies lost on the wire
  i64 injected_flips = 0;       ///< message copies delivered corrupted
  i64 injected_dups = 0;        ///< sends whose clean copy arrived twice
  i64 injected_mem_flips = 0;   ///< output-tile bit-flips injected post-run
  i64 caught_at_transport = 0;  ///< corrupt copies the checksum rejected
  i64 retransmits = 0;          ///< extra on-wire copies (drop + flip)
  double retransmitted_words = 0;  ///< sender-side transport-phase word tax
  i64 acks = 0;                 ///< clean deliveries acknowledged
  i64 nacks = 0;                ///< zero-word rejections of corrupt copies
  i64 dup_discards = 0;         ///< duplicates recognized and dropped on pop
  i64 transport_debris = 0;     ///< run-end dup envelopes never popped (benign)
  i64 detected_by_checksums = 0;  ///< ABFT syndrome detections (memory SDC)
  i64 corrected_by_abft = 0;      ///< of those, localized and repaired
  i64 escaped = 0;  ///< detected but uncorrectable; must be 0 single-error
  /// One-line reproducibility record for logs and failure messages.
  std::string summary() const;
};

/// Checkpoint/restart request for a run (collectives/rollback.hpp): commit a
/// buddy-replicated snapshot every `interval` epoch-boundary steps, run on
/// P + spares physical ranks, and roll back + re-execute on a crash instead
/// of reconstructing (ABFT) or shrinking.
struct CheckpointConfig {
  i64 interval = 0;     ///< 0 = checkpointing off
  int buddy_stride = 1; ///< snapshot replica goes to logical (L + stride) % P
  int spares = 0;       ///< extra physical ranks that adopt dead logicals

  bool enabled() const { return interval > 0; }
};

/// What the checkpoint/rollback layer did in one run (enabled=false when
/// checkpointing was off).
struct ResilienceReport {
  bool enabled = false;
  i64 interval = 0;
  int buddy_stride = 1;
  int spares = 0;
  int rounds = 0;          ///< execution rounds until agreement (1 = clean)
  i64 final_epoch = 0;     ///< epoch the winning round resumed from (0 = scratch)
  std::vector<int> failed; ///< agreed crashed physical ranks, all rounds
  std::vector<int> fresh_logicals;  ///< logicals re-hosted onto spares
  /// Max over ranks of words received in the commit phase ("checkpoint"):
  /// the steady-state checkpoint tax, paid even on crash-free runs.
  double checkpoint_recv_words = 0;
  /// Max over ranks of agreement-flood words ("ckpt_shrink").
  double flood_recv_words = 0;
  /// Max over ranks of snapshot-restream words to fresh recruits
  /// ("ckpt_rollback"); 0 on crash-free runs.
  double restream_recv_words = 0;
  /// The per-round agreement records from the rank that drove assembly.
  ckpt::RunLog log;
  /// One-line reproducibility record for logs and failure messages.
  std::string summary() const;
};

/// What the elastic shrink-and-regrid layer did in one run (enabled=false
/// when the run was not elastic).  The word fields mirror the closed-form
/// migration-tax accounting: on a crashed run, every survivor's received
/// words equal base-at-P′ + shrink flood + regrid_recv_words_exact, with
/// zero tolerance — the elastic sweep pins exactly that.
struct ElasticReport {
  bool enabled = false;
  int rounds = 0;             ///< recovery rounds taken (0 = clean run)
  std::vector<int> failed;    ///< agreed failed machine ranks
  i64 survivors = 0;          ///< P′ of the final agreement (P when clean)
  i64 active_ranks = 0;       ///< ranks the final grid uses
  core::Grid3 grid;           ///< the grid the run finished on
  /// Max over ranks of words received in the elastic_regrid phase — the
  /// measured migration tax (0 when clean).
  double migration_recv_words = 0;
  /// Max over ranks of shrink-agreement flood words (0 when clean).
  double shrink_recv_words = 0;
  /// Max over ranks of words received in the algorithm phases — the
  /// execution words on whichever grid the run finished on.
  double exec_recv_words = 0;
  /// Theorem 3 bound for (shape, active_ranks), in this run's words: what
  /// the post-shrink execution communication is compared against.
  double bound_words_at_pprime = 0;
  /// exec_recv_words ÷ bound_words_at_pprime (0 when the bound is 0).
  double overhead_vs_bound = 0;
  /// One-line record (rounds, failed set, new grid, tax) for logs.
  std::string summary() const;
};

/// Everything configurable about how the harness executes an algorithm.
struct RunOptions {
  VerifyMode verify = VerifyMode::kNone;
  /// Scalar type the whole data path runs in (Buffer payloads, collectives,
  /// GEMM, ABFT checksums, checkpoint snapshots).  Word accounting stays
  /// exact per dtype: an element of width w bytes costs w/8 words on the
  /// wire.  Checkpoint/rollback runs in every dtype — snapshots travel as
  /// homogeneous payloads of the run scalar; only the agreement flood stays
  /// fixed 8-byte control traffic.
  DType dtype = DType::kF64;
  PerturbConfig perturb;
  CrashConfig crash;
  SdcConfig sdc;
  CheckpointConfig checkpoint;
  /// Elastic shrink-and-regrid (matmul/elastic.hpp): on crash detection the
  /// survivors agree, re-plan the optimal grid for P′, migrate the live
  /// panels, and finish there.  Mutually exclusive with checkpointing and
  /// with memory-SDC injection (both are rival recovery disciplines).
  ElasticConfig elastic;
  /// Record every counted send (machine/trace.hpp) and return the log in
  /// RunReport::trace_events — what the closed-form transport-tax predictor
  /// (collectives/coll_cost.hpp) replays.  Off by default: tracing allocates
  /// per message.
  bool collect_trace = false;
  /// Execution substrate for the SPMD ranks (machine/fiber.hpp): OS thread
  /// per rank, or fibers on pool-width workers.  Simulation results are
  /// identical either way; fibers are the only mode that reaches P ≈ 65,536.
  SchedulerSpec scheduler;

  static RunOptions verified(VerifyMode mode) {
    RunOptions opts;
    opts.verify = mode;
    return opts;
  }
};

/// Everything a caller needs to compare an executed run against the theory.
struct RunReport {
  /// The scalar type the run executed in, and its element width in bytes.
  /// Every *_words field below is in 8-byte words — exact (integer or
  /// half-integer) for all supported widths — so measured counts compare to
  /// element-count predictions via the width factor element_bytes / 8.
  DType dtype = DType::kF64;
  i64 element_bytes = 8;
  /// Max over ranks of words received during algorithm phases.
  double measured_critical_recv = 0;
  /// Max over ranks of words sent.
  double measured_critical_sent = 0;
  /// Max over ranks of messages sent (the latency term).
  i64 measured_critical_messages = 0;
  /// Per-rank totals (indexed by machine rank): the full communication
  /// profile behind the critical-path maxima above.  The equivalence sweep
  /// pins these rank by rank, not just their maxima.
  std::vector<double> rank_recv_words;
  std::vector<double> rank_sent_words;
  std::vector<i64> rank_messages;
  /// FNV-1a over the assembled output's exact bit pattern; 0 when the run
  /// skipped assembly (VerifyMode::kNone).
  std::uint64_t output_hash = 0;
  /// Scheduled critical-path time under the machine's logical clocks
  /// (default params alpha = beta = 1, i.e. messages + words along the
  /// actual dependency structure — see RankCtx's clock model).
  double simulated_time = 0;
  /// Max over ranks of the registered peak working set (words); nonzero only
  /// for algorithms instrumented with WorkingSet (Algorithm 1 and its staged
  /// variant).
  double measured_peak_memory_words = 0;
  /// Exact analytic prediction of measured_critical_recv in *elements*
  /// (−1 if the algorithm has no exact predictor).  Dtype-independent: the
  /// closed forms count elements moved; multiply by element_bytes / 8 — see
  /// predicted_words() — to land in the measured unit.
  i64 predicted_critical_recv = -1;
  /// Control-plane words on the predicted critical path: protocol traffic
  /// (shrink agreement bitmask floods) whose payloads are fixed 8-byte
  /// words regardless of the data scalar, so it never scales with dtype.
  /// 0 for a plain fault-free run; nonzero for the ABFT variants (shrink
  /// agreement) and for checkpointed runs (the rollback agreement flood).
  i64 predicted_control_words = 0;
  /// Critical-path received words per named phase.
  std::map<std::string, double> phase_recv;
  /// Total words that crossed the network (sum over ranks of sent words).
  double total_network_words = 0;
  /// Theorem 3 lower bound for (shape, P), scaled into this run's words
  /// (the theory counts elements; words = elements × element_bytes / 8).
  double lower_bound_words = 0;
  /// Max |C − C_ref| over all entries; NaN if verification was skipped.
  double max_abs_error = 0;
  bool verified = false;
  /// Perturbation record: seeds and injected-fault counts (enabled=false and
  /// all-zero counts for unperturbed runs).
  FaultReport faults;
  /// Crash/recovery record (enabled=false for runs without crash injection).
  RecoveryReport recovery;
  /// Checkpoint/rollback record (enabled=false when checkpointing was off).
  ResilienceReport resilience;
  /// Corruption record: what SDC injection did and which layer healed it
  /// (enabled=false when no SDC was requested).
  CorruptionReport corruption;
  /// Elastic shrink-and-regrid record (enabled=false for non-elastic runs).
  ElasticReport elastic;
  /// The counted-send log when RunOptions::collect_trace was set (empty
  /// otherwise); feed to coll::predicted_transport_phase.
  std::vector<camb::MessageEvent> trace_events;

  /// The element-count prediction scaled into this run's words: the value
  /// measured_critical_recv must equal exactly on fault-free runs.
  double predicted_words() const {
    if (predicted_critical_recv < 0) return -1.0;
    return static_cast<double>(predicted_critical_recv) *
               (static_cast<double>(element_bytes) / 8.0) +
           static_cast<double>(predicted_control_words);
  }
};

/// Algorithm 1 on its grid.  `verify` assembles C and checks it (mode
/// kReference for `true`; use the VerifyMode / RunOptions overloads for
/// Freivalds or perturbed runs).
RunReport run_grid3d(const Grid3dConfig& cfg, bool verify);
RunReport run_grid3d(const Grid3dConfig& cfg, VerifyMode mode);
RunReport run_grid3d(const Grid3dConfig& cfg, const RunOptions& opts);

/// The §6.2 staged (limited-memory) variant of Algorithm 1.
RunReport run_grid3d_staged(const Grid3dStagedConfig& cfg, bool verify);
RunReport run_grid3d_staged(const Grid3dStagedConfig& cfg,
                            const RunOptions& opts);

/// The Agarwal et al. 1995 variant (All-to-All instead of Reduce-Scatter).
RunReport run_grid3d_agarwal(const Grid3dAgarwalConfig& cfg, bool verify);
RunReport run_grid3d_agarwal(const Grid3dAgarwalConfig& cfg,
                             const RunOptions& opts);

/// The Demmel et al. 2013 recursive algorithm (BFS CARMA, P = 2^levels).
RunReport run_carma(const CarmaConfig& cfg, bool verify);
RunReport run_carma(const CarmaConfig& cfg, const RunOptions& opts);

/// The 2.5D replication algorithm on a g×g×c grid.
RunReport run_alg25d(const Alg25dConfig& cfg, bool verify);
RunReport run_alg25d(const Alg25dConfig& cfg, const RunOptions& opts);

/// SUMMA on a g×g grid.
RunReport run_summa(const SummaConfig& cfg, bool verify);
RunReport run_summa(const SummaConfig& cfg, const RunOptions& opts);

/// Checksum-augmented SUMMA (matmul/abft.hpp): survives a single crashed
/// rank, whose tile is reconstructed by the survivors and assembled into C.
/// predicted_critical_recv is the exact *fault-free* prediction.
RunReport run_summa_abft(const SummaAbftConfig& cfg, bool verify);
RunReport run_summa_abft(const SummaAbftConfig& cfg, const RunOptions& opts);

/// Checksum-augmented Algorithm 1 (one crash per C fiber tolerated).
RunReport run_grid3d_abft(const Grid3dAbftConfig& cfg, bool verify);
RunReport run_grid3d_abft(const Grid3dAbftConfig& cfg, const RunOptions& opts);

/// Elastic twins (matmul/elastic.hpp): the base algorithm wrapped in the
/// shrink-and-regrid protocol.  Crash-free runs are word-identical to the
/// base; crashed runs shrink to the survivors' optimal grid and finish
/// there, with the migration tax reported and pinned to its closed form.
RunReport run_summa_elastic(const SummaConfig& cfg, bool verify);
RunReport run_summa_elastic(const SummaConfig& cfg, const RunOptions& opts);
RunReport run_grid3d_elastic(const Grid3dConfig& cfg, bool verify);
RunReport run_grid3d_elastic(const Grid3dConfig& cfg, const RunOptions& opts);
RunReport run_alg25d_elastic(const Alg25dConfig& cfg, bool verify);
RunReport run_alg25d_elastic(const Alg25dConfig& cfg, const RunOptions& opts);

/// Cannon on a g×g grid.
RunReport run_cannon(const CannonConfig& cfg, bool verify);
RunReport run_cannon(const CannonConfig& cfg, const RunOptions& opts);

/// The naive broadcast-everything baseline on P ranks.
RunReport run_naive_bcast(const NaiveBcastConfig& cfg, i64 nprocs, bool verify);
RunReport run_naive_bcast(const NaiveBcastConfig& cfg, i64 nprocs,
                          const RunOptions& opts);

/// The serial reference result for a shape, built from the same indexed
/// input pattern the distributed algorithms use.
MatrixD reference_result(const Shape& shape);

/// Reference for the integer-valued pattern (what the ABFT algorithms use).
MatrixD reference_result_int(const Shape& shape);

/// Check an assembled result under the given mode; returns the max residual
/// (abs error for kReference, normalized Freivalds residual otherwise).
double check_result(const Shape& shape, const MatrixD& assembled,
                    VerifyMode mode);

}  // namespace camb::mm
