// freivalds.hpp — probabilistic verification of matrix products.
//
// Freivalds' check: for random x, compare A(Bx) with Cx in O(n^2) time.  A
// wrong product escapes one trial with probability <= 1/2 (for {0,1} x), so
// `trials` independent draws bound the false-accept probability by 2^-trials.
// The runner uses this for shapes too large to verify against the cubic-time
// serial reference, so even the biggest benchmark runs stay checked.
#pragma once

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace camb::mm {

using camb::i64;
using camb::MatrixD;
using camb::Rng;

/// True iff C == A*B passes `trials` Freivalds checks with random {0,1}
/// vectors.  `tol` bounds the per-entry residual |A(Bx) - Cx| relative to
/// the accumulated magnitude (floating-point slack).
bool freivalds_check(const MatrixD& a, const MatrixD& b, const MatrixD& c,
                     int trials, Rng& rng, double tol = 1e-9);

/// Convenience: the largest residual seen over `trials` checks, normalized
/// by the magnitude scale — handy for reporting rather than pass/fail.
double freivalds_residual(const MatrixD& a, const MatrixD& b, const MatrixD& c,
                          int trials, Rng& rng);

}  // namespace camb::mm
