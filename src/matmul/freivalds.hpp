// freivalds.hpp — probabilistic verification of matrix products.
//
// Freivalds' check: for random x, compare A(Bx) with Cx in O(n^2) time.  A
// wrong product escapes one trial with probability <= 1/2 (for {0,1} x), so
// `trials` independent draws bound the false-accept probability by 2^-trials.
// The runner uses this for shapes too large to verify against the cubic-time
// serial reference, so even the biggest benchmark runs stay checked.
//
// Templated over the scalar type: entries are widened to double through
// ScalarTraits<T>::to_double and the whole residual is accumulated at double
// precision.  For f32 data that means the *check* never loses precision the
// data itself didn't already lose — only the tolerance has to admit the f32
// rounding that happened inside the product under test (see
// freivalds_default_tol).
#pragma once

#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

using camb::i64;
using camb::MatrixD;
using camb::Rng;

/// Per-dtype residual tolerance: the product under test accumulated in T, so
/// the normalized residual is bounded by roughly n2 * eps(T).  Exact scalars
/// leave residual exactly zero (all arithmetic below 2^53 is exact in the
/// double-precision check); f32 products carry single-precision rounding.
template <typename T>
constexpr double freivalds_default_tol() {
  if constexpr (ScalarTraits<T>::exact) {
    return 0.0;
  } else if constexpr (sizeof(T) == sizeof(float) &&
                       !ScalarTraits<T>::exact) {
    return 1e-3;  // f32: ~n2 * 2^-24 with headroom for large n2
  } else {
    return 1e-9;  // double / kahan
  }
}

/// True iff C == A*B passes `trials` Freivalds checks with random {0,1}
/// vectors.  `tol` bounds the per-entry residual |A(Bx) - Cx| relative to
/// the accumulated magnitude; the residual itself is computed at double
/// precision regardless of T.
template <typename T>
bool freivalds_check(const Matrix<T>& a, const Matrix<T>& b,
                     const Matrix<T>& c, int trials, Rng& rng,
                     double tol = freivalds_default_tol<T>());

/// Convenience: the largest residual seen over `trials` checks, normalized
/// by the magnitude scale — handy for reporting rather than pass/fail.
template <typename T>
double freivalds_residual(const Matrix<T>& a, const Matrix<T>& b,
                          const Matrix<T>& c, int trials, Rng& rng);

}  // namespace camb::mm
