#include "matmul/distribution.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

BlockDist1D::BlockDist1D(i64 total, i64 parts)
    : total_(total), parts_(parts), base_(0), extra_(0) {
  CAMB_CHECK_MSG(total >= 0 && parts >= 1, "bad 1D distribution");
  base_ = total / parts;
  extra_ = total % parts;
}

i64 BlockDist1D::size(i64 i) const {
  CAMB_CHECK(i >= 0 && i < parts_);
  return base_ + (i < extra_ ? 1 : 0);
}

i64 BlockDist1D::start(i64 i) const {
  CAMB_CHECK(i >= 0 && i <= parts_);
  return i * base_ + std::min(i, extra_);
}

i64 BlockDist1D::owner(i64 g) const {
  CAMB_CHECK(g >= 0 && g < total_);
  // Pieces [0, extra_) have size base_+1, the rest base_.
  const i64 boundary = extra_ * (base_ + 1);
  if (g < boundary) return g / (base_ + 1);
  CAMB_CHECK_MSG(base_ > 0, "index beyond all non-empty pieces");
  return extra_ + (g - boundary) / base_;
}

std::vector<i64> BlockDist1D::counts() const {
  std::vector<i64> out(static_cast<std::size_t>(parts_));
  for (i64 i = 0; i < parts_; ++i) out[static_cast<std::size_t>(i)] = size(i);
  return out;
}

GridMap::GridMap(const Grid3& grid) : grid_(grid) {
  CAMB_CHECK_MSG(grid.p1 >= 1 && grid.p2 >= 1 && grid.p3 >= 1,
                 "grid dimensions must be >= 1");
}

int GridMap::rank_of(i64 q1, i64 q2, i64 q3) const {
  CAMB_CHECK(q1 >= 0 && q1 < grid_.p1 && q2 >= 0 && q2 < grid_.p2 && q3 >= 0 &&
             q3 < grid_.p3);
  return static_cast<int>((q1 * grid_.p2 + q2) * grid_.p3 + q3);
}

std::array<i64, 3> GridMap::coords_of(int rank) const {
  CAMB_CHECK(rank >= 0 && rank < nprocs());
  const i64 r = rank;
  return {r / (grid_.p2 * grid_.p3), (r / grid_.p3) % grid_.p2, r % grid_.p3};
}

std::vector<int> GridMap::fiber(int axis, i64 q1, i64 q2, i64 q3) const {
  std::array<i64, 3> coord = {q1, q2, q3};
  const std::array<i64, 3> extents = {grid_.p1, grid_.p2, grid_.p3};
  CAMB_CHECK(axis >= 0 && axis < 3);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(extents[static_cast<std::size_t>(axis)]));
  for (i64 t = 0; t < extents[static_cast<std::size_t>(axis)]; ++t) {
    coord[static_cast<std::size_t>(axis)] = t;
    out.push_back(rank_of(coord[0], coord[1], coord[2]));
  }
  return out;
}

template <typename T>
std::vector<T> fill_chunk_indexed(const BlockChunk& chunk) {
  std::vector<T> out(static_cast<std::size_t>(chunk.flat_size));
  for (i64 f = 0; f < chunk.flat_size; ++f) {
    const i64 flat = chunk.flat_start + f;
    const i64 i = flat / chunk.cols;
    const i64 j = flat % chunk.cols;
    std::uint64_t s = static_cast<std::uint64_t>(
        (chunk.row0 + i) * 0x1000003 + (chunk.col0 + j));
    const double u =
        static_cast<double>(camb::splitmix64(s) >> 11) * 0x1.0p-53 - 0.5;
    out[static_cast<std::size_t>(f)] = ScalarTraits<T>::from_unit(u);
  }
  return out;
}

#define CAMB_INSTANTIATE(T) \
  template std::vector<T> fill_chunk_indexed<T>(const BlockChunk&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
std::vector<T> fill_chunk_indexed_int(const BlockChunk& chunk) {
  std::vector<T> out(static_cast<std::size_t>(chunk.flat_size));
  for (i64 f = 0; f < chunk.flat_size; ++f) {
    const i64 flat = chunk.flat_start + f;
    const i64 i = flat / chunk.cols;
    const i64 j = flat % chunk.cols;
    std::uint64_t s = static_cast<std::uint64_t>(
        (chunk.row0 + i) * 0x1000003 + (chunk.col0 + j));
    const double v = static_cast<double>(camb::splitmix64(s) >> 60) - 8.0;
    out[static_cast<std::size_t>(f)] = static_cast<T>(v);
  }
  return out;
}

#define CAMB_INSTANTIATE_INT(T) \
  template std::vector<T> fill_chunk_indexed_int<T>(const BlockChunk&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE_INT)
#undef CAMB_INSTANTIATE_INT

}  // namespace camb::mm
