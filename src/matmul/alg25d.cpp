#include "matmul/alg25d.hpp"

#include "collectives/bcast.hpp"
#include "collectives/coll_cost.hpp"
#include "collectives/reduce.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"

namespace camb::mm {

namespace {

/// Layer-major rank layout: rank = (l * g + i) * g + j.
struct Coords25d {
  i64 i, j, l;
};

int rank_of(i64 i, i64 j, i64 l, i64 g) {
  return static_cast<int>((l * g + i) * g + j);
}

Coords25d coords_of(int rank, i64 g) {
  const i64 r = rank;
  return {(r / g) % g, r % g, r / (g * g)};
}

std::vector<int> depth_fiber(i64 i, i64 j, i64 g, i64 c) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(c));
  for (i64 l = 0; l < c; ++l) out.push_back(rank_of(i, j, l, g));
  return out;
}

BlockChunk full_block(const BlockDist1D& rows, i64 ri, const BlockDist1D& cols,
                      i64 ci) {
  BlockChunk chunk;
  chunk.row0 = rows.start(ri);
  chunk.col0 = cols.start(ci);
  chunk.rows = rows.size(ri);
  chunk.cols = cols.size(ci);
  chunk.flat_start = 0;
  chunk.flat_size = chunk.rows * chunk.cols;
  return chunk;
}

void validate(const Alg25dConfig& cfg, int nprocs) {
  CAMB_CHECK_MSG(cfg.g >= 1 && cfg.c >= 1, "grid dimensions must be >= 1");
  CAMB_CHECK_MSG(cfg.g % cfg.c == 0, "2.5D requires c | g");
  CAMB_CHECK_MSG(cfg.g * cfg.g * cfg.c == nprocs,
                 "machine size must equal g*g*c");
}

}  // namespace

Block2DOutput alg25d_rank(RankCtx& ctx, const Alg25dConfig& cfg) {
  validate(cfg, ctx.nprocs());
  const i64 g = cfg.g, c = cfg.c;
  const i64 w = g / c;  // Cannon steps per layer
  const auto [i, j, l] = coords_of(ctx.rank(), g);
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);

  // Layer 0 materializes the single input copy.
  std::vector<double> a_held, b_held;
  if (l == 0) {
    a_held = fill_chunk_indexed(full_block(d1, i, d2, j));
    b_held = fill_chunk_indexed(full_block(d2, i, d3, j));
  }

  // 1. Replicate both inputs along the depth fiber.
  ctx.set_phase(kPhase25dReplicate);
  const std::vector<int> depth = depth_fiber(i, j, g, c);
  coll::bcast(ctx, depth, 0, a_held, d1.size(i) * d2.size(j), 0);
  coll::bcast(ctx, depth, 0, b_held, d2.size(i) * d3.size(j),
              coll::kTagStride);

  // 2. Initial skew: layer l starts at k-offset l*w, so rank (i, j, l) must
  // hold A_{i, s0} and B_{s0, j} with s0 = (i + j + l*w) mod g.
  ctx.set_phase(kPhase25dSkew);
  const i64 s0 = (i + j + l * w) % g;
  if (g > 1) {
    const i64 a_dst_col = (j - i - l * w % g + 2 * g) % g;
    ctx.send(rank_of(i, a_dst_col, l, g), 2 * coll::kTagStride,
             std::move(a_held));
    a_held = ctx.recv(rank_of(i, s0, l, g), 2 * coll::kTagStride);
    const i64 b_dst_row = (i - j - l * w % g + 2 * g) % g;
    ctx.send(rank_of(b_dst_row, j, l, g), 2 * coll::kTagStride + 1,
             std::move(b_held));
    b_held = ctx.recv(rank_of(s0, j, l, g), 2 * coll::kTagStride + 1);
  }

  // 3. w Cannon steps within the layer, covering k-blocks s0 .. s0 + w - 1.
  MatrixD c_partial(d1.size(i), d3.size(j));
  for (i64 t = 0; t < w; ++t) {
    const i64 s = (s0 + t) % g;
    ctx.set_phase(kPhase25dGemm);
    MatrixD a_mat(d1.size(i), d2.size(s));
    CAMB_CHECK(static_cast<i64>(a_held.size()) == a_mat.size());
    std::copy(a_held.begin(), a_held.end(), a_mat.data());
    MatrixD b_mat(d2.size(s), d3.size(j));
    CAMB_CHECK(static_cast<i64>(b_held.size()) == b_mat.size());
    std::copy(b_held.begin(), b_held.end(), b_mat.data());
    gemm_accumulate(a_mat, b_mat, c_partial);

    if (t + 1 < w && g > 1) {
      ctx.set_phase(kPhase25dShift);
      const int tag = 3 * coll::kTagStride + static_cast<int>(2 * (t + 1));
      ctx.send(rank_of(i, (j - 1 + g) % g, l, g), tag, std::move(a_held));
      a_held = ctx.recv(rank_of(i, (j + 1) % g, l, g), tag);
      ctx.send(rank_of((i - 1 + g) % g, j, l, g), tag + 1, std::move(b_held));
      b_held = ctx.recv(rank_of((i + 1) % g, j, l, g), tag + 1);
    }
  }

  // 4. Sum the layers' partials onto layer 0.
  ctx.set_phase(kPhase25dReduce);
  std::vector<double> c_flat(c_partial.data(),
                             c_partial.data() + c_partial.size());
  std::vector<double> c_sum =
      coll::reduce(ctx, depth, 0, std::move(c_flat), 4 * coll::kTagStride);

  Block2DOutput out;
  out.row0 = d1.start(i);
  out.col0 = d3.start(j);
  if (l == 0) {
    out.block = MatrixD(d1.size(i), d3.size(j));
    CAMB_CHECK(static_cast<i64>(c_sum.size()) == out.block.size());
    std::copy(c_sum.begin(), c_sum.end(), out.block.data());
  }
  return out;
}

i64 alg25d_predicted_recv_words(const Alg25dConfig& cfg, int rank) {
  const i64 g = cfg.g, c = cfg.c;
  const i64 w = g / c;
  const auto [i, j, l] = coords_of(rank, g);
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);
  i64 words = 0;
  // 1. Depth broadcasts: every non-layer-0 rank receives both blocks once.
  if (l != 0) words += d1.size(i) * d2.size(j) + d2.size(i) * d3.size(j);
  // 2. Skew (self-moves are free): A arrives from column s0, B from row s0.
  const i64 s0 = (i + j + l * w) % g;
  if (g > 1) {
    if (s0 != j) words += d1.size(i) * d2.size(s0);
    if (s0 != i) words += d2.size(s0) * d3.size(j);
  }
  // 3. Shifts t = 1 .. w-1 (neighbours, never self for g > 1).
  if (g > 1) {
    for (i64 t = 1; t < w; ++t) {
      const i64 s = (s0 + t) % g;
      words += d1.size(i) * d2.size(s);
      words += d2.size(s) * d3.size(j);
    }
  }
  // 4. Depth reduce (binomial): replicate the reduce() round structure.
  const i64 wc = d1.size(i) * d3.size(j);
  if (c > 1) {
    int top = 1;
    while (top < c) top <<= 1;
    for (int dist = top >> 1; dist >= 1; dist >>= 1) {
      if (l < dist && l + dist < c) words += wc;
    }
  }
  return words;
}

double alg25d_cost_words(const Alg25dConfig& cfg) {
  i64 worst = 0;
  const i64 P = cfg.g * cfg.g * cfg.c;
  for (i64 r = 0; r < P; ++r) {
    worst = std::max(worst,
                     alg25d_predicted_recv_words(cfg, static_cast<int>(r)));
  }
  return static_cast<double>(worst);
}

double alg25d_memory_words(const Alg25dConfig& cfg) {
  const auto g = static_cast<double>(cfg.g);
  const auto n1 = static_cast<double>(cfg.shape.n1);
  const auto n2 = static_cast<double>(cfg.shape.n2);
  const auto n3 = static_cast<double>(cfg.shape.n3);
  // One replicated block of each input plus the C partial, per rank.
  return n1 * n2 / (g * g) + n2 * n3 / (g * g) + n1 * n3 / (g * g);
}

}  // namespace camb::mm
