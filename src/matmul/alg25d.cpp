#include "matmul/alg25d.hpp"

#include "collectives/bcast.hpp"
#include "collectives/coll_cost.hpp"
#include "collectives/grid_comm.hpp"
#include "collectives/reduce.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

namespace {

/// Layer-major rank layout: rank = (l * g + i) * g + j.
struct Coords25d {
  i64 i, j, l;
};

Coords25d coords_of(int rank, i64 g) {
  const i64 r = rank;
  return {(r / g) % g, r % g, r / (g * g)};
}

BlockChunk full_block(const BlockDist1D& rows, i64 ri, const BlockDist1D& cols,
                      i64 ci) {
  BlockChunk chunk;
  chunk.row0 = rows.start(ri);
  chunk.col0 = cols.start(ci);
  chunk.rows = rows.size(ri);
  chunk.cols = cols.size(ci);
  chunk.flat_start = 0;
  chunk.flat_size = chunk.rows * chunk.cols;
  return chunk;
}

void validate(const Alg25dConfig& cfg, int nprocs) {
  CAMB_CHECK_MSG(cfg.g >= 1 && cfg.c >= 1, "grid dimensions must be >= 1");
  CAMB_CHECK_MSG(cfg.g % cfg.c == 0, "2.5D requires c | g");
  CAMB_CHECK_MSG(cfg.g * cfg.g * cfg.c == nprocs,
                 "machine size must equal g*g*c");
}

}  // namespace

template <typename T>
std::vector<T> alg25d_core(RankCtx& ctx, const Alg25dConfig& cfg, i64 i, i64 j,
                           i64 l, const coll::Comm& depth,
                           const coll::Comm& my_row, const coll::Comm& my_col,
                           std::vector<T> a_held, std::vector<T> b_held) {
  const i64 g = cfg.g, c = cfg.c;
  const i64 w = g / c;  // Cannon steps per layer
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);

  // 1. Replicate both inputs along the depth fiber.
  ctx.set_phase(kPhase25dReplicate);
  coll::bcast(depth, 0, a_held, d1.size(i) * d2.size(j));
  coll::bcast(depth, 0, b_held, d2.size(i) * d3.size(j));

  // 2. Initial skew: layer l starts at k-offset l*w, so rank (i, j, l) must
  // hold A_{i, s0} and B_{s0, j} with s0 = (i + j + l*w) mod g.  One tag
  // block per fiber covers the skew plus every shift round.
  ctx.set_phase(kPhase25dSkew);
  const int row_tags = g > 1 ? my_row.take_tag_block() : 0;
  const int col_tags = g > 1 ? my_col.take_tag_block() : 0;
  CAMB_CHECK_MSG(w < kTagBlockWidth, "grid too large for one tag block");
  const i64 s0 = (i + j + l * w) % g;
  if (g > 1) {
    const i64 a_dst_col = (j - i - l * w % g + 2 * g) % g;
    my_row.send(static_cast<int>(a_dst_col), row_tags,
                Buffer::adopt(std::move(a_held)));
    a_held = std::move(my_row.recv(static_cast<int>(s0), row_tags))
                 .take_as<T>();
    const i64 b_dst_row = (i - j - l * w % g + 2 * g) % g;
    my_col.send(static_cast<int>(b_dst_row), col_tags,
                Buffer::adopt(std::move(b_held)));
    b_held = std::move(my_col.recv(static_cast<int>(s0), col_tags))
                 .take_as<T>();
  }

  // 3. w Cannon steps within the layer, covering k-blocks s0 .. s0 + w - 1.
  Matrix<T> c_partial(d1.size(i), d3.size(j));
  for (i64 t = 0; t < w; ++t) {
    const i64 s = (s0 + t) % g;
    ctx.set_phase(kPhase25dGemm);
    Matrix<T> a_mat(d1.size(i), d2.size(s));
    CAMB_CHECK(static_cast<i64>(a_held.size()) == a_mat.size());
    std::copy(a_held.begin(), a_held.end(), a_mat.data());
    Matrix<T> b_mat(d2.size(s), d3.size(j));
    CAMB_CHECK(static_cast<i64>(b_held.size()) == b_mat.size());
    std::copy(b_held.begin(), b_held.end(), b_mat.data());
    gemm_accumulate(a_mat, b_mat, c_partial);

    if (t + 1 < w && g > 1) {
      ctx.set_phase(kPhase25dShift);
      const int off = static_cast<int>(t + 1);
      my_row.send(static_cast<int>((j - 1 + g) % g), row_tags + off,
                  Buffer::adopt(std::move(a_held)));
      a_held = std::move(
                   my_row.recv(static_cast<int>((j + 1) % g), row_tags + off))
                   .take_as<T>();
      my_col.send(static_cast<int>((i - 1 + g) % g), col_tags + off,
                  Buffer::adopt(std::move(b_held)));
      b_held = std::move(
                   my_col.recv(static_cast<int>((i + 1) % g), col_tags + off))
                   .take_as<T>();
    }
  }

  // 4. Sum the layers' partials onto layer 0.
  ctx.set_phase(kPhase25dReduce);
  std::vector<T> c_flat(c_partial.data(),
                        c_partial.data() + c_partial.size());
  std::vector<T> c_sum = coll::reduce(depth, 0, std::move(c_flat));
  if (l != 0) c_sum.clear();
  return c_sum;
}

template <typename T>
Block2DOutputT<T> alg25d_rank(RankCtx& ctx, const Alg25dConfig& cfg) {
  validate(cfg, ctx.nprocs());
  const i64 g = cfg.g, c = cfg.c;
  const auto [i, j, l] = coords_of(ctx.rank(), g);
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);

  // Layer 0 materializes the single input copy.
  std::vector<T> a_held, b_held;
  if (l == 0) {
    const auto fill = [&](const BlockChunk& chunk) {
      return cfg.integer_inputs ? fill_chunk_indexed_int<T>(chunk)
                                : fill_chunk_indexed<T>(chunk);
    };
    a_held = fill(full_block(d1, i, d2, j));
    b_held = fill(full_block(d2, i, d3, j));
  }

  // Layer-major layout (l * g + i) * g + j is Grid3{c, g, g} with coords
  // (l, i, j): fiber(0) is the depth fiber (index l), fiber(2) the in-layer
  // row comm A shifts along (index j), fiber(1) the column comm for B.
  const coll::GridComm grid25(ctx, Grid3{c, g, g});
  std::vector<T> c_sum =
      alg25d_core<T>(ctx, cfg, i, j, l, grid25.fiber(0), grid25.fiber(2),
                     grid25.fiber(1), std::move(a_held), std::move(b_held));

  Block2DOutputT<T> out;
  out.row0 = d1.start(i);
  out.col0 = d3.start(j);
  if (l == 0) {
    out.block = Matrix<T>(d1.size(i), d3.size(j));
    CAMB_CHECK(static_cast<i64>(c_sum.size()) == out.block.size());
    std::copy(c_sum.begin(), c_sum.end(), out.block.data());
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                                                  \
  template std::vector<T> alg25d_core<T>(                                    \
      RankCtx&, const Alg25dConfig&, i64, i64, i64, const coll::Comm&,       \
      const coll::Comm&, const coll::Comm&, std::vector<T>, std::vector<T>); \
  template Block2DOutputT<T> alg25d_rank<T>(RankCtx&, const Alg25dConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
Block2DOutputT<T> alg25d_ckpt_rank(ckpt::SessionT<T>& session,
                                   const Alg25dConfig& cfg) {
  RankCtx& ctx = session.ctx();
  validate(cfg, session.nprocs());
  const i64 g = cfg.g, c = cfg.c;
  const i64 w = g / c;
  const auto [i, j, l] = coords_of(session.rank(), g);
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);

  const GridMap map(Grid3{c, g, g});
  const coll::Comm depth = session.comm(map.fiber(0, l, i, j));
  const coll::Comm my_col = session.comm(map.fiber(1, l, i, j));
  const coll::Comm my_row = session.comm(map.fiber(2, l, i, j));
  const int row_tags = g > 1 ? my_row.take_tag_block() : 0;
  const int col_tags = g > 1 ? my_col.take_tag_block() : 0;
  CAMB_CHECK_MSG(w < kTagBlockWidth, "grid too large for one tag block");

  const i64 s0 = (i + j + l * w) % g;
  std::vector<T> a_held, b_held;
  Matrix<T> c_partial(d1.size(i), d3.size(j));
  const i64 t0 = session.resume_step();
  if (session.restored()) {
    const SnapshotT<T>& snap = session.snapshot();
    CAMB_CHECK(snap.bufs.size() == 3);
    a_held = snap.bufs[0];
    b_held = snap.bufs[1];
    CAMB_CHECK(static_cast<i64>(snap.bufs[2].size()) == c_partial.size());
    std::copy(snap.bufs[2].begin(), snap.bufs[2].end(), c_partial.data());
  } else {
    if (l == 0) {
      a_held = fill_chunk_indexed<T>(full_block(d1, i, d2, j));
      b_held = fill_chunk_indexed<T>(full_block(d2, i, d3, j));
    }
    ctx.set_phase(kPhase25dReplicate);
    coll::bcast(depth, 0, a_held, d1.size(i) * d2.size(j));
    coll::bcast(depth, 0, b_held, d2.size(i) * d3.size(j));

    ctx.set_phase(kPhase25dSkew);
    if (g > 1) {
      const i64 a_dst_col = (j - i - l * w % g + 2 * g) % g;
      my_row.send(static_cast<int>(a_dst_col), row_tags,
                  Buffer::adopt(std::move(a_held)));
      a_held = std::move(my_row.recv(static_cast<int>(s0), row_tags))
                   .template take_as<T>();
      const i64 b_dst_row = (i - j - l * w % g + 2 * g) % g;
      my_col.send(static_cast<int>(b_dst_row), col_tags,
                  Buffer::adopt(std::move(b_held)));
      b_held = std::move(my_col.recv(static_cast<int>(s0), col_tags))
                   .template take_as<T>();
    }
  }

  for (i64 t = t0; t < w; ++t) {
    const i64 s = (s0 + t) % g;
    ctx.set_phase(kPhase25dGemm);
    Matrix<T> a_mat(d1.size(i), d2.size(s));
    CAMB_CHECK(static_cast<i64>(a_held.size()) == a_mat.size());
    std::copy(a_held.begin(), a_held.end(), a_mat.data());
    Matrix<T> b_mat(d2.size(s), d3.size(j));
    CAMB_CHECK(static_cast<i64>(b_held.size()) == b_mat.size());
    std::copy(b_held.begin(), b_held.end(), b_mat.data());
    gemm_accumulate(a_mat, b_mat, c_partial);

    if (t + 1 < w && g > 1) {
      ctx.set_phase(kPhase25dShift);
      const int off = static_cast<int>(t + 1);
      my_row.send(static_cast<int>((j - 1 + g) % g), row_tags + off,
                  Buffer::adopt(std::move(a_held)));
      a_held = std::move(
                   my_row.recv(static_cast<int>((j + 1) % g), row_tags + off))
                   .template take_as<T>();
      my_col.send(static_cast<int>((i - 1 + g) % g), col_tags + off,
                  Buffer::adopt(std::move(b_held)));
      b_held = std::move(
                   my_col.recv(static_cast<int>((i + 1) % g), col_tags + off))
                   .template take_as<T>();
    }

    session.boundary(t + 1, [&] {
      SnapshotT<T> snap;
      snap.bufs = {a_held, b_held,
                   std::vector<T>(c_partial.data(),
                                  c_partial.data() + c_partial.size())};
      return snap;
    });
  }

  ctx.set_phase(kPhase25dReduce);
  std::vector<T> c_flat(c_partial.data(), c_partial.data() + c_partial.size());
  std::vector<T> c_sum = coll::reduce(depth, 0, std::move(c_flat));

  Block2DOutputT<T> out;
  out.row0 = d1.start(i);
  out.col0 = d3.start(j);
  if (l == 0) {
    out.block = Matrix<T>(d1.size(i), d3.size(j));
    CAMB_CHECK(static_cast<i64>(c_sum.size()) == out.block.size());
    std::copy(c_sum.begin(), c_sum.end(), out.block.data());
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                       \
  template Block2DOutputT<T> alg25d_ckpt_rank<T>( \
      ckpt::SessionT<T>&, const Alg25dConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 alg25d_ckpt_steps(const Alg25dConfig& cfg) { return cfg.g / cfg.c; }

i64 alg25d_ckpt_snapshot_words(const Alg25dConfig& cfg, int logical,
                               i64 step) {
  const i64 g = cfg.g, c = cfg.c;
  const i64 w = g / c;
  const auto [i, j, l] = coords_of(logical, g);
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);
  const i64 s0 = (i + j + l * w) % g;
  // At boundary `step` the held k-block index is s0 + step after a shift,
  // except the last step, which does not shift.
  const i64 s = step < w ? (s0 + step) % g : (s0 + w - 1) % g;
  return snapshot_wire_words({d1.size(i) * d2.size(s),
                              d2.size(s) * d3.size(j),
                              d1.size(i) * d3.size(j)});
}

i64 alg25d_predicted_recv_words(const Alg25dConfig& cfg, int rank) {
  const i64 g = cfg.g, c = cfg.c;
  const i64 w = g / c;
  const auto [i, j, l] = coords_of(rank, g);
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);
  i64 words = 0;
  // 1. Depth broadcasts: every non-layer-0 rank receives both blocks once.
  if (l != 0) words += d1.size(i) * d2.size(j) + d2.size(i) * d3.size(j);
  // 2. Skew (self-moves are free): A arrives from column s0, B from row s0.
  const i64 s0 = (i + j + l * w) % g;
  if (g > 1) {
    if (s0 != j) words += d1.size(i) * d2.size(s0);
    if (s0 != i) words += d2.size(s0) * d3.size(j);
  }
  // 3. Shifts t = 1 .. w-1 (neighbours, never self for g > 1).
  if (g > 1) {
    for (i64 t = 1; t < w; ++t) {
      const i64 s = (s0 + t) % g;
      words += d1.size(i) * d2.size(s);
      words += d2.size(s) * d3.size(j);
    }
  }
  // 4. Depth reduce (binomial): replicate the reduce() round structure.
  const i64 wc = d1.size(i) * d3.size(j);
  if (c > 1) {
    int top = 1;
    while (top < c) top <<= 1;
    for (int dist = top >> 1; dist >= 1; dist >>= 1) {
      if (l < dist && l + dist < c) words += wc;
    }
  }
  return words;
}

double alg25d_cost_words(const Alg25dConfig& cfg) {
  i64 worst = 0;
  const i64 P = cfg.g * cfg.g * cfg.c;
  for (i64 r = 0; r < P; ++r) {
    worst = std::max(worst,
                     alg25d_predicted_recv_words(cfg, static_cast<int>(r)));
  }
  return static_cast<double>(worst);
}

double alg25d_memory_words(const Alg25dConfig& cfg) {
  const auto g = static_cast<double>(cfg.g);
  const auto n1 = static_cast<double>(cfg.shape.n1);
  const auto n2 = static_cast<double>(cfg.shape.n2);
  const auto n3 = static_cast<double>(cfg.shape.n3);
  // One replicated block of each input plus the C partial, per rank.
  return n1 * n2 / (g * g) + n2 * n3 / (g * g) + n1 * n3 / (g * g);
}

}  // namespace camb::mm
