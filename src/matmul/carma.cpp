#include "matmul/carma.hpp"

#include "collectives/comm.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

namespace {

/// Demmel et al.'s rule: split the largest current dimension (ties resolved
/// M, then K, then N, deterministically).
char choose_split(i64 r, i64 k, i64 c) {
  if (r >= k && r >= c) return 'M';
  if (k >= c) return 'K';
  return 'N';
}

/// Replication exchange: the parent array (W words, row-contiguous chunks of
/// W / |comm| words per member) is needed in full by BOTH comm halves.
/// Child member i (of either half) ends with parent chunks 2i and 2i+1
/// concatenated = child chunk i of a W / (|comm|/2) distribution.
template <typename T>
std::vector<T> replicate_exchange(const coll::Comm& comm,
                                  const std::vector<T>& mine, int tag) {
  const int s = comm.size() / 2;
  const int pidx = comm.my_index();
  // Send my chunk to the member of each half that needs it.
  comm.send(pidx / 2, tag, Buffer::pack<T>(mine));
  comm.send(s + pidx / 2, tag, Buffer::pack<T>(mine));
  // Receive parent chunks 2i and 2i+1, i = my index within my half.
  const int i = pidx < s ? pidx : pidx - s;
  std::vector<T> lowpart = std::move(comm.recv(2 * i, tag)).take_as<T>();
  std::vector<T> highpart = std::move(comm.recv(2 * i + 1, tag)).take_as<T>();
  lowpart.insert(lowpart.end(), highpart.begin(), highpart.end());
  return lowpart;
}

/// Column-halving exchange: the parent array is (rows × cols) row-major,
/// row-distributed (rows_pm rows per member).  The left column half goes to
/// the lower comm half, the right to the upper; child member i receives the
/// matching halves of parent members 2i, 2i+1's rows, preserving row order.
template <typename T>
std::vector<T> split_columns_exchange(const coll::Comm& comm,
                                      const std::vector<T>& mine, i64 rows_pm,
                                      i64 cols, int tag) {
  CAMB_CHECK(cols % 2 == 0);
  CAMB_CHECK(static_cast<i64>(mine.size()) == rows_pm * cols);
  const int s = comm.size() / 2;
  const int pidx = comm.my_index();
  const i64 half = cols / 2;
  std::vector<T> left, right;
  left.reserve(static_cast<std::size_t>(rows_pm * half));
  right.reserve(static_cast<std::size_t>(rows_pm * half));
  for (i64 row = 0; row < rows_pm; ++row) {
    const auto base = mine.begin() + row * cols;
    left.insert(left.end(), base, base + half);
    right.insert(right.end(), base + half, base + cols);
  }
  comm.send(pidx / 2, tag, Buffer::adopt(std::move(left)));
  comm.send(s + pidx / 2, tag, Buffer::adopt(std::move(right)));
  const int i = pidx < s ? pidx : pidx - s;
  std::vector<T> lowpart = std::move(comm.recv(2 * i, tag)).take_as<T>();
  std::vector<T> highpart = std::move(comm.recv(2 * i + 1, tag)).take_as<T>();
  lowpart.insert(lowpart.end(), highpart.begin(), highpart.end());
  return lowpart;
}

/// One K-split combine frame remembered for the unwind: the level comm it
/// runs on (kept alive so the lease stays valid), the tag reserved for the
/// combine at split time, and the partner's index within that comm.
struct CombineFrame {
  coll::Comm comm;
  int tag;
  int partner_idx;
  bool lower;  ///< true if this rank keeps the first half of its holding
};

}  // namespace

std::vector<char> carma_split_sequence(const CarmaConfig& cfg) {
  std::vector<char> splits;
  i64 r = cfg.shape.n1, k = cfg.shape.n2, c = cfg.shape.n3;
  for (int level = 0; level < cfg.levels; ++level) {
    const char split = choose_split(r, k, c);
    splits.push_back(split);
    if (split == 'M') r /= 2;
    else if (split == 'K') k /= 2;
    else c /= 2;
  }
  return splits;
}

bool carma_supported(const Shape& shape, int levels) {
  if (levels < 0 || levels > 30) return false;
  i64 r = shape.n1, k = shape.n2, c = shape.n3;
  i64 g = i64{1} << levels;
  int k_splits = 0;
  for (int level = 0; level < levels; ++level) {
    // Row distributions of A (r rows) and B (k rows) over the group.
    if (r % g != 0 || k % g != 0) return false;
    const char split = choose_split(r, k, c);
    if (split == 'M') {
      if (r % 2 != 0) return false;
      r /= 2;
    } else if (split == 'K') {
      if (k % 2 != 0) return false;
      k /= 2;
      ++k_splits;
    } else {
      if (c % 2 != 0) return false;
      c /= 2;
    }
    g /= 2;
  }
  // Leaf C must halve once per K-combine on the unwind.
  const i64 leaf_c_words = r * c;
  return leaf_c_words % (i64{1} << k_splits) == 0;
}

template <typename T>
CarmaRankOutputT<T> carma_rank(RankCtx& ctx, const CarmaConfig& cfg) {
  const i64 P = i64{1} << cfg.levels;
  CAMB_CHECK_MSG(P == ctx.nprocs(), "machine size must be 2^levels");
  CAMB_CHECK_MSG(carma_supported(cfg.shape, cfg.levels),
                 "shape does not satisfy CARMA's divisibility requirements");
  i64 r = cfg.shape.n1, k = cfg.shape.n2, c = cfg.shape.n3;
  i64 c_row0 = 0, c_col0 = 0;
  int g_lo = 0;
  int g_size = static_cast<int>(P);

  // Root distribution: contiguous row blocks of A and B.
  const int me = ctx.rank();
  std::vector<T> a = fill_chunk_indexed<T>(BlockChunk{
      0, 0, r, k, me * (r / P) * k, (r / P) * k});
  std::vector<T> b = fill_chunk_indexed<T>(BlockChunk{
      0, 0, k, c, me * (k / P) * c, (k / P) * c});

  std::vector<CombineFrame> combines;
  for (int level = 0; level < cfg.levels; ++level) {
    const int s = g_size / 2;
    const int pidx = me - g_lo;
    const bool lower = pidx < s;
    const char split = choose_split(r, k, c);
    ctx.set_phase(kPhaseCarmaSplit);
    // This level's comm: the current group.  Every rank of the machine is in
    // exactly one group per level and the split letters are dimension-driven
    // (identical across groups), so the lease sequences stay in lockstep.
    std::vector<int> members(static_cast<std::size_t>(g_size));
    for (int m = 0; m < g_size; ++m) {
      members[static_cast<std::size_t>(m)] = g_lo + m;
    }
    coll::Comm level_comm(ctx, std::move(members), /*tag_blocks=*/2);
    const int tags = level_comm.take_tag_block();
    if (split == 'M') {
      // A and C halves align with the comm halves; replicate B.
      b = replicate_exchange(level_comm, b, tags);
      r /= 2;
      if (!lower) c_row0 += r;
    } else if (split == 'K') {
      a = split_columns_exchange(level_comm, a, r / g_size, k, tags);
      k /= 2;
      const int combine_tags = level_comm.take_tag_block();
      combines.push_back(CombineFrame{std::move(level_comm), combine_tags,
                                      lower ? pidx + s : pidx - s, lower});
    } else {  // 'N'
      a = replicate_exchange(level_comm, a, tags);
      b = split_columns_exchange(level_comm, b, k / g_size, c, tags + 1);
      c /= 2;
      if (!lower) c_col0 += c;
    }
    if (!lower) g_lo += s;
    g_size = s;
  }

  // Leaf: this rank owns the entire (r × k) x (k × c) subproblem.
  ctx.set_phase(kPhaseCarmaGemm);
  Matrix<T> a_leaf(r, k), b_leaf(k, c);
  CAMB_CHECK(static_cast<i64>(a.size()) == r * k);
  CAMB_CHECK(static_cast<i64>(b.size()) == k * c);
  std::copy(a.begin(), a.end(), a_leaf.data());
  std::copy(b.begin(), b.end(), b_leaf.data());
  const Matrix<T> c_leaf = gemm(a_leaf, b_leaf);

  CarmaRankOutputT<T> out;
  out.holding = BlockChunk{c_row0, c_col0, r, c, 0, r * c};
  out.data.assign(c_leaf.data(), c_leaf.data() + c_leaf.size());

  // Unwind: sum partial C's across the halves of every K-split, deepest
  // frame first, each pair splitting the (structurally identical) holding.
  ctx.set_phase(kPhaseCarmaCombine);
  for (auto frame = combines.rbegin(); frame != combines.rend(); ++frame) {
    const i64 half = static_cast<i64>(out.data.size()) / 2;
    CAMB_CHECK(2 * half == static_cast<i64>(out.data.size()));
    std::vector<T> outgoing(
        out.data.begin() + (frame->lower ? half : 0),
        out.data.begin() + (frame->lower ? 2 * half : half));
    frame->comm.send(frame->partner_idx, frame->tag,
                     Buffer::adopt(std::move(outgoing)));
    const std::vector<T> incoming =
        std::move(frame->comm.recv(frame->partner_idx, frame->tag))
            .take_as<T>();
    CAMB_CHECK(static_cast<i64>(incoming.size()) == half);
    const i64 keep_off = frame->lower ? 0 : half;
    for (i64 j = 0; j < half; ++j) {
      out.data[static_cast<std::size_t>(keep_off + j)] +=
          incoming[static_cast<std::size_t>(j)];
    }
    if (frame->lower) {
      out.data.resize(static_cast<std::size_t>(half));
    } else {
      out.data.erase(out.data.begin(), out.data.begin() + half);
      out.holding.flat_start += half;
    }
    out.holding.flat_size = half;
  }
  // The lower member's kept range starts where it started; adjust size only.
  return out;
}

#define CAMB_INSTANTIATE(T) \
  template CarmaRankOutputT<T> carma_rank<T>(RankCtx&, const CarmaConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
CarmaRankOutputT<T> carma_ckpt_rank(ckpt::SessionT<T>& session,
                                    const CarmaConfig& cfg) {
  RankCtx& ctx = session.ctx();
  const i64 P = i64{1} << cfg.levels;
  CAMB_CHECK_MSG(P == session.nprocs(), "machine size must be 2^levels");
  CAMB_CHECK_MSG(carma_supported(cfg.shape, cfg.levels),
                 "shape does not satisfy CARMA's divisibility requirements");
  i64 r = cfg.shape.n1, k = cfg.shape.n2, c = cfg.shape.n3;
  i64 c_row0 = 0, c_col0 = 0;
  int g_lo = 0;
  int g_size = static_cast<int>(P);
  const int me = session.rank();
  const i64 t0 = session.resume_step();

  std::vector<T> a, b;
  if (session.restored()) {
    const SnapshotT<T>& snap = session.snapshot();
    CAMB_CHECK(snap.bufs.size() == 2);
    a = snap.bufs[0];
    b = snap.bufs[1];
  } else {
    a = fill_chunk_indexed<T>(BlockChunk{0, 0, r, k, me * (r / P) * k,
                                         (r / P) * k});
    b = fill_chunk_indexed<T>(BlockChunk{0, 0, k, c, me * (k / P) * c,
                                         (k / P) * c});
  }

  std::vector<CombineFrame> combines;
  for (int level = 0; level < cfg.levels; ++level) {
    const int s = g_size / 2;
    const int pidx = me - g_lo;
    const bool lower = pidx < s;
    const char split = choose_split(r, k, c);
    // Levels below the resume step replay only the split geometry and the
    // comm leases (pure local bookkeeping): the data is already in `a`/`b`,
    // but the unwind still needs every K-split's combine frame.
    const bool live = level >= t0;
    if (live) ctx.set_phase(kPhaseCarmaSplit);
    std::vector<int> members(static_cast<std::size_t>(g_size));
    for (int m = 0; m < g_size; ++m) {
      members[static_cast<std::size_t>(m)] = g_lo + m;
    }
    coll::Comm level_comm = session.comm(members, /*tag_blocks=*/2);
    const int tags = level_comm.take_tag_block();
    if (split == 'M') {
      if (live) b = replicate_exchange(level_comm, b, tags);
      r /= 2;
      if (!lower) c_row0 += r;
    } else if (split == 'K') {
      if (live) a = split_columns_exchange(level_comm, a, r / g_size, k, tags);
      k /= 2;
      const int combine_tags = level_comm.take_tag_block();
      combines.push_back(CombineFrame{std::move(level_comm), combine_tags,
                                      lower ? pidx + s : pidx - s, lower});
    } else {  // 'N'
      if (live) {
        a = replicate_exchange(level_comm, a, tags);
        b = split_columns_exchange(level_comm, b, k / g_size, c, tags + 1);
      }
      c /= 2;
      if (!lower) c_col0 += c;
    }
    if (!lower) g_lo += s;
    g_size = s;
    if (live) {
      session.boundary(level + 1, [&] {
        SnapshotT<T> snap;
        snap.bufs = {a, b};
        return snap;
      });
    }
  }

  ctx.set_phase(kPhaseCarmaGemm);
  Matrix<T> a_leaf(r, k), b_leaf(k, c);
  CAMB_CHECK(static_cast<i64>(a.size()) == r * k);
  CAMB_CHECK(static_cast<i64>(b.size()) == k * c);
  std::copy(a.begin(), a.end(), a_leaf.data());
  std::copy(b.begin(), b.end(), b_leaf.data());
  const Matrix<T> c_leaf = gemm(a_leaf, b_leaf);

  CarmaRankOutputT<T> out;
  out.holding = BlockChunk{c_row0, c_col0, r, c, 0, r * c};
  out.data.assign(c_leaf.data(), c_leaf.data() + c_leaf.size());

  ctx.set_phase(kPhaseCarmaCombine);
  for (auto frame = combines.rbegin(); frame != combines.rend(); ++frame) {
    const i64 half = static_cast<i64>(out.data.size()) / 2;
    CAMB_CHECK(2 * half == static_cast<i64>(out.data.size()));
    std::vector<T> outgoing(
        out.data.begin() + (frame->lower ? half : 0),
        out.data.begin() + (frame->lower ? 2 * half : half));
    frame->comm.send(frame->partner_idx, frame->tag,
                     Buffer::adopt(std::move(outgoing)));
    const std::vector<T> incoming =
        std::move(frame->comm.recv(frame->partner_idx, frame->tag))
            .template take_as<T>();
    CAMB_CHECK(static_cast<i64>(incoming.size()) == half);
    const i64 keep_off = frame->lower ? 0 : half;
    for (i64 j = 0; j < half; ++j) {
      out.data[static_cast<std::size_t>(keep_off + j)] +=
          incoming[static_cast<std::size_t>(j)];
    }
    if (frame->lower) {
      out.data.resize(static_cast<std::size_t>(half));
    } else {
      out.data.erase(out.data.begin(), out.data.begin() + half);
      out.holding.flat_start += half;
    }
    out.holding.flat_size = half;
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                        \
  template CarmaRankOutputT<T> carma_ckpt_rank<T>( \
      ckpt::SessionT<T>&, const CarmaConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 carma_ckpt_steps(const CarmaConfig& cfg) { return cfg.levels; }

i64 carma_ckpt_snapshot_words(const CarmaConfig& cfg, int logical, i64 step) {
  (void)logical;  // CARMA's per-rank holdings are rank-independent in size
  i64 r = cfg.shape.n1, k = cfg.shape.n2, c = cfg.shape.n3;
  i64 g = i64{1} << cfg.levels;
  for (i64 level = 0; level < step; ++level) {
    const char split = choose_split(r, k, c);
    if (split == 'M') r /= 2;
    else if (split == 'K') k /= 2;
    else c /= 2;
    g /= 2;
  }
  return snapshot_wire_words({(r / g) * k, (k / g) * c});
}

std::vector<i64> carma_predicted_recv_words(const CarmaConfig& cfg) {
  const i64 P = i64{1} << cfg.levels;
  CAMB_CHECK_MSG(carma_supported(cfg.shape, cfg.levels),
                 "shape does not satisfy CARMA's divisibility requirements");
  std::vector<i64> words(static_cast<std::size_t>(P), 0);
  for (i64 rank = 0; rank < P; ++rank) {
    i64 r = cfg.shape.n1, k = cfg.shape.n2, c = cfg.shape.n3;
    int g_lo = 0;
    int g_size = static_cast<int>(P);
    const int me = static_cast<int>(rank);
    int k_splits = 0;
    i64 total = 0;
    for (int level = 0; level < cfg.levels; ++level) {
      const int s = g_size / 2;
      const int pidx = me - g_lo;
      const bool lower = pidx < s;
      const int i = lower ? pidx : pidx - s;
      const char split = choose_split(r, k, c);
      auto add_pairwise_recv = [&](i64 words_per_message) {
        if (g_lo + 2 * i != me) total += words_per_message;
        if (g_lo + 2 * i + 1 != me) total += words_per_message;
      };
      if (split == 'M') {
        add_pairwise_recv((k / g_size) * c);  // B replication chunks
        r /= 2;
      } else if (split == 'K') {
        add_pairwise_recv((r / g_size) * (k / 2));  // A column halves
        k /= 2;
        ++k_splits;
      } else {
        add_pairwise_recv((r / g_size) * k);        // A replication chunks
        add_pairwise_recv((k / g_size) * (c / 2));  // B column halves
        c /= 2;
      }
      if (!lower) g_lo += s;
      g_size = s;
    }
    // Combines: holding halves each time, starting from the leaf C size.
    i64 holding = r * c;
    for (int j = 0; j < k_splits; ++j) {
      holding /= 2;
      total += holding;  // receive the partner's half (never self)
    }
    words[static_cast<std::size_t>(rank)] = total;
  }
  return words;
}

}  // namespace camb::mm
