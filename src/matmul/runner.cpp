#include "matmul/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <type_traits>

#include "collectives/shrink.hpp"
#include "matmul/freivalds.hpp"
#include "util/error.hpp"

namespace camb::mm {

namespace {

/// Shapes above this flop count use Freivalds under VerifyMode::kAuto.
constexpr i64 kReferenceFlopLimit = 1 << 26;  // ~67M multiply-adds

/// Run the callable with the scalar type selected by the options' dtype.
/// The one runtime → compile-time bridge: everything below it is templated.
template <typename F>
RunReport dispatch_dtype(DType d, F&& f) {
  switch (d) {
    case DType::kF64:
      return f(std::type_identity<double>{});
    case DType::kF32:
      return f(std::type_identity<float>{});
    case DType::kI64:
      return f(std::type_identity<i64>{});
    case DType::kKahan:
      return f(std::type_identity<kahan>{});
  }
  throw Error("unreachable dtype");
}

/// Machine construction + fault wiring for one run: the rank RNG seed, the
/// fault seed, and the crash seed all derive from the options' master seed
/// (independent domains), so a run is replayable from that one logged value.
void configure_machine(camb::Machine& machine, const RunOptions& opts) {
  machine.set_scheduler(opts.scheduler);
  if (opts.perturb.enabled() || opts.sdc.message_sdc()) {
    camb::FaultProfile profile = opts.perturb.enabled()
                                     ? fault_profile_from_spec(opts.perturb.profile)
                                     : camb::FaultProfile{};
    if (opts.sdc.message_sdc()) {
      // One CLI rate arms all three per-copy SDC events; a profile that
      // already injects them keeps the stronger setting.
      profile.drop_prob = std::max(profile.drop_prob, opts.sdc.message_rate);
      profile.flip_prob = std::max(profile.flip_prob, opts.sdc.message_rate);
      profile.dup_prob = std::max(profile.dup_prob, opts.sdc.message_rate);
    }
    machine.enable_faults(profile, opts.perturb.fault_seed(),
                          opts.sdc.sdc_seed(opts.perturb.master_seed));
  }
  if (opts.sdc.reliable) {
    machine.enable_reliable_transport(
        opts.sdc.sdc_seed(opts.perturb.master_seed));
  }
  if (opts.crash.enabled()) {
    machine.enable_crashes(opts.crash.ranks,
                           opts.crash.crash_seed(opts.perturb.master_seed),
                           opts.crash.max_send_position);
  }
  if (opts.collect_trace) machine.enable_trace();
}

/// Measurement half shared by every run_*: critical-path counters, phase
/// breakdown, simulated time, peak memory, the dtype annotation, and the
/// fault record.
RunReport report_from_machine(camb::Machine& machine, const RunOptions& opts) {
  const camb::CommStats& stats = machine.stats();
  RunReport report;
  report.dtype = opts.dtype;
  report.element_bytes = dtype_elem_bytes(opts.dtype);
  report.measured_critical_recv = stats.critical_path_received_words();
  report.measured_critical_sent = stats.critical_path_sent_words();
  report.total_network_words = stats.total_words_sent();
  for (int r = 0; r < stats.nprocs(); ++r) {
    const auto& totals = stats.rank_total(r);
    report.rank_recv_words.push_back(totals.words_received());
    report.rank_sent_words.push_back(totals.words_sent());
    report.rank_messages.push_back(totals.messages_sent);
    report.measured_critical_messages =
        std::max(report.measured_critical_messages, totals.messages_sent);
  }
  for (const auto& phase : stats.phases()) {
    report.phase_recv[phase] = stats.phase_critical_path_received_words(phase);
  }
  report.simulated_time = machine.critical_path_time();
  report.measured_peak_memory_words = machine.max_peak_memory_words();
  report.max_abs_error = std::numeric_limits<double>::quiet_NaN();
  report.faults.master_seed = opts.perturb.master_seed;
  report.faults.profile = opts.perturb.profile;
  if (camb::FaultPlan* plan = machine.fault_plan()) {
    const camb::FaultCounts counts = plan->counts();
    report.faults.enabled = true;
    report.faults.fault_seed = plan->seed();
    report.faults.injected_delays = counts.delayed_messages;
    report.faults.injected_failures = counts.failed_sends;
    report.faults.total_retries = counts.total_retries;
    report.faults.reordered_messages = counts.reordered_messages;
    report.faults.stragglers = counts.stragglers;
  }
  report.corruption.enabled = opts.sdc.enabled();
  if (opts.sdc.enabled()) {
    report.corruption.sdc_seed = opts.sdc.sdc_seed(opts.perturb.master_seed);
  }
  if (camb::FaultPlan* plan = machine.fault_plan()) {
    const camb::FaultCounts counts = plan->counts();
    report.corruption.sdc_seed = plan->sdc_seed();
    report.corruption.injected_drops = counts.dropped_copies;
    report.corruption.injected_flips = counts.corrupt_copies;
    report.corruption.injected_dups = counts.duplicated_messages;
  }
  const camb::TransportCounters transport = stats.transport_total();
  report.corruption.caught_at_transport = transport.corrupt_discards;
  report.corruption.retransmits = transport.retransmits;
  report.corruption.retransmitted_words =
      static_cast<double>(transport.retransmitted_bytes) / 8.0;
  report.corruption.acks = transport.acks;
  report.corruption.nacks = transport.nacks;
  report.corruption.dup_discards = transport.dup_discards;
  report.corruption.transport_debris =
      static_cast<i64>(machine.transport_debris().size());
  if (camb::Trace* trace = machine.trace()) {
    report.trace_events = trace->events();
  }
  if (machine.crash_plan() != nullptr) {
    report.recovery.enabled = true;
    report.recovery.crash_seed =
        opts.crash.crash_seed(opts.perturb.master_seed);
    report.recovery.planned = opts.crash.ranks;
  }
  const camb::CrashOutcome& outcome = machine.crash_outcome();
  report.recovery.crashed = outcome.crashed;
  report.recovery.abandoned = outcome.abandoned;
  report.recovery.detection_events =
      static_cast<i64>(outcome.detections.size());
  for (const camb::DetectionEvent& d : outcome.detections) {
    if (report.recovery.first_detection_clock == 0 ||
        d.clock < report.recovery.first_detection_clock) {
      report.recovery.first_detection_clock = d.clock;
    }
    report.recovery.last_detection_clock =
        std::max(report.recovery.last_detection_clock, d.clock);
  }
  for (const camb::UndeliveredMessage& d : outcome.debris) {
    ++report.recovery.debris_envelopes;
    report.recovery.debris_words += d.words();
  }
  for (int r = 0; r < stats.nprocs(); ++r) {
    report.recovery.heartbeat_probes +=
        stats.rank_phase(r, "heartbeat").messages_sent;
    const double rec = stats.rank_phase(r, "abft_shrink").words_received() +
                       stats.rank_phase(r, "abft_recover").words_received() +
                       stats.rank_phase(r, "heartbeat").words_received();
    report.recovery.recovery_recv_words =
        std::max(report.recovery.recovery_recv_words, rec);
    report.recovery.encode_recv_words =
        std::max(report.recovery.encode_recv_words,
                 stats.rank_phase(r, "abft_encode").words_received());
  }
  return report;
}

/// FNV-1a over the exact bit pattern of every entry, row-major, sizeof(T)
/// bytes per element: the "output bits" fingerprint pinned by the
/// equivalence sweep.  For double this hashes the same 8 bytes per entry as
/// the pre-dtype harness, so committed f64 golden hashes are unchanged.
template <typename T>
std::uint64_t hash_matrix(const Matrix<T>& m) {
  std::uint64_t h = 1469598103934665603ull;
  unsigned char bytes[sizeof(T)];
  for (i64 i = 0; i < m.rows(); ++i) {
    for (i64 j = 0; j < m.cols(); ++j) {
      const T v = m(i, j);
      std::memcpy(bytes, &v, sizeof(T));
      for (std::size_t b = 0; b < sizeof(T); ++b) {
        h ^= bytes[b];
        h *= 1099511628211ull;
      }
    }
  }
  return h;
}

/// Place a flat chunk of a row-major block into the global matrix.
template <typename T>
void place_chunk(Matrix<T>& global, const BlockChunk& chunk,
                 const std::vector<T>& data) {
  CAMB_CHECK(static_cast<i64>(data.size()) == chunk.flat_size);
  for (i64 f = 0; f < chunk.flat_size; ++f) {
    const i64 flat = chunk.flat_start + f;
    global(chunk.row0 + flat / chunk.cols, chunk.col0 + flat % chunk.cols) =
        data[static_cast<std::size_t>(f)];
  }
}

RunOptions options_from(bool verify) {
  return RunOptions::verified(verify ? VerifyMode::kReference
                                     : VerifyMode::kNone);
}

}  // namespace

namespace {

void list_ranks(std::ostringstream& out, const std::vector<int>& ranks) {
  out << "[";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) out << ",";
    out << ranks[i];
  }
  out << "]";
}

}  // namespace

std::string RecoveryReport::summary() const {
  std::ostringstream out;
  out << "recovery{abft=" << (abft ? 1 : 0) << " crash_seed=" << crash_seed
      << " planned=";
  list_ranks(out, planned);
  out << " crashed=";
  list_ranks(out, crashed);
  out << " abandoned=";
  list_ranks(out, abandoned);
  out << " detections=" << detection_events << " detect_clock=["
      << first_detection_clock << "," << last_detection_clock
      << "] heartbeats=" << heartbeat_probes
      << " recovery_recv=" << recovery_recv_words
      << " encode_recv=" << encode_recv_words
      << " debris=" << debris_envelopes << "env/" << debris_words << "w"
      << " overhead_ratio=" << overhead_ratio << "}";
  return out.str();
}

std::string ResilienceReport::summary() const {
  std::ostringstream out;
  out << "resilience{interval=" << interval << " stride=" << buddy_stride
      << " spares=" << spares << " rounds=" << rounds
      << " final_epoch=" << final_epoch << " failed=";
  list_ranks(out, failed);
  out << " fresh=";
  list_ranks(out, fresh_logicals);
  out << " ckpt_recv=" << checkpoint_recv_words
      << " flood_recv=" << flood_recv_words
      << " restream_recv=" << restream_recv_words << "}";
  return out.str();
}

std::string FaultReport::summary() const {
  std::ostringstream out;
  out << "perturb{profile=" << profile << " master_seed=" << master_seed
      << " fault_seed=" << fault_seed << " delays=" << injected_delays
      << " failed_sends=" << injected_failures << " retries=" << total_retries
      << " reordered=" << reordered_messages << " stragglers=" << stragglers
      << "}";
  return out.str();
}

std::string CorruptionReport::summary() const {
  std::ostringstream out;
  out << "sdc{seed=" << sdc_seed << " injected=" << injected_drops << "drop/"
      << injected_flips << "flip/" << injected_dups << "dup/"
      << injected_mem_flips << "mem caught=" << caught_at_transport
      << " retransmits=" << retransmits << "(" << retransmitted_words
      << "w) acks=" << acks << " nacks=" << nacks
      << " dup_discards=" << dup_discards << " debris=" << transport_debris
      << " abft=" << detected_by_checksums << "det/" << corrected_by_abft
      << "fix escaped=" << escaped << "}";
  return out.str();
}

std::string ElasticReport::summary() const {
  std::ostringstream out;
  out << "elastic{rounds=" << rounds << " failed=";
  list_ranks(out, failed);
  out << " survivors=" << survivors << " active=" << active_ranks << " grid="
      << grid.p1 << "x" << grid.p2 << "x" << grid.p3
      << " migration_recv=" << migration_recv_words
      << " shrink_recv=" << shrink_recv_words
      << " exec_recv=" << exec_recv_words
      << " bound_at_pprime=" << bound_words_at_pprime
      << " overhead_vs_bound=" << overhead_vs_bound << "}";
  return out.str();
}

namespace {

template <typename T>
void fill_inputs(const Shape& shape, bool integer_inputs, Matrix<T>& a,
                 Matrix<T>& b) {
  a = Matrix<T>(shape.n1, shape.n2);
  b = Matrix<T>(shape.n2, shape.n3);
  if (integer_inputs) {
    a.fill_indexed_int(0, 0);
    b.fill_indexed_int(0, 0);
  } else {
    a.fill_indexed(0, 0);
    b.fill_indexed(0, 0);
  }
}

template <typename T>
double check_result_pattern(const Shape& shape, const Matrix<T>& assembled,
                            VerifyMode mode, bool integer_inputs) {
  if (mode == VerifyMode::kAuto) {
    mode = shape.flops() <= kReferenceFlopLimit ? VerifyMode::kReference
                                                : VerifyMode::kFreivalds;
  }
  switch (mode) {
    case VerifyMode::kNone:
      return std::numeric_limits<double>::quiet_NaN();
    case VerifyMode::kReference: {
      Matrix<T> a, b;
      fill_inputs<T>(shape, integer_inputs, a, b);
      return assembled.max_abs_diff(camb::matmul_reference(a, b));
    }
    case VerifyMode::kFreivalds: {
      Matrix<T> a, b;
      fill_inputs<T>(shape, integer_inputs, a, b);
      Rng rng(0xF4E1);
      return freivalds_residual<T>(a, b, assembled, /*trials=*/24, rng);
    }
    case VerifyMode::kAuto:
      break;
  }
  throw Error("unreachable verify mode");
}

/// The inputs the ABFT algorithms fill: exact scalars use the plain indexed
/// pattern (native integer arithmetic never rounds), rounded scalars the
/// integer-valued pattern (exactness through smallness) — matching
/// abft_fill in matmul/abft.cpp.
template <typename T>
constexpr bool abft_integer_inputs() {
  return !ScalarTraits<T>::exact;
}

}  // namespace

MatrixD reference_result(const Shape& shape) {
  MatrixD a(shape.n1, shape.n2), b(shape.n2, shape.n3);
  a.fill_indexed(0, 0);
  b.fill_indexed(0, 0);
  return camb::matmul_reference(a, b);
}

MatrixD reference_result_int(const Shape& shape) {
  MatrixD a(shape.n1, shape.n2), b(shape.n2, shape.n3);
  a.fill_indexed_int(0, 0);
  b.fill_indexed_int(0, 0);
  return camb::matmul_reference(a, b);
}

double check_result(const Shape& shape, const MatrixD& assembled,
                    VerifyMode mode) {
  return check_result_pattern<double>(shape, assembled, mode,
                                      /*integer_inputs=*/false);
}

namespace {

template <typename T>
void place_block(Matrix<T>& global, const Block2DOutputT<T>& out) {
  for (i64 i = 0; i < out.block.rows(); ++i) {
    for (i64 j = 0; j < out.block.cols(); ++j) {
      global(out.row0 + i, out.col0 + j) = out.block(i, j);
    }
  }
}

bool contains(const std::vector<int>& ranks, int r) {
  return std::find(ranks.begin(), ranks.end(), r) != ranks.end();
}

/// Commit tax of a clean checkpointed run for logical rank L: at each
/// committed epoch, L receives its ward's snapshot wire.  Zero when the
/// buddy ring degenerates to self (stride ≡ 0 mod P): self-sends are free.
i64 ckpt_commit_tax(int P, const CheckpointConfig& ck, i64 steps, int logical,
                    const std::function<i64(int, i64)>& snapshot_words) {
  const int stride = ((ck.buddy_stride % P) + P) % P;
  if (stride == 0) return 0;
  const int ward = camb::ckpt_ward(logical, P, ck.buddy_stride);
  i64 tax = 0;
  for (i64 step = ck.interval; step <= steps; step += ck.interval) {
    tax += snapshot_words(ward, step);
  }
  return tax;
}

/// Resilience record + prediction for a checkpointed run.  Clean runs have
/// an exact closed form (per-logical base words + commit tax + agreement
/// flood, with idle spares paying only the flood); once a crash fires the
/// word count depends on where in the schedule the rank died, so the
/// prediction is withheld (−1) and the tests pin bit-identity and the
/// per-phase recovery words instead.
void fill_resilience_report(RunReport& report, camb::Machine& machine,
                            const RunOptions& opts,
                            const std::vector<ckpt::RunLog>& logs, int P,
                            i64 steps,
                            const std::function<i64(int)>& base_pred,
                            const std::function<i64(int, i64)>& snapshot_words) {
  const CheckpointConfig& ck = opts.checkpoint;
  const int T = P + ck.spares;
  ResilienceReport& res = report.resilience;
  res.enabled = true;
  res.interval = ck.interval;
  res.buddy_stride = ck.buddy_stride;
  res.spares = ck.spares;
  // The longest log belongs to a rank that saw every round through.
  for (const ckpt::RunLog& log : logs) {
    if (log.size() > res.log.size()) res.log = log;
  }
  res.rounds = static_cast<int>(res.log.size());
  for (const ckpt::RoundRecord& rec : res.log) {
    // The DONE record carries no epoch; the agreed rollback target lives in
    // the rollback records, and the last one is what the winning execution
    // round resumed from.
    if (!rec.done) res.final_epoch = rec.epoch;
    for (int f : rec.failed) {
      if (!contains(res.failed, f)) res.failed.push_back(f);
    }
    for (int l : rec.fresh) {
      if (!contains(res.fresh_logicals, l)) res.fresh_logicals.push_back(l);
    }
  }
  const camb::CommStats& stats = machine.stats();
  for (int r = 0; r < stats.nprocs(); ++r) {
    res.checkpoint_recv_words =
        std::max(res.checkpoint_recv_words,
                 stats.rank_phase(r, ckpt::kPhaseCheckpoint).words_received());
    res.flood_recv_words =
        std::max(res.flood_recv_words,
                 stats.rank_phase(r, ckpt::kPhaseCkptShrink).words_received());
    res.restream_recv_words =
        std::max(res.restream_recv_words,
                 stats.rank_phase(r, ckpt::kPhaseCkptRollback).words_received());
  }
  if (machine.crash_outcome().any_crashed()) {
    report.predicted_critical_recv = -1;
  } else {
    // Split prediction: the algorithm + commit-tax words are dtype-scaled
    // data (elements), while the agreement flood is fixed 8-byte control
    // traffic.  The flood is uniform across every physical rank (idle
    // spares included), so the split commutes with the max.
    i64 worst = 0;
    for (int L = 0; L < P; ++L) {
      worst = std::max(
          worst, base_pred(L) + ckpt_commit_tax(P, ck, steps, L, snapshot_words));
    }
    report.predicted_critical_recv = worst;
    report.predicted_control_words +=
        ckpt::ckpt_flood_recv_words_exact(T, ck.spares);
  }
}

/// Execute a checkpointed run: P + spares physical ranks each drive the
/// rollback round loop around `body`; the per-logical outputs are collected
/// under a mutex (re-executions overwrite bit-identical values).
template <typename T, typename Output>
std::vector<Output> run_checkpointed(
    camb::Machine& machine, int P, const RunOptions& opts,
    std::vector<ckpt::RunLog>& logs,
    const std::function<Output(ckpt::SessionT<T>&)>& body) {
  const CheckpointConfig& ck = opts.checkpoint;
  ckpt::ResilientConfig rcfg;
  rcfg.nprocs = P;
  rcfg.spares = ck.spares;
  rcfg.interval = ck.interval;
  rcfg.buddy_stride = ck.buddy_stride;
  std::vector<std::optional<Output>> results(static_cast<std::size_t>(P));
  std::mutex results_mu;
  logs.assign(static_cast<std::size_t>(P + ck.spares), {});
  machine.run([&](camb::RankCtx& ctx) {
    ckpt::run_resilient<T, Output>(ctx, rcfg, body, &results, &results_mu,
                                   &logs[static_cast<std::size_t>(ctx.rank())]);
  });
  std::vector<Output> outputs;
  outputs.reserve(static_cast<std::size_t>(P));
  for (int L = 0; L < P; ++L) {
    CAMB_CHECK_MSG(results[static_cast<std::size_t>(L)].has_value(),
                   "checkpointed run ended without an output for a logical "
                   "rank");
    outputs.push_back(std::move(*results[static_cast<std::size_t>(L)]));
  }
  return outputs;
}

/// The whole checkpointed-run recipe minus output assembly: machine with
/// spares, rollback loop, measurement, resilience record, prediction.
template <typename T, typename Output>
RunReport run_ckpt_common(int P, const RunOptions& opts, double bound,
                          i64 steps,
                          const std::function<i64(int)>& base_pred,
                          const std::function<i64(int, i64)>& snap_words,
                          const std::function<Output(ckpt::SessionT<T>&)>& body,
                          std::vector<Output>& outputs) {
  camb::Machine machine(P + opts.checkpoint.spares,
                        opts.perturb.machine_seed());
  configure_machine(machine, opts);
  std::vector<ckpt::RunLog> logs;
  outputs = run_checkpointed<T, Output>(machine, P, opts, logs, body);
  RunReport report = report_from_machine(machine, opts);
  fill_resilience_report(report, machine, opts, logs, P, steps, base_pred,
                         snap_words);
  report.lower_bound_words = bound;
  return report;
}

/// Memory SDC has no transport to heal it — only the ABFT checksum
/// correction can.  Algorithms without the encoding reject the request up
/// front instead of returning a silently wrong answer.
void reject_mem_sdc(const RunOptions& opts, const char* algo) {
  if (opts.sdc.mem_rate > 0) {
    throw Error(std::string("memory-SDC injection (--sdc-mem-rate) requires a "
                            "checksum-augmented (ABFT) algorithm; ") +
                algo + " has no correction path");
  }
}

/// Flip one low bit of the integer value at a seeded position of `data`
/// when rank `rank`'s memory-SDC coin lands.  The draw chain is a pure
/// function of (mem_seed, rank), so a corruption scenario replays from the
/// logged seed alone.  ABFT tiles are integer-valued in every dtype (small
/// enough to be exact in f32 and represented natively in i64), and the flip
/// keeps them integer-valued, so every later checksum subtraction stays
/// exact — which is what makes the repair bit-exact.
template <typename T>
bool maybe_flip_entry(std::uint64_t mem_seed, int rank, double rate,
                      T* data, i64 size) {
  Rng rng(mem_seed, static_cast<std::uint64_t>(rank));
  if (rng.uniform() >= rate || size == 0) return false;
  const i64 idx = static_cast<i64>(rng.below(static_cast<std::uint64_t>(size)));
  const int bit = static_cast<int>(rng.below(16));
  const i64 value =
      static_cast<i64>(std::llround(ScalarTraits<T>::to_double(data[idx])));
  const i64 flipped = value ^ (i64{1} << bit);
  if constexpr (std::is_same_v<T, i64>) {
    data[idx] = flipped;
  } else {
    data[idx] = static_cast<T>(static_cast<double>(flipped));
  }
  return true;
}

/// Fold a correction pass's outcome into the report and the per-rank
/// correction counters.
void record_correction(RunReport& report, camb::Machine& machine,
                       const AbftCorrection& corr, i64 mem_flips) {
  report.corruption.injected_mem_flips = mem_flips;
  report.corruption.detected_by_checksums = corr.detected;
  report.corruption.corrected_by_abft = corr.corrected;
  report.corruption.escaped = corr.uncorrected;
  for (int r : corr.corrected_ranks) {
    machine.stats().transport_mut(r).corrections += 1;
  }
}

template <typename T>
void verify_block2d(const Shape& shape,
                    const std::vector<Block2DOutputT<T>>& outs,
                    const RunOptions& opts, RunReport& report,
                    bool integer_inputs = false) {
  if (opts.verify == VerifyMode::kNone) return;
  Matrix<T> c(shape.n1, shape.n3);
  for (const auto& out : outs) place_block<T>(c, out);
  report.output_hash = hash_matrix<T>(c);
  report.max_abs_error =
      check_result_pattern<T>(shape, c, opts.verify, integer_inputs);
  report.verified = true;
}

/// The Theorem 3 bound for (shape, P), scaled into the run's words: the
/// theory counts elements, the machine counts 8-byte words.
double lower_bound_for(const Shape& shape, i64 nprocs,
                       const RunOptions& opts) {
  return camb::core::memory_independent_bound(shape,
                                              static_cast<double>(nprocs))
             .words *
         dtype_width_words(opts.dtype);
}

template <typename T>
RunReport run_grid3d_t(const Grid3dConfig& cfg, const RunOptions& opts) {
  reject_mem_sdc(opts, "grid3d");
  const i64 P = cfg.grid.total();
  const double bound = lower_bound_for(cfg.shape, P, opts);
  if (opts.checkpoint.enabled()) {
    std::vector<Grid3dRankOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, Grid3dRankOutputT<T>>(
        static_cast<int>(P), opts, bound, grid3d_ckpt_steps(cfg),
        [&](int L) { return grid3d_predicted_recv_words(cfg, L); },
        [&](int L, i64 s) { return grid3d_ckpt_snapshot_words(cfg, L, s); },
        [&](ckpt::SessionT<T>& s) { return grid3d_ckpt_rank<T>(s, cfg); },
        outputs);
    if (opts.verify != VerifyMode::kNone) {
      Matrix<T> c(cfg.shape.n1, cfg.shape.n3);
      for (const auto& out : outputs) place_chunk<T>(c, out.c_chunk, out.c_data);
      report.output_hash = hash_matrix<T>(c);
      report.max_abs_error = check_result_pattern<T>(cfg.shape, c, opts.verify,
                                                     cfg.integer_inputs);
      report.verified = true;
    }
    return report;
  }
  camb::Machine machine(static_cast<int>(P), opts.perturb.machine_seed());
  configure_machine(machine, opts);
  std::vector<Grid3dRankOutputT<T>> outputs(static_cast<std::size_t>(P));
  machine.run([&](camb::RankCtx& ctx) {
    outputs[static_cast<std::size_t>(ctx.rank())] = grid3d_rank<T>(ctx, cfg);
  });
  RunReport report = report_from_machine(machine, opts);
  report.predicted_critical_recv = grid3d_predicted_critical_recv_words(cfg);
  report.lower_bound_words = bound;
  if (opts.verify != VerifyMode::kNone) {
    Matrix<T> c(cfg.shape.n1, cfg.shape.n3);
    for (const auto& out : outputs) place_chunk<T>(c, out.c_chunk, out.c_data);
    report.output_hash = hash_matrix<T>(c);
    report.max_abs_error = check_result_pattern<T>(cfg.shape, c, opts.verify,
                                                   cfg.integer_inputs);
    report.verified = true;
  }
  return report;
}

template <typename T>
RunReport run_grid3d_staged_t(const Grid3dStagedConfig& cfg,
                              const RunOptions& opts) {
  reject_mem_sdc(opts, "grid3d_staged");
  const i64 P = cfg.grid.total();
  const double bound = lower_bound_for(cfg.shape, P, opts);
  if (opts.checkpoint.enabled()) {
    std::vector<Grid3dStagedRankOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, Grid3dStagedRankOutputT<T>>(
        static_cast<int>(P), opts, bound, grid3d_staged_ckpt_steps(cfg),
        [&](int L) { return grid3d_staged_predicted_recv_words(cfg, L); },
        [&](int L, i64 s) {
          return grid3d_staged_ckpt_snapshot_words(cfg, L, s);
        },
        [&](ckpt::SessionT<T>& s) {
          return grid3d_staged_ckpt_rank<T>(s, cfg);
        },
        outputs);
    if (opts.verify != VerifyMode::kNone) {
      Matrix<T> c(cfg.shape.n1, cfg.shape.n3);
      for (const auto& out : outputs) {
        for (std::size_t s = 0; s < out.c_chunks.size(); ++s) {
          place_chunk<T>(c, out.c_chunks[s], out.c_data[s]);
        }
      }
      report.output_hash = hash_matrix<T>(c);
      report.max_abs_error =
          check_result_pattern<T>(cfg.shape, c, opts.verify, false);
      report.verified = true;
    }
    return report;
  }
  camb::Machine machine(static_cast<int>(P), opts.perturb.machine_seed());
  configure_machine(machine, opts);
  std::vector<Grid3dStagedRankOutputT<T>> outputs(
      static_cast<std::size_t>(P));
  machine.run([&](camb::RankCtx& ctx) {
    outputs[static_cast<std::size_t>(ctx.rank())] =
        grid3d_staged_rank<T>(ctx, cfg);
  });
  RunReport report = report_from_machine(machine, opts);
  i64 predicted = 0;
  for (i64 r = 0; r < P; ++r) {
    predicted = std::max(predicted, grid3d_staged_predicted_recv_words(
                                        cfg, static_cast<int>(r)));
  }
  report.predicted_critical_recv = predicted;
  report.lower_bound_words = bound;
  if (opts.verify != VerifyMode::kNone) {
    Matrix<T> c(cfg.shape.n1, cfg.shape.n3);
    for (const auto& out : outputs) {
      for (std::size_t s = 0; s < out.c_chunks.size(); ++s) {
        place_chunk<T>(c, out.c_chunks[s], out.c_data[s]);
      }
    }
    report.output_hash = hash_matrix<T>(c);
    report.max_abs_error =
        check_result_pattern<T>(cfg.shape, c, opts.verify, false);
    report.verified = true;
  }
  return report;
}

template <typename T>
RunReport run_grid3d_agarwal_t(const Grid3dAgarwalConfig& cfg,
                               const RunOptions& opts) {
  reject_mem_sdc(opts, "grid3d_agarwal");
  const i64 P = cfg.grid.total();
  const double bound = lower_bound_for(cfg.shape, P, opts);
  if (opts.checkpoint.enabled()) {
    std::vector<Grid3dRankOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, Grid3dRankOutputT<T>>(
        static_cast<int>(P), opts, bound, grid3d_agarwal_ckpt_steps(cfg),
        [&](int L) { return grid3d_agarwal_predicted_recv_words(cfg, L); },
        [&](int L, i64 s) {
          return grid3d_agarwal_ckpt_snapshot_words(cfg, L, s);
        },
        [&](ckpt::SessionT<T>& s) {
          return grid3d_agarwal_ckpt_rank<T>(s, cfg);
        },
        outputs);
    if (opts.verify != VerifyMode::kNone) {
      Matrix<T> c(cfg.shape.n1, cfg.shape.n3);
      for (const auto& out : outputs) place_chunk<T>(c, out.c_chunk, out.c_data);
      report.output_hash = hash_matrix<T>(c);
      report.max_abs_error =
          check_result_pattern<T>(cfg.shape, c, opts.verify, false);
      report.verified = true;
    }
    return report;
  }
  camb::Machine machine(static_cast<int>(P), opts.perturb.machine_seed());
  configure_machine(machine, opts);
  std::vector<Grid3dRankOutputT<T>> outputs(static_cast<std::size_t>(P));
  machine.run([&](camb::RankCtx& ctx) {
    outputs[static_cast<std::size_t>(ctx.rank())] =
        grid3d_agarwal_rank<T>(ctx, cfg);
  });
  RunReport report = report_from_machine(machine, opts);
  i64 predicted = 0;
  for (i64 r = 0; r < P; ++r) {
    predicted = std::max(predicted, grid3d_agarwal_predicted_recv_words(
                                        cfg, static_cast<int>(r)));
  }
  report.predicted_critical_recv = predicted;
  report.lower_bound_words = bound;
  if (opts.verify != VerifyMode::kNone) {
    Matrix<T> c(cfg.shape.n1, cfg.shape.n3);
    for (const auto& out : outputs) place_chunk<T>(c, out.c_chunk, out.c_data);
    report.output_hash = hash_matrix<T>(c);
    report.max_abs_error =
        check_result_pattern<T>(cfg.shape, c, opts.verify, false);
    report.verified = true;
  }
  return report;
}

template <typename T>
RunReport run_carma_t(const CarmaConfig& cfg, const RunOptions& opts) {
  reject_mem_sdc(opts, "carma");
  const i64 P = i64{1} << cfg.levels;
  const double bound = lower_bound_for(cfg.shape, P, opts);
  if (opts.checkpoint.enabled()) {
    const std::vector<i64> base = carma_predicted_recv_words(cfg);
    std::vector<CarmaRankOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, CarmaRankOutputT<T>>(
        static_cast<int>(P), opts, bound, carma_ckpt_steps(cfg),
        [&](int L) { return base[static_cast<std::size_t>(L)]; },
        [&](int L, i64 s) { return carma_ckpt_snapshot_words(cfg, L, s); },
        [&](ckpt::SessionT<T>& s) { return carma_ckpt_rank<T>(s, cfg); },
        outputs);
    if (opts.verify != VerifyMode::kNone) {
      Matrix<T> c(cfg.shape.n1, cfg.shape.n3);
      for (const auto& out : outputs) place_chunk<T>(c, out.holding, out.data);
      report.output_hash = hash_matrix<T>(c);
      report.max_abs_error =
          check_result_pattern<T>(cfg.shape, c, opts.verify, false);
      report.verified = true;
    }
    return report;
  }
  camb::Machine machine(static_cast<int>(P), opts.perturb.machine_seed());
  configure_machine(machine, opts);
  std::vector<CarmaRankOutputT<T>> outputs(static_cast<std::size_t>(P));
  machine.run([&](camb::RankCtx& ctx) {
    outputs[static_cast<std::size_t>(ctx.rank())] = carma_rank<T>(ctx, cfg);
  });
  RunReport report = report_from_machine(machine, opts);
  const std::vector<i64> predicted = carma_predicted_recv_words(cfg);
  report.predicted_critical_recv = 0;
  for (i64 w : predicted) {
    report.predicted_critical_recv = std::max(report.predicted_critical_recv, w);
  }
  report.lower_bound_words = bound;
  if (opts.verify != VerifyMode::kNone) {
    Matrix<T> c(cfg.shape.n1, cfg.shape.n3);
    for (const auto& out : outputs) place_chunk<T>(c, out.holding, out.data);
    report.output_hash = hash_matrix<T>(c);
    report.max_abs_error =
        check_result_pattern<T>(cfg.shape, c, opts.verify, false);
    report.verified = true;
  }
  return report;
}

template <typename T>
RunReport run_block2d(
    const Shape& shape, i64 nprocs, const RunOptions& opts, double lower_bound,
    i64 predicted,
    const std::function<Block2DOutputT<T>(camb::RankCtx&)>& body,
    bool integer_inputs = false) {
  camb::Machine machine(static_cast<int>(nprocs), opts.perturb.machine_seed());
  configure_machine(machine, opts);
  std::vector<Block2DOutputT<T>> outputs(static_cast<std::size_t>(nprocs));
  machine.run([&](camb::RankCtx& ctx) {
    outputs[static_cast<std::size_t>(ctx.rank())] = body(ctx);
  });
  RunReport report = report_from_machine(machine, opts);
  report.predicted_critical_recv = predicted;
  report.lower_bound_words = lower_bound;
  verify_block2d<T>(shape, outputs, opts, report, integer_inputs);
  return report;
}

template <typename T>
RunReport run_alg25d_t(const Alg25dConfig& cfg, const RunOptions& opts) {
  reject_mem_sdc(opts, "alg25d");
  const i64 P = cfg.g * cfg.g * cfg.c;
  i64 predicted = 0;
  for (i64 r = 0; r < P; ++r) {
    predicted = std::max(
        predicted, alg25d_predicted_recv_words(cfg, static_cast<int>(r)));
  }
  const double bound = lower_bound_for(cfg.shape, P, opts);
  if (opts.checkpoint.enabled()) {
    std::vector<Block2DOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, Block2DOutputT<T>>(
        static_cast<int>(P), opts, bound, alg25d_ckpt_steps(cfg),
        [&](int L) { return alg25d_predicted_recv_words(cfg, L); },
        [&](int L, i64 s) { return alg25d_ckpt_snapshot_words(cfg, L, s); },
        [&](ckpt::SessionT<T>& s) { return alg25d_ckpt_rank<T>(s, cfg); },
        outputs);
    verify_block2d<T>(cfg.shape, outputs, opts, report,
                      /*integer_inputs=*/cfg.integer_inputs);
    return report;
  }
  return run_block2d<T>(cfg.shape, P, opts, bound, predicted,
                        [&](camb::RankCtx& ctx) {
                          return alg25d_rank<T>(ctx, cfg);
                        },
                        cfg.integer_inputs);
}

template <typename T>
RunReport run_summa_t(const SummaConfig& cfg, const RunOptions& opts) {
  reject_mem_sdc(opts, "summa");
  const i64 P = cfg.g * cfg.g;
  i64 predicted = 0;
  for (i64 r = 0; r < P; ++r) {
    predicted = std::max(
        predicted, summa_predicted_recv_words(cfg, static_cast<int>(r)));
  }
  const double bound = lower_bound_for(cfg.shape, P, opts);
  if (opts.checkpoint.enabled()) {
    std::vector<Block2DOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, Block2DOutputT<T>>(
        static_cast<int>(P), opts, bound, summa_ckpt_steps(cfg),
        [&](int L) { return summa_predicted_recv_words(cfg, L); },
        [&](int L, i64 s) { return summa_ckpt_snapshot_words(cfg, L, s); },
        [&](ckpt::SessionT<T>& s) { return summa_ckpt_rank<T>(s, cfg); },
        outputs);
    verify_block2d<T>(cfg.shape, outputs, opts, report,
                      /*integer_inputs=*/cfg.integer_inputs);
    return report;
  }
  return run_block2d<T>(cfg.shape, P, opts, bound, predicted,
                        [&](camb::RankCtx& ctx) {
                          return summa_rank<T>(ctx, cfg);
                        },
                        cfg.integer_inputs);
}

template <typename T>
RunReport run_summa_abft_t(const SummaAbftConfig& cfg,
                           const RunOptions& opts) {
  const i64 P = cfg.base.g * cfg.base.g;
  constexpr bool int_inputs = abft_integer_inputs<T>();
  if (opts.checkpoint.enabled() && opts.sdc.mem_rate > 0) {
    throw Error("memory-SDC injection (--sdc-mem-rate) does not compose with "
                "checkpoint/rollback: rollback re-executes instead of "
                "correcting, so the checksum repair path is never exercised");
  }
  const double bound = lower_bound_for(cfg.base.shape, P, opts);
  if (opts.checkpoint.enabled()) {
    std::vector<SummaAbftOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, SummaAbftOutputT<T>>(
        static_cast<int>(P), opts, bound, summa_abft_ckpt_steps(cfg),
        [&](int L) { return summa_abft_ckpt_base_recv_words(cfg, L); },
        [&](int L, i64 s) {
          return summa_abft_ckpt_snapshot_words(cfg, L, s);
        },
        [&](ckpt::SessionT<T>& s) { return summa_abft_ckpt_rank<T>(s, cfg); },
        outputs);
    report.recovery.abft = true;
    if (report.lower_bound_words > 0) {
      report.recovery.overhead_ratio =
          report.measured_critical_recv / report.lower_bound_words;
    }
    std::vector<Block2DOutputT<T>> blocks;
    for (const auto& out : outputs) blocks.push_back(out.own);
    verify_block2d<T>(cfg.base.shape, blocks, opts, report,
                      /*integer_inputs=*/int_inputs);
    return report;
  }
  camb::Machine machine(static_cast<int>(P), opts.perturb.machine_seed());
  configure_machine(machine, opts);
  std::vector<SummaAbftOutputT<T>> outputs(static_cast<std::size_t>(P));
  machine.run([&](camb::RankCtx& ctx) {
    outputs[static_cast<std::size_t>(ctx.rank())] =
        summa_abft_rank<T>(ctx, cfg);
  });
  RunReport report = report_from_machine(machine, opts);
  report.recovery.abft = true;
  // Split the fault-free prediction into data elements (dtype-scaled) and
  // the shrink agreement's control words (fixed 8-byte mask payloads,
  // identical on every rank — so the split commutes with the max).
  i64 predicted = 0;
  for (i64 r = 0; r < P; ++r) {
    predicted = std::max(
        predicted, summa_abft_ckpt_base_recv_words(cfg, static_cast<int>(r)));
  }
  report.predicted_critical_recv = predicted;  // fault-free prediction
  report.predicted_control_words = coll::shrink_recv_words_exact(
      static_cast<int>(P), cfg.max_failures);
  report.lower_bound_words = bound;
  if (report.lower_bound_words > 0) {
    report.recovery.overhead_ratio =
        report.measured_critical_recv / report.lower_bound_words;
  }
  if (opts.sdc.enabled() && !machine.crash_outcome().any_crashed()) {
    i64 mem_flips = 0;
    for (i64 r = 0; r < P; ++r) {
      Matrix<T>& tile = outputs[static_cast<std::size_t>(r)].own.block;
      if (opts.sdc.mem_rate > 0 &&
          maybe_flip_entry<T>(opts.sdc.mem_seed(opts.perturb.master_seed),
                              static_cast<int>(r), opts.sdc.mem_rate,
                              tile.data(), tile.size())) {
        ++mem_flips;
      }
    }
    // The correction pass also runs under message-only SDC: a clean syndrome
    // set is the proof that the transport let nothing through.
    const AbftCorrection corr = summa_abft_correct<T>(cfg, outputs);
    record_correction(report, machine, corr, mem_flips);
  }
  if (opts.verify != VerifyMode::kNone) {
    Matrix<T> c(cfg.base.shape.n1, cfg.base.shape.n3);
    const std::vector<int>& crashed = machine.crash_outcome().crashed;
    for (i64 r = 0; r < P; ++r) {
      const SummaAbftOutputT<T>& out = outputs[static_cast<std::size_t>(r)];
      if (contains(crashed, static_cast<int>(r))) continue;
      place_block<T>(c, out.own);
      for (const RecoveredBlock2DT<T>& rec : out.recovered) {
        place_block<T>(c, rec.out);
      }
    }
    report.output_hash = hash_matrix<T>(c);
    report.max_abs_error =
        check_result_pattern<T>(cfg.base.shape, c, opts.verify, int_inputs);
    report.verified = true;
  }
  return report;
}

template <typename T>
RunReport run_grid3d_abft_t(const Grid3dAbftConfig& cfg,
                            const RunOptions& opts) {
  const i64 P = cfg.base.grid.total();
  constexpr bool int_inputs = abft_integer_inputs<T>();
  if (opts.checkpoint.enabled() && opts.sdc.mem_rate > 0) {
    throw Error("memory-SDC injection (--sdc-mem-rate) does not compose with "
                "checkpoint/rollback: rollback re-executes instead of "
                "correcting, so the checksum repair path is never exercised");
  }
  const double bound = lower_bound_for(cfg.base.shape, P, opts);
  if (opts.checkpoint.enabled()) {
    std::vector<Grid3dAbftOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, Grid3dAbftOutputT<T>>(
        static_cast<int>(P), opts, bound, grid3d_abft_ckpt_steps(cfg),
        [&](int L) { return grid3d_abft_ckpt_base_recv_words(cfg, L); },
        [&](int L, i64 s) {
          return grid3d_abft_ckpt_snapshot_words(cfg, L, s);
        },
        [&](ckpt::SessionT<T>& s) { return grid3d_abft_ckpt_rank<T>(s, cfg); },
        outputs);
    report.recovery.abft = true;
    if (report.lower_bound_words > 0) {
      report.recovery.overhead_ratio =
          report.measured_critical_recv / report.lower_bound_words;
    }
    if (opts.verify != VerifyMode::kNone) {
      Matrix<T> c(cfg.base.shape.n1, cfg.base.shape.n3);
      for (const auto& out : outputs) {
        place_chunk<T>(c, out.own.c_chunk, out.own.c_data);
      }
      report.output_hash = hash_matrix<T>(c);
      report.max_abs_error =
          check_result_pattern<T>(cfg.base.shape, c, opts.verify, int_inputs);
      report.verified = true;
    }
    return report;
  }
  camb::Machine machine(static_cast<int>(P), opts.perturb.machine_seed());
  configure_machine(machine, opts);
  std::vector<Grid3dAbftOutputT<T>> outputs(static_cast<std::size_t>(P));
  machine.run([&](camb::RankCtx& ctx) {
    outputs[static_cast<std::size_t>(ctx.rank())] =
        grid3d_abft_rank<T>(ctx, cfg);
  });
  RunReport report = report_from_machine(machine, opts);
  report.recovery.abft = true;
  // Same data/control split as summa_abft: the shrink flood's mask words
  // are dtype-independent control traffic.
  i64 predicted = 0;
  for (i64 r = 0; r < P; ++r) {
    predicted = std::max(
        predicted, grid3d_abft_ckpt_base_recv_words(cfg, static_cast<int>(r)));
  }
  report.predicted_critical_recv = predicted;  // fault-free prediction
  report.predicted_control_words = coll::shrink_recv_words_exact(
      static_cast<int>(P), cfg.max_failures);
  report.lower_bound_words = bound;
  if (report.lower_bound_words > 0) {
    report.recovery.overhead_ratio =
        report.measured_critical_recv / report.lower_bound_words;
  }
  if (opts.sdc.enabled() && !machine.crash_outcome().any_crashed()) {
    i64 mem_flips = 0;
    for (i64 r = 0; r < P; ++r) {
      std::vector<T>& data = outputs[static_cast<std::size_t>(r)].own.c_data;
      if (opts.sdc.mem_rate > 0 &&
          maybe_flip_entry<T>(opts.sdc.mem_seed(opts.perturb.master_seed),
                              static_cast<int>(r), opts.sdc.mem_rate,
                              data.data(), static_cast<i64>(data.size()))) {
        ++mem_flips;
      }
    }
    // The parity syndrome localizes the corrupted element but not which
    // fiber member holds it; one exact reference dot product per candidate
    // disambiguates.  The dot product is exact in every dtype: the inputs
    // are integer-valued (natively for exact scalars, by the smallness of
    // the integer pattern otherwise).
    Matrix<T> a, b;
    fill_inputs<T>(cfg.base.shape, int_inputs, a, b);
    const AbftCorrection corr = grid3d_abft_correct<T>(
        cfg, outputs, [&](i64 row, i64 col) {
          T acc = ScalarTraits<T>::zero();
          for (i64 k = 0; k < cfg.base.shape.n2; ++k) {
            acc += a(row, k) * b(k, col);
          }
          return acc;
        });
    record_correction(report, machine, corr, mem_flips);
  }
  if (opts.verify != VerifyMode::kNone) {
    Matrix<T> c(cfg.base.shape.n1, cfg.base.shape.n3);
    const std::vector<int>& crashed = machine.crash_outcome().crashed;
    for (i64 r = 0; r < P; ++r) {
      const Grid3dAbftOutputT<T>& out = outputs[static_cast<std::size_t>(r)];
      if (contains(crashed, static_cast<int>(r))) continue;
      place_chunk<T>(c, out.own.c_chunk, out.own.c_data);
      for (const RecoveredChunk3DT<T>& rec : out.recovered) {
        place_chunk<T>(c, rec.c_chunk, rec.c_data);
      }
    }
    report.output_hash = hash_matrix<T>(c);
    report.max_abs_error =
        check_result_pattern<T>(cfg.base.shape, c, opts.verify, int_inputs);
    report.verified = true;
  }
  return report;
}

/// Elastic mode is a recovery discipline of its own: it cannot stack with
/// checkpoint/rollback (which re-executes on the OLD grid — the opposite
/// answer to the same failure) or with memory-SDC injection (which needs a
/// checksum-augmented algorithm to exercise the correction path).
void reject_elastic_conflicts(const RunOptions& opts, const char* algo) {
  if (opts.checkpoint.enabled()) {
    throw Error(std::string(algo) +
                ": elastic shrink-and-regrid does not compose with "
                "checkpoint/rollback — rollback re-executes on the old grid, "
                "elastic re-plans it; pick one recovery discipline");
  }
  if (opts.sdc.mem_rate > 0) {
    throw Error(std::string(algo) +
                ": memory-SDC injection (--sdc-mem-rate) requires a "
                "checksum-augmented algorithm; the elastic twins recover by "
                "re-execution, not correction");
  }
}

/// Shared elastic driver: run the per-rank elastic twin on a counted
/// machine, pin the report to the closed-form prediction for the agreed
/// failed set, and assemble C from every non-crashed rank's tiles (retiree
/// attempt-0 tiles and recovery-round tiles overlap bit-identically, so
/// placement order does not matter).
template <typename T, typename RankFn, typename PredictFn>
RunReport run_elastic_common(const Shape& shape, i64 P, bool int_inputs,
                             const RunOptions& opts, RankFn&& rank_fn,
                             PredictFn&& predict) {
  camb::Machine machine(static_cast<int>(P), opts.perturb.machine_seed());
  configure_machine(machine, opts);
  std::vector<ElasticRankOutputT<T>> outputs(static_cast<std::size_t>(P));
  machine.run([&](camb::RankCtx& ctx) {
    outputs[static_cast<std::size_t>(ctx.rank())] = rank_fn(ctx);
  });
  RunReport report = report_from_machine(machine, opts);
  const std::vector<int>& crashed = machine.crash_outcome().crashed;

  // The agreed outcome lives in the deepest-recovering survivor: a rank
  // that retired after a clean attempt 0 reports rounds = 0 even when its
  // peers went on to shrink without it.
  const ElasticRankOutputT<T>* view = nullptr;
  for (i64 r = 0; r < P; ++r) {
    if (contains(crashed, static_cast<int>(r))) continue;
    const ElasticRankOutputT<T>& out = outputs[static_cast<std::size_t>(r)];
    if (view == nullptr || out.rounds > view->rounds) view = &out;
  }
  if (view == nullptr) {
    throw Error("elastic: every rank crashed; nothing to report");
  }

  report.elastic.enabled = true;
  report.elastic.rounds = view->rounds;
  report.elastic.failed = view->failed;
  report.elastic.survivors = view->survivors;
  report.elastic.active_ranks = view->active_ranks;
  report.elastic.grid = view->final_grid;

  const camb::CommStats& stats = machine.stats();
  for (i64 r = 0; r < P; ++r) {
    const int rr = static_cast<int>(r);
    const double regrid_w =
        stats.rank_phase(rr, coll::kPhaseElasticRegrid).words_received();
    const double shrink_w =
        stats.rank_phase(rr, kPhaseElasticShrink).words_received();
    report.elastic.migration_recv_words =
        std::max(report.elastic.migration_recv_words, regrid_w);
    report.elastic.shrink_recv_words =
        std::max(report.elastic.shrink_recv_words, shrink_w);
    report.elastic.exec_recv_words =
        std::max(report.elastic.exec_recv_words,
                 stats.rank_total(rr).words_received() - regrid_w - shrink_w);
  }
  report.elastic.bound_words_at_pprime =
      lower_bound_for(shape, report.elastic.active_ranks, opts);
  if (report.elastic.bound_words_at_pprime > 0) {
    report.elastic.overhead_vs_bound =
        report.elastic.exec_recv_words / report.elastic.bound_words_at_pprime;
  }

  // The zero-tolerance prediction for the agreed failed set: base words
  // when clean, base-at-P′ + shrink flood + migration tax when crashed.
  // Split data elements (dtype-scaled) from the shrink control words (fixed
  // f64 mask payloads) the way predicted_words() recombines them; the split
  // commutes with the max because the control words are uniform over
  // survivors and the failed receive nothing.
  const ElasticPrediction pred = predict(view->failed);
  const double width = dtype_width_words(opts.dtype);
  i64 max_elems = 0;
  for (i64 r = 0; r < P; ++r) {
    const std::size_t s = static_cast<std::size_t>(r);
    const double data_words =
        pred.rank_migration_words[s] + pred.rank_exec_words[s];
    max_elems = std::max(
        max_elems, static_cast<i64>(std::llround(data_words / width)));
  }
  report.predicted_critical_recv = max_elems;
  report.predicted_control_words =
      static_cast<i64>(std::llround(pred.shrink_words));
  report.lower_bound_words = lower_bound_for(shape, P, opts);

  if (opts.verify != VerifyMode::kNone) {
    Matrix<T> c(shape.n1, shape.n3);
    for (i64 r = 0; r < P; ++r) {
      if (contains(crashed, static_cast<int>(r))) continue;
      const ElasticRankOutputT<T>& out = outputs[static_cast<std::size_t>(r)];
      for (std::size_t s = 0; s < out.c_chunks.size(); ++s) {
        place_chunk<T>(c, out.c_chunks[s], out.c_data[s]);
      }
    }
    report.output_hash = hash_matrix<T>(c);
    report.max_abs_error =
        check_result_pattern<T>(shape, c, opts.verify, int_inputs);
    report.verified = true;
  }
  return report;
}

template <typename T>
RunReport run_summa_elastic_t(const SummaConfig& cfg, const RunOptions& opts) {
  reject_elastic_conflicts(opts, "summa_elastic");
  const i64 P = cfg.g * cfg.g;
  ElasticConfig ecfg = opts.elastic;
  ecfg.enabled = true;
  const bool int_inputs = cfg.integer_inputs || abft_integer_inputs<T>();
  return run_elastic_common<T>(
      cfg.shape, P, int_inputs, opts,
      [&](camb::RankCtx& ctx) {
        return summa_elastic_rank<T>(ctx, cfg, ecfg);
      },
      [&](const std::vector<int>& failed) {
        return summa_elastic_prediction(cfg, ecfg, failed,
                                        static_cast<int>(P),
                                        dtype_width_words(opts.dtype));
      });
}

template <typename T>
RunReport run_grid3d_elastic_t(const Grid3dConfig& cfg,
                               const RunOptions& opts) {
  reject_elastic_conflicts(opts, "grid3d_elastic");
  const i64 P = cfg.grid.total();
  ElasticConfig ecfg = opts.elastic;
  ecfg.enabled = true;
  const bool int_inputs = cfg.integer_inputs || abft_integer_inputs<T>();
  return run_elastic_common<T>(
      cfg.shape, P, int_inputs, opts,
      [&](camb::RankCtx& ctx) {
        return grid3d_elastic_rank<T>(ctx, cfg, ecfg);
      },
      [&](const std::vector<int>& failed) {
        return grid3d_elastic_prediction(cfg, ecfg, failed,
                                         static_cast<int>(P),
                                         dtype_width_words(opts.dtype));
      });
}

template <typename T>
RunReport run_alg25d_elastic_t(const Alg25dConfig& cfg,
                               const RunOptions& opts) {
  reject_elastic_conflicts(opts, "alg25d_elastic");
  const i64 P = cfg.g * cfg.g * cfg.c;
  ElasticConfig ecfg = opts.elastic;
  ecfg.enabled = true;
  const bool int_inputs = cfg.integer_inputs || abft_integer_inputs<T>();
  return run_elastic_common<T>(
      cfg.shape, P, int_inputs, opts,
      [&](camb::RankCtx& ctx) {
        return alg25d_elastic_rank<T>(ctx, cfg, ecfg);
      },
      [&](const std::vector<int>& failed) {
        return alg25d_elastic_prediction(cfg, ecfg, failed,
                                         static_cast<int>(P),
                                         dtype_width_words(opts.dtype));
      });
}

template <typename T>
RunReport run_cannon_t(const CannonConfig& cfg, const RunOptions& opts) {
  reject_mem_sdc(opts, "cannon");
  const i64 P = cfg.g * cfg.g;
  i64 predicted = 0;
  for (i64 r = 0; r < P; ++r) {
    predicted = std::max(
        predicted, cannon_predicted_recv_words(cfg, static_cast<int>(r)));
  }
  const double bound = lower_bound_for(cfg.shape, P, opts);
  if (opts.checkpoint.enabled()) {
    std::vector<Block2DOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, Block2DOutputT<T>>(
        static_cast<int>(P), opts, bound, cannon_ckpt_steps(cfg),
        [&](int L) { return cannon_predicted_recv_words(cfg, L); },
        [&](int L, i64 s) { return cannon_ckpt_snapshot_words(cfg, L, s); },
        [&](ckpt::SessionT<T>& s) { return cannon_ckpt_rank<T>(s, cfg); },
        outputs);
    verify_block2d<T>(cfg.shape, outputs, opts, report);
    return report;
  }
  return run_block2d<T>(cfg.shape, P, opts, bound, predicted,
                        [&](camb::RankCtx& ctx) {
                          return cannon_rank<T>(ctx, cfg);
                        });
}

template <typename T>
RunReport run_naive_bcast_t(const NaiveBcastConfig& cfg, i64 nprocs,
                            const RunOptions& opts) {
  reject_mem_sdc(opts, "naive_bcast");
  i64 predicted = 0;
  for (i64 r = 0; r < nprocs; ++r) {
    predicted = std::max(predicted,
                         naive_bcast_predicted_recv_words(
                             cfg, static_cast<int>(r), static_cast<int>(nprocs)));
  }
  const double bound = lower_bound_for(cfg.shape, nprocs, opts);
  if (opts.checkpoint.enabled()) {
    std::vector<Block2DOutputT<T>> outputs;
    RunReport report = run_ckpt_common<T, Block2DOutputT<T>>(
        static_cast<int>(nprocs), opts, bound, naive_bcast_ckpt_steps(cfg),
        [&](int L) {
          return naive_bcast_predicted_recv_words(cfg, L,
                                                  static_cast<int>(nprocs));
        },
        [&](int L, i64 s) {
          return naive_bcast_ckpt_snapshot_words(cfg, L,
                                                 static_cast<int>(nprocs), s);
        },
        [&](ckpt::SessionT<T>& s) { return naive_bcast_ckpt_rank<T>(s, cfg); },
        outputs);
    verify_block2d<T>(cfg.shape, outputs, opts, report);
    return report;
  }
  return run_block2d<T>(cfg.shape, nprocs, opts, bound, predicted,
                        [&](camb::RankCtx& ctx) {
                          return naive_bcast_rank<T>(ctx, cfg);
                        });
}

}  // namespace

RunReport run_grid3d(const Grid3dConfig& cfg, const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_grid3d_t<T>(cfg, opts);
  });
}

RunReport run_grid3d(const Grid3dConfig& cfg, VerifyMode mode) {
  return run_grid3d(cfg, RunOptions::verified(mode));
}

RunReport run_grid3d(const Grid3dConfig& cfg, bool verify) {
  return run_grid3d(cfg, options_from(verify));
}

RunReport run_grid3d_staged(const Grid3dStagedConfig& cfg,
                            const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_grid3d_staged_t<T>(cfg, opts);
  });
}

RunReport run_grid3d_staged(const Grid3dStagedConfig& cfg, bool verify) {
  return run_grid3d_staged(cfg, options_from(verify));
}

RunReport run_grid3d_agarwal(const Grid3dAgarwalConfig& cfg,
                             const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_grid3d_agarwal_t<T>(cfg, opts);
  });
}

RunReport run_grid3d_agarwal(const Grid3dAgarwalConfig& cfg, bool verify) {
  return run_grid3d_agarwal(cfg, options_from(verify));
}

RunReport run_carma(const CarmaConfig& cfg, const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_carma_t<T>(cfg, opts);
  });
}

RunReport run_carma(const CarmaConfig& cfg, bool verify) {
  return run_carma(cfg, options_from(verify));
}

RunReport run_alg25d(const Alg25dConfig& cfg, const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_alg25d_t<T>(cfg, opts);
  });
}

RunReport run_alg25d(const Alg25dConfig& cfg, bool verify) {
  return run_alg25d(cfg, options_from(verify));
}

RunReport run_summa_elastic(const SummaConfig& cfg, const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_summa_elastic_t<T>(cfg, opts);
  });
}

RunReport run_summa_elastic(const SummaConfig& cfg, bool verify) {
  return run_summa_elastic(cfg, options_from(verify));
}

RunReport run_grid3d_elastic(const Grid3dConfig& cfg, const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_grid3d_elastic_t<T>(cfg, opts);
  });
}

RunReport run_grid3d_elastic(const Grid3dConfig& cfg, bool verify) {
  return run_grid3d_elastic(cfg, options_from(verify));
}

RunReport run_alg25d_elastic(const Alg25dConfig& cfg, const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_alg25d_elastic_t<T>(cfg, opts);
  });
}

RunReport run_alg25d_elastic(const Alg25dConfig& cfg, bool verify) {
  return run_alg25d_elastic(cfg, options_from(verify));
}

RunReport run_summa(const SummaConfig& cfg, const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_summa_t<T>(cfg, opts);
  });
}

RunReport run_summa(const SummaConfig& cfg, bool verify) {
  return run_summa(cfg, options_from(verify));
}

RunReport run_summa_abft(const SummaAbftConfig& cfg, const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_summa_abft_t<T>(cfg, opts);
  });
}

RunReport run_summa_abft(const SummaAbftConfig& cfg, bool verify) {
  return run_summa_abft(cfg, options_from(verify));
}

RunReport run_grid3d_abft(const Grid3dAbftConfig& cfg,
                          const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_grid3d_abft_t<T>(cfg, opts);
  });
}

RunReport run_grid3d_abft(const Grid3dAbftConfig& cfg, bool verify) {
  return run_grid3d_abft(cfg, options_from(verify));
}

RunReport run_cannon(const CannonConfig& cfg, const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_cannon_t<T>(cfg, opts);
  });
}

RunReport run_cannon(const CannonConfig& cfg, bool verify) {
  return run_cannon(cfg, options_from(verify));
}

RunReport run_naive_bcast(const NaiveBcastConfig& cfg, i64 nprocs,
                          const RunOptions& opts) {
  return dispatch_dtype(opts.dtype, [&](auto tag) {
    using T = typename decltype(tag)::type;
    return run_naive_bcast_t<T>(cfg, nprocs, opts);
  });
}

RunReport run_naive_bcast(const NaiveBcastConfig& cfg, i64 nprocs,
                          bool verify) {
  return run_naive_bcast(cfg, nprocs, options_from(verify));
}

}  // namespace camb::mm
