// grid3d_agarwal.hpp — the Agarwal et al. (1995) original that Algorithm 1
// refines.
//
// §5.1: "The difference between Alg. 1 and (Agarwal et al., 1995,
// Algorithm 1) is the Reduce-Scatter collective, which replaces the
// All-to-All collective and has smaller latency cost."
//
// This variant is Algorithm 1 with line 8 implemented the 1995 way: each
// rank splits its local product D into p2 personalized pieces, exchanges
// them with its fiber via All-to-All, and sums the received contributions
// locally.  Bandwidth is identical to Reduce-Scatter ((1 − 1/p2)·|D|); the
// differences the paper calls out are measurable here:
//   * latency: p2 − 1 rounds (pairwise) instead of ⌈log2 p2⌉;
//   * the reduction flops move after the exchange (each rank sums p2 partial
//     segments itself instead of folding them into the collective).
#pragma once

#include "collectives/alltoall.hpp"
#include "matmul/grid3d.hpp"

namespace camb::mm {

struct Grid3dAgarwalConfig {
  Shape shape;
  Grid3 grid;
  coll::AllgatherAlgo allgather = coll::AllgatherAlgo::kAuto;
  coll::AlltoallAlgo alltoall = coll::AlltoallAlgo::kPairwise;
};

/// SPMD body for one rank; same data layout and output ownership as
/// Algorithm 1 (grid3d_layout applies unchanged).
template <typename T = double>
Grid3dRankOutputT<T> grid3d_agarwal_rank(RankCtx& ctx,
                                         const Grid3dAgarwalConfig& cfg);

/// Exact predicted received words for `rank`.
i64 grid3d_agarwal_predicted_recv_words(const Grid3dAgarwalConfig& cfg,
                                        int rank);

/// Checkpointable twin: boundaries after the A all-gather, the B all-gather,
/// and the gemm + all-to-all + local sum.
template <typename T>
Grid3dRankOutputT<T> grid3d_agarwal_ckpt_rank(ckpt::SessionT<T>& session,
                                          const Grid3dAgarwalConfig& cfg);

i64 grid3d_agarwal_ckpt_steps(const Grid3dAgarwalConfig& cfg);
i64 grid3d_agarwal_ckpt_snapshot_words(const Grid3dAgarwalConfig& cfg,
                                       int logical, i64 step);

inline constexpr const char* kPhaseAlltoallC = "alltoall_C";

}  // namespace camb::mm
