#include "matmul/freivalds.hpp"

#include <cmath>

#include "util/error.hpp"

namespace camb::mm {

namespace {

/// One residual evaluation: max_i |(A(Bx) - Cx)_i| / scale, with every
/// operand widened to double first.
template <typename T>
double one_trial(const Matrix<T>& a, const Matrix<T>& b, const Matrix<T>& c,
                 Rng& rng) {
  const i64 n1 = a.rows(), n2 = a.cols(), n3 = b.cols();
  std::vector<double> x(static_cast<std::size_t>(n3));
  for (auto& v : x) v = (rng() & 1) ? 1.0 : 0.0;

  // y = B x  (n2), z = A y (n1), w = C x (n1).
  std::vector<double> y(static_cast<std::size_t>(n2), 0.0);
  for (i64 i = 0; i < n2; ++i) {
    double acc = 0.0;
    const T* row = b.data() + i * n3;
    for (i64 j = 0; j < n3; ++j) {
      acc += ScalarTraits<T>::to_double(row[j]) * x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  double worst = 0.0;
  double scale = 1.0;
  for (i64 i = 0; i < n1; ++i) {
    double z = 0.0, z_mag = 0.0;
    const T* arow = a.data() + i * n2;
    for (i64 j = 0; j < n2; ++j) {
      const double av = ScalarTraits<T>::to_double(arow[j]);
      z += av * y[static_cast<std::size_t>(j)];
      z_mag += std::abs(av * y[static_cast<std::size_t>(j)]);
    }
    double w = 0.0;
    const T* crow = c.data() + i * n3;
    for (i64 j = 0; j < n3; ++j) {
      w += ScalarTraits<T>::to_double(crow[j]) * x[static_cast<std::size_t>(j)];
    }
    worst = std::max(worst, std::abs(z - w));
    scale = std::max(scale, z_mag);
  }
  return worst / scale;
}

}  // namespace

template <typename T>
bool freivalds_check(const Matrix<T>& a, const Matrix<T>& b,
                     const Matrix<T>& c, int trials, Rng& rng, double tol) {
  CAMB_CHECK_MSG(a.cols() == b.rows(), "inner dimensions must agree");
  CAMB_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(),
                 "product shape mismatch");
  CAMB_CHECK_MSG(trials >= 1, "need at least one trial");
  for (int t = 0; t < trials; ++t) {
    if (one_trial<T>(a, b, c, rng) > tol) return false;
  }
  return true;
}

template <typename T>
double freivalds_residual(const Matrix<T>& a, const Matrix<T>& b,
                          const Matrix<T>& c, int trials, Rng& rng) {
  double worst = 0.0;
  for (int t = 0; t < trials; ++t) {
    worst = std::max(worst, one_trial<T>(a, b, c, rng));
  }
  return worst;
}

#define CAMB_INSTANTIATE(T)                                                 \
  template bool freivalds_check<T>(const Matrix<T>&, const Matrix<T>&,      \
                                   const Matrix<T>&, int, Rng&, double);    \
  template double freivalds_residual<T>(const Matrix<T>&, const Matrix<T>&, \
                                        const Matrix<T>&, int, Rng&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::mm
