#include "matmul/grid3d.hpp"

#include "collectives/coll_cost.hpp"
#include "collectives/grid_comm.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

namespace {

struct Dists {
  BlockDist1D d1, d2, d3;
  explicit Dists(const Grid3dConfig& cfg)
      : d1(cfg.shape.n1, cfg.grid.p1),
        d2(cfg.shape.n2, cfg.grid.p2),
        d3(cfg.shape.n3, cfg.grid.p3) {}
};

BlockChunk make_chunk(const BlockDist1D& row_dist, i64 row_idx,
                      const BlockDist1D& col_dist, i64 col_idx,
                      i64 fiber_size, i64 fiber_idx) {
  BlockChunk chunk;
  chunk.row0 = row_dist.start(row_idx);
  chunk.col0 = col_dist.start(col_idx);
  chunk.rows = row_dist.size(row_idx);
  chunk.cols = col_dist.size(col_idx);
  const BlockDist1D flat(chunk.rows * chunk.cols, fiber_size);
  chunk.flat_start = flat.start(fiber_idx);
  chunk.flat_size = flat.size(fiber_idx);
  return chunk;
}

}  // namespace

Grid3dLayout grid3d_layout(const Grid3dConfig& cfg, int rank) {
  const GridMap map(cfg.grid);
  const auto [q1, q2, q3] = map.coords_of(rank);
  const Dists dists(cfg);
  Grid3dLayout layout;
  // A_{q1 q2} spread across the p3 fiber; B_{q2 q3} across p1; C_{q1 q3}
  // across p2 (§5's initial/final distributions).
  layout.a = make_chunk(dists.d1, q1, dists.d2, q2, cfg.grid.p3, q3);
  layout.b = make_chunk(dists.d2, q2, dists.d3, q3, cfg.grid.p1, q1);
  layout.c = make_chunk(dists.d1, q1, dists.d3, q3, cfg.grid.p2, q2);
  layout.a_counts = BlockDist1D(layout.a.block_size(), cfg.grid.p3).counts();
  layout.b_counts = BlockDist1D(layout.b.block_size(), cfg.grid.p1).counts();
  layout.c_counts = BlockDist1D(layout.c.block_size(), cfg.grid.p2).counts();
  return layout;
}

template <typename T>
Grid3dRankOutputT<T> grid3d_core(RankCtx& ctx, const Grid3dConfig& cfg,
                                 const Grid3dLayout& layout,
                                 const coll::Comm& fiber_a,
                                 const coll::Comm& fiber_b,
                                 const coll::Comm& fiber_c,
                                 std::vector<T> a_local,
                                 std::vector<T> b_local) {
  // Line 3: All-Gather A across the fiber (q1, q2, :).
  ctx.set_phase(kPhaseAllgatherA);
  const camb::WorkingSet a_ws(ctx, layout.a.block_size(),
                              ScalarTraits<T>::elem_bytes);
  std::vector<T> a_flat =
      coll::allgather(fiber_a, layout.a_counts, a_local, cfg.allgather);

  // Line 4: All-Gather B across the fiber (:, q2, q3).
  ctx.set_phase(kPhaseAllgatherB);
  const camb::WorkingSet b_ws(ctx, layout.b.block_size(),
                              ScalarTraits<T>::elem_bytes);
  std::vector<T> b_flat =
      coll::allgather(fiber_b, layout.b_counts, b_local, cfg.allgather);

  // Line 6: local multiply D = A_{q1 q2} * B_{q2 q3}.
  ctx.set_phase(kPhaseLocalGemm);
  const camb::WorkingSet d_ws(ctx, layout.c.block_size(),
                              ScalarTraits<T>::elem_bytes);
  Matrix<T> a_block(layout.a.rows, layout.a.cols);
  std::copy(a_flat.begin(), a_flat.end(), a_block.data());
  Matrix<T> b_block(layout.b.rows, layout.b.cols);
  std::copy(b_flat.begin(), b_flat.end(), b_block.data());
  const Matrix<T> d_block = gemm(a_block, b_block);

  // Line 8: Reduce-Scatter D across the fiber (q1, :, q3).
  ctx.set_phase(kPhaseReduceScatterC);
  std::vector<T> d_flat(d_block.data(), d_block.data() + d_block.size());
  Grid3dRankOutputT<T> out;
  out.c_chunk = layout.c;
  out.c_data = coll::reduce_scatter(fiber_c, layout.c_counts, d_flat,
                                    cfg.reduce_scatter);
  CAMB_CHECK(static_cast<i64>(out.c_data.size()) == layout.c.flat_size);
  return out;
}

template <typename T>
Grid3dRankOutputT<T> grid3d_rank(RankCtx& ctx, const Grid3dConfig& cfg) {
  CAMB_CHECK_MSG(cfg.grid.total() == ctx.nprocs(),
                 "grid size must equal the machine size");
  const Grid3dLayout layout = grid3d_layout(cfg, ctx.rank());
  const coll::GridComm grid(ctx, cfg.grid);

  const auto fill = [&](const BlockChunk& chunk) {
    return cfg.integer_inputs ? fill_chunk_indexed_int<T>(chunk)
                              : fill_chunk_indexed<T>(chunk);
  };
  return grid3d_core<T>(ctx, cfg, layout, grid.fiber(2), grid.fiber(0),
                        grid.fiber(1), fill(layout.a), fill(layout.b));
}

#define CAMB_INSTANTIATE(T)                                                  \
  template Grid3dRankOutputT<T> grid3d_core<T>(                              \
      RankCtx&, const Grid3dConfig&, const Grid3dLayout&, const coll::Comm&, \
      const coll::Comm&, const coll::Comm&, std::vector<T>, std::vector<T>); \
  template Grid3dRankOutputT<T> grid3d_rank<T>(RankCtx&, const Grid3dConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
Grid3dRankOutputT<T> grid3d_ckpt_rank(ckpt::SessionT<T>& session,
                                      const Grid3dConfig& cfg) {
  RankCtx& ctx = session.ctx();
  CAMB_CHECK_MSG(cfg.grid.total() == session.nprocs(),
                 "grid size must equal the logical machine size");
  const int me = session.rank();
  const Grid3dLayout layout = grid3d_layout(cfg, me);
  const GridMap map(cfg.grid);
  const auto [q1, q2, q3] = map.coords_of(me);
  const coll::Comm fiber_b = session.comm(map.fiber(0, q1, q2, q3));
  const coll::Comm fiber_c = session.comm(map.fiber(1, q1, q2, q3));
  const coll::Comm fiber_a = session.comm(map.fiber(2, q1, q2, q3));

  const auto fill = [&](const BlockChunk& chunk) {
    return cfg.integer_inputs ? fill_chunk_indexed_int<T>(chunk)
                              : fill_chunk_indexed<T>(chunk);
  };

  const i64 t0 = session.resume_step();
  std::vector<T> a_flat, b_flat;
  Grid3dRankOutputT<T> out;
  out.c_chunk = layout.c;
  if (session.restored()) {
    const SnapshotT<T>& snap = session.snapshot();
    if (t0 == 1) {
      a_flat = snap.bufs.at(0);
    } else if (t0 == 2) {
      a_flat = snap.bufs.at(0);
      b_flat = snap.bufs.at(1);
    } else {
      CAMB_CHECK(t0 == 3);
      out.c_data = snap.bufs.at(0);
    }
  }

  for (i64 step = t0; step < 3; ++step) {
    if (step == 0) {
      ctx.set_phase(kPhaseAllgatherA);
      const camb::WorkingSet a_ws(ctx, layout.a.block_size());
      a_flat = coll::allgather(fiber_a, layout.a_counts, fill(layout.a),
                               cfg.allgather);
    } else if (step == 1) {
      ctx.set_phase(kPhaseAllgatherB);
      const camb::WorkingSet b_ws(ctx, layout.b.block_size());
      b_flat = coll::allgather(fiber_b, layout.b_counts, fill(layout.b),
                               cfg.allgather);
    } else {
      ctx.set_phase(kPhaseLocalGemm);
      const camb::WorkingSet d_ws(ctx, layout.c.block_size());
      Matrix<T> a_block(layout.a.rows, layout.a.cols);
      std::copy(a_flat.begin(), a_flat.end(), a_block.data());
      Matrix<T> b_block(layout.b.rows, layout.b.cols);
      std::copy(b_flat.begin(), b_flat.end(), b_block.data());
      const Matrix<T> d_block = gemm(a_block, b_block);
      ctx.set_phase(kPhaseReduceScatterC);
      std::vector<T> d_flat(d_block.data(),
                            d_block.data() + d_block.size());
      out.c_data = coll::reduce_scatter(fiber_c, layout.c_counts, d_flat,
                                        cfg.reduce_scatter);
      CAMB_CHECK(static_cast<i64>(out.c_data.size()) == layout.c.flat_size);
    }
    session.boundary(step + 1, [&] {
      SnapshotT<T> snap;
      if (step == 0) {
        snap.bufs = {a_flat};
      } else if (step == 1) {
        snap.bufs = {a_flat, b_flat};
      } else {
        snap.bufs = {out.c_data};
      }
      return snap;
    });
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                          \
  template Grid3dRankOutputT<T> grid3d_ckpt_rank<T>( \
      ckpt::SessionT<T>&, const Grid3dConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 grid3d_ckpt_steps(const Grid3dConfig& cfg) {
  (void)cfg;
  return 3;
}

i64 grid3d_ckpt_snapshot_words(const Grid3dConfig& cfg, int logical,
                               i64 step) {
  const Grid3dLayout layout = grid3d_layout(cfg, logical);
  if (step == 1) return snapshot_wire_words({layout.a.block_size()});
  if (step == 2) {
    return snapshot_wire_words(
        {layout.a.block_size(), layout.b.block_size()});
  }
  return snapshot_wire_words({layout.c.flat_size});
}

i64 grid3d_predicted_recv_words(const Grid3dConfig& cfg, int rank) {
  const GridMap map(cfg.grid);
  const auto [q1, q2, q3] = map.coords_of(rank);
  const Grid3dLayout layout = grid3d_layout(cfg, rank);
  i64 words = 0;
  words += coll::allgather_recv_words_exact(layout.a_counts,
                                            static_cast<int>(q3), cfg.allgather);
  words += coll::allgather_recv_words_exact(layout.b_counts,
                                            static_cast<int>(q1), cfg.allgather);
  words += coll::reduce_scatter_recv_words_exact(
      layout.c_counts, static_cast<int>(q2), cfg.reduce_scatter);
  return words;
}

i64 grid3d_predicted_critical_recv_words(const Grid3dConfig& cfg) {
  i64 worst = 0;
  const i64 P = cfg.grid.total();
  for (i64 r = 0; r < P; ++r) {
    worst = std::max(worst,
                     grid3d_predicted_recv_words(cfg, static_cast<int>(r)));
  }
  return worst;
}

}  // namespace camb::mm
