#include "matmul/elastic.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "machine/faults.hpp"
#include "planner/planner.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

i64 elastic_shrink_recv_words_exact(int nprocs, int max_failures,
                                    int pre_failures) {
  const i64 alive = nprocs - pre_failures;
  if (alive <= 1) return 0;
  // Round 0 floods to the full membership, but only alive peers deliver;
  // later rounds flood among the discovered-alive only.  Either way each
  // participant takes (alive - 1) views of 2 ceil(P/32) mask words per round.
  return static_cast<i64>(max_failures + 1) * (alive - 1) * 2 *
         ((nprocs + 31) / 32);
}

namespace {

/// Append the global row-major spans of a full rows×cols block of a matrix
/// with `ncols` columns, coalescing spans that happen to be contiguous
/// (whole-width blocks collapse to one span).
void append_block_spans(coll::PanelSet& set, int matrix,
                        const BlockDist1D& rows, i64 ri,
                        const BlockDist1D& cols, i64 ci, i64 ncols) {
  const i64 r0 = rows.start(ri), nr = rows.size(ri);
  const i64 c0 = cols.start(ci), nc = cols.size(ci);
  if (nr <= 0 || nc <= 0) return;
  for (i64 r = 0; r < nr; ++r) {
    const i64 start = (r0 + r) * ncols + c0;
    if (!set.empty() && set.back().matrix == matrix &&
        set.back().end() == start) {
      set.back().len += nc;
    } else {
      set.push_back({matrix, start, nc});
    }
  }
}

/// Append the spans of a fiber chunk: the block-flat window
/// [flat_start, flat_start + flat_size) of the rows×cols block at
/// (row0, col0), row by row.  Ascending block-flat order is ascending
/// global row-major order, which is what makes the chunk's local storage
/// a PanelSet holding.
void append_chunk_spans(coll::PanelSet& set, int matrix, const BlockChunk& ch,
                        i64 ncols) {
  const i64 lo = ch.flat_start, hi = ch.flat_start + ch.flat_size;
  for (i64 r = 0; r < ch.rows; ++r) {
    const i64 row_lo = r * ch.cols, row_hi = row_lo + ch.cols;
    const i64 a = std::max(lo, row_lo), b = std::min(hi, row_hi);
    if (a >= b) continue;
    const i64 start = (ch.row0 + r) * ncols + ch.col0 + (a - row_lo);
    if (!set.empty() && set.back().matrix == matrix &&
        set.back().end() == start) {
      set.back().len += b - a;
    } else {
      set.push_back({matrix, start, b - a});
    }
  }
}

/// The position-pure regenerator: global cells of A (n1×n2) or B (n2×n3)
/// via a whole-matrix chunk window, so regenerated values are bit-identical
/// to what the original owner filled.
template <typename T>
coll::RegridFill<T> make_elastic_fill(const Shape& shape, bool integer) {
  return [shape, integer](int matrix, i64 start, i64 len, T* out) {
    BlockChunk chunk;
    chunk.row0 = 0;
    chunk.col0 = 0;
    chunk.rows = matrix == 0 ? shape.n1 : shape.n2;
    chunk.cols = matrix == 0 ? shape.n2 : shape.n3;
    chunk.flat_start = start;
    chunk.flat_size = len;
    const std::vector<T> vals = integer ? fill_chunk_indexed_int<T>(chunk)
                                        : fill_chunk_indexed<T>(chunk);
    std::copy(vals.begin(), vals.end(), out);
  };
}

/// Values of one matrix's panels in canonical order.
template <typename T>
std::vector<T> fill_panels(const coll::RegridFill<T>& fill,
                           const coll::PanelSet& panels, int matrix) {
  i64 total = 0;
  for (const coll::PanelSpan& s : panels) {
    if (s.matrix == matrix) total += s.len;
  }
  std::vector<T> out(static_cast<std::size_t>(total));
  i64 off = 0;
  for (const coll::PanelSpan& s : panels) {
    if (s.matrix != matrix) continue;
    fill(matrix, s.start, s.len, out.data() + off);
    off += s.len;
  }
  return out;
}

template <typename T>
void push_chunk_tile(const BlockChunk& chunk, std::vector<T> data,
                     ElasticRankOutputT<T>& out) {
  if (chunk.flat_size <= 0) return;
  CAMB_CHECK(static_cast<i64>(data.size()) == chunk.flat_size);
  out.c_chunks.push_back(chunk);
  out.c_data.push_back(std::move(data));
}

template <typename T>
void push_block_tile(const Block2DOutputT<T>& blk, ElasticRankOutputT<T>& out) {
  if (blk.block.size() == 0) return;
  BlockChunk chunk;
  chunk.row0 = blk.row0;
  chunk.col0 = blk.col0;
  chunk.rows = blk.block.rows();
  chunk.cols = blk.block.cols();
  chunk.flat_start = 0;
  chunk.flat_size = chunk.rows * chunk.cols;
  push_chunk_tile(chunk,
                  std::vector<T>(blk.block.data(),
                                 blk.block.data() + blk.block.size()),
                  out);
}

/// One zero-word probe round on `comm`: send to every peer, then wait out
/// every peer's probe (infinite deadline — failure, never a hang).  Returns
/// false iff some peer is dead or has deviated from this tag band, in which
/// case the caller enters (or retries) recovery.  All peers are drained
/// even after a miss so healthy probes never linger as debris.
bool probe_round(const coll::Comm& comm, const char* phase, int tag) {
  RankCtx& ctx = comm.ctx();
  ctx.set_phase(phase);
  const int me = comm.my_index();
  for (int s = 0; s < comm.size(); ++s) {
    if (s != me) comm.send(s, tag, Buffer{});
  }
  bool ok = true;
  constexpr double kForever = std::numeric_limits<double>::infinity();
  for (int s = 0; s < comm.size(); ++s) {
    if (s == me) continue;
    if (!ctx.recv_timed(comm.rank_at(s), tag, kForever)) ok = false;
  }
  return ok;
}

/// The regrid agreement: old panels are the attempt-0 placement of every
/// machine rank (a partition of A and B); new panels are the re-planned
/// placement of the first `nact` survivors; alive marks who still holds
/// old panels (retired and crashed ranks do not — their cells regenerate).
template <typename Traits>
coll::RegridPlan make_regrid_plan(const typename Traits::Config& base,
                                  const typename Traits::Config& ncfg,
                                  const std::vector<int>& survivors, i64 nact,
                                  int nprocs) {
  coll::RegridPlan plan;
  plan.old_panels.resize(static_cast<std::size_t>(nprocs));
  plan.new_panels.resize(static_cast<std::size_t>(nprocs));
  plan.alive.assign(static_cast<std::size_t>(nprocs), 0);
  for (int r = 0; r < nprocs; ++r) {
    plan.old_panels[static_cast<std::size_t>(r)] = Traits::panels(base, r);
  }
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    const auto m = static_cast<std::size_t>(survivors[s]);
    plan.alive[m] = 1;
    if (static_cast<i64>(s) < nact) {
      plan.new_panels[m] = Traits::panels(ncfg, static_cast<int>(s));
    }
  }
  return plan;
}

struct SummaTraits {
  using Config = SummaConfig;
  static i64 active_ranks(const Config& c) { return c.g * c.g; }
  static core::Grid3 grid_of(const Config& c) { return {c.g, c.g, 1}; }
  static Config plan_at(const Config& base, i64 maxp) {
    return summa_plan_at(base, maxp);
  }
  static coll::PanelSet panels(const Config& c, int logical) {
    return summa_panels(c, logical);
  }
  static i64 exec_recv_elems(const Config& c, int logical) {
    return summa_predicted_recv_words(c, logical);
  }

  template <typename T>
  static void run_base(RankCtx& ctx, const Config& cfg,
                       ElasticRankOutputT<T>& out) {
    push_block_tile(summa_rank<T>(ctx, cfg), out);
  }

  template <typename T>
  static void exec(RankCtx& ctx, const Config& ncfg,
                   const std::vector<int>& actives, int L, std::vector<T> a,
                   std::vector<T> b, ElasticRankOutputT<T>& out) {
    const i64 g = ncfg.g;
    const i64 i = L / g, j = L % g;
    std::vector<int> row_m, col_m;
    for (i64 v = 0; v < g; ++v) {
      row_m.push_back(actives[static_cast<std::size_t>(i * g + v)]);
      col_m.push_back(actives[static_cast<std::size_t>(v * g + j)]);
    }
    const coll::Comm my_row = coll::Comm::recovery(ctx, row_m);
    const coll::Comm my_col = coll::Comm::recovery(ctx, col_m);
    const BlockDist1D d1(ncfg.shape.n1, g), d3(ncfg.shape.n3, g);
    Block2DOutputT<T> blk;
    blk.row0 = d1.start(i);
    blk.col0 = d3.start(j);
    blk.block = Matrix<T>(d1.size(i), d3.size(j));
    summa_stage_loop<T>(ctx, ncfg, my_row, my_col, i, j, a, b, blk.block);
    push_block_tile(blk, out);
  }
};

struct Grid3dTraits {
  using Config = Grid3dConfig;
  static i64 active_ranks(const Config& c) { return c.grid.total(); }
  static core::Grid3 grid_of(const Config& c) { return c.grid; }
  static Config plan_at(const Config& base, i64 maxp) {
    return grid3d_plan_at(base, maxp);
  }
  static coll::PanelSet panels(const Config& c, int logical) {
    return grid3d_panels(c, logical);
  }
  static i64 exec_recv_elems(const Config& c, int logical) {
    return grid3d_predicted_recv_words(c, logical);
  }

  template <typename T>
  static void run_base(RankCtx& ctx, const Config& cfg,
                       ElasticRankOutputT<T>& out) {
    Grid3dRankOutputT<T> res = grid3d_rank<T>(ctx, cfg);
    push_chunk_tile(res.c_chunk, std::move(res.c_data), out);
  }

  template <typename T>
  static void exec(RankCtx& ctx, const Config& ncfg,
                   const std::vector<int>& actives, int L, std::vector<T> a,
                   std::vector<T> b, ElasticRankOutputT<T>& out) {
    const GridMap map(ncfg.grid);
    const auto [q1, q2, q3] = map.coords_of(L);
    const auto to_machine = [&](std::vector<int> logicals) {
      for (int& r : logicals) r = actives[static_cast<std::size_t>(r)];
      return logicals;
    };
    // Fibers in axis order, mirroring GridComm's construction sequence so
    // the recovery leases line up across actives.
    const coll::Comm f0 =
        coll::Comm::recovery(ctx, to_machine(map.fiber(0, q1, q2, q3)));
    const coll::Comm f1 =
        coll::Comm::recovery(ctx, to_machine(map.fiber(1, q1, q2, q3)));
    const coll::Comm f2 =
        coll::Comm::recovery(ctx, to_machine(map.fiber(2, q1, q2, q3)));
    const Grid3dLayout layout = grid3d_layout(ncfg, L);
    Grid3dRankOutputT<T> res = grid3d_core<T>(ctx, ncfg, layout, f2, f0, f1,
                                              std::move(a), std::move(b));
    push_chunk_tile(res.c_chunk, std::move(res.c_data), out);
  }
};

struct Alg25dTraits {
  using Config = Alg25dConfig;
  static i64 active_ranks(const Config& c) { return c.g * c.g * c.c; }
  static core::Grid3 grid_of(const Config& c) { return {c.c, c.g, c.g}; }
  static Config plan_at(const Config& base, i64 maxp) {
    return alg25d_plan_at(base, maxp);
  }
  static coll::PanelSet panels(const Config& c, int logical) {
    return alg25d_panels(c, logical);
  }
  static i64 exec_recv_elems(const Config& c, int logical) {
    return alg25d_predicted_recv_words(c, logical);
  }

  template <typename T>
  static void run_base(RankCtx& ctx, const Config& cfg,
                       ElasticRankOutputT<T>& out) {
    push_block_tile(alg25d_rank<T>(ctx, cfg), out);
  }

  template <typename T>
  static void exec(RankCtx& ctx, const Config& ncfg,
                   const std::vector<int>& actives, int L, std::vector<T> a,
                   std::vector<T> b, ElasticRankOutputT<T>& out) {
    const GridMap map(core::Grid3{ncfg.c, ncfg.g, ncfg.g});
    const auto [l, i, j] = map.coords_of(L);
    const auto to_machine = [&](std::vector<int> logicals) {
      for (int& r : logicals) r = actives[static_cast<std::size_t>(r)];
      return logicals;
    };
    const coll::Comm depth =
        coll::Comm::recovery(ctx, to_machine(map.fiber(0, l, i, j)));
    const coll::Comm my_col =
        coll::Comm::recovery(ctx, to_machine(map.fiber(1, l, i, j)));
    const coll::Comm my_row =
        coll::Comm::recovery(ctx, to_machine(map.fiber(2, l, i, j)));
    std::vector<T> c_sum = alg25d_core<T>(ctx, ncfg, i, j, l, depth, my_row,
                                          my_col, std::move(a), std::move(b));
    if (l != 0) return;
    const BlockDist1D d1(ncfg.shape.n1, ncfg.g), d3(ncfg.shape.n3, ncfg.g);
    BlockChunk chunk;
    chunk.row0 = d1.start(i);
    chunk.col0 = d3.start(j);
    chunk.rows = d1.size(i);
    chunk.cols = d3.size(j);
    chunk.flat_start = 0;
    chunk.flat_size = chunk.rows * chunk.cols;
    push_chunk_tile(chunk, std::move(c_sum), out);
  }
};

/// The elastic driver (identical for the three algorithms modulo Traits).
/// See elastic.hpp for the protocol narrative; the invariants that make it
/// safe are marked inline.
template <typename Traits, typename T>
ElasticRankOutputT<T> elastic_rank_impl(RankCtx& ctx,
                                        typename Traits::Config cfg,
                                        const ElasticConfig& ecfg) {
  // Integer-valued inputs whenever T rounds: sums become exact and
  // order-independent, so attempt-0 tiles and any new-grid tiles agree
  // bit for bit (the mixed retire/recover case depends on this).
  if constexpr (!ScalarTraits<T>::exact) cfg.integer_inputs = true;
  const int nprocs = ctx.nprocs();
  const int me = ctx.rank();
  CAMB_CHECK_MSG(Traits::active_ranks(cfg) == nprocs,
                 "elastic: base grid must cover the machine");
  CAMB_CHECK_MSG(ecfg.max_failures >= 0 && ecfg.max_failures <= 30,
                 "elastic: max_failures must be in [0, 30] (tag-band budget)");

  // Attempt-0 holdings, kept for the lifetime of the run: every recovery
  // round regrids from the ORIGINAL placement, so the migration bill is a
  // closed form of the failed set alone.
  const auto fill = make_elastic_fill<T>(cfg.shape, cfg.integer_inputs);
  const coll::PanelSet my_panels = Traits::panels(cfg, me);
  const std::vector<T> old_a = fill_panels<T>(fill, my_panels, 0);
  const std::vector<T> old_b = fill_panels<T>(fill, my_panels, 1);

  ElasticRankOutputT<T> out;
  bool clean = false;
  {
    // World comm first (lease #1 everywhere), probe tags up front.
    coll::Comm world = coll::Comm::world(ctx);
    const int tag_a = world.take_tag_block();
    const int tag_b = world.take_tag_block();
    const int tag_done = world.take_tag_block();
    try {
      // Two enlistment rounds: a rank that dies in round A sends no round-B
      // OK, so entry into recovery is unanimous before any data moves.
      if (probe_round(world, kPhaseElasticEnlist, tag_a) &&
          probe_round(world, kPhaseElasticEnlist, tag_b)) {
        Traits::template run_base<T>(ctx, cfg, out);
        clean = probe_round(world, kPhaseElasticConfirm, tag_done);
      }
    } catch (const PeerFailedError&) {
      clean = false;
    }
  }
  if (clean) {
    // Retire: every tag of this rank is dead to stragglers, so a peer that
    // still enters recovery reads this rank as gone and regenerates.
    ctx.abandon_below(kTagSpaceLimit);
    out.survivors = nprocs;
    out.active_ranks = nprocs;
    out.final_grid = Traits::grid_of(cfg);
    return out;
  }
  out.c_chunks.clear();
  out.c_data.clear();
  // Cascade: peers blocked on this rank's algorithm tags fail over now.
  ctx.abandon();

  std::vector<int> everyone_ranks(static_cast<std::size_t>(nprocs));
  std::iota(everyone_ranks.begin(), everyone_ranks.end(), 0);

  for (int round = 1; round <= ecfg.max_failures + 1; ++round) {
    // Realign the recovery cursor to this round's band: survivors stuck in
    // different per-round lease histories (idle vs active) agree again.
    ctx.tags().set_recovery_cursor(elastic_band_base(round));
    ctx.set_phase(kPhaseElasticShrink);
    coll::Comm everyone = coll::Comm::recovery(ctx, everyone_ranks);
    coll::ShrinkResult agreed =
        coll::shrink(everyone, ecfg.max_failures, /*i_abandoned=*/true);
    const coll::Comm& surv = agreed.survivors;
    // Pre-draw the confirm tag: the exec leases below are active-only, and
    // the confirm round must stay in lockstep with idle survivors.
    const int tag_confirm = surv.take_tag_block();

    const i64 pprime = surv.size();
    const typename Traits::Config ncfg = Traits::plan_at(cfg, pprime);
    const i64 nact = Traits::active_ranks(ncfg);
    CAMB_CHECK(nact >= 1 && nact <= pprime);
    const std::vector<int> actives(surv.ranks().begin(),
                                   surv.ranks().begin() + nact);
    const int L = surv.my_index() < nact ? surv.my_index() : -1;

    const coll::RegridPlan plan =
        make_regrid_plan<Traits>(cfg, ncfg, surv.ranks(), nact, nprocs);
    coll::RegridResult<T> moved =
        coll::regrid<T>(surv, plan, old_a, old_b, fill);

    bool healed = false;
    try {
      if (L >= 0) {
        Traits::template exec<T>(ctx, ncfg, actives, L, std::move(moved.a),
                                 std::move(moved.b), out);
      }
      healed = probe_round(surv, kPhaseElasticConfirm, tag_confirm);
    } catch (const PeerFailedError&) {
      healed = false;
    }
    if (healed) {
      ctx.abandon_below(kTagSpaceLimit);  // retire
      out.rounds = round;
      out.idle = L < 0;
      out.failed = agreed.failed;
      out.survivors = pprime;
      out.active_ranks = nact;
      out.final_grid = Traits::grid_of(ncfg);
      out.migrated_elems = moved.migrated_elems;
      out.regenerated_elems = moved.regenerated_elems;
      out.local_elems = moved.local_elems;
      return out;
    }
    out.c_chunks.clear();
    out.c_data.clear();
    // This round's band is dead to everyone; round r+1 tags still flow.
    ctx.abandon_below(elastic_band_base(round + 1));
  }
  // Unreachable unless more than max_failures distinct deaths struck: every
  // retried round is rooted in a death during the previous one.
  throw Error("elastic: recovery did not converge within max_failures rounds");
}

/// The enlistment-crash prediction mirror (shared by the three wrappers).
template <typename Traits>
ElasticPrediction predict_impl(const typename Traits::Config& base,
                               const ElasticConfig& ecfg,
                               const std::vector<int>& failed, int nprocs,
                               double width_words) {
  CAMB_CHECK_MSG(Traits::active_ranks(base) == nprocs,
                 "elastic prediction: base grid must cover the machine");
  ElasticPrediction pred;
  pred.rank_recv_words.assign(static_cast<std::size_t>(nprocs), 0.0);
  pred.rank_migration_words.assign(static_cast<std::size_t>(nprocs), 0.0);
  pred.rank_exec_words.assign(static_cast<std::size_t>(nprocs), 0.0);
  if (failed.empty()) {
    // Clean elastic run: the base algorithm's words exactly (enlistment and
    // confirm probes are zero-word).
    pred.survivors = nprocs;
    pred.active_ranks = nprocs;
    pred.grid = Traits::grid_of(base);
    for (int r = 0; r < nprocs; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      pred.rank_exec_words[ur] = width_words * Traits::exec_recv_elems(base, r);
      pred.rank_recv_words[ur] = pred.rank_exec_words[ur];
    }
    return pred;
  }
  std::vector<char> dead(static_cast<std::size_t>(nprocs), 0);
  for (int f : failed) {
    CAMB_CHECK_MSG(f >= 0 && f < nprocs, "elastic prediction: bad failed rank");
    dead[static_cast<std::size_t>(f)] = 1;
  }
  std::vector<int> survivors;
  for (int r = 0; r < nprocs; ++r) {
    if (!dead[static_cast<std::size_t>(r)]) survivors.push_back(r);
  }
  CAMB_CHECK_MSG(!survivors.empty(), "elastic prediction: nobody survives");
  const typename Traits::Config ncfg =
      Traits::plan_at(base, static_cast<i64>(survivors.size()));
  const i64 nact = Traits::active_ranks(ncfg);
  pred.survivors = static_cast<i64>(survivors.size());
  pred.active_ranks = nact;
  pred.grid = Traits::grid_of(ncfg);
  pred.shrink_words = static_cast<double>(elastic_shrink_recv_words_exact(
      nprocs, ecfg.max_failures, static_cast<int>(failed.size())));
  const coll::RegridPlan plan =
      make_regrid_plan<Traits>(base, ncfg, survivors, nact, nprocs);
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    const auto m = static_cast<std::size_t>(survivors[s]);
    pred.rank_migration_words[m] =
        width_words * coll::regrid_recv_elems_exact(plan, survivors[s]);
    pred.rank_exec_words[m] =
        static_cast<i64>(s) < nact
            ? width_words * Traits::exec_recv_elems(ncfg, static_cast<int>(s))
            : 0.0;
    pred.rank_recv_words[m] = pred.shrink_words + pred.rank_migration_words[m] +
                              pred.rank_exec_words[m];
  }
  return pred;
}

}  // namespace

SummaConfig summa_plan_at(const SummaConfig& base, i64 max_procs) {
  CAMB_CHECK_MSG(max_procs >= 1, "elastic re-plan needs at least one rank");
  SummaConfig ncfg = base;
  ncfg.g = std::max<i64>(1, isqrt(max_procs));
  return ncfg;
}

Grid3dConfig grid3d_plan_at(const Grid3dConfig& base, i64 max_procs) {
  CAMB_CHECK_MSG(max_procs >= 1, "elastic re-plan needs at least one rank");
  Grid3dConfig ncfg = base;
  // Through the planner service: every survivor of the same failure re-plans
  // the same (shape, P′), so the memoized search answers all but the first.
  ncfg.grid =
      planner::GridPlanner::instance().best_integer_grid_at_most(base.shape,
                                                                 max_procs);
  return ncfg;
}

Alg25dConfig alg25d_plan_at(const Alg25dConfig& base, i64 max_procs) {
  CAMB_CHECK_MSG(max_procs >= 1, "elastic re-plan needs at least one rank");
  // Same scoring rule as core::best_integer_grid_at_most: 2.5D words plus
  // the γ/β compute share, so the search cannot collapse to one rank just
  // because a single rank moves zero words.
  const double flops = 2.0 * static_cast<double>(base.shape.n1) *
                       static_cast<double>(base.shape.n2) *
                       static_cast<double>(base.shape.n3);
  Alg25dConfig best = base;
  best.g = 1;
  best.c = 1;
  double best_cost = std::numeric_limits<double>::infinity();
  i64 best_total = 0;
  for (i64 g = 1; g * g <= max_procs; ++g) {
    for (i64 c = 1; c <= g && g * g * c <= max_procs; ++c) {
      if (g % c != 0) continue;
      Alg25dConfig cand = base;
      cand.g = g;
      cand.c = c;
      const i64 total = g * g * c;
      const double cost = alg25d_cost_words(cand) +
                          core::kPlanGammaOverBeta * flops /
                              static_cast<double>(total);
      // Lowest score; ties to more ranks; iteration order makes the first
      // full tie the lexicographically smallest (g, c).
      if (cost < best_cost || (cost == best_cost && total > best_total)) {
        best = cand;
        best_cost = cost;
        best_total = total;
      }
    }
  }
  return best;
}

coll::PanelSet summa_panels(const SummaConfig& cfg, int logical) {
  coll::PanelSet set;
  const i64 g = cfg.g;
  if (logical < 0 || logical >= g * g) return set;
  const i64 i = logical / g, j = logical % g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);
  append_block_spans(set, 0, d1, i, d2, j, cfg.shape.n2);
  append_block_spans(set, 1, d2, i, d3, j, cfg.shape.n3);
  return set;
}

coll::PanelSet grid3d_panels(const Grid3dConfig& cfg, int logical) {
  coll::PanelSet set;
  if (logical < 0 || logical >= cfg.grid.total()) return set;
  const Grid3dLayout layout = grid3d_layout(cfg, logical);
  append_chunk_spans(set, 0, layout.a, cfg.shape.n2);
  append_chunk_spans(set, 1, layout.b, cfg.shape.n3);
  return set;
}

coll::PanelSet alg25d_panels(const Alg25dConfig& cfg, int logical) {
  coll::PanelSet set;
  const i64 g = cfg.g;
  if (logical < 0 || logical >= g * g * cfg.c) return set;
  const i64 l = logical / (g * g);
  if (l != 0) return set;  // one input copy, on layer 0
  const i64 i = (logical / g) % g, j = logical % g;
  const BlockDist1D d1(cfg.shape.n1, g), d2(cfg.shape.n2, g),
      d3(cfg.shape.n3, g);
  append_block_spans(set, 0, d1, i, d2, j, cfg.shape.n2);
  append_block_spans(set, 1, d2, i, d3, j, cfg.shape.n3);
  return set;
}

template <typename T>
ElasticRankOutputT<T> summa_elastic_rank(RankCtx& ctx, const SummaConfig& cfg,
                                         const ElasticConfig& ecfg) {
  return elastic_rank_impl<SummaTraits, T>(ctx, cfg, ecfg);
}

template <typename T>
ElasticRankOutputT<T> grid3d_elastic_rank(RankCtx& ctx,
                                          const Grid3dConfig& cfg,
                                          const ElasticConfig& ecfg) {
  return elastic_rank_impl<Grid3dTraits, T>(ctx, cfg, ecfg);
}

template <typename T>
ElasticRankOutputT<T> alg25d_elastic_rank(RankCtx& ctx,
                                          const Alg25dConfig& cfg,
                                          const ElasticConfig& ecfg) {
  return elastic_rank_impl<Alg25dTraits, T>(ctx, cfg, ecfg);
}

#define CAMB_INSTANTIATE(T)                                          \
  template ElasticRankOutputT<T> summa_elastic_rank<T>(              \
      RankCtx&, const SummaConfig&, const ElasticConfig&);           \
  template ElasticRankOutputT<T> grid3d_elastic_rank<T>(             \
      RankCtx&, const Grid3dConfig&, const ElasticConfig&);          \
  template ElasticRankOutputT<T> alg25d_elastic_rank<T>(             \
      RankCtx&, const Alg25dConfig&, const ElasticConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

ElasticPrediction summa_elastic_prediction(const SummaConfig& base,
                                           const ElasticConfig& ecfg,
                                           const std::vector<int>& failed,
                                           int nprocs, double width_words) {
  return predict_impl<SummaTraits>(base, ecfg, failed, nprocs, width_words);
}

ElasticPrediction grid3d_elastic_prediction(const Grid3dConfig& base,
                                            const ElasticConfig& ecfg,
                                            const std::vector<int>& failed,
                                            int nprocs, double width_words) {
  return predict_impl<Grid3dTraits>(base, ecfg, failed, nprocs, width_words);
}

ElasticPrediction alg25d_elastic_prediction(const Alg25dConfig& base,
                                            const ElasticConfig& ecfg,
                                            const std::vector<int>& failed,
                                            int nprocs, double width_words) {
  return predict_impl<Alg25dTraits>(base, ecfg, failed, nprocs, width_words);
}

}  // namespace camb::mm
