// distribution.hpp — data distributions for the parallel algorithms.
//
// Two layers:
//  * BlockDist1D — near-equal contiguous split of a 1D index range (the
//    first `total mod parts` pieces get one extra element), used both to
//    split matrix dimensions across grid axes and to spread a flattened
//    block across a fiber (the "distributed evenly across processors
//    (p1', p2', :)" of §5);
//  * GridMap — the logical p1×p2×p3 grid: rank <-> coordinate conversion and
//    fiber enumeration (the collective groups of Algorithm 1).
#pragma once

#include <vector>

#include "core/grid.hpp"
#include "util/math.hpp"

namespace camb::mm {

using camb::i64;
using camb::core::Grid3;
using camb::core::Shape;

/// Near-equal contiguous split of [0, total) into `parts` pieces.
class BlockDist1D {
 public:
  BlockDist1D(i64 total, i64 parts);

  i64 total() const { return total_; }
  i64 parts() const { return parts_; }

  /// Size of piece i (either base or base+1).
  i64 size(i64 i) const;
  /// Start offset of piece i.
  i64 start(i64 i) const;
  /// One-past-the-end offset of piece i.
  i64 end(i64 i) const { return start(i) + size(i); }
  /// Which piece owns global index g.
  i64 owner(i64 g) const;
  /// All piece sizes as a counts vector (for collectives).
  std::vector<i64> counts() const;

 private:
  i64 total_, parts_, base_, extra_;
};

/// The logical 3D processor grid of Algorithm 1.
class GridMap {
 public:
  explicit GridMap(const Grid3& grid);

  const Grid3& grid() const { return grid_; }
  i64 nprocs() const { return grid_.total(); }

  /// Row-major rank of coordinate (q1, q2, q3).
  int rank_of(i64 q1, i64 q2, i64 q3) const;
  /// Coordinate of a rank.
  std::array<i64, 3> coords_of(int rank) const;

  /// The fiber through (q1, q2, q3) along the given axis (0, 1, or 2):
  /// the ranks of all coordinates equal in the other two axes, in axis order.
  /// These are the collective groups of Algorithm 1 (axis 2 fiber for the A
  /// All-Gather, axis 0 for B, axis 1 for the C Reduce-Scatter).
  std::vector<int> fiber(int axis, i64 q1, i64 q2, i64 q3) const;

 private:
  Grid3 grid_;
};

/// Metadata describing the sub-block of a matrix owned collectively by a
/// grid fiber, and this rank's flat chunk within it.
struct BlockChunk {
  i64 row0 = 0, col0 = 0;   ///< block origin in the global matrix
  i64 rows = 0, cols = 0;   ///< block extent
  i64 flat_start = 0;       ///< this rank's chunk start within the flattened block
  i64 flat_size = 0;        ///< this rank's chunk size

  i64 block_size() const { return rows * cols; }
};

/// Fill a flat chunk of a block with the deterministic indexed pattern used
/// for verification (matches Matrix<T>::fill_indexed on the full matrix: the
/// same index-hash unit draw, mapped through ScalarTraits<T>::from_unit).
/// Defined for the CAMB_FOR_EACH_SCALAR set via explicit instantiation.
template <typename T = double>
std::vector<T> fill_chunk_indexed(const BlockChunk& chunk);

/// Integer-valued variant (matches Matrix::fill_indexed_int): entries are
/// small integers, so distributed sums are exact and order-independent.
/// The f64 ABFT algorithms generate their inputs with this pattern, which is
/// what licenses bit-identical checksum reconstruction after a crash.  For
/// T = i64 the plain fill_chunk_indexed already yields exact small integers
/// (ScalarTraits<i64>::from_unit), so this double-valued workaround is only
/// needed when integers must ride in doubles.  The templated form casts the
/// same small-integer draw into T (exact for every supported scalar).
template <typename T = double>
std::vector<T> fill_chunk_indexed_int(const BlockChunk& chunk);

}  // namespace camb::mm
