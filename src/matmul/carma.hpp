// carma.hpp — the recursive communication-avoiding algorithm of Demmel et
// al. (2013), the work whose asymptotic three-case bounds Theorem 3 tightens
// (§2.3, §6.1: "Demmel et al. present and analyze their recursive algorithm
// to show its asymptotic optimality in all three cases, but they do not
// track constants").
//
// BFS-only CARMA for P = 2^levels: at every node the processor group halves
// and the largest of the three current dimensions is split:
//
//   M-split (rows of A/C):    no data motion — the row-distributed A and the
//                             eventual C halves already align with the halves
//                             of the group; B is replicated into both halves.
//   N-split (cols of B/C):    mirror image — A replicated, B column-halved.
//   K-split (the contraction): A is column-halved across the group halves
//                             (B's row halves already align); on unwind the
//                             two halves' partial C results are summed by a
//                             pairwise exchange-and-add.
//
// Invariants: at every node, A and B are distributed over the node's group
// in contiguous row blocks; each rank finishes with one contiguous flat
// range of one rectangular sub-block of C.  Divisibility (n1, n2, n3 all
// divisible by 2^levels) is required, matching the paper-style analysis.
//
// Every exchange is deterministic, so carma_predicted_recv_words replays the
// recursion without data and matches the executed machine word-for-word —
// letting the benches place CARMA's constants next to Algorithm 1's.
#pragma once

#include "collectives/rollback.hpp"
#include "machine/machine.hpp"
#include "matmul/distribution.hpp"
#include "util/matrix.hpp"

namespace camb::mm {

struct CarmaConfig {
  Shape shape;
  int levels = 0;  ///< P = 2^levels ranks
};

/// A rank's final piece of C: a contiguous flat range of a C sub-block.
template <typename T>
struct CarmaRankOutputT {
  BlockChunk holding;
  std::vector<T> data;
};
using CarmaRankOutput = CarmaRankOutputT<double>;

/// SPMD body for one rank (inputs generated in place at the root
/// distribution, so all measured traffic is the algorithm's own).
/// Templated over the scalar (CAMB_FOR_EACH_SCALAR set).
template <typename T = double>
CarmaRankOutputT<T> carma_rank(RankCtx& ctx, const CarmaConfig& cfg);

/// Exact predicted received words per rank (replays the recursion).
std::vector<i64> carma_predicted_recv_words(const CarmaConfig& cfg);

/// Which splits the recursion performs, in order ('M', 'K', or 'N') —
/// exposed for tests and for reasoning about the constants.
std::vector<char> carma_split_sequence(const CarmaConfig& cfg);

/// True iff the configuration satisfies CARMA's divisibility requirements.
bool carma_supported(const Shape& shape, int levels);

/// Checkpointable twin: one boundary per recursion level (snapshots carry
/// the current A and B holdings).  A resumed rank replays the skipped
/// levels' split geometry and comm leases locally — no communication — so
/// the unwind's combine frames are rebuilt exactly.
template <typename T>
CarmaRankOutputT<T> carma_ckpt_rank(ckpt::SessionT<T>& session,
                                    const CarmaConfig& cfg);

i64 carma_ckpt_steps(const CarmaConfig& cfg);
i64 carma_ckpt_snapshot_words(const CarmaConfig& cfg, int logical, i64 step);

inline constexpr const char* kPhaseCarmaSplit = "carma_split";
inline constexpr const char* kPhaseCarmaGemm = "carma_gemm";
inline constexpr const char* kPhaseCarmaCombine = "carma_combine";

}  // namespace camb::mm
