// alg25d.hpp — the 2.5D algorithm of Solomonik & Demmel (2011), the
// classical memory-for-communication trade-off baseline (§2.4, §6.2).
//
// P = g*g*c processors form a g×g×c grid (c "replication layers", c | g).
// One copy of A and B starts on layer 0 (so the lower bound's one-copy
// assumption holds); the algorithm explicitly replicates them c-fold:
//
//   1. depth-broadcast A_{ij}, B_{ij} from layer 0 to all layers,
//   2. per-layer initial skew so layer l starts at k-offset l*(g/c),
//   3. g/c Cannon-style multiply+shift steps within each layer,
//   4. depth-reduce the partial C blocks back onto layer 0.
//
// Per-rank communication is ~ 2 n^2 / sqrt(cP) for square problems: more
// memory (c copies) buys less communication, interpolating between Cannon
// (c = 1) and the 3D algorithm (c = g).  Algorithm 1 on a matched grid
// achieves the same bandwidth with one collective per matrix, which is the
// §2.4 point that 3D-style algorithms subsume 2.5D.
#pragma once

#include "matmul/distribution.hpp"
#include "matmul/summa.hpp"

namespace camb::mm {

struct Alg25dConfig {
  Shape shape;
  i64 g = 1;  ///< layer grid edge
  i64 c = 1;  ///< replication depth; requires c | g, machine size g*g*c
  /// Generate inputs with the integer-valued indexed pattern (exact,
  /// order-independent sums).  The elastic wrapper forces this on so C is
  /// bit-identical across grids.
  bool integer_inputs = false;
};

/// A rank's output: layer-0 ranks return their full C block; other layers
/// return an empty block (the output lives in one copy, on layer 0).
template <typename T = double>
Block2DOutputT<T> alg25d_rank(RankCtx& ctx, const Alg25dConfig& cfg);

/// Steps 1–4 for logical position (i, j, l), parameterized by the three
/// fiber comms and the layer-0 holdings (empty off layer 0), so the same
/// code runs on the world grid (alg25d_rank) and on a survivors' recovery
/// grid (the elastic twin).  Returns the reduced C block values (layer 0)
/// or an empty vector (other layers).
template <typename T>
std::vector<T> alg25d_core(RankCtx& ctx, const Alg25dConfig& cfg, i64 i, i64 j,
                           i64 l, const coll::Comm& depth,
                           const coll::Comm& my_row, const coll::Comm& my_col,
                           std::vector<T> a_held, std::vector<T> b_held);

/// Exact predicted received words for `rank`.
i64 alg25d_predicted_recv_words(const Alg25dConfig& cfg, int rank);

/// Checkpointable twin: replicate + skew prologue at epoch 0 only, one
/// boundary per in-layer Cannon step, depth-reduce epilogue.
template <typename T>
Block2DOutputT<T> alg25d_ckpt_rank(ckpt::SessionT<T>& session,
                                   const Alg25dConfig& cfg);

i64 alg25d_ckpt_steps(const Alg25dConfig& cfg);
i64 alg25d_ckpt_snapshot_words(const Alg25dConfig& cfg, int logical, i64 step);

/// Analytic per-rank communication (critical path, equal blocks): the
/// classical 2.5D cost expression, for the comparison benches.
double alg25d_cost_words(const Alg25dConfig& cfg);

/// Memory words per rank: the c-fold replicated inputs plus the C partial.
double alg25d_memory_words(const Alg25dConfig& cfg);

inline constexpr const char* kPhase25dReplicate = "alg25d_replicate";
inline constexpr const char* kPhase25dSkew = "alg25d_skew";
inline constexpr const char* kPhase25dShift = "alg25d_shift";
inline constexpr const char* kPhase25dGemm = "alg25d_gemm";
inline constexpr const char* kPhase25dReduce = "alg25d_reduce";

}  // namespace camb::mm
