#include "matmul/time_model.hpp"

namespace camb::mm {

using camb::core::alg1_comm_breakdown;
using camb::core::alg1_flops;
using camb::core::alg1_reduction_flops;

TimeBreakdown alg1_time(const Shape& shape, const Grid3& grid,
                        const MachineParams& params, coll::AllgatherAlgo ag,
                        coll::ReduceScatterAlgo rs) {
  TimeBreakdown t;
  const auto comm = alg1_comm_breakdown(shape, grid);
  t.bandwidth = params.beta * comm.total();
  const i64 messages =
      coll::allgather_rounds(static_cast<int>(grid.p3), ag) +
      coll::allgather_rounds(static_cast<int>(grid.p1), ag) +
      coll::reduce_scatter_rounds(static_cast<int>(grid.p2), rs);
  t.latency = params.alpha * static_cast<double>(messages);
  t.compute = params.gamma *
              (alg1_flops(shape, grid) + alg1_reduction_flops(shape, grid));
  return t;
}

TimeBreakdown alg1_staged_time(const Shape& shape, const Grid3& grid,
                               i64 stages, const MachineParams& params,
                               coll::AllgatherAlgo ag,
                               coll::ReduceScatterAlgo rs) {
  TimeBreakdown t = alg1_time(shape, grid, params, ag, rs);
  const i64 staged_messages =
      coll::allgather_rounds(static_cast<int>(grid.p1), ag) +
      stages * (coll::allgather_rounds(static_cast<int>(grid.p3), ag) +
                coll::reduce_scatter_rounds(static_cast<int>(grid.p2), rs));
  t.latency = params.alpha * static_cast<double>(staged_messages);
  return t;
}

TimeBreakdown summa_time(const Shape& shape, i64 g,
                         const MachineParams& params) {
  TimeBreakdown t;
  const auto n1 = static_cast<double>(shape.n1);
  const auto n2 = static_cast<double>(shape.n2);
  const auto n3 = static_cast<double>(shape.n3);
  const auto gd = static_cast<double>(g);
  // Each rank receives g-1 A panels and g-1 B panels, and each stage's
  // broadcast root serializes ceil(log2 g) sends.
  t.bandwidth = params.beta * (1.0 - 1.0 / gd) * (n1 * n2 + n2 * n3) / gd;
  t.latency = params.alpha * 2.0 * static_cast<double>(g) *
              coll::ceil_log2(static_cast<int>(g));
  t.compute = params.gamma * n1 * n2 * n3 / (gd * gd);
  return t;
}

TimeBreakdown cannon_time(const Shape& shape, i64 g,
                          const MachineParams& params) {
  TimeBreakdown t;
  const auto n1 = static_cast<double>(shape.n1);
  const auto n2 = static_cast<double>(shape.n2);
  const auto n3 = static_cast<double>(shape.n3);
  const auto gd = static_cast<double>(g);
  // Skew (one block each of A and B) plus g-1 shifts of both.
  const double blocks_moved = g > 1 ? static_cast<double>(g) : 0.0;
  t.bandwidth =
      params.beta * blocks_moved * (n1 * n2 + n2 * n3) / (gd * gd);
  t.latency = params.alpha * (g > 1 ? 2.0 * static_cast<double>(g) : 0.0);
  t.compute = params.gamma * n1 * n2 * n3 / (gd * gd);
  return t;
}

double measured_time(const RunReport& report, double flops_per_rank,
                     const MachineParams& params) {
  return params.alpha * static_cast<double>(report.measured_critical_messages) +
         params.beta * static_cast<double>(report.measured_critical_recv) +
         params.gamma * flops_per_rank;
}

}  // namespace camb::mm
