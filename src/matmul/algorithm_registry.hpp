// algorithm_registry.hpp — every parallel multiplication algorithm in the
// library behind one uniform interface.
//
// The registry is how sweeping clients (the randomized stress tests, the
// baseline benches, downstream users comparing algorithms) enumerate what is
// available, check applicability for a (shape, P), and run it — without
// hard-coding each algorithm's configuration type.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "matmul/runner.hpp"

namespace camb::mm {

struct AlgorithmInfo {
  std::string name;
  /// True iff the algorithm can run this (shape, P) — e.g. SUMMA needs a
  /// square P, 2.5D needs P = g*g*c with c | g.
  std::function<bool(const Shape& shape, i64 nprocs)> supports;
  /// Execute on the simulated machine (picks its own grid/config details).
  std::function<RunReport(const Shape& shape, i64 nprocs, bool verify)> run;
  /// Execute with full run options (verification mode, fault injection /
  /// schedule perturbation, master seed) — the stress-sweep entry point.
  std::function<RunReport(const Shape& shape, i64 nprocs,
                          const RunOptions& opts)>
      run_opts;
  /// True for algorithms expected to attain the lower bound on divisible
  /// optimal-grid configurations (Algorithm 1 and its variants).
  bool bandwidth_optimal = false;
};

/// All registered algorithms, stable order.
const std::vector<AlgorithmInfo>& algorithm_registry();

/// Lookup by name; throws camb::Error if absent.
const AlgorithmInfo& algorithm_by_name(const std::string& name);

}  // namespace camb::mm
