// grid3d.hpp — Algorithm 1: communication-optimal parallel matrix
// multiplication on a p1×p2×p3 logical processor grid (§5).
//
//   1. All-Gather A_{q1 q2} across the fiber (q1, q2, :)        [line 3]
//   2. All-Gather B_{q2 q3} across the fiber (:, q2, q3)        [line 4]
//   3. Local multiply D = A_{q1 q2} · B_{q2 q3}                 [line 6]
//   4. Reduce-Scatter D across the fiber (q1, :, q3) → C chunk  [line 8]
//
// With the §5.2 optimal grid this attains the Theorem 3 lower bound exactly
// (under divisibility), which is what proves the constants tight.  Grids
// with p_i = 1 degenerate to 2D and 1D algorithms with zero cost for the
// corresponding collective, exactly as in the paper's case analysis.
#pragma once

#include "collectives/allgather.hpp"
#include "collectives/reduce_scatter.hpp"
#include "collectives/rollback.hpp"
#include "matmul/distribution.hpp"
#include "util/matrix.hpp"

namespace camb::mm {

struct Grid3dConfig {
  Shape shape;
  Grid3 grid;
  coll::AllgatherAlgo allgather = coll::AllgatherAlgo::kAuto;
  coll::ReduceScatterAlgo reduce_scatter = coll::ReduceScatterAlgo::kAuto;
  /// Generate inputs with the integer-valued indexed pattern (exact,
  /// order-independent sums).  The ABFT wrapper forces this on.
  bool integer_inputs = false;
};

/// A rank's piece of the output: a flat chunk of its C block.
template <typename T>
struct Grid3dRankOutputT {
  BlockChunk c_chunk;
  std::vector<T> c_data;
};
using Grid3dRankOutput = Grid3dRankOutputT<double>;

/// The chunk layout for one rank (which flat parts of which blocks of A, B,
/// and C the rank owns initially / finally).
struct Grid3dLayout {
  BlockChunk a, b, c;
  std::vector<i64> a_counts, b_counts, c_counts;  ///< fiber chunk sizes
};

/// Computes the data layout of `rank` under the configuration.
Grid3dLayout grid3d_layout(const Grid3dConfig& cfg, int rank);

/// SPMD body of Algorithm 1 for one rank.  Inputs are generated locally with
/// the deterministic indexed pattern (no distribution traffic), so all
/// measured communication is the algorithm's own.  Templated over the
/// scalar (CAMB_FOR_EACH_SCALAR set); the default keeps legacy double call
/// sites source-compatible.
template <typename T = double>
Grid3dRankOutputT<T> grid3d_rank(RankCtx& ctx, const Grid3dConfig& cfg);

/// The four-step body of Algorithm 1 parameterized by its three fiber comms
/// and pre-filled local chunks, so the same code runs on the world grid
/// (grid3d_rank) and on a survivors' recovery grid (the elastic twin).
/// `layout` must be this rank's logical layout; `fiber_a` is the comm of
/// the (q1, q2, :) fiber, `fiber_b` of (:, q2, q3), `fiber_c` of (q1, :, q3).
template <typename T>
Grid3dRankOutputT<T> grid3d_core(RankCtx& ctx, const Grid3dConfig& cfg,
                                 const Grid3dLayout& layout,
                                 const coll::Comm& fiber_a,
                                 const coll::Comm& fiber_b,
                                 const coll::Comm& fiber_c,
                                 std::vector<T> a_local,
                                 std::vector<T> b_local);

/// Exact predicted words received by `rank`, replicating the collective
/// round structure (matches the executed machine word-for-word).
i64 grid3d_predicted_recv_words(const Grid3dConfig& cfg, int rank);

/// Max of grid3d_predicted_recv_words over all ranks.
i64 grid3d_predicted_critical_recv_words(const Grid3dConfig& cfg);

/// Checkpointable twin: boundaries after the A all-gather, the B all-gather,
/// and the gemm + reduce-scatter.
template <typename T>
Grid3dRankOutputT<T> grid3d_ckpt_rank(ckpt::SessionT<T>& session,
                                      const Grid3dConfig& cfg);

i64 grid3d_ckpt_steps(const Grid3dConfig& cfg);
i64 grid3d_ckpt_snapshot_words(const Grid3dConfig& cfg, int logical, i64 step);

/// Phase labels used by the implementation (for per-phase accounting).
inline constexpr const char* kPhaseAllgatherA = "allgather_A";
inline constexpr const char* kPhaseAllgatherB = "allgather_B";
inline constexpr const char* kPhaseLocalGemm = "local_gemm";
inline constexpr const char* kPhaseReduceScatterC = "reduce_scatter_C";

}  // namespace camb::mm
