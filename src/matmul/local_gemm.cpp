#include "matmul/local_gemm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace camb::mm {

void gemm_accumulate(const MatrixD& a, const MatrixD& b, MatrixD& c) {
  CAMB_CHECK_MSG(a.cols() == b.rows(), "inner dimensions must agree");
  CAMB_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(),
                 "output shape mismatch");
  const i64 rows = a.rows(), inner = a.cols(), cols = b.cols();
  for (i64 i0 = 0; i0 < rows; i0 += kGemmTile) {
    const i64 imax = std::min(i0 + kGemmTile, rows);
    for (i64 k0 = 0; k0 < inner; k0 += kGemmTile) {
      const i64 kmax = std::min(k0 + kGemmTile, inner);
      for (i64 j0 = 0; j0 < cols; j0 += kGemmTile) {
        const i64 jmax = std::min(j0 + kGemmTile, cols);
        for (i64 i = i0; i < imax; ++i) {
          for (i64 k = k0; k < kmax; ++k) {
            const double aik = a(i, k);
            const double* brow = b.data() + k * cols;
            double* crow = c.data() + i * cols;
            for (i64 j = j0; j < jmax; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

MatrixD gemm(const MatrixD& a, const MatrixD& b) {
  MatrixD c(a.rows(), b.cols());
  gemm_accumulate(a, b, c);
  return c;
}

}  // namespace camb::mm
