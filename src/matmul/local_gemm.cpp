#include "matmul/local_gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/error.hpp"

// The AVX2 micro-kernel is compiled per-function via the `target` attribute
// and selected at runtime, so the library still runs on any x86-64 (and the
// translation unit's baseline arch stays the build default).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CAMB_GEMM_AVX2_DISPATCH 1
#include <immintrin.h>
#endif

namespace camb::mm {

namespace {

// The micro-kernel computes an mr×nr tile of C over a packed kc×nc panel of
// B.  Accumulators live in registers for the whole k loop; each output
// element sums its products in ascending k — the same order as the
// reference kernel, so the result is bit-identical (absent FMA contraction,
// which the default target arch cannot do).

template <i64 MR>
inline void micro_full(const double* a, i64 lda, const double* bp, i64 nc,
                       double* c, i64 ldc, i64 kc) {
  double acc[MR][kGemmNr];
  for (i64 r = 0; r < MR; ++r) {
    for (i64 v = 0; v < kGemmNr; ++v) acc[r][v] = c[r * ldc + v];
  }
  for (i64 k = 0; k < kc; ++k) {
    const double* brow = bp + k * nc;
    for (i64 r = 0; r < MR; ++r) {
      const double ar = a[r * lda + k];
      for (i64 v = 0; v < kGemmNr; ++v) acc[r][v] += ar * brow[v];
    }
  }
  for (i64 r = 0; r < MR; ++r) {
    for (i64 v = 0; v < kGemmNr; ++v) c[r * ldc + v] = acc[r][v];
  }
}

#ifdef CAMB_GEMM_AVX2_DISPATCH
// AVX2 variant of the 4×8 micro-tile.  Bit-identity with the scalar kernels
// holds by construction: vmulpd/vaddpd round each lane exactly as the scalar
// mul and add do, the k order is unchanged, and fusion into FMA is
// impossible — the function's target is avx2, which does not include FMA.
__attribute__((target("avx2"))) void micro_full_avx2(const double* a, i64 lda,
                                                     const double* bp, i64 nc,
                                                     double* c, i64 ldc,
                                                     i64 kc) {
  static_assert(kGemmMr == 4 && kGemmNr == 8,
                "micro_full_avx2 is written for a 4x8 tile");
  __m256d a0lo = _mm256_loadu_pd(c + 0 * ldc);
  __m256d a0hi = _mm256_loadu_pd(c + 0 * ldc + 4);
  __m256d a1lo = _mm256_loadu_pd(c + 1 * ldc);
  __m256d a1hi = _mm256_loadu_pd(c + 1 * ldc + 4);
  __m256d a2lo = _mm256_loadu_pd(c + 2 * ldc);
  __m256d a2hi = _mm256_loadu_pd(c + 2 * ldc + 4);
  __m256d a3lo = _mm256_loadu_pd(c + 3 * ldc);
  __m256d a3hi = _mm256_loadu_pd(c + 3 * ldc + 4);
  for (i64 k = 0; k < kc; ++k) {
    const double* brow = bp + k * nc;
    const __m256d blo = _mm256_loadu_pd(brow);
    const __m256d bhi = _mm256_loadu_pd(brow + 4);
    __m256d ar = _mm256_set1_pd(a[0 * lda + k]);
    a0lo = _mm256_add_pd(a0lo, _mm256_mul_pd(ar, blo));
    a0hi = _mm256_add_pd(a0hi, _mm256_mul_pd(ar, bhi));
    ar = _mm256_set1_pd(a[1 * lda + k]);
    a1lo = _mm256_add_pd(a1lo, _mm256_mul_pd(ar, blo));
    a1hi = _mm256_add_pd(a1hi, _mm256_mul_pd(ar, bhi));
    ar = _mm256_set1_pd(a[2 * lda + k]);
    a2lo = _mm256_add_pd(a2lo, _mm256_mul_pd(ar, blo));
    a2hi = _mm256_add_pd(a2hi, _mm256_mul_pd(ar, bhi));
    ar = _mm256_set1_pd(a[3 * lda + k]);
    a3lo = _mm256_add_pd(a3lo, _mm256_mul_pd(ar, blo));
    a3hi = _mm256_add_pd(a3hi, _mm256_mul_pd(ar, bhi));
  }
  _mm256_storeu_pd(c + 0 * ldc, a0lo);
  _mm256_storeu_pd(c + 0 * ldc + 4, a0hi);
  _mm256_storeu_pd(c + 1 * ldc, a1lo);
  _mm256_storeu_pd(c + 1 * ldc + 4, a1hi);
  _mm256_storeu_pd(c + 2 * ldc, a2lo);
  _mm256_storeu_pd(c + 2 * ldc + 4, a2hi);
  _mm256_storeu_pd(c + 3 * ldc, a3lo);
  _mm256_storeu_pd(c + 3 * ldc + 4, a3hi);
}
#endif  // CAMB_GEMM_AVX2_DISPATCH

using MicroFullFn = void (*)(const double*, i64, const double*, i64, double*,
                             i64, i64);

MicroFullFn resolve_micro_full() {
#ifdef CAMB_GEMM_AVX2_DISPATCH
  if (__builtin_cpu_supports("avx2")) return micro_full_avx2;
#endif
  return micro_full<kGemmMr>;
}

// Edge micro-tile with runtime mr×nr (bottom rows / rightmost columns).
inline void micro_edge(const double* a, i64 lda, const double* bp, i64 nc,
                       double* c, i64 ldc, i64 kc, i64 mr, i64 nr) {
  double acc[kGemmMr][kGemmNr];
  for (i64 r = 0; r < mr; ++r) {
    for (i64 v = 0; v < nr; ++v) acc[r][v] = c[r * ldc + v];
  }
  for (i64 k = 0; k < kc; ++k) {
    const double* brow = bp + k * nc;
    for (i64 r = 0; r < mr; ++r) {
      const double ar = a[r * lda + k];
      for (i64 v = 0; v < nr; ++v) acc[r][v] += ar * brow[v];
    }
  }
  for (i64 r = 0; r < mr; ++r) {
    for (i64 v = 0; v < nr; ++v) c[r * ldc + v] = acc[r][v];
  }
}

}  // namespace

void gemm_accumulate(const MatrixD& a, const MatrixD& b, MatrixD& c) {
  CAMB_CHECK_MSG(a.cols() == b.rows(), "inner dimensions must agree");
  CAMB_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(),
                 "output shape mismatch");
  const i64 rows = a.rows(), inner = a.cols(), cols = b.cols();
  const double* adata = a.data();
  const double* bdata = b.data();
  double* cdata = c.data();
  // Resolved once per process (magic static): AVX2 micro-tile if the CPU
  // has it, the portable template otherwise.  Both produce identical bits.
  static const MicroFullFn micro = resolve_micro_full();
  // Panel scratch is reused across calls on the same thread; in the
  // simulator every rank thread runs many GEMMs of identical block shape.
  static thread_local std::vector<double> panel;
  for (i64 k0 = 0; k0 < inner; k0 += kGemmKc) {
    const i64 kc = std::min(kGemmKc, inner - k0);
    for (i64 j0 = 0; j0 < cols; j0 += kGemmNc) {
      const i64 nc = std::min(kGemmNc, cols - j0);
      panel.resize(static_cast<std::size_t>(kc * nc));
      for (i64 k = 0; k < kc; ++k) {
        std::memcpy(panel.data() + k * nc, bdata + (k0 + k) * cols + j0,
                    static_cast<std::size_t>(nc) * sizeof(double));
      }
      i64 i = 0;
      for (; i + kGemmMr <= rows; i += kGemmMr) {
        i64 j = 0;
        for (; j + kGemmNr <= nc; j += kGemmNr) {
          micro(adata + i * inner + k0, inner, panel.data() + j, nc,
                cdata + i * cols + j0 + j, cols, kc);
        }
        if (j < nc) {
          micro_edge(adata + i * inner + k0, inner, panel.data() + j, nc,
                     cdata + i * cols + j0 + j, cols, kc, kGemmMr, nc - j);
        }
      }
      if (i < rows) {
        for (i64 j = 0; j < nc; j += kGemmNr) {
          const i64 nr = std::min(kGemmNr, nc - j);
          micro_edge(adata + i * inner + k0, inner, panel.data() + j, nc,
                     cdata + i * cols + j0 + j, cols, kc, rows - i, nr);
        }
      }
    }
  }
}

void gemm_accumulate_reference(const MatrixD& a, const MatrixD& b, MatrixD& c) {
  CAMB_CHECK_MSG(a.cols() == b.rows(), "inner dimensions must agree");
  CAMB_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(),
                 "output shape mismatch");
  const i64 rows = a.rows(), inner = a.cols(), cols = b.cols();
  for (i64 i0 = 0; i0 < rows; i0 += kGemmTile) {
    const i64 imax = std::min(i0 + kGemmTile, rows);
    for (i64 k0 = 0; k0 < inner; k0 += kGemmTile) {
      const i64 kmax = std::min(k0 + kGemmTile, inner);
      for (i64 j0 = 0; j0 < cols; j0 += kGemmTile) {
        const i64 jmax = std::min(j0 + kGemmTile, cols);
        for (i64 i = i0; i < imax; ++i) {
          for (i64 k = k0; k < kmax; ++k) {
            const double aik = a(i, k);
            const double* brow = b.data() + k * cols;
            double* crow = c.data() + i * cols;
            for (i64 j = j0; j < jmax; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

MatrixD gemm(const MatrixD& a, const MatrixD& b) {
  MatrixD c(a.rows(), b.cols());
  gemm_accumulate(a, b, c);
  return c;
}

}  // namespace camb::mm
