#include "matmul/local_gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/error.hpp"
#include "util/scalar.hpp"

// The AVX2 micro-kernels are compiled per-function via the `target`
// attribute and selected at runtime, so the library still runs on any
// x86-64 (and the translation unit's baseline arch stays the build default).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CAMB_GEMM_AVX2_DISPATCH 1
#include <immintrin.h>
#endif

namespace camb::mm {

namespace {

// The micro-kernel computes an mr×nr tile of C over a packed kc×nc panel of
// B.  Accumulators live in registers for the whole k loop; each output
// element sums its products in ascending k — the same order as the
// reference kernel, so the result is bit-identical (absent FMA contraction,
// which the default target arch cannot do).

template <typename T, i64 MR>
inline void micro_full(const T* a, i64 lda, const T* bp, i64 nc, T* c,
                       i64 ldc, i64 kc) {
  T acc[MR][kGemmNr];
  for (i64 r = 0; r < MR; ++r) {
    for (i64 v = 0; v < kGemmNr; ++v) acc[r][v] = c[r * ldc + v];
  }
  for (i64 k = 0; k < kc; ++k) {
    const T* brow = bp + k * nc;
    for (i64 r = 0; r < MR; ++r) {
      const T ar = a[r * lda + k];
      for (i64 v = 0; v < kGemmNr; ++v) acc[r][v] += ar * brow[v];
    }
  }
  for (i64 r = 0; r < MR; ++r) {
    for (i64 v = 0; v < kGemmNr; ++v) c[r * ldc + v] = acc[r][v];
  }
}

#ifdef CAMB_GEMM_AVX2_DISPATCH
// AVX2 variant of the 4×8 double micro-tile.  Bit-identity with the scalar
// kernels holds by construction: vmulpd/vaddpd round each lane exactly as
// the scalar mul and add do, the k order is unchanged, and fusion into FMA
// is impossible — the function's target is avx2, which does not include FMA.
__attribute__((target("avx2"))) void micro_full_avx2(const double* a, i64 lda,
                                                     const double* bp, i64 nc,
                                                     double* c, i64 ldc,
                                                     i64 kc) {
  static_assert(kGemmMr == 4 && kGemmNr == 8,
                "micro_full_avx2 is written for a 4x8 tile");
  __m256d a0lo = _mm256_loadu_pd(c + 0 * ldc);
  __m256d a0hi = _mm256_loadu_pd(c + 0 * ldc + 4);
  __m256d a1lo = _mm256_loadu_pd(c + 1 * ldc);
  __m256d a1hi = _mm256_loadu_pd(c + 1 * ldc + 4);
  __m256d a2lo = _mm256_loadu_pd(c + 2 * ldc);
  __m256d a2hi = _mm256_loadu_pd(c + 2 * ldc + 4);
  __m256d a3lo = _mm256_loadu_pd(c + 3 * ldc);
  __m256d a3hi = _mm256_loadu_pd(c + 3 * ldc + 4);
  for (i64 k = 0; k < kc; ++k) {
    const double* brow = bp + k * nc;
    const __m256d blo = _mm256_loadu_pd(brow);
    const __m256d bhi = _mm256_loadu_pd(brow + 4);
    __m256d ar = _mm256_set1_pd(a[0 * lda + k]);
    a0lo = _mm256_add_pd(a0lo, _mm256_mul_pd(ar, blo));
    a0hi = _mm256_add_pd(a0hi, _mm256_mul_pd(ar, bhi));
    ar = _mm256_set1_pd(a[1 * lda + k]);
    a1lo = _mm256_add_pd(a1lo, _mm256_mul_pd(ar, blo));
    a1hi = _mm256_add_pd(a1hi, _mm256_mul_pd(ar, bhi));
    ar = _mm256_set1_pd(a[2 * lda + k]);
    a2lo = _mm256_add_pd(a2lo, _mm256_mul_pd(ar, blo));
    a2hi = _mm256_add_pd(a2hi, _mm256_mul_pd(ar, bhi));
    ar = _mm256_set1_pd(a[3 * lda + k]);
    a3lo = _mm256_add_pd(a3lo, _mm256_mul_pd(ar, blo));
    a3hi = _mm256_add_pd(a3hi, _mm256_mul_pd(ar, bhi));
  }
  _mm256_storeu_pd(c + 0 * ldc, a0lo);
  _mm256_storeu_pd(c + 0 * ldc + 4, a0hi);
  _mm256_storeu_pd(c + 1 * ldc, a1lo);
  _mm256_storeu_pd(c + 1 * ldc + 4, a1hi);
  _mm256_storeu_pd(c + 2 * ldc, a2lo);
  _mm256_storeu_pd(c + 2 * ldc + 4, a2hi);
  _mm256_storeu_pd(c + 3 * ldc, a3lo);
  _mm256_storeu_pd(c + 3 * ldc + 4, a3hi);
}

// AVX2 variant of the 4×8 float micro-tile: the whole 8-wide row fits one
// ps register, so each C row is a single accumulator.  Same bit-identity
// argument as the double kernel — vmulps/vaddps per-lane round like scalar
// float mul+add, ascending k, no FMA on this target.
__attribute__((target("avx2"))) void micro_full_avx2_f32(const float* a,
                                                         i64 lda,
                                                         const float* bp,
                                                         i64 nc, float* c,
                                                         i64 ldc, i64 kc) {
  static_assert(kGemmMr == 4 && kGemmNr == 8,
                "micro_full_avx2_f32 is written for a 4x8 tile");
  __m256 acc0 = _mm256_loadu_ps(c + 0 * ldc);
  __m256 acc1 = _mm256_loadu_ps(c + 1 * ldc);
  __m256 acc2 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 acc3 = _mm256_loadu_ps(c + 3 * ldc);
  for (i64 k = 0; k < kc; ++k) {
    const __m256 brow = _mm256_loadu_ps(bp + k * nc);
    acc0 = _mm256_add_ps(acc0,
                         _mm256_mul_ps(_mm256_set1_ps(a[0 * lda + k]), brow));
    acc1 = _mm256_add_ps(acc1,
                         _mm256_mul_ps(_mm256_set1_ps(a[1 * lda + k]), brow));
    acc2 = _mm256_add_ps(acc2,
                         _mm256_mul_ps(_mm256_set1_ps(a[2 * lda + k]), brow));
    acc3 = _mm256_add_ps(acc3,
                         _mm256_mul_ps(_mm256_set1_ps(a[3 * lda + k]), brow));
  }
  _mm256_storeu_ps(c + 0 * ldc, acc0);
  _mm256_storeu_ps(c + 1 * ldc, acc1);
  _mm256_storeu_ps(c + 2 * ldc, acc2);
  _mm256_storeu_ps(c + 3 * ldc, acc3);
}
#endif  // CAMB_GEMM_AVX2_DISPATCH

template <typename T>
using MicroFullFn = void (*)(const T*, i64, const T*, i64, T*, i64, i64);

/// The full-tile kernel for T: AVX2 when T has a vector variant and the CPU
/// supports it, the portable scalar template otherwise (always for i64 and
/// kahan — integer multiplies and compensated adds have no profitable 256-bit
/// formulation that preserves the scalar semantics).
template <typename T>
MicroFullFn<T> resolve_micro_full() {
#ifdef CAMB_GEMM_AVX2_DISPATCH
  if constexpr (std::is_same_v<T, double>) {
    if (__builtin_cpu_supports("avx2")) return micro_full_avx2;
  } else if constexpr (std::is_same_v<T, float>) {
    if (__builtin_cpu_supports("avx2")) return micro_full_avx2_f32;
  }
#endif
  return micro_full<T, kGemmMr>;
}

// Edge micro-tile with runtime mr×nr (bottom rows / rightmost columns).
template <typename T>
inline void micro_edge(const T* a, i64 lda, const T* bp, i64 nc, T* c,
                       i64 ldc, i64 kc, i64 mr, i64 nr) {
  T acc[kGemmMr][kGemmNr];
  for (i64 r = 0; r < mr; ++r) {
    for (i64 v = 0; v < nr; ++v) acc[r][v] = c[r * ldc + v];
  }
  for (i64 k = 0; k < kc; ++k) {
    const T* brow = bp + k * nc;
    for (i64 r = 0; r < mr; ++r) {
      const T ar = a[r * lda + k];
      for (i64 v = 0; v < nr; ++v) acc[r][v] += ar * brow[v];
    }
  }
  for (i64 r = 0; r < mr; ++r) {
    for (i64 v = 0; v < nr; ++v) c[r * ldc + v] = acc[r][v];
  }
}

}  // namespace

template <typename T>
void gemm_accumulate(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c) {
  CAMB_CHECK_MSG(a.cols() == b.rows(), "inner dimensions must agree");
  CAMB_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(),
                 "output shape mismatch");
  const i64 rows = a.rows(), inner = a.cols(), cols = b.cols();
  const T* adata = a.data();
  const T* bdata = b.data();
  T* cdata = c.data();
  // Resolved once per process (magic static, one per scalar): AVX2
  // micro-tile if the CPU and scalar have it, the portable template
  // otherwise.  Both produce identical bits.
  static const MicroFullFn<T> micro = resolve_micro_full<T>();
  // Panel scratch is reused across calls on the same thread; in the
  // simulator every rank thread runs many GEMMs of identical block shape.
  static thread_local std::vector<T> panel;
  for (i64 k0 = 0; k0 < inner; k0 += kGemmKc) {
    const i64 kc = std::min(kGemmKc, inner - k0);
    for (i64 j0 = 0; j0 < cols; j0 += kGemmNc) {
      const i64 nc = std::min(kGemmNc, cols - j0);
      panel.resize(static_cast<std::size_t>(kc * nc));
      for (i64 k = 0; k < kc; ++k) {
        std::memcpy(panel.data() + k * nc, bdata + (k0 + k) * cols + j0,
                    static_cast<std::size_t>(nc) * sizeof(T));
      }
      i64 i = 0;
      for (; i + kGemmMr <= rows; i += kGemmMr) {
        i64 j = 0;
        for (; j + kGemmNr <= nc; j += kGemmNr) {
          micro(adata + i * inner + k0, inner, panel.data() + j, nc,
                cdata + i * cols + j0 + j, cols, kc);
        }
        if (j < nc) {
          micro_edge(adata + i * inner + k0, inner, panel.data() + j, nc,
                     cdata + i * cols + j0 + j, cols, kc, kGemmMr, nc - j);
        }
      }
      if (i < rows) {
        for (i64 j = 0; j < nc; j += kGemmNr) {
          const i64 nr = std::min(kGemmNr, nc - j);
          micro_edge(adata + i * inner + k0, inner, panel.data() + j, nc,
                     cdata + i * cols + j0 + j, cols, kc, rows - i, nr);
        }
      }
    }
  }
}

template <typename T>
void gemm_accumulate_reference(const Matrix<T>& a, const Matrix<T>& b,
                               Matrix<T>& c) {
  CAMB_CHECK_MSG(a.cols() == b.rows(), "inner dimensions must agree");
  CAMB_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(),
                 "output shape mismatch");
  const i64 rows = a.rows(), inner = a.cols(), cols = b.cols();
  for (i64 i0 = 0; i0 < rows; i0 += kGemmTile) {
    const i64 imax = std::min(i0 + kGemmTile, rows);
    for (i64 k0 = 0; k0 < inner; k0 += kGemmTile) {
      const i64 kmax = std::min(k0 + kGemmTile, inner);
      for (i64 j0 = 0; j0 < cols; j0 += kGemmTile) {
        const i64 jmax = std::min(j0 + kGemmTile, cols);
        for (i64 i = i0; i < imax; ++i) {
          for (i64 k = k0; k < kmax; ++k) {
            const T aik = a(i, k);
            const T* brow = b.data() + k * cols;
            T* crow = c.data() + i * cols;
            for (i64 j = j0; j < jmax; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

template <typename T>
Matrix<T> gemm(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> c(a.rows(), b.cols());
  gemm_accumulate(a, b, c);
  return c;
}

#define CAMB_INSTANTIATE(T)                                                \
  template void gemm_accumulate<T>(const Matrix<T>&, const Matrix<T>&,     \
                                   Matrix<T>&);                            \
  template void gemm_accumulate_reference<T>(const Matrix<T>&,             \
                                             const Matrix<T>&, Matrix<T>&); \
  template Matrix<T> gemm<T>(const Matrix<T>&, const Matrix<T>&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

}  // namespace camb::mm
