#include "matmul/abft.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "collectives/allreduce.hpp"
#include "collectives/bcast.hpp"
#include "collectives/coll_cost.hpp"
#include "collectives/grid_comm.hpp"
#include "collectives/reduce.hpp"
#include "collectives/shrink.hpp"
#include "machine/faults.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb::mm {

namespace {

int rank_of(i64 i, i64 j, i64 g) { return static_cast<int>(i * g + j); }

BlockChunk full_block(const BlockDist1D& rows, i64 ri, const BlockDist1D& cols,
                      i64 ci) {
  BlockChunk chunk;
  chunk.row0 = rows.start(ri);
  chunk.col0 = cols.start(ci);
  chunk.rows = rows.size(ri);
  chunk.cols = cols.size(ci);
  chunk.flat_start = 0;
  chunk.flat_size = chunk.rows * chunk.cols;
  return chunk;
}

/// The checksum-exact fill.  Exact scalars use the plain indexed pattern —
/// integer arithmetic never rounds, so sums are order-independent without
/// any input restriction.  Floating-point scalars still need the
/// integer-valued pattern for bit-exact, order-independent checksums.
template <typename T>
std::vector<T> abft_fill(const BlockChunk& chunk) {
  if constexpr (ScalarTraits<T>::exact) {
    return fill_chunk_indexed<T>(chunk);
  } else {
    return fill_chunk_indexed_int<T>(chunk);
  }
}

/// Regenerate a full block with the checksum-exact pattern.
template <typename T>
Matrix<T> regen_block(const BlockDist1D& rows, i64 ri, const BlockDist1D& cols,
                      i64 ci) {
  const BlockChunk chunk = full_block(rows, ri, cols, ci);
  const std::vector<T> flat = abft_fill<T>(chunk);
  Matrix<T> out(chunk.rows, chunk.cols);
  std::copy(flat.begin(), flat.end(), out.data());
  return out;
}

template <typename T>
Matrix<T> to_matrix(const std::vector<T>& flat, i64 rows, i64 cols) {
  CAMB_CHECK(static_cast<i64>(flat.size()) == rows * cols);
  Matrix<T> out(rows, cols);
  std::copy(flat.begin(), flat.end(), out.data());
  return out;
}

/// Pad an r×c row-major block to rmax rows (zeros below).
template <typename T>
std::vector<T> pad_rows(const std::vector<T>& flat, i64 r, i64 c, i64 rmax) {
  CAMB_CHECK(static_cast<i64>(flat.size()) == r * c && rmax >= r);
  std::vector<T> out = flat;
  out.resize(static_cast<std::size_t>(rmax * c), ScalarTraits<T>::zero());
  return out;
}

/// Pad an r×c row-major block to cmax columns (zeros to the right).
template <typename T>
std::vector<T> pad_cols(const std::vector<T>& flat, i64 r, i64 c, i64 cmax) {
  CAMB_CHECK(static_cast<i64>(flat.size()) == r * c && cmax >= c);
  std::vector<T> out(static_cast<std::size_t>(r * cmax),
                     ScalarTraits<T>::zero());
  for (i64 ri = 0; ri < r; ++ri) {
    std::copy(flat.begin() + ri * c, flat.begin() + (ri + 1) * c,
              out.begin() + ri * cmax);
  }
  return out;
}

template <typename T>
std::vector<T> pad_matrix(const Matrix<T>& m, i64 rmax, i64 cmax) {
  std::vector<T> out(static_cast<std::size_t>(rmax * cmax),
                     ScalarTraits<T>::zero());
  for (i64 ri = 0; ri < m.rows(); ++ri) {
    std::copy(m.data() + ri * m.cols(), m.data() + (ri + 1) * m.cols(),
              out.begin() + ri * cmax);
  }
  return out;
}

std::vector<int> world_group(int nprocs) {
  std::vector<int> world(static_cast<std::size_t>(nprocs));
  std::iota(world.begin(), world.end(), 0);
  return world;
}

}  // namespace

template <typename T>
SummaAbftOutputT<T> summa_abft_rank(RankCtx& ctx, const SummaAbftConfig& cfg) {
  const i64 g = cfg.base.g;
  CAMB_CHECK_MSG(g * g == ctx.nprocs(), "SUMMA machine size must be g*g");
  CAMB_CHECK_MSG(g >= 2, "checksum-augmented SUMMA needs grid edge g >= 2");
  CAMB_CHECK_MSG(cfg.max_failures >= 0, "max_failures must be non-negative");
  const i64 i = ctx.rank() / g;
  const i64 j = ctx.rank() % g;
  const BlockDist1D d1(cfg.base.shape.n1, g), d2(cfg.base.shape.n2, g),
      d3(cfg.base.shape.n3, g);
  const i64 d1max = d1.size(0);  // near-equal split: piece 0 is largest
  const i64 d3max = d3.size(0);

  // Owned blocks (checksum-exact pattern: see abft_fill on exactness).
  std::vector<T> a_own = abft_fill<T>(full_block(d1, i, d2, j));
  std::vector<T> b_own = abft_fill<T>(full_block(d2, i, d3, j));

  SummaAbftOutputT<T> out;
  out.own.row0 = d1.start(i);
  out.own.col0 = d3.start(j);
  out.own.block = Matrix<T>(d1.size(i), d3.size(j));

  // Checksum holders: S_j on row 0, R_i on column 0, T on the corner.
  const bool hold_s = (i == 0);
  const bool hold_r = (j == 0);
  const bool is_corner = (i == g - 1 && j == g - 1);
  const int corner = rank_of(g - 1, g - 1, g);
  Matrix<T> s_sum, r_sum, t_sum;
  if (hold_s) s_sum = Matrix<T>(d1max, d3.size(j));
  if (hold_r) r_sum = Matrix<T>(d1.size(i), d3max);
  if (is_corner) t_sum = Matrix<T>(d1max, d3max);

  // Fibers of the g x g grid; each fiber serves 2 collectives per stage plus
  // (on the extreme row/column) one forwarding block, so size the leases to
  // the stage count.
  const int fiber_blocks = std::max(coll::Comm::kDefaultTagBlocks,
                                    static_cast<int>(2 * g) + 2);
  const coll::GridComm grid(ctx, Grid3{g, g, 1}, fiber_blocks);
  const coll::Comm& my_row = grid.fiber(1);  // index within = j
  const coll::Comm& my_col = grid.fiber(0);  // index within = i
  // Tag blocks for the per-stage checksum forwards to the corner: one block
  // on the corner's column fiber (taken by all its members, in lockstep) and
  // one on its row fiber; stage t uses offset t.
  const int fwd_a_tags = (j == g - 1) ? my_col.take_tag_block() : 0;
  const int fwd_b_tags = (i == g - 1) ? my_row.take_tag_block() : 0;
  CAMB_CHECK_MSG(g < kTagBlockWidth, "grid edge too large for one tag block");

  bool abandoned = false;
  try {
    for (i64 t = 0; t < g; ++t) {
      // Base SUMMA stage: A block-column t along rows, B block-row t along
      // columns, local accumulate (identical to summa_rank).
      ctx.set_phase(kPhaseSummaBcastA);
      std::vector<T> a_panel = (t == j) ? a_own : std::vector<T>{};
      const i64 a_rows = d1.size(i), a_cols = d2.size(t);
      coll::bcast(my_row, static_cast<int>(t), a_panel, a_rows * a_cols,
                  cfg.base.bcast, cfg.base.bcast_segments);

      ctx.set_phase(kPhaseSummaBcastB);
      std::vector<T> b_panel = (t == i) ? b_own : std::vector<T>{};
      const i64 b_rows = d2.size(t), b_cols = d3.size(j);
      coll::bcast(my_col, static_cast<int>(t), b_panel, b_rows * b_cols,
                  cfg.base.bcast, cfg.base.bcast_segments);

      ctx.set_phase(kPhaseSummaGemm);
      const Matrix<T> a_mat = to_matrix(a_panel, a_rows, a_cols);
      const Matrix<T> b_mat = to_matrix(b_panel, b_rows, b_cols);
      gemm_accumulate(a_mat, b_mat, out.own.block);

      // Encode: column fibers reduce row-padded A panels to row 0, row
      // fibers reduce column-padded B panels to column 0, and the extreme
      // roots forward the sums to the corner.
      ctx.set_phase(kPhaseAbftEncode);
      std::vector<T> asum = coll::reduce(
          my_col, 0, pad_rows(a_panel, a_rows, a_cols, d1max));
      std::vector<T> bsum = coll::reduce(
          my_row, 0, pad_cols(b_panel, b_rows, b_cols, d3max));
      if (i == 0 && j == g - 1) {
        my_col.send(static_cast<int>(g - 1),
                    fwd_a_tags + static_cast<int>(t), Buffer::pack<T>(asum));
      }
      if (i == g - 1 && j == 0) {
        my_row.send(static_cast<int>(g - 1),
                    fwd_b_tags + static_cast<int>(t), Buffer::pack<T>(bsum));
      }
      if (hold_s) {
        // S_j += (sum_i pad(A_it)) * B_tj  ==  sum_i pad_rows(A_it B_tj).
        gemm_accumulate(to_matrix(asum, d1max, a_cols), b_mat, s_sum);
      }
      if (hold_r) {
        gemm_accumulate(a_mat, to_matrix(bsum, b_rows, d3max), r_sum);
      }
      if (is_corner) {
        const std::vector<T> asum_c =
            std::move(my_col.recv(0, fwd_a_tags + static_cast<int>(t)))
                .take_as<T>();
        const std::vector<T> bsum_c =
            std::move(my_row.recv(0, fwd_b_tags + static_cast<int>(t)))
                .take_as<T>();
        gemm_accumulate(to_matrix(asum_c, d1max, d2.size(t)),
                        to_matrix(bsum_c, d2.size(t), d3max), t_sum);
      }
    }
  } catch (const PeerFailedError&) {
    // A peer died or deviated: abandon the communication schedule (the
    // deviation cascades through every rank still expecting our messages)
    // and finish this rank's responsibilities locally — every input block
    // is a pure function of its global position, so nothing is lost.
    ctx.abandon();
    abandoned = true;
  }

  if (abandoned) {
    out.own.block = Matrix<T>(d1.size(i), d3.size(j));
    if (hold_s) s_sum = Matrix<T>(d1max, d3.size(j));
    if (hold_r) r_sum = Matrix<T>(d1.size(i), d3max);
    if (is_corner) t_sum = Matrix<T>(d1max, d3max);
    for (i64 t = 0; t < g; ++t) {
      const Matrix<T> a_t = regen_block<T>(d1, i, d2, t);
      const Matrix<T> b_t = regen_block<T>(d2, t, d3, j);
      gemm_accumulate(a_t, b_t, out.own.block);
      if (hold_s || is_corner) {
        Matrix<T> asum_t(d1max, d2.size(t));
        for (i64 i2 = 0; i2 < g; ++i2) {
          const Matrix<T> a_i2 = regen_block<T>(d1, i2, d2, t);
          for (i64 r = 0; r < a_i2.rows(); ++r) {
            for (i64 c = 0; c < a_i2.cols(); ++c) asum_t(r, c) += a_i2(r, c);
          }
        }
        if (hold_s) gemm_accumulate(asum_t, b_t, s_sum);
        if (is_corner) {
          Matrix<T> bsum_t(d2.size(t), d3max);
          for (i64 j2 = 0; j2 < g; ++j2) {
            const Matrix<T> b_j2 = regen_block<T>(d2, t, d3, j2);
            for (i64 r = 0; r < b_j2.rows(); ++r) {
              for (i64 c = 0; c < b_j2.cols(); ++c) bsum_t(r, c) += b_j2(r, c);
            }
          }
          gemm_accumulate(asum_t, bsum_t, t_sum);
        }
      }
      if (hold_r) {
        Matrix<T> bsum_t(d2.size(t), d3max);
        for (i64 j2 = 0; j2 < g; ++j2) {
          const Matrix<T> b_j2 = regen_block<T>(d2, t, d3, j2);
          for (i64 r = 0; r < b_j2.rows(); ++r) {
            for (i64 c = 0; c < b_j2.cols(); ++c) bsum_t(r, c) += b_j2(r, c);
          }
        }
        gemm_accumulate(a_t, bsum_t, r_sum);
      }
    }
  }

  // Export the checksum state before any return path: the runner's
  // single-error correction pass (summa_abft_correct) intersects these
  // against the assembled tiles after the machine stops.
  if (hold_s) out.s_sum = s_sum;
  if (hold_r) out.r_sum = r_sum;
  if (is_corner) out.t_sum = t_sum;

  // Agreement: every survivor learns the same failed set.  The recovery
  // world comm leases from the recovery cursor, which abandonment does not
  // touch, so clean and abandoned survivors agree on its tags.
  ctx.set_phase(kPhaseAbftShrink);
  const coll::Comm rec_world =
      coll::Comm::recovery(ctx, world_group(ctx.nprocs()));
  const coll::ShrinkResult agreed =
      coll::shrink(rec_world, cfg.max_failures, abandoned);
  out.abandoned = abandoned;
  out.failed = agreed.failed;
  if (agreed.failed.empty()) return out;
  if (agreed.failed.size() > 1) {
    std::ostringstream msg;
    msg << "checksum SUMMA can reconstruct at most one failed rank; lost "
        << agreed.failed.size() << " ranks";
    throw Error(msg.str());
  }

  // Reconstruction: subtract the survivors' tiles from the checksum that
  // covers the dead tile.  Which checksum depends on where the dead rank
  // sat: S_dj unless the dead rank was its host (row 0), then R_0 unless
  // the dead rank was (0, 0) itself, then the corner total T.
  ctx.set_phase(kPhaseAbftRecover);
  const int dead = agreed.failed.front();
  const i64 di = dead / g, dj = dead % g;
  enum class Pad { kRows, kCols, kBoth } pad_mode;
  int host = -1;
  std::vector<int> contributors;
  const Matrix<T>* checksum = nullptr;
  if (di != 0) {
    pad_mode = Pad::kRows;
    host = rank_of(0, dj, g);
    for (i64 i2 = 0; i2 < g; ++i2) {
      if (const int r = rank_of(i2, dj, g); r != dead) contributors.push_back(r);
    }
    checksum = &s_sum;
  } else if (dj != 0) {
    pad_mode = Pad::kCols;
    host = rank_of(0, 0, g);
    for (i64 j2 = 0; j2 < g; ++j2) {
      if (const int r = rank_of(0, j2, g); r != dead) contributors.push_back(r);
    }
    checksum = &r_sum;
  } else {
    pad_mode = Pad::kBoth;
    host = corner;
    for (int r = 0; r < ctx.nprocs(); ++r) {
      if (r != dead) contributors.push_back(r);
    }
    checksum = &t_sum;
  }
  // Every survivor constructs the contributor comm — non-members included —
  // so the recovery lease sequence stays uniform; only members reduce.
  const coll::Comm rec_contrib = coll::Comm::recovery(ctx, contributors);
  if (!rec_contrib.member()) {
    return out;  // this survivor holds no piece of the covering checksum
  }
  const i64 pad_r = (pad_mode == Pad::kCols) ? d1.size(0) : d1max;
  const i64 pad_c = (pad_mode == Pad::kRows) ? d3.size(dj) : d3max;
  const std::vector<T> survivor_sum =
      coll::reduce(rec_contrib, rec_contrib.index_of(host),
                   pad_matrix(out.own.block, pad_r, pad_c));
  if (ctx.rank() == host) {
    RecoveredBlock2DT<T> rec;
    rec.rank = dead;
    rec.out.row0 = d1.start(di);
    rec.out.col0 = d3.start(dj);
    rec.out.block = Matrix<T>(d1.size(di), d3.size(dj));
    for (i64 r = 0; r < rec.out.block.rows(); ++r) {
      for (i64 c = 0; c < rec.out.block.cols(); ++c) {
        rec.out.block(r, c) = (*checksum)(r, c) -
                              survivor_sum[static_cast<std::size_t>(
                                  r * pad_c + c)];
      }
    }
    out.recovered.push_back(std::move(rec));
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                    \
  template SummaAbftOutputT<T> summa_abft_rank<T>( \
      RankCtx&, const SummaAbftConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
Grid3dAbftOutputT<T> grid3d_abft_rank(RankCtx& ctx,
                                      const Grid3dAbftConfig& cfg) {
  Grid3dConfig base = cfg.base;
  // Exact scalars keep the plain indexed fill (their sums never round);
  // floating-point instantiations force the integer-valued pattern.
  base.integer_inputs = !ScalarTraits<T>::exact;
  CAMB_CHECK_MSG(base.grid.total() == ctx.nprocs(),
                 "grid size must equal the machine size");
  CAMB_CHECK_MSG(cfg.max_failures >= 0, "max_failures must be non-negative");
  const GridMap map(base.grid);
  const auto [q1, q2, q3] = map.coords_of(ctx.rank());
  const Grid3dLayout layout = grid3d_layout(base, ctx.rank());
  // The C fiber comm for the parity encode (grid3d_rank builds its own grid
  // comm internally; this one serves the ABFT layer).
  const coll::Comm c_fiber(ctx, map.fiber(1, q1, q2, q3));
  i64 lmax = 0;
  for (i64 c : layout.c_counts) lmax = std::max(lmax, c);

  Grid3dAbftOutputT<T> out;
  std::vector<T> parity;
  bool abandoned = false;
  try {
    out.own = grid3d_rank<T>(ctx, base);
    // Encode: every C fiber All-Reduces the parity of its members' padded
    // chunks, so each member holds X = sum_q2 pad(chunk) (f = 1 redundancy).
    ctx.set_phase(kPhaseAbftEncode);
    std::vector<T> padded = out.own.c_data;
    padded.resize(static_cast<std::size_t>(lmax), ScalarTraits<T>::zero());
    parity = coll::allreduce(c_fiber, std::move(padded));
  } catch (const PeerFailedError&) {
    ctx.abandon();
    abandoned = true;
  }

  if (abandoned) {
    // Degraded local completion: recompute this rank's full C block (sum
    // over the q2 axis of regenerated inputs) and derive both the owned
    // chunk and the fiber parity from it.  Exact because the inputs are
    // integer-valued.
    const BlockDist1D d1(base.shape.n1, base.grid.p1),
        d2(base.shape.n2, base.grid.p2), d3(base.shape.n3, base.grid.p3);
    Matrix<T> c_full(layout.c.rows, layout.c.cols);
    for (i64 t = 0; t < base.grid.p2; ++t) {
      const Matrix<T> a_t = regen_block<T>(d1, q1, d2, t);
      const Matrix<T> b_t = regen_block<T>(d2, t, d3, q3);
      gemm_accumulate(a_t, b_t, c_full);
    }
    out.own.c_chunk = layout.c;
    out.own.c_data.assign(
        c_full.data() + layout.c.flat_start,
        c_full.data() + layout.c.flat_start + layout.c.flat_size);
    parity.assign(static_cast<std::size_t>(lmax), ScalarTraits<T>::zero());
    const BlockDist1D flat(layout.c.block_size(), base.grid.p2);
    for (i64 m = 0; m < base.grid.p2; ++m) {
      for (i64 k = 0; k < flat.size(m); ++k) {
        parity[static_cast<std::size_t>(k)] += c_full.data()[flat.start(m) + k];
      }
    }
  }

  out.parity = parity;  // exported for grid3d_abft_correct

  ctx.set_phase(kPhaseAbftShrink);
  const coll::Comm rec_world =
      coll::Comm::recovery(ctx, world_group(ctx.nprocs()));
  const coll::ShrinkResult agreed =
      coll::shrink(rec_world, cfg.max_failures, abandoned);
  out.abandoned = abandoned;
  out.failed = agreed.failed;
  if (agreed.failed.empty()) return out;

  // Reconstruction: for each dead rank, the survivors of its C fiber
  // subtract their chunks from the parity.  Dead ranks on distinct fibers
  // are independent (disjoint contributor groups, distinct tags).
  ctx.set_phase(kPhaseAbftRecover);
  if (base.grid.p2 < 2) {
    throw Error(
        "grid3d ABFT cannot recover any rank on a p2 = 1 grid: the parity "
        "fiber has a single member, so a crash erases the parity too");
  }
  for (std::size_t idx = 0; idx < out.failed.size(); ++idx) {
    const int dead = out.failed[idx];
    const auto [f1, f2, f3] = map.coords_of(dead);
    const std::vector<int> fiber = map.fiber(1, f1, f2, f3);
    std::vector<int> contributors;
    for (int r : fiber) {
      if (std::find(out.failed.begin(), out.failed.end(), r) ==
          out.failed.end()) {
        contributors.push_back(r);
      }
    }
    if (static_cast<i64>(contributors.size()) != base.grid.p2 - 1) {
      std::ostringstream msg;
      msg << "grid3d ABFT cannot recover rank " << dead << ": its C fiber has "
          << contributors.size() << " survivor(s) of " << base.grid.p2
          << " (parity tolerates exactly one loss per fiber)";
      throw Error(msg.str());
    }
    // Constructed by every survivor — members and non-members alike, in the
    // agreed failed-rank order — so the recovery lease sequence is uniform.
    const coll::Comm rec_contrib = coll::Comm::recovery(ctx, contributors);
    if (!rec_contrib.member()) continue;
    std::vector<T> padded = out.own.c_data;
    padded.resize(static_cast<std::size_t>(lmax), ScalarTraits<T>::zero());
    const int host = contributors.front();
    const std::vector<T> survivor_sum =
        coll::reduce(rec_contrib, 0, std::move(padded));
    if (ctx.rank() == host) {
      const Grid3dLayout dead_layout = grid3d_layout(base, dead);
      RecoveredChunk3DT<T> rec;
      rec.rank = dead;
      rec.c_chunk = dead_layout.c;
      rec.c_data.resize(static_cast<std::size_t>(dead_layout.c.flat_size));
      for (i64 k = 0; k < dead_layout.c.flat_size; ++k) {
        rec.c_data[static_cast<std::size_t>(k)] =
            parity[static_cast<std::size_t>(k)] -
            survivor_sum[static_cast<std::size_t>(k)];
      }
      out.recovered.push_back(std::move(rec));
    }
  }
  return out;
}

#define CAMB_INSTANTIATE(T)                      \
  template Grid3dAbftOutputT<T> grid3d_abft_rank<T>( \
      RankCtx&, const Grid3dAbftConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 summa_abft_predicted_recv_words(const SummaAbftConfig& cfg, int rank) {
  const i64 g = cfg.base.g;
  const i64 i = rank / g, j = rank % g;
  const BlockDist1D d1(cfg.base.shape.n1, g), d2(cfg.base.shape.n2, g),
      d3(cfg.base.shape.n3, g);
  const i64 d1max = d1.size(0), d3max = d3.size(0);
  i64 words = summa_predicted_recv_words(cfg.base, rank);
  for (i64 t = 0; t < g; ++t) {
    // Encode reduces (member index == root-relative index: root_idx is 0).
    words += coll::reduce_recv_words_exact(static_cast<int>(g),
                                           static_cast<int>(i),
                                           d1max * d2.size(t));
    words += coll::reduce_recv_words_exact(static_cast<int>(g),
                                           static_cast<int>(j),
                                           d2.size(t) * d3max);
    if (i == g - 1 && j == g - 1) {  // forwarded panel sums to the corner
      words += d1max * d2.size(t) + d2.size(t) * d3max;
    }
  }
  words += coll::shrink_recv_words_exact(static_cast<int>(g * g),
                                         cfg.max_failures);
  return words;
}

template <typename T>
SummaAbftOutputT<T> summa_abft_ckpt_rank(ckpt::SessionT<T>& session,
                                         const SummaAbftConfig& cfg) {
  RankCtx& ctx = session.ctx();
  const i64 g = cfg.base.g;
  CAMB_CHECK_MSG(g * g == session.nprocs(), "SUMMA machine size must be g*g");
  CAMB_CHECK_MSG(g >= 2, "checksum-augmented SUMMA needs grid edge g >= 2");
  const int me = session.rank();
  const i64 i = me / g;
  const i64 j = me % g;
  const BlockDist1D d1(cfg.base.shape.n1, g), d2(cfg.base.shape.n2, g),
      d3(cfg.base.shape.n3, g);
  const i64 d1max = d1.size(0);
  const i64 d3max = d3.size(0);

  std::vector<T> a_own = abft_fill<T>(full_block(d1, i, d2, j));
  std::vector<T> b_own = abft_fill<T>(full_block(d2, i, d3, j));

  SummaAbftOutputT<T> out;
  out.own.row0 = d1.start(i);
  out.own.col0 = d3.start(j);
  out.own.block = Matrix<T>(d1.size(i), d3.size(j));

  const bool hold_s = (i == 0);
  const bool hold_r = (j == 0);
  const bool is_corner = (i == g - 1 && j == g - 1);
  Matrix<T> s_sum, r_sum, t_sum;
  if (hold_s) s_sum = Matrix<T>(d1max, d3.size(j));
  if (hold_r) r_sum = Matrix<T>(d1.size(i), d3max);
  if (is_corner) t_sum = Matrix<T>(d1max, d3max);

  // Same fiber lease budget as summa_abft_rank; the twin builds its own two
  // fibers on the session (every rank leases in the same row-then-column
  // order, so the bases agree machine-wide).
  const int fiber_blocks = std::max(coll::Comm::kDefaultTagBlocks,
                                    static_cast<int>(2 * g) + 2);
  std::vector<int> row_members, col_members;
  for (i64 v = 0; v < g; ++v) {
    row_members.push_back(static_cast<int>(i * g + v));
    col_members.push_back(static_cast<int>(v * g + j));
  }
  const coll::Comm my_row = session.comm(row_members, fiber_blocks);
  const coll::Comm my_col = session.comm(col_members, fiber_blocks);
  const int fwd_a_tags = (j == g - 1) ? my_col.take_tag_block() : 0;
  const int fwd_b_tags = (i == g - 1) ? my_row.take_tag_block() : 0;
  CAMB_CHECK_MSG(g < kTagBlockWidth, "grid edge too large for one tag block");

  const i64 t0 = session.resume_step();
  if (session.restored()) {
    const SnapshotT<T>& snap = session.snapshot();
    std::size_t b = 0;
    std::copy(snap.bufs.at(b).begin(), snap.bufs.at(b).end(),
              out.own.block.data());
    ++b;
    if (hold_s) {
      std::copy(snap.bufs.at(b).begin(), snap.bufs.at(b).end(), s_sum.data());
      ++b;
    }
    if (hold_r) {
      std::copy(snap.bufs.at(b).begin(), snap.bufs.at(b).end(), r_sum.data());
      ++b;
    }
    if (is_corner) {
      std::copy(snap.bufs.at(b).begin(), snap.bufs.at(b).end(), t_sum.data());
      ++b;
    }
    CAMB_CHECK(b == snap.bufs.size());
  }

  for (i64 t = t0; t < g; ++t) {
    // Base SUMMA stage (identical to summa_abft_rank's main loop).
    ctx.set_phase(kPhaseSummaBcastA);
    std::vector<T> a_panel = (t == j) ? a_own : std::vector<T>{};
    const i64 a_rows = d1.size(i), a_cols = d2.size(t);
    coll::bcast(my_row, static_cast<int>(t), a_panel, a_rows * a_cols,
                cfg.base.bcast, cfg.base.bcast_segments);

    ctx.set_phase(kPhaseSummaBcastB);
    std::vector<T> b_panel = (t == i) ? b_own : std::vector<T>{};
    const i64 b_rows = d2.size(t), b_cols = d3.size(j);
    coll::bcast(my_col, static_cast<int>(t), b_panel, b_rows * b_cols,
                cfg.base.bcast, cfg.base.bcast_segments);

    ctx.set_phase(kPhaseSummaGemm);
    const Matrix<T> a_mat = to_matrix(a_panel, a_rows, a_cols);
    const Matrix<T> b_mat = to_matrix(b_panel, b_rows, b_cols);
    gemm_accumulate(a_mat, b_mat, out.own.block);

    ctx.set_phase(kPhaseAbftEncode);
    std::vector<T> asum =
        coll::reduce(my_col, 0, pad_rows(a_panel, a_rows, a_cols, d1max));
    std::vector<T> bsum =
        coll::reduce(my_row, 0, pad_cols(b_panel, b_rows, b_cols, d3max));
    if (i == 0 && j == g - 1) {
      my_col.send(static_cast<int>(g - 1), fwd_a_tags + static_cast<int>(t),
                  Buffer::pack<T>(asum));
    }
    if (i == g - 1 && j == 0) {
      my_row.send(static_cast<int>(g - 1), fwd_b_tags + static_cast<int>(t),
                  Buffer::pack<T>(bsum));
    }
    if (hold_s) {
      gemm_accumulate(to_matrix(asum, d1max, a_cols), b_mat, s_sum);
    }
    if (hold_r) {
      gemm_accumulate(a_mat, to_matrix(bsum, b_rows, d3max), r_sum);
    }
    if (is_corner) {
      const std::vector<T> asum_c =
          std::move(my_col.recv(0, fwd_a_tags + static_cast<int>(t)))
              .template take_as<T>();
      const std::vector<T> bsum_c =
          std::move(my_row.recv(0, fwd_b_tags + static_cast<int>(t)))
              .template take_as<T>();
      gemm_accumulate(to_matrix(asum_c, d1max, d2.size(t)),
                      to_matrix(bsum_c, d2.size(t), d3max), t_sum);
    }

    session.boundary(t + 1, [&] {
      SnapshotT<T> snap;
      snap.bufs.emplace_back(out.own.block.data(),
                             out.own.block.data() + out.own.block.size());
      if (hold_s) {
        snap.bufs.emplace_back(s_sum.data(), s_sum.data() + s_sum.size());
      }
      if (hold_r) {
        snap.bufs.emplace_back(r_sum.data(), r_sum.data() + r_sum.size());
      }
      if (is_corner) {
        snap.bufs.emplace_back(t_sum.data(), t_sum.data() + t_sum.size());
      }
      return snap;
    });
  }
  // No shrink / reconstruction: under rollback a crash aborts the round and
  // the machine re-executes from the last committed epoch instead.
  if (hold_s) out.s_sum = s_sum;
  if (hold_r) out.r_sum = r_sum;
  if (is_corner) out.t_sum = t_sum;
  return out;
}

#define CAMB_INSTANTIATE(T)                                \
  template SummaAbftOutputT<T> summa_abft_ckpt_rank<T>(    \
      ckpt::SessionT<T>&, const SummaAbftConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 summa_abft_ckpt_steps(const SummaAbftConfig& cfg) { return cfg.base.g; }

i64 summa_abft_ckpt_snapshot_words(const SummaAbftConfig& cfg, int logical,
                                   i64 step) {
  (void)step;  // the checksum state has a fixed footprint across stages
  const i64 g = cfg.base.g;
  const i64 i = logical / g, j = logical % g;
  const BlockDist1D d1(cfg.base.shape.n1, g), d3(cfg.base.shape.n3, g);
  const i64 d1max = d1.size(0), d3max = d3.size(0);
  std::vector<i64> sizes = {d1.size(i) * d3.size(j)};
  if (i == 0) sizes.push_back(d1max * d3.size(j));
  if (j == 0) sizes.push_back(d1.size(i) * d3max);
  if (i == g - 1 && j == g - 1) sizes.push_back(d1max * d3max);
  return snapshot_wire_words(sizes);
}

i64 summa_abft_ckpt_base_recv_words(const SummaAbftConfig& cfg, int rank) {
  return summa_abft_predicted_recv_words(cfg, rank) -
         coll::shrink_recv_words_exact(
             static_cast<int>(cfg.base.g * cfg.base.g), cfg.max_failures);
}

template <typename T>
Grid3dAbftOutputT<T> grid3d_abft_ckpt_rank(ckpt::SessionT<T>& session,
                                           const Grid3dAbftConfig& cfg) {
  RankCtx& ctx = session.ctx();
  Grid3dConfig base = cfg.base;
  base.integer_inputs = !ScalarTraits<T>::exact;
  CAMB_CHECK_MSG(base.grid.total() == session.nprocs(),
                 "grid size must equal the logical machine size");
  const int me = session.rank();
  const GridMap map(base.grid);
  const auto [q1, q2, q3] = map.coords_of(me);
  const Grid3dLayout layout = grid3d_layout(base, me);
  i64 lmax = 0;
  for (i64 c : layout.c_counts) lmax = std::max(lmax, c);

  // The parity fiber first (mirroring grid3d_abft_rank, which builds it
  // before the grid comm), then the three algorithm fibers in grid3d's
  // axis order — the same lease sequence on every rank.
  const coll::Comm parity_fiber = session.comm(map.fiber(1, q1, q2, q3));
  const coll::Comm fiber_b = session.comm(map.fiber(0, q1, q2, q3));
  const coll::Comm fiber_c = session.comm(map.fiber(1, q1, q2, q3));
  const coll::Comm fiber_a = session.comm(map.fiber(2, q1, q2, q3));

  const i64 t0 = session.resume_step();
  std::vector<T> a_flat, b_flat;
  Grid3dAbftOutputT<T> out;
  out.own.c_chunk = layout.c;
  std::vector<T> parity;
  if (session.restored()) {
    const SnapshotT<T>& snap = session.snapshot();
    if (t0 == 1) {
      a_flat = snap.bufs.at(0);
    } else if (t0 == 2) {
      a_flat = snap.bufs.at(0);
      b_flat = snap.bufs.at(1);
    } else if (t0 == 3) {
      out.own.c_data = snap.bufs.at(0);
    } else {
      CAMB_CHECK(t0 == 4);
      out.own.c_data = snap.bufs.at(0);
      parity = snap.bufs.at(1);
    }
  }

  for (i64 step = t0; step < 4; ++step) {
    if (step == 0) {
      ctx.set_phase(kPhaseAllgatherA);
      const camb::WorkingSet a_ws(ctx, layout.a.block_size());
      a_flat = coll::allgather(fiber_a, layout.a_counts,
                               abft_fill<T>(layout.a), base.allgather);
    } else if (step == 1) {
      ctx.set_phase(kPhaseAllgatherB);
      const camb::WorkingSet b_ws(ctx, layout.b.block_size());
      b_flat = coll::allgather(fiber_b, layout.b_counts,
                               abft_fill<T>(layout.b), base.allgather);
    } else if (step == 2) {
      ctx.set_phase(kPhaseLocalGemm);
      const camb::WorkingSet d_ws(ctx, layout.c.block_size());
      Matrix<T> a_block(layout.a.rows, layout.a.cols);
      std::copy(a_flat.begin(), a_flat.end(), a_block.data());
      Matrix<T> b_block(layout.b.rows, layout.b.cols);
      std::copy(b_flat.begin(), b_flat.end(), b_block.data());
      const Matrix<T> d_block = gemm(a_block, b_block);
      ctx.set_phase(kPhaseReduceScatterC);
      std::vector<T> d_flat(d_block.data(), d_block.data() + d_block.size());
      out.own.c_data = coll::reduce_scatter(fiber_c, layout.c_counts, d_flat,
                                            base.reduce_scatter);
      CAMB_CHECK(static_cast<i64>(out.own.c_data.size()) ==
                 layout.c.flat_size);
    } else {
      ctx.set_phase(kPhaseAbftEncode);
      std::vector<T> padded = out.own.c_data;
      padded.resize(static_cast<std::size_t>(lmax), ScalarTraits<T>::zero());
      parity = coll::allreduce(parity_fiber, std::move(padded));
    }
    session.boundary(step + 1, [&] {
      SnapshotT<T> snap;
      if (step == 0) {
        snap.bufs = {a_flat};
      } else if (step == 1) {
        snap.bufs = {a_flat, b_flat};
      } else if (step == 2) {
        snap.bufs = {out.own.c_data};
      } else {
        snap.bufs = {out.own.c_data, parity};
      }
      return snap;
    });
  }
  out.parity = parity;
  return out;
}

#define CAMB_INSTANTIATE(T)                                \
  template Grid3dAbftOutputT<T> grid3d_abft_ckpt_rank<T>(  \
      ckpt::SessionT<T>&, const Grid3dAbftConfig&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 grid3d_abft_ckpt_steps(const Grid3dAbftConfig& cfg) {
  (void)cfg;
  return 4;
}

i64 grid3d_abft_ckpt_snapshot_words(const Grid3dAbftConfig& cfg, int logical,
                                    i64 step) {
  const Grid3dLayout layout = grid3d_layout(cfg.base, logical);
  if (step == 1) return snapshot_wire_words({layout.a.block_size()});
  if (step == 2) {
    return snapshot_wire_words({layout.a.block_size(), layout.b.block_size()});
  }
  if (step == 3) return snapshot_wire_words({layout.c.flat_size});
  i64 lmax = 0;
  for (i64 c : layout.c_counts) lmax = std::max(lmax, c);
  return snapshot_wire_words({layout.c.flat_size, lmax});
}

i64 grid3d_abft_ckpt_base_recv_words(const Grid3dAbftConfig& cfg, int rank) {
  return grid3d_abft_predicted_recv_words(cfg, rank) -
         coll::shrink_recv_words_exact(
             static_cast<int>(cfg.base.grid.total()), cfg.max_failures);
}

template <typename T>
AbftCorrection summa_abft_correct(const SummaAbftConfig& cfg,
                                  std::vector<SummaAbftOutputT<T>>& outputs) {
  const i64 g = cfg.base.g;
  CAMB_CHECK_MSG(static_cast<i64>(outputs.size()) == g * g,
                 "correction needs every rank's output");
  const BlockDist1D d1(cfg.base.shape.n1, g), d3(cfg.base.shape.n3, g);
  const i64 d1max = d1.size(0);
  const T zero = ScalarTraits<T>::zero();

  // A corrupted cell at local (r, c) of tile (i*, j*) shows up at exactly
  // (r, c) in both its column syndrome D_{j*} (pad_rows keeps local rows)
  // and its row syndrome E_{i*} (pad_cols keeps local columns), with the
  // same magnitude — all sums are exact (integer-valued pattern, or native
  // integer arithmetic for exact scalars), so clean cells have syndrome
  // exactly zero.
  struct Hit {
    i64 block = -1;  // j for column hits, i for row hits
    i64 r = 0;
    i64 c = 0;
    T delta{};
  };
  std::vector<Hit> col_hits, row_hits;
  for (i64 j = 0; j < g; ++j) {
    const Matrix<T>& s =
        outputs[static_cast<std::size_t>(rank_of(0, j, g))].s_sum;
    CAMB_CHECK_MSG(s.rows() == d1max && s.cols() == d3.size(j),
                   "correction needs the checksums of a crash-free run");
    Matrix<T> d(d1max, d3.size(j));
    for (i64 i = 0; i < g; ++i) {
      const Matrix<T>& tile =
          outputs[static_cast<std::size_t>(rank_of(i, j, g))].own.block;
      for (i64 r = 0; r < tile.rows(); ++r) {
        for (i64 c = 0; c < tile.cols(); ++c) d(r, c) += tile(r, c);
      }
    }
    for (i64 r = 0; r < d.rows(); ++r) {
      for (i64 c = 0; c < d.cols(); ++c) {
        const T delta = d(r, c) - s(r, c);
        if (delta != zero) col_hits.push_back(Hit{j, r, c, delta});
      }
    }
  }
  for (i64 i = 0; i < g; ++i) {
    const Matrix<T>& rsum =
        outputs[static_cast<std::size_t>(rank_of(i, 0, g))].r_sum;
    CAMB_CHECK_MSG(rsum.rows() == d1.size(i),
                   "correction needs the checksums of a crash-free run");
    Matrix<T> e(d1.size(i), rsum.cols());
    for (i64 j = 0; j < g; ++j) {
      const Matrix<T>& tile =
          outputs[static_cast<std::size_t>(rank_of(i, j, g))].own.block;
      for (i64 r = 0; r < tile.rows(); ++r) {
        for (i64 c = 0; c < tile.cols(); ++c) e(r, c) += tile(r, c);
      }
    }
    for (i64 r = 0; r < e.rows(); ++r) {
      for (i64 c = 0; c < e.cols(); ++c) {
        const T delta = e(r, c) - rsum(r, c);
        if (delta != zero) row_hits.push_back(Hit{i, r, c, delta});
      }
    }
  }

  AbftCorrection result;
  if (col_hits.empty() && row_hits.empty()) return result;
  if (col_hits.size() == 1 && row_hits.size() == 1) {
    const Hit& ch = col_hits.front();
    const Hit& rh = row_hits.front();
    if (ch.r == rh.r && ch.c == rh.c && ch.delta == rh.delta) {
      const int rank = rank_of(rh.block, ch.block, g);
      Matrix<T>& tile = outputs[static_cast<std::size_t>(rank)].own.block;
      if (ch.r < tile.rows() && ch.c < tile.cols()) {
        tile(ch.r, ch.c) -= ch.delta;
        result.detected = 1;
        result.corrected = 1;
        result.corrected_ranks.push_back(rank);
        return result;
      }
    }
  }
  // More simultaneous errors than the single-error code localizes (or an
  // inconsistent intersection): report them for the Freivalds backstop.
  result.detected =
      static_cast<int>(std::max(col_hits.size(), row_hits.size()));
  result.uncorrected = result.detected;
  return result;
}

#define CAMB_INSTANTIATE(T)                 \
  template AbftCorrection summa_abft_correct<T>( \
      const SummaAbftConfig&, std::vector<SummaAbftOutputT<T>>&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

template <typename T>
AbftCorrection grid3d_abft_correct(
    const Grid3dAbftConfig& cfg, std::vector<Grid3dAbftOutputT<T>>& outputs,
    const std::type_identity_t<std::function<T(i64, i64)>>& expected_entry) {
  const GridMap map(cfg.base.grid);
  CAMB_CHECK_MSG(cfg.base.grid.total() == static_cast<i64>(outputs.size()),
                 "correction needs every rank's output");
  const T zero = ScalarTraits<T>::zero();
  AbftCorrection result;
  for (i64 q1 = 0; q1 < cfg.base.grid.p1; ++q1) {
    for (i64 q3 = 0; q3 < cfg.base.grid.p3; ++q3) {
      const std::vector<int> members = map.fiber(1, q1, 0, q3);
      const std::vector<T>& parity =
          outputs[static_cast<std::size_t>(members.front())].parity;
      CAMB_CHECK_MSG(!parity.empty() || cfg.base.shape.n1 == 0,
                     "correction needs the parities of a crash-free run");
      const i64 lmax = static_cast<i64>(parity.size());
      // Parity syndrome: the members' chunks overlap *elementwise* in the
      // fiber parity (each chunk padded to lmax), so a nonzero entry gives
      // the corrupted local element and magnitude but not the member.
      std::vector<T> syndrome(parity.size(), zero);
      for (int m : members) {
        const std::vector<T>& data =
            outputs[static_cast<std::size_t>(m)].own.c_data;
        for (std::size_t k = 0; k < data.size(); ++k) syndrome[k] += data[k];
      }
      for (i64 k = 0; k < lmax; ++k) {
        syndrome[static_cast<std::size_t>(k)] -=
            parity[static_cast<std::size_t>(k)];
        const T delta = syndrome[static_cast<std::size_t>(k)];
        if (delta == zero) continue;
        ++result.detected;
        // Disambiguate by recomputing the one expected entry per candidate
        // member: exactly one should disagree with it, by exactly delta.
        int culprit = -1;
        int mismatches = 0;
        for (int m : members) {
          const Grid3dRankOutputT<T>& own =
              outputs[static_cast<std::size_t>(m)].own;
          if (k >= static_cast<i64>(own.c_data.size())) continue;
          const i64 flat = own.c_chunk.flat_start + k;
          const T expected =
              expected_entry(own.c_chunk.row0 + flat / own.c_chunk.cols,
                             own.c_chunk.col0 + flat % own.c_chunk.cols);
          const T actual = own.c_data[static_cast<std::size_t>(k)];
          if (actual != expected) {
            ++mismatches;
            if (actual - expected == delta) culprit = m;
          }
        }
        if (mismatches == 1 && culprit >= 0) {
          outputs[static_cast<std::size_t>(culprit)]
              .own.c_data[static_cast<std::size_t>(k)] -= delta;
          ++result.corrected;
          result.corrected_ranks.push_back(culprit);
        } else {
          ++result.uncorrected;
        }
      }
    }
  }
  std::sort(result.corrected_ranks.begin(), result.corrected_ranks.end());
  result.corrected_ranks.erase(std::unique(result.corrected_ranks.begin(),
                                           result.corrected_ranks.end()),
                               result.corrected_ranks.end());
  return result;
}

#define CAMB_INSTANTIATE(T)                                         \
  template AbftCorrection grid3d_abft_correct<T>(                   \
      const Grid3dAbftConfig&, std::vector<Grid3dAbftOutputT<T>>&,  \
      const std::type_identity_t<std::function<T(i64, i64)>>&);
CAMB_FOR_EACH_SCALAR(CAMB_INSTANTIATE)
#undef CAMB_INSTANTIATE

i64 grid3d_abft_predicted_recv_words(const Grid3dAbftConfig& cfg, int rank) {
  const GridMap map(cfg.base.grid);
  const auto [q1, q2, q3] = map.coords_of(rank);
  (void)q1;
  (void)q3;
  const Grid3dLayout layout = grid3d_layout(cfg.base, rank);
  i64 lmax = 0;
  for (i64 c : layout.c_counts) lmax = std::max(lmax, c);
  i64 words = grid3d_predicted_recv_words(cfg.base, rank);
  words += coll::allreduce_recv_words_exact(static_cast<int>(cfg.base.grid.p2),
                                            static_cast<int>(q2), lmax);
  words += coll::shrink_recv_words_exact(
      static_cast<int>(cfg.base.grid.total()), cfg.max_failures);
  return words;
}

}  // namespace camb::mm
