// cost_eq3.hpp — §5.1: the closed-form cost model of Algorithm 1 (eq. 3),
// its memory footprint, and the §6.2 strong-scaling analysis.
//
// With bandwidth-optimal collectives, Algorithm 1 on a p1×p2×p3 grid
// communicates, per processor,
//
//   n1n2/(p1p2) + n2n3/(p2p3) + n1n3/(p1p3) − (n1n2 + n2n3 + n1n3)/P   (eq. 3)
//
// words.  The first three ("positive") terms are also the local memory the
// algorithm needs (§6.2).  The integration tests assert the executed machine
// reproduces these numbers exactly under divisibility.
#pragma once

#include <vector>

#include "core/bounds.hpp"
#include "core/grid.hpp"

namespace camb::core {

/// The three positive terms of eq. 3: the words of A, B, and C data each
/// processor must hold after the All-Gathers / before the Reduce-Scatter.
struct Eq3Terms {
  double a_words = 0;  ///< n1n2/(p1p2)
  double b_words = 0;  ///< n2n3/(p2p3)
  double c_words = 0;  ///< n1n3/(p1p3)

  double sum() const { return a_words + b_words + c_words; }
};

Eq3Terms alg1_positive_terms(const Shape& shape, const Grid3& grid);

/// Full eq. 3 communication cost (words per processor, critical path).
double alg1_cost_words(const Shape& shape, const Grid3& grid);

/// Exact integer eq. 3 when the grid divides the dimensions; throws if not.
i64 alg1_cost_words_exact(const Shape& shape, const Grid3& grid);

/// Per-collective communication of Algorithm 1 on this grid — the
/// (1 − 1/p_i)·w terms of §5.1, in words received per rank.
struct Alg1CommBreakdown {
  double allgather_a = 0;      ///< (1 − 1/p3) · n1n2/(p1p2)
  double allgather_b = 0;      ///< (1 − 1/p1) · n2n3/(p2p3)
  double reduce_scatter_c = 0; ///< (1 − 1/p2) · n1n3/(p1p3)

  double total() const { return allgather_a + allgather_b + reduce_scatter_c; }
};
Alg1CommBreakdown alg1_comm_breakdown(const Shape& shape, const Grid3& grid);

/// Local memory words Algorithm 1 needs per processor: gathered inputs plus
/// the local product D (§6.2 identifies this with the positive terms of
/// eq. 3; D is the same size as the C term's pre-reduction data).
double alg1_memory_words(const Shape& shape, const Grid3& grid);

/// Local multiplication flops per processor: n1 n2 n3 / P.
double alg1_flops(const Shape& shape, const Grid3& grid);

/// Reduction flops per processor: (1 − 1/p2) n1n3/(p1p3) (§5.1).
double alg1_reduction_flops(const Shape& shape, const Grid3& grid);

/// One point of the §6.2 strong-scaling sweep.
struct ScalingPoint {
  double P = 1;
  RegimeCase regime = RegimeCase::kThreeD;
  double mem_independent = 0;  ///< Theorem 3 words
  double mem_dependent = 0;    ///< 2mnk/(P√M) words
  double bound = 0;            ///< max of the two
  bool memory_limited = false; ///< Alg. 1's 3D footprint would exceed M
};

/// Evaluate the combined bound across processor counts for fixed local
/// memory M (the §6.2 analysis / strong-scaling picture of Ballard et al.).
std::vector<ScalingPoint> scaling_sweep(double m, double n, double k, double M,
                                        const std::vector<double>& Ps);

}  // namespace camb::core
