// general_bounds.hpp — §6.3: the proof technique applied beyond matrix
// multiplication.
//
// The paper closes by observing that its argument "depends only on the
// number of operations a given word of data is involved in, so it can be
// applied to many other computations that have iteration spaces with uneven
// dimensions."  This module implements that generalization for the class of
// computations the argument covers directly: *matmul-like bilinear maps* —
// a 3D iteration space of extents (d1, d2, d3) in which every lattice point
// reads/writes one element of each of three arrays, each array indexed by a
// distinct pair of the three axes.  Examples beyond plain GEMM: element-wise
// scaled products C(i,j) ⊕= f(A(i,k), B(k,j)) for any constant-cost f
// (tropical/boolean semiring matmul, pairwise interaction kernels, certain
// dense tensor contractions flattened to three index groups).
//
// The recipe, exactly as in the paper:
//   * Lemma 1 analog — an element of the array omitting axis a is used in
//     d_a operations, so a processor doing W ops accesses >= W / d_a of it;
//   * Loomis–Whitney — the three pairwise projections of the processor's
//     point set satisfy x1 x2 x3 >= (W)^2 ... >= (V/P)^2 for balanced work;
//   * the general optimization problem (optimization.hpp) solved with
//     arbitrary floors.
#pragma once

#include <array>
#include <string>

#include "core/optimization.hpp"

namespace camb::core {

/// A matmul-like bilinear computation: iteration extents and the cost model
/// derived from them.  extents need not be sorted.
struct BilinearComputation {
  std::array<double, 3> extents = {1, 1, 1};  ///< d1, d2, d3

  /// Total elementary operations V = d1 d2 d3.
  double volume() const;
  /// Size of the array indexed by the two axes other than `axis`.
  double array_size(int axis) const;
  /// Operations each element of that array participates in (= d_axis).
  double reuse(int axis) const;

  void validate() const;
};

/// The generalized memory-independent bound for one (computation, P).
struct GeneralBound {
  std::array<double, 3> x = {1, 1, 1};  ///< optimal per-array access volumes,
                                        ///< ordered smallest array first
  double accessed = 0;  ///< Σ x_i — data some processor must access
  double owned = 0;     ///< (Σ array sizes)/P — data it may hold for free
  double words = 0;     ///< max(0, accessed − owned)
  int active_floors = 0;  ///< 0, 1, or 2 — how many Lemma-1 floors bind
                          ///< (the analog of the 3D/2D/1D cases)
};

/// Computes the bound by solving the general optimization problem with
/// floors S_i/P and product floor (V/P)^2.
GeneralBound general_memory_independent_bound(const BilinearComputation& comp,
                                              double P);

/// Sanity bridge: plain matrix multiplication as a BilinearComputation.
BilinearComputation matmul_computation(double n1, double n2, double n3);

/// Human-readable regime label from the active floor count
/// ("3D-like", "2D-like", "1D-like").
std::string regime_label(const GeneralBound& bound);

}  // namespace camb::core
