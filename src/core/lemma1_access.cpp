#include "core/lemma1_access.hpp"

#include "util/error.hpp"

namespace camb::core {

AccessBounds access_bounds_for_work(const Shape& shape, double work) {
  CAMB_CHECK_MSG(work >= 0, "work must be non-negative");
  CAMB_CHECK_MSG(work <= static_cast<double>(shape.flops()) * (1 + 1e-12),
                 "work exceeds the total multiplication count");
  return AccessBounds{
      work / static_cast<double>(shape.n3),
      work / static_cast<double>(shape.n1),
      work / static_cast<double>(shape.n2),
  };
}

AccessBounds access_bounds(const Shape& shape, double nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "P must be >= 1");
  return access_bounds_for_work(shape,
                                static_cast<double>(shape.flops()) / nprocs);
}

i64 multiplications_per_element(const Shape& shape, MatrixId id) {
  switch (id) {
    case MatrixId::A: return shape.n3;
    case MatrixId::B: return shape.n1;
    case MatrixId::C: return shape.n2;
  }
  throw Error("bad MatrixId");
}

}  // namespace camb::core
