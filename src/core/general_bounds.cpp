#include "core/general_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace camb::core {

double BilinearComputation::volume() const {
  return extents[0] * extents[1] * extents[2];
}

double BilinearComputation::array_size(int axis) const {
  CAMB_CHECK(axis >= 0 && axis < 3);
  return volume() / extents[static_cast<std::size_t>(axis)];
}

double BilinearComputation::reuse(int axis) const {
  CAMB_CHECK(axis >= 0 && axis < 3);
  return extents[static_cast<std::size_t>(axis)];
}

void BilinearComputation::validate() const {
  for (double d : extents) {
    CAMB_CHECK_MSG(d >= 1, "iteration extents must be >= 1");
  }
}

GeneralBound general_memory_independent_bound(const BilinearComputation& comp,
                                              double P) {
  comp.validate();
  CAMB_CHECK_MSG(P >= 1, "P must be >= 1");
  const double V = comp.volume();
  // Floors S_i / P, ordered smallest array (largest reuse) first so the
  // solution aligns with the x1 <= x2 <= x3 convention of Lemma 2.
  std::array<double, 3> sizes = {comp.array_size(0), comp.array_size(1),
                                 comp.array_size(2)};
  std::sort(sizes.begin(), sizes.end());
  GeneralLemma2Problem prob;
  prob.product_floor = (V / P) * (V / P);
  prob.floors = {sizes[0] / P, sizes[1] / P, sizes[2] / P};
  GeneralBound bound;
  bound.x = solve_enumerate(prob);
  bound.accessed = bound.x[0] + bound.x[1] + bound.x[2];
  bound.owned = (sizes[0] + sizes[1] + sizes[2]) / P;
  bound.words = std::max(0.0, bound.accessed - bound.owned);
  bound.active_floors = 0;
  for (int i = 0; i < 3; ++i) {
    if (approx_eq(bound.x[static_cast<std::size_t>(i)],
                  prob.floors[static_cast<std::size_t>(i)], 1e-9)) {
      ++bound.active_floors;
    }
  }
  return bound;
}

BilinearComputation matmul_computation(double n1, double n2, double n3) {
  // Axis a of the iteration space corresponds to dimension n_{a+1}; the
  // array omitting axis 0 (n1) is B, axis 1 is C, axis 2 is A — sizes work
  // out to n2n3, n1n3, n1n2 as required.
  return BilinearComputation{{n1, n2, n3}};
}

std::string regime_label(const GeneralBound& bound) {
  switch (bound.active_floors) {
    case 0: return "3D-like (no per-array floor binds)";
    case 1: return "2D-like (largest array's floor binds)";
    case 2: return "1D-like (two floors bind)";
    default: return "degenerate (all floors bind; P = 1)";
  }
}

}  // namespace camb::core
