#include "core/grid.hpp"

#include <cmath>
#include <limits>
#include <tuple>

#include "core/cost_eq3.hpp"
#include "util/error.hpp"

namespace camb::core {

RealGrid optimal_grid_real(double m, double n, double k, double P) {
  Lemma2Problem{m, n, k, P}.validate();
  RealGrid grid;
  grid.regime = classify_regime(m, n, k, P);
  switch (grid.regime) {
    case RegimeCase::kOneD:
      grid.p = P;
      grid.q = 1;
      grid.r = 1;
      break;
    case RegimeCase::kTwoD:
      // m/p = n/q with pq = P: p = m (P/mn)^{1/2}, q = n (P/mn)^{1/2}.
      grid.p = m * std::sqrt(P / (m * n));
      grid.q = n * std::sqrt(P / (m * n));
      grid.r = 1;
      break;
    case RegimeCase::kThreeD: {
      // m/p = n/q = k/r with pqr = P: scale factor (P/mnk)^{1/3}.
      const double s = std::cbrt(P / (m * n * k));
      grid.p = m * s;
      grid.q = n * s;
      grid.r = k * s;
      break;
    }
  }
  return grid;
}

Grid3 to_raw_grid(const Shape& shape, i64 p, i64 q, i64 r) {
  const SortedDims sorted = sort_dims(shape);
  std::array<i64, 3> raw{1, 1, 1};
  raw[static_cast<std::size_t>(sorted.axis_of[0])] = p;
  raw[static_cast<std::size_t>(sorted.axis_of[1])] = q;
  raw[static_cast<std::size_t>(sorted.axis_of[2])] = r;
  return Grid3{raw[0], raw[1], raw[2]};
}

namespace {

/// Rounds a positive real to i64 iff it is within 1e-9 relative of an
/// integer; returns -1 otherwise.
i64 as_integer(double value) {
  const double rounded = std::round(value);
  if (rounded < 1) return -1;
  if (std::abs(value - rounded) <= 1e-9 * std::max(1.0, value)) {
    return static_cast<i64>(rounded);
  }
  return -1;
}

}  // namespace

bool try_exact_optimal_grid(const Shape& shape, i64 P, Grid3* out) {
  CAMB_CHECK_MSG(P >= 1, "P must be >= 1");
  const SortedDims sorted = sort_dims(shape);
  const RealGrid real = optimal_grid_real(static_cast<double>(sorted.m),
                                          static_cast<double>(sorted.n),
                                          static_cast<double>(sorted.k),
                                          static_cast<double>(P));
  const i64 p = as_integer(real.p);
  const i64 q = as_integer(real.q);
  const i64 r = as_integer(real.r);
  if (p <= 0 || q <= 0 || r <= 0 || p * q * r != P) return false;
  if (out != nullptr) *out = to_raw_grid(shape, p, q, r);
  return true;
}

Grid3 exact_optimal_grid(const Shape& shape, i64 P) {
  Grid3 grid;
  CAMB_CHECK_MSG(try_exact_optimal_grid(shape, P, &grid),
                 "the section 5.2 optimal grid is not integral for this (shape, P)");
  return grid;
}

Grid3 best_integer_grid_over(const Shape& shape,
                             const std::vector<FactorTriple>& triples) {
  CAMB_CHECK_MSG(!triples.empty(), "best_integer_grid_over needs candidates");
  Grid3 best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const FactorTriple& t : triples) {
    const Grid3 grid{t.a, t.b, t.c};
    const double cost = alg1_cost_words(shape, grid);
    if (cost < best_cost) {
      best_cost = cost;
      best = grid;
    }
  }
  return best;
}

Grid3 best_integer_grid(const Shape& shape, i64 P) {
  CAMB_CHECK_MSG(P >= 1, "P must be >= 1");
  return best_integer_grid_over(shape, factor_triples(P));
}

Grid3 best_integer_grid_at_most_over(const Shape& shape, i64 max_procs,
                                     const TripleSource& triples_of) {
  CAMB_CHECK_MSG(max_procs >= 1, "max_procs must be >= 1");
  const double flops = 2.0 * static_cast<double>(shape.n1) *
                       static_cast<double>(shape.n2) *
                       static_cast<double>(shape.n3);
  Grid3 best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (i64 p = 1; p <= max_procs; ++p) {
    for (const FactorTriple& t : triples_of(p)) {
      const Grid3 grid{t.a, t.b, t.c};
      const double cost =
          alg1_cost_words(shape, grid) +
          kPlanGammaOverBeta * flops / static_cast<double>(grid.total());
      if (cost < best_cost ||
          (cost == best_cost &&
           (grid.total() > best.total() ||
            (grid.total() == best.total() &&
             std::tie(grid.p1, grid.p2, grid.p3) <
                 std::tie(best.p1, best.p2, best.p3))))) {
        best_cost = cost;
        best = grid;
      }
    }
  }
  return best;
}

Grid3 best_integer_grid_at_most(const Shape& shape, i64 max_procs) {
  std::vector<FactorTriple> triples;
  FactorScratch scratch;
  return best_integer_grid_at_most_over(
      shape, max_procs, [&](i64 p) -> const std::vector<FactorTriple>& {
        factor_triples_into(p, triples, scratch);
        return triples;
      });
}

std::vector<Grid3> all_grids(i64 P) {
  const std::vector<FactorTriple> triples = factor_triples(P);
  std::vector<Grid3> out;
  out.reserve(triples.size());
  for (const FactorTriple& t : triples) out.push_back({t.a, t.b, t.c});
  return out;
}

bool grid_divides(const Shape& shape, const Grid3& grid) {
  CAMB_CHECK(grid.p1 >= 1 && grid.p2 >= 1 && grid.p3 >= 1);
  return shape.n1 % grid.p1 == 0 && shape.n2 % grid.p2 == 0 &&
         shape.n3 % grid.p3 == 0;
}

}  // namespace camb::core
