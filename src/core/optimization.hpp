// optimization.hpp — §4.2, Lemma 2: the key constrained optimization problem.
//
//   minimize    x1 + x2 + x3
//   subject to  (mnk/P)^2 <= x1 x2 x3          (Loomis–Whitney constraint)
//               nk/P <= x1,  mk/P <= x2,  mn/P <= x3   (Lemma 1 constraints)
//
// with m >= n >= k >= 1 and P >= 1.  The variables are the projection sizes
// of one processor's work onto the three matrices, ordered smallest (x1,
// the nk face) to largest (x3, the mn face).
//
// Three independent solvers are provided:
//   * solve_analytic   — the paper's closed-form three-case solution with the
//                        KKT dual certificate (Cases 1–3 of Lemma 2);
//   * solve_enumerate  — active-set enumeration: for each subset of clamped
//                        variables, the free ones equalize on the product
//                        surface; exact and independent of the case formulas;
//   * solve_numeric    — projected gradient descent in log-space; a third,
//                        structurally different cross-check.
// Property tests assert all three agree.
#pragma once

#include <array>

#include "util/math.hpp"

namespace camb::core {

/// The problem data of Lemma 2. Values are real (the lemma is stated over R).
struct Lemma2Problem {
  double m = 1, n = 1, k = 1, P = 1;

  /// (mnk/P)^2 — the Loomis–Whitney lower bound on the product x1 x2 x3.
  double product_floor() const;
  /// The three per-variable lower bounds {nk/P, mk/P, mn/P}.
  std::array<double, 3> variable_floors() const;
  /// Validates m >= n >= k >= 1, P >= 1; throws otherwise.
  void validate() const;
};

/// Which of the three cases of Lemma 2 applies (boundaries overlap; at a
/// boundary the adjacent cases coincide and we report the smaller id).
enum class RegimeCase : int {
  kOneD = 1,    ///< P <= m/n        — 1D regime, x1 = nk clamps
  kTwoD = 2,    ///< m/n <= P <= mn/k^2 — 2D regime, x3 = mn/P clamps
  kThreeD = 3,  ///< mn/k^2 <= P     — 3D regime, all variables equal
};

RegimeCase classify_regime(double m, double n, double k, double P);

/// Full solution: primal optimum, dual certificate, and metadata.
struct Lemma2Solution {
  RegimeCase regime = RegimeCase::kThreeD;
  std::array<double, 3> x = {0, 0, 0};   ///< optimal (x1, x2, x3)
  std::array<double, 4> mu = {0, 0, 0, 0};  ///< KKT multipliers (paper's μ*)
  double objective = 0;                  ///< x1 + x2 + x3 at the optimum
};

/// The paper's closed-form solution (proof of Lemma 2).
Lemma2Solution solve_analytic(const Lemma2Problem& prob);

/// The §6.3 generalization of the optimization problem: minimize
/// x1 + x2 + x3 subject to x1 x2 x3 >= product_floor and x_i >= floors[i],
/// for ANY positive floors (not just the matmul-derived nk/P, mk/P, mn/P).
/// This is the form that applies to other computations with uneven
/// iteration spaces (general_bounds.hpp builds on it).
struct GeneralLemma2Problem {
  double product_floor = 1;
  std::array<double, 3> floors = {1, 1, 1};

  void validate() const;
};

/// Active-set enumeration solver (exact, independent of the case analysis).
std::array<double, 3> solve_enumerate(const GeneralLemma2Problem& prob);
std::array<double, 3> solve_enumerate(const Lemma2Problem& prob);

/// Projected-gradient solver in log-space; `iters` gradient steps.
/// Accuracy is ~1e-6 relative for well-scaled inputs.
std::array<double, 3> solve_numeric(const GeneralLemma2Problem& prob,
                                    int iters = 20000);
std::array<double, 3> solve_numeric(const Lemma2Problem& prob, int iters = 20000);

}  // namespace camb::core
