#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace camb::core {

BoundResult memory_independent_bound_sorted(double m, double n, double k,
                                            double P) {
  Lemma2Problem prob{m, n, k, P};
  prob.validate();
  BoundResult out;
  out.regime = classify_regime(m, n, k, P);
  switch (out.regime) {
    case RegimeCase::kOneD:
      out.leading_term = n * k;
      out.constant = 1.0;
      out.D = (m * n + m * k) / P + n * k;
      break;
    case RegimeCase::kTwoD:
      out.leading_term = std::sqrt(m * n * k * k / P);
      out.constant = 2.0;
      out.D = 2.0 * out.leading_term + m * n / P;
      break;
    case RegimeCase::kThreeD:
      out.leading_term = std::pow(m * n * k / P, 2.0 / 3.0);
      out.constant = 3.0;
      out.D = 3.0 * out.leading_term;
      break;
  }
  out.owned = (m * n + m * k + n * k) / P;
  out.words = std::max(0.0, out.D - out.owned);
  return out;
}

BoundResult memory_independent_bound(const Shape& shape, double P) {
  const SortedDims sorted = sort_dims(shape);
  return memory_independent_bound_sorted(static_cast<double>(sorted.m),
                                         static_cast<double>(sorted.n),
                                         static_cast<double>(sorted.k), P);
}

double square_bound(double n, double P) {
  CAMB_CHECK_MSG(n >= 1 && P >= 1, "need n >= 1 and P >= 1");
  return std::max(0.0, 3.0 * n * n / std::pow(P, 2.0 / 3.0) - 3.0 * n * n / P);
}

double memory_dependent_leading(double m, double n, double k, double P,
                                double M) {
  CAMB_CHECK_MSG(M > 0, "local memory must be positive");
  return 2.0 * m * n * k / (P * std::sqrt(M));
}

CombinedBound tightest_bound(double m, double n, double k, double P, double M) {
  CombinedBound out;
  out.mem_independent = memory_independent_bound_sorted(m, n, k, P).words;
  out.mem_dependent = memory_dependent_leading(m, n, k, P, M);
  out.mem_dependent_dominates = out.mem_dependent > out.mem_independent;
  out.words = std::max(out.mem_independent, out.mem_dependent);
  return out;
}

double memory_dependent_dominance_threshold(double m, double n, double k,
                                            double M) {
  CAMB_CHECK_MSG(M > 0, "local memory must be positive");
  return (8.0 / 27.0) * m * n * k / std::pow(M, 1.5);
}

double sufficient_memory_threshold(double m, double n, double k, double P) {
  return (4.0 / 9.0) * std::pow(m * n * k / P, 2.0 / 3.0);
}

double lemma2_objective(double m, double n, double k, double P) {
  return solve_analytic(Lemma2Problem{m, n, k, P}).objective;
}

}  // namespace camb::core
