// kkt.hpp — §3.2: KKT conditions (Def. 4) and the convexity facts
// (Defs. 2–3, Lemmas 5–6) for the Lemma 2 problem family.
//
// The analytic solution of Lemma 2 is certified by exhibiting dual variables
// satisfying the KKT conditions, which are *sufficient* for optimality here
// because the objective is convex and each constraint quasiconvex (Lemma 6).
// This module verifies the certificate numerically for any instance, and
// provides sampling probes of the convexity/quasiconvexity definitions that
// the property tests exercise (a mechanical check of Lemma 5's claim).
#pragma once

#include <array>

#include "core/optimization.hpp"
#include "util/rng.hpp"

namespace camb::core {

/// Constraint values g(x) of the Lemma 2 problem (feasible iff all <= 0):
///   g0 = (mnk/P)^2 - x1 x2 x3
///   g1 = nk/P - x1,  g2 = mk/P - x2,  g3 = mn/P - x3
std::array<double, 4> constraint_values(const Lemma2Problem& prob,
                                        const std::array<double, 3>& x);

/// Jacobian of g at x (4 rows, 3 columns).
std::array<std::array<double, 3>, 4> constraint_jacobian(
    const std::array<double, 3>& x);

/// Outcome of checking the four KKT conditions at (x, mu).
struct KktReport {
  bool primal_feasible = false;
  bool dual_feasible = false;
  bool stationary = false;
  bool complementary = false;
  double worst_violation = 0.0;

  bool ok() const {
    return primal_feasible && dual_feasible && stationary && complementary;
  }
};

/// Verify Def. 4 at (x, mu) with relative tolerance `tol`.  Violations are
/// measured relative to the scale of the quantities involved so the check is
/// meaningful across many orders of magnitude of (m, n, k, P).
KktReport verify_kkt(const Lemma2Problem& prob, const std::array<double, 3>& x,
                     const std::array<double, 4>& mu, double tol = 1e-9);

/// Sampling probe of Def. 3 for g0(x) = L - x1 x2 x3 on the positive octant
/// (Lemma 5): draws `trials` random pairs (x, y) with g0(y) <= g0(x) and
/// checks <∇g0(x), y - x> <= 0.  Returns true if no counterexample is found.
bool probe_quasiconvexity_g0(double L, int trials, std::uint64_t seed);

/// Sampling probe of Def. 2 for the objective f(x) = x1 + x2 + x3 (trivially
/// convex; included so the test suite checks the definition machinery).
bool probe_convexity_objective(int trials, std::uint64_t seed);

}  // namespace camb::core
