// loomis_whitney.hpp — Lemma 1 of §3.2: the Loomis–Whitney inequality for
// lattice-point sets in Z^3, plus the matrix-multiplication projections of
// Theorem 3's proof.
//
// A set F of scalar multiplications (i1, i2, i3) projects onto the three
// matrices:  φ_A(F) = {(i1,i2)}, φ_B(F) = {(i2,i3)}, φ_C(F) = {(i1,i3)},
// and Loomis–Whitney gives |F| <= |φ_A| · |φ_B| · |φ_C|.  This module
// computes exact projection cardinalities for explicit sets, used by tests
// to verify the inequality and by the brute-force lower-bound audit example.
#pragma once

#include <array>
#include <vector>

#include "core/dims.hpp"

namespace camb::core {

/// One scalar multiplication: indices (i1, i2, i3) meaning
/// A(i1, i2) * B(i2, i3) contributing to C(i1, i3).
using Point3 = std::array<i64, 3>;

/// Sizes of the three projections of a point set.
struct Projections {
  i64 onto_a = 0;  ///< |φ_A(F)| — distinct (i1, i2) pairs
  i64 onto_b = 0;  ///< |φ_B(F)| — distinct (i2, i3) pairs
  i64 onto_c = 0;  ///< |φ_C(F)| — distinct (i1, i3) pairs

  i64 sum() const { return onto_a + onto_b + onto_c; }
  /// The Loomis–Whitney product upper bound on |F|.
  i64 product() const;
};

/// Exact projection cardinalities of an explicit point set (duplicates in
/// `points` are ignored).
Projections projections(const std::vector<Point3>& points);

/// Number of distinct points in the set.
i64 distinct_count(std::vector<Point3> points);

/// True iff the Loomis–Whitney inequality |F| <= |φ_A||φ_B||φ_C| holds for
/// the set (it always should; exists so property tests can say so).
bool loomis_whitney_holds(const std::vector<Point3>& points);

/// Enumerates all points of the n1×n2×n3 iteration cuboid (row-major order).
/// Intended for tiny shapes (the audit example); checks the size is modest.
std::vector<Point3> full_iteration_space(const Shape& shape, i64 max_points);

/// Brute-force: the minimum projection sum over *all* subsets of the
/// iteration cuboid with exactly `subset_size` points.  Exponential —
/// callers must keep shape.flops() small (checked, <= 24).  Used by the
/// audit example and tests to verify Lemma 2's optimum is a true lower bound.
i64 min_projection_sum_exact(const Shape& shape, i64 subset_size);

/// Sampled variant: the minimum projection sum over `trials` random subsets
/// of the given size (upper bound on the true minimum — still must respect
/// the Lemma 2 optimum from below, which is the property tests assert).
i64 min_projection_sum_sampled(const Shape& shape, i64 subset_size,
                               int trials, std::uint64_t seed);

}  // namespace camb::core
