// bounds.hpp — §4.3: the paper's main result.
//
// Theorem 3 (memory-independent lower bound): any parallel algorithm on P
// processors that starts with one copy of the inputs, ends with one copy of
// the output, and load balances computation or data must communicate at least
// D − (mn + mk + nk)/P words, where D is the three-case expression below.
// Corollary 4 specializes to square matrices.  §6.2 relates this to the
// memory-dependent bound 2mnk/(P·sqrt(M)).
#pragma once

#include "core/dims.hpp"
#include "core/optimization.hpp"

namespace camb::core {

/// The evaluated Theorem 3 bound for one (shape, P) instance.
struct BoundResult {
  RegimeCase regime = RegimeCase::kThreeD;
  double leading_term = 0;  ///< nk, (mnk^2/P)^{1/2}, or (mnk/P)^{2/3}
  double constant = 0;      ///< 1, 2, or 3 — the paper's tight constants
  double D = 0;             ///< the case expression of Theorem 3
  double owned = 0;         ///< (mn + mk + nk)/P — data a processor may own
  double words = 0;         ///< the bound: D − owned (clamped at 0)
};

/// Theorem 3 in sorted dimensions (m >= n >= k).
BoundResult memory_independent_bound_sorted(double m, double n, double k,
                                            double P);

/// Theorem 3 for a raw shape (sorts internally).
BoundResult memory_independent_bound(const Shape& shape, double P);

/// Corollary 4: square n×n matrices — 3 n^2 / P^{2/3} − 3 n^2 / P.
double square_bound(double n, double P);

/// Leading term of the memory-dependent bound (Smith et al. 2019 constant):
/// 2 m n k / (P sqrt(M)).
double memory_dependent_leading(double m, double n, double k, double P,
                                double M);

/// The two bounds combined (§6.2): any algorithm must communicate at least
/// max(memory-independent, memory-dependent) words.
struct CombinedBound {
  double mem_independent = 0;
  double mem_dependent = 0;
  double words = 0;  ///< max of the two
  bool mem_dependent_dominates = false;
};
CombinedBound tightest_bound(double m, double n, double k, double P, double M);

/// §6.2: the memory-dependent bound dominates the 3rd-case memory-independent
/// bound exactly when mn/k^2 < P <= (8/27) mnk / M^{3/2}.  Returns that upper
/// threshold on P.
double memory_dependent_dominance_threshold(double m, double n, double k,
                                            double M);

/// §6.2: minimum local memory for which Alg. 1's 3D-grid footprint fits —
/// M >= (4/9)^{-1}... expressed as the paper's condition: the 3D regime
/// analysis requires M >= (4/9) (mnk/P)^{2/3} to avoid the limited-memory
/// scenario.  Returns (4/9)·(mnk/P)^{2/3}.
double sufficient_memory_threshold(double m, double n, double k, double P);

/// Consistency check used by tests: Theorem 3's D equals the optimum of
/// Lemma 2's optimization problem (they are the same quantity by the proof).
double lemma2_objective(double m, double n, double k, double P);

}  // namespace camb::core
