// lemma1_access.hpp — §4.1, Lemma 1: lower bounds on individual array access.
//
// A processor performing at least 1/P of the n1·n2·n3 scalar multiplications
// must access at least n1n2/P elements of A and n2n3/P elements of B, and
// must contribute to at least n1n3/P elements of C, because each element of
// A (resp. B, C) participates in only n3 (resp. n1, n2) multiplications.
// These per-array bounds are the constraints that activate in the 1D and 2D
// regimes of Lemma 2 and are what tightens the constants over prior work.
#pragma once

#include "core/dims.hpp"

namespace camb::core {

/// Per-array access lower bounds for a processor performing `work` scalar
/// multiplications of a `shape` problem.
struct AccessBounds {
  double a;  ///< minimum elements of A accessed
  double b;  ///< minimum elements of B accessed
  double c;  ///< minimum elements of C contributed to
};

/// Lemma 1 with the general work volume: a processor performing `work`
/// multiplications must access >= work/n3 of A, >= work/n1 of B, and
/// contribute to >= work/n2 of C.
AccessBounds access_bounds_for_work(const Shape& shape, double work);

/// Lemma 1 as stated (work = n1 n2 n3 / P).
AccessBounds access_bounds(const Shape& shape, double nprocs);

/// The number of scalar multiplications a single element of the given matrix
/// participates in (n3 for A, n1 for B, n2 for C).
i64 multiplications_per_element(const Shape& shape, MatrixId id);

}  // namespace camb::core
