#include "core/loomis_whitney.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace camb::core {

i64 Projections::product() const {
  return checked_mul3(onto_a, onto_b, onto_c);
}

Projections projections(const std::vector<Point3>& points) {
  std::set<std::pair<i64, i64>> pa, pb, pc;
  for (const auto& pt : points) {
    pa.emplace(pt[0], pt[1]);
    pb.emplace(pt[1], pt[2]);
    pc.emplace(pt[0], pt[2]);
  }
  return Projections{static_cast<i64>(pa.size()), static_cast<i64>(pb.size()),
                     static_cast<i64>(pc.size())};
}

i64 distinct_count(std::vector<Point3> points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return static_cast<i64>(points.size());
}

bool loomis_whitney_holds(const std::vector<Point3>& points) {
  return distinct_count(points) <= projections(points).product();
}

std::vector<Point3> full_iteration_space(const Shape& shape, i64 max_points) {
  const i64 total = shape.flops();
  CAMB_CHECK_MSG(total <= max_points,
                 "iteration space too large for explicit enumeration");
  std::vector<Point3> points;
  points.reserve(static_cast<std::size_t>(total));
  for (i64 i1 = 0; i1 < shape.n1; ++i1) {
    for (i64 i2 = 0; i2 < shape.n2; ++i2) {
      for (i64 i3 = 0; i3 < shape.n3; ++i3) points.push_back({i1, i2, i3});
    }
  }
  return points;
}

namespace {

/// Recursively choose `remaining` more points starting at candidate index
/// `from`, tracking the best (minimum) projection sum seen.
void choose_rec(const std::vector<Point3>& universe, std::size_t from,
                i64 remaining, std::vector<Point3>& chosen, i64& best) {
  if (remaining == 0) {
    best = std::min(best, projections(chosen).sum());
    return;
  }
  if (universe.size() - from < static_cast<std::size_t>(remaining)) return;
  // Take universe[from] or skip it.
  chosen.push_back(universe[from]);
  choose_rec(universe, from + 1, remaining - 1, chosen, best);
  chosen.pop_back();
  choose_rec(universe, from + 1, remaining, chosen, best);
}

}  // namespace

i64 min_projection_sum_exact(const Shape& shape, i64 subset_size) {
  CAMB_CHECK_MSG(shape.flops() <= 24,
                 "exact subset enumeration limited to <= 24 points");
  CAMB_CHECK(subset_size >= 1 && subset_size <= shape.flops());
  const auto universe = full_iteration_space(shape, 24);
  std::vector<Point3> chosen;
  i64 best = std::numeric_limits<i64>::max();
  choose_rec(universe, 0, subset_size, chosen, best);
  return best;
}

i64 min_projection_sum_sampled(const Shape& shape, i64 subset_size, int trials,
                               std::uint64_t seed) {
  const i64 total = shape.flops();
  CAMB_CHECK_MSG(total <= (i64{1} << 22), "sampled audit shape too large");
  CAMB_CHECK(subset_size >= 1 && subset_size <= total);
  auto universe = full_iteration_space(shape, i64{1} << 22);
  Rng rng(seed);
  i64 best = std::numeric_limits<i64>::max();
  std::vector<Point3> subset(static_cast<std::size_t>(subset_size));
  for (int t = 0; t < trials; ++t) {
    // Partial Fisher–Yates: choose subset_size distinct points.
    for (i64 j = 0; j < subset_size; ++j) {
      const i64 pick = j + rng.range(0, total - 1 - j);
      std::swap(universe[static_cast<std::size_t>(j)],
                universe[static_cast<std::size_t>(pick)]);
      subset[static_cast<std::size_t>(j)] = universe[static_cast<std::size_t>(j)];
    }
    best = std::min(best, projections(subset).sum());
  }
  return best;
}

}  // namespace camb::core
