// prior_bounds.hpp — Table 1: explicit constants from prior work.
//
// The paper's headline comparison (Table 1) lists, for each of the three
// regimes, the constant multiplying the leading term in the best previously
// known memory-independent lower bound:
//
//                      1 <= P <= m/n   m/n <= P <= mn/k^2   mn/k^2 <= P
//   leading term            nk          (mnk^2/P)^{1/2}     (mnk/P)^{2/3}
//   Aggarwal et al. 1990     —                —              (1/2)^{2/3}
//   Irony et al. 2004        —                —                 1/2
//   Demmel et al. 2013     16/25          (2/3)^{1/2}             1
//   Theorem 3 (this paper)   1                2                   3
//
// This module encodes those constants so the Table 1 bench can regenerate
// the comparison and the tests can assert the strict improvement.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/optimization.hpp"

namespace camb::core {

/// One row of Table 1: a prior result's constant per regime (nullopt where
/// the work proved no bound for that regime).
struct PriorBoundRow {
  std::string name;
  std::optional<double> case1;
  std::optional<double> case2;
  std::optional<double> case3;

  std::optional<double> constant(RegimeCase regime) const;
};

PriorBoundRow aggarwal_chandra_snir_1990();
PriorBoundRow irony_toledo_tiskin_2004();
PriorBoundRow demmel_et_al_2013();
PriorBoundRow theorem3_2022();

/// All rows in Table 1 order (priors first, Theorem 3 last).
std::vector<PriorBoundRow> table1_rows();

/// The leading term of the given regime at (m, n, k, P) (the table's header
/// row): nk, (mnk^2/P)^{1/2}, or (mnk/P)^{2/3}.
double leading_term(RegimeCase regime, double m, double n, double k, double P);

}  // namespace camb::core
