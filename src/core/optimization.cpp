#include "core/optimization.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace camb::core {

double Lemma2Problem::product_floor() const {
  const double v = m * n * k / P;
  return v * v;
}

std::array<double, 3> Lemma2Problem::variable_floors() const {
  return {n * k / P, m * k / P, m * n / P};
}

void Lemma2Problem::validate() const {
  CAMB_CHECK_MSG(k >= 1 && n >= k && m >= n, "need m >= n >= k >= 1");
  CAMB_CHECK_MSG(P >= 1, "need P >= 1");
}

RegimeCase classify_regime(double m, double n, double k, double P) {
  Lemma2Problem{m, n, k, P}.validate();
  if (P <= m / n) return RegimeCase::kOneD;
  if (P <= m * n / (k * k)) return RegimeCase::kTwoD;
  return RegimeCase::kThreeD;
}

Lemma2Solution solve_analytic(const Lemma2Problem& prob) {
  prob.validate();
  const double m = prob.m, n = prob.n, k = prob.k, P = prob.P;
  Lemma2Solution sol;
  sol.regime = classify_regime(m, n, k, P);
  switch (sol.regime) {
    case RegimeCase::kOneD: {
      // x* = (nk, mk/P, mn/P); constraints 1, 3, 4 active.
      sol.x = {n * k, m * k / P, m * n / P};
      sol.mu = {P * P / (m * m * n * k), 0.0, 1.0 - P * n / m,
                1.0 - P * k / m};
      break;
    }
    case RegimeCase::kTwoD: {
      // x1* = x2* = sqrt(mnk^2/P), x3* = mn/P; constraints 1, 4 active.
      const double x12 = std::sqrt(m * n * k * k / P);
      sol.x = {x12, x12, m * n / P};
      sol.mu = {std::pow(P / (m * n * std::cbrt(k * k)), 1.5), 0.0, 0.0,
                1.0 - std::sqrt(P * k * k / (m * n))};
      break;
    }
    case RegimeCase::kThreeD: {
      // All variables equal (mnk/P)^{2/3}; only constraint 1 active.
      const double x = std::pow(m * n * k / P, 2.0 / 3.0);
      sol.x = {x, x, x};
      sol.mu = {std::pow(P / (m * n * k), 4.0 / 3.0), 0.0, 0.0, 0.0};
      break;
    }
  }
  sol.objective = sol.x[0] + sol.x[1] + sol.x[2];
  return sol;
}

void GeneralLemma2Problem::validate() const {
  CAMB_CHECK_MSG(product_floor > 0, "product floor must be positive");
  for (double f : floors) {
    CAMB_CHECK_MSG(f > 0, "variable floors must be positive");
  }
}

std::array<double, 3> solve_enumerate(const GeneralLemma2Problem& prob) {
  prob.validate();
  const double L2 = prob.product_floor;
  const auto& floors = prob.floors;
  double best_obj = std::numeric_limits<double>::infinity();
  std::array<double, 3> best = floors;
  // Candidate 0: all clamped at floors (the only candidate where the product
  // constraint may be inactive).
  {
    const double prod = floors[0] * floors[1] * floors[2];
    if (prod >= L2 * (1 - 1e-12)) {
      best_obj = floors[0] + floors[1] + floors[2];
      best = floors;
    }
  }
  // Candidates with a non-empty free set: free variables equalize on the
  // product surface (AM–GM), clamped variables sit at their floors.
  for (int mask = 0; mask < 7; ++mask) {  // mask bit i set => variable i clamped
    double clamped_prod = 1.0;
    int free_count = 0;
    for (int i = 0; i < 3; ++i) {
      if (mask & (1 << i)) {
        clamped_prod *= floors[static_cast<std::size_t>(i)];
      } else {
        ++free_count;
      }
    }
    if (free_count == 0) continue;  // handled above
    const double t = std::pow(L2 / clamped_prod, 1.0 / free_count);
    std::array<double, 3> x{};
    bool feasible = true;
    double obj = 0.0;
    for (int i = 0; i < 3; ++i) {
      const double xi =
          (mask & (1 << i)) ? floors[static_cast<std::size_t>(i)] : t;
      if (xi < floors[static_cast<std::size_t>(i)] * (1 - 1e-12)) {
        feasible = false;
        break;
      }
      x[static_cast<std::size_t>(i)] = xi;
      obj += xi;
    }
    if (feasible && obj < best_obj) {
      best_obj = obj;
      best = x;
    }
  }
  CAMB_CHECK_MSG(std::isfinite(best_obj), "no feasible active-set candidate");
  return best;
}

std::array<double, 3> solve_enumerate(const Lemma2Problem& prob) {
  prob.validate();
  return solve_enumerate(
      GeneralLemma2Problem{prob.product_floor(), prob.variable_floors()});
}

namespace {

/// Exact Euclidean projection of y onto {z : z >= b, sum(z) = c} when
/// sum(max(b, y)) <= c would leave slack — i.e. we need sum(z) == c with
/// z = max(b, y + lambda) for the unique lambda making the sum c.
/// Monotone in lambda, solved by bisection.
std::array<double, 3> project_affine_box(const std::array<double, 3>& y,
                                         const std::array<double, 3>& b,
                                         double c) {
  auto sum_at = [&](double lambda) {
    double s = 0;
    for (int i = 0; i < 3; ++i) {
      s += std::max(b[static_cast<std::size_t>(i)],
                    y[static_cast<std::size_t>(i)] + lambda);
    }
    return s;
  };
  // Bracket lambda.
  double lo = 0, hi = 0;
  if (sum_at(0) < c) {
    hi = 1;
    while (sum_at(hi) < c) hi *= 2;
  } else {
    lo = -1;
    while (sum_at(lo) > c) {
      // sum_at is bounded below by sum(b); if even that exceeds c the
      // constraint set is empty — callers guarantee c >= sum(b).
      if (lo < -1e30) break;
      lo *= 2;
    }
  }
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (sum_at(mid) < c) lo = mid;
    else hi = mid;
  }
  const double lambda = 0.5 * (lo + hi);
  return {std::max(b[0], y[0] + lambda), std::max(b[1], y[1] + lambda),
          std::max(b[2], y[2] + lambda)};
}

}  // namespace

std::array<double, 3> solve_numeric(const GeneralLemma2Problem& prob,
                                    int iters) {
  prob.validate();
  const double L2 = prob.product_floor;
  const auto& floors = prob.floors;
  const std::array<double, 3> b = {std::log(floors[0]), std::log(floors[1]),
                                   std::log(floors[2])};
  const double c = std::log(L2);
  const double sum_b = b[0] + b[1] + b[2];
  if (sum_b >= c - 1e-9) {
    // Floors alone satisfy the product constraint: they are optimal.
    return floors;
  }
  // Optimum lies on the product surface sum(y) == c (reducing any variable
  // below it is infeasible, and the objective is increasing in each y).
  std::array<double, 3> y = project_affine_box({c / 3, c / 3, c / 3}, b, c);
  for (int t = 0; t < iters; ++t) {
    double max_exp = 0;
    for (double yi : y) max_exp = std::max(max_exp, std::exp(yi));
    const double step = 0.5 / max_exp;  // scale-free step
    std::array<double, 3> g = {std::exp(y[0]), std::exp(y[1]), std::exp(y[2])};
    std::array<double, 3> next = {y[0] - step * g[0], y[1] - step * g[1],
                                  y[2] - step * g[2]};
    y = project_affine_box(next, b, c);
  }
  return {std::exp(y[0]), std::exp(y[1]), std::exp(y[2])};
}

std::array<double, 3> solve_numeric(const Lemma2Problem& prob, int iters) {
  prob.validate();
  return solve_numeric(
      GeneralLemma2Problem{prob.product_floor(), prob.variable_floors()},
      iters);
}

}  // namespace camb::core
