// grid.hpp — §5.2: optimal processor grid selection for Algorithm 1.
//
// The communication cost of Algorithm 1 (eq. 3) depends on the logical
// p1×p2×p3 grid.  The paper derives the real-valued optimal grid in each of
// the three regimes (1D, 2D, 3D grids respectively); with integrality and
// divisibility assumptions Algorithm 1 then attains the Theorem 3 bound
// exactly.  This module computes the exact real-valued grids, the best
// integer grid (exhaustive search over factor triples of P, minimizing
// eq. 3), and the axis mapping between sorted (p, q, r) and raw (p1, p2, p3).
#pragma once

#include <functional>
#include <vector>

#include "core/dims.hpp"
#include "core/optimization.hpp"

namespace camb::core {

/// A logical processor grid aligned to the raw axes: p1 splits n1 (rows of
/// A/C), p2 splits n2 (the contracted dimension), p3 splits n3 (cols of B/C).
struct Grid3 {
  i64 p1 = 1, p2 = 1, p3 = 1;

  i64 total() const { return checked_mul3(p1, p2, p3); }
  bool operator==(const Grid3&) const = default;
};

/// The §5.2 real-valued optimal grid in sorted coordinates: p splits the m
/// axis, q splits n, r splits k (p >= q >= r).
struct RealGrid {
  double p = 1, q = 1, r = 1;
  RegimeCase regime = RegimeCase::kThreeD;

  bool operator==(const RealGrid&) const = default;
};

/// Case 1 (P <= m/n): (P, 1, 1); Case 2: ((Pm/n)^{1/2}, (Pn/m)^{1/2}, 1);
/// Case 3: scaled so m/p = n/q = k/r.
RealGrid optimal_grid_real(double m, double n, double k, double P);

/// Maps a sorted grid (p on the m axis, q on n, r on k) back to raw axes.
Grid3 to_raw_grid(const Shape& shape, i64 p, i64 q, i64 r);

/// The §5.2 grid when its real-valued dimensions are integers; throws
/// camb::Error otherwise.  When this succeeds and the grid divides the
/// dimensions, Algorithm 1 attains Theorem 3 exactly.
Grid3 exact_optimal_grid(const Shape& shape, i64 P);

/// Non-throwing probe form of exact_optimal_grid: true iff the §5.2
/// real-valued grid is integral, writing it to `out`.  The planner's hot
/// path uses this flag without paying for a try/catch.
bool try_exact_optimal_grid(const Shape& shape, i64 P, Grid3* out);

/// Exhaustive search: the factor triple of P minimizing eq. 3 for `shape`.
/// Always succeeds (P = anything), even when the exact grid is fractional.
/// Returns the first minimizer in enumeration order, i.e. the
/// lexicographically smallest cost-minimizing triple.
Grid3 best_integer_grid(const Shape& shape, i64 P);

/// The same search over a caller-supplied candidate list (factor_triples(P)
/// order).  This is the hoisted, allocation-free core of best_integer_grid:
/// the planner feeds it memoized enumerations and gets bit-identical
/// answers because the loop, order, and comparisons are shared.
Grid3 best_integer_grid_over(const Shape& shape,
                             const std::vector<FactorTriple>& triples);

/// Source of factor-triple lists consulted by the at-most search: given p,
/// yield factor_triples(p) (same contents, same lexicographic order).  The
/// reference returned must stay valid until the next call.  Callers supply
/// either a fresh enumerator (the default overloads) or a memo cache
/// (src/planner's FactorCache).
using TripleSource = std::function<const std::vector<FactorTriple>&(i64)>;

/// All factor triples of P as grids (the ablation bench ranks them).
std::vector<Grid3> all_grids(i64 P);

/// Flops charged per word when a processor-count-constrained search weighs
/// shedding ranks against shedding communication: the γ/β ratio of the
/// default α-β-γ machine (1e-11 s/flop against 1e-9 s/word).  Eq. 3 alone
/// cannot rank grids of DIFFERENT totals — one rank moves zero words — so
/// the at-most search scores β·(eq. 3 words) + γ·(flops per rank) in units
/// of words: words + kPlanGammaOverBeta · 2·n1·n2·n3 / total.
inline constexpr double kPlanGammaOverBeta = 0.01;

/// Elastic re-planning: the best integer grid using AT MOST `max_procs`
/// ranks — the exhaustive eq. 3 search of best_integer_grid extended down
/// the divisor lattice, for survivor counts P′ whose own factorizations are
/// awkward (e.g. P′ prime after one failure).  Candidates are scored by
/// eq. 3 words plus the kPlanGammaOverBeta compute share, so dropping to a
/// sparser rank count must buy its communication savings against the serial
/// work it concentrates.  Deterministic tie-breaks: lowest score, then the
/// larger rank count (more parallelism at equal cost), then
/// lexicographically smallest (p1, p2, p3).
Grid3 best_integer_grid_at_most(const Shape& shape, i64 max_procs);

/// The hoisted core of best_integer_grid_at_most: identical search, but the
/// per-p candidate lists come from `triples_of` so a memo cache can feed it.
Grid3 best_integer_grid_at_most_over(const Shape& shape, i64 max_procs,
                                     const TripleSource& triples_of);

/// True iff every grid dimension divides its matrix dimension.
bool grid_divides(const Shape& shape, const Grid3& grid);

}  // namespace camb::core
