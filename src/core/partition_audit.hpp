// partition_audit.hpp — exhaustive verification of Theorem 3 on tiny
// problems, at the level the theorem is actually stated: over *parallel
// executions*, i.e. partitions of the iteration space among P processors.
//
// For a tiny n1×n2×n3 iteration space, enumerate every computation-balanced
// assignment of the multiplications to P processors, compute each
// processor's exact projections (the data it must access), and take
//
//     min over partitions of  max over processors of  (projection sum).
//
// Theorem 3's proof says this minimum is at least the Lemma 2 optimum.  The
// subset audit (loomis_whitney.hpp) checks one processor's subset; this one
// checks whole executions, so it exercises the "some processor must…"
// structure of the argument.  Exponential: P^flops / P! — keep flops small.
#pragma once

#include "core/dims.hpp"
#include "core/loomis_whitney.hpp"

namespace camb::core {

/// Result of the exhaustive partition audit.
struct PartitionAuditResult {
  i64 best_max_projection_sum = 0;  ///< min over partitions of max over parts
  i64 partitions_examined = 0;
  /// A witness partition achieving the optimum: part index per lattice point
  /// (row-major order of the iteration cuboid).
  std::vector<int> witness;
};

/// Enumerates every partition of the iteration space into P parts of exactly
/// |V|/P points each (requires P | flops; flops <= 16 enforced for P = 2,
/// smaller for larger P: P^flops must stay <= ~20M).  Symmetry-reduced by
/// fixing point 0 in part 0.
PartitionAuditResult audit_balanced_partitions(const Shape& shape, int nprocs);

/// Convenience predicate: the audit's communication-form statement — for
/// every balanced partition some processor must access at least the Lemma 2
/// optimum's worth of data.
bool partition_audit_confirms_bound(const Shape& shape, int nprocs);

}  // namespace camb::core
