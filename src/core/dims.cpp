#include "core/dims.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace camb::core {

std::string to_string(MatrixId id) {
  switch (id) {
    case MatrixId::A: return "A";
    case MatrixId::B: return "B";
    case MatrixId::C: return "C";
  }
  throw Error("bad MatrixId");
}

i64 Shape::flops() const { return checked_mul3(n1, n2, n3); }

MatrixId SortedDims::small_matrix() const {
  // The face of size n*k spans the median and min axes, i.e. it omits the
  // axis carrying m.
  return matrix_without_axis(axis_of[0]);
}

MatrixId SortedDims::mid_matrix() const { return matrix_without_axis(axis_of[1]); }

MatrixId SortedDims::large_matrix() const { return matrix_without_axis(axis_of[2]); }

std::array<i64, 3> SortedDims::face_sizes() const {
  return {checked_mul(n, k), checked_mul(m, k), checked_mul(m, n)};
}

SortedDims sort_dims(const Shape& shape) {
  CAMB_CHECK_MSG(shape.n1 >= 1 && shape.n2 >= 1 && shape.n3 >= 1,
                 "all dimensions must be >= 1");
  const std::array<i64, 3> raw = {shape.n1, shape.n2, shape.n3};
  std::array<int, 3> order = {0, 1, 2};
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return raw[static_cast<std::size_t>(a)] >
                                              raw[static_cast<std::size_t>(b)]; });
  SortedDims out;
  out.m = raw[static_cast<std::size_t>(order[0])];
  out.n = raw[static_cast<std::size_t>(order[1])];
  out.k = raw[static_cast<std::size_t>(order[2])];
  out.axis_of = order;
  return out;
}

MatrixId matrix_without_axis(int axis) {
  switch (axis) {
    case 0: return MatrixId::B;  // n1 appears in A (n1×n2) and C (n1×n3)
    case 1: return MatrixId::C;  // n2 appears in A and B
    case 2: return MatrixId::A;  // n3 appears in B and C
  }
  throw Error("axis must be 0, 1, or 2");
}

i64 matrix_size(const Shape& shape, MatrixId id) {
  switch (id) {
    case MatrixId::A: return shape.size_a();
    case MatrixId::B: return shape.size_b();
    case MatrixId::C: return shape.size_c();
  }
  throw Error("bad MatrixId");
}

}  // namespace camb::core
