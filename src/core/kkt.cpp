#include "core/kkt.hpp"

#include <algorithm>
#include <cmath>

namespace camb::core {

std::array<double, 4> constraint_values(const Lemma2Problem& prob,
                                        const std::array<double, 3>& x) {
  const auto floors = prob.variable_floors();
  return {prob.product_floor() - x[0] * x[1] * x[2], floors[0] - x[0],
          floors[1] - x[1], floors[2] - x[2]};
}

std::array<std::array<double, 3>, 4> constraint_jacobian(
    const std::array<double, 3>& x) {
  return {{
      {-x[1] * x[2], -x[0] * x[2], -x[0] * x[1]},
      {-1, 0, 0},
      {0, -1, 0},
      {0, 0, -1},
  }};
}

KktReport verify_kkt(const Lemma2Problem& prob, const std::array<double, 3>& x,
                     const std::array<double, 4>& mu, double tol) {
  KktReport report;
  const auto g = constraint_values(prob, x);
  const auto jac = constraint_jacobian(x);

  // Scales for relative comparisons.
  const double x_scale = std::max({std::abs(x[0]), std::abs(x[1]),
                                   std::abs(x[2]), 1.0});
  const double prod_scale = std::max(prob.product_floor(), 1.0);

  // Primal feasibility: g(x) <= 0 (g0 compared at product scale).
  double worst = 0.0;
  worst = std::max(worst, g[0] / prod_scale);
  for (int i = 1; i < 4; ++i) {
    worst = std::max(worst, g[static_cast<std::size_t>(i)] / x_scale);
  }
  report.primal_feasible = worst <= tol;
  report.worst_violation = std::max(report.worst_violation, worst);

  // Dual feasibility: mu >= 0.
  double dual_worst = 0.0;
  for (double mui : mu) dual_worst = std::max(dual_worst, -mui);
  report.dual_feasible = dual_worst <= tol;
  report.worst_violation = std::max(report.worst_violation, dual_worst);

  // Stationarity: grad f + mu . J_g = 0, with grad f = (1, 1, 1).
  double stat_worst = 0.0;
  for (int j = 0; j < 3; ++j) {
    double value = 1.0;
    double scale = 1.0;
    for (int i = 0; i < 4; ++i) {
      const double term = mu[static_cast<std::size_t>(i)] *
                          jac[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      value += term;
      scale = std::max(scale, std::abs(term));
    }
    stat_worst = std::max(stat_worst, std::abs(value) / scale);
  }
  report.stationary = stat_worst <= tol;
  report.worst_violation = std::max(report.worst_violation, stat_worst);

  // Complementary slackness: mu_i * g_i = 0, scaled per constraint.
  double comp_worst = 0.0;
  comp_worst = std::max(comp_worst, std::abs(mu[0] * g[0]) /
                                        std::max(1.0, mu[0] * prod_scale));
  for (int i = 1; i < 4; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    comp_worst = std::max(comp_worst, std::abs(mu[iu] * g[iu]) /
                                          std::max(1.0, mu[iu] * x_scale));
  }
  report.complementary = comp_worst <= tol;
  report.worst_violation = std::max(report.worst_violation, comp_worst);
  return report;
}

bool probe_quasiconvexity_g0(double L, int trials, std::uint64_t seed) {
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    // Random points in the positive octant over several orders of magnitude.
    std::array<double, 3> x, y;
    for (int i = 0; i < 3; ++i) {
      x[static_cast<std::size_t>(i)] = std::exp(rng.uniform(-3.0, 6.0));
      y[static_cast<std::size_t>(i)] = std::exp(rng.uniform(-3.0, 6.0));
    }
    const double g0x = L - x[0] * x[1] * x[2];
    const double g0y = L - y[0] * y[1] * y[2];
    if (g0y > g0x) continue;  // premise of Def. 3 not met
    // <grad g0(x), y - x> must be <= 0 (allow tiny numerical slack).
    const double inner = -x[1] * x[2] * (y[0] - x[0]) +
                         -x[0] * x[2] * (y[1] - x[1]) +
                         -x[0] * x[1] * (y[2] - x[2]);
    const double scale = x[0] * x[1] * x[2] + 1.0;
    if (inner > 1e-9 * scale) return false;
  }
  return true;
}

bool probe_convexity_objective(int trials, std::uint64_t seed) {
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::array<double, 3> x, y;
    for (int i = 0; i < 3; ++i) {
      x[static_cast<std::size_t>(i)] = rng.uniform(-100.0, 100.0);
      y[static_cast<std::size_t>(i)] = rng.uniform(-100.0, 100.0);
    }
    // f(y) >= f(x) + <grad f(x), y - x> with grad f = (1,1,1): equality for
    // affine f, so any violation is a numerics bug.
    const double lhs = y[0] + y[1] + y[2];
    const double rhs = x[0] + x[1] + x[2] + (y[0] - x[0]) + (y[1] - x[1]) +
                       (y[2] - x[2]);
    if (lhs < rhs - 1e-9 * (std::abs(lhs) + std::abs(rhs) + 1.0)) return false;
  }
  return true;
}

}  // namespace camb::core
