#include "core/cost_eq3.hpp"

#include <cmath>

#include "util/error.hpp"

namespace camb::core {

Eq3Terms alg1_positive_terms(const Shape& shape, const Grid3& grid) {
  const auto n1 = static_cast<double>(shape.n1);
  const auto n2 = static_cast<double>(shape.n2);
  const auto n3 = static_cast<double>(shape.n3);
  const auto p1 = static_cast<double>(grid.p1);
  const auto p2 = static_cast<double>(grid.p2);
  const auto p3 = static_cast<double>(grid.p3);
  return Eq3Terms{n1 * n2 / (p1 * p2), n2 * n3 / (p2 * p3), n1 * n3 / (p1 * p3)};
}

double alg1_cost_words(const Shape& shape, const Grid3& grid) {
  const Eq3Terms terms = alg1_positive_terms(shape, grid);
  const auto P = static_cast<double>(grid.total());
  const double owned = static_cast<double>(shape.total_matrix_words()) / P;
  return terms.sum() - owned;
}

i64 alg1_cost_words_exact(const Shape& shape, const Grid3& grid) {
  CAMB_CHECK_MSG(grid_divides(shape, grid),
                 "exact eq. 3 requires the grid to divide the dimensions");
  const i64 a = checked_mul(shape.n1, shape.n2);
  const i64 b = checked_mul(shape.n2, shape.n3);
  const i64 c = checked_mul(shape.n1, shape.n3);
  // Each local block size is an exact integer under divisibility, and each
  // (1 - 1/p) w term expands to w - w/p with integer w/p.
  const i64 wa = a / (grid.p1 * grid.p2);
  const i64 wb = b / (grid.p2 * grid.p3);
  const i64 wc = c / (grid.p1 * grid.p3);
  // Full divisibility: each fiber must also divide its block, so that the
  // "distributed evenly across the fiber" layout has integral chunks.
  CAMB_CHECK_MSG(wa % grid.p3 == 0 && wb % grid.p1 == 0 && wc % grid.p2 == 0,
                 "exact eq. 3 requires fibers to divide their blocks evenly");
  return (wa - wa / grid.p3) + (wb - wb / grid.p1) + (wc - wc / grid.p2);
}

Alg1CommBreakdown alg1_comm_breakdown(const Shape& shape, const Grid3& grid) {
  const Eq3Terms terms = alg1_positive_terms(shape, grid);
  const auto p1 = static_cast<double>(grid.p1);
  const auto p2 = static_cast<double>(grid.p2);
  const auto p3 = static_cast<double>(grid.p3);
  return Alg1CommBreakdown{
      (1.0 - 1.0 / p3) * terms.a_words,
      (1.0 - 1.0 / p1) * terms.b_words,
      (1.0 - 1.0 / p2) * terms.c_words,
  };
}

double alg1_memory_words(const Shape& shape, const Grid3& grid) {
  // Gathered A and B blocks plus the local product D (same size as the C
  // term before reduction): exactly the positive terms of eq. 3.
  return alg1_positive_terms(shape, grid).sum();
}

double alg1_flops(const Shape& shape, const Grid3& grid) {
  return static_cast<double>(shape.flops()) /
         static_cast<double>(grid.total());
}

double alg1_reduction_flops(const Shape& shape, const Grid3& grid) {
  const Eq3Terms terms = alg1_positive_terms(shape, grid);
  return (1.0 - 1.0 / static_cast<double>(grid.p2)) * terms.c_words;
}

std::vector<ScalingPoint> scaling_sweep(double m, double n, double k, double M,
                                        const std::vector<double>& Ps) {
  CAMB_CHECK_MSG(M > 0, "local memory must be positive");
  std::vector<ScalingPoint> out;
  out.reserve(Ps.size());
  for (double P : Ps) {
    ScalingPoint pt;
    pt.P = P;
    pt.regime = classify_regime(m, n, k, P);
    pt.mem_independent = memory_independent_bound_sorted(m, n, k, P).words;
    pt.mem_dependent = memory_dependent_leading(m, n, k, P, M);
    pt.bound = std::max(pt.mem_independent, pt.mem_dependent);
    // §6.2: in the 3D regime Alg. 1 needs ~3 (mnk/P)^{2/3} local words; flag
    // when even the sufficient-memory threshold is violated.
    pt.memory_limited = M < sufficient_memory_threshold(m, n, k, P);
    out.push_back(pt);
  }
  return out;
}

}  // namespace camb::core
