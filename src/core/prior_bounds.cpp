#include "core/prior_bounds.hpp"

#include <cmath>

#include "util/error.hpp"

namespace camb::core {

std::optional<double> PriorBoundRow::constant(RegimeCase regime) const {
  switch (regime) {
    case RegimeCase::kOneD: return case1;
    case RegimeCase::kTwoD: return case2;
    case RegimeCase::kThreeD: return case3;
  }
  throw Error("bad regime");
}

PriorBoundRow aggarwal_chandra_snir_1990() {
  // LPRAM bound, Theorem 2.3 via Lemma 2.2: constant (1/2)^{2/3} on
  // (mnk/P)^{2/3}; no bounds for the small-P regimes.
  return {"Aggarwal et al. 1990", std::nullopt, std::nullopt,
          std::pow(0.5, 2.0 / 3.0)};
}

PriorBoundRow irony_toledo_tiskin_2004() {
  // Memory-independent corollary of their Thm 5.1, minimized over M:
  // (1/2)(mnk/P)^{2/3}; nothing tighter for P < mn/k^2.
  return {"Irony et al. 2004", std::nullopt, std::nullopt, 0.5};
}

PriorBoundRow demmel_et_al_2013() {
  // First bounds covering all three regimes (their Table I / §II.B).
  return {"Demmel et al. 2013", 16.0 / 25.0, std::sqrt(2.0 / 3.0), 1.0};
}

PriorBoundRow theorem3_2022() {
  // This paper: tight constants in every regime.
  return {"Theorem 3 (this paper)", 1.0, 2.0, 3.0};
}

std::vector<PriorBoundRow> table1_rows() {
  return {aggarwal_chandra_snir_1990(), irony_toledo_tiskin_2004(),
          demmel_et_al_2013(), theorem3_2022()};
}

double leading_term(RegimeCase regime, double m, double n, double k, double P) {
  Lemma2Problem{m, n, k, P}.validate();
  switch (regime) {
    case RegimeCase::kOneD: return n * k;
    case RegimeCase::kTwoD: return std::sqrt(m * n * k * k / P);
    case RegimeCase::kThreeD: return std::pow(m * n * k / P, 2.0 / 3.0);
  }
  throw Error("bad regime");
}

}  // namespace camb::core
