// dims.hpp — problem shapes and the (m, n, k) sorted view.
//
// The paper states everything in terms of the sorted dimensions
// m = max{n1,n2,n3}, n = median, k = min (Theorem 3), while algorithms work
// with the raw (n1, n2, n3): A is n1×n2, B is n2×n3, C = A·B is n1×n3.
// This header owns the mapping between the two views, including which matrix
// (A, B, or C) plays the role of the "smallest" (nk), "middle" (mk), and
// "largest" (mn) face of the iteration cuboid.
#pragma once

#include <array>
#include <string>

#include "util/math.hpp"

namespace camb::core {

/// Which matrix a face of the iteration space corresponds to.
enum class MatrixId { A, B, C };

std::string to_string(MatrixId id);

/// The raw problem shape: multiply an n1×n2 matrix A by an n2×n3 matrix B.
struct Shape {
  i64 n1 = 1;  ///< rows of A and C
  i64 n2 = 1;  ///< cols of A, rows of B (the contracted dimension)
  i64 n3 = 1;  ///< cols of B and C

  /// Total scalar multiplications n1*n2*n3 (overflow-checked).
  i64 flops() const;

  /// Element counts of the three matrices.
  i64 size_a() const { return checked_mul(n1, n2); }
  i64 size_b() const { return checked_mul(n2, n3); }
  i64 size_c() const { return checked_mul(n1, n3); }
  i64 total_matrix_words() const { return size_a() + size_b() + size_c(); }

  bool operator==(const Shape&) const = default;
};

/// The sorted view used by Theorem 3: m >= n >= k, plus the permutation
/// linking sorted dimensions back to (n1, n2, n3).
struct SortedDims {
  i64 m = 1;  ///< max dimension
  i64 n = 1;  ///< median dimension
  i64 k = 1;  ///< min dimension

  /// axis_of[0] is which raw axis (0 for n1, 1 for n2, 2 for n3) carries m,
  /// axis_of[1] carries n, axis_of[2] carries k.  Ties broken by axis order,
  /// so the permutation is always well defined.
  std::array<int, 3> axis_of = {0, 1, 2};

  /// The matrix that does NOT involve dimension m: its size is n*k, and it is
  /// the face corresponding to x1 in Lemma 2. Similarly mid (mk, x2) and
  /// large (mn, x3).
  MatrixId small_matrix() const;
  MatrixId mid_matrix() const;
  MatrixId large_matrix() const;

  /// Face sizes in sorted order {nk, mk, mn}.
  std::array<i64, 3> face_sizes() const;
};

/// Build the sorted view of a shape.
SortedDims sort_dims(const Shape& shape);

/// The matrix NOT involving raw axis `axis` (0->B, 1->C, 2->A): axis 0 (n1)
/// appears in A and C, so the untouched matrix is B, and so on.
MatrixId matrix_without_axis(int axis);

/// Size of matrix `id` under `shape`.
i64 matrix_size(const Shape& shape, MatrixId id);

}  // namespace camb::core
