#include "core/partition_audit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/optimization.hpp"
#include "util/error.hpp"

namespace camb::core {

namespace {

struct AuditState {
  std::vector<Point3> points;
  int nprocs = 1;
  i64 part_size = 0;
  std::vector<int> assignment;      // part of each point (filled prefix)
  std::vector<i64> part_counts;     // points assigned per part
  i64 best = 0;
  std::vector<int> witness;
  i64 examined = 0;
};

/// Projection sum of one part under a complete assignment.
i64 part_projection_sum(const AuditState& state, int part) {
  std::vector<Point3> members;
  for (std::size_t idx = 0; idx < state.points.size(); ++idx) {
    if (state.assignment[idx] == part) members.push_back(state.points[idx]);
  }
  return projections(members).sum();
}

void recurse(AuditState& state, std::size_t idx) {
  if (idx == state.points.size()) {
    ++state.examined;
    i64 worst = 0;
    for (int part = 0; part < state.nprocs; ++part) {
      worst = std::max(worst, part_projection_sum(state, part));
    }
    if (worst < state.best) {
      state.best = worst;
      state.witness = state.assignment;
    }
    return;
  }
  // Symmetry reduction: a point may only open part k if parts 0..k-1 are
  // already in use (canonical part numbering).
  int max_used = -1;
  for (std::size_t seen = 0; seen < idx; ++seen) {
    max_used = std::max(max_used, state.assignment[seen]);
  }
  const int limit = std::min(state.nprocs - 1, max_used + 1);
  for (int part = 0; part <= limit; ++part) {
    if (state.part_counts[static_cast<std::size_t>(part)] == state.part_size) {
      continue;  // balanced: parts are exactly |V|/P
    }
    state.assignment[idx] = part;
    state.part_counts[static_cast<std::size_t>(part)]++;
    recurse(state, idx + 1);
    state.part_counts[static_cast<std::size_t>(part)]--;
  }
  state.assignment[idx] = -1;
}

}  // namespace

PartitionAuditResult audit_balanced_partitions(const Shape& shape,
                                               int nprocs) {
  CAMB_CHECK_MSG(nprocs >= 1, "need at least one processor");
  const i64 total = shape.flops();
  CAMB_CHECK_MSG(total % nprocs == 0,
                 "balanced audit requires P | n1*n2*n3");
  // Guard the exponential blow-up: P^total <= ~20M states.
  CAMB_CHECK_MSG(total * std::log(static_cast<double>(nprocs)) <=
                     std::log(2e7),
                 "iteration space too large for exhaustive partition audit");
  AuditState state;
  state.points = full_iteration_space(shape, 64);
  state.nprocs = nprocs;
  state.part_size = total / nprocs;
  state.assignment.assign(state.points.size(), -1);
  state.part_counts.assign(static_cast<std::size_t>(nprocs), 0);
  state.best = std::numeric_limits<i64>::max();
  recurse(state, 0);
  CAMB_CHECK(state.examined > 0);
  PartitionAuditResult result;
  result.best_max_projection_sum = state.best;
  result.partitions_examined = state.examined;
  result.witness = state.witness;
  return result;
}

bool partition_audit_confirms_bound(const Shape& shape, int nprocs) {
  const PartitionAuditResult audit = audit_balanced_partitions(shape, nprocs);
  const SortedDims d = sort_dims(shape);
  const auto sol = solve_analytic({static_cast<double>(d.m),
                                   static_cast<double>(d.n),
                                   static_cast<double>(d.k),
                                   static_cast<double>(nprocs)});
  return static_cast<double>(audit.best_max_projection_sum) + 1e-9 >=
         sol.objective;
}

}  // namespace camb::core
