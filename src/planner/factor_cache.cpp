#include "planner/factor_cache.hpp"

#include "util/error.hpp"

namespace camb::planner {

FactorCache& FactorCache::instance() {
  static FactorCache cache;
  return cache;
}

std::shared_ptr<const FactorTable> FactorCache::get(i64 p) {
  CAMB_CHECK_MSG(p >= 1, "FactorCache requires p >= 1");
  return cache_.get_or_fill(p, [p] {
    auto table = std::make_shared<FactorTable>();
    table->p = p;
    divisors_into(p, table->divisors);
    factor_triples_into(p, table->triples);
    return std::shared_ptr<const FactorTable>(std::move(table));
  });
}

}  // namespace camb::planner
