// factor_cache.hpp — the sharded divisor / factor-triple memo.
//
// Every grid query starts from the same combinatorial object: the ordered
// factor triples of P, in the lexicographic order util/math's
// factor_triples produces.  Enumerating them costs O(sum over a|P of
// sqrt(P/a)) trial divisions — the dominant repeated work of the uncached
// best_integer_grid loop — yet the result depends on P alone.  This cache
// shares one immutable enumeration per P across all threads; the grid
// searches then run over the memoized list and stay bit-identical because
// the contents and order are exactly factor_triples(P).
#pragma once

#include <memory>

#include "planner/sharded_cache.hpp"
#include "util/math.hpp"

namespace camb::planner {

/// One immutable enumeration for a processor count: divisors ascending and
/// factor triples lexicographic — exactly divisors(p) / factor_triples(p).
struct FactorTable {
  i64 p = 1;
  std::vector<i64> divisors;
  std::vector<FactorTriple> triples;
};

class FactorCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit FactorCache(std::size_t capacity = kDefaultCapacity)
      : cache_(capacity) {}

  /// The process-wide cache (shared by the planner and elastic re-planning).
  static FactorCache& instance();

  /// The memoized enumeration for p (filled on first use).  shared_ptr so a
  /// table stays alive for its users even if evicted concurrently.
  std::shared_ptr<const FactorTable> get(i64 p);

  CacheCounters counters() const { return cache_.counters(); }
  std::size_t size() const { return cache_.size(); }
  void clear() { cache_.clear(); }

 private:
  struct Hash {
    std::size_t operator()(i64 p) const {
      return static_cast<std::size_t>(p);
    }
  };

  ShardedCache<i64, std::shared_ptr<const FactorTable>, Hash> cache_;
};

}  // namespace camb::planner
