// sharded_cache.hpp — the lock-striped memo map under every planner cache.
//
// The planner answers point queries from many threads at once (batch
// workers, elastic survivors re-planning inside rank bodies), so one global
// mutex would serialize the hot path.  Keys are hashed onto 64 shards, each
// its own mutex + unordered_map; a hit takes one short critical section.
// Fills run OUTSIDE the shard lock — two threads racing on the same cold
// key may both compute, but the computation is deterministic, so whichever
// insert lands second is discarded and both callers return identical bits.
//
// Capacity is a soft per-shard cap with oldest-bucket eviction: the maps
// never grow unboundedly under adversarial traffic, and eviction can only
// cost a recompute, never change an answer.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace camb::planner {

/// splitmix64 finalizer: the shard/key mixer (also used by machine seeds).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hit/miss counters of one cache (miss = the caller ran the fill).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

template <class Key, class Value, class KeyHash>
class ShardedCache {
 public:
  /// `capacity` is the total entry budget across all shards (>= kShards).
  explicit ShardedCache(std::size_t capacity)
      : per_shard_cap_(std::max<std::size_t>(1, capacity / kShards)) {}

  /// The cached value for `key`, or fill() stored under it.  fill must be a
  /// pure function of the key (the deterministic-race contract above).
  template <class Fill>
  Value get_or_fill(const Key& key, Fill&& fill) {
    Shard& shard = shard_of(key);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    Value value = fill();
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.map.size() >= per_shard_cap_) {
        shard.map.erase(shard.map.begin());
      }
      // Keep the incumbent on a racing double-fill (values are identical).
      shard.map.emplace(key, value);
    }
    return value;
  }

  CacheCounters counters() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 64;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value, KeyHash> map;
  };

  Shard& shard_of(const Key& key) {
    return shards_[mix64(KeyHash{}(key)) % kShards];
  }

  std::size_t per_shard_cap_;
  Shard shards_[kShards];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace camb::planner
