// planner.hpp — the grid-planner query engine: "optimal grid + bound" as a
// long-lived, thread-safe service.
//
// The analytic core answers the paper's central question — the best
// (p1,p2,p3) grid and the Theorem 3 memory-independent bound for any
// (n1,n2,n3,P) — but each call re-enumerates the factor triples of P and
// re-derives the per-shape regime structure from scratch.  This module
// memoizes all three layers behind one service object:
//
//   * FactorCache        — divisors + factor triples keyed by P (shared
//                          with elastic shrink-and-regrid re-planning);
//   * shape-facts cache  — per-aspect-ratio sorted dims, cached products,
//                          and the strong-scaling regime boundaries
//                          P1 = m/n and P2 = mn/k^2 of Ballard et al.
//                          (arXiv:1202.3177), so classifying a point query
//                          is two comparisons and evaluating Theorem 3 is a
//                          handful of flops on cached products;
//   * point caches       — solved (shape, P) plans and (shape, <=P) elastic
//                          re-plans, so repeated and skewed query mixes hit
//                          a sharded hash lookup.
//
// Correctness bar: every answer is bit-identical to the memo-free path
// (core::best_integer_grid / exact_optimal_grid / Theorem 3).  Cached plans
// are replays of plan_uncached computations; memoized enumerations feed the
// SAME search loop in the SAME order (core::best_integer_grid_over); the
// cached bound evaluation mirrors core/bounds.cpp expression-for-expression
// (see bound_at in planner.cpp).  tests/test_planner.cpp and
// bench_planner_qps prove the identity over randomized sweeps.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "planner/factor_cache.hpp"
#include "planner/sharded_cache.hpp"

namespace camb::planner {

/// One point query: the best grid and bound for multiplying an n1×n2 by an
/// n2×n3 matrix on P processors.
struct PlanRequest {
  core::Shape shape;
  i64 P = 1;

  bool operator==(const PlanRequest&) const = default;
};

/// The solved plan.  Bit-identical to the uncached path by construction.
struct PlanResult {
  core::Grid3 grid;            ///< best integer grid (eq. 3 argmin)
  double cost_words = 0;       ///< eq. 3 words of `grid`
  core::RegimeCase regime = core::RegimeCase::kThreeD;  ///< Theorem 3 case
  double bound_words = 0;      ///< Theorem 3 memory-independent bound
  double ratio = 1;            ///< cost / bound (1 when the bound is 0)
  core::RealGrid real;         ///< §5.2 real-valued optimal grid
  bool exact_grid = false;     ///< real grid integral AND equal to `grid`

  bool operator==(const PlanResult&) const = default;
};

/// Cached per-shape structure: sorted dims as doubles, the products the
/// Theorem 3 formulas consume, and the strong-scaling regime boundaries of
/// arXiv:1202.3177 (crossing P1 moves 1D→2D, crossing P2 moves 2D→3D).
/// Every product mirrors the exact expression shape of core/bounds.cpp and
/// core/optimization.cpp so downstream evaluation is bit-identical.
struct ShapeFacts {
  core::SortedDims sorted;
  double m = 1, n = 1, k = 1;
  double mn = 1;           ///< m * n
  double mk = 1;           ///< m * k
  double nk = 1;           ///< n * k
  double mnk = 1;          ///< (m * n) * k
  double mnkk = 1;         ///< ((m * n) * k) * k
  double faces = 3;        ///< (m*n + m*k) + n*k — the owned numerator
  double boundary_1d = 1;  ///< P1 = m / n
  double boundary_2d = 1;  ///< P2 = (m * n) / (k * k)
};

/// One maximal run of consecutive sweep points sharing a regime.
struct RegimeSegment {
  core::RegimeCase regime = core::RegimeCase::kThreeD;
  i64 p_lo = 1;
  i64 p_hi = 1;
};

/// One strong-scaling sweep point (integer-grid channel optional).
struct SweepPoint {
  i64 P = 1;
  core::RegimeCase regime = core::RegimeCase::kThreeD;
  double bound_words = 0;
  core::RealGrid real;
  core::Grid3 grid;
  double cost_words = 0;
  double ratio = 1;
};

struct SweepOptions {
  /// Also solve the integer grid per point (rides the point/factor caches).
  /// Off, the sweep is pure closed-form segment evaluation.
  bool with_integer_grids = true;
};

struct SweepResult {
  double boundary_1d = 1;  ///< P1 crossing (1D→2D)
  double boundary_2d = 1;  ///< P2 crossing (2D→3D)
  std::vector<RegimeSegment> segments;
  std::vector<SweepPoint> points;
};

/// Aggregate cache / traffic statistics of one planner.
struct PlannerStats {
  CacheCounters point;   ///< solved (shape, P) plans
  CacheCounters atmost;  ///< solved (shape, <=P) elastic re-plans
  CacheCounters shape;   ///< shape-facts / regime-boundary entries
  CacheCounters factor;  ///< process-wide divisor/triple tables
  std::uint64_t batch_queries = 0;  ///< queries received via plan_batch
  std::uint64_t batch_deduped = 0;  ///< of those, answered by batch dedup
  std::uint64_t sweep_points = 0;   ///< points answered via plan_sweep
};

/// The memo-free reference path: exactly what the service must reproduce
/// bit-for-bit.  Tests and the bench use it as the oracle; the service's
/// cold path shares its solver so the identity holds by construction.
PlanResult plan_uncached(const PlanRequest& req);

/// The long-lived, thread-safe query engine.  All methods may be called
/// concurrently; answers are deterministic regardless of interleaving.
class GridPlanner {
 public:
  struct Config {
    std::size_t point_capacity = 1 << 20;
    std::size_t atmost_capacity = 1 << 16;
    std::size_t shape_capacity = 1 << 16;
  };

  GridPlanner() : GridPlanner(Config{}) {}
  explicit GridPlanner(const Config& config);

  /// The process-wide planner (the CLI service, the registry, and elastic
  /// re-planning all share it, so their traffic warms one cache).
  static GridPlanner& instance();

  /// Answer one point query (sharded memo; cold queries solve and store).
  PlanResult plan(const PlanRequest& req);

  /// Answer a batch: dedupes repeated requests, groups shared enumerations
  /// by ascending P, and fans the unique solves across the machine
  /// WorkerPool (`threads` <= 0 picks the hardware width).  Results are in
  /// request order and bit-identical to per-request plan() calls.
  std::vector<PlanResult> plan_batch(const std::vector<PlanRequest>& reqs,
                                     int threads = 0);

  /// Memoized elastic re-plan: core::best_integer_grid_at_most through the
  /// factor cache (the shrink-and-regrid path calls this on every survivor).
  core::Grid3 best_integer_grid_at_most(const core::Shape& shape,
                                        i64 max_procs);

  /// Strong-scaling range sweep over the given processor counts: regimes
  /// come from the cached arXiv:1202.3177 boundary crossings and Theorem 3
  /// from cached products (no per-P re-derivation); integer grids, when
  /// requested, ride the point/factor caches.
  SweepResult plan_sweep(const core::Shape& shape, const std::vector<i64>& Ps,
                         const SweepOptions& opts = {});

  /// The cached per-shape structure (fills on first use).
  ShapeFacts shape_facts(const core::Shape& shape);

  PlannerStats stats() const;

  /// Drop every cached entry and zero the planner-local counters (the
  /// process-wide FactorCache is shared and survives; tests clear it
  /// directly when they need cold factor tables).
  void clear();

 private:
  struct PointKey {
    i64 n1 = 1, n2 = 1, n3 = 1, p = 1;

    bool operator==(const PointKey&) const = default;
  };
  struct PointKeyHash {
    std::size_t operator()(const PointKey& key) const {
      std::uint64_t h = mix64(static_cast<std::uint64_t>(key.n1));
      h = mix64(h ^ static_cast<std::uint64_t>(key.n2));
      h = mix64(h ^ static_cast<std::uint64_t>(key.n3));
      h = mix64(h ^ static_cast<std::uint64_t>(key.p));
      return static_cast<std::size_t>(h);
    }
  };
  struct ShapeKey {
    i64 n1 = 1, n2 = 1, n3 = 1;

    bool operator==(const ShapeKey&) const = default;
  };
  struct ShapeKeyHash {
    std::size_t operator()(const ShapeKey& key) const {
      std::uint64_t h = mix64(static_cast<std::uint64_t>(key.n1));
      h = mix64(h ^ static_cast<std::uint64_t>(key.n2));
      h = mix64(h ^ static_cast<std::uint64_t>(key.n3));
      return static_cast<std::size_t>(h);
    }
  };

  ShardedCache<PointKey, PlanResult, PointKeyHash> points_;
  ShardedCache<PointKey, core::Grid3, PointKeyHash> atmost_;
  ShardedCache<ShapeKey, ShapeFacts, ShapeKeyHash> shapes_;
  std::atomic<std::uint64_t> batch_queries_{0};
  std::atomic<std::uint64_t> batch_deduped_{0};
  std::atomic<std::uint64_t> sweep_points_{0};
};

}  // namespace camb::planner
