#include "planner/planner.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <thread>
#include <unordered_map>

#include "machine/worker_pool.hpp"
#include "util/error.hpp"

namespace camb::planner {

namespace {

ShapeFacts make_shape_facts(const core::Shape& shape) {
  CAMB_CHECK_MSG(shape.n1 >= 1 && shape.n2 >= 1 && shape.n3 >= 1,
                 "shape dimensions must be >= 1");
  ShapeFacts facts;
  facts.sorted = core::sort_dims(shape);
  facts.m = static_cast<double>(facts.sorted.m);
  facts.n = static_cast<double>(facts.sorted.n);
  facts.k = static_cast<double>(facts.sorted.k);
  // Every product below mirrors the exact (left-associative) expression in
  // core/bounds.cpp and core/optimization.cpp, so evaluating Theorem 3 and
  // the regime test on these cached values is bit-identical to the core.
  facts.mn = facts.m * facts.n;
  facts.mk = facts.m * facts.k;
  facts.nk = facts.n * facts.k;
  facts.mnk = facts.mn * facts.k;
  facts.mnkk = facts.mnk * facts.k;
  facts.faces = facts.mn + facts.mk + facts.nk;
  facts.boundary_1d = facts.m / facts.n;
  facts.boundary_2d = facts.mn / (facts.k * facts.k);
  return facts;
}

/// Theorem 3 on cached products: bit-identical replay of
/// core::memory_independent_bound_sorted (expression-for-expression), with
/// the classify_regime boundary comparisons answered from the memoized
/// arXiv:1202.3177 crossings.
core::BoundResult bound_at(const ShapeFacts& facts, double P) {
  core::BoundResult out;
  out.regime = P <= facts.boundary_1d   ? core::RegimeCase::kOneD
               : P <= facts.boundary_2d ? core::RegimeCase::kTwoD
                                        : core::RegimeCase::kThreeD;
  switch (out.regime) {
    case core::RegimeCase::kOneD:
      out.leading_term = facts.nk;
      out.constant = 1.0;
      out.D = (facts.mn + facts.mk) / P + facts.nk;
      break;
    case core::RegimeCase::kTwoD:
      out.leading_term = std::sqrt(facts.mnkk / P);
      out.constant = 2.0;
      out.D = 2.0 * out.leading_term + facts.mn / P;
      break;
    case core::RegimeCase::kThreeD:
      out.leading_term = std::pow(facts.mnk / P, 2.0 / 3.0);
      out.constant = 3.0;
      out.D = 3.0 * out.leading_term;
      break;
  }
  out.owned = facts.faces / P;
  out.words = std::max(0.0, out.D - out.owned);
  return out;
}

/// The shared solver: both the service's cold path and plan_uncached call
/// this, so cached and uncached answers are the same bits by construction.
PlanResult plan_with(const core::Shape& shape, i64 P, const ShapeFacts& facts,
                     const std::vector<FactorTriple>& triples) {
  PlanResult result;
  result.grid = core::best_integer_grid_over(shape, triples);
  result.cost_words = core::alg1_cost_words(shape, result.grid);
  const core::BoundResult bound =
      bound_at(facts, static_cast<double>(P));
  result.regime = bound.regime;
  result.bound_words = bound.words;
  result.ratio =
      bound.words > 0 ? result.cost_words / bound.words : 1.0;
  result.real =
      core::optimal_grid_real(facts.m, facts.n, facts.k, static_cast<double>(P));
  core::Grid3 exact;
  result.exact_grid =
      core::try_exact_optimal_grid(shape, P, &exact) && exact == result.grid;
  return result;
}

int resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

PlanResult plan_uncached(const PlanRequest& req) {
  CAMB_CHECK_MSG(req.P >= 1, "P must be >= 1");
  const ShapeFacts facts = make_shape_facts(req.shape);
  return plan_with(req.shape, req.P, facts, factor_triples(req.P));
}

GridPlanner::GridPlanner(const Config& config)
    : points_(config.point_capacity),
      atmost_(config.atmost_capacity),
      shapes_(config.shape_capacity) {}

GridPlanner& GridPlanner::instance() {
  static GridPlanner planner;
  return planner;
}

ShapeFacts GridPlanner::shape_facts(const core::Shape& shape) {
  const ShapeKey key{shape.n1, shape.n2, shape.n3};
  return shapes_.get_or_fill(key, [&] { return make_shape_facts(shape); });
}

PlanResult GridPlanner::plan(const PlanRequest& req) {
  CAMB_CHECK_MSG(req.P >= 1, "P must be >= 1");
  const PointKey key{req.shape.n1, req.shape.n2, req.shape.n3, req.P};
  return points_.get_or_fill(key, [&] {
    const ShapeFacts facts = shape_facts(req.shape);
    const auto table = FactorCache::instance().get(req.P);
    return plan_with(req.shape, req.P, facts, table->triples);
  });
}

std::vector<PlanResult> GridPlanner::plan_batch(
    const std::vector<PlanRequest>& reqs, int threads) {
  batch_queries_.fetch_add(reqs.size(), std::memory_order_relaxed);
  // Validate everything up front: worker tasks must not throw.
  for (const PlanRequest& req : reqs) {
    CAMB_CHECK_MSG(req.P >= 1, "P must be >= 1");
    CAMB_CHECK_MSG(req.shape.n1 >= 1 && req.shape.n2 >= 1 && req.shape.n3 >= 1,
                   "shape dimensions must be >= 1");
  }

  // Dedupe: each distinct (shape, P) is solved once; repeats are scattered
  // from the unique answer.
  struct UniqueQuery {
    PlanRequest req;
    PlanResult result;
  };
  std::vector<UniqueQuery> unique;
  unique.reserve(reqs.size());
  std::unordered_map<PointKey, std::size_t, PointKeyHash> index;
  index.reserve(reqs.size());
  for (const PlanRequest& req : reqs) {
    const PointKey key{req.shape.n1, req.shape.n2, req.shape.n3, req.P};
    const auto [it, inserted] = index.emplace(key, unique.size());
    if (inserted) unique.push_back({req, {}});
  }
  batch_deduped_.fetch_add(reqs.size() - unique.size(),
                           std::memory_order_relaxed);

  // Ascending P groups queries sharing a factor table onto nearby indices,
  // so a cold cache fills each enumeration once before its siblings need it.
  std::sort(unique.begin(), unique.end(),
            [](const UniqueQuery& a, const UniqueQuery& b) {
              return std::tie(a.req.P, a.req.shape.n1, a.req.shape.n2,
                              a.req.shape.n3) <
                     std::tie(b.req.P, b.req.shape.n1, b.req.shape.n2,
                              b.req.shape.n3);
            });
  std::unordered_map<PointKey, std::size_t, PointKeyHash> sorted_index;
  sorted_index.reserve(unique.size());
  for (std::size_t i = 0; i < unique.size(); ++i) {
    const PlanRequest& req = unique[i].req;
    sorted_index.emplace(PointKey{req.shape.n1, req.shape.n2, req.shape.n3,
                                  req.P},
                         i);
  }

  const int width = std::max(
      1, std::min(resolve_threads(threads), static_cast<int>(unique.size())));
  std::exception_ptr failure;
  std::mutex failure_mutex;
  const auto solve_range = [&](int worker) {
    // Contiguous slices keep each worker on one run of ascending P.
    const std::size_t begin = unique.size() * worker / width;
    const std::size_t end = unique.size() * (worker + 1) / width;
    try {
      for (std::size_t i = begin; i < end; ++i) {
        unique[i].result = plan(unique[i].req);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (!failure) failure = std::current_exception();
    }
  };
  if (width == 1) {
    solve_range(0);
  } else {
    WorkerPool::instance().run(width, solve_range);
  }
  if (failure) std::rethrow_exception(failure);

  std::vector<PlanResult> results(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const PlanRequest& req = reqs[i];
    const PointKey key{req.shape.n1, req.shape.n2, req.shape.n3, req.P};
    results[i] = unique[sorted_index.at(key)].result;
  }
  return results;
}

core::Grid3 GridPlanner::best_integer_grid_at_most(const core::Shape& shape,
                                                   i64 max_procs) {
  CAMB_CHECK_MSG(max_procs >= 1, "max_procs must be >= 1");
  const PointKey key{shape.n1, shape.n2, shape.n3, max_procs};
  return atmost_.get_or_fill(key, [&] {
    // `held` pins the most recent table so the returned reference satisfies
    // the TripleSource "valid until next call" contract under concurrent
    // eviction.
    std::shared_ptr<const FactorTable> held;
    return core::best_integer_grid_at_most_over(
        shape, max_procs, [&held](i64 p) -> const std::vector<FactorTriple>& {
          held = FactorCache::instance().get(p);
          return held->triples;
        });
  });
}

SweepResult GridPlanner::plan_sweep(const core::Shape& shape,
                                    const std::vector<i64>& Ps,
                                    const SweepOptions& opts) {
  const ShapeFacts facts = shape_facts(shape);
  SweepResult out;
  out.boundary_1d = facts.boundary_1d;
  out.boundary_2d = facts.boundary_2d;
  out.points.reserve(Ps.size());
  for (const i64 P : Ps) {
    CAMB_CHECK_MSG(P >= 1, "sweep processor counts must be >= 1");
    SweepPoint pt;
    pt.P = P;
    const core::BoundResult bound = bound_at(facts, static_cast<double>(P));
    pt.regime = bound.regime;
    pt.bound_words = bound.words;
    pt.real = core::optimal_grid_real(facts.m, facts.n, facts.k,
                                      static_cast<double>(P));
    if (opts.with_integer_grids) {
      const PlanResult plan_result = plan({shape, P});
      pt.grid = plan_result.grid;
      pt.cost_words = plan_result.cost_words;
      pt.ratio = plan_result.ratio;
    }
    if (out.segments.empty() || out.segments.back().regime != pt.regime) {
      out.segments.push_back({pt.regime, P, P});
    } else {
      out.segments.back().p_hi = P;
    }
    out.points.push_back(pt);
  }
  sweep_points_.fetch_add(Ps.size(), std::memory_order_relaxed);
  return out;
}

PlannerStats GridPlanner::stats() const {
  PlannerStats stats;
  stats.point = points_.counters();
  stats.atmost = atmost_.counters();
  stats.shape = shapes_.counters();
  stats.factor = FactorCache::instance().counters();
  stats.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  stats.batch_deduped = batch_deduped_.load(std::memory_order_relaxed);
  stats.sweep_points = sweep_points_.load(std::memory_order_relaxed);
  return stats;
}

void GridPlanner::clear() {
  points_.clear();
  atmost_.clear();
  shapes_.clear();
  batch_queries_.store(0, std::memory_order_relaxed);
  batch_deduped_.store(0, std::memory_order_relaxed);
  sweep_points_.store(0, std::memory_order_relaxed);
}

}  // namespace camb::planner
