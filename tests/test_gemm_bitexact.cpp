// The register-blocked gemm_accumulate must be BIT-identical to the plain
// tiled reference kernel on every shape: both sum each output element's
// products in ascending k, and at the default target arch the compiler may
// not contract mul+add into FMA, so identical addition order means identical
// bits.  The golden equivalence sweep (and every cross-algorithm
// bit-comparison in the suite) leans on this property; this test probes it
// directly on the shapes most likely to break a blocked kernel.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "matmul/local_gemm.hpp"
#include "util/matrix.hpp"

namespace camb::mm {
namespace {

struct Shape {
  i64 rows, inner, cols;
};

// Awkward shapes: unit dims, primes, tall-skinny / short-wide, and every
// blocking-parameter boundary ±1 (micro-tile mr/nr, panel kc/nc, and the
// reference kernel's own tile).
const Shape kShapes[] = {
    {1, 1, 1},
    {1, 7, 1},
    {2, 500, 2},
    {500, 2, 3},
    {13, 17, 19},
    {97, 193, 257},
    {kGemmMr - 1, 5, kGemmNr - 1},
    {kGemmMr + 1, 5, kGemmNr + 1},
    {2 * kGemmMr + 1, kGemmKc - 1, 2 * kGemmNr + 1},
    {3, kGemmKc + 1, kGemmNc - 1},
    {5, kGemmKc, kGemmNc + 1},
    {kGemmTile - 1, kGemmTile + 1, kGemmTile - 1},
    {kGemmTile, kGemmTile, kGemmTile},
    {kGemmTile + 1, kGemmTile - 1, kGemmTile + 1},
};

// Deterministic sign-varied fill so additions genuinely round (an all-ones
// fill would hide order dependence).  Distinct global origins per matrix
// keep A, B, and C decorrelated.
void fill(MatrixD& m, i64 salt) { m.fill_indexed(salt * 1009, salt * 2003); }

bool bits_equal(const MatrixD& x, const MatrixD& y) {
  return std::memcmp(x.data(), y.data(),
                     static_cast<std::size_t>(x.size()) * sizeof(double)) == 0;
}

TEST(GemmBitExact, MatchesReferenceOnAwkwardShapes) {
  for (const Shape& s : kShapes) {
    MatrixD a(s.rows, s.inner), b(s.inner, s.cols);
    fill(a, 1);
    fill(b, 2);
    MatrixD c_ref(s.rows, s.cols), c_blk(s.rows, s.cols);
    // Non-zero C so the accumulate path (load C, add, store C) is exercised.
    fill(c_ref, 3);
    fill(c_blk, 3);
    gemm_accumulate_reference(a, b, c_ref);
    gemm_accumulate(a, b, c_blk);
    EXPECT_TRUE(bits_equal(c_ref, c_blk))
        << "blocked kernel diverged from reference at shape " << s.rows << "x"
        << s.inner << "x" << s.cols;
  }
}

TEST(GemmBitExact, RepeatedAccumulationStaysExact) {
  // Three accumulations into the same C — the simulator's per-rank usage
  // pattern (one accumulate per k-step of the outer algorithm).
  MatrixD a(kGemmMr * 2 + 1, 37), b(37, kGemmNr * 3 + 5);
  fill(a, 7);
  fill(b, 11);
  MatrixD c_ref(a.rows(), b.cols()), c_blk(a.rows(), b.cols());
  for (int rep = 0; rep < 3; ++rep) {
    gemm_accumulate_reference(a, b, c_ref);
    gemm_accumulate(a, b, c_blk);
  }
  EXPECT_TRUE(bits_equal(c_ref, c_blk));
}

TEST(GemmBitExact, GemmAllocatesAndMatches) {
  MatrixD a(31, 29), b(29, 41);
  fill(a, 13);
  fill(b, 17);
  MatrixD c_ref(31, 41);
  gemm_accumulate_reference(a, b, c_ref);
  const MatrixD c = gemm(a, b);
  EXPECT_TRUE(bits_equal(c_ref, c));
}

}  // namespace
}  // namespace camb::mm
