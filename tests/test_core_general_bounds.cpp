// Unit tests for core/general_bounds.hpp — the §6.3 generalization — and
// the general form of the optimization solvers it builds on.
#include "core/general_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace camb::core {
namespace {

TEST(GeneralBounds, SpecializesToMatmulInAllRegimes) {
  // The generalized bound on the matmul computation must equal Theorem 3.
  const double m = 9600, n = 2400, k = 600;
  for (double P : {1.0, 2.0, 3.0, 4.0, 16.0, 36.0, 64.0, 512.0, 1e5}) {
    const auto general =
        general_memory_independent_bound(matmul_computation(m, n, k), P);
    const auto matmul = memory_independent_bound_sorted(m, n, k, P);
    EXPECT_NEAR(general.accessed, matmul.D, 1e-9 * matmul.D) << "P=" << P;
    EXPECT_NEAR(general.words, matmul.words,
                1e-9 * std::max(1.0, matmul.words))
        << "P=" << P;
  }
}

TEST(GeneralBounds, ExtentOrderInvariance) {
  for (double P : {2.0, 36.0, 512.0}) {
    const auto a = general_memory_independent_bound(
        BilinearComputation{{9600, 2400, 600}}, P);
    const auto b = general_memory_independent_bound(
        BilinearComputation{{600, 9600, 2400}}, P);
    EXPECT_NEAR(a.words, b.words, 1e-9 * std::max(1.0, a.words)) << "P=" << P;
  }
}

TEST(GeneralBounds, ActiveFloorsTrackTheRegimes) {
  const BilinearComputation comp{{9600, 2400, 600}};
  EXPECT_EQ(general_memory_independent_bound(comp, 2).active_floors, 2);   // 1D
  EXPECT_EQ(general_memory_independent_bound(comp, 36).active_floors, 1);  // 2D
  EXPECT_EQ(general_memory_independent_bound(comp, 512).active_floors, 0); // 3D
}

TEST(GeneralBounds, RegimeLabels) {
  const BilinearComputation comp{{9600, 2400, 600}};
  EXPECT_NE(regime_label(general_memory_independent_bound(comp, 512))
                .find("3D-like"),
            std::string::npos);
  EXPECT_NE(regime_label(general_memory_independent_bound(comp, 2))
                .find("1D-like"),
            std::string::npos);
}

TEST(GeneralBounds, ComputationAccessors) {
  const BilinearComputation comp{{4, 6, 8}};
  EXPECT_DOUBLE_EQ(comp.volume(), 192);
  EXPECT_DOUBLE_EQ(comp.array_size(0), 48);  // omits axis 0
  EXPECT_DOUBLE_EQ(comp.array_size(2), 24);
  EXPECT_DOUBLE_EQ(comp.reuse(1), 6);
  const BilinearComputation degenerate{{0.5, 2, 2}};
  EXPECT_THROW(degenerate.validate(), Error);
}

TEST(GeneralBounds, UnevenNonMatmulInstance) {
  // A long-thin "interaction kernel" iteration space 100000 x 100 x 100:
  // for small P the bound is the smallest array (the 100x100 one), i.e.
  // communication ~ 1e4 words independent of P — the 1D-regime phenomenon
  // on a non-GEMM computation.
  const BilinearComputation comp{{100000, 100, 100}};
  const auto bound = general_memory_independent_bound(comp, 8);
  EXPECT_EQ(bound.active_floors, 2);
  // accessed = nk + (mk + mn)/P with m=1e5, n=k=100.
  EXPECT_NEAR(bound.accessed, 100.0 * 100 + 2 * 1e7 / 8, 1e-3);
}

TEST(GeneralBounds, MonotoneInP) {
  const BilinearComputation comp{{5000, 700, 60}};
  double prev = 1e300;
  for (double P = 1; P <= 1 << 20; P *= 4) {
    const auto bound = general_memory_independent_bound(comp, P);
    EXPECT_LE(bound.accessed, prev * (1 + 1e-12)) << "P=" << P;
    prev = bound.accessed;
  }
}

// ---------------------------------------------------------------------------
// The general solvers themselves, on floors not derivable from any matmul.
// ---------------------------------------------------------------------------

TEST(GeneralSolvers, AgreeOnArbitraryFloors) {
  camb::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    GeneralLemma2Problem prob;
    prob.floors = {std::exp(rng.uniform(0.0, 8.0)),
                   std::exp(rng.uniform(0.0, 8.0)),
                   std::exp(rng.uniform(0.0, 8.0))};
    prob.product_floor = std::exp(rng.uniform(1.0, 20.0));
    const auto enumerated = solve_enumerate(prob);
    const auto numeric = solve_numeric(prob, 6000);
    const double obj_e = enumerated[0] + enumerated[1] + enumerated[2];
    const double obj_n = numeric[0] + numeric[1] + numeric[2];
    EXPECT_NEAR(obj_n, obj_e, 2e-3 * obj_e) << "trial " << trial;
    // Both feasible.
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(enumerated[static_cast<std::size_t>(i)] * (1 + 1e-12),
                prob.floors[static_cast<std::size_t>(i)]);
    }
    EXPECT_GE(enumerated[0] * enumerated[1] * enumerated[2] * (1 + 1e-9),
              prob.product_floor);
  }
}

TEST(GeneralSolvers, FloorsOnlyWhenProductSlack) {
  GeneralLemma2Problem prob;
  prob.floors = {10, 20, 30};
  prob.product_floor = 100;  // 10*20*30 = 6000 >> 100: floors optimal
  const auto x = solve_enumerate(prob);
  EXPECT_DOUBLE_EQ(x[0], 10);
  EXPECT_DOUBLE_EQ(x[1], 20);
  EXPECT_DOUBLE_EQ(x[2], 30);
}

TEST(GeneralSolvers, SymmetricWhenFloorsTiny) {
  GeneralLemma2Problem prob;
  prob.floors = {1e-3, 1e-3, 1e-3};
  prob.product_floor = 1e6;
  const auto x = solve_enumerate(prob);
  for (double xi : x) EXPECT_NEAR(xi, 100.0, 1e-6);  // (1e6)^{1/3}
}

TEST(GeneralSolvers, RejectsBadInput) {
  GeneralLemma2Problem prob;
  prob.floors = {1, -1, 1};
  EXPECT_THROW(solve_enumerate(prob), Error);
  prob.floors = {1, 1, 1};
  prob.product_floor = 0;
  EXPECT_THROW(solve_numeric(prob), Error);
}

}  // namespace
}  // namespace camb::core
