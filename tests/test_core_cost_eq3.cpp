// Unit tests for core/cost_eq3.hpp: the Algorithm 1 cost model and the
// §6.2 strong-scaling analysis.
#include "core/cost_eq3.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace camb::core {
namespace {

const Shape kPaperShape{9600, 2400, 600};

TEST(Eq3, PositiveTerms) {
  const auto t = alg1_positive_terms(kPaperShape, Grid3{12, 3, 1});
  EXPECT_DOUBLE_EQ(t.a_words, 9600.0 * 2400 / 36);
  EXPECT_DOUBLE_EQ(t.b_words, 2400.0 * 600 / 3);
  EXPECT_DOUBLE_EQ(t.c_words, 9600.0 * 600 / 12);
  EXPECT_DOUBLE_EQ(t.sum(), t.a_words + t.b_words + t.c_words);
}

TEST(Eq3, MatchesTheorem3InCase1) {
  // With the 1D grid the cost is (1 - 1/P) nk, the case-1 bound.
  const i64 P = 3;
  const double cost = alg1_cost_words(kPaperShape, Grid3{P, 1, 1});
  EXPECT_NEAR(cost, (1.0 - 1.0 / P) * 2400 * 600, 1e-6);
  const auto bound = memory_independent_bound(kPaperShape, P);
  EXPECT_NEAR(cost, bound.words, 1e-6);
}

TEST(Eq3, MatchesTheorem3InCase2) {
  const double cost = alg1_cost_words(kPaperShape, Grid3{12, 3, 1});
  const auto bound = memory_independent_bound(kPaperShape, 36);
  EXPECT_NEAR(cost, bound.words, 1e-6);
}

TEST(Eq3, MatchesTheorem3InCase3) {
  const double cost = alg1_cost_words(kPaperShape, Grid3{32, 8, 2});
  const auto bound = memory_independent_bound(kPaperShape, 512);
  EXPECT_NEAR(cost, bound.words, 1e-6);
}

TEST(Eq3, NeverBelowTheorem3ForAnyGrid) {
  // Every factor triple's cost is at least the lower bound (Theorem 3 is a
  // true lower bound on this algorithm family too).
  for (i64 P : {6, 24, 36, 64, 512}) {
    const auto bound = memory_independent_bound(kPaperShape,
                                                static_cast<double>(P));
    for (const Grid3& g : all_grids(P)) {
      EXPECT_GE(alg1_cost_words(kPaperShape, g) + 1e-6, bound.words)
          << "P=" << P << " grid=" << g.p1 << "x" << g.p2 << "x" << g.p3;
    }
  }
}

TEST(Eq3, ExactIntegerFormAgreesWithDouble) {
  for (const Grid3& g : {Grid3{3, 1, 1}, Grid3{12, 3, 1}, Grid3{4, 4, 4}}) {
    const i64 exact = alg1_cost_words_exact(kPaperShape, g);
    const double approx = alg1_cost_words(kPaperShape, g);
    EXPECT_NEAR(static_cast<double>(exact), approx, 1e-6)
        << g.p1 << "x" << g.p2 << "x" << g.p3;
  }
}

TEST(Eq3, ExactRequiresDivisibility) {
  EXPECT_THROW(alg1_cost_words_exact(kPaperShape, Grid3{7, 1, 1}), Error);
  // Dims divide, but the p1 = 32 fiber does not divide the 90000-word B
  // block chunkwise-evenly... it does (90000/32 is fractional): rejected.
  EXPECT_THROW(alg1_cost_words_exact(kPaperShape, Grid3{32, 8, 2}), Error);
  // Scaling the shape 4x restores full divisibility.
  const Shape big{4 * 9600, 4 * 2400, 4 * 600};
  EXPECT_NEAR(static_cast<double>(alg1_cost_words_exact(big, Grid3{32, 8, 2})),
              alg1_cost_words(big, Grid3{32, 8, 2}), 1e-6);
}

TEST(Eq3, BreakdownSumsToTotal) {
  for (const Grid3& g : {Grid3{3, 1, 1}, Grid3{12, 3, 1}, Grid3{32, 8, 2}}) {
    const auto breakdown = alg1_comm_breakdown(kPaperShape, g);
    EXPECT_NEAR(breakdown.total(), alg1_cost_words(kPaperShape, g), 1e-6);
  }
}

TEST(Eq3, DegenerateAxesAreFree) {
  // p3 = 1 means the A All-Gather moves nothing; p2 = 1 silences the
  // Reduce-Scatter.
  const auto b1 = alg1_comm_breakdown(kPaperShape, Grid3{36, 1, 1});
  EXPECT_DOUBLE_EQ(b1.allgather_a, 0.0);
  EXPECT_DOUBLE_EQ(b1.reduce_scatter_c, 0.0);
  EXPECT_GT(b1.allgather_b, 0.0);
}

TEST(Eq3, MemoryFootprintIsPositiveTerms) {
  const Grid3 g{32, 8, 2};
  EXPECT_DOUBLE_EQ(alg1_memory_words(kPaperShape, g),
                   alg1_positive_terms(kPaperShape, g).sum());
}

TEST(Eq3, FlopCounts) {
  const Grid3 g{32, 8, 2};
  EXPECT_DOUBLE_EQ(alg1_flops(kPaperShape, g),
                   9600.0 * 2400 * 600 / 512);
  // Reduction flops are dominated by the multiplication flops (§5.1).
  EXPECT_LT(alg1_reduction_flops(kPaperShape, g), alg1_flops(kPaperShape, g));
}

TEST(ScalingSweep, RegimesAndCrossover) {
  const double m = 9600, n = 2400, k = 600;
  const double M = 1e5;
  const auto points = scaling_sweep(m, n, k, M, {2, 36, 512, 1e5});
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].regime, RegimeCase::kOneD);
  EXPECT_EQ(points[1].regime, RegimeCase::kTwoD);
  EXPECT_EQ(points[2].regime, RegimeCase::kThreeD);
  for (const auto& pt : points) {
    EXPECT_DOUBLE_EQ(pt.bound, std::max(pt.mem_independent, pt.mem_dependent));
  }
}

TEST(ScalingSweep, MemoryLimitedFlagTracksThreshold) {
  const double m = 4096, n = 4096, k = 4096;
  const double M = 1e4;
  // Small P: the per-processor working set is huge, memory limited.
  const auto pts = scaling_sweep(m, n, k, M, {8, 1e9});
  EXPECT_TRUE(pts[0].memory_limited);
  EXPECT_FALSE(pts[1].memory_limited);
}

}  // namespace
}  // namespace camb::core
