// Unit tests for core/partition_audit.hpp — exhaustive verification of the
// lower bound over whole parallel executions of tiny problems.
#include "core/partition_audit.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/optimization.hpp"
#include "util/error.hpp"

namespace camb::core {
namespace {

TEST(PartitionAudit, TrivialSingleProcessor) {
  // One processor owns everything: its projections are the matrix sizes.
  const auto audit = audit_balanced_partitions(Shape{2, 2, 2}, 1);
  EXPECT_EQ(audit.best_max_projection_sum, 12);  // 4 + 4 + 4
  EXPECT_EQ(audit.partitions_examined, 1);
}

TEST(PartitionAudit, CubeTwoWays) {
  // 2x2x2 cube split among P = 2: best is the halved-cube partition, where
  // each half projects 4 + 2 + 2 = 8.
  const auto audit = audit_balanced_partitions(Shape{2, 2, 2}, 2);
  EXPECT_EQ(audit.best_max_projection_sum, 8);
  // Witness is a complete balanced assignment.
  ASSERT_EQ(audit.witness.size(), 8u);
  int part0 = 0;
  for (int part : audit.witness) part0 += (part == 0) ? 1 : 0;
  EXPECT_EQ(part0, 4);
}

TEST(PartitionAudit, ConfirmsBoundOnTinyShapes) {
  // The central statement: no balanced execution beats Lemma 2's optimum.
  EXPECT_TRUE(partition_audit_confirms_bound(Shape{2, 2, 2}, 2));
  EXPECT_TRUE(partition_audit_confirms_bound(Shape{2, 2, 2}, 4));
  EXPECT_TRUE(partition_audit_confirms_bound(Shape{4, 2, 2}, 2));
  EXPECT_TRUE(partition_audit_confirms_bound(Shape{2, 2, 3}, 2));
  EXPECT_TRUE(partition_audit_confirms_bound(Shape{3, 2, 2}, 3));
  EXPECT_TRUE(partition_audit_confirms_bound(Shape{8, 1, 2}, 2));
}

TEST(PartitionAudit, OptimalPartitionTracksRegime) {
  // 8x1x2 with P = 2 is deep in the 1D regime (m/n = 4): the best partition
  // splits the long axis, and its max projection sum equals the Lemma 2
  // optimum exactly (the 1D case is achievable with integral blocks here).
  const Shape shape{8, 1, 2};
  const auto audit = audit_balanced_partitions(shape, 2);
  const SortedDims d = sort_dims(shape);
  const auto sol = solve_analytic({static_cast<double>(d.m),
                                   static_cast<double>(d.n),
                                   static_cast<double>(d.k), 2.0});
  EXPECT_DOUBLE_EQ(static_cast<double>(audit.best_max_projection_sum),
                   sol.objective);
}

TEST(PartitionAudit, BalancedCubePartitionIsOptimalForSquare) {
  // 2x2x2 over P = 2: Lemma 2 (continuous) gives 3 * 4^{2/3} ≈ 7.56; the
  // best integral execution pays 8 — above the bound, as it must be.
  const auto audit = audit_balanced_partitions(Shape{2, 2, 2}, 2);
  const auto sol = solve_analytic({2, 2, 2, 2});
  EXPECT_GT(static_cast<double>(audit.best_max_projection_sum),
            sol.objective);
  EXPECT_LT(static_cast<double>(audit.best_max_projection_sum),
            sol.objective * 1.1);  // and within 10% of it
}

TEST(PartitionAudit, SymmetryReductionCountsCorrectly) {
  // 4 points, P = 2, balanced: C(4,2)/2 = 3 canonical partitions.
  const auto audit = audit_balanced_partitions(Shape{4, 1, 1}, 2);
  EXPECT_EQ(audit.partitions_examined, 3);
}

TEST(PartitionAudit, GuardsAgainstExplosion) {
  EXPECT_THROW(audit_balanced_partitions(Shape{4, 4, 4}, 4), Error);
  EXPECT_THROW(audit_balanced_partitions(Shape{3, 2, 2}, 5), Error);  // P∤12
}

TEST(PartitionAudit, CommunicationFormMatchesTheorem3) {
  // Subtracting the owned data from the audited access minimum reproduces
  // the Theorem 3 communication statement on the tiny instance.
  const Shape shape{4, 2, 2};
  const int P = 2;
  const auto audit = audit_balanced_partitions(shape, P);
  const auto bound = memory_independent_bound(shape, P);
  const double comm_floor =
      static_cast<double>(audit.best_max_projection_sum) - bound.owned;
  EXPECT_GE(comm_floor + 1e-9, bound.words);
}

}  // namespace
}  // namespace camb::core
