// Executed word-exact runs at P = 16K–65K (the paper's regime, §1): the
// fiber scheduler multiplexes tens of thousands of ranks onto pool-width
// worker threads, so these runs *execute* — every send and receive happens,
// every counter is measured — and the measured critical-path received words
// must equal the closed-form analytic prediction exactly, word for word.
//
// Thread-per-rank execution cannot reach this regime (an OS thread per rank
// at P = 65,536 exhausts kernel thread and memory limits); until the fiber
// scheduler landed, predictions at these P were only checked analytically.
// ctest label: scale (excluded from the sanitizer legs — these runs are
// big, not concurrency-sensitive beyond what the fuzz battery covers).
#include <gtest/gtest.h>

#include "matmul/runner.hpp"

namespace camb {
namespace {

mm::RunOptions scale_opts() {
  // kNone: no output assembly (a 512^2 gather of 16K tiles is the harness's
  // cost, not the algorithm's) — the subject here is communication exactness.
  mm::RunOptions opts;
  opts.verify = mm::VerifyMode::kNone;
  opts.scheduler.kind = SchedulerKind::kFibers;
  return opts;
}

void expect_word_exact(const mm::RunReport& report, i64 p, const char* what) {
  ASSERT_GE(report.predicted_critical_recv, 0)
      << what << ": no closed-form predictor";
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words())
      << what << ": executed run diverged from the analytic prediction";
  EXPECT_GT(report.measured_critical_messages, 0) << what;
  // Every rank really executed: the per-rank counter vectors are full-size
  // and the whole machine moved data.
  ASSERT_EQ(static_cast<i64>(report.rank_recv_words.size()), p) << what;
  ASSERT_EQ(static_cast<i64>(report.rank_messages.size()), p) << what;
  EXPECT_GT(report.total_network_words, 0) << what;
  EXPECT_GE(static_cast<double>(report.measured_critical_recv),
            report.lower_bound_words)
      << what << ": measured run beat the Theorem 3 lower bound";
}

TEST(FiberScale, Summa16kWordExact) {
  const mm::SummaConfig cfg{{512, 512, 512}, 128};  // P = 128^2 = 16,384
  const mm::RunReport report = mm::run_summa(cfg, scale_opts());
  expect_word_exact(report, 16384, "summa P=16384");
}

TEST(FiberScale, Grid3d16kWordExact) {
  const mm::Grid3dConfig cfg{{128, 128, 64}, core::Grid3{32, 32, 16}};
  const mm::RunReport report = mm::run_grid3d(cfg, scale_opts());
  expect_word_exact(report, 16384, "grid3d P=16384");
}

TEST(FiberScale, Alg25d64kWordExact) {
  mm::Alg25dConfig cfg;
  cfg.shape = {256, 256, 256};
  cfg.g = 128;
  cfg.c = 4;  // P = g^2 * c = 65,536
  const mm::RunReport report = mm::run_alg25d(cfg, scale_opts());
  expect_word_exact(report, 65536, "alg25d P=65536");
}

}  // namespace
}  // namespace camb
