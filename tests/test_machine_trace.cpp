// Unit tests for machine/trace.hpp — per-message event tracing and the
// structural properties it reveals (Algorithm 1's fiber-only communication).
#include "machine/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "machine/machine.hpp"
#include "matmul/grid3d.hpp"

namespace camb {
namespace {

TEST(Trace, RecordsEnvelopeAndPhase) {
  Machine machine(2);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.set_phase("hello");
      ctx.send(1, 42, {1.0, 2.0, 3.0});
    } else {
      (void)ctx.recv(0, 42);
    }
  });
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].src, 0);
  EXPECT_EQ(events[0].dst, 1);
  EXPECT_EQ(events[0].tag, 42);
  EXPECT_EQ(events[0].words(), 3);
  EXPECT_EQ(events[0].phase, "hello");
}

TEST(Trace, SelfSendsNotRecorded) {
  Machine machine(1);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) {
    ctx.send(0, 0, {1.0});
    (void)ctx.recv(0, 0);
  });
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(Trace, TrafficMatrixMatchesStats) {
  Machine machine(4);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) {
    const int next = (ctx.rank() + 1) % 4;
    ctx.send(next, 7, std::vector<double>(
                          static_cast<std::size_t>(ctx.rank() + 1)));
    (void)ctx.recv((ctx.rank() + 3) % 4, 7);
  });
  const auto matrix = trace.traffic_matrix();
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(matrix[static_cast<std::size_t>(r)]
                    [static_cast<std::size_t>((r + 1) % 4)],
              r + 1);
    // Row sums equal the stats counters.
    i64 row = 0;
    for (i64 v : matrix[static_cast<std::size_t>(r)]) row += v;
    EXPECT_EQ(row, machine.stats().rank_total(r).words_sent());
  }
  EXPECT_EQ(trace.words_between(0, 1), 1);
  EXPECT_EQ(trace.words_between(1, 0), 0);
}

TEST(Trace, SequenceNumbersAreUniqueAndOrdered) {
  Machine machine(8);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) {
    for (int k = 0; k < 10; ++k) {
      ctx.send((ctx.rank() + 1) % 8, k, {0.0});
      (void)ctx.recv((ctx.rank() + 7) % 8, k);
    }
  });
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 80u);
  for (std::size_t e = 0; e < events.size(); ++e) {
    EXPECT_EQ(events[e].seq, e);  // dense, sorted, unique
  }
}

TEST(Trace, Alg1CommunicationStaysWithinFibers) {
  // The structural fact behind §5: every message of Algorithm 1 travels
  // along a grid fiber — the two endpoints agree in two of their three
  // coordinates.  The trace proves it for every message of a real run.
  const mm::Grid3dConfig cfg{core::Shape{12, 8, 6}, core::Grid3{3, 2, 2}};
  Machine machine(12);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });
  const mm::GridMap map(cfg.grid);
  ASSERT_GT(trace.event_count(), 0u);
  for (const auto& event : trace.events()) {
    const auto a = map.coords_of(event.src);
    const auto b = map.coords_of(event.dst);
    int equal_coords = 0;
    for (int axis = 0; axis < 3; ++axis) {
      if (a[static_cast<std::size_t>(axis)] ==
          b[static_cast<std::size_t>(axis)]) {
        ++equal_coords;
      }
    }
    EXPECT_EQ(equal_coords, 2)
        << "message " << event.seq << " (" << event.src << "->" << event.dst
        << ", phase " << event.phase << ") crossed fibers";
  }
}

TEST(Trace, PhaseFilterAndPartners) {
  const mm::Grid3dConfig cfg{core::Shape{8, 8, 8}, core::Grid3{2, 2, 2}};
  Machine machine(8);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });
  // Three communication phases, each non-empty on a 2x2x2 grid.
  for (const char* phase :
       {mm::kPhaseAllgatherA, mm::kPhaseAllgatherB, mm::kPhaseReduceScatterC}) {
    EXPECT_FALSE(trace.events_in_phase(phase).empty()) << phase;
  }
  EXPECT_TRUE(trace.events_in_phase("no_such_phase").empty());
  // On a 2x2x2 grid each rank talks to exactly its 3 fiber neighbours.
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(trace.partners_of(r).size(), 3u) << "rank " << r;
  }
}

TEST(Trace, CsvRoundTrip) {
  Machine machine(2);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) ctx.send(1, 5, {1.0, 2.0});
    else (void)ctx.recv(0, 5);
  });
  const std::string path = "/tmp/camb_trace_test.csv";
  trace.write_csv(path);
  std::ifstream file(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(file, header));
  // Bytes-canonical schema: the machine counts bytes (an f32 element is
  // half a word, so words would need fractions); words = bytes / 8.
  EXPECT_EQ(header, "seq,src,dst,tag,bytes,phase");
  ASSERT_TRUE(std::getline(file, row));
  EXPECT_EQ(row.substr(0, 8), "0,0,1,5,");
  std::remove(path.c_str());
}

TEST(Trace, DisabledByDefaultCostsNothing) {
  Machine machine(2);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) ctx.send(1, 1, {1.0});
    else (void)ctx.recv(0, 1);
  });
  EXPECT_EQ(machine.trace(), nullptr);
}

}  // namespace
}  // namespace camb
