// Unit and machine-level tests for the reliable transport (reliable.hpp):
// checksum properties, seeded SDC decision streams, end-to-end healing of
// drop/flip/dup injection with word-exact transport-tax accounting, the
// named give-up path, and the run-end duplicate-debris partition.
#include "machine/reliable.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "collectives/coll_cost.hpp"
#include "machine/machine.hpp"
#include "machine/mailbox.hpp"
#include "machine/trace.hpp"
#include "util/error.hpp"

namespace camb {
namespace {

FaultProfile sdc_profile(double drop, double flip, double dup) {
  FaultProfile profile;
  profile.drop_prob = drop;
  profile.flip_prob = flip;
  profile.dup_prob = dup;
  return profile;
}

// ---------------------------------------------------------------------------
// checksum64
// ---------------------------------------------------------------------------

TEST(Checksum64, DeterministicAndKeyedBySeed) {
  std::vector<double> data(33);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i) * 0.37 - 2.0;
  }
  const std::uint64_t base = checksum64(data.data(), data.size(), 42);
  EXPECT_EQ(base, checksum64(data.data(), data.size(), 42));
  EXPECT_NE(base, checksum64(data.data(), data.size(), 43));
  // Length is folded in: a prefix must not collide with the full payload.
  EXPECT_NE(base, checksum64(data.data(), data.size() - 1, 42));
}

TEST(Checksum64, DetectsSingleBitFlips) {
  std::vector<double> data(17);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i + 1) * 1.5;
  }
  const std::uint64_t base = checksum64(data.data(), data.size(), 7);
  for (std::size_t word : {std::size_t{0}, std::size_t{8}, std::size_t{16}}) {
    for (int bit : {0, 31, 63}) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &data[word], sizeof(bits));
      bits ^= std::uint64_t{1} << bit;
      double flipped = 0;
      std::memcpy(&flipped, &bits, sizeof(flipped));
      const double saved = data[word];
      data[word] = flipped;
      EXPECT_NE(checksum64(data.data(), data.size(), 7), base)
          << "word " << word << " bit " << bit;
      data[word] = saved;
    }
  }
  EXPECT_EQ(checksum64(data.data(), data.size(), 7), base);
}

TEST(Checksum64, ZeroLengthIsDefinedAndSeeded) {
  EXPECT_EQ(checksum64(nullptr, 0, 9), checksum64(nullptr, 0, 9));
  EXPECT_NE(checksum64(nullptr, 0, 9), checksum64(nullptr, 0, 10));
}

// ---------------------------------------------------------------------------
// ReliableTransport::forge_corrupt_copy
// ---------------------------------------------------------------------------

TEST(ForgeCorruptCopy, StampsOriginalChecksumAndIsDetectable) {
  ReliableTransport transport(0xABCDull);
  std::vector<double> payload = {1.0, -2.5, 3.25, 0.0, 1e9};
  const Buffer original = Buffer::copy_of(payload);
  const std::uint64_t clean = transport.checksum(original);
  for (int copy = 0; copy < 4; ++copy) {
    std::uint64_t stamped = 0;
    Buffer forged =
        transport.forge_corrupt_copy(original, 0xFEEDBEEFull, copy, &stamped);
    // The envelope carries the *original* checksum (stamped pre-corruption)…
    EXPECT_EQ(stamped, clean);
    ASSERT_EQ(forged.size(), original.size());
    // …while the payload differs, so the receiver's recompute disagrees.
    EXPECT_NE(transport.checksum(forged), stamped) << "copy " << copy;
  }
}

TEST(ForgeCorruptCopy, ZeroWordPayloadCorruptsChecksumField) {
  // An empty payload has no bits to flip; the corruption must hit the
  // stamped checksum instead so detection still happens the honest way.
  ReliableTransport transport(55);
  const Buffer empty;
  std::uint64_t stamped = 0;
  Buffer forged = transport.forge_corrupt_copy(empty, 0x1234ull, 0, &stamped);
  EXPECT_EQ(forged.size(), 0u);
  EXPECT_NE(stamped, transport.checksum(forged));
}

// ---------------------------------------------------------------------------
// FaultPlan SDC decision stream
// ---------------------------------------------------------------------------

TEST(SdcDecisions, ReplayableAndDomainSeparatedFromTimingFaults) {
  FaultProfile profile = sdc_profile(0.3, 0.3, 0.3);
  profile.delay_prob = 0.5;
  profile.max_delay = 4;
  profile.fail_prob = 0.2;
  FaultPlan a(profile, 99, 4, 1111);
  FaultPlan b(profile, 99, 4, 1111);  // identical seeds -> identical stream
  FaultPlan c(profile, 99, 4, 2222);  // different SDC seed
  int sdc_diffs = 0;
  for (int i = 0; i < 200; ++i) {
    for (int src = 0; src < 4; ++src) {
      const SendFaults fa = a.decide_send(src);
      const SendFaults fb = b.decide_send(src);
      const SendFaults fc = c.decide_send(src);
      EXPECT_EQ(fa.dropped_copies, fb.dropped_copies);
      EXPECT_EQ(fa.corrupt_copies, fb.corrupt_copies);
      EXPECT_EQ(fa.duplicated, fb.duplicated);
      EXPECT_EQ(fa.flip_entropy, fb.flip_entropy);
      EXPECT_EQ(fa.delay, fb.delay);
      EXPECT_EQ(fa.failed_attempts, fb.failed_attempts);
      // Changing only the SDC seed must leave the timing/transient streams
      // untouched (the whole point of the separate seed domain)…
      EXPECT_EQ(fa.delay, fc.delay);
      EXPECT_EQ(fa.failed_attempts, fc.failed_attempts);
      EXPECT_EQ(fa.reorder_skip, fc.reorder_skip);
      // …while the SDC draws themselves do move.
      if (fa.dropped_copies != fc.dropped_copies ||
          fa.corrupt_copies != fc.corrupt_copies ||
          fa.duplicated != fc.duplicated) {
        ++sdc_diffs;
      }
    }
  }
  EXPECT_GT(sdc_diffs, 0);
}

TEST(SdcDecisions, DefaultSdcSeedDerivesFromFaultSeed) {
  const FaultProfile profile = sdc_profile(0.4, 0.4, 0.4);
  FaultPlan implicit_seed(profile, 77, 2);
  FaultPlan explicit_seed(profile, 77, 2,
                          derive_seed(77, kSeedDomainSdc));
  for (int i = 0; i < 64; ++i) {
    const SendFaults fa = implicit_seed.decide_send(0);
    const SendFaults fb = explicit_seed.decide_send(0);
    EXPECT_EQ(fa.dropped_copies, fb.dropped_copies);
    EXPECT_EQ(fa.corrupt_copies, fb.corrupt_copies);
    EXPECT_EQ(fa.duplicated, fb.duplicated);
  }
}

// ---------------------------------------------------------------------------
// Machine-level healing
// ---------------------------------------------------------------------------

// All-pairs exchange with position-determined payloads: every rank sends a
// distinct 17-word message to every other rank and checks the received
// words bit-for-bit, so any healed-wrong payload fails loudly.
double expected_word(int src, int dst, int round, std::size_t i) {
  return static_cast<double>(dst) * 100.0 + static_cast<double>(src) +
         static_cast<double>(round) * 1000.0 + static_cast<double>(i) / 8.0;
}

void all_pairs_program(RankCtx& ctx) {
  const int p = ctx.nprocs();
  ctx.set_phase("exchange");
  for (int round = 1; round < p; ++round) {
    const int dst = (ctx.rank() + round) % p;
    const int src = (ctx.rank() + p - round) % p;
    std::vector<double> payload(17);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = expected_word(ctx.rank(), dst, round, i);
    }
    ctx.send(dst, round, Buffer::copy_of(payload));
    const Buffer got = ctx.recv(src, round);
    ASSERT_EQ(got.size(), payload.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.data()[i], expected_word(src, ctx.rank(), round, i))
          << src << "->" << ctx.rank() << " round " << round << " word " << i;
    }
  }
  ctx.barrier();
}

TEST(ReliableTransportMachine, HealsDropsFlipsDupsWordExactly) {
  const int kProcs = 5;
  const FaultProfile profile = sdc_profile(0.15, 0.15, 0.15);
  const std::uint64_t fault_seed = 77;

  Machine clean(kProcs);
  clean.run(all_pairs_program);

  Machine faulted(kProcs);
  faulted.enable_faults(profile, fault_seed);
  faulted.enable_reliable_transport(0xC0FFEEull);
  Trace& trace = faulted.enable_trace();
  faulted.run(all_pairs_program);  // payload equality asserted inside

  const FaultCounts counts = faulted.fault_plan()->counts();
  ASSERT_GT(counts.dropped_copies + counts.corrupt_copies +
                counts.duplicated_messages,
            0)
      << "rates 0.15 over 20 sends should inject something";
  EXPECT_EQ(counts.exhausted_sends, 0);

  // Algorithm phase stays word-exact to the clean run; all tax lands in the
  // transport phase, pinned exactly by the closed-form replay predictor.
  const std::vector<PhaseCounters> tax = coll::predicted_transport_phase(
      profile, fault_seed, /*sdc_seed=*/0, kProcs, trace.events());
  for (int r = 0; r < kProcs; ++r) {
    const PhaseCounters algo = faulted.stats().rank_phase(r, "exchange");
    const PhaseCounters algo_clean = clean.stats().rank_phase(r, "exchange");
    EXPECT_EQ(algo.words_sent(), algo_clean.words_sent()) << "rank " << r;
    EXPECT_EQ(algo.words_received(), algo_clean.words_received()) << "rank " << r;
    EXPECT_EQ(algo.messages_sent, algo_clean.messages_sent) << "rank " << r;
    const PhaseCounters measured =
        faulted.stats().rank_phase(r, kPhaseTransport);
    EXPECT_EQ(measured.words_sent(), tax[r].words_sent()) << "rank " << r;
    EXPECT_EQ(measured.words_received(), tax[r].words_received()) << "rank " << r;
    EXPECT_EQ(measured.messages_sent, tax[r].messages_sent) << "rank " << r;
    EXPECT_EQ(measured.messages_received, tax[r].messages_received)
        << "rank " << r;
  }

  // Aggregate counter identities: every corrupt copy was caught and nacked,
  // every duplicate was either discarded in-flight or parked as debris.
  const TransportCounters tc = faulted.stats().transport_total();
  EXPECT_EQ(tc.corrupt_discards, counts.corrupt_copies);
  EXPECT_EQ(tc.nacks, counts.corrupt_copies);
  EXPECT_EQ(tc.retransmits, counts.dropped_copies + counts.corrupt_copies);
  EXPECT_EQ(tc.dup_copies, counts.duplicated_messages);
  EXPECT_EQ(tc.dup_discards +
                static_cast<i64>(faulted.transport_debris().size()),
            counts.duplicated_messages);

  // Retransmits and backoff are real latency: the healed run is never
  // faster than the clean one.
  EXPECT_GE(faulted.critical_path_time(), clean.critical_path_time());
}

TEST(ReliableTransportMachine, RunsAreDeterministicAcrossReplays) {
  const FaultProfile profile = sdc_profile(0.2, 0.2, 0.2);
  auto run_once = [&](TransportCounters* total, double* time) {
    Machine machine(4);
    machine.enable_faults(profile, 31, /*sdc_seed=*/5151);
    machine.enable_reliable_transport(5151);
    machine.run(all_pairs_program);
    *total = machine.stats().transport_total();
    *time = machine.critical_path_time();
  };
  TransportCounters first, second;
  double time_first = 0, time_second = 0;
  run_once(&first, &time_first);
  run_once(&second, &time_second);
  EXPECT_EQ(first.retransmits, second.retransmits);
  EXPECT_EQ(first.retransmitted_bytes, second.retransmitted_bytes);
  EXPECT_EQ(first.corrupt_discards, second.corrupt_discards);
  EXPECT_EQ(first.dup_discards, second.dup_discards);
  EXPECT_EQ(first.acks, second.acks);
  EXPECT_EQ(first.nacks, second.nacks);
  EXPECT_EQ(time_first, time_second);
}

TEST(ReliableTransportMachine, ExhaustionSurfacesNamedTransportError) {
  FaultProfile profile = sdc_profile(1.0, 0.0, 0.0);  // every copy dropped
  profile.max_transport_retries = 4;
  Machine machine(2);
  machine.enable_faults(profile, 5);
  machine.enable_reliable_transport(9);
  try {
    machine.run([](RankCtx& ctx) {
      if (ctx.rank() == 0) {
        ctx.send(1, 3, {1.0, 2.0});
      } else {
        (void)ctx.recv(0, 3);
      }
    });
    FAIL() << "expected TransportError";
  } catch (const TransportError& err) {
    EXPECT_EQ(err.src(), 0);
    EXPECT_EQ(err.dst(), 1);
    EXPECT_EQ(err.tag(), 3);
    EXPECT_EQ(err.failed_copies(), 4);
    EXPECT_EQ(err.max_transport_retries(), 4);
    // The message must be actionable: it names the configured budget and
    // the exponential-backoff schedule the failed copies waited through
    // (copy k waits 2^(k-1) alpha units: 1+2+4+8 = 15 for four copies).
    const std::string message = err.what();
    EXPECT_NE(message.find("max_transport_retries=4"), std::string::npos)
        << message;
    EXPECT_NE(message.find("backoff schedule waited 1+2+4+8 = 15"),
              std::string::npos)
        << message;
  }
}

TEST(ReliableTransportMachine, SdcWithoutTransportFailsFast) {
  // Drops without retransmission hang their receiver; the machine refuses
  // the configuration up front instead of deadlocking.
  Machine machine(2);
  machine.enable_faults(sdc_profile(0.1, 0.0, 0.0), 3);
  EXPECT_THROW(machine.run([](RankCtx&) {}), Error);
}

// ---------------------------------------------------------------------------
// Duplicate debris and the run-end leak check (satellite: drain_undelivered)
// ---------------------------------------------------------------------------

TEST(ReliableTransportMachine, UnpoppedDuplicatesPartitionAsBenignDebris) {
  FaultProfile profile = sdc_profile(0.0, 0.0, 1.0);  // duplicate every send
  Machine machine(3);
  machine.enable_faults(profile, 11);
  machine.enable_reliable_transport(12);
  // Each (src, tag) envelope is received exactly once, so every injected
  // duplicate is still parked in a mailbox at run end.  A clean run treats
  // leftover messages as a program bug; transport duplicates must instead
  // partition into the benign debris list without throwing.
  machine.run(all_pairs_program);
  ASSERT_EQ(machine.transport_debris().size(), 6u);  // 3 ranks x 2 sends
  for (const UndeliveredMessage& msg : machine.transport_debris()) {
    EXPECT_TRUE(msg.transport_dup);
    EXPECT_EQ(msg.words(), 17);
  }
  EXPECT_EQ(machine.stats().transport_total().dup_discards, 0);
}

TEST(ReliableTransportMachine, InFlightDuplicatesAreDiscardedSilently) {
  FaultProfile profile = sdc_profile(0.0, 0.0, 1.0);
  Machine machine(2);
  machine.enable_faults(profile, 13);
  machine.enable_reliable_transport(14);
  machine.run([](RankCtx& ctx) {
    // Two sends on the *same* (src, tag) envelope: the receiver's second
    // recv pops the first send's duplicate, discards it, and keeps going.
    if (ctx.rank() == 0) {
      ctx.send(1, 7, {1.0});
      ctx.send(1, 7, {2.0});
    } else {
      const Buffer first = ctx.recv(0, 7);
      const Buffer second = ctx.recv(0, 7);
      ASSERT_EQ(first.size(), 1u);
      ASSERT_EQ(second.size(), 1u);
      EXPECT_EQ(first.data()[0], 1.0);
      EXPECT_EQ(second.data()[0], 2.0);
    }
  });
  EXPECT_EQ(machine.stats().transport_total().dup_discards, 1);
  EXPECT_EQ(machine.transport_debris().size(), 1u);
}

TEST(MailboxDebris, DrainUndeliveredCarriesTransportDupFlag) {
  Mailbox box;
  Message dup;
  dup.src = 2;
  dup.tag = 9;
  dup.payload = Buffer::zeros(3);
  dup.phase = "exchange";
  dup.transport_dup = true;
  Message leak;
  leak.src = 1;
  leak.tag = 4;
  leak.payload = Buffer::zeros(2);
  leak.phase = "exchange";
  box.push(std::move(dup));
  box.push(std::move(leak));
  std::vector<UndeliveredMessage> out;
  box.drain_undelivered(5, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].src, 2);
  EXPECT_EQ(out[0].dst, 5);
  EXPECT_EQ(out[0].words(), 3);
  EXPECT_TRUE(out[0].transport_dup);
  EXPECT_EQ(out[1].src, 1);
  EXPECT_FALSE(out[1].transport_dup);
  EXPECT_EQ(box.pending(), 0u);
}

}  // namespace
}  // namespace camb
