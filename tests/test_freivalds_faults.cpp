// Freivalds verification under schedule perturbation: across a sweep of
// master seeds with fault injection active, the probabilistic check accepts
// every correctly-computed product — faults perturb schedules, never data —
// and rejects a product with a single corrupted tile.
#include <gtest/gtest.h>

#include "matmul/freivalds.hpp"
#include "matmul/runner.hpp"
#include "util/rng.hpp"

namespace camb {
namespace {

constexpr core::Shape kShape{24, 16, 12};
constexpr double kAcceptTol = 1e-9;

TEST(FreivaldsFaults, AcceptsCorrectProductAcrossEightSeedFaultSweep) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    mm::RunOptions opts;
    opts.verify = mm::VerifyMode::kFreivalds;
    opts.perturb.profile = "heavy";
    opts.perturb.master_seed = seed;
    const mm::RunReport summa =
        mm::run_summa(mm::SummaConfig{kShape, 2}, opts);
    ASSERT_TRUE(summa.verified);
    EXPECT_LE(summa.max_abs_error, kAcceptTol)
        << "summa seed " << seed << ": " << summa.faults.summary();
    const mm::RunReport grid = mm::run_grid3d(
        mm::Grid3dConfig{kShape, core::Grid3{2, 2, 2}}, opts);
    ASSERT_TRUE(grid.verified);
    EXPECT_LE(grid.max_abs_error, kAcceptTol)
        << "grid3d seed " << seed << ": " << grid.faults.summary();
  }
}

TEST(FreivaldsFaults, RejectsACorruptedTile) {
  // Take the true product and flip one entry — as if a rank's recovered
  // tile came back wrong.  Freivalds must flag it.
  MatrixD corrupted = mm::reference_result(kShape);
  corrupted(kShape.n1 / 2, kShape.n3 / 2) += 1.0;
  const double residual =
      mm::check_result(kShape, corrupted, mm::VerifyMode::kFreivalds);
  EXPECT_GT(residual, 1e-3) << "corruption slipped past Freivalds";
  // Sanity: the untouched product passes the same check.
  EXPECT_LE(mm::check_result(kShape, mm::reference_result(kShape),
                             mm::VerifyMode::kFreivalds),
            kAcceptTol);
}

TEST(FreivaldsFaults, RejectsACorruptedIntegerTileToo) {
  // Same property on the integer-valued ABFT pattern.
  MatrixD corrupted = mm::reference_result_int(kShape);
  corrupted(0, 0) += 1.0;
  MatrixD a(kShape.n1, kShape.n2), b(kShape.n2, kShape.n3);
  a.fill_indexed_int(0, 0);
  b.fill_indexed_int(0, 0);
  Rng rng(0xF4E1);
  EXPECT_FALSE(mm::freivalds_check(a, b, corrupted, /*trials=*/24, rng));
  Rng rng2(0xF4E1);
  EXPECT_TRUE(mm::freivalds_check(a, b, mm::reference_result_int(kShape),
                              /*trials=*/24, rng2));
}

}  // namespace
}  // namespace camb
