// Unit tests for the communicator layer: Comm construction and validation
// (including the group-size-512 regression for the single-pass duplicate
// check), tag-lease allocation and exhaustion, split, and GridComm fibers.
#include "collectives/comm.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <numeric>

#include "collectives/grid_comm.hpp"
#include "machine/machine.hpp"

namespace camb {
namespace {

// ---------------------------------------------------------------------------
// TagAllocator (satellite: exhaustion must throw, not wrap around)
// ---------------------------------------------------------------------------

TEST(TagAllocator, AlgorithmRegionExhaustionThrows) {
  TagAllocator alloc;
  const int total = alloc.algorithm_blocks_left();
  EXPECT_EQ(total, kRecoveryTagBase / kTagBlockWidth);
  // Drain the region in large leases, then demand one block too many.
  while (alloc.algorithm_blocks_left() >= 1024) alloc.lease(1024);
  const int left = alloc.algorithm_blocks_left();
  if (left > 0) alloc.lease(left);
  EXPECT_EQ(alloc.algorithm_blocks_left(), 0);
  EXPECT_THROW(alloc.lease(1), Error);
  // The recovery region is independent and still serviceable.
  const TagLease rec = alloc.lease_recovery(1);
  EXPECT_GE(rec.base, kRecoveryTagBase);
}

TEST(TagAllocator, RecoveryRegionExhaustionThrows) {
  TagAllocator alloc;
  while (alloc.recovery_blocks_left() >= 4096) alloc.lease_recovery(4096);
  const int left = alloc.recovery_blocks_left();
  if (left > 0) alloc.lease_recovery(left);
  EXPECT_THROW(alloc.lease_recovery(1), Error);
  // The algorithm region is untouched.
  EXPECT_EQ(alloc.algorithm_blocks_left(), kRecoveryTagBase / kTagBlockWidth);
}

TEST(TagAllocator, RejectsEmptyLease) {
  TagAllocator alloc;
  EXPECT_THROW(alloc.lease(0), Error);
  EXPECT_THROW(alloc.lease(-3), Error);
}

TEST(TagAllocator, LeaseGeometry) {
  TagAllocator alloc;
  const TagLease a = alloc.lease(2);
  const TagLease b = alloc.lease(1);
  EXPECT_EQ(a.base, 0);
  EXPECT_EQ(a.limit(), 2 * kTagBlockWidth);
  EXPECT_EQ(b.base, a.limit());  // contiguous, disjoint
}

// ---------------------------------------------------------------------------
// Comm construction and validation
// ---------------------------------------------------------------------------

TEST(CommValidation, GroupSize512SinglePass) {
  // Regression for the O(n^2) duplicate scan replaced by a bitmask pass:
  // construction of a 512-member comm (and rejection of a duplicate buried
  // at its end) must be exact at sizes where the quadratic scan hurt.
  const int P = 512;
  Machine machine(P);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() != 0) return;
    std::vector<int> everyone(static_cast<std::size_t>(P));
    std::iota(everyone.begin(), everyone.end(), 0);
    const coll::Comm comm(ctx, everyone);
    EXPECT_EQ(comm.size(), P);
    EXPECT_EQ(comm.my_index(), 0);
    EXPECT_EQ(comm.rank_at(P - 1), P - 1);
    std::vector<int> dup = everyone;
    dup.back() = 0;  // duplicate of the first member, at the far end
    EXPECT_THROW(coll::Comm(ctx, dup), Error);
    std::vector<int> oob = everyone;
    oob.back() = P;  // one past the machine
    EXPECT_THROW(coll::Comm(ctx, oob), Error);
  });
}

TEST(Comm, TakeTagBlockWalksTheLeaseAndThenThrows) {
  Machine machine(2);
  machine.run([&](RankCtx& ctx) {
    const coll::Comm comm = coll::Comm::world(ctx, /*tag_blocks=*/2);
    const int first = comm.take_tag_block();
    const int second = comm.take_tag_block();
    EXPECT_EQ(first, comm.lease().base);
    EXPECT_EQ(second, first + kTagBlockWidth);
    EXPECT_THROW(comm.take_tag_block(), Error);  // lease exhausted
  });
}

TEST(Comm, LeaseSequenceAgreesAcrossRanks) {
  // The SPMD contract: every rank performs the same sequence of comm
  // constructions, so the k-th lease has the same base everywhere even
  // though the member lists differ (each rank builds its own fiber).
  const int P = 6;
  Machine machine(P);
  std::mutex mutex;
  std::vector<std::pair<int, int>> bases(static_cast<std::size_t>(P));
  machine.run([&](RankCtx& ctx) {
    const coll::Comm world = coll::Comm::world(ctx);
    const coll::Comm mine =
        world.split([&](int idx) { return idx % 2; }, /*tag_blocks=*/4);
    std::lock_guard<std::mutex> lock(mutex);
    bases[static_cast<std::size_t>(ctx.rank())] = {world.lease().base,
                                                   mine.lease().base};
  });
  for (int r = 1; r < P; ++r) {
    EXPECT_EQ(bases[static_cast<std::size_t>(r)], bases[0]) << "rank " << r;
  }
}

TEST(Comm, SplitByParityOrdersByParentIndex) {
  const int P = 8;
  Machine machine(P);
  machine.run([&](RankCtx& ctx) {
    const coll::Comm world = coll::Comm::world(ctx);
    const coll::Comm half = world.split([](int idx) { return idx % 2; });
    ASSERT_EQ(half.size(), P / 2);
    EXPECT_EQ(half.my_index(), ctx.rank() / 2);
    for (int i = 0; i < half.size(); ++i) {
      EXPECT_EQ(half.rank_at(i), 2 * i + ctx.rank() % 2);
    }
  });
}

TEST(Comm, RecoveryLeasesComeFromTheRecoveryRegion) {
  Machine machine(3);
  machine.run([&](RankCtx& ctx) {
    const coll::Comm algo = coll::Comm::world(ctx);
    const coll::Comm rec = coll::Comm::recovery(ctx, {0, 1, 2});
    EXPECT_FALSE(algo.is_recovery());
    EXPECT_LT(algo.lease().limit(), kRecoveryTagBase);
    EXPECT_TRUE(rec.is_recovery());
    EXPECT_GE(rec.lease().base, kRecoveryTagBase);
  });
}

TEST(Comm, NonMembersMayNotCommunicate) {
  Machine machine(4);
  machine.run([&](RankCtx& ctx) {
    const coll::Comm rec = coll::Comm::recovery(ctx, {0, 1});
    if (ctx.rank() >= 2) {
      EXPECT_FALSE(rec.member());
      EXPECT_THROW(rec.send(0, rec.lease().base, {1.0}), Error);
      EXPECT_THROW((void)rec.recv(0, rec.lease().base), Error);
      return;
    }
    const int tag = rec.take_tag_block();
    const auto got = rec.sendrecv(1 - ctx.rank(), tag,
                                  {static_cast<double>(ctx.rank())});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_DOUBLE_EQ(got[0], static_cast<double>(1 - ctx.rank()));
  });
}

// ---------------------------------------------------------------------------
// GridComm fibers
// ---------------------------------------------------------------------------

TEST(GridComm, FibersAreTheAxisAlignedLinesThroughThisRank) {
  const core::Grid3 grid{2, 3, 4};
  Machine machine(static_cast<int>(grid.total()));
  machine.run([&](RankCtx& ctx) {
    const coll::GridComm gc(ctx, grid);
    const i64 q1 = ctx.rank() / (grid.p2 * grid.p3);
    const i64 q2 = (ctx.rank() / grid.p3) % grid.p2;
    const i64 q3 = ctx.rank() % grid.p3;
    EXPECT_EQ(gc.q1(), q1);
    EXPECT_EQ(gc.q2(), q2);
    EXPECT_EQ(gc.q3(), q3);
    EXPECT_EQ(gc.rank_of(q1, q2, q3), ctx.rank());
    // fiber(a) varies coordinate a and fixes the other two; this rank's
    // index within it is its own a-th coordinate.
    EXPECT_EQ(gc.fiber(0).size(), grid.p1);
    EXPECT_EQ(gc.fiber(1).size(), grid.p2);
    EXPECT_EQ(gc.fiber(2).size(), grid.p3);
    EXPECT_EQ(gc.fiber(0).my_index(), static_cast<int>(q1));
    EXPECT_EQ(gc.fiber(1).my_index(), static_cast<int>(q2));
    EXPECT_EQ(gc.fiber(2).my_index(), static_cast<int>(q3));
    for (i64 v = 0; v < grid.p2; ++v) {
      EXPECT_EQ(gc.fiber(1).rank_at(static_cast<int>(v)),
                gc.rank_of(q1, v, q3));
    }
    EXPECT_THROW(gc.fiber(3), Error);
  });
}

TEST(GridComm, RejectsMismatchedMachine) {
  Machine machine(5);
  machine.run([&](RankCtx& ctx) {
    EXPECT_THROW(coll::GridComm(ctx, core::Grid3{2, 2, 2}), Error);
  });
}

}  // namespace
}  // namespace camb
