// Unit tests for the simulated α-β-γ machine: mailboxes, network accounting,
// barriers, and SPMD execution semantics.
#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "util/error.hpp"

namespace camb {
namespace {

TEST(Machine, RunsAllRanks) {
  Machine machine(8);
  std::atomic<int> count{0};
  machine.run([&](RankCtx& ctx) {
    (void)ctx;
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(Machine, PointToPointDeliversPayload) {
  Machine machine(2);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 42, {1.0, 2.0, 3.0});
    } else {
      const auto msg = ctx.recv(0, 42);
      ASSERT_EQ(msg.size(), 3u);
      EXPECT_DOUBLE_EQ(msg[2], 3.0);
    }
  });
}

TEST(Machine, TagMatchingIsExact) {
  // Two messages with different tags arrive out of order; receives by tag
  // must pick the right ones regardless.
  Machine machine(2);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 7, {7.0});
      ctx.send(1, 8, {8.0});
    } else {
      const auto m8 = ctx.recv(0, 8);
      const auto m7 = ctx.recv(0, 7);
      EXPECT_DOUBLE_EQ(m8[0], 8.0);
      EXPECT_DOUBLE_EQ(m7[0], 7.0);
    }
  });
}

TEST(Machine, CountsWordsOnBothEnds) {
  Machine machine(3);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 0, std::vector<double>(10));
      ctx.send(2, 0, std::vector<double>(5));
    } else {
      (void)ctx.recv(0, 0);
    }
  });
  const CommStats& stats = machine.stats();
  EXPECT_EQ(stats.rank_total(0).words_sent(), 15);
  EXPECT_EQ(stats.rank_total(0).messages_sent, 2);
  EXPECT_EQ(stats.rank_total(1).words_received(), 10);
  EXPECT_EQ(stats.rank_total(2).words_received(), 5);
  EXPECT_EQ(stats.total_words_sent(), 15);
  EXPECT_EQ(stats.critical_path_received_words(), 10);
  EXPECT_EQ(stats.critical_path_sent_words(), 15);
}

TEST(Machine, SelfSendsAreFree) {
  Machine machine(1);
  machine.run([&](RankCtx& ctx) {
    ctx.send(0, 3, {1.0, 2.0});
    const auto msg = ctx.recv(0, 3);
    EXPECT_EQ(msg.size(), 2u);
  });
  EXPECT_EQ(machine.stats().total_words_sent(), 0);
  EXPECT_EQ(machine.stats().rank_total(0).messages_sent, 0);
}

TEST(Machine, PhaseAccounting) {
  Machine machine(2);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.set_phase("first");
      ctx.send(1, 0, std::vector<double>(4));
      ctx.set_phase("second");
      ctx.send(1, 1, std::vector<double>(6));
    } else {
      ctx.set_phase("first");
      (void)ctx.recv(0, 0);
      ctx.set_phase("second");
      (void)ctx.recv(0, 1);
    }
  });
  const CommStats& stats = machine.stats();
  EXPECT_EQ(stats.phase_critical_path_received_words("first"), 4);
  EXPECT_EQ(stats.phase_critical_path_received_words("second"), 6);
  const auto phases = stats.phases();
  ASSERT_GE(phases.size(), 2u);
}

TEST(Machine, SendRecvExchanges) {
  Machine machine(2);
  machine.run([&](RankCtx& ctx) {
    const int peer = 1 - ctx.rank();
    const double mine = static_cast<double>(ctx.rank());
    const auto theirs = ctx.sendrecv(peer, 5, {mine});
    EXPECT_DOUBLE_EQ(theirs[0], static_cast<double>(peer));
  });
}

TEST(Machine, BarrierSynchronizes) {
  // Every rank increments before the barrier; after the barrier all ranks
  // must observe the full count.
  Machine machine(16);
  std::atomic<int> before{0};
  machine.run([&](RankCtx& ctx) {
    before.fetch_add(1);
    ctx.barrier();
    EXPECT_EQ(before.load(), 16);
  });
}

TEST(Machine, ExceptionsPropagate) {
  Machine machine(4);
  EXPECT_THROW(machine.run([&](RankCtx& ctx) {
                 if (ctx.rank() == 2) throw Error("rank 2 failed");
                 // Other ranks exit cleanly.
               }),
               Error);
}

TEST(Machine, UndeliveredMessagesDetected) {
  Machine machine(2);
  EXPECT_THROW(machine.run([&](RankCtx& ctx) {
                 if (ctx.rank() == 0) ctx.send(1, 0, {1.0});
                 // Rank 1 never receives.
               }),
               Error);
}

TEST(Machine, RankRngStreamsDiffer) {
  Machine machine(2);
  std::vector<double> first(2);
  machine.run([&](RankCtx& ctx) {
    first[static_cast<std::size_t>(ctx.rank())] = ctx.rng().uniform();
  });
  EXPECT_NE(first[0], first[1]);
}

TEST(AlphaBeta, CostFormula) {
  AlphaBeta machine{2.0, 0.5};
  PhaseCounters counters;
  counters.messages_sent = 3;
  counters.bytes_sent = 100 * 8;
  counters.messages_received = 1;
  counters.bytes_received = 40 * 8;
  // max(sent, recv) on both terms: 3 messages, 100 words.
  EXPECT_DOUBLE_EQ(machine.cost(counters), 2.0 * 3 + 0.5 * 100);
}

TEST(Machine, ManyRanksStress) {
  // 128 threads exchanging in a ring — exercises mailbox contention.
  Machine machine(128);
  machine.run([&](RankCtx& ctx) {
    const int p = ctx.nprocs();
    const int next = (ctx.rank() + 1) % p;
    const int prev = (ctx.rank() + p - 1) % p;
    ctx.send(next, 9, {static_cast<double>(ctx.rank())});
    const auto msg = ctx.recv(prev, 9);
    EXPECT_DOUBLE_EQ(msg[0], static_cast<double>(prev));
  });
  EXPECT_EQ(machine.stats().total_words_sent(), 128);
}

}  // namespace
}  // namespace camb
