// Unit tests for util/math.hpp: integer helpers used by grids and bounds.
#include "util/math.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace camb {
namespace {

TEST(CeilDiv, BasicValues) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(9, 3), 3);
}

TEST(CeilDiv, RejectsBadInput) {
  EXPECT_THROW(ceil_div(-1, 3), Error);
  EXPECT_THROW(ceil_div(1, 0), Error);
}

TEST(CheckedMul, ComputesAndGuards) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_EQ(checked_mul(0, 1000000000), 0);
  EXPECT_EQ(checked_mul3(100, 200, 300), 6000000);
  EXPECT_THROW(checked_mul(i64{1} << 40, i64{1} << 40), Error);
  EXPECT_THROW(checked_mul(-1, 2), Error);
}

TEST(Divides, Basics) {
  EXPECT_TRUE(divides(3, 9));
  EXPECT_FALSE(divides(4, 9));
  EXPECT_TRUE(divides(1, 0));
}

TEST(Divisors, SmallNumbers) {
  EXPECT_EQ(divisors(1), (std::vector<i64>{1}));
  EXPECT_EQ(divisors(12), (std::vector<i64>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(36), (std::vector<i64>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
  EXPECT_EQ(divisors(7), (std::vector<i64>{1, 7}));
}

TEST(Divisors, PerfectSquareNotDuplicated) {
  const auto divs = divisors(16);
  EXPECT_EQ(divs, (std::vector<i64>{1, 2, 4, 8, 16}));
}

TEST(FactorTriples, CountMatchesDivisorStructure) {
  // Number of ordered triples (a,b,c) with abc = p equals
  // sum over divisors a of d(p/a).
  for (i64 p : {1, 2, 6, 12, 36, 64, 100}) {
    std::size_t expected = 0;
    for (i64 a : divisors(p)) expected += divisors(p / a).size();
    EXPECT_EQ(factor_triples(p).size(), expected) << "p=" << p;
  }
}

TEST(FactorTriples, AllTriplesMultiplyToP) {
  for (const auto& t : factor_triples(360)) {
    EXPECT_EQ(t.a * t.b * t.c, 360);
  }
}

TEST(FactorTriples, ContainsCanonicalGrids) {
  const auto triples = factor_triples(512);
  bool found_paper_grid = false;
  for (const auto& t : triples) {
    if (t.a == 32 && t.b == 8 && t.c == 2) found_paper_grid = true;
  }
  EXPECT_TRUE(found_paper_grid) << "Figure 2(c)'s 32x8x2 grid must appear";
}

TEST(Isqrt, ExactAndFloor) {
  EXPECT_EQ(isqrt(0), 0);
  EXPECT_EQ(isqrt(1), 1);
  EXPECT_EQ(isqrt(15), 3);
  EXPECT_EQ(isqrt(16), 4);
  EXPECT_EQ(isqrt(17), 4);
  EXPECT_EQ(isqrt(i64{1} << 40), i64{1} << 20);
}

TEST(Icbrt, ExactAndFloor) {
  EXPECT_EQ(icbrt(0), 0);
  EXPECT_EQ(icbrt(7), 1);
  EXPECT_EQ(icbrt(8), 2);
  EXPECT_EQ(icbrt(26), 2);
  EXPECT_EQ(icbrt(27), 3);
  EXPECT_EQ(icbrt(i64{1} << 30), i64{1} << 10);
}

TEST(Ipow, SmallPowers) {
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 0), 1);
  EXPECT_EQ(ipow(10, 6), 1000000);
  EXPECT_THROW(ipow(10, 30), Error);
}

TEST(ApproxEq, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_eq(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_eq(1.0, 1.001));
  EXPECT_TRUE(approx_eq(0.0, 1e-15));
  EXPECT_TRUE(approx_eq(1e18, 1e18 * (1 + 1e-10)));
}

TEST(Median3, AllOrders) {
  EXPECT_EQ(median3(i64{1}, i64{2}, i64{3}), 2);
  EXPECT_EQ(median3(i64{3}, i64{2}, i64{1}), 2);
  EXPECT_EQ(median3(i64{2}, i64{3}, i64{1}), 2);
  EXPECT_EQ(median3(i64{5}, i64{5}, i64{1}), 5);
  EXPECT_DOUBLE_EQ(median3(1.5, 0.5, 2.5), 1.5);
}

}  // namespace
}  // namespace camb
