// Crash recovery through checkpoint/rollback: every registered algorithm
// must survive a seeded single-rank crash bit-identically, and the 2D
// algorithms must additionally survive a second crash landing while the
// first one's recovery is still in flight (rounds >= 3).
//
// The fiber-scheduler legs re-run the hardest sweeps with ranks executing
// as cooperatively scheduled fibers (machine/fiber.hpp): rollback parks
// fibers *inside catch blocks*, so these are the tests that pin the
// exception-state handoff and the park/notify protocol under recovery
// traffic — word-exact against the thread-per-rank twin.
#include <gtest/gtest.h>

#include "matmul/runner.hpp"
#include "util/rng.hpp"

namespace camb {
namespace {

mm::RunOptions crash_opts(std::vector<int> ranks, i64 max_pos,
                          std::uint64_t master_seed, i64 interval = 1,
                          int spares = 1) {
  mm::RunOptions opts;
  opts.verify = mm::VerifyMode::kReference;
  opts.perturb.master_seed = master_seed;
  opts.crash.ranks = std::move(ranks);
  opts.crash.max_send_position = max_pos;
  opts.checkpoint.interval = interval;
  opts.checkpoint.spares = spares;
  return opts;
}

mm::RunOptions fiberize(mm::RunOptions opts) {
  opts.scheduler.kind = SchedulerKind::kFibers;
  return opts;
}

/// Word-exact recovery accounting across schedulers: the fiber run must
/// reproduce the thread run's per-rank counters, output bits, rollback
/// rounds, and crash-debris words — not just "also recover".
void expect_word_exact_twin(const mm::RunReport& threads,
                            const mm::RunReport& fibers, const char* what) {
  EXPECT_EQ(fibers.rank_recv_words, threads.rank_recv_words) << what;
  EXPECT_EQ(fibers.rank_sent_words, threads.rank_sent_words) << what;
  EXPECT_EQ(fibers.rank_messages, threads.rank_messages) << what;
  EXPECT_EQ(fibers.output_hash, threads.output_hash) << what;
  EXPECT_EQ(fibers.simulated_time, threads.simulated_time) << what;
  EXPECT_EQ(fibers.recovery.crashed, threads.recovery.crashed) << what;
  EXPECT_EQ(fibers.resilience.rounds, threads.resilience.rounds) << what;
  EXPECT_EQ(fibers.resilience.final_epoch, threads.resilience.final_epoch)
      << what;
  EXPECT_EQ(fibers.resilience.failed, threads.resilience.failed) << what;
  EXPECT_EQ(fibers.recovery.debris_envelopes, threads.recovery.debris_envelopes)
      << what;
  EXPECT_EQ(fibers.recovery.debris_words, threads.recovery.debris_words)
      << what;
}

/// A crashed checkpointed run must still verify bit-exactly against the
/// fault-free twin, have actually rolled back (>= 2 rounds), and report the
/// crash in the agreed failed set.
void expect_recovered(const mm::RunReport& plain, const mm::RunReport& report,
                      const char* what) {
  ASSERT_TRUE(report.verified) << what;
  ASSERT_FALSE(report.recovery.crashed.empty())
      << what << ": crash never fired — widen max_send_position";
  EXPECT_EQ(report.max_abs_error, plain.max_abs_error)
      << what << ": " << report.resilience.summary();
  EXPECT_EQ(report.output_hash, plain.output_hash)
      << what << ": " << report.resilience.summary();
  EXPECT_EQ(report.predicted_critical_recv, -1) << what;
  EXPECT_GE(report.resilience.rounds, 2) << report.resilience.summary();
  for (int dead : report.recovery.crashed) {
    EXPECT_TRUE(std::find(report.resilience.failed.begin(),
                          report.resilience.failed.end(),
                          dead) != report.resilience.failed.end())
        << what << ": crashed rank " << dead << " missing from agreed set; "
        << report.resilience.summary();
  }
  // The dead rank had buffered sends out the door and mail addressed to it:
  // the crash-debris envelope count feeds the RecoveryReport (satellite 2).
  EXPECT_GT(report.recovery.debris_envelopes, 0) << what;
  EXPECT_GE(report.recovery.debris_words, 0) << what;
}

const mm::RunOptions kPlain = mm::RunOptions::verified(mm::VerifyMode::kReference);

TEST(CheckpointRecovery, SummaSingleCrash) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  const mm::RunReport plain = mm::run_summa(cfg, kPlain);
  expect_recovered(plain, mm::run_summa(cfg, crash_opts({4}, 8, 11)), "summa");
}

TEST(CheckpointRecovery, CannonSingleCrash) {
  const mm::CannonConfig cfg{{12, 9, 6}, 3};
  const mm::RunReport plain = mm::run_cannon(cfg, kPlain);
  expect_recovered(plain, mm::run_cannon(cfg, crash_opts({2}, 8, 12)),
                   "cannon");
}

TEST(CheckpointRecovery, NaiveBcastSingleCrash) {
  const mm::NaiveBcastConfig cfg{{8, 6, 4}};
  const mm::RunReport plain = mm::run_naive_bcast(cfg, 4, kPlain);
  expect_recovered(plain,
                   mm::run_naive_bcast(cfg, 4, crash_opts({1}, 6, 13)),
                   "naive_bcast");
}

TEST(CheckpointRecovery, Grid3dSingleCrash) {
  const mm::Grid3dConfig cfg{{12, 10, 8}, core::Grid3{2, 2, 2}};
  const mm::RunReport plain = mm::run_grid3d(cfg, kPlain);
  expect_recovered(plain, mm::run_grid3d(cfg, crash_opts({3}, 6, 14)),
                   "grid3d");
}

TEST(CheckpointRecovery, Grid3dAgarwalSingleCrash) {
  const mm::Grid3dAgarwalConfig cfg{{12, 10, 8}, core::Grid3{2, 2, 2}};
  const mm::RunReport plain = mm::run_grid3d_agarwal(cfg, kPlain);
  expect_recovered(plain,
                   mm::run_grid3d_agarwal(cfg, crash_opts({3}, 6, 15)),
                   "grid3d_agarwal");
}

TEST(CheckpointRecovery, Grid3dStagedSingleCrash) {
  mm::Grid3dStagedConfig cfg;
  cfg.shape = {12, 12, 8};
  cfg.grid = core::Grid3{2, 2, 2};
  cfg.stages = 3;
  const mm::RunReport plain = mm::run_grid3d_staged(cfg, kPlain);
  expect_recovered(plain, mm::run_grid3d_staged(cfg, crash_opts({5}, 6, 16)),
                   "grid3d_staged");
}

TEST(CheckpointRecovery, CarmaSingleCrash) {
  const mm::CarmaConfig cfg{{16, 16, 16}, 3};
  const mm::RunReport plain = mm::run_carma(cfg, kPlain);
  expect_recovered(plain, mm::run_carma(cfg, crash_opts({2}, 6, 17)),
                   "carma");
}

TEST(CheckpointRecovery, Alg25dSingleCrash) {
  mm::Alg25dConfig cfg;
  cfg.shape = {12, 12, 12};
  cfg.g = 2;
  cfg.c = 2;
  const mm::RunReport plain = mm::run_alg25d(cfg, kPlain);
  expect_recovered(plain, mm::run_alg25d(cfg, crash_opts({3}, 6, 18)),
                   "alg25d");
}

TEST(CheckpointRecovery, SummaAbftSingleCrash) {
  const mm::SummaAbftConfig cfg{mm::SummaConfig{{27, 15, 12}, 3}};
  const mm::RunReport plain = mm::run_summa_abft(cfg, kPlain);
  expect_recovered(plain, mm::run_summa_abft(cfg, crash_opts({4}, 8, 19)),
                   "summa_abft");
}

TEST(CheckpointRecovery, Grid3dAbftSingleCrash) {
  const mm::Grid3dAbftConfig cfg{
      mm::Grid3dConfig{{12, 10, 8}, core::Grid3{2, 2, 2}}};
  const mm::RunReport plain = mm::run_grid3d_abft(cfg, kPlain);
  expect_recovered(plain, mm::run_grid3d_abft(cfg, crash_opts({3}, 6, 20)),
                   "grid3d_abft");
}

/// A rollback from a committed epoch restreams the dead logical's snapshot
/// to its replacement: the restream words must show up in the dedicated
/// phase whenever the agreed epoch was >= 1 and a spare was drafted.
TEST(CheckpointRecovery, RestreamWordsAccountedWhenRollingBackToEpoch) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  const mm::RunReport plain = mm::run_summa(cfg, kPlain);
  bool saw_restream = false;
  for (std::uint64_t seed = 30; seed < 60 && !saw_restream; ++seed) {
    const mm::RunReport report =
        mm::run_summa(cfg, crash_opts({4}, 24, seed));
    ASSERT_TRUE(report.verified);
    ASSERT_EQ(report.output_hash, plain.output_hash)
        << report.resilience.summary();
    if (report.recovery.crashed.empty()) continue;
    if (report.resilience.final_epoch >= 1 &&
        !report.resilience.fresh_logicals.empty()) {
      EXPECT_GT(report.resilience.restream_recv_words, 0)
          << report.resilience.summary();
      saw_restream = true;
    }
  }
  EXPECT_TRUE(saw_restream)
      << "no seed in the scan produced an epoch >= 1 rollback";
}

/// Two crashes where the second fires while the first crash's recovery is
/// still running (the run needs >= 3 rounds to settle).  The crash send
/// positions are seed-driven, so the sweep scans seeds until it finds such
/// a schedule — every run along the way must stay bit-identical.
void two_crash_during_rollback_sweep(
    const std::function<mm::RunReport(const mm::RunOptions&)>& run,
    const mm::RunReport& plain, const char* what,
    SchedulerKind scheduler = SchedulerKind::kThreads) {
  bool saw_late_second_crash = false;
  for (std::uint64_t seed = 100; seed < 200 && !saw_late_second_crash;
       ++seed) {
    mm::RunOptions opts = crash_opts({1, 4}, 48, seed, /*interval=*/1,
                                     /*spares=*/2);
    opts.scheduler.kind = scheduler;
    const mm::RunReport report = run(opts);
    ASSERT_TRUE(report.verified) << what << " seed " << seed;
    ASSERT_EQ(report.output_hash, plain.output_hash)
        << what << " seed " << seed << ": " << report.resilience.summary();
    if (report.recovery.crashed.size() == 2 &&
        report.resilience.rounds >= 3) {
      saw_late_second_crash = true;
    }
  }
  EXPECT_TRUE(saw_late_second_crash)
      << what
      << ": no seed produced a second crash during recovery (rounds >= 3)";
}

TEST(CheckpointRecovery, SummaSurvivesSecondCrashDuringRollback) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  const mm::RunReport plain = mm::run_summa(cfg, kPlain);
  two_crash_during_rollback_sweep(
      [&](const mm::RunOptions& opts) { return mm::run_summa(cfg, opts); },
      plain, "summa");
}

TEST(CheckpointRecovery, CannonSurvivesSecondCrashDuringRollback) {
  const mm::CannonConfig cfg{{12, 9, 6}, 3};
  const mm::RunReport plain = mm::run_cannon(cfg, kPlain);
  two_crash_during_rollback_sweep(
      [&](const mm::RunOptions& opts) { return mm::run_cannon(cfg, opts); },
      plain, "cannon");
}

// ---------------------------------------------------------------------------
// Non-f64 dtype legs: checkpoint snapshots travel as homogeneous payloads of
// the run scalar, so recovery must be bit-identical to the same-dtype
// fault-free twin — and the dtype-scaled word accounting must survive the
// rollback protocol (the agreement flood stays fixed 8-byte control words).

mm::RunOptions with_dtype(mm::RunOptions opts, DType dtype) {
  opts.dtype = dtype;
  return opts;
}

TEST(CheckpointRecoveryDtypes, SummaSingleCrashF32) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  const mm::RunReport plain =
      mm::run_summa(cfg, with_dtype(kPlain, DType::kF32));
  expect_recovered(
      plain, mm::run_summa(cfg, with_dtype(crash_opts({4}, 8, 11), DType::kF32)),
      "summa-f32");
}

TEST(CheckpointRecoveryDtypes, SummaSingleCrashI64) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  const mm::RunReport plain =
      mm::run_summa(cfg, with_dtype(kPlain, DType::kI64));
  expect_recovered(
      plain, mm::run_summa(cfg, with_dtype(crash_opts({4}, 8, 11), DType::kI64)),
      "summa-i64");
}

TEST(CheckpointRecoveryDtypes, Grid3dSingleCrashF32) {
  const mm::Grid3dConfig cfg{{12, 10, 8}, core::Grid3{2, 2, 2}};
  const mm::RunReport plain =
      mm::run_grid3d(cfg, with_dtype(kPlain, DType::kF32));
  expect_recovered(
      plain,
      mm::run_grid3d(cfg, with_dtype(crash_opts({3}, 6, 14), DType::kF32)),
      "grid3d-f32");
}

TEST(CheckpointRecoveryDtypes, CannonSingleCrashKahan) {
  const mm::CannonConfig cfg{{12, 9, 6}, 3};
  const mm::RunReport plain =
      mm::run_cannon(cfg, with_dtype(kPlain, DType::kKahan));
  expect_recovered(
      plain,
      mm::run_cannon(cfg, with_dtype(crash_opts({2}, 8, 12), DType::kKahan)),
      "cannon-kahan");
}

TEST(CheckpointRecoveryDtypes, CarmaSingleCrashI64) {
  const mm::CarmaConfig cfg{{16, 16, 16}, 3};
  const mm::RunReport plain =
      mm::run_carma(cfg, with_dtype(kPlain, DType::kI64));
  expect_recovered(
      plain,
      mm::run_carma(cfg, with_dtype(crash_opts({2}, 6, 17), DType::kI64)),
      "carma-i64");
}

TEST(CheckpointRecoveryDtypes, SummaAbftSingleCrashI64) {
  const mm::SummaAbftConfig cfg{mm::SummaConfig{{27, 15, 12}, 3}};
  const mm::RunReport plain =
      mm::run_summa_abft(cfg, with_dtype(kPlain, DType::kI64));
  expect_recovered(
      plain,
      mm::run_summa_abft(cfg, with_dtype(crash_opts({4}, 8, 19), DType::kI64)),
      "summa_abft-i64");
}

/// Clean checkpointed runs stay word-exact against the split prediction in
/// every dtype: data words scale with the element width while the agreement
/// flood stays fixed — measured must equal predicted_words() exactly.
TEST(CheckpointRecoveryDtypes, CleanCkptPredictionExactAcrossDtypes) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  for (DType dt : {DType::kF64, DType::kF32, DType::kI64, DType::kKahan}) {
    mm::RunOptions opts = with_dtype(kPlain, dt);
    opts.checkpoint.interval = 1;
    opts.checkpoint.spares = 1;
    const mm::RunReport report = mm::run_summa(cfg, opts);
    ASSERT_TRUE(report.verified) << dtype_name(dt);
    EXPECT_GT(report.predicted_control_words, 0) << dtype_name(dt);
    EXPECT_EQ(report.measured_critical_recv, report.predicted_words())
        << dtype_name(dt);
  }
}

// ---------------------------------------------------------------------------
// Fiber-scheduler legs.

/// Every-rank-crash sweep under fibers: for each rank of a P = 9 SUMMA
/// grid, crash exactly that rank and demand the fiber run match the
/// thread run word for word — per-rank counters, rollback rounds, debris.
TEST(CheckpointRecoveryFibers, SummaEveryRankCrashMatchesThreadsExactly) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  for (int victim = 0; victim < 9; ++victim) {
    const mm::RunOptions opts =
        crash_opts({victim}, 8, 21 + static_cast<std::uint64_t>(victim));
    const mm::RunReport threads = mm::run_summa(cfg, opts);
    const mm::RunReport fibers = mm::run_summa(cfg, fiberize(opts));
    ASSERT_TRUE(fibers.verified) << "victim " << victim;
    ASSERT_FALSE(fibers.recovery.crashed.empty())
        << "victim " << victim << ": crash never fired";
    expect_word_exact_twin(threads, fibers,
                           ("summa victim " + std::to_string(victim)).c_str());
  }
}

/// Same sweep for Algorithm 1 on its 2x2x2 grid (the rollback collective
/// exercises a different communicator layout than SUMMA's 2D grid).
TEST(CheckpointRecoveryFibers, Grid3dEveryRankCrashMatchesThreadsExactly) {
  const mm::Grid3dConfig cfg{{12, 10, 8}, core::Grid3{2, 2, 2}};
  for (int victim = 0; victim < 8; ++victim) {
    const mm::RunOptions opts =
        crash_opts({victim}, 6, 31 + static_cast<std::uint64_t>(victim));
    const mm::RunReport threads = mm::run_grid3d(cfg, opts);
    const mm::RunReport fibers = mm::run_grid3d(cfg, fiberize(opts));
    ASSERT_TRUE(fibers.verified) << "victim " << victim;
    expect_word_exact_twin(threads, fibers,
                           ("grid3d victim " + std::to_string(victim)).c_str());
  }
}

TEST(CheckpointRecoveryFibers, SummaSurvivesSecondCrashDuringRollback) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  const mm::RunReport plain = mm::run_summa(cfg, kPlain);
  two_crash_during_rollback_sweep(
      [&](const mm::RunOptions& opts) { return mm::run_summa(cfg, opts); },
      plain, "summa-fibers", SchedulerKind::kFibers);
}

TEST(CheckpointRecoveryFibers, CannonSurvivesSecondCrashDuringRollback) {
  const mm::CannonConfig cfg{{12, 9, 6}, 3};
  const mm::RunReport plain = mm::run_cannon(cfg, kPlain);
  two_crash_during_rollback_sweep(
      [&](const mm::RunOptions& opts) { return mm::run_cannon(cfg, opts); },
      plain, "cannon-fibers", SchedulerKind::kFibers);
}

}  // namespace
}  // namespace camb
