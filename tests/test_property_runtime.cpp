// Property tests tying together the runtime layers: logical clocks, the
// algorithm registry, and the analytic time models, on parameterized sweeps.
#include <gtest/gtest.h>

#include <tuple>

#include "collectives/tuning.hpp"
#include "core/grid.hpp"
#include "matmul/algorithm_registry.hpp"
#include "matmul/grid3d_staged.hpp"
#include "matmul/time_model.hpp"

namespace camb::mm {
namespace {

using camb::core::Grid3;
using camb::core::Shape;

// ---------------------------------------------------------------------------
// Scheduled time vs closed form for Algorithm 1 across grids and variants.
// ---------------------------------------------------------------------------

class ClockVsClosedForm
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ClockVsClosedForm, SymmetricConfigsScheduleExactly) {
  const auto [grid_index, algo_index] = GetParam();
  const Grid3 grids[] = {Grid3{2, 2, 2}, Grid3{4, 2, 1}, Grid3{1, 4, 2},
                         Grid3{8, 1, 1}, Grid3{2, 4, 1}};
  const Shape shape{32, 16, 16};  // divisible by every grid above
  const Grid3 grid = grids[grid_index];
  const auto ag = algo_index == 0 ? coll::AllgatherAlgo::kRing
                                  : coll::AllgatherAlgo::kRecursiveDoubling;
  const auto rs = algo_index == 0 ? coll::ReduceScatterAlgo::kRing
                                  : coll::ReduceScatterAlgo::kRecursiveHalving;
  MachineParams params{1e-4, 1e-7, 0.0};
  Machine machine(static_cast<int>(grid.total()));
  machine.set_time_params(AlphaBeta{params.alpha, params.beta});
  Grid3dConfig cfg{shape, grid, ag, rs};
  machine.run([&](RankCtx& ctx) { (void)grid3d_rank(ctx, cfg); });
  const auto closed = alg1_time(shape, grid, params, ag, rs);
  EXPECT_NEAR(machine.critical_path_time(), closed.latency + closed.bandwidth,
              1e-12)
      << grid.p1 << "x" << grid.p2 << "x" << grid.p3 << " algo " << algo_index;
}

INSTANTIATE_TEST_SUITE_P(GridsByVariant, ClockVsClosedForm,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 2)));

// ---------------------------------------------------------------------------
// Staging's latency price is visible in scheduled time.
// ---------------------------------------------------------------------------

TEST(ClockProperties, StagingCostsTimeOnLatencyBoundMachines) {
  const Shape shape{24, 12, 8};
  const Grid3 grid{2, 2, 2};
  auto scheduled_time = [&](i64 stages) {
    Machine machine(8);
    machine.set_time_params(AlphaBeta{1.0, 0.0});  // latency clock
    Grid3dStagedConfig cfg{shape, grid, stages};
    machine.run([&](RankCtx& ctx) { (void)grid3d_staged_rank(ctx, cfg); });
    return machine.critical_path_time();
  };
  const double t1 = scheduled_time(1);
  const double t3 = scheduled_time(3);
  const double t6 = scheduled_time(6);
  EXPECT_LT(t1, t3);
  EXPECT_LT(t3, t6);
}

TEST(ClockProperties, AgarwalVariantSlowerThanAlg1WhenLatencyBound) {
  // §5.1's remark as a *time* statement: at α-dominated parameters the
  // All-to-All variant's extra rounds cost real schedule length.
  const Shape shape{24, 32, 16};
  const Grid3 grid{2, 8, 2};
  double alg1_time_s, agarwal_time_s;
  {
    Machine machine(32);
    machine.set_time_params(AlphaBeta{1.0, 1e-9});
    Grid3dConfig cfg{shape, grid};
    machine.run([&](RankCtx& ctx) { (void)grid3d_rank(ctx, cfg); });
    alg1_time_s = machine.critical_path_time();
  }
  {
    Machine machine(32);
    machine.set_time_params(AlphaBeta{1.0, 1e-9});
    Grid3dAgarwalConfig cfg{shape, grid};
    machine.run([&](RankCtx& ctx) { (void)grid3d_agarwal_rank(ctx, cfg); });
    agarwal_time_s = machine.critical_path_time();
  }
  EXPECT_LT(alg1_time_s, agarwal_time_s);
}

// ---------------------------------------------------------------------------
// Registry-wide runtime invariants.
// ---------------------------------------------------------------------------

TEST(RegistryRuntime, SimulatedTimePositiveIffCommunicating) {
  const Shape shape{16, 16, 16};
  for (const auto& algorithm : algorithm_registry()) {
    if (algorithm.supports(shape, 1)) {
      const auto solo = algorithm.run(shape, 1, false);
      EXPECT_DOUBLE_EQ(solo.simulated_time, 0.0) << algorithm.name;
    }
    if (algorithm.supports(shape, 4)) {
      const auto parallel = algorithm.run(shape, 4, false);
      EXPECT_GT(parallel.simulated_time, 0.0) << algorithm.name;
      if (algorithm.name == "grid3d_optimal") {
        // Symmetric collectives: the unit-β clock is at least the words the
        // busiest rank received (its receives chain behind equal sends).
        EXPECT_GE(parallel.simulated_time,
                  static_cast<double>(parallel.measured_critical_recv));
      }
    }
  }
}

TEST(RegistryRuntime, TimeDominatedByDependencyDepthNotVolumeAlone) {
  // The naive baseline's broadcast serializes through rank 0 (its clock grows
  // with log P trees of full matrices); Algorithm 1's collectives do not.
  const Shape shape{32, 32, 32};
  const auto optimal = algorithm_by_name("grid3d_optimal").run(shape, 8, false);
  const auto naive = algorithm_by_name("naive_bcast").run(shape, 8, false);
  EXPECT_LT(optimal.simulated_time, naive.simulated_time);
}

// ---------------------------------------------------------------------------
// Tuning decisions hold up on the executed machine.
// ---------------------------------------------------------------------------

TEST(TuningOnMachine, ChosenAlltoallVariantIsFasterInSchedule) {
  const int p = 8;
  const coll::TuningParams tuning{1.0, 1e-4};
  auto scheduled = [&](i64 block, coll::AlltoallAlgo algo) {
    Machine machine(p);
    machine.set_time_params(AlphaBeta{tuning.alpha, tuning.beta});
    machine.run([&](RankCtx& ctx) {
      std::vector<std::vector<double>> blocks(
          static_cast<std::size_t>(p),
          std::vector<double>(static_cast<std::size_t>(block), 1.0));
      (void)coll::alltoall(coll::Comm::world(ctx), blocks, algo);
    });
    return machine.critical_path_time();
  };
  for (i64 block : {1, 64, 1 << 16}) {
    const auto chosen = coll::choose_alltoall(p, block, tuning);
    const auto other = chosen == coll::AlltoallAlgo::kBruck
                           ? coll::AlltoallAlgo::kPairwise
                           : coll::AlltoallAlgo::kBruck;
    EXPECT_LE(scheduled(block, chosen), scheduled(block, other) * (1 + 1e-9))
        << "block=" << block;
  }
}

}  // namespace
}  // namespace camb::mm
