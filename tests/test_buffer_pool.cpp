// Buffer / BufferPool unit tests: value semantics (a Buffer is bit-for-bit
// the vector it wraps), reuse/return accounting, the cross-thread hand-off
// of the message path, and a TSan-aimed stress test (this binary carries the
// `tsan` ctest label, so the stress runs under ThreadSanitizer in that leg).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "machine/buffer_pool.hpp"
#include "machine/machine.hpp"

namespace camb {
namespace {

TEST(Buffer, AdoptionIsAMoveAndValueIdentical) {
  std::vector<double> v{1.0, 2.0, 3.0};
  const double* storage = v.data();
  Buffer b(std::move(v));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data(), storage);  // adopted, not copied
  EXPECT_EQ(b, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Buffer, TakeDetachesStorage) {
  BufferPool pool;
  {
    BufferPool::Scope scope(&pool);
    Buffer b = Buffer::zeros(5);
    const double* storage = b.data();
    std::vector<double> v = std::move(b).take();
    EXPECT_EQ(v.data(), storage);
    EXPECT_TRUE(b.empty());
  }
  // The taken storage never returns to the pool.
  EXPECT_EQ(pool.stats().returns, 0);
}

TEST(Buffer, MoveTransfersOwnershipOnce) {
  BufferPool pool;
  {
    BufferPool::Scope scope(&pool);
    Buffer a = Buffer::copy_of(
        std::vector<double>(BufferPool::kMinPooledWords, 4.0));
    Buffer b = std::move(a);
    EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): post-move spec
    EXPECT_EQ(b.size(), BufferPool::kMinPooledWords);
  }
  // Exactly one storage returned (b's); the moved-from a held nothing.
  EXPECT_EQ(pool.stats().returns, 1);
}

TEST(Buffer, ZerosMatchesVectorContents) {
  Buffer z = Buffer::zeros(4);
  EXPECT_EQ(z, std::vector<double>(4, 0.0));
}

TEST(BufferPool, ReuseAndReturnAccounting) {
  constexpr std::size_t kWords = BufferPool::kMinPooledWords;
  BufferPool pool;
  BufferPool::Scope scope(&pool);
  { Buffer b = pool.zeros(kWords); }  // acquire (miss) + return
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.acquires, 1);
  EXPECT_EQ(s.reuses, 0);
  EXPECT_EQ(s.returns, 1);
  EXPECT_EQ(s.free, 1u);

  { Buffer b = pool.zeros(kWords); }  // acquire (hit) + return
  s = pool.stats();
  EXPECT_EQ(s.acquires, 2);
  EXPECT_EQ(s.reuses, 1);
  EXPECT_EQ(s.returns, 2);
  EXPECT_EQ(s.free, 1u);
}

TEST(BufferPool, FreeListIsCappedAndTrimmable) {
  BufferPool pool;
  {
    std::vector<Buffer> held;
    for (std::size_t i = 0; i < BufferPool::kMaxFree + 8; ++i) {
      held.push_back(pool.zeros(BufferPool::kMinPooledWords));
    }
  }  // all returned at once; only kMaxFree kept
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.free, BufferPool::kMaxFree);
  EXPECT_EQ(s.drops, 8);
  pool.trim();
  EXPECT_EQ(pool.stats().free, 0u);
}

TEST(BufferPool, SmallPayloadsBypassThePool) {
  // Below kMinPooledWords the shared free list costs more than malloc's
  // thread-local fast path: the static helpers go straight to the heap and
  // destruction frees instead of giving back.
  BufferPool pool;
  BufferPool::Scope scope(&pool);
  { Buffer b = Buffer::zeros(BufferPool::kMinPooledWords / 2); }
  { Buffer b = Buffer::copy_of(std::vector<double>{1.0, 2.0}); }
  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.acquires, 0);
  EXPECT_EQ(s.returns, 0);
  EXPECT_EQ(s.free, 0u);
}

TEST(BufferPool, CurrentPoolFollowsScope) {
  EXPECT_EQ(BufferPool::current(), nullptr);
  BufferPool outer, inner;
  {
    BufferPool::Scope a(&outer);
    EXPECT_EQ(BufferPool::current(), &outer);
    {
      BufferPool::Scope b(&inner);
      EXPECT_EQ(BufferPool::current(), &inner);
    }
    EXPECT_EQ(BufferPool::current(), &outer);
  }
  EXPECT_EQ(BufferPool::current(), nullptr);
}

TEST(BufferPool, CrossThreadHandOffReturnsToOriginPool) {
  // The message path in miniature: a Buffer drawn from pool A is destroyed
  // on a different thread and must return to A (not to the destroying
  // thread's pool, and not leak).
  constexpr std::size_t kWords = BufferPool::kMinPooledWords;
  BufferPool origin, other;
  Buffer b = origin.zeros(kWords);
  std::thread consumer([&] {
    BufferPool::Scope scope(&other);
    Buffer taken = std::move(b);
    EXPECT_EQ(taken.size(), kWords);
  });
  consumer.join();
  EXPECT_EQ(origin.stats().returns, 1);
  EXPECT_EQ(other.stats().returns, 0);
}

TEST(BufferPool, StressManyThreadsHandOff) {
  // TSan-labeled stress: P producer/consumer pairs hammer P pools through
  // a real Machine (send/recv through mailboxes), exercising the concurrent
  // give() path from foreign threads.
  constexpr int kP = 4;
  constexpr int kRounds = 200;
  Machine machine(kP);
  machine.run([&](RankCtx& ctx) {
    const int me = ctx.rank();
    const int next = (me + 1) % kP;
    const int prev = (me + kP - 1) % kP;
    std::vector<double> payload(BufferPool::kMinPooledWords * 2,
                                static_cast<double>(me));
    for (int r = 0; r < kRounds; ++r) {
      ctx.send(next, r % 500, std::move(payload));
      payload = ctx.recv(prev, r % 500);
    }
    ctx.barrier();
  });
  // Every rank's pool saw traffic and the books balance: nothing held after
  // the run, so returns == acquisitions that were not detached by take().
  for (int r = 0; r < kP; ++r) {
    const BufferPool::Stats s = machine.network().pool(r).stats();
    EXPECT_GE(s.returns, 0);
    EXPECT_EQ(s.free <= BufferPool::kMaxFree, true);
  }
}

TEST(BufferPool, PooledPayloadsRecycleThroughTheMachine) {
  // End-to-end reuse proof: ranks exchange pool-drawn copies; after the
  // warm-up round every acquisition should be a free-list hit on this
  // rank's pool.
  constexpr int kP = 2;
  constexpr int kRounds = 50;
  Machine machine(kP);
  machine.run([&](RankCtx& ctx) {
    const int me = ctx.rank();
    const int peer = 1 - me;
    const std::vector<double> block(BufferPool::kMinPooledWords, 1.5);
    for (int r = 0; r < kRounds; ++r) {
      ctx.send(peer, r % 400, Buffer::copy_of(block));
      Buffer incoming = ctx.recv(peer, r % 400);
      ASSERT_EQ(incoming.size(), block.size());
    }
    ctx.barrier();
  });
  for (int r = 0; r < kP; ++r) {
    const BufferPool::Stats s = machine.network().pool(r).stats();
    EXPECT_EQ(s.acquires, kRounds);
    // First acquisition misses (cold pool); the peer's consumption returns
    // storage fast enough that most later draws hit.  Demand a majority to
    // keep the assertion schedule-robust.
    EXPECT_GT(s.reuses, kRounds / 2) << "rank " << r << " pool never warmed";
  }
}

}  // namespace
}  // namespace camb
