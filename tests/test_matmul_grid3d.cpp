// Unit tests for matmul/grid3d.hpp — Algorithm 1 on the simulated machine:
// correctness against the serial reference and exact communication counts.
#include "matmul/grid3d.hpp"

#include <gtest/gtest.h>

#include "core/cost_eq3.hpp"
#include "matmul/runner.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

void expect_correct_and_exactly_counted(const Shape& shape, const Grid3& grid) {
  Grid3dConfig cfg{shape, grid, coll::AllgatherAlgo::kAuto,
                   coll::ReduceScatterAlgo::kAuto};
  const RunReport report = run_grid3d(cfg, /*verify=*/true);
  EXPECT_LE(report.max_abs_error, 1e-10)
      << "shape=(" << shape.n1 << "," << shape.n2 << "," << shape.n3
      << ") grid=" << grid.p1 << "x" << grid.p2 << "x" << grid.p3;
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
  EXPECT_GE(static_cast<double>(report.measured_critical_recv) + 1e-6,
            report.lower_bound_words);
}

TEST(Grid3d, SingleProcessorNoComm) {
  Grid3dConfig cfg{Shape{8, 6, 4}, Grid3{1, 1, 1}};
  const RunReport report = run_grid3d(cfg, true);
  EXPECT_LE(report.max_abs_error, 1e-12);
  EXPECT_EQ(report.measured_critical_recv, 0);
  EXPECT_EQ(report.total_network_words, 0);
}

TEST(Grid3d, OneDGrids) {
  expect_correct_and_exactly_counted(Shape{12, 6, 4}, Grid3{3, 1, 1});
  expect_correct_and_exactly_counted(Shape{12, 6, 4}, Grid3{1, 3, 1});
  expect_correct_and_exactly_counted(Shape{12, 6, 4}, Grid3{1, 1, 4});
}

TEST(Grid3d, TwoDGrids) {
  expect_correct_and_exactly_counted(Shape{12, 8, 6}, Grid3{2, 3, 1});
  expect_correct_and_exactly_counted(Shape{12, 8, 6}, Grid3{2, 1, 3});
  expect_correct_and_exactly_counted(Shape{12, 8, 6}, Grid3{1, 4, 2});
}

TEST(Grid3d, ThreeDGrids) {
  expect_correct_and_exactly_counted(Shape{8, 8, 8}, Grid3{2, 2, 2});
  expect_correct_and_exactly_counted(Shape{12, 8, 6}, Grid3{3, 2, 2});
  expect_correct_and_exactly_counted(Shape{16, 12, 8}, Grid3{4, 3, 2});
}

TEST(Grid3d, NonDivisibleDimensions) {
  // Near-equal splits must still be correct and exactly predicted.
  expect_correct_and_exactly_counted(Shape{13, 7, 5}, Grid3{3, 2, 2});
  expect_correct_and_exactly_counted(Shape{9, 9, 9}, Grid3{2, 2, 2});
  expect_correct_and_exactly_counted(Shape{11, 3, 2}, Grid3{4, 2, 1});
}

TEST(Grid3d, TinyDimensionsSmallerThanGrid) {
  // Some ranks own zero-sized chunks; the algorithm must still work.
  expect_correct_and_exactly_counted(Shape{2, 2, 2}, Grid3{3, 1, 2});
  expect_correct_and_exactly_counted(Shape{1, 5, 1}, Grid3{2, 2, 2});
}

TEST(Grid3d, CollectiveVariantsAgree) {
  const Shape shape{12, 8, 8};
  const Grid3 grid{2, 2, 2};
  for (auto ag : {coll::AllgatherAlgo::kRing,
                  coll::AllgatherAlgo::kRecursiveDoubling,
                  coll::AllgatherAlgo::kBruck}) {
    for (auto rs : {coll::ReduceScatterAlgo::kRing,
                    coll::ReduceScatterAlgo::kRecursiveHalving}) {
      Grid3dConfig cfg{shape, grid, ag, rs};
      const RunReport report = run_grid3d(cfg, true);
      EXPECT_LE(report.max_abs_error, 1e-10);
      EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
    }
  }
}

TEST(Grid3d, PhaseBreakdownMatchesEq3UnderDivisibility) {
  // With a divisible shape and equal chunks, the per-phase critical-path
  // received words are exactly the (1 - 1/p_i) w_i terms of §5.1.
  const Shape shape{24, 12, 8};
  const Grid3 grid{2, 3, 2};
  Grid3dConfig cfg{shape, grid};
  const RunReport report = run_grid3d(cfg, false);
  const auto breakdown = camb::core::alg1_comm_breakdown(shape, grid);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(report.phase_recv.at(kPhaseAllgatherA)),
      breakdown.allgather_a);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(report.phase_recv.at(kPhaseAllgatherB)),
      breakdown.allgather_b);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(report.phase_recv.at(kPhaseReduceScatterC)),
      breakdown.reduce_scatter_c);
}

TEST(Grid3d, AttainsLowerBoundExactlyWithOptimalGrid) {
  // The tightness statement of §5.2, executed: scaled-down paper shape
  // (aspect ratios preserved), optimal grids per case, divisible dims.
  const Shape shape{96 * 4, 24 * 4, 6 * 4};  // 384 x 96 x 24; m/n=4, mn/k^2=64
  struct Case {
    camb::i64 P;
    Grid3 grid;
  };
  // P = 3 (1D regime), P = 16 (2D regime: p = m sqrt(P/mn) = 8, q = 2), and
  // P = 64 (the 2D/3D boundary, cubic local volumes with r = 1).
  for (const auto& c : {Case{3, Grid3{3, 1, 1}}, Case{16, Grid3{8, 2, 1}},
                        Case{64, Grid3{16, 4, 1}}}) {
    Grid3dConfig cfg{shape, c.grid};
    const RunReport report = run_grid3d(cfg, true);
    EXPECT_LE(report.max_abs_error, 1e-10);
    EXPECT_DOUBLE_EQ(static_cast<double>(report.measured_critical_recv),
                     report.lower_bound_words)
        << "P=" << c.P;
  }
}

TEST(Grid3d, LayoutChunksCoverBlocks) {
  // The union of all ranks' C chunks covers the whole matrix exactly once.
  const Shape shape{10, 6, 7};
  const Grid3 grid{2, 3, 2};
  Grid3dConfig cfg{shape, grid};
  std::vector<int> covered(static_cast<std::size_t>(shape.n1 * shape.n3), 0);
  for (int r = 0; r < grid.total(); ++r) {
    const auto layout = grid3d_layout(cfg, r);
    for (i64 f = 0; f < layout.c.flat_size; ++f) {
      const i64 flat = layout.c.flat_start + f;
      const i64 i = layout.c.row0 + flat / layout.c.cols;
      const i64 j = layout.c.col0 + flat % layout.c.cols;
      covered[static_cast<std::size_t>(i * shape.n3 + j)]++;
    }
  }
  for (int c : covered) EXPECT_EQ(c, 1);
}

TEST(Grid3d, PredictionIsPerRankExact) {
  // Not just the max: every rank's received words must match its prediction.
  const Shape shape{14, 10, 6};
  const Grid3 grid{2, 2, 3};
  Grid3dConfig cfg{shape, grid};
  camb::Machine machine(static_cast<int>(grid.total()));
  machine.run([&](camb::RankCtx& ctx) { (void)grid3d_rank(ctx, cfg); });
  for (int r = 0; r < grid.total(); ++r) {
    EXPECT_EQ(machine.stats().rank_total(r).words_received(),
              grid3d_predicted_recv_words(cfg, r))
        << "rank " << r;
  }
}

}  // namespace
}  // namespace camb::mm
