// Unit tests for matmul/time_model.hpp — the α-β-γ running-time estimates.
#include "matmul/time_model.hpp"

#include <gtest/gtest.h>

namespace camb::mm {
namespace {

using camb::core::Grid3;
using camb::core::Shape;

TEST(TimeModel, TermsAreSeparable) {
  const Shape shape{96, 96, 96};
  const Grid3 grid{4, 4, 4};
  MachineParams params{2e-6, 3e-9, 5e-12};
  const auto t = alg1_time(shape, grid, params);
  // Scaling one parameter scales only its term.
  MachineParams alpha2 = params;
  alpha2.alpha *= 2;
  const auto t2 = alg1_time(shape, grid, alpha2);
  EXPECT_DOUBLE_EQ(t2.latency, 2 * t.latency);
  EXPECT_DOUBLE_EQ(t2.bandwidth, t.bandwidth);
  EXPECT_DOUBLE_EQ(t2.compute, t.compute);
  EXPECT_DOUBLE_EQ(t.total(), t.latency + t.bandwidth + t.compute);
}

TEST(TimeModel, BandwidthTermIsEq3) {
  const Shape shape{96, 96, 96};
  const Grid3 grid{4, 4, 4};
  MachineParams params{0.0, 1.0, 0.0};  // pure bandwidth clock
  const auto t = alg1_time(shape, grid, params);
  EXPECT_DOUBLE_EQ(t.total(),
                   camb::core::alg1_comm_breakdown(shape, grid).total());
}

TEST(TimeModel, LatencyCountsCollectiveRounds) {
  const Shape shape{96, 96, 96};
  MachineParams params{1.0, 0.0, 0.0};  // pure message clock
  // 4x4x4 grid with recursive collectives: 2 + 2 + 2 rounds.
  const auto t = alg1_time(shape, Grid3{4, 4, 4}, params);
  EXPECT_DOUBLE_EQ(t.total(), 6.0);
  // Ring collectives: 3 + 3 + 3 rounds.
  const auto ring = alg1_time(shape, Grid3{4, 4, 4}, params,
                              coll::AllgatherAlgo::kRing,
                              coll::ReduceScatterAlgo::kRing);
  EXPECT_DOUBLE_EQ(ring.total(), 9.0);
}

TEST(TimeModel, MatchesMeasuredRun) {
  // The closed form and a measured run agree exactly on a divisible config.
  const Shape shape{24, 12, 8};
  const Grid3 grid{2, 2, 2};
  MachineParams params{1e-5, 1e-8, 0.0};
  const auto predicted = alg1_time(shape, grid, params);
  const auto report = run_grid3d(Grid3dConfig{shape, grid}, false);
  const double measured = measured_time(report, 0.0, params);
  EXPECT_NEAR(predicted.total(), measured, 1e-12);
}

TEST(TimeModel, RecursiveCollectiveLatencyIsGridInvariant) {
  // A pleasant consequence of log-depth collectives: for any power-of-two
  // factorization p1 p2 p3 = P, the total round count is
  // log2(p1) + log2(p2) + log2(p3) = log2(P) — the §5.2 grid choice is free
  // in latency, so optimizing bandwidth is never a latency trade-off.
  const Shape shape{384, 96, 24};
  MachineParams message_clock{1.0, 0.0, 0.0};
  const double reference =
      alg1_time(shape, Grid3{16, 1, 1}, message_clock).total();
  for (const Grid3& grid : {Grid3{8, 2, 1}, Grid3{4, 2, 2}, Grid3{1, 16, 1},
                            Grid3{2, 2, 4}, Grid3{1, 1, 16}}) {
    EXPECT_DOUBLE_EQ(alg1_time(shape, grid, message_clock).total(), reference)
        << grid.p1 << "x" << grid.p2 << "x" << grid.p3;
  }
  EXPECT_DOUBLE_EQ(reference, 4.0);  // log2(16)
  // Ring collectives are different: rounds = (p1-1) + (p2-1) + (p3-1),
  // which *does* favour balanced grids.
  const auto ring_flat = alg1_time(shape, Grid3{16, 1, 1}, message_clock,
                                   coll::AllgatherAlgo::kRing,
                                   coll::ReduceScatterAlgo::kRing);
  const auto ring_cube = alg1_time(shape, Grid3{4, 2, 2}, message_clock,
                                   coll::AllgatherAlgo::kRing,
                                   coll::ReduceScatterAlgo::kRing);
  EXPECT_GT(ring_flat.total(), ring_cube.total());
}

TEST(TimeModel, SummaAndCannonEstimatesArePositiveAndOrdered) {
  const Shape shape{64, 64, 64};
  MachineParams params;
  const auto summa = summa_time(shape, 4, params);
  const auto cannon = cannon_time(shape, 4, params);
  EXPECT_GT(summa.total(), 0.0);
  EXPECT_GT(cannon.total(), 0.0);
  // Cannon moves slightly more words (the skew) than SUMMA's panels.
  EXPECT_GE(cannon.bandwidth, summa.bandwidth);
}

TEST(TimeModel, TrivialGridIsFree) {
  const auto t = alg1_time(Shape{8, 8, 8}, Grid3{1, 1, 1},
                           MachineParams{1.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(t.latency, 0.0);
  EXPECT_DOUBLE_EQ(t.bandwidth, 0.0);
}

}  // namespace
}  // namespace camb::mm
